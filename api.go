// Package netoblivious is a Go implementation of the network-oblivious
// algorithms framework of Bilardi, Pietracaprina, Pucci, Scquizzato and
// Silvestri ("Network-Oblivious Algorithms", IPDPS 2007; J.ACM 63(1),
// 2016).
//
// A network-oblivious algorithm is written once, against a machine whose
// only parameter is the input size — the specification model M(v(n)) —
// and then runs unchanged, yet efficiently, on machines with any number
// of processors and any bandwidth/latency structure.  The framework's
// three models and every metric in the paper are implemented executably:
//
//   - internal/core — the specification model M(v): a superstep runtime
//     with labeled hierarchical barriers, exact communication-trace
//     recording at every folding, and pluggable execution engines (a
//     goroutine-per-VP reference engine and a sharded block-scheduled
//     engine that runs the same programs, trace-identically, orders of
//     magnitude cheaper at large v — see Engine);
//   - internal/eval — the evaluation model M(p, σ): communication
//     complexity H(n,p,σ) (Eq. 1), wiseness α (Def. 3.2), fullness γ
//     (Def. 5.2), the Lemma 3.1 folding inequality;
//   - internal/dbsp — the execution model D-BSP(p, g, ℓ): communication
//     time (Eq. 2), network parameter presets, the Section 5
//     ascend–descend protocol;
//   - internal/theory — lower bounds, the optimality theorem (Thm 3.4)
//     machinery and the broadcast impossibility bound (Thm 4.16);
//   - algorithm packages: matmul, fft, colsort, stencil, broadcast,
//     prefix — the paper's Section 4 algorithms, executed for real and
//     verified against sequential references;
//   - internal/harness + cmd/nobl — the experiment suite regenerating
//     every theorem's bound as a measured table (see EXPERIMENTS.md);
//   - internal/service + cmd/nobld — a long-running HTTP analysis
//     service: closed-form answers synchronously, simulation-backed
//     answers through a priority job queue with bounded workers, SSE
//     progress, per-job cancellation (RunOptions.Context reaches
//     superstep granularity in both engines) and process-lifetime LRU
//     caches with single-flight dedup.  `nobl remote` targets a shared
//     daemon from the CLI.
//
// The public algorithm API lives in the netoblivious/alg subpackage: a
// unified run configuration (alg.Spec), a typed Algorithm descriptor
// (name, docs, size constraint, default sizes, run entry point) and an
// open registry (alg.Register / alg.ByName / alg.All) that the built-in
// paper algorithms self-register into.  A user-defined algorithm
// registered there flows through every surface — the trace store, the
// experiment harness, `nobl trace`, `nobl algorithms`, and the nobld
// service — with no change to any of them.  See examples/custom-algorithm
// for a complete walkthrough.
//
// This root package re-exports the types a downstream user needs to write
// and analyze their own network-oblivious algorithms without importing
// internal paths directly in examples or docs.  See examples/quickstart
// for a tour.
package netoblivious

import (
	"netoblivious/alg"
	"netoblivious/internal/core"
	"netoblivious/internal/dbsp"
	"netoblivious/internal/eval"

	// Register the paper's built-in algorithms so alg.All() is fully
	// populated for any importer of this package.
	_ "netoblivious/internal/broadcast"
	_ "netoblivious/internal/colsort"
	_ "netoblivious/internal/fft"
	_ "netoblivious/internal/matmul"
	_ "netoblivious/internal/prefix"
	_ "netoblivious/internal/stencil"
)

// VP is a virtual processor handle of the specification model M(v).
type VP[P any] = core.VP[P]

// Message is a delivered message.
type Message[P any] = core.Message[P]

// Program is the code run by every virtual processor.
type Program[P any] = core.Program[P]

// Trace is the communication record of a run, sufficient to evaluate the
// algorithm on every folding, every σ, and every D-BSP machine.
type Trace = core.Trace

// RunOptions configures a specification-model run: message recording,
// the execution engine (RunOptions.Engine, nil for the default) and an
// optional cancellation context (RunOptions.Context) that aborts the run
// at the next superstep boundary.
type RunOptions = core.Options

// Engine selects how M(v) is executed on the host.  Engines change only
// scheduling cost, never semantics: every engine produces the identical
// Trace for a valid program, a property enforced by the repository's
// cross-engine equivalence tests.
//
// Selection guidance: the default BlockEngine is right for virtually all
// workloads — it runs a worker per core and scales to millions of VPs.
// The GoroutineEngine is the literal rendering of the model (one
// goroutine per VP, per-cluster barriers); use it as the semantic oracle
// when debugging the runtime itself, or to let independent deep-label
// clusters proceed at different speeds.
type Engine = core.Engine

// GoroutineEngine is the reference engine: one goroutine per virtual
// processor.
type GoroutineEngine = core.GoroutineEngine

// BlockEngine is the default engine: contiguous VP blocks driven by a
// worker pool through tree barriers and bucketed message routing.
type BlockEngine = core.BlockEngine

// ReplayEngine is the schedule-caching engine: the first run of a keyed
// static program executes once, instrumented, and compiles the recorded
// schedule; every later run replays the compiled schedule allocation-free
// without executing the program.  Registered algorithms are keyed
// automatically; see core.ReplayEngine.
type ReplayEngine = core.ReplayEngine

// EngineByName resolves "goroutine", "block" or "replay" to an Engine,
// for wiring to command-line flags.  The error enumerates every
// registered name.
func EngineByName(name string) (Engine, error) { return core.EngineByName(name) }

// EngineNames lists the selectable engine names.
func EngineNames() []string { return core.EngineNames() }

// Engines returns one default-configured instance of every selectable
// engine, sorted by name.
func Engines() []Engine { return core.Engines() }

// DefaultEngine returns the engine used when RunOptions.Engine is nil.
func DefaultEngine() Engine { return core.DefaultEngine() }

// SetDefaultEngine changes the process-wide default engine and returns
// the previous one.
func SetDefaultEngine(e Engine) Engine { return core.SetDefaultEngine(e) }

// Algorithm is a typed descriptor of one runnable network-oblivious
// algorithm: metadata (name, docs, size constraint, default sizes) plus
// the executable Run entry point.  See the netoblivious/alg package.
type Algorithm = alg.Algorithm

// Spec is the unified run configuration every algorithm entry point
// accepts: execution engine, message recording, wiseness dummies and
// cancellation context.
type Spec = alg.Spec

// AlgResult is what running a registered algorithm yields: the trace
// plus optional run metadata.
type AlgResult = alg.Result

// SizeError is the typed error a size-constraint violation produces; it
// carries the algorithm's size doc for every surface to render.
type SizeError = alg.SizeError

// RegisterAlgorithm adds a user-defined algorithm to the open registry,
// making it traceable, analyzable and listable by every surface in the
// repository.
func RegisterAlgorithm(a Algorithm) error {
	//nolint:reginit // public API forwarder: external callers register from their own init functions
	return alg.Register(a)
}

// AlgorithmByName looks up a registered algorithm (map-backed).
func AlgorithmByName(name string) (Algorithm, bool) { return alg.ByName(name) }

// Algorithms returns every registered algorithm sorted by name; treat
// the slice as read-only.
func Algorithms() []Algorithm { return alg.All() }

// Folding is the (F_i, S_i) view of an algorithm folded on p processors.
type Folding = eval.Folding

// DBSP is a D-BSP(p, g, ℓ) parameter assignment.
type DBSP = dbsp.Params

// Run executes prog on M(v) and records its communication trace.
func Run[P any](v int, prog Program[P]) (*Trace, error) {
	return core.Run(v, prog)
}

// RunOpt is Run with options (message recording).
func RunOpt[P any](v int, prog Program[P], opts RunOptions) (*Trace, error) {
	return core.RunOpt(v, prog, opts)
}

// WisenessDummies applies the paper's dummy-message trick to the current
// superstep (Section 4.1), making algorithms (Θ(1), v)-wise.
func WisenessDummies[P any](vp *VP[P], label, count int) {
	core.WisenessDummies(vp, label, count)
}

// Fold computes the folding of a trace onto p processors.
func Fold(tr *Trace, p int) Folding { return eval.Fold(tr, p) }

// H returns the communication complexity H(n, p, σ) on the evaluation
// model M(p, σ) (Equation 1 of the paper).
func H(tr *Trace, p int, sigma float64) float64 { return eval.H(tr, p, sigma) }

// Wiseness returns the measured wiseness α of Definition 3.2.
func Wiseness(tr *Trace, p int) float64 { return eval.Wiseness(tr, p) }

// Fullness returns the measured fullness γ of Definition 5.2.
func Fullness(tr *Trace, p int) float64 { return eval.Fullness(tr, p) }

// CommTime returns the communication time D(n, p, g, ℓ) on a D-BSP
// machine (Equation 2 of the paper).
func CommTime(tr *Trace, machine DBSP) float64 { return dbsp.CommTime(tr, machine) }

// Mesh returns D-BSP parameters modeling a d-dimensional mesh of p
// processors; Hypercube and FatTree model the other standard networks.
func Mesh(d, p int) DBSP { return dbsp.Mesh(d, p) }

// Hypercube returns D-BSP parameters modeling a binary hypercube.
func Hypercube(p int) DBSP { return dbsp.Hypercube(p) }

// FatTree returns D-BSP parameters modeling an area-universal fat-tree.
func FatTree(p int) DBSP { return dbsp.FatTree(p) }

// Uniform returns flat D-BSP parameters (a plain BSP machine).
func Uniform(p int, g, l float64) DBSP { return dbsp.Uniform(p, g, l) }
