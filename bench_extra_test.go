package netoblivious_test

import (
	"fmt"
	"math/rand"
	"testing"

	nob "netoblivious"
	"netoblivious/internal/cachesim"
	"netoblivious/internal/colsort"
	"netoblivious/internal/dbsp"
	"netoblivious/internal/fft"
	"netoblivious/internal/matmul"
	"netoblivious/internal/network"
	"netoblivious/internal/theory"
)

// BenchmarkE13BitonicVsColumnsort — the sorting ablation: normalized
// per-key communication of the two network-oblivious sorts.
func BenchmarkE13BitonicVsColumnsort(b *testing.B) {
	rng := benchRng()
	n := 1 << 10
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = rng.Int63()
	}
	for _, variant := range []string{"columnsort", "bitonic"} {
		b.Run(variant, func(b *testing.B) {
			var res *colsort.Result
			var err error
			for i := 0; i < b.N; i++ {
				if variant == "bitonic" {
					res, err = colsort.SortBitonic(keys, colsort.Options{Wise: true})
				} else {
					res, err = colsort.Sort(keys, colsort.Options{Wise: true})
				}
				if err != nil {
					b.Fatal(err)
				}
			}
			for _, p := range []int{16, 64} {
				b.ReportMetric(nob.H(res.Trace, p, 0)*float64(p)/float64(n), fmt.Sprintf("H*p/n(p=%d)", p))
			}
		})
	}
}

// BenchmarkE14NetworkValidation — packet-level routing vs the D-BSP
// prediction h·g_i + ℓ_i.
func BenchmarkE14NetworkValidation(b *testing.B) {
	const p = 64
	cases := []struct {
		topo *network.Topology
		pr   dbsp.Params
	}{
		{network.Ring(p), dbsp.Mesh(1, p)},
		{network.Torus2D(p), dbsp.Mesh(2, p)},
		{network.Hypercube(p), dbsp.Hypercube(p)},
	}
	for _, c := range cases {
		b.Run(c.topo.Name, func(b *testing.B) {
			sim := network.NewSim(c.topo)
			rng := rand.New(rand.NewSource(1999))
			var ratio float64
			for i := 0; i < b.N; i++ {
				msgs := network.ClusterHRelation(rng, p, 2, 8)
				res := sim.Route(msgs)
				ratio = float64(res.Makespan) / (8*c.pr.G[2] + c.pr.L[2])
			}
			b.ReportMetric(ratio, "makespan/dbsp")
		})
	}
}

// BenchmarkE15RectangularMM — CARMA shapes.
func BenchmarkE15RectangularMM(b *testing.B) {
	rng := benchRng()
	shapes := [][4]int{
		{32, 32, 32, 1024},
		{256, 8, 8, 256},
		{8, 8, 256, 256},
	}
	for _, sh := range shapes {
		m, k, n, v := sh[0], sh[1], sh[2], sh[3]
		a := make([]int64, m*k)
		for i := range a {
			a[i] = int64(rng.Intn(50))
		}
		bb := make([]int64, k*n)
		for i := range bb {
			bb[i] = int64(rng.Intn(50))
		}
		b.Run(fmt.Sprintf("%dx%dx%d", m, k, n), func(b *testing.B) {
			var res *matmul.RectResult
			var err error
			for i := 0; i < b.N; i++ {
				res, err = matmul.MultiplyRect(m, k, n, v, a, bb, matmul.Options{Wise: true})
				if err != nil {
					b.Fatal(err)
				}
			}
			p := 32
			h := nob.H(res.Trace, p, 0)
			b.ReportMetric(h, "H(p=32)")
			b.ReportMetric(nob.Wiseness(res.Trace, p), "alpha")
		})
	}
}

// BenchmarkE16CacheSim — Section 6 conjecture: IC(M,B) miss counts of the
// sequential simulation of the recursive FFT trace.
func BenchmarkE16CacheSim(b *testing.B) {
	rng := benchRng()
	n := 1 << 9
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.Float64(), 0)
	}
	res, err := fft.Transform(x, fft.Options{Record: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var curve []int64
	for i := 0; i < b.N; i++ {
		curve, err = cachesim.MissCurve(res.Trace, 4, 8, []int{256, 2048})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(curve[0]), "misses(M=256)")
	b.ReportMetric(float64(curve[1]), "misses(M=2048)")
}

// BenchmarkAblationFFTSplit measures the recursive FFT against the theory
// crossover curve at several machine grains (complements E3).
func BenchmarkAblationFFTSplit(b *testing.B) {
	n := 1 << 10
	for _, p := range []int{16, 256} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			adv := theory.PredictedIterativeFFT(float64(n), p, 0) / theory.PredictedFFT(float64(n), p, 0)
			for i := 0; i < b.N; i++ {
				_ = adv
			}
			b.ReportMetric(adv, "theory-iter/rec")
		})
	}
}
