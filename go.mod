module netoblivious

go 1.24
