package netoblivious_test

import (
	"errors"
	"testing"

	nob "netoblivious"
)

// TestFacadeEndToEnd drives the whole public API surface: write an
// algorithm, run it, evaluate it on M(p,σ) and on D-BSP machines.
func TestFacadeEndToEnd(t *testing.T) {
	const v = 64
	tr, err := nob.Run(v, func(vp *nob.VP[int]) {
		vp.Send(v-1-vp.ID(), vp.ID())
		nob.WisenessDummies(vp, 0, 1)
		vp.Sync(0)
		if m, ok := vp.Receive(); !ok || m != v-1-vp.ID() {
			panic("wrong payload")
		}
		vp.Sync(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumSupersteps() != 2 {
		t.Fatalf("supersteps = %d", tr.NumSupersteps())
	}
	for _, p := range []int{2, 8, 64} {
		f := nob.Fold(tr, p)
		if f.P != p {
			t.Errorf("fold p = %d", f.P)
		}
		if h := nob.H(tr, p, 1); h <= 0 {
			t.Errorf("H(%d) = %v", p, h)
		}
		if a := nob.Wiseness(tr, p); a != 1 {
			t.Errorf("α(%d) = %v, want 1 (complement exchange + dummies)", p, a)
		}
		if g := nob.Fullness(tr, p); g <= 0 {
			t.Errorf("γ(%d) = %v", p, g)
		}
	}
	for _, m := range []nob.DBSP{nob.Mesh(1, 16), nob.Mesh(2, 16), nob.Hypercube(16), nob.FatTree(16), nob.Uniform(16, 1, 2)} {
		if d := nob.CommTime(tr, m); d <= 0 {
			t.Errorf("%s: D = %v", m.Name, d)
		}
		if err := m.Admissible(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

// TestFacadeRecordOption covers RunOpt.
func TestFacadeRecordOption(t *testing.T) {
	tr, err := nob.RunOpt(4, func(vp *nob.VP[int]) {
		vp.Send((vp.ID()+1)%4, 0)
		vp.Sync(0)
	}, nob.RunOptions{RecordMessages: true})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Steps[0].Pairs.Len() != 4 {
		t.Errorf("pairs = %d, want 4", tr.Steps[0].Pairs.Len())
	}
}

// TestRootRegistryReExports asserts that importing the root package alone
// is enough to see the paper's built-in algorithms in the open registry
// (the root package blank-imports their packages), and that a lookup
// through the re-exported API can run one.
func TestRootRegistryReExports(t *testing.T) {
	all := nob.Algorithms()
	names := map[string]bool{}
	for _, a := range all {
		names[a.Name] = true
	}
	for _, want := range []string{"matmul", "fft", "sort", "stencil1", "broadcast-tree", "prefix-tree"} {
		if !names[want] {
			t.Errorf("built-in %q not visible through the root package", want)
		}
	}
	a, ok := nob.AlgorithmByName("fft")
	if !ok {
		t.Fatal("AlgorithmByName(fft) failed")
	}
	run, err := a.Run(t.Context(), nob.Spec{}, 64)
	if err != nil {
		t.Fatal(err)
	}
	if run.Trace == nil || run.Trace.V != 64 {
		t.Fatalf("unexpected run result %+v", run)
	}
	var se *nob.SizeError
	if err := a.ValidSize(65); !errors.As(err, &se) {
		t.Errorf("ValidSize(65) = %v, want a *SizeError", err)
	}
}
