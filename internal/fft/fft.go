// Package fft implements the network-oblivious fast Fourier transform of
// Section 4.2 of the paper, plus the straightforward butterfly algorithm
// as the suboptimal oblivious baseline it improves upon.
//
// The n-FFT problem evaluates the n-input FFT DAG; the network-oblivious
// algorithm is specified on M(n) (one value per VP) and recursively
// decomposes the DAG into √n-input subDAGs separated by a matrix
// transposition, achieving H(n,p,σ) = O((n/p + σ)·log n / log(n/p)) —
// Θ(1)-optimal for σ = O(n/p) (Theorem 4.5, Corollary 4.6).
//
// Substitution note (documented in DESIGN.md): we implement the recursion
// in the four-step (transpose–FFT–twiddle–transpose–FFT–transpose) form
// with natural-order inputs and outputs.  The paper's DAG formulation uses
// digit-reversed conventions and a single transposition per level; ours
// uses three, which changes only the constant of the O(n/p + σ) term per
// level and none of the optimality claims, while keeping the index
// arithmetic verifiable against a direct O(n²) DFT.
//
// TransformIterative evaluates the DAG level by level (one superstep per
// butterfly stage).  It is also network-oblivious but pays
// H = Θ((n/p + σ)·log p), a log p·log(n/p)/log n factor worse — the
// quantitative motivation for the recursive algorithm.
package fft

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"

	"netoblivious/alg"
	"netoblivious/internal/core"
)

// Options is the unified run configuration (engine, recording, wiseness
// dummies, cancellation).
type Options = alg.Spec

// Result carries the transform output and the communication trace.
type Result struct {
	// Out[k] = Σ_j x[j]·e^{-2πi·jk/n}, natural order.
	Out []complex128
	// Trace is the recorded communication of the M(n) execution.
	Trace *core.Trace
}

// twiddle returns ω_m^t = e^{-2πi·t/m}.
func twiddle(m, t int) complex128 {
	return cmplx.Exp(complex(0, -2*math.Pi*float64(t)/float64(m)))
}

// SeqDFT is the O(n²) reference transform.
func SeqDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var acc complex128
		for j := 0; j < n; j++ {
			acc += x[j] * twiddle(n, j*k%n)
		}
		out[k] = acc
	}
	return out
}

// SeqFFT is an in-place iterative radix-2 reference, used to validate the
// parallel algorithms at sizes where SeqDFT is too slow.
func SeqFFT(x []complex128) []complex128 {
	n := len(x)
	if n&(n-1) != 0 {
		panic("fft: SeqFFT needs a power-of-two length")
	}
	out := make([]complex128, n)
	logN := core.Log2(n)
	for i, v := range x {
		out[reverseBits(i, logN)] = v
	}
	for s := 1; s <= logN; s++ {
		m := 1 << uint(s)
		for k := 0; k < n; k += m {
			for j := 0; j < m/2; j++ {
				w := twiddle(m, j)
				t := w * out[k+j+m/2]
				u := out[k+j]
				out[k+j] = u + t
				out[k+j+m/2] = u - t
			}
		}
	}
	return out
}

func reverseBits(i, width int) int {
	return int(bits.Reverse64(uint64(i)) >> uint(64-width))
}

func validate(x []complex128) error {
	n := len(x)
	if n < 1 || n&(n-1) != 0 {
		return fmt.Errorf("fft: input length %d must be a positive power of two", n)
	}
	return nil
}

// Transform runs the recursive network-oblivious n-FFT on M(n), n = len(x).
func Transform(x []complex128, opts Options) (*Result, error) {
	if err := validate(x); err != nil {
		return nil, err
	}
	n := len(x)
	out := make([]complex128, n)
	prog := func(vp *core.VP[complex128]) {
		out[vp.ID()] = fftRec(vp, 0, n, x[vp.ID()], opts.Wise)
	}
	tr, err := core.RunOpt(n, prog, opts.RunOptions())
	if err != nil {
		return nil, err
	}
	return &Result{Out: out, Trace: tr}, nil
}

// permute routes val according to dst within the current segment and
// returns the value this VP receives.  Fixed points stay local (no
// message).
func permute(vp *core.VP[complex128], label, dst int, val complex128, wise bool) complex128 {
	self := dst == vp.ID()
	if !self {
		vp.Send(dst, val)
	}
	if wise {
		core.WisenessDummies(vp, label, 1)
	}
	vp.Sync(label)
	if self {
		return val
	}
	got, ok := vp.Receive()
	if !ok {
		panic("fft: permutation delivered no value")
	}
	return got
}

// fftRec computes the size-point DFT of the values held one-per-VP by the
// segment [base, base+size) in natural order (VP at segment position t
// holds x[t] on entry and X[t] on return).
func fftRec(vp *core.VP[complex128], base, size int, val complex128, wise bool) complex128 {
	if size == 1 {
		return val
	}
	label := vp.LogV() - core.Log2(size)
	pos := vp.ID() - base
	if size == 2 {
		other := base + 1 - pos
		vp.Send(other, val)
		if wise {
			core.WisenessDummies(vp, label, 1)
		}
		vp.Sync(label)
		got, ok := vp.Receive()
		if !ok {
			panic("fft: butterfly exchange delivered no value")
		}
		if pos == 0 {
			return val + got // X[0] = x0 + x1
		}
		return got - val // X[1] = x0 - x1
	}

	// Split size = n1·n2 with n2 = 2^⌈log size/2⌉ (the paper's uneven
	// generalization for log size odd).
	lsz := core.Log2(size)
	n2 := 1 << uint((lsz+1)/2)
	n1 := size / n2

	// T1: gather columns; pos j2·n1+j1 → j1·n2+j2.
	j2, j1 := pos/n1, pos%n1
	val = permute(vp, label, base+j1*n2+j2, val, wise)

	// R1: n1 independent n2-point DFTs on consecutive subsegments.
	f := vp.ID() - base
	val = fftRec(vp, base+f/n2*n2, n2, val, wise)

	// Twiddle: position j1·n2+k2 scales by ω_size^{j1·k2}.
	j1, k2 := f/n2, f%n2
	val *= twiddle(size, j1*k2)

	// T2: regroup by k2; pos j1·n2+k2 → k2·n1+j1.
	val = permute(vp, label, base+k2*n1+j1, val, wise)

	// R2: n2 independent n1-point DFTs.
	f = vp.ID() - base
	val = fftRec(vp, base+f/n1*n1, n1, val, wise)

	// T3: natural-order output; pos k2·n1+k1 → k1·n2+k2.
	k2, k1 := f/n1, f%n1
	return permute(vp, label, base+k1*n2+k2, val, wise)
}

// TransformIterative evaluates the FFT DAG one butterfly level per
// superstep (decimation in frequency), followed by a bit-reversal
// unscrambling superstep.  Network-oblivious but only
// H = Θ((n/p + σ)·log p): the baseline of experiment E3.
func TransformIterative(x []complex128, opts Options) (*Result, error) {
	if err := validate(x); err != nil {
		return nil, err
	}
	n := len(x)
	logN := core.Log2(n)
	out := make([]complex128, n)
	prog := func(vp *core.VP[complex128]) {
		val := x[vp.ID()]
		if n == 1 {
			out[0] = val
			return
		}
		w := vp.ID()
		for l := logN - 1; l >= 0; l-- {
			// Stage pairs indices differing in bit l; partners share
			// the top logN-l-1 bits, so the superstep label is exactly
			// that.
			label := logN - l - 1
			partner := w ^ (1 << uint(l))
			vp.Send(partner, val)
			if opts.Wise {
				core.WisenessDummies(vp, label, 1)
			}
			vp.Sync(label)
			got, ok := vp.Receive()
			if !ok {
				panic("fft: iterative stage delivered no value")
			}
			if w&(1<<uint(l)) == 0 {
				val = val + got
			} else {
				val = (got - val) * twiddle(1<<uint(l+1), w&(1<<uint(l)-1))
			}
		}
		// Unscramble: DIF leaves X[rev(w)] at position w.
		dst := reverseBits(w, logN)
		if dst != w {
			vp.Send(dst, val)
		}
		if opts.Wise {
			core.WisenessDummies(vp, 0, 1)
		}
		vp.Sync(0)
		if dst == w {
			out[w] = val
		} else {
			got, ok := vp.Receive()
			if !ok {
				panic("fft: unscramble delivered no value")
			}
			out[w] = got
		}
	}
	tr, err := core.RunOpt(n, prog, opts.RunOptions())
	if err != nil {
		return nil, err
	}
	return &Result{Out: out, Trace: tr}, nil
}
