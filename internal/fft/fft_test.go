package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"netoblivious/internal/eval"
	"netoblivious/internal/theory"
)

func randInput(rng *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	return x
}

func maxErr(a, b []complex128) float64 {
	var m float64
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// TestSeqFFTMatchesDFT validates the fast reference against the direct sum.
func TestSeqFFTMatchesDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8, 16, 64, 256} {
		x := randInput(rng, n)
		if err := maxErr(SeqFFT(x), SeqDFT(x)); err > 1e-8*float64(n) {
			t.Errorf("n=%d: SeqFFT vs SeqDFT err %v", n, err)
		}
	}
}

// TestTransformCorrectness: the recursive network-oblivious FFT against the
// reference, for powers of two with both even and odd logs.
func TestTransformCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 1024} {
		x := randInput(rng, n)
		res, err := Transform(x, Options{Wise: true})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if e := maxErr(res.Out, SeqFFT(x)); e > 1e-8*float64(n) {
			t.Errorf("n=%d: err %v", n, e)
		}
	}
}

// TestTransformIterativeCorrectness: the butterfly baseline.
func TestTransformIterativeCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 4, 8, 64, 512} {
		x := randInput(rng, n)
		res, err := TransformIterative(x, Options{Wise: true})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if e := maxErr(res.Out, SeqFFT(x)); e > 1e-8*float64(n) {
			t.Errorf("n=%d: err %v", n, e)
		}
	}
}

// TestDelta: the transform of a unit impulse is the all-ones vector.
func TestDelta(t *testing.T) {
	n := 64
	x := make([]complex128, n)
	x[0] = 1
	res, err := Transform(x, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range res.Out {
		if cmplx.Abs(v-1) > 1e-9 {
			t.Fatalf("impulse response at %d: %v, want 1", k, v)
		}
	}
}

// TestTransformComplexity verifies Theorem 4.5's shape and that the
// recursive algorithm beats the iterative baseline where the theory says
// it must (p large relative to n).
func TestTransformComplexity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 1 << 10
	x := randInput(rng, n)
	rec, err := Transform(x, Options{Wise: true})
	if err != nil {
		t.Fatal(err)
	}
	it, err := TransformIterative(x, Options{Wise: true})
	if err != nil {
		t.Fatal(err)
	}
	for p := 2; p <= n; p *= 4 {
		h := eval.H(rec.Trace, p, 0)
		pred := theory.PredictedFFT(float64(n), p, 0)
		if ratio := h / pred; ratio > 12 || ratio < 0.05 {
			t.Errorf("p=%d: H=%v vs predicted %v (ratio %v)", p, h, pred, ratio)
		}
	}
	// At p = n (full parallelism) the recursive algorithm's message load
	// is Θ(n·log n/log(n/p)) hmm — compare superstep-weighted: with σ>0
	// the baseline pays σ·log n vs recursive σ·(2^i sum) = O(log n)...
	// The decisive regime: p close to n, σ large: iterative pays
	// Θ(σ log n), recursive Θ(σ·log n/log(n/p))·... both O(log n) at p=n.
	// The separation shows at moderate p with σ: iterative σ·log p vs
	// recursive σ·log n/log(n/p).
	p := 1 << 5         // p = 32, n = 1024: log n/log(n/p) = 2, log p = 5
	sigma := float64(n) // make σ dominate
	hRec := eval.H(rec.Trace, p, sigma)
	hIt := eval.H(it.Trace, p, sigma)
	if hRec >= hIt {
		t.Errorf("recursive (%v) should beat iterative (%v) at p=%d σ=%v", hRec, hIt, p, sigma)
	}
}

// TestWiseness: the FFT algorithm with dummies is (Θ(1), n)-wise.
func TestWiseness(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 256
	x := randInput(rng, n)
	res, err := Transform(x, Options{Wise: true})
	if err != nil {
		t.Fatal(err)
	}
	for p := 2; p <= n; p *= 4 {
		if alpha := eval.Wiseness(res.Trace, p); alpha < 0.05 {
			t.Errorf("α(%d) = %v, want Θ(1)", p, alpha)
		}
	}
}

// TestFoldingLemmaOnFFT: Lemma 3.1 on the real trace.
func TestFoldingLemmaOnFFT(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 256
	res, err := Transform(randInput(rng, n), Options{Wise: true})
	if err != nil {
		t.Fatal(err)
	}
	for p := 2; p <= n; p *= 2 {
		if err := eval.CheckFoldingLemma(res.Trace, p); err != nil {
			t.Errorf("p=%d: %v", p, err)
		}
	}
}

// TestLinearity is a property test: FFT(a·x + y) = a·FFT(x) + FFT(y).
func TestLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 64
	x, y := randInput(rng, n), randInput(rng, n)
	a := complex(1.7, -0.3)
	z := make([]complex128, n)
	for i := range z {
		z[i] = a*x[i] + y[i]
	}
	rx, err := Transform(x, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ry, err := Transform(y, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rz, err := Transform(z, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for k := range rz.Out {
		want := a*rx.Out[k] + ry.Out[k]
		if cmplx.Abs(rz.Out[k]-want) > 1e-8 {
			t.Fatalf("linearity broken at %d: %v vs %v", k, rz.Out[k], want)
		}
	}
}

// TestParseval checks energy conservation: Σ|X|² = n·Σ|x|².
func TestParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := 128
	x := randInput(rng, n)
	res, err := Transform(x, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var ein, eout float64
	for i := range x {
		ein += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
		eout += real(res.Out[i])*real(res.Out[i]) + imag(res.Out[i])*imag(res.Out[i])
	}
	if math.Abs(eout-float64(n)*ein) > 1e-6*eout {
		t.Errorf("Parseval: out %v vs n·in %v", eout, float64(n)*ein)
	}
}

// TestValidation rejects non-power-of-two inputs.
func TestValidation(t *testing.T) {
	if _, err := Transform(make([]complex128, 3), Options{}); err == nil {
		t.Error("want error for n=3")
	}
	if _, err := TransformIterative(nil, Options{}); err == nil {
		t.Error("want error for empty input")
	}
}
