package fft

import (
	"context"
	"math/rand"

	"netoblivious/alg"
)

// randComplex draws the deterministic registry input.
func randComplex(rng *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.Float64(), 0)
	}
	return x
}

// The registry descriptors pin Wise (see the matmul registration note).
func init() {
	alg.MustRegister(alg.Algorithm{
		Name:    "fft",
		Doc:     "recursive n-FFT (§4.2)",
		SizeDoc: "a power of two >= 2",
		Sizes:   []int{2, 8, 64, 1024},
		Valid:   alg.PowerOfTwo(2),
		RunFn: func(ctx context.Context, spec alg.Spec, n int) (alg.Result, error) {
			spec.Wise = true
			r, err := Transform(randComplex(alg.SeededRand(), n), spec)
			if err != nil {
				return alg.Result{}, err
			}
			return alg.Result{Trace: r.Trace}, nil
		},
	})
	alg.MustRegister(alg.Algorithm{
		Name:    "fft-iterative",
		Doc:     "butterfly baseline FFT (§4.2 discussion)",
		SizeDoc: "a power of two >= 2",
		Sizes:   []int{2, 8, 64, 1024},
		Valid:   alg.PowerOfTwo(2),
		RunFn: func(ctx context.Context, spec alg.Spec, n int) (alg.Result, error) {
			spec.Wise = true
			r, err := TransformIterative(randComplex(alg.SeededRand(), n), spec)
			if err != nil {
				return alg.Result{}, err
			}
			return alg.Result{Trace: r.Trace}, nil
		},
	})
}
