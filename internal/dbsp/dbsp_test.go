package dbsp

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"netoblivious/internal/core"
	"netoblivious/internal/randalg"
)

func TestNewValidation(t *testing.T) {
	if _, err := New("x", 3, nil, nil); err == nil {
		t.Error("want error for non-power-of-two p")
	}
	if _, err := New("x", 4, []float64{1}, []float64{1, 1}); err == nil {
		t.Error("want error for wrong vector lengths")
	}
	if _, err := New("x", 4, []float64{1, -1}, []float64{1, 1}); err == nil {
		t.Error("want error for nonpositive g")
	}
	if _, err := New("x", 4, []float64{1, 1}, []float64{1, math.Inf(1)}); err == nil {
		t.Error("want error for infinite l")
	}
	if _, err := New("x", 4, []float64{2, 1}, []float64{4, 1}); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
}

func TestAdmissibility(t *testing.T) {
	// Increasing g violates the hypothesis of Theorem 3.4.
	bad := MustNew("bad-g", 4, []float64{1, 2}, []float64{2, 2})
	if err := bad.Admissible(); err == nil || !strings.Contains(err.Error(), "g is increasing") {
		t.Errorf("want g-increasing error, got %v", err)
	}
	// Increasing ℓ/g likewise.
	bad2 := MustNew("bad-lg", 4, []float64{2, 2}, []float64{2, 4})
	if err := bad2.Admissible(); err == nil || !strings.Contains(err.Error(), "ℓ/g is increasing") {
		t.Errorf("want ratio-increasing error, got %v", err)
	}
	for _, p := range []int{4, 16, 64, 256} {
		for _, pr := range Presets(p) {
			if err := pr.Admissible(); err != nil {
				t.Errorf("preset %s not admissible: %v", pr.Name, err)
			}
		}
	}
}

func TestMeshVectors(t *testing.T) {
	pr := Mesh(2, 16)
	// i-cluster has 16/2^i processors; g_i = sqrt of that.
	want := []float64{4, math.Sqrt(8), 2, math.Sqrt(2)}
	for i, w := range want {
		if math.Abs(pr.G[i]-w) > 1e-12 {
			t.Errorf("mesh-2D g[%d] = %v, want %v", i, pr.G[i], w)
		}
	}
	hc := Hypercube(16)
	wantL := []float64{4, 3, 2, 1}
	for i, w := range wantL {
		if hc.L[i] != w || hc.G[i] != 1 {
			t.Errorf("hypercube level %d: g=%v l=%v, want 1, %v", i, hc.G[i], hc.L[i], w)
		}
	}
}

// TestCommTimeMatchesHOnUniform: on Uniform(p, 1, σ) the D-BSP time equals
// the evaluation-model complexity H(n, p, σ) — the paper notes M(p, σ) is
// exactly BSP with g=1, ℓ=σ.
func TestCommTimeMatchesHOnUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		v := 1 << uint(2+rng.Intn(4))
		spec := randalg.Random(rng, v, 5, 3)
		tr, err := spec.Run()
		if err != nil {
			t.Fatal(err)
		}
		for p := 2; p <= v; p *= 2 {
			for _, sigma := range []float64{0, 1, 7} {
				d := CommTime(tr, Uniform(p, 1, sigma))
				f := tr.F(p)
				s := tr.S()
				var want float64
				for i := 0; i < core.Log2(p); i++ {
					want += float64(f[i]) + float64(s[i])*sigma
				}
				if math.Abs(d-want) > 1e-9 {
					t.Errorf("trial %d p=%d σ=%v: D=%v, want %v", trial, p, sigma, d, want)
				}
			}
		}
	}
}

// TestAscendDescendDelivers: the executable protocol must route every
// message to its destination and produce a profile whose per-level degrees
// obey Lemma 5.1's bound.
func TestAscendDescendDelivers(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		v := 1 << uint(2+rng.Intn(4)) // 4..32
		spec := randalg.Random(rng, v, 4, 3)
		tr, err := core.RunOpt(v, spec.Program(), core.Options{RecordMessages: true})
		if err != nil {
			t.Fatal(err)
		}
		for p := 2; p <= v; p *= 2 {
			pc, err := AscendDescend(tr, p)
			if err != nil {
				t.Fatalf("trial %d p=%d: %v", trial, p, err)
			}
			lp := core.Log2(p)
			if len(pc.F) != lp || len(pc.S) != lp {
				t.Fatalf("profile lengths %d/%d, want %d", len(pc.F), len(pc.S), lp)
			}
			// Lemma 5.1: per original superstep of label i, for each
			// k in (i, log p), O(1) k-supersteps of degree
			// O(2^k·h_s(n,2^k)/p) plus O(log p) constant-degree ones.
			// Check the aggregate: F[k] <= Σ_s (2·2^{k+1}·h_s(2^{k+1})/p
			// + 4·log p + 2·h_s... we use the safe aggregate constant 8.
			for k := 0; k < lp; k++ {
				var bound int64
				for si := range tr.Steps {
					rec := &tr.Steps[si]
					if rec.Label >= lp || rec.Label > k {
						continue
					}
					var h int64
					if k+1 <= tr.LogV {
						h = rec.Degree[k+1]
					}
					per := 8 * (int64(1)<<uint(k+1)*h/int64(p) + 1 + int64(lp))
					bound += per
				}
				if pc.F[k] > bound {
					t.Errorf("trial %d p=%d: F[%d]=%d exceeds Lemma 5.1 bound %d", trial, p, k, pc.F[k], bound)
				}
			}
		}
	}
}

// TestAscendDescendUnbalancedPair reproduces the Section 5 motivating
// example: VP 0 sends n messages to VP v/2.  Standard execution costs
// n·g_0; the ascend–descend protocol spreads the messages and pays
// O(n/p·Σ g_k + polylog) — strictly better on machines with steep g.
func TestAscendDescendUnbalancedPair(t *testing.T) {
	const v = 64
	const n = 4096
	tr, err := core.RunOpt(v, func(vp *core.VP[int]) {
		if vp.ID() == 0 {
			for k := 0; k < n; k++ {
				vp.Send(v/2, k)
			}
		}
		vp.Sync(0)
		vp.Sync(0)
	}, core.Options{RecordMessages: true})
	if err != nil {
		t.Fatal(err)
	}
	p := v
	pr := Mesh(1, p) // steep: g_0 = p
	standard := CommTime(tr, pr)
	pc, err := AscendDescend(tr, p)
	if err != nil {
		t.Fatal(err)
	}
	rebalanced := pc.CommTime(pr)
	if rebalanced >= standard {
		t.Errorf("ascend–descend did not help: %v >= %v", rebalanced, standard)
	}
	// Standard pays ~ n·g_0 = n·p; rebalanced ~ (n/p)·Σ2^k + prefix —
	// expect at least a 4x improvement at these sizes.
	if rebalanced*4 > standard {
		t.Errorf("improvement too small: standard %v, rebalanced %v", standard, rebalanced)
	}
}

// TestAscendDescendNeedsPairs: a trace without pairs is rejected.
func TestAscendDescendNeedsPairs(t *testing.T) {
	tr, err := core.Run(4, func(vp *core.VP[int]) {
		vp.Send(vp.ID()^1, 1)
		vp.Sync(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AscendDescend(tr, 4); err == nil {
		t.Error("want error for trace without RecordMessages")
	}
}

// TestCommTimeOf sanity-checks the vector form against the trace form.
func TestCommTimeOf(t *testing.T) {
	tr, err := core.Run(8, func(vp *core.VP[int]) {
		vp.Send(7-vp.ID(), 0)
		vp.Sync(0)
		vp.Send(vp.ID()^1, 0)
		vp.Sync(2)
	})
	if err != nil {
		t.Fatal(err)
	}
	pr := Hypercube(8)
	if got, want := CommTimeOf(tr.F(8), tr.S(), pr), CommTime(tr, pr); got != want {
		t.Errorf("CommTimeOf = %v, CommTime = %v", got, want)
	}
}
