// Package dbsp implements the execution machine model of the network-
// oblivious framework: the Decomposable Bulk Synchronous Parallel model
// D-BSP(p, g, ℓ) of de la Torre–Kruskal and Bilardi et al., used by the
// paper (Section 2) as the model on which network-oblivious algorithms are
// ultimately executed.
//
// A D-BSP(p, g, ℓ) is an M(p) whose processors are partitioned into nested
// i-clusters of p/2^i processors; an i-superstep of degree h costs
// h·g_i + ℓ_i time units.  The communication time of an algorithm is
//
//	D_A(n, p, g, ℓ) = Σ_{i<log p} (F_i(n,p)·g_i + S_i(n)·ℓ_i)   (Eq. 2)
//
// The package also provides parameter-vector generators for common
// point-to-point networks (following Bilardi, Pietracaprina, Pucci,
// "A quantitative measure of portability...", Euro-Par 1999, which shows
// D-BSP captures these networks well) and the ascend–descend execution
// protocol of Section 5, which rebalances the communication of non-wise
// algorithms at a polylogarithmic cost (Lemma 5.1, Theorem 5.3).
package dbsp

import (
	"fmt"
	"math"

	"netoblivious/internal/core"
)

// Params is a D-BSP(p, g, ℓ) parameter assignment.
type Params struct {
	// Name identifies the network the parameters model (informational).
	Name string
	// P is the number of processors, a power of two >= 2.
	P int
	// G[i] is the inverse bandwidth (time per message) within i-clusters,
	// for 0 <= i < log2(P).
	G []float64
	// L[i] is the latency plus synchronization cost within i-clusters.
	L []float64
}

// New validates and builds a parameter assignment.
func New(name string, p int, g, l []float64) (Params, error) {
	if p < 2 || p&(p-1) != 0 {
		return Params{}, fmt.Errorf("dbsp: p must be a power of two >= 2, got %d", p)
	}
	lp := core.Log2(p)
	if len(g) != lp || len(l) != lp {
		return Params{}, fmt.Errorf("dbsp: need log p = %d entries, got |g|=%d |l|=%d", lp, len(g), len(l))
	}
	for i := 0; i < lp; i++ {
		if g[i] <= 0 || math.IsNaN(g[i]) || math.IsInf(g[i], 0) {
			return Params{}, fmt.Errorf("dbsp: g[%d] = %v must be positive and finite", i, g[i])
		}
		if l[i] < 0 || math.IsNaN(l[i]) || math.IsInf(l[i], 0) {
			return Params{}, fmt.Errorf("dbsp: l[%d] = %v must be nonnegative and finite", i, l[i])
		}
	}
	return Params{Name: name, P: p, G: g, L: l}, nil
}

// MustNew is New for statically correct parameters; it panics on error.
func MustNew(name string, p int, g, l []float64) Params {
	pr, err := New(name, p, g, l)
	if err != nil {
		panic(err)
	}
	return pr
}

// LogP returns log2(P).
func (pr Params) LogP() int { return core.Log2(pr.P) }

// Admissible reports whether the parameters satisfy the structural
// hypotheses of the optimality theorem (Theorem 3.4): the g_i and the
// ratios ℓ_i/g_i must both be nonincreasing in i (larger submachines have
// costlier communication and larger capacity).
func (pr Params) Admissible() error {
	for i := 0; i+1 < len(pr.G); i++ {
		if pr.G[i] < pr.G[i+1] {
			return fmt.Errorf("dbsp(%s): g is increasing at level %d (%v < %v)", pr.Name, i, pr.G[i], pr.G[i+1])
		}
		if pr.L[i]/pr.G[i] < pr.L[i+1]/pr.G[i+1] {
			return fmt.Errorf("dbsp(%s): ℓ/g is increasing at level %d (%v < %v)", pr.Name, i, pr.L[i]/pr.G[i], pr.L[i+1]/pr.G[i+1])
		}
	}
	return nil
}

// CommTime returns the communication time D_A(n, p, g, ℓ) (Equation 2) of
// the recorded algorithm folded onto this machine.
func CommTime(tr *core.Trace, pr Params) float64 {
	lp := pr.LogP()
	if lp > tr.LogV {
		panic(fmt.Sprintf("dbsp: machine p=%d larger than specification v=%d", pr.P, tr.V))
	}
	f := tr.F(pr.P)
	s := tr.S()
	var d float64
	for i := 0; i < lp; i++ {
		d += float64(f[i]) * pr.G[i]
		if i < len(s) {
			d += float64(s[i]) * pr.L[i]
		}
	}
	return d
}

// CommTimeSummary is CommTime over a FoldSummary: the D-BSP cost of a
// streamed trace from one Summarize pass, no steps in memory.
func CommTimeSummary(fs *core.FoldSummary, pr Params) float64 {
	lp := pr.LogP()
	if lp > fs.LogV() {
		panic(fmt.Sprintf("dbsp: machine p=%d larger than specification v=%d", pr.P, fs.V()))
	}
	return CommTimeOf(fs.F(pr.P), fs.S(), pr)
}

// CommTimeOf computes Eq. 2 from explicit F and S vectors (used by the
// ascend–descend protocol and by hand-built cost models).
func CommTimeOf(f, s []int64, pr Params) float64 {
	lp := pr.LogP()
	var d float64
	for i := 0; i < lp; i++ {
		if i < len(f) {
			d += float64(f[i]) * pr.G[i]
		}
		if i < len(s) {
			d += float64(s[i]) * pr.L[i]
		}
	}
	return d
}

// --- Network presets -----------------------------------------------------
//
// Each preset returns the asymptotic D-BSP vectors for a p-processor
// instance of the network, with unit constants.  The i-cluster corresponds
// to a submachine with m = p/2^i processors.

// Uniform returns flat vectors g_i = g, ℓ_i = l: a plain BSP(p, g, l)
// machine that ignores locality.
func Uniform(p int, g, l float64) Params {
	lp := core.Log2(p)
	gs := make([]float64, lp)
	ls := make([]float64, lp)
	for i := range gs {
		gs[i], ls[i] = g, l
	}
	return MustNew(fmt.Sprintf("uniform(g=%g,l=%g)", g, l), p, gs, ls)
}

// Mesh returns the vectors of a d-dimensional mesh/torus: a submachine
// with m processors has bisection bandwidth m^{1-1/d} and diameter m^{1/d},
// giving g_i = (p/2^i)^{1/d} and ℓ_i = (p/2^i)^{1/d}.
func Mesh(d, p int) Params {
	if d < 1 {
		panic("dbsp: mesh dimension must be >= 1")
	}
	lp := core.Log2(p)
	gs := make([]float64, lp)
	ls := make([]float64, lp)
	for i := 0; i < lp; i++ {
		m := float64(int64(p) >> uint(i))
		gs[i] = math.Pow(m, 1/float64(d))
		ls[i] = math.Pow(m, 1/float64(d))
	}
	return MustNew(fmt.Sprintf("mesh-%dD(p=%d)", d, p), p, gs, ls)
}

// Hypercube returns the vectors of a binary hypercube with multiport
// routing: constant inverse bandwidth and logarithmic latency,
// g_i = 1, ℓ_i = max{1, log2(p/2^i)}.
func Hypercube(p int) Params {
	lp := core.Log2(p)
	gs := make([]float64, lp)
	ls := make([]float64, lp)
	for i := 0; i < lp; i++ {
		gs[i] = 1
		ls[i] = math.Max(1, float64(lp-i))
	}
	return MustNew(fmt.Sprintf("hypercube(p=%d)", p), p, gs, ls)
}

// FatTree returns the vectors of an area-universal fat-tree:
// g_i = ℓ_i = max{1, log2(p/2^i)} (bandwidth thinning and depth both
// logarithmic in the submachine size).
func FatTree(p int) Params {
	lp := core.Log2(p)
	gs := make([]float64, lp)
	ls := make([]float64, lp)
	for i := 0; i < lp; i++ {
		v := math.Max(1, float64(lp-i))
		gs[i] = v
		ls[i] = v
	}
	return MustNew(fmt.Sprintf("fattree(p=%d)", p), p, gs, ls)
}

// Presets returns the standard network suite used by the experiments.
func Presets(p int) []Params {
	return []Params{
		Uniform(p, 1, 1),
		Mesh(1, p),
		Mesh(2, p),
		Mesh(3, p),
		Hypercube(p),
		FatTree(p),
	}
}
