package dbsp

import (
	"math"
	"math/rand"
	"testing"

	"netoblivious/internal/core"
	"netoblivious/internal/eval"
)

// TestTheorem53PolylogOverhead: executing an already-wise algorithm
// through the ascend–descend protocol costs at most an O(log²p) factor
// over direct execution (the Theorem 5.3 accounting), and never breaks
// correctness of the profile (nonnegative, complete).
func TestTheorem53PolylogOverhead(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	const v = 64
	// A balanced workload: every VP exchanges with its complement, then
	// pairwise traffic at a deep label.
	tr, err := core.RunOpt(v, func(vp *core.VP[int]) {
		for r := 0; r < 3; r++ {
			vp.Send(v-1-vp.ID(), r)
			vp.Sync(0)
		}
		for r := 0; r < 3; r++ {
			vp.Send(vp.ID()^1, r)
			vp.Sync(core.Log2(v) - 1)
		}
		vp.Sync(0)
	}, core.Options{RecordMessages: true})
	if err != nil {
		t.Fatal(err)
	}
	_ = rng
	for _, pr := range Presets(v) {
		direct := CommTime(tr, pr)
		pc, err := AscendDescend(tr, v)
		if err != nil {
			t.Fatal(err)
		}
		reb := pc.CommTime(pr)
		lg := math.Log2(float64(v))
		// Theorem 5.3 budget: (1 + 1/γ)·log²p with our explicit protocol
		// constants (2 supersteps + 2·log p prefix steps per level).
		gamma := eval.Fullness(tr, v)
		budget := (1 + 1/gamma) * lg * lg * 16
		if reb > budget*direct {
			t.Errorf("%s: ascend–descend %v exceeds Theorem 5.3 budget %v×direct (%v)", pr.Name, reb, budget, direct)
		}
		if reb <= 0 {
			t.Errorf("%s: nonpositive protocol time %v", pr.Name, reb)
		}
	}
}

// TestAscendDescendProfileShape: the protocol profile has entries for all
// levels and its superstep counts match Lemma 5.1's structure: per
// original i-superstep, one movement superstep plus 2·log2(cluster size)
// prefix supersteps at each level k in [i, log p).
func TestAscendDescendProfileShape(t *testing.T) {
	const v = 16
	tr, err := core.RunOpt(v, func(vp *core.VP[int]) {
		vp.Send(v-1-vp.ID(), 1)
		vp.Sync(0)
		vp.Sync(0)
	}, core.Options{RecordMessages: true})
	if err != nil {
		t.Fatal(err)
	}
	pc, err := AscendDescend(tr, v)
	if err != nil {
		t.Fatal(err)
	}
	lp := core.Log2(v)
	// Two 0-supersteps; each triggers ascend k=lp-1..1 and descend
	// k=0..lp-1: level k appears twice per superstep except k=0 (descend
	// only), each occurrence = 1 + 2(lp-k) supersteps.
	for k := 0; k < lp; k++ {
		occurrences := 2
		if k == 0 {
			occurrences = 1
		}
		want := int64(2 * occurrences * (1 + 2*(lp-k)))
		if pc.S[k] != want {
			t.Errorf("S[%d] = %d, want %d", k, pc.S[k], want)
		}
	}
}
