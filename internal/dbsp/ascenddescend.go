package dbsp

import (
	"fmt"

	"netoblivious/internal/core"
)

// ProtocolCost is the superstep/degree profile of an algorithm executed on
// a D-BSP through the ascend–descend protocol of Section 5.  It plays the
// role of the (F, S) vectors of the rewritten algorithm Ã of Theorem 5.3.
type ProtocolCost struct {
	// P is the number of D-BSP processors.
	P int
	// F[i] is the cumulative degree of the protocol's i-supersteps.
	F []int64
	// S[i] is the number of i-supersteps the protocol executes
	// (communication supersteps plus the prefix-computation supersteps).
	S []int64
}

// CommTime evaluates Eq. 2 for the protocol profile on the given machine.
func (pc ProtocolCost) CommTime(pr Params) float64 {
	if pr.P != pc.P {
		panic(fmt.Sprintf("dbsp: protocol simulated for p=%d, machine has p=%d", pc.P, pr.P))
	}
	return CommTimeOf(pc.F, pc.S, pr)
}

// AscendDescend simulates the ascend–descend protocol (Section 5) for the
// recorded algorithm on p processors and returns the exact superstep
// profile of the rewritten execution.
//
// For each i-superstep s of the original algorithm, the protocol executes:
//
//   - ascend phases k = log p − 1 down to i+1: within each k-cluster, the
//     messages originating in the cluster but destined outside it are
//     spread evenly over the cluster's processors;
//   - descend phases k = i up to log p − 1: within each k-cluster, the
//     messages residing in it are spread evenly over the processors of the
//     (k+1)-clusters containing their destinations.
//
// Each phase is preceded by a prefix-like computation that assigns the
// intermediate destinations; we charge it as 2·log2(cluster size)
// k-supersteps of degree 2 (a binary-tree reduce + broadcast, Ja'Ja' 1992),
// matching the O(log p) constant-degree supersteps of Lemma 5.1.
//
// The trace must have been recorded with Options.RecordMessages.
func AscendDescend(tr *core.Trace, p int) (ProtocolCost, error) {
	lp := core.Log2(p)
	if lp < 1 || lp > tr.LogV {
		return ProtocolCost{}, fmt.Errorf("dbsp: AscendDescend: p=%d invalid for v=%d", p, tr.V)
	}
	shift := uint(tr.LogV - lp)
	pc := ProtocolCost{P: p, F: make([]int64, lp), S: make([]int64, lp)}

	for si := range tr.Steps {
		rec := &tr.Steps[si]
		if rec.Messages > 0 && rec.Pairs == nil {
			return ProtocolCost{}, fmt.Errorf("dbsp: AscendDescend requires a trace recorded with RecordMessages")
		}
		label := rec.Label
		if label >= lp {
			continue // local on M(p): no communication, no protocol
		}
		// Map messages to processor granularity.  holder[m] is the
		// processor currently holding message m.
		type msg struct{ holder, dst int }
		msgs := make([]msg, 0, rec.Pairs.Len())
		for src, dst := range rec.Pairs.All() {
			msgs = append(msgs, msg{holder: int(src) >> shift, dst: int(dst) >> shift})
		}

		// movePhase redistributes, for every k-cluster, the messages
		// selected by pick (which returns the target (sub)cluster range
		// for a message, or ok=false to leave it in place), assigning
		// new holders round-robin inside the target range.  It records
		// the movement as one k-superstep plus the prefix supersteps.
		movePhase := func(k int, pick func(m msg, first, size int) (tfirst, tsize int, ok bool)) {
			size := p >> uint(k)
			sent := make([]int64, p)
			recv := make([]int64, p)
			next := make([]int, p) // round-robin cursor per target range head
			for c := 0; c < 1<<uint(k); c++ {
				first := c * size
				for mi := range msgs {
					m := &msgs[mi]
					if m.holder < first || m.holder >= first+size {
						continue
					}
					tf, ts, ok := pick(*m, first, size)
					if !ok {
						continue
					}
					nh := tf + next[tf]%ts
					next[tf]++
					if nh != m.holder {
						sent[m.holder]++
						recv[nh]++
						m.holder = nh
					}
				}
			}
			var h int64
			for q := 0; q < p; q++ {
				if sent[q] > h {
					h = sent[q]
				}
				if recv[q] > h {
					h = recv[q]
				}
			}
			pc.F[k] += h
			pc.S[k]++
			// Prefix-like computation inside each k-cluster.
			height := int64(lp - k)
			pc.S[k] += 2 * height
			pc.F[k] += 2 * height * 2 // degree-2 tree supersteps
		}

		// Ascend: k = lp-1 down to label+1.
		for k := lp - 1; k >= label+1; k-- {
			movePhase(k, func(m msg, first, size int) (int, int, bool) {
				if m.dst >= first && m.dst < first+size {
					return 0, 0, false // destined inside: stays
				}
				return first, size, true // spread over the whole k-cluster
			})
		}
		// Descend: k = label up to lp-1.
		for k := label; k <= lp-1; k++ {
			subSize := p >> uint(k+1)
			movePhase(k, func(m msg, first, size int) (int, int, bool) {
				if m.dst < first || m.dst >= first+size {
					return 0, 0, false // not yet in the right cluster
				}
				tf := m.dst / subSize * subSize
				return tf, subSize, true
			})
		}
		// After the last descend, every message's holder must be its
		// destination.
		for _, m := range msgs {
			if m.holder != m.dst {
				return ProtocolCost{}, fmt.Errorf("dbsp: internal error: ascend–descend left a message at %d instead of %d", m.holder, m.dst)
			}
		}
	}
	return pc, nil
}
