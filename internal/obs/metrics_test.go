package obs

import (
	"bufio"
	"encoding/json"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("reqs_total", "requests", L("endpoint", "a"))
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := reg.Counter("reqs_total", "requests", L("endpoint", "a")); again != c {
		t.Fatal("same name+labels returned a different counter")
	}
	g := reg.Gauge("depth", "queue depth")
	g.Set(3)
	g.Add(-1.5)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestHistogramBucketsCumulativeAndNumericBounds(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat_ms", "latency", []float64{1, 4, 16})
	for _, v := range []float64{0.5, 1, 2, 5, 100} {
		h.Observe(v)
	}
	snap := reg.Snapshot()
	f := snap.Family("lat_ms")
	if f == nil || len(f.Series) != 1 {
		t.Fatalf("missing lat_ms family: %+v", snap)
	}
	s := f.Series[0]
	if s.Count != 5 || s.Sum != 108.5 {
		t.Fatalf("count=%d sum=%v, want 5 and 108.5", s.Count, s.Sum)
	}
	wantCum := []int64{2, 3, 4, 5} // le=1:{0.5,1}, le=4:+{2}, le=16:+{5}, +Inf:+{100}
	if len(s.Buckets) != len(wantCum) {
		t.Fatalf("bucket count = %d, want %d", len(s.Buckets), len(wantCum))
	}
	for i, b := range s.Buckets {
		if b.Cumulative != wantCum[i] {
			t.Errorf("bucket %d (le=%s) cumulative = %d, want %d", i, b.LE, b.Cumulative, wantCum[i])
		}
		if i > 0 && !(s.Buckets[i-1].Bound < b.Bound) {
			t.Errorf("numeric bounds not strictly ascending at %d", i)
		}
	}
	if !math.IsInf(s.Buckets[len(s.Buckets)-1].Bound, 1) || s.Buckets[len(s.Buckets)-1].LE != "+Inf" {
		t.Fatal("last bucket is not +Inf")
	}
}

func TestPrometheusRendering(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("hits_total", "cache hits").Add(7)
	reg.GaugeFunc("entries", "live entries", func() float64 { return 12 })
	h := reg.Histogram("lat_ms", "latency", []float64{1, 4}, L("algorithm", "fft"))
	h.Observe(0.5)
	h.Observe(9)
	// A label value exercising every escape.
	reg.Counter("odd_total", "odd labels", L("name", "a\\b\"c\nd")).Inc()

	var b strings.Builder
	if err := WritePrometheus(&b, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"# TYPE hits_total counter",
		"hits_total 7",
		"entries 12",
		`lat_ms_bucket{algorithm="fft",le="1"} 1`,
		`lat_ms_bucket{algorithm="fft",le="4"} 1`,
		`lat_ms_bucket{algorithm="fft",le="+Inf"} 2`,
		`lat_ms_sum{algorithm="fft"} 9.5`,
		`lat_ms_count{algorithm="fft"} 2`,
		`odd_total{name="a\\b\"c\nd"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("text output missing %q:\n%s", want, text)
		}
	}
}

// TestPrometheusCumulativeMonotonicity parses rendered text and asserts
// every histogram's buckets are non-decreasing and end at _count.
func TestPrometheusCumulativeMonotonicity(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("x_ms", "", []float64{1, 2, 4, 8})
	for i := 0; i < 100; i++ {
		h.Observe(float64(i % 10))
	}
	var b strings.Builder
	if err := WritePrometheus(&b, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	var cums []int64
	var count int64
	sc := bufio.NewScanner(strings.NewReader(b.String()))
	for sc.Scan() {
		line := sc.Text()
		fields := strings.Fields(line)
		if len(fields) != 2 || strings.HasPrefix(line, "#") {
			continue
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		if strings.HasPrefix(fields[0], "x_ms_bucket") {
			cums = append(cums, v)
		}
		if fields[0] == "x_ms_count" {
			count = v
		}
	}
	if len(cums) != 5 {
		t.Fatalf("parsed %d buckets, want 5", len(cums))
	}
	for i := 1; i < len(cums); i++ {
		if cums[i] < cums[i-1] {
			t.Fatalf("cumulative buckets decrease at %d: %v", i, cums)
		}
	}
	if cums[len(cums)-1] != count || count != 100 {
		t.Fatalf("+Inf bucket %d != count %d (want 100)", cums[len(cums)-1], count)
	}
}

func TestSnapshotJSONAgreesWithText(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a_total", "", L("k", "v1")).Add(3)
	reg.Counter("a_total", "", L("k", "v2")).Add(5)
	reg.Histogram("h_ms", "", []float64{10}).Observe(4)

	snap := reg.Snapshot()
	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WritePrometheus(&b, snap); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, f := range back.Families {
		if f.Type != TypeCounter {
			continue
		}
		for _, s := range f.Series {
			line := f.Name + formatLabels(s.Labels) + " " + formatValue(s.Value)
			if !strings.Contains(text, line) {
				t.Errorf("JSON counter %s not present in text output:\n%s", line, text)
			}
		}
	}
}

func TestRegistryConcurrency(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				reg.Counter("c_total", "", L("g", strconv.Itoa(g%2))).Inc()
				reg.Histogram("h_ms", "", []float64{1, 8, 64}).Observe(float64(i))
				if i%50 == 0 {
					reg.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	snap := reg.Snapshot()
	f := snap.Family("c_total")
	var total float64
	for _, s := range f.Series {
		total += s.Value
	}
	if total != 8*500 {
		t.Fatalf("counter total = %v, want %d", total, 8*500)
	}
	if h := snap.Family("h_ms"); h.Series[0].Count != 8*500 {
		t.Fatalf("histogram count = %d, want %d", h.Series[0].Count, 8*500)
	}
}
