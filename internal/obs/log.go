package obs

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds a slog.Logger from the -log-level / -log-format flag
// values shared by nobld and nobl.  level is one of debug, info, warn,
// error; format is "text" or "json".
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "", "info":
		lvl = slog.LevelInfo
	case "warn", "warning":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown log level %q (have debug, info, warn, error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	var h slog.Handler
	switch strings.ToLower(format) {
	case "", "text":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("unknown log format %q (have text, json)", format)
	}
	return slog.New(h), nil
}

// NewRequestID returns a fresh 16-hex-character request identifier.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; a zero ID is
		// still a valid (if non-unique) identifier.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}
