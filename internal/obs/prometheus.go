package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// escapeLabelValue escapes a label value per the Prometheus text
// exposition format: backslash, double quote, and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, `\"`+"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// formatLabels renders {a="x",b="y"} with an optional extra label
// appended (used for le); returns "" for an empty set.
func formatLabels(labels []Label, extra ...Label) string {
	if len(labels)+len(extra) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for _, l := range labels {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	for _, l := range extra {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// formatValue renders a sample value: integers without an exponent,
// everything else in shortest-round-trip form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders a snapshot in the Prometheus text exposition
// format: # HELP / # TYPE headers, cumulative _bucket{le=...} samples
// ending in +Inf, and _sum/_count for histograms.  Output order is the
// snapshot's (already name/label-sorted), never map order — scrape
// diffs and the golden tests depend on that.
//
//nob:deterministic
func WritePrometheus(w io.Writer, snap Snapshot) error {
	for _, f := range snap.Families {
		if f.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.Name, f.Help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, f.Type); err != nil {
			return err
		}
		for _, s := range f.Series {
			switch f.Type {
			case TypeHistogram:
				for _, b := range s.Buckets {
					if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
						f.Name, formatLabels(s.Labels, L("le", b.LE)), b.Cumulative); err != nil {
						return err
					}
				}
				if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.Name, formatLabels(s.Labels), formatValue(s.Sum)); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_count%s %d\n", f.Name, formatLabels(s.Labels), s.Count); err != nil {
					return err
				}
			default:
				if _, err := fmt.Fprintf(w, "%s%s %s\n", f.Name, formatLabels(s.Labels), formatValue(s.Value)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
