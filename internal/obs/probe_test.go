package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilProbeSafe drives every method through a nil probe: the whole
// point of the API is that instrumented code needs no guards.
func TestNilProbeSafe(t *testing.T) {
	var p *Probe
	if p.Enabled() {
		t.Fatal("nil probe reports enabled")
	}
	start := p.Now()
	if !start.IsZero() {
		t.Fatal("nil probe Now() is not the zero time")
	}
	p.Span("cat", "name", 0, start, nil)
	p.SpanBetween("cat", "name", 0, start, start, nil)
	p.Instant("cat", "name", 0, nil)
	p.Counter("cat", "name", 0, map[string]any{"v": 1})
	p.NameThread(0, "x")
	p.Reset()
	if p.Len() != 0 || p.Dropped() != 0 {
		t.Fatal("nil probe has state")
	}
	var b strings.Builder
	if err := p.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("nil probe trace is not valid JSON: %v", err)
	}
}

func TestProbeChromeTraceShape(t *testing.T) {
	p := NewProbe()
	p.NameThread(3, "worker 3")
	start := p.Now()
	time.Sleep(time.Millisecond)
	p.Span("engine", "superstep 0", 3, start, map[string]any{"messages": 128})
	p.Instant("job", "enqueued", 0, nil)
	p.Counter("engine", "barrier_wait_ns", 0, map[string]any{"w0": 10, "w1": 20})

	var b strings.Builder
	if err := p.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("invalid chrome trace JSON: %v\n%s", err, b.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	var sawSpan, sawMeta, sawCounter, sawInstant bool
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			sawSpan = true
			if e.Name != "superstep 0" || e.Cat != "engine" || e.TID != 3 {
				t.Fatalf("bad span event: %+v", e)
			}
			if e.Dur < 900 { // slept 1ms; dur is in microseconds
				t.Fatalf("span dur = %v us, expected >= ~1000", e.Dur)
			}
			if e.Args["messages"].(float64) != 128 {
				t.Fatalf("span args = %v", e.Args)
			}
		case "M":
			if e.Name == "thread_name" && e.TID == 3 {
				sawMeta = true
			}
		case "C":
			sawCounter = true
		case "i":
			sawInstant = true
		}
	}
	if !sawSpan || !sawMeta || !sawCounter || !sawInstant {
		t.Fatalf("missing event kinds: span=%v meta=%v counter=%v instant=%v",
			sawSpan, sawMeta, sawCounter, sawInstant)
	}
}

func TestProbeBounded(t *testing.T) {
	p := NewBoundedProbe(3)
	for i := 0; i < 10; i++ {
		p.Instant("t", "e", 0, nil)
	}
	if p.Len() != 3 {
		t.Fatalf("len = %d, want 3", p.Len())
	}
	if p.Dropped() != 7 {
		t.Fatalf("dropped = %d, want 7", p.Dropped())
	}
	var b strings.Builder
	if err := p.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "dropped_events") {
		t.Fatal("trace does not report dropped events")
	}
	p.Reset()
	if p.Len() != 0 || p.Dropped() != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestProbeConcurrent(t *testing.T) {
	p := NewProbe()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				p.Span("t", "s", g, p.Now(), nil)
			}
		}(g)
	}
	wg.Wait()
	if p.Len() != 8*200 {
		t.Fatalf("len = %d, want %d", p.Len(), 8*200)
	}
}

func TestNewLoggerFlags(t *testing.T) {
	var b strings.Builder
	lg, err := NewLogger(&b, "info", "json")
	if err != nil {
		t.Fatal(err)
	}
	lg.Debug("hidden")
	lg.Info("shown", "k", "v")
	if strings.Contains(b.String(), "hidden") || !strings.Contains(b.String(), `"k":"v"`) {
		t.Fatalf("json logger output wrong: %s", b.String())
	}
	if _, err := NewLogger(&b, "verbose", "text"); err == nil {
		t.Fatal("bad level accepted")
	}
	if _, err := NewLogger(&b, "info", "xml"); err == nil {
		t.Fatal("bad format accepted")
	}
}

func TestNewRequestID(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if len(a) != 16 || a == b {
		t.Fatalf("request IDs look wrong: %q %q", a, b)
	}
}
