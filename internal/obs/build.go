package obs

import "runtime/debug"

// BuildVersion returns a human-readable identity of the running binary:
// the main module version when stamped, the embedded VCS revision
// (truncated, with a -dirty suffix for modified trees) when built from a
// checkout, or "unknown" when the binary carries no build info (e.g.
// test binaries).
func BuildVersion() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	version := bi.Main.Version
	var rev string
	dirty := false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if rev != "" && dirty {
		rev += "-dirty"
	}
	// A stamped module version (pseudo-versions included) already
	// encodes the revision; fall back to the bare revision only for
	// (devel) builds.
	switch {
	case version != "" && version != "(devel)":
		return version
	case rev != "":
		return rev
	}
	return "unknown"
}
