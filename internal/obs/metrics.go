// Package obs is the repository's dependency-free observability layer:
// a typed metric registry (counters, gauges, fixed-bucket histograms)
// with Prometheus-text and JSON snapshot renderers, a lightweight
// span/event recorder (Probe) whose output loads in Perfetto or
// chrome://tracing, and structured-logging helpers shared by nobld and
// nobl.
//
// The package sits below every other internal package — core engines,
// the schedule compiler, the network router, the trace store, and the
// nobld job queue all report into it — and therefore imports nothing
// but the standard library.
//
// # Metrics
//
// A Registry holds metric families keyed by name.  Families are created
// lazily on first use and series (one per distinct label set) on first
// observation, so callers with dynamic labels write
//
//	reg.Counter("nobld_requests_total", "...", obs.L("endpoint", ep)).Inc()
//
// on the hot path; the registry memoizes the series behind a mutex and
// the series themselves are lock-free atomics.  Snapshot() produces a
// deterministic, sorted view carrying *numeric* histogram bucket bounds
// alongside their formatted "le" strings, so renderers never re-parse
// formatted bounds (the bug this package replaced in
// internal/service/metrics.go).  WritePrometheus renders the text
// exposition format; the snapshot types are json-taggable for the JSON
// side of the same endpoint.
//
// # Probe
//
// Probe records spans, instants, and counter samples with microsecond
// timestamps relative to the probe's epoch.  Every method is safe on a
// nil *Probe and returns immediately, so instrumented code threads one
// pointer and guards hot paths with a single nil check.
// WriteChromeTrace exports the Chrome trace-event JSON format.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// MetricType identifies a metric family's kind in snapshots.
type MetricType string

// The three metric kinds the registry supports.
const (
	TypeCounter   MetricType = "counter"
	TypeGauge     MetricType = "gauge"
	TypeHistogram MetricType = "histogram"
)

// Label is one name=value metric label.
type Label struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Counter is a monotonically increasing value.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
//
//nob:hotpath
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0; negative deltas are ignored to keep the
// counter monotone).
//
//nob:hotpath
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down.  It stores float64 bits
// atomically so Set/Add are lock-free.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
//
//nob:hotpath
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta.
//
//nob:hotpath
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram.  Observations are counted into
// the first bucket whose upper bound is >= the value; values above every
// bound land in the implicit +Inf bucket.  All updates are atomic.
type Histogram struct {
	bounds  []float64 // sorted ascending, exclusive of +Inf
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
}

// Observe records one value.
//
//nob:hotpath
func (h *Histogram) Observe(v float64) {
	// Bucket counts are stored non-cumulatively and accumulated at
	// snapshot time, so concurrent observers touch one counter each.
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
}

// ObserveSince records the elapsed time since start, in milliseconds.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(float64(time.Since(start)) / float64(time.Millisecond))
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// gaugeFn is a callback-backed gauge, read at snapshot time.
type gaugeFn struct{ fn func() float64 }

// family is one metric name: its metadata plus every labeled series.
type family struct {
	name   string
	help   string
	typ    MetricType
	bounds []float64 // histogram families only

	series map[string]*series // keyed by canonical label string
}

type series struct {
	labels []Label
	value  any // *Counter | *Gauge | *Histogram | *gaugeFn
}

// Registry holds metric families and hands out series.  All methods are
// safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelKey canonicalizes a label set (sorted by name) into a map key.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i].Name < labels[j].Name })
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Name)
		b.WriteByte('=')
		b.WriteString(strconv.Quote(l.Value))
		b.WriteByte(',')
	}
	return b.String()
}

// getFamily returns the family for name, creating it on first use and
// panicking on a type or bounds mismatch with an earlier registration —
// that is a programming error, not a runtime condition.
func (r *Registry) getFamily(name, help string, typ MetricType, bounds []float64) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, bounds: bounds, series: make(map[string]*series)}
		r.families[name] = f
		return f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s, was %s", name, typ, f.typ))
	}
	return f
}

// Counter returns the counter series for name and labels, creating it on
// first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, TypeCounter, nil)
	key := labelKey(labels)
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: labels, value: &Counter{}}
		f.series[key] = s
	}
	return s.value.(*Counter)
}

// Gauge returns the gauge series for name and labels, creating it on
// first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, TypeGauge, nil)
	key := labelKey(labels)
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: labels, value: &Gauge{}}
		f.series[key] = s
	}
	return s.value.(*Gauge)
}

// GaugeFunc registers a gauge whose value is computed by fn at snapshot
// time — for values owned elsewhere (cache sizes, queue depths) that
// would otherwise need mirroring writes.  Re-registering the same
// name+labels replaces the callback.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, TypeGauge, nil)
	f.series[labelKey(labels)] = &series{labels: labels, value: &gaugeFn{fn: fn}}
}

// Histogram returns the histogram series for name and labels, creating
// it on first use with the given bucket bounds (sorted copies are taken;
// +Inf is implicit).  Bounds are fixed per family: later calls may pass
// nil to reuse the registered bounds.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	var famBounds []float64
	if len(bounds) > 0 {
		famBounds = append([]float64(nil), bounds...)
		sort.Float64s(famBounds)
	}
	f := r.getFamily(name, help, TypeHistogram, famBounds)
	if f.bounds == nil {
		f.bounds = famBounds
	}
	if len(f.bounds) == 0 {
		panic(fmt.Sprintf("obs: histogram %q has no bucket bounds", name))
	}
	key := labelKey(labels)
	s, ok := f.series[key]
	if !ok {
		h := &Histogram{bounds: f.bounds, buckets: make([]atomic.Int64, len(f.bounds)+1)}
		s = &series{labels: labels, value: h}
		f.series[key] = s
	}
	return s.value.(*Histogram)
}

// Bucket is one cumulative histogram bucket in a snapshot.  Bound is the
// numeric upper bound (math.Inf(1) for the +Inf bucket) and LE its
// Prometheus-formatted string; renderers and sorters use Bound so no
// formatted string is ever re-parsed.
type Bucket struct {
	Bound      float64 `json:"-"`
	LE         string  `json:"le"`
	Cumulative int64   `json:"cumulative"`
}

// SeriesSnapshot is one labeled series in a snapshot.
type SeriesSnapshot struct {
	Labels []Label `json:"labels,omitempty"`
	// Value is the counter or gauge value; unused for histograms.
	Value float64 `json:"value"`
	// Buckets, Count, Sum are set for histogram series only.
	Buckets []Bucket `json:"buckets,omitempty"`
	Count   int64    `json:"count,omitempty"`
	Sum     float64  `json:"sum,omitempty"`
}

// FamilySnapshot is one metric family in a snapshot.
type FamilySnapshot struct {
	Name   string           `json:"name"`
	Help   string           `json:"help,omitempty"`
	Type   MetricType       `json:"type"`
	Series []SeriesSnapshot `json:"series"`
}

// Snapshot is a consistent, deterministically ordered view of a
// registry: families sorted by name, series by canonical label key,
// buckets by ascending numeric bound with +Inf last.
type Snapshot struct {
	Families []FamilySnapshot `json:"families"`
}

// Family returns the named family snapshot, or nil.
func (s Snapshot) Family(name string) *FamilySnapshot {
	for i := range s.Families {
		if s.Families[i].Name == name {
			return &s.Families[i]
		}
	}
	return nil
}

// FormatBound renders a bucket bound the way Prometheus expects its "le"
// label: shortest round-trip decimal, "+Inf" for the overflow bucket.
func FormatBound(b float64) string {
	if math.IsInf(b, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(b, 'g', -1, 64)
}

// Snapshot captures every family.  Gauge callbacks run outside the
// registry lock is not possible (they are read under it); callbacks must
// therefore not call back into the registry.  The snapshot is fully
// sorted (families by name, series by label key) so every renderer
// downstream is deterministic for free.
//
//nob:deterministic
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	snap := Snapshot{Families: make([]FamilySnapshot, 0, len(r.families))}
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := r.families[name]
		fs := FamilySnapshot{Name: f.name, Help: f.help, Type: f.typ}
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			ss := SeriesSnapshot{Labels: s.labels}
			switch v := s.value.(type) {
			case *Counter:
				ss.Value = float64(v.Value())
			case *Gauge:
				ss.Value = v.Value()
			case *gaugeFn:
				ss.Value = v.fn()
			case *Histogram:
				ss.Count = v.Count()
				ss.Sum = v.Sum()
				ss.Buckets = make([]Bucket, len(f.bounds)+1)
				var cum int64
				for i, b := range f.bounds {
					cum += v.buckets[i].Load()
					ss.Buckets[i] = Bucket{Bound: b, LE: FormatBound(b), Cumulative: cum}
				}
				cum += v.buckets[len(f.bounds)].Load()
				ss.Buckets[len(f.bounds)] = Bucket{Bound: math.Inf(1), LE: "+Inf", Cumulative: cum}
			}
			fs.Series = append(fs.Series, ss)
		}
		snap.Families = append(snap.Families, fs)
	}
	return snap
}
