package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// Probe records spans, instant events, and counter samples for export as
// Chrome trace-event JSON (loadable in Perfetto or chrome://tracing).
//
// Every method is safe to call on a nil *Probe and returns immediately,
// so instrumented code pays exactly one nil check when probing is off —
// the contract core's engines rely on (see the probe-contract section of
// package core's documentation).
//
// A probe is bounded: once the event buffer is full, further events are
// counted in Dropped() and discarded rather than growing without limit,
// so a long-lived daemon can keep a probe attached.
//
//nob:nilsafe
type Probe struct {
	epoch time.Time

	mu      sync.Mutex
	events  []probeEvent
	max     int
	dropped int64
	threads map[int]string
}

// probeEvent is one recorded event, already in Chrome trace-event shape.
type probeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds since epoch
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// DefaultProbeCapacity bounds NewProbe's event buffer: ample for a CLI
// run, small enough that an always-on daemon probe stays under ~100 MB.
const DefaultProbeCapacity = 1 << 19

// NewProbe returns a probe with the default event capacity.
func NewProbe() *Probe { return NewBoundedProbe(DefaultProbeCapacity) }

// NewBoundedProbe returns a probe that keeps at most capacity events and
// counts the rest in Dropped().
func NewBoundedProbe(capacity int) *Probe {
	if capacity < 1 {
		capacity = 1
	}
	return &Probe{epoch: time.Now(), max: capacity, threads: make(map[int]string)}
}

// Enabled reports whether the probe records anything; false on nil.
func (p *Probe) Enabled() bool { return p != nil }

// Now returns the current time if the probe is non-nil, and the zero
// time otherwise — so hot paths write `start := probe.Now()` without a
// separate nil check (the zero time is only ever passed back into the
// same nil probe).
func (p *Probe) Now() time.Time {
	if p == nil {
		return time.Time{}
	}
	return time.Now()
}

func (p *Probe) since(t time.Time) float64 {
	return float64(t.Sub(p.epoch)) / float64(time.Microsecond)
}

func (p *Probe) record(e probeEvent) {
	p.mu.Lock()
	if len(p.events) >= p.max {
		p.dropped++
	} else {
		p.events = append(p.events, e)
	}
	p.mu.Unlock()
}

// Span records a completed duration event from start to now.  tid
// distinguishes concurrent tracks (worker index, job slot); args are
// optional key/value annotations shown in the trace viewer.
func (p *Probe) Span(cat, name string, tid int, start time.Time, args map[string]any) {
	if p == nil {
		return
	}
	p.SpanBetween(cat, name, tid, start, time.Now(), args)
}

// SpanBetween records a completed duration event with an explicit end.
func (p *Probe) SpanBetween(cat, name string, tid int, start, end time.Time, args map[string]any) {
	if p == nil {
		return
	}
	ts := p.since(start)
	dur := float64(end.Sub(start)) / float64(time.Microsecond)
	if dur < 0 {
		dur = 0
	}
	p.record(probeEvent{Name: name, Cat: cat, Ph: "X", TS: ts, Dur: dur, PID: 1, TID: tid, Args: args})
}

// Instant records a zero-duration marker event.
func (p *Probe) Instant(cat, name string, tid int, args map[string]any) {
	if p == nil {
		return
	}
	p.record(probeEvent{Name: name, Cat: cat, Ph: "i", TS: p.since(time.Now()), PID: 1, TID: tid, Args: args})
}

// Counter records a counter sample (rendered as a stacked area track).
// values maps series name to numeric value.
func (p *Probe) Counter(cat, name string, tid int, values map[string]any) {
	if p == nil {
		return
	}
	p.record(probeEvent{Name: name, Cat: cat, Ph: "C", TS: p.since(time.Now()), PID: 1, TID: tid, Args: values})
}

// NameThread attaches a human-readable name to a tid, emitted as trace
// metadata so viewers label the track.
func (p *Probe) NameThread(tid int, name string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.threads[tid] = name
	p.mu.Unlock()
}

// Len returns the number of recorded events.
func (p *Probe) Len() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.events)
}

// Dropped returns how many events were discarded at capacity.
func (p *Probe) Dropped() int64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dropped
}

// Reset discards all recorded events (capacity and epoch are kept).
func (p *Probe) Reset() {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.events = p.events[:0]
	p.dropped = 0
	p.mu.Unlock()
}

// chromeTrace is the top-level Chrome trace-event JSON document.
type chromeTrace struct {
	TraceEvents     []probeEvent   `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// WriteChromeTrace writes the recorded events as Chrome trace-event
// JSON.  The probe remains usable (and keeps its events) afterwards.
// The output is byte-deterministic for a given event sequence: thread
// metadata is emitted in ascending tid order, not map order, so two
// exports of the same run diff clean.
//
//nob:deterministic
func (p *Probe) WriteChromeTrace(w io.Writer) error {
	if p == nil {
		_, err := io.WriteString(w, `{"traceEvents":[],"displayTimeUnit":"ms"}`)
		return err
	}
	p.mu.Lock()
	events := make([]probeEvent, 0, len(p.events)+len(p.threads)+1)
	events = append(events, probeEvent{
		Name: "process_name", Ph: "M", PID: 1,
		Args: map[string]any{"name": "netoblivious"},
	})
	tids := make([]int, 0, len(p.threads))
	for tid := range p.threads {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	for _, tid := range tids {
		events = append(events, probeEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: tid,
			Args: map[string]any{"name": p.threads[tid]},
		})
	}
	events = append(events, p.events...)
	dropped := p.dropped
	p.mu.Unlock()

	doc := chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"}
	if dropped > 0 {
		doc.OtherData = map[string]any{"dropped_events": dropped}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
