package cachesim

import (
	"math/rand"
	"testing"

	"netoblivious/internal/core"
	"netoblivious/internal/fft"
)

func TestCacheBasics(t *testing.T) {
	c, err := New(4, 2) // 2 lines of 2 words
	if err != nil {
		t.Fatal(err)
	}
	c.Access(0) // miss: line 0
	c.Access(1) // hit
	c.Access(2) // miss: line 1
	c.Access(0) // hit
	c.Access(4) // miss: line 2 evicts LRU (line 1)
	c.Access(2) // miss again
	if c.Misses != 4 {
		t.Errorf("misses = %d, want 4", c.Misses)
	}
	if c.Accesses != 6 {
		t.Errorf("accesses = %d, want 6", c.Accesses)
	}
}

func TestCacheValidation(t *testing.T) {
	if _, err := New(0, 2); err == nil {
		t.Error("want error for M=0")
	}
	if _, err := New(7, 2); err == nil {
		t.Error("want error for B not dividing M")
	}
}

// TestSequentialScan: a cold scan of W words misses exactly W/B times.
func TestSequentialScan(t *testing.T) {
	c, err := New(64, 8)
	if err != nil {
		t.Fatal(err)
	}
	c.AccessRange(0, 512)
	if c.Misses != 64 {
		t.Errorf("scan misses = %d, want 64", c.Misses)
	}
}

// TestLRUWorkingSet: a loop over a working set that fits misses only on
// the first pass.
func TestLRUWorkingSet(t *testing.T) {
	c, err := New(64, 8)
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 10; pass++ {
		c.AccessRange(0, 64)
	}
	if c.Misses != 8 {
		t.Errorf("misses = %d, want 8 (first pass only)", c.Misses)
	}
}

// TestSimulateTraceNeedsPairs rejects traces without message recording.
func TestSimulateTraceNeedsPairs(t *testing.T) {
	tr, err := core.Run(4, func(vp *core.VP[int]) {
		vp.Send(vp.ID()^1, 1)
		vp.Sync(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	c, _ := New(64, 8)
	if _, err := SimulateTrace(tr, 4, c); err == nil {
		t.Error("want error for missing Pairs")
	}
}

// TestSimulateTraceReportsPerCallDeltas is the regression test for the
// cumulative-counter bug: SimulateTrace used to return the cache's
// lifetime Misses/Accesses, so a reused Cache silently conflated runs.
// Two simulations through one cache must report per-call deltas — the
// second warm run sees fewer (or equal) misses, and the deltas sum to
// the cache's cumulative counters.
func TestSimulateTraceReportsPerCallDeltas(t *testing.T) {
	tr, err := core.RunOpt(8, func(vp *core.VP[int]) {
		for step := 0; step < 4; step++ {
			vp.Send(vp.ID()^1, 1)
			vp.Sync(0)
		}
	}, core.Options{RecordMessages: true})
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(1<<10, 8) // big enough that the working set stays warm
	if err != nil {
		t.Fatal(err)
	}
	first, err := SimulateTrace(tr, 4, c)
	if err != nil {
		t.Fatal(err)
	}
	second, err := SimulateTrace(tr, 4, c)
	if err != nil {
		t.Fatal(err)
	}
	if first.Accesses != second.Accesses {
		t.Errorf("same trace, different access counts: %d vs %d", first.Accesses, second.Accesses)
	}
	if first.Misses == 0 {
		t.Fatal("first (cold) run reported zero misses")
	}
	if second.Misses > first.Misses {
		t.Errorf("warm rerun reported more misses (%d) than the cold run (%d)", second.Misses, first.Misses)
	}
	if got := first.Misses + second.Misses; got != c.Misses {
		t.Errorf("per-call deltas sum to %d, cumulative counter is %d", got, c.Misses)
	}
	if got := first.Accesses + second.Accesses; got != c.Accesses {
		t.Errorf("per-call access deltas sum to %d, cumulative counter is %d", got, c.Accesses)
	}
}

// TestMissCurveMonotone: misses cannot increase with cache size on the
// same trace (LRU inclusion property for a fixed B).
func TestMissCurveMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 256
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.Float64(), 0)
	}
	res, err := fft.Transform(x, fft.Options{Record: true})
	if err != nil {
		t.Fatal(err)
	}
	sizes := []int{64, 256, 1024, 4096}
	curve, err := MissCurve(res.Trace, 4, 8, sizes)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(curve); i++ {
		if curve[i] > curve[i-1] {
			t.Errorf("miss curve not monotone: %v", curve)
		}
	}
}

// TestMissCurveGolden: the single-pass CurveSim must agree exactly with
// the per-size re-simulation it replaced, across sweeps with unsorted
// and duplicate sizes, for several recorded traces.
func TestMissCurveGolden(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	traces := map[string]*core.Trace{}
	{
		n := 256
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.Float64(), 0)
		}
		res, err := fft.Transform(x, fft.Options{Record: true})
		if err != nil {
			t.Fatal(err)
		}
		traces["fft-recursive"] = res.Trace
		it, err := fft.TransformIterative(x, fft.Options{Record: true})
		if err != nil {
			t.Fatal(err)
		}
		traces["fft-iterative"] = it.Trace
	}
	{
		tr, err := core.RunOpt(16, func(vp *core.VP[int]) {
			for step := 0; step < 6; step++ {
				vp.Send(vp.ID()^(1<<(step%4)), step)
				vp.Sync(3 - step%4)
			}
		}, core.Options{RecordMessages: true})
		if err != nil {
			t.Fatal(err)
		}
		traces["xor-mesh"] = tr
	}
	sweeps := [][]int{
		{64},
		{64, 256, 1024, 4096},
		{4096, 64, 1024, 256},    // unsorted
		{256, 64, 256, 4096, 64}, // duplicates
		{8, 16, 24, 32, 1 << 20}, // tiny through larger-than-footprint
	}
	for name, tr := range traces {
		for _, sizes := range sweeps {
			want, err := missCurveReference(tr, 4, 8, sizes)
			if err != nil {
				t.Fatal(err)
			}
			got, err := MissCurve(tr, 4, 8, sizes)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("%s sizes=%v: single-pass curve %v, reference %v", name, sizes, got, want)
					break
				}
			}
		}
	}
}

// TestCurveSimAccesses: every size of a sweep shares one address
// stream, so CurveSim's access count must match a plain simulation's.
func TestCurveSimAccesses(t *testing.T) {
	tr, err := core.RunOpt(8, func(vp *core.VP[int]) {
		vp.Send(vp.ID()^1, 1)
		vp.Sync(0)
	}, core.Options{RecordMessages: true})
	if err != nil {
		t.Fatal(err)
	}
	cs, err := NewCurveSim(tr.V, 4, 8, []int{64, 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr.Steps {
		if err := cs.Step(&tr.Steps[i]); err != nil {
			t.Fatal(err)
		}
	}
	c, _ := New(64, 8)
	st, err := SimulateTrace(tr, 4, c)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Accesses() != st.Accesses {
		t.Errorf("CurveSim accesses %d, SimulateTrace %d", cs.Accesses(), st.Accesses)
	}
	if cs.Words() != st.Words {
		t.Errorf("CurveSim words %d, SimulateTrace %d", cs.Words(), st.Words)
	}
}

// TestSection6Conjecture: the recursive FFT's sequential simulation incurs
// no more misses than the iterative butterfly's across a band of cache
// sizes — fine superstep labels become cache locality, the mechanism of
// the paper's Section 6 conjecture.
func TestSection6Conjecture(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 1 << 10
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.Float64(), 0)
	}
	rec, err := fft.Transform(x, fft.Options{Record: true})
	if err != nil {
		t.Fatal(err)
	}
	it, err := fft.TransformIterative(x, fft.Options{Record: true})
	if err != nil {
		t.Fatal(err)
	}
	sizes := []int{128, 512, 2048}
	curveRec, err := MissCurve(rec.Trace, 4, 8, sizes)
	if err != nil {
		t.Fatal(err)
	}
	curveIt, err := MissCurve(it.Trace, 4, 8, sizes)
	if err != nil {
		t.Fatal(err)
	}
	// Compare per-access miss rates: the two algorithms touch different
	// total word counts, so normalize.
	var accRec, accIt float64
	{
		c1, _ := New(1<<20, 8)
		st, _ := SimulateTrace(rec.Trace, 4, c1)
		accRec = float64(st.Accesses)
		c2, _ := New(1<<20, 8)
		st2, _ := SimulateTrace(it.Trace, 4, c2)
		accIt = float64(st2.Accesses)
	}
	for i, m := range sizes {
		rRec := float64(curveRec[i]) / accRec
		rIt := float64(curveIt[i]) / accIt
		// The rates must stay comparable (same Θ); the recursive
		// variant's 3-transpose substitution costs a constant factor of
		// absolute traffic but not an asymptotic rate penalty.
		if rRec > rIt*1.5 {
			t.Errorf("M=%d: recursive miss rate %.4f worse than iterative %.4f", m, rRec, rIt)
		}
	}
}
