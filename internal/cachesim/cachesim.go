// Package cachesim explores the paper's Section 6 conjecture: "we
// conjecture that cache-oblivious algorithms can be obtained by simulating
// network-oblivious ones using a suitable adaptation of the technique
// developed in Pietracaprina et al. [2006]".
//
// It provides the ideal cache model IC(M, B) of the cache-oblivious
// framework (fully associative, LRU, M words in lines of B words) and a
// sequential simulator that executes a recorded M(v) trace VP by VP,
// superstep by superstep — the natural folding-to-one-processor schedule —
// touching each VP's context and writing each message into its
// destination's mailbox.  The cache-miss count of this simulation is the
// I/O complexity of the derived sequential algorithm.
//
// The measurable content of the conjecture (experiment E16): algorithms
// whose supersteps have fine labels (communication confined to small
// clusters) produce address streams with locality, so the derived
// sequential algorithm incurs few misses once a cluster's working set fits
// in M — e.g. the recursive FFT's simulation beats the iterative
// butterfly's over a wide band of cache sizes, mirroring exactly the
// cache-oblivious/cache-aware FFT gap.
package cachesim

import (
	"container/list"
	"fmt"

	"netoblivious/internal/core"
)

// Cache is an ideal cache IC(M, B): fully associative, LRU replacement.
type Cache struct {
	mWords, bWords int
	capacity       int // number of lines
	lines          map[int64]*list.Element
	lru            *list.List // front = most recent; values are line ids

	// Misses counts line fetches; Accesses counts word accesses.
	Misses, Accesses int64
}

// New builds an IC(M, B) cache; M and B are in words, B must divide M.
func New(mWords, bWords int) (*Cache, error) {
	if mWords <= 0 || bWords <= 0 || mWords%bWords != 0 {
		return nil, fmt.Errorf("cachesim: invalid cache M=%d B=%d", mWords, bWords)
	}
	return &Cache{
		mWords:   mWords,
		bWords:   bWords,
		capacity: mWords / bWords,
		lines:    make(map[int64]*list.Element),
		lru:      list.New(),
	}, nil
}

// Access touches one word of memory, updating LRU state and miss counts.
func (c *Cache) Access(addr int64) (miss bool) {
	c.Accesses++
	line := addr / int64(c.bWords)
	if el, ok := c.lines[line]; ok {
		c.lru.MoveToFront(el)
		return false
	}
	c.Misses++
	if c.lru.Len() == c.capacity {
		back := c.lru.Back()
		delete(c.lines, back.Value.(int64))
		c.lru.Remove(back)
	}
	c.lines[line] = c.lru.PushFront(line)
	return true
}

// AccessRange touches words [addr, addr+n).
func (c *Cache) AccessRange(addr int64, n int) {
	for i := 0; i < n; i++ {
		c.Access(addr + int64(i))
	}
}

// SimStats summarizes a trace simulation.  Misses and Accesses count
// this simulation only: SimulateTrace snapshots the cache's cumulative
// counters on entry and reports deltas, so one Cache can be reused
// across traces (warm-cache studies) without conflating runs.
type SimStats struct {
	// Misses is the IC(M,B) miss count of the sequential execution.
	Misses int64
	// Accesses is the total word accesses.
	Accesses int64
	// Words is the simulated memory footprint in words.
	Words int64
}

// SimulateTrace executes the recorded algorithm sequentially on one
// processor with an IC(M, B) cache: for every superstep, the VPs run in
// ascending order; each touches its ctxWords-word context and writes one
// word into the destination mailbox of every message it sends (the trace
// must be recorded with RecordMessages).  Mailboxes are laid out next to
// their owner's context, so locality of communication translates into
// locality of reference — the mechanism behind the Section 6 conjecture.
func SimulateTrace(tr *core.Trace, ctxWords int, cache *Cache) (SimStats, error) {
	if ctxWords < 1 {
		return SimStats{}, fmt.Errorf("cachesim: ctxWords must be positive")
	}
	// Per-VP region: context followed by a mailbox slot.
	region := int64(ctxWords + 1)
	startMisses, startAccesses := cache.Misses, cache.Accesses
	for si := range tr.Steps {
		rec := &tr.Steps[si]
		if rec.Messages > 0 && rec.Pairs == nil {
			return SimStats{}, fmt.Errorf("cachesim: trace must be recorded with RecordMessages")
		}
		// Group messages by source; Pairs order within a superstep is
		// unspecified, so bucket them first for the per-VP schedule.
		bySrc := make([][]int32, tr.V)
		for src, dst := range rec.Pairs.All() {
			bySrc[src] = append(bySrc[src], dst)
		}
		for w := 0; w < tr.V; w++ {
			cache.AccessRange(int64(w)*region, ctxWords)
			for _, dst := range bySrc[w] {
				cache.Access(int64(dst)*region + int64(ctxWords))
			}
		}
	}
	return SimStats{
		Misses:   cache.Misses - startMisses,
		Accesses: cache.Accesses - startAccesses,
		Words:    int64(tr.V) * region,
	}, nil
}

// MissCurve simulates the trace across a sweep of cache sizes (words),
// returning the miss count for each.  B is the line length in words.
func MissCurve(tr *core.Trace, ctxWords, bWords int, sizes []int) ([]int64, error) {
	out := make([]int64, len(sizes))
	for i, m := range sizes {
		c, err := New(m, bWords)
		if err != nil {
			return nil, err
		}
		st, err := SimulateTrace(tr, ctxWords, c)
		if err != nil {
			return nil, err
		}
		out[i] = st.Misses
	}
	return out, nil
}
