// Package cachesim explores the paper's Section 6 conjecture: "we
// conjecture that cache-oblivious algorithms can be obtained by simulating
// network-oblivious ones using a suitable adaptation of the technique
// developed in Pietracaprina et al. [2006]".
//
// It provides the ideal cache model IC(M, B) of the cache-oblivious
// framework (fully associative, LRU, M words in lines of B words) and a
// sequential simulator that executes a recorded M(v) trace VP by VP,
// superstep by superstep — the natural folding-to-one-processor schedule —
// touching each VP's context and writing each message into its
// destination's mailbox.  The cache-miss count of this simulation is the
// I/O complexity of the derived sequential algorithm.
//
// The measurable content of the conjecture (experiment E16): algorithms
// whose supersteps have fine labels (communication confined to small
// clusters) produce address streams with locality, so the derived
// sequential algorithm incurs few misses once a cluster's working set fits
// in M — e.g. the recursive FFT's simulation beats the iterative
// butterfly's over a wide band of cache sizes, mirroring exactly the
// cache-oblivious/cache-aware FFT gap.
package cachesim

import (
	"container/list"
	"errors"
	"fmt"
	"io"
	"sort"

	"netoblivious/internal/core"
)

// ErrNoPairs reports a simulation request over a trace recorded without
// message pairs: there is no address stream to simulate.  Callers
// surface it with re-record guidance (`nobl stat -cache` tells the user
// to re-run `nobl trace -record`).
var ErrNoPairs = errors.New("cachesim: trace must be recorded with RecordMessages (message pairs are missing)")

// Cache is an ideal cache IC(M, B): fully associative, LRU replacement.
type Cache struct {
	mWords, bWords int
	capacity       int // number of lines
	lines          map[int64]*list.Element
	lru            *list.List // front = most recent; values are line ids

	// Misses counts line fetches; Accesses counts word accesses.
	Misses, Accesses int64
}

// New builds an IC(M, B) cache; M and B are in words, B must divide M.
func New(mWords, bWords int) (*Cache, error) {
	if mWords <= 0 || bWords <= 0 || mWords%bWords != 0 {
		return nil, fmt.Errorf("cachesim: invalid cache M=%d B=%d", mWords, bWords)
	}
	return &Cache{
		mWords:   mWords,
		bWords:   bWords,
		capacity: mWords / bWords,
		lines:    make(map[int64]*list.Element),
		lru:      list.New(),
	}, nil
}

// Access touches one word of memory, updating LRU state and miss counts.
func (c *Cache) Access(addr int64) (miss bool) {
	c.Accesses++
	line := addr / int64(c.bWords)
	if el, ok := c.lines[line]; ok {
		c.lru.MoveToFront(el)
		return false
	}
	c.Misses++
	if c.lru.Len() == c.capacity {
		back := c.lru.Back()
		delete(c.lines, back.Value.(int64))
		c.lru.Remove(back)
	}
	c.lines[line] = c.lru.PushFront(line)
	return true
}

// AccessRange touches words [addr, addr+n).
func (c *Cache) AccessRange(addr int64, n int) {
	for i := 0; i < n; i++ {
		c.Access(addr + int64(i))
	}
}

// SimStats summarizes a trace simulation.  Misses and Accesses count
// this simulation only: SimulateTrace snapshots the cache's cumulative
// counters on entry and reports deltas, so one Cache can be reused
// across traces (warm-cache studies) without conflating runs.
type SimStats struct {
	// Misses is the IC(M,B) miss count of the sequential execution.
	Misses int64
	// Accesses is the total word accesses.
	Accesses int64
	// Words is the simulated memory footprint in words.
	Words int64
}

// stepSchedule is the reusable per-superstep driver of the sequential
// simulation: each VP in ascending order touches its ctxWords-word
// context, then writes one word into the destination mailbox of every
// message it sends.  Mailboxes are laid out next to their owner's
// context, so locality of communication translates into locality of
// reference — the mechanism behind the Section 6 conjecture.  The
// per-source buckets are retained across supersteps, so driving a
// streamed trace allocates O(largest superstep), not O(trace).
type stepSchedule struct {
	v        int
	ctxWords int
	region   int64 // per-VP region: context followed by a mailbox slot
	bySrc    [][]int32
}

func newStepSchedule(v, ctxWords int) (*stepSchedule, error) {
	if ctxWords < 1 {
		return nil, fmt.Errorf("cachesim: ctxWords must be positive")
	}
	if v < 1 {
		return nil, fmt.Errorf("cachesim: invalid machine width v=%d", v)
	}
	return &stepSchedule{v: v, ctxWords: ctxWords, region: int64(ctxWords + 1), bySrc: make([][]int32, v)}, nil
}

// run feeds one superstep's address stream to touch.  Pairs order within
// a superstep is unspecified, so messages are bucketed by source first
// for the per-VP schedule.
func (ss *stepSchedule) run(rec *core.StepRec, touch func(addr int64)) error {
	if rec.Messages > 0 && rec.Pairs.Len() == 0 {
		return ErrNoPairs
	}
	for i := range ss.bySrc {
		ss.bySrc[i] = ss.bySrc[i][:0]
	}
	for src, dst := range rec.Pairs.All() {
		ss.bySrc[src] = append(ss.bySrc[src], dst)
	}
	for w := 0; w < ss.v; w++ {
		base := int64(w) * ss.region
		for i := 0; i < ss.ctxWords; i++ {
			touch(base + int64(i))
		}
		for _, dst := range ss.bySrc[w] {
			touch(int64(dst)*ss.region + int64(ss.ctxWords))
		}
	}
	return nil
}

// SimulateTrace executes the recorded algorithm sequentially on one
// processor with an IC(M, B) cache (the trace must be recorded with
// RecordMessages); see stepSchedule for the access model.
func SimulateTrace(tr *core.Trace, ctxWords int, cache *Cache) (SimStats, error) {
	return SimulateSource(tr.Source(), ctxWords, cache)
}

// SimulateSource is SimulateTrace over a streaming TraceSource, so the
// simulation's memory footprint is O(largest superstep) no matter how
// long the trace is.  It does not Close the source.
func SimulateSource(src core.TraceSource, ctxWords int, cache *Cache) (SimStats, error) {
	ss, err := newStepSchedule(src.V(), ctxWords)
	if err != nil {
		return SimStats{}, err
	}
	startMisses, startAccesses := cache.Misses, cache.Accesses
	touch := func(addr int64) { cache.Access(addr) }
	for {
		rec, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return SimStats{}, err
		}
		if err := ss.run(rec, touch); err != nil {
			return SimStats{}, err
		}
	}
	return SimStats{
		Misses:   cache.Misses - startMisses,
		Accesses: cache.Accesses - startAccesses,
		Words:    int64(ss.v) * ss.region,
	}, nil
}

// curveNode is one resident cache line of the CurveSim's shared LRU
// stack.
type curveNode struct {
	line       int64
	band       int
	prev, next *curveNode
}

// CurveSim simulates every cache size of a sweep in a single traversal
// of the address stream, exploiting the inclusion property of fully
// associative LRU (Mattson's stack algorithm): for a fixed line size, a
// cache of capacity C holds exactly the top C lines of one global LRU
// stack, so one stack plus one marker per capacity classifies every
// access for all sizes at once.  Each resident line carries its band —
// the index of the smallest cache in the sweep that still holds it —
// and markers are nudged in O(sizes) per access, turning the
// O(sizes × trace) per-size re-simulation into O(trace).
type CurveSim struct {
	ss     *stepSchedule
	bWords int
	sizes  []int // the sweep, in caller order
	caps   []int // strictly increasing unique line capacities
	capIdx []int // sizes[i] -> index into caps

	nodes      map[int64]*curveNode
	head, tail *curveNode
	length     int
	markers    []*curveNode // markers[i]: node at stack position caps[i]; nil while shorter

	hits     []int64 // hits[b]: accesses to lines resident with band b
	cold     int64   // accesses missing even the largest cache
	accesses int64
	steps    int
}

// NewCurveSim builds a single-pass simulator for a machine of v VPs
// over the given cache sizes (words); B is the line length in words and
// every size must be a positive multiple of it.
func NewCurveSim(v, ctxWords, bWords int, sizes []int) (*CurveSim, error) {
	ss, err := newStepSchedule(v, ctxWords)
	if err != nil {
		return nil, err
	}
	if len(sizes) == 0 {
		return nil, fmt.Errorf("cachesim: empty cache-size sweep")
	}
	cs := &CurveSim{ss: ss, bWords: bWords, sizes: sizes, capIdx: make([]int, len(sizes))}
	uniq := map[int]bool{}
	for _, m := range sizes {
		if _, err := New(m, bWords); err != nil {
			return nil, err
		}
		if c := m / bWords; !uniq[c] {
			uniq[c] = true
			cs.caps = append(cs.caps, c)
		}
	}
	sort.Ints(cs.caps)
	for i, m := range sizes {
		cs.capIdx[i] = sort.SearchInts(cs.caps, m/bWords)
	}
	cs.nodes = make(map[int64]*curveNode)
	cs.markers = make([]*curveNode, len(cs.caps))
	cs.hits = make([]int64, len(cs.caps))
	return cs, nil
}

func (cs *CurveSim) pushFront(n *curveNode) {
	n.prev = nil
	n.next = cs.head
	if cs.head != nil {
		cs.head.prev = n
	}
	cs.head = n
	if cs.tail == nil {
		cs.tail = n
	}
}

func (cs *CurveSim) unlink(n *curveNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		cs.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		cs.tail = n.prev
	}
}

// touch classifies one word access against every cache size at once.
func (cs *CurveSim) touch(addr int64) {
	cs.accesses++
	line := addr / int64(cs.bWords)
	if n, ok := cs.nodes[line]; ok {
		b := n.band
		cs.hits[b]++
		if n == cs.head {
			return // stack order unchanged
		}
		// Markers whose capacity lies strictly in front of n's position
		// see their element slide one position down the stack.  m.prev
		// is nil exactly when the capacity is a single line (m is the
		// head); that marker is re-pointed at the new head below.
		for i := 0; i < b; i++ {
			m := cs.markers[i]
			cs.markers[i] = m.prev
			m.band = i + 1
		}
		// When n is itself the marker of its band, the element now at
		// that capacity is n's predecessor.
		if cs.markers[b] == n {
			cs.markers[b] = n.prev
		}
		cs.unlink(n)
		cs.pushFront(n)
		n.band = 0
		if cs.caps[0] == 1 {
			cs.markers[0] = cs.head
		}
		return
	}
	// A miss for every size in the sweep: cold, or evicted even from the
	// largest cache (inclusion makes those the same class).
	cs.cold++
	for i, m := range cs.markers {
		if m != nil {
			cs.markers[i] = m.prev
			m.band = i + 1
		}
	}
	maxCap := cs.caps[len(cs.caps)-1]
	var n *curveNode
	if cs.length == maxCap {
		n = cs.tail // just slid past the largest capacity: evict and reuse
		cs.unlink(n)
		delete(cs.nodes, n.line)
		cs.length--
	} else {
		n = &curveNode{}
	}
	n.line = line
	n.band = 0
	cs.pushFront(n)
	cs.nodes[line] = n
	cs.length++
	// The stack may have just grown to exactly one of the capacities,
	// defining that marker for the first time: the tail is at that
	// position, and its band already equals the marker index by the
	// incremental updates above.
	for i, c := range cs.caps {
		if cs.length == c {
			cs.markers[i] = cs.tail
		}
	}
	if cs.caps[0] == 1 {
		cs.markers[0] = cs.head
	}
}

// Step folds one superstep's address stream into the curve.
func (cs *CurveSim) Step(rec *core.StepRec) error {
	if err := cs.ss.run(rec, cs.touch); err != nil {
		return err
	}
	cs.steps++
	return nil
}

// Misses returns the miss count per sweep entry, in the order the sizes
// were given: an access misses cache i exactly when it was absent from
// the stack or resident with a band beyond i.
func (cs *CurveSim) Misses() []int64 {
	suffix := cs.cold
	perCap := make([]int64, len(cs.caps))
	for b := len(cs.caps) - 1; b >= 0; b-- {
		perCap[b] = suffix // misses for capacity index b: every hit in a band above it
		suffix += cs.hits[b]
	}
	out := make([]int64, len(cs.sizes))
	for i, ci := range cs.capIdx {
		out[i] = perCap[ci]
	}
	return out
}

// Accesses returns the total word accesses simulated, identical for
// every size of the sweep (they share one address stream).
func (cs *CurveSim) Accesses() int64 { return cs.accesses }

// Words returns the simulated memory footprint in words.
func (cs *CurveSim) Words() int64 { return int64(cs.ss.v) * cs.ss.region }

// MissCurve simulates the trace across a sweep of cache sizes (words),
// returning the miss count for each.  B is the line length in words.
// One traversal drives every size simultaneously; see CurveSim.
func MissCurve(tr *core.Trace, ctxWords, bWords int, sizes []int) ([]int64, error) {
	return MissCurveSource(tr.Source(), ctxWords, bWords, sizes)
}

// MissCurveSource is MissCurve over a streaming TraceSource.  It does
// not Close the source.
func MissCurveSource(src core.TraceSource, ctxWords, bWords int, sizes []int) ([]int64, error) {
	cs, err := NewCurveSim(src.V(), ctxWords, bWords, sizes)
	if err != nil {
		return nil, err
	}
	for {
		rec, err := src.Next()
		if err == io.EOF {
			return cs.Misses(), nil
		}
		if err != nil {
			return nil, err
		}
		if err := cs.Step(rec); err != nil {
			return nil, err
		}
	}
}

// missCurveReference is the pre-single-pass implementation — one full
// re-simulation per size — retained as the oracle for the golden
// equality test of CurveSim.
func missCurveReference(tr *core.Trace, ctxWords, bWords int, sizes []int) ([]int64, error) {
	out := make([]int64, len(sizes))
	for i, m := range sizes {
		c, err := New(m, bWords)
		if err != nil {
			return nil, err
		}
		st, err := SimulateTrace(tr, ctxWords, c)
		if err != nil {
			return nil, err
		}
		out[i] = st.Misses
	}
	return out, nil
}
