package prefix

import (
	"context"

	"netoblivious/alg"
)

func init() {
	alg.MustRegister(alg.Algorithm{
		Name:    "prefix-tree",
		Doc:     "work-efficient prefix sums (§5 substrate)",
		SizeDoc: "a power of two >= 2",
		Sizes:   []int{2, 8, 64, 1024},
		Valid:   alg.PowerOfTwo(2),
		RunFn: func(ctx context.Context, spec alg.Spec, n int) (alg.Result, error) {
			rng := alg.SeededRand()
			xs := make([]int64, n)
			for i := range xs {
				xs[i] = int64(rng.Intn(1000))
			}
			r, err := ScanTree(xs, Sum(), spec)
			if err != nil {
				return alg.Result{}, err
			}
			return alg.Result{Trace: r.Trace}, nil
		},
	})
}
