package prefix

import (
	"math/rand"
	"testing"
	"testing/quick"

	"netoblivious/internal/core"
	"netoblivious/internal/eval"
)

func TestSeqScan(t *testing.T) {
	got := SeqScan([]int64{1, 2, 3, 4}, Sum())
	want := []int64{1, 3, 6, 10}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SeqScan[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func randInput(rng *rand.Rand, n int) []int64 {
	xs := make([]int64, n)
	for i := range xs {
		xs[i] = int64(rng.Intn(2000) - 1000)
	}
	return xs
}

func TestScanVariantsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8, 32, 256, 1024} {
		xs := randInput(rng, n)
		for _, op := range []Op{Sum(), Max()} {
			want := SeqScan(xs, op)
			r1, err := Scan(xs, op, Options{})
			if err != nil {
				t.Fatal(err)
			}
			r2, err := ScanTree(xs, op, Options{})
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if r1.Prefix[i] != want[i] {
					t.Fatalf("n=%d Scan[%d] = %d, want %d", n, i, r1.Prefix[i], want[i])
				}
				if r2.Prefix[i] != want[i] {
					t.Fatalf("n=%d ScanTree[%d] = %d, want %d", n, i, r2.Prefix[i], want[i])
				}
			}
		}
	}
}

// TestQuickProperty uses testing/quick: both variants agree with the
// sequential scan on arbitrary inputs padded to a power of two.
func TestQuickProperty(t *testing.T) {
	prop := func(raw []int64) bool {
		n := 1
		for n < len(raw)+1 {
			n *= 2
		}
		xs := make([]int64, n)
		copy(xs, raw)
		want := SeqScan(xs, Sum())
		r1, err := Scan(xs, Sum(), Options{})
		if err != nil {
			return false
		}
		r2, err := ScanTree(xs, Sum(), Options{})
		if err != nil {
			return false
		}
		for i := range want {
			if r1.Prefix[i] != want[i] || r2.Prefix[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestWorkAblation: the doubling scan moves Θ(n log n) messages, the tree
// Θ(n); the tree localizes communication (H = Θ(log p)·(1+σ)) while
// doubling pays Θ(log n)·(1+σ) at every fold.
func TestWorkAblation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 1024
	xs := randInput(rng, n)
	doubling, err := Scan(xs, Sum(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := ScanTree(xs, Sum(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m1, m2 := doubling.Trace.TotalMessages(), tree.Trace.TotalMessages(); m1 < 4*m2 {
		t.Errorf("doubling (%d msgs) should be ~log n/2 times tree (%d msgs)", m1, m2)
	}
	// Folded on p=4: tree pays ~2·log p supersteps, doubling log n.
	p := 4
	st := eval.Fold(tree.Trace, p).Supersteps()
	sd := eval.Fold(doubling.Trace, p).Supersteps()
	if st >= sd {
		t.Errorf("tree supersteps at p=4 (%d) should undercut doubling (%d)", st, sd)
	}
	if int(st) != 2*core.Log2(p) {
		t.Errorf("tree has %d communication supersteps at p=4, want %d", st, 2*core.Log2(p))
	}
}

// TestFullness: both scans are (Θ(1), p)-full (every superstep carries
// Θ(1) messages per VP... per cluster), the hypothesis of Theorem 5.3.
func TestFullness(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := randInput(rng, 256)
	tree, err := ScanTree(xs, Sum(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for p := 2; p <= 256; p *= 4 {
		if g := eval.Fullness(tree.Trace, p); g <= 0 {
			t.Errorf("tree fullness γ(%d) = %v, want > 0", p, g)
		}
		if err := eval.CheckFoldingLemma(tree.Trace, p); err != nil {
			t.Errorf("p=%d: %v", p, err)
		}
	}
}

func TestValidation(t *testing.T) {
	if _, err := Scan(make([]int64, 3), Sum(), Options{}); err == nil {
		t.Error("want error for n=3")
	}
	if _, err := ScanTree(nil, Sum(), Options{}); err == nil {
		t.Error("want error for empty input")
	}
}
