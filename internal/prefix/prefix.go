// Package prefix implements parallel prefix (scan) on the specification
// model M(v) — the substrate the ascend–descend protocol of Section 5
// relies on for assigning intermediate message destinations ("a prefix-like
// computation ... performed in O(log p) supersteps of constant degree,
// e.g., using a straightforward tree-based strategy [Ja'Ja' 1992]").
//
// Two network-oblivious variants are provided:
//
//   - ScanTree: the work-efficient up-sweep/down-sweep tree, 2·log v
//     supersteps of degree 1 and Θ(v) total messages;
//   - Scan: Hillis–Steele doubling, log v supersteps of degree 1 but
//     Θ(v·log v) total messages.
//
// Both are (Θ(1), p)-full for every p, and their contrast is one of the
// design-choice ablations of the benchmark suite.
package prefix

import (
	"fmt"

	"netoblivious/alg"
	"netoblivious/internal/core"
)

// Op is an associative combiner with identity.
type Op struct {
	Combine  func(a, b int64) int64
	Identity int64
}

// Sum is the addition monoid.
func Sum() Op {
	return Op{Combine: func(a, b int64) int64 { return a + b }, Identity: 0}
}

// Max is the maximum monoid over int64.
func Max() Op {
	const minInt64 = -1 << 63
	return Op{Combine: func(a, b int64) int64 {
		if a > b {
			return a
		}
		return b
	}, Identity: minInt64}
}

// Options is the unified run configuration (engine, recording,
// cancellation; the scans have no wise variant and ignore Spec.Wise).
type Options = alg.Spec

// Result carries the inclusive prefix and the trace.
type Result struct {
	// Prefix[i] = x_0 ⊕ x_1 ⊕ ... ⊕ x_i.
	Prefix []int64
	// Trace is the communication record of the M(v) run.
	Trace *core.Trace
}

// SeqScan is the sequential reference (inclusive).
func SeqScan(xs []int64, op Op) []int64 {
	out := make([]int64, len(xs))
	acc := op.Identity
	for i, x := range xs {
		acc = op.Combine(acc, x)
		out[i] = acc
	}
	return out
}

func checkLen(xs []int64) error {
	if len(xs) < 1 || len(xs)&(len(xs)-1) != 0 {
		return fmt.Errorf("prefix: input length %d must be a positive power of two", len(xs))
	}
	return nil
}

// Scan computes the inclusive prefix with Hillis–Steele doubling: in
// superstep k every VP j sends its running value to VP j+2^k.  Because a
// j → j+2^k message can straddle any cluster boundary (consider
// j = v/2 − 2^k), every superstep must be labeled 0, so the folded cost is
// H = Θ((1+σ)·log n) for every p — strictly worse than ScanTree's
// Θ((1+σ)·log p).  The contrast between the two is a benchmark ablation.
func Scan(xs []int64, op Op, opts Options) (*Result, error) {
	if err := checkLen(xs); err != nil {
		return nil, err
	}
	v := len(xs)
	logV := core.Log2(v)
	out := make([]int64, v)
	prog := func(vp *core.VP[int64]) {
		val := xs[vp.ID()]
		for k := 0; k < logV; k++ {
			step := 1 << uint(k)
			if vp.ID()+step < v {
				vp.Send(vp.ID()+step, val)
			}
			vp.Sync(0)
			if vp.ID()-step >= 0 {
				m, ok := vp.Receive()
				if !ok {
					panic("prefix: doubling step delivered no value")
				}
				val = op.Combine(m, val)
			}
		}
		out[vp.ID()] = val
	}
	tr, err := core.RunOpt(v, prog, opts.RunOptions())
	if err != nil {
		return nil, err
	}
	return &Result{Prefix: out, Trace: tr}, nil
}

// ScanTree computes the inclusive prefix with the work-efficient
// up-sweep/down-sweep tree: 2·log v supersteps of degree 1, Θ(v) total
// messages.
func ScanTree(xs []int64, op Op, opts Options) (*Result, error) {
	if err := checkLen(xs); err != nil {
		return nil, err
	}
	v := len(xs)
	logV := core.Log2(v)
	out := make([]int64, v)
	prog := func(vp *core.VP[int64]) {
		id := vp.ID()
		blockSum := xs[id]              // sum of my block during up-sweep
		leftSums := make([]int64, logV) // left-sibling sums received per level
		// Up-sweep: level l merges blocks of 2^{l-1} into blocks of 2^l.
		for l := 1; l <= logV; l++ {
			half := 1 << uint(l-1)
			full := 1 << uint(l)
			label := logV - l
			if id%full == half-1 {
				vp.Send(id+half, blockSum) // left-top informs right-top
			}
			vp.Sync(label)
			if id%full == full-1 {
				m, ok := vp.Receive()
				if !ok {
					panic("prefix: up-sweep delivered no value")
				}
				leftSums[l-1] = m
				blockSum = op.Combine(m, blockSum)
			}
		}
		// Down-sweep: propagate the exclusive "before" prefix.
		before := op.Identity
		for l := logV; l >= 1; l-- {
			half := 1 << uint(l-1)
			full := 1 << uint(l)
			label := logV - l
			if id%full == full-1 {
				vp.Send(id-half, before) // right-top informs left-top
			}
			vp.Sync(label)
			if id%full == half-1 {
				m, ok := vp.Receive()
				if !ok {
					panic("prefix: down-sweep delivered no value")
				}
				before = m
			} else if id%full == full-1 {
				before = op.Combine(before, leftSums[l-1])
			}
		}
		out[id] = op.Combine(before, xs[id])
	}
	tr, err := core.RunOpt(v, prog, opts.RunOptions())
	if err != nil {
		return nil, err
	}
	return &Result{Prefix: out, Trace: tr}, nil
}
