package harness

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// TestFormatFloatBoundaries pins the formatter's precision bands at their
// exact boundaries (1, 100, 1e6) and just below them.
func TestFormatFloatBoundaries(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0"},
		{0.9999, "0.9999"},
		{1, "1.00"},
		{3.14159, "3.14"},
		{99.99, "99.99"},
		{100, "100"},
		{101.4, "101"},
		{999999, "999999"},
		{1000000, "1e+06"},
		{1234567, "1.23e+06"},
		{-3.14159, "-3.14"},
		{-100, "-100"},
		{-1234567, "-1.23e+06"},
	}
	for _, c := range cases {
		if got := formatFloat(c.in); got != c.want {
			t.Errorf("formatFloat(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

// sampleRecord builds a record exercising every cell kind, notes and both
// check outcomes.
func sampleRecord() Record {
	res := &Result{
		ID: "EX", Title: "sample", PaperRef: "Theorem 0",
		Columns: []string{"name", "n", "H"},
		Notes:   []string{"a note"},
	}
	res.AddRow("matmul", 1024, 42.5)
	res.AddRow("fft", 256, 0.125)
	res.AddCheck("bounded", true, "max = %.2f", 42.5)
	return Record{ID: "EX", Title: "sample", PaperRef: "Theorem 0", Results: []*Result{res}}
}

// TestJSONDocumentRoundTrip encodes a document and decodes it back
// through the schema-checked decoder: the structured results must
// survive exactly, kinds included.
func TestJSONDocumentRoundTrip(t *testing.T) {
	doc := Document{Schema: DocumentSchema, Quick: true, Engine: "block", Records: []Record{sampleRecord()}}
	var buf bytes.Buffer
	if err := EncodeDocument(&buf, doc); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeDocument(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(doc, got) {
		t.Errorf("round trip mismatch:\nwant %+v\ngot  %+v", doc, got)
	}

	// The decoder must reject wrong schemas and ragged rows.
	if _, err := DecodeDocument(strings.NewReader(`{"schema":"bogus"}`)); err == nil {
		t.Error("decoder accepted a wrong schema tag")
	}
	bad := doc
	bad.Records = []Record{sampleRecord()}
	bad.Records[0].Results[0].Rows[0] = bad.Records[0].Results[0].Rows[0][:1]
	buf.Reset()
	if err := EncodeDocument(&buf, bad); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeDocument(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("decoder accepted a ragged row")
	}
}

// TestValueJSONKinds checks that the typed-cell encoding distinguishes
// Int from Float across a round trip and rejects malformed cells.
func TestValueJSONKinds(t *testing.T) {
	for _, v := range []Value{String("x"), Int(7), Float(7)} {
		data, err := v.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		var got Value
		if err := got.UnmarshalJSON(data); err != nil {
			t.Fatal(err)
		}
		if got != v {
			t.Errorf("round trip %+v -> %s -> %+v", v, data, got)
		}
	}
	var v Value
	if err := v.UnmarshalJSON([]byte(`{}`)); err == nil {
		t.Error("empty cell accepted")
	}
	if err := v.UnmarshalJSON([]byte(`{"i":1,"f":2}`)); err == nil {
		t.Error("double-kind cell accepted")
	}
}

// TestCSVRoundTrip writes a result grid as CSV and reads it back: header
// and formatted rows must survive, including cells containing commas.
func TestCSVRoundTrip(t *testing.T) {
	res := &Result{
		ID: "EX", Title: "csv", PaperRef: "x",
		Columns: []string{"name", "v"},
	}
	res.AddRow("a,b", 1.5)
	res.AddRow("plain", 2)
	var buf bytes.Buffer
	if err := res.EncodeCSV(&buf); err != nil {
		t.Fatal(err)
	}
	cols, rows, err := DecodeCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cols, res.Columns) {
		t.Errorf("columns: got %v want %v", cols, res.Columns)
	}
	if !reflect.DeepEqual(rows, res.FormattedRows()) {
		t.Errorf("rows: got %v want %v", rows, res.FormattedRows())
	}

	// The csv sink's actual file output (with its leading "# ..."
	// identity comment) must decode too.
	buf.Reset()
	sink, err := NewSink(FormatCSV, &buf, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rec := Record{ID: "EX", Results: []*Result{res}}
	if err := sink.Write(rec); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	cols2, rows2, err := DecodeCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("sink output undecodable: %v", err)
	}
	if !reflect.DeepEqual(cols2, res.Columns) || !reflect.DeepEqual(rows2, res.FormattedRows()) {
		t.Errorf("sink-file round trip mismatch: %v %v", cols2, rows2)
	}
}

// TestSinkRendering smoke-checks every sink over a sample record: check
// lines must surface in text and markdown, and the JSON sink must emit a
// decodable document.
func TestSinkRendering(t *testing.T) {
	rec := sampleRecord()
	for _, f := range Formats() {
		var buf bytes.Buffer
		s, err := NewSink(f, &buf, Config{Quick: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Write(rec); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		out := buf.String()
		switch f {
		case FormatText:
			if !strings.Contains(out, "check: ok") || !strings.Contains(out, "note: a note") {
				t.Errorf("text sink missing checks/notes:\n%s", out)
			}
		case FormatMarkdown:
			if !strings.Contains(out, "**ok** bounded") {
				t.Errorf("markdown sink missing check line:\n%s", out)
			}
		case FormatCSV:
			if !strings.Contains(out, "# EX — sample") || !strings.Contains(out, "matmul,1024,42.50") {
				t.Errorf("csv sink malformed:\n%s", out)
			}
		case FormatJSON:
			if _, err := DecodeDocument(strings.NewReader(out)); err != nil {
				t.Errorf("json sink emitted an undecodable document: %v", err)
			}
		}
	}
}

// TestParseFormat covers the name resolution and the unknown-name error.
func TestParseFormat(t *testing.T) {
	for _, name := range []string{"text", "md", "markdown", "json", "csv"} {
		if _, err := ParseFormat(name); err != nil {
			t.Errorf("ParseFormat(%q): %v", name, err)
		}
	}
	if _, err := ParseFormat("xml"); err == nil {
		t.Error("ParseFormat accepted xml")
	}
}
