package harness

import (
	"bytes"
	"context"
	"testing"

	"netoblivious/alg"
	"netoblivious/internal/core"
)

// TestRegistryStreamedJSONByteIdentical: for every registry algorithm at
// its smallest default size, a recorded run streamed through the JSON
// writer produces exactly the bytes EncodeJSON produces for the
// accumulated trace of an identical run.  Pair order inside a step
// carries no cross-engine guarantee, so both runs use the BlockEngine at
// a fixed worker count, whose shard merge order is reproducible.
func TestRegistryStreamedJSONByteIdentical(t *testing.T) {
	ctx := context.Background()
	eng := core.BlockEngine{Workers: 2}
	for _, a := range TraceAlgorithms() {
		sizes := a.DefaultSizes()
		if len(sizes) == 0 {
			t.Errorf("%s: no default sizes", a.Name)
			continue
		}
		n := sizes[0]
		for _, s := range sizes {
			if s < n {
				n = s
			}
		}
		ref, err := a.Run(ctx, alg.Spec{Engine: eng, Record: true}, n)
		if err != nil {
			t.Errorf("%s n=%d: %v", a.Name, n, err)
			continue
		}
		var want bytes.Buffer
		if err := ref.Trace.EncodeJSON(&want); err != nil {
			t.Fatalf("%s n=%d: %v", a.Name, n, err)
		}
		var got bytes.Buffer
		jw := core.NewTraceJSONWriter(&got)
		jw.ReleasePairs = true
		if _, err := a.Run(ctx, alg.Spec{Engine: eng, Record: true, Sink: jw}, n); err != nil {
			t.Errorf("%s n=%d (streamed): %v", a.Name, n, err)
			continue
		}
		if !bytes.Equal(want.Bytes(), got.Bytes()) {
			t.Errorf("%s n=%d: streamed JSON differs from in-memory EncodeJSON (%d vs %d bytes)",
				a.Name, n, got.Len(), want.Len())
		}
	}
}
