package harness

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"netoblivious/alg"
	"netoblivious/internal/core"
)

// Config tunes a suite run: problem sizes, execution engine, worker
// count and the shared trace store.  A Config is plain data — copies are
// cheap and concurrent experiments may share one.
type Config struct {
	// Quick shrinks problem sizes for use inside benchmarks and smoke
	// tests.
	Quick bool

	// Engine selects the core execution engine for every
	// specification-model run of the suite; nil uses
	// core.DefaultEngine().  The engine is threaded explicitly through
	// every algorithm call (never via the process-wide default), so
	// concurrent suite runs with different engines cannot race.
	Engine core.Engine

	// Parallel bounds the number of experiments running concurrently in
	// RunSuite.  0 means runtime.GOMAXPROCS(0); 1 forces sequential
	// execution.  Parallel and sequential runs produce byte-identical
	// rendered output (the golden test enforces it).
	Parallel int

	// Store memoizes specification-model traces by (algorithm, n,
	// engine) so overlapping experiments share one execution.  nil runs
	// every request directly (no sharing); RunSuite installs a fresh
	// store when the caller did not provide one.
	Store *TraceStore

	// Context cancels the suite: experiments not yet dispatched are
	// skipped (their records carry the cancellation error) and
	// specification-model runs in flight abort at the next superstep.
	// nil means no cancellation.
	Context context.Context
}

// engine resolves the effective execution engine.
func (c Config) engine() core.Engine {
	if c.Engine != nil {
		return c.Engine
	}
	return core.DefaultEngine()
}

// ctx resolves the effective context.
func (c Config) ctx() context.Context {
	if c.Context != nil {
		return c.Context
	}
	return context.Background()
}

// runOpts returns the core options experiments pass to direct
// specification-model runs, threading the configured engine and context
// through.
func (c Config) runOpts(record bool) core.Options {
	return core.Options{RecordMessages: record, Engine: c.engine(), Context: c.Context}
}

// Trace returns the memoized trace of a registry algorithm at size n,
// executing it (on the configured engine) at most once per store.
func (c Config) Trace(name string, n int) (*core.Trace, error) {
	run, err := c.AlgRun(name, n)
	if err != nil {
		return nil, err
	}
	return run.Trace, nil
}

// AlgRun is Trace plus the run metadata (peak memory) the matmul
// experiments report.
func (c Config) AlgRun(name string, n int) (AlgRun, error) {
	if c.Store != nil {
		return c.Store.Get(c.ctx(), c.engine(), name, n)
	}
	a, ok := TraceAlgorithmByName(name)
	if !ok {
		return AlgRun{}, fmt.Errorf("harness: unknown algorithm %q", name)
	}
	return a.Run(c.ctx(), alg.Spec{Engine: c.engine()}, n)
}

// Experiment couples an identifier with its runner.
type Experiment struct {
	ID       string
	Title    string
	PaperRef string
	Run      func(cfg Config) ([]*Result, error)
}

var registry []Experiment

// register adds an experiment to the suite registry.
func register(e Experiment) { registry = append(registry, e) }

// Experiments returns the full registry in declaration order.
func Experiments() []Experiment { return registry }

// ByID looks up an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	return Experiment{}, false
}

// Record is the structured outcome of one experiment in a suite run.
type Record struct {
	// ID, Title, PaperRef identify the experiment.
	ID       string `json:"id"`
	Title    string `json:"title"`
	PaperRef string `json:"paper_ref"`
	// Results holds the experiment's typed result sets.
	Results []*Result `json:"results,omitempty"`
	// Err is the execution error, if the experiment failed to run.
	Err string `json:"error,omitempty"`
	// Elapsed is the experiment's wall-clock time.  It is excluded from
	// every sink (timings are schedule-dependent; the determinism
	// guarantee covers rendered output) and reported only through the
	// bench report.
	Elapsed time.Duration `json:"-"`
}

// CheckCounts totals the check outcomes across the record's results.
func (r Record) CheckCounts() (passed, failed int) {
	for _, res := range r.Results {
		for _, c := range res.Checks {
			if c.Pass {
				passed++
			} else {
				failed++
			}
		}
	}
	return passed, failed
}

// Passed reports whether the experiment ran and every check passed.
func (r Record) Passed() bool {
	if r.Err != "" {
		return false
	}
	_, failed := r.CheckCounts()
	return failed == 0
}

// ResolveIDs expands the id list for RunSuite: nil, empty, or the single
// word "all" selects the full registry; anything else must name
// registered experiments.
func ResolveIDs(ids []string) ([]Experiment, error) {
	if len(ids) == 0 || (len(ids) == 1 && strings.EqualFold(ids[0], "all")) {
		return Experiments(), nil
	}
	exps := make([]Experiment, 0, len(ids))
	for _, id := range ids {
		e, ok := ByID(id)
		if !ok {
			return nil, fmt.Errorf("harness: unknown experiment %q", id)
		}
		exps = append(exps, e)
	}
	return exps, nil
}

// RunSuite executes the selected experiments through a bounded worker
// pool and returns one Record per experiment, in selection order
// regardless of completion order.  Every experiment derives its inputs
// from its own fixed-seed RNG and traces are shared through the
// single-flight store, so the records — and therefore all rendered
// output — are independent of the parallel schedule.
func RunSuite(cfg Config, ids []string) ([]Record, error) {
	return RunSuiteCtx(cfg.ctx(), cfg, ids)
}

// RunSuiteCtx is RunSuite bounded by a context: experiments whose worker
// picks them up after cancellation are not executed (their records carry
// the cancellation error), and the context is threaded into every
// specification-model run so in-flight executions abort at the next
// superstep instead of burning CPU to completion.
func RunSuiteCtx(ctx context.Context, cfg Config, ids []string) ([]Record, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg.Context = ctx
	exps, err := ResolveIDs(ids)
	if err != nil {
		return nil, err
	}
	if cfg.Store == nil {
		cfg.Store = NewTraceStore()
	}
	workers := cfg.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(exps) {
		workers = len(exps)
	}
	if workers < 1 {
		workers = 1
	}

	recs := make([]Record, len(exps))
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if cerr := ctx.Err(); cerr != nil {
					e := exps[i]
					recs[i] = Record{ID: e.ID, Title: e.Title, PaperRef: e.PaperRef, Err: fmt.Sprintf("suite cancelled: %v", cerr)}
					continue
				}
				recs[i] = runOne(cfg, exps[i])
			}
		}()
	}
	for i := range exps {
		next <- i
	}
	close(next)
	wg.Wait()
	return recs, nil
}

// runOne executes a single experiment into its record.
func runOne(cfg Config, e Experiment) Record {
	rec := Record{ID: e.ID, Title: e.Title, PaperRef: e.PaperRef}
	start := time.Now()
	results, err := e.Run(cfg)
	rec.Elapsed = time.Since(start)
	if err != nil {
		rec.Err = err.Error()
		return rec
	}
	rec.Results = results
	return rec
}
