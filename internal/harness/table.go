// Package harness defines the reproduction experiments: one per
// table/figure-equivalent claim of the paper (the paper is theoretical, so
// its "evaluation" is the set of theorems of Sections 3–5; each experiment
// regenerates one claim as a measured table).  The registry is consumed by
// cmd/nobl and by the benchmark suite in bench_test.go; EXPERIMENTS.md
// records the outputs.
package harness

import (
	"fmt"
	"strings"

	"netoblivious/internal/core"
)

// Table is a formatted experiment result.
type Table struct {
	// ID is the experiment identifier (E1..E12, F1).
	ID string
	// Title is a one-line description.
	Title string
	// PaperRef points to the theorem/section reproduced.
	PaperRef string
	// Columns are the header names.
	Columns []string
	// Rows hold the formatted cells.
	Rows [][]string
	// Notes carry free-form commentary (pass/fail summaries, caveats).
	Notes []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000000:
		return fmt.Sprintf("%.3g", v)
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	case v >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// Text renders the table as aligned plain text.
func (t *Table) Text() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s  [%s]\n", t.ID, t.Title, t.PaperRef)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, r := range t.Rows {
		writeRow(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "### %s — %s\n\n*Reproduces: %s*\n\n", t.ID, t.Title, t.PaperRef)
	sb.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	sb.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, r := range t.Rows {
		sb.WriteString("| " + strings.Join(r, " | ") + " |\n")
	}
	sb.WriteByte('\n')
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "> %s\n", n)
	}
	return sb.String()
}

// Config tunes experiment sizes.
type Config struct {
	// Quick shrinks problem sizes for use inside benchmarks and smoke
	// tests.
	Quick bool

	// Engine selects the core execution engine for the experiment's
	// specification-model runs; nil uses core.DefaultEngine().  The
	// algorithm packages pick up the engine through the process-wide
	// default, which Experiment.Run swaps in (and restores) for the
	// duration of the experiment — concurrent experiments should
	// therefore use the same Engine.  Every engine produces identical
	// tables (the traces are equivalent); the knob exists so
	// `nobl -engine` can exercise and time both.
	Engine core.Engine
}

// runOpts returns the core options experiments pass to direct
// specification-model runs, threading the configured engine through.
func (c Config) runOpts(record bool) core.Options {
	return core.Options{RecordMessages: record, Engine: c.Engine}
}

// Experiment couples an identifier with its runner.
type Experiment struct {
	ID       string
	Title    string
	PaperRef string
	Run      func(cfg Config) ([]*Table, error)
}

var registry []Experiment

// register adds an experiment, wrapping its runner so Config.Engine
// reaches every specification-model run of the experiment — including
// the ones inside algorithm packages, which consult the process-wide
// default engine.
func register(e Experiment) {
	inner := e.Run
	e.Run = func(cfg Config) ([]*Table, error) {
		if cfg.Engine != nil {
			prev := core.SetDefaultEngine(cfg.Engine)
			defer core.SetDefaultEngine(prev)
		}
		return inner(cfg)
	}
	registry = append(registry, e)
}

// Experiments returns the full registry in declaration order.
func Experiments() []Experiment { return registry }

// ByID looks up an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	return Experiment{}, false
}
