package harness

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"netoblivious/internal/core"
)

// The spill layer turns the trace store's retention policy from
// count-based eviction into a memory budget: runs beyond the budget are
// written to disk in the compact binary trace format instead of being
// discarded, and paged back in on demand.  A spilled run therefore
// costs one file read to revisit, not a re-execution — the difference
// matters for the large-n traces this store exists to serve.
//
// The index (key → file, byte size, peak-entries metadata) always stays
// in memory; only step data spills.  Spill files are written atomically
// (tmp + rename, via core.TraceFileSink) and are immutable once
// written: a run's trace is deterministic, so a re-spilled key reuses
// its existing file without rewriting.

// SpillStats reports the state and cumulative activity of a spilling
// trace store.
type SpillStats struct {
	// Resident counts runs currently held in memory, Spilled those
	// currently on disk only.
	Resident int `json:"resident"`
	Spilled  int `json:"spilled"`
	// UsedBytes is the estimated in-memory footprint of the resident
	// runs; BudgetBytes the configured ceiling.
	UsedBytes   int64 `json:"used_bytes"`
	BudgetBytes int64 `json:"budget_bytes"`
	// Spills and Reloads count write-outs and page-ins over the store's
	// lifetime.
	Spills  int64 `json:"spills"`
	Reloads int64 `json:"reloads"`
}

// spillEntry is the in-memory index record of one run.
type spillEntry struct {
	key         string
	bytes       int64
	peakEntries int
	path        string        // spill file; "" until first written out
	elem        *list.Element // LRU position while resident; nil when spilled
}

type spiller struct {
	mu      sync.Mutex
	dir     string
	budget  int64
	used    int64
	entries map[string]*spillEntry
	lru     *list.List // of *spillEntry; front = most recently used
	seq     int
	spills  int64
	reloads int64
}

// NewSpillingTraceStore returns a store that keeps completed runs in
// memory up to budgetBytes (estimated trace footprint) and spills the
// least recently used ones to binary files under dir instead of
// discarding them.  The directory is created if missing; its spill
// files belong to this store for the process lifetime and are left for
// the caller to remove (use a temporary directory).
func NewSpillingTraceStore(budgetBytes int64, dir string) (*TraceStore, error) {
	if budgetBytes <= 0 {
		return nil, fmt.Errorf("harness: spill budget must be positive, got %d", budgetBytes)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("harness: spill dir: %w", err)
	}
	return &TraceStore{
		store: core.NewStore[AlgRun](),
		spill: &spiller{
			dir:     dir,
			budget:  budgetBytes,
			entries: map[string]*spillEntry{},
			lru:     list.New(),
		},
	}, nil
}

// SpillStats returns the spill-layer counters; ok is false when the
// store is not a spilling store.
func (ts *TraceStore) SpillStats() (SpillStats, bool) {
	if ts.spill == nil {
		return SpillStats{}, false
	}
	sp := ts.spill
	sp.mu.Lock()
	defer sp.mu.Unlock()
	st := SpillStats{
		Resident:    sp.lru.Len(),
		Spilled:     len(sp.entries) - sp.lru.Len(),
		UsedBytes:   sp.used,
		BudgetBytes: sp.budget,
		Spills:      sp.spills,
		Reloads:     sp.reloads,
	}
	return st, true
}

// traceBytes estimates the in-memory footprint of a trace: the step
// records plus 8 bytes per recorded message pair (two int32 columns).
func traceBytes(tr *core.Trace) int64 {
	if tr == nil {
		return 0
	}
	var b int64
	for i := range tr.Steps {
		rec := &tr.Steps[i]
		b += 64 + int64(len(rec.Degree))*8 + int64(rec.Pairs.Len())*8
	}
	return b
}

// spillReload pages a previously spilled run back in.  Called from
// inside the store's single-flight compute, so at most one reload per
// key runs at a time.
func (ts *TraceStore) spillReload(key string) (AlgRun, bool, error) {
	sp := ts.spill
	sp.mu.Lock()
	e := sp.entries[key]
	if e == nil || e.path == "" {
		sp.mu.Unlock()
		return AlgRun{}, false, nil
	}
	path, peak := e.path, e.peakEntries
	sp.reloads++
	sp.mu.Unlock()
	src, err := core.OpenTraceFile(path)
	if err != nil {
		return AlgRun{}, false, fmt.Errorf("harness: reloading spilled trace %s: %w", key, err)
	}
	defer src.Close()
	tr, err := core.ReadAll(src)
	if err != nil {
		return AlgRun{}, false, fmt.Errorf("harness: reloading spilled trace %s: %w", key, err)
	}
	return AlgRun{Trace: tr, PeakEntries: peak}, true, nil
}

// spillTouch charges a just-computed or just-reloaded run against the
// budget, refreshes its LRU position, and writes out least recently
// used runs while the budget is exceeded.  A single run larger than the
// whole budget is written out immediately — later Gets page it in per
// use, keeping the resident set bounded.
func (ts *TraceStore) spillTouch(key string, run AlgRun) error {
	sp := ts.spill
	sp.mu.Lock()
	defer sp.mu.Unlock()
	e := sp.entries[key]
	if e == nil {
		e = &spillEntry{key: key, bytes: traceBytes(run.Trace), peakEntries: run.PeakEntries}
		sp.entries[key] = e
	}
	if e.elem == nil {
		e.elem = sp.lru.PushFront(e)
		sp.used += e.bytes
	} else {
		sp.lru.MoveToFront(e.elem)
	}
	for sp.used > sp.budget && sp.lru.Len() > 0 {
		victim := sp.lru.Back().Value.(*spillEntry)
		if err := sp.writeOutLocked(ts.store, victim); err != nil {
			// A failed write-out must not lose the run: leave it resident
			// (the budget is advisory, the data is not) and surface the
			// error to the caller that triggered the rebalance.
			return fmt.Errorf("harness: spilling trace %s: %w", victim.key, err)
		}
	}
	return nil
}

// writeOutLocked spills one resident entry: write its trace (once),
// drop it from the memo store, and uncharge it.  Called with sp.mu
// held.
func (sp *spiller) writeOutLocked(store *core.Store[AlgRun], victim *spillEntry) error {
	run, err, ok := store.Peek(victim.key)
	if !ok || err != nil || run.Trace == nil {
		// The entry vanished from the store (a Forget) or never held a
		// usable trace: uncharge and drop the index record.
		sp.lru.Remove(victim.elem)
		victim.elem = nil
		sp.used -= victim.bytes
		delete(sp.entries, victim.key)
		return nil
	}
	if victim.path == "" {
		path := filepath.Join(sp.dir, fmt.Sprintf("spill-%06d.nobtrc", sp.seq))
		sp.seq++
		if werr := writeTraceFile(path, run.Trace); werr != nil {
			return werr
		}
		victim.path = path
	}
	store.Forget(victim.key)
	sp.lru.Remove(victim.elem)
	victim.elem = nil
	sp.used -= victim.bytes
	sp.spills++
	return nil
}

// writeTraceFile writes tr to path in the binary spill format,
// atomically, without releasing the live trace's pair chunks.
func writeTraceFile(path string, tr *core.Trace) error {
	sink := core.NewTraceFileSink(path, core.TraceBinary)
	sink.KeepPairs = true
	if err := sink.BeginTrace(tr.V, tr.LogV); err != nil {
		return err
	}
	werr := func() error {
		for i := range tr.Steps {
			if err := sink.WriteStep(tr.Steps[i]); err != nil {
				return err
			}
		}
		return nil
	}()
	if err := sink.EndTrace(werr); err != nil && werr == nil {
		werr = err
	}
	return werr
}
