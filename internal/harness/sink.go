package harness

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Format names an output encoding of the experiment pipeline.
type Format string

const (
	// FormatText renders aligned plain-text tables (the default).
	FormatText Format = "text"
	// FormatMarkdown renders GitHub-flavored markdown tables.
	FormatMarkdown Format = "md"
	// FormatJSON renders the schema-tagged Document, round-trippable
	// through DecodeDocument.
	FormatJSON Format = "json"
	// FormatCSV renders one CSV section per result (data rows only).
	FormatCSV Format = "csv"
)

// Formats lists the selectable output formats.
func Formats() []Format { return []Format{FormatText, FormatMarkdown, FormatJSON, FormatCSV} }

// ParseFormat resolves a user-facing format name.
func ParseFormat(name string) (Format, error) {
	for _, f := range Formats() {
		if string(f) == name {
			return f, nil
		}
	}
	if name == "markdown" {
		return FormatMarkdown, nil
	}
	return "", fmt.Errorf("harness: unknown format %q (have text|md|json|csv)", name)
}

// Ext returns the file extension used when writing per-experiment files.
func (f Format) Ext() string {
	switch f {
	case FormatMarkdown:
		return ".md"
	case FormatJSON:
		return ".json"
	case FormatCSV:
		return ".csv"
	default:
		return ".txt"
	}
}

// valueDTO is the explicit JSON encoding of a typed cell: exactly one of
// the fields is present, so a decode reconstructs the Value kind-exactly
// (a bare JSON number could not distinguish Int from Float).
type valueDTO struct {
	S *string  `json:"s,omitempty"`
	I *int64   `json:"i,omitempty"`
	F *float64 `json:"f,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (v Value) MarshalJSON() ([]byte, error) {
	switch v.Kind {
	case KindString:
		return json.Marshal(valueDTO{S: &v.Str})
	case KindInt:
		return json.Marshal(valueDTO{I: &v.Int})
	default:
		return json.Marshal(valueDTO{F: &v.Float})
	}
}

// UnmarshalJSON implements json.Unmarshaler, rejecting cells that do not
// carry exactly one kind.
func (v *Value) UnmarshalJSON(data []byte) error {
	var dto valueDTO
	if err := json.Unmarshal(data, &dto); err != nil {
		return err
	}
	set := 0
	if dto.S != nil {
		*v = String(*dto.S)
		set++
	}
	if dto.I != nil {
		*v = Int(*dto.I)
		set++
	}
	if dto.F != nil {
		*v = Float(*dto.F)
		set++
	}
	if set != 1 {
		return fmt.Errorf("harness: cell must carry exactly one of s/i/f, got %d", set)
	}
	return nil
}

// Text renders the result as an aligned plain-text table with notes and
// check outcomes.
func (r *Result) Text() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s  [%s]\n", r.ID, r.Title, r.PaperRef)
	rows := r.FormattedRows()
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for _, row := range rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(r.Columns)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	for _, c := range r.Checks {
		fmt.Fprintf(&sb, "check: %-4s %s — %s\n", checkWord(c.Pass), c.Name, c.Detail)
	}
	return sb.String()
}

// Markdown renders the result as GitHub-flavored markdown.
func (r *Result) Markdown() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "### %s — %s\n\n*Reproduces: %s*\n\n", r.ID, r.Title, r.PaperRef)
	sb.WriteString("| " + strings.Join(r.Columns, " | ") + " |\n")
	sb.WriteString("|" + strings.Repeat("---|", len(r.Columns)) + "\n")
	for _, row := range r.FormattedRows() {
		sb.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	sb.WriteByte('\n')
	for _, n := range r.Notes {
		fmt.Fprintf(&sb, "> %s\n", n)
	}
	for _, c := range r.Checks {
		fmt.Fprintf(&sb, "- **%s** %s — %s\n", checkWord(c.Pass), c.Name, c.Detail)
	}
	return sb.String()
}

func checkWord(pass bool) string {
	if pass {
		return "ok"
	}
	return "FAIL"
}

// EncodeCSV writes the result's grid as CSV: a header row of column
// names followed by the formatted data rows.  Notes and checks are
// presentation/metadata and stay out of the data stream.
func (r *Result) EncodeCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.Columns); err != nil {
		return err
	}
	if err := cw.WriteAll(r.FormattedRows()); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// DecodeCSV reads a CSV stream written by EncodeCSV (or one section of
// the csv sink's output, whose leading "# ..." identity line is skipped
// as a comment) back into columns and formatted rows, for round-trip
// verification and downstream tools.
func DecodeCSV(rd io.Reader) (columns []string, rows [][]string, err error) {
	cr := csv.NewReader(rd)
	cr.Comment = '#'
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, nil, fmt.Errorf("harness: decoding csv: %w", err)
	}
	if len(recs) == 0 {
		return nil, nil, fmt.Errorf("harness: csv stream has no header")
	}
	return recs[0], recs[1:], nil
}

// DocumentSchema tags the JSON document format; bump on breaking changes.
const DocumentSchema = "nobl/results/v1"

// Document is the JSON sink's payload: the full structured outcome of a
// suite run.  It deliberately excludes wall-clock timings so that
// parallel and sequential runs encode byte-identically; timings live in
// the separate bench report (cmd/nobl -bench).
type Document struct {
	// Schema is always DocumentSchema.
	Schema string `json:"schema"`
	// Quick records whether reduced problem sizes were used.
	Quick bool `json:"quick"`
	// Engine is the execution engine name the suite ran on.
	Engine string `json:"engine"`
	// Records holds one entry per experiment, in registry order.
	Records []Record `json:"experiments"`
}

// EncodeDocument writes the document as indented JSON.
func EncodeDocument(w io.Writer, doc Document) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// DecodeDocument reads a document written by EncodeDocument and validates
// its structural invariants: schema tag, per-experiment identifiers, and
// row/column consistency of every result grid.
func DecodeDocument(r io.Reader) (Document, error) {
	var doc Document
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return Document{}, fmt.Errorf("harness: decoding document: %w", err)
	}
	if doc.Schema != DocumentSchema {
		return Document{}, fmt.Errorf("harness: document schema %q, want %q", doc.Schema, DocumentSchema)
	}
	for _, rec := range doc.Records {
		if rec.ID == "" {
			return Document{}, fmt.Errorf("harness: document record without experiment id")
		}
		for _, res := range rec.Results {
			if len(res.Columns) == 0 {
				return Document{}, fmt.Errorf("harness: %s: result %q has no columns", rec.ID, res.Title)
			}
			for i, row := range res.Rows {
				if len(row) != len(res.Columns) {
					return Document{}, fmt.Errorf("harness: %s: row %d has %d cells, want %d", rec.ID, i, len(row), len(res.Columns))
				}
			}
		}
	}
	return doc, nil
}

// Sink consumes suite records in registry order and renders them to a
// stream.  Write is called once per experiment; Close flushes formats
// that buffer (JSON emits its document on Close).
type Sink interface {
	Write(rec Record) error
	Close() error
}

// NewSink builds a sink for the format writing to w.  The JSON sink
// stamps the document header from cfg.
func NewSink(f Format, w io.Writer, cfg Config) (Sink, error) {
	switch f {
	case FormatText:
		return &streamSink{w: w, render: func(r *Result) string { return r.Text() }}, nil
	case FormatMarkdown:
		return &streamSink{w: w, render: func(r *Result) string { return r.Markdown() }}, nil
	case FormatCSV:
		return &csvSink{w: w}, nil
	case FormatJSON:
		return &jsonSink{w: w, doc: Document{
			Schema: DocumentSchema,
			Quick:  cfg.Quick,
			Engine: cfg.engine().Name(),
		}}, nil
	default:
		return nil, fmt.Errorf("harness: unknown format %q", f)
	}
}

// streamSink renders each result eagerly with a blank line between them;
// shared by the text and markdown formats.
type streamSink struct {
	w      io.Writer
	render func(*Result) string
}

func (s *streamSink) Write(rec Record) error {
	if rec.Err != "" {
		_, err := fmt.Fprintf(s.w, "%s — ERROR: %s\n\n", rec.ID, rec.Err)
		return err
	}
	for _, res := range rec.Results {
		if _, err := io.WriteString(s.w, s.render(res)); err != nil {
			return err
		}
		if _, err := io.WriteString(s.w, "\n"); err != nil {
			return err
		}
	}
	return nil
}

func (s *streamSink) Close() error { return nil }

// csvSink writes one commented CSV section per result; the comment line
// carries the experiment identity so a concatenated stream stays
// self-describing.  DecodeCSV skips the comment lines but expects one
// section's grid — split a multi-section stream on blank lines first.
type csvSink struct {
	w     io.Writer
	wrote bool
}

func (s *csvSink) Write(rec Record) error {
	if rec.Err != "" {
		return nil // errors are not data; they surface via Record/exit code
	}
	for _, res := range rec.Results {
		if s.wrote {
			if _, err := io.WriteString(s.w, "\n"); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(s.w, "# %s — %s [%s]\n", res.ID, res.Title, res.PaperRef); err != nil {
			return err
		}
		if err := res.EncodeCSV(s.w); err != nil {
			return err
		}
		s.wrote = true
	}
	return nil
}

func (s *csvSink) Close() error { return nil }

// jsonSink buffers records and emits the full Document on Close.
type jsonSink struct {
	w   io.Writer
	doc Document
}

func (s *jsonSink) Write(rec Record) error {
	s.doc.Records = append(s.doc.Records, rec)
	return nil
}

func (s *jsonSink) Close() error { return EncodeDocument(s.w, s.doc) }
