// Package harness defines the reproduction experiments: one per
// table/figure-equivalent claim of the paper (the paper is theoretical, so
// its "evaluation" is the set of theorems of Sections 3–5; each experiment
// regenerates one claim as a measured result set).
//
// The package is a declarative pipeline with three separated layers:
//
//   - measurement: each registered Experiment maps a Config to typed
//     Result values — parameter grid points with measured metrics plus
//     machine-checkable pass/fail Checks — pulling shared specification
//     traces from the per-run TraceStore instead of re-executing them;
//   - execution: RunSuite drives independent experiments through a
//     bounded worker pool with a determinism guarantee (parallel and
//     sequential runs emit byte-identical rendered output);
//   - presentation: sinks in sink.go render Records as aligned text,
//     GitHub markdown, a schema-tagged JSON document, or CSV.
//
// The registry is consumed by cmd/nobl and by the benchmark suite in
// bench_test.go; EXPERIMENTS.md records the rendered outputs.
package harness

import (
	"fmt"
	"math"
)

// ValueKind discriminates the typed cell values of a Result row.
type ValueKind uint8

const (
	// KindString is a text cell (algorithm names, machine names, shapes).
	KindString ValueKind = iota
	// KindInt is an integer cell (sizes, processor counts, counters).
	KindInt
	// KindFloat is a measured or predicted quantity.
	KindFloat
)

// Value is one typed cell of a Result row.  Keeping cells typed (instead
// of pre-formatted strings) is what lets the JSON/CSV sinks emit faithful
// data while the text/markdown sinks control presentation.
type Value struct {
	Kind  ValueKind
	Str   string
	Int   int64
	Float float64
}

// String wraps a text cell.
func String(s string) Value { return Value{Kind: KindString, Str: s} }

// Int wraps an integer cell.
func Int(i int64) Value { return Value{Kind: KindInt, Int: i} }

// Float wraps a float cell.
func Float(f float64) Value { return Value{Kind: KindFloat, Float: f} }

// Format renders the cell for the text, markdown and CSV sinks.
func (v Value) Format() string {
	switch v.Kind {
	case KindString:
		return v.Str
	case KindInt:
		return fmt.Sprint(v.Int)
	default:
		return formatFloat(v.Float)
	}
}

// formatFloat renders a measured quantity at a precision that keeps the
// tables readable across the tens-of-magnitudes range the metrics span:
// scientific ≥ 1e6, integral ≥ 100, two decimals ≥ 1, four below.
func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 1000000:
		return fmt.Sprintf("%.3g", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// Check is one machine-checkable claim of an experiment: the quantitative
// assertion a paper theorem makes about the measured grid, reduced to a
// pass/fail with a human-readable detail.  Failed checks surface in every
// sink and drive the non-zero exit status of `nobl run`.
type Check struct {
	// Name identifies the claim ("H tracks Theorem 4.2", ...).
	Name string `json:"name"`
	// Pass reports whether the measured data satisfied the claim.
	Pass bool `json:"pass"`
	// Detail quantifies the outcome (worst ratio observed, bound used).
	Detail string `json:"detail,omitempty"`
}

// Result is one typed result set of an experiment: a parameter grid with
// measured metrics, commentary notes, and the checks evaluated on it.
type Result struct {
	// ID is the experiment identifier (E1..E16, F1).
	ID string `json:"id"`
	// Title is a one-line description.
	Title string `json:"title"`
	// PaperRef points to the theorem/section reproduced.
	PaperRef string `json:"paper_ref"`
	// Columns are the header names of the grid.
	Columns []string `json:"columns"`
	// Rows hold the typed cells, one slice per grid point.
	Rows [][]Value `json:"rows"`
	// Notes carry free-form commentary (caveats, interpretation).
	Notes []string `json:"notes,omitempty"`
	// Checks are the pass/fail claims evaluated on the grid.
	Checks []Check `json:"checks,omitempty"`
}

// AddRow appends a row, converting Go values to typed cells: string,
// int/int64 and float64 map to their kinds; anything else is formatted
// as text.
func (r *Result) AddRow(cells ...any) {
	row := make([]Value, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = String(v)
		case int:
			row[i] = Int(int64(v))
		case int64:
			row[i] = Int(v)
		case float64:
			row[i] = Float(v)
		default:
			row[i] = String(fmt.Sprint(v))
		}
	}
	r.Rows = append(r.Rows, row)
}

// AddCheck records a pass/fail claim with a formatted detail.
func (r *Result) AddCheck(name string, pass bool, format string, args ...any) {
	r.Checks = append(r.Checks, Check{Name: name, Pass: pass, Detail: fmt.Sprintf(format, args...)})
}

// FailedChecks counts the checks that did not pass.
func (r *Result) FailedChecks() int {
	n := 0
	for _, c := range r.Checks {
		if !c.Pass {
			n++
		}
	}
	return n
}

// FormattedRows renders every cell through Value.Format, the shared
// presentation of the text, markdown and CSV sinks.
func (r *Result) FormattedRows() [][]string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		cells := make([]string, len(row))
		for j, v := range row {
			cells[j] = v.Format()
		}
		rows[i] = cells
	}
	return rows
}
