package harness

import (
	"math"

	"netoblivious/internal/eval"
	"netoblivious/internal/matmul"
)

func init() {
	register(Experiment{
		ID:       "E15",
		Title:    "rectangular matrix multiplication (CARMA recursion) across shapes",
		PaperRef: "Section 6 (follow-up work: Demmel et al., IPDPS 2013)",
		Run:      runE15,
	})
}

func runE15(cfg Config) ([]*Result, error) {
	rng := seededRng()
	res := &Result{
		ID: "E15", Title: "split-largest-dimension recursion: H across operand shapes",
		PaperRef: "Demmel et al. 2013, built on the network-oblivious framework",
		Columns:  []string{"m×k×n", "v", "p", "H(n,p,0)", "(mkn/p)^{2/3}+(mk+kn+mn)/p", "H/pred", "α"},
	}
	shapes := [][4]int{
		{32, 32, 32, 1024}, // square
		{256, 8, 8, 256},   // tall
		{8, 256, 8, 256},   // inner-heavy
		{8, 8, 256, 256},   // wide
		{128, 128, 2, 512}, // panel
	}
	if cfg.Quick {
		shapes = [][4]int{{16, 16, 16, 256}, {64, 4, 4, 64}}
	}
	worst, minAlpha := 0.0, 1.0
	for _, sh := range shapes {
		m, k, n, v := sh[0], sh[1], sh[2], sh[3]
		a := make([]int64, m*k)
		for i := range a {
			a[i] = int64(rng.Intn(50))
		}
		b := make([]int64, k*n)
		for i := range b {
			b[i] = int64(rng.Intn(50))
		}
		r, err := matmul.MultiplyRect(m, k, n, v, a, b, matmul.Options{Wise: true, Engine: cfg.engine()})
		if err != nil {
			return nil, err
		}
		for p := 4; p <= v; p *= 8 {
			h := eval.H(r.Trace, p, 0)
			pred := math.Pow(float64(m)*float64(k)*float64(n)/float64(p), 2.0/3.0) +
				float64(m*k+k*n+m*n)/float64(p)
			alpha := eval.Wiseness(r.Trace, p)
			if h/pred > worst {
				worst = h / pred
			}
			if alpha < minAlpha {
				minAlpha = alpha
			}
			res.AddRow(fmtShape(m, k, n), v, p, h, pred, h/pred, alpha)
		}
	}
	res.Notes = append(res.Notes,
		"the communication bound of rectangular MM has two regimes — the 3D term (mkn/p)^{2/3} for cube-like shapes and the input term (mk+kn+mn)/p for flat ones; the split-largest-dimension rule tracks both, which square-only 8-way recursion cannot",
		"on square shapes the recursion reproduces Theorem 4.2's Θ(n/p^{2/3}) (n = matrix entries)")
	res.AddCheck("H tracks the two-regime CARMA bound within a constant factor", worst <= 20,
		"max H/pred = %.2f (bound 20)", worst)
	res.AddCheck("the recursion stays wise across shapes", minAlpha >= 0.5,
		"min α = %.4f (bound 0.5)", minAlpha)
	return []*Result{res}, nil
}

func fmtShape(m, k, n int) string {
	return itoa(m) + "×" + itoa(k) + "×" + itoa(n)
}

func itoa(x int) string {
	if x == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for x > 0 {
		i--
		buf[i] = byte('0' + x%10)
		x /= 10
	}
	return string(buf[i:])
}
