package harness

import (
	"strings"
	"testing"
)

// TestRegistryContract asserts the invariants every registered algorithm
// — built-in or user-supplied — must satisfy for the analysis surfaces
// to serve it: unique well-formed names, non-empty documentation, a
// non-empty default size ladder whose every entry the algorithm's own
// ValidSize accepts, and a size doc to render alongside size errors.
func TestRegistryContract(t *testing.T) {
	algos := TraceAlgorithms()
	if len(algos) < 10 {
		t.Fatalf("registry has %d algorithms; the paper's built-ins alone are 10", len(algos))
	}
	seen := map[string]bool{}
	for _, a := range algos {
		if a.Name == "" || strings.ContainsAny(a.Name, "/@ \t\n") {
			t.Errorf("malformed name %q", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate name %q", a.Name)
		}
		seen[a.Name] = true
		if a.Doc == "" {
			t.Errorf("%s: empty Doc", a.Name)
		}
		if a.SizeDoc == "" {
			t.Errorf("%s: empty SizeDoc", a.Name)
		}
		sizes := a.DefaultSizes()
		if len(sizes) == 0 {
			t.Errorf("%s: no default sizes", a.Name)
			continue
		}
		for i, n := range sizes {
			if err := a.ValidSize(n); err != nil {
				t.Errorf("%s: rejects its own default size %d: %v", a.Name, n, err)
			}
			if i > 0 && sizes[i-1] >= n {
				t.Errorf("%s: default sizes not ascending: %v", a.Name, sizes)
			}
		}
	}
	for _, name := range []string{
		"bitonic", "broadcast-tree", "fft", "fft-iterative", "matmul",
		"matmul-space", "prefix-tree", "sort", "stencil1", "stencil2",
	} {
		if !seen[name] {
			t.Errorf("built-in algorithm %q missing from the registry", name)
		}
	}
}

// TestRegistryLookupAllocationFree is the benchmark-backed regression
// test for the registry-churn fix: TraceAlgorithms once rebuilt and
// re-sorted the whole closure slice per call and TraceAlgorithmByName
// linear-scanned a fresh copy — both on the service's per-request
// validation path.  Neither may allocate now.
func TestRegistryLookupAllocationFree(t *testing.T) {
	if avg := testing.AllocsPerRun(100, func() {
		if _, ok := TraceAlgorithmByName("matmul"); !ok {
			t.Fatal("matmul missing")
		}
	}); avg != 0 {
		t.Errorf("TraceAlgorithmByName allocates %.1f objects per call, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() {
		if len(TraceAlgorithms()) == 0 {
			t.Fatal("empty registry")
		}
	}); avg != 0 {
		t.Errorf("TraceAlgorithms allocates %.1f objects per call, want 0", avg)
	}
}

func BenchmarkTraceAlgorithmByName(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := TraceAlgorithmByName("stencil2"); !ok {
			b.Fatal("stencil2 missing")
		}
	}
}

func BenchmarkTraceAlgorithms(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(TraceAlgorithms()) == 0 {
			b.Fatal("empty registry")
		}
	}
}
