package harness

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"netoblivious/internal/core"
)

// TestTraceStoreSharesExecutions runs the full quick suite against one
// store and asserts the acceptance criterion of the pipeline refactor:
// the (algorithm, n) overlap between experiments — E1/E2 share the
// matmul traces with E8/E9/E10/E12, E13 shares the sort traces, and so
// on — is served from cache, not recomputed.
func TestTraceStoreSharesExecutions(t *testing.T) {
	store := NewTraceStore()
	recs, err := RunSuite(Config{Quick: true, Store: store}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("no records")
	}
	st := store.Stats()
	if st.Hits < 1 {
		t.Errorf("trace store recorded %d hits over the full quick suite; want >= 1 (duplicate executions not eliminated)", st.Hits)
	}
	if st.Misses < 1 {
		t.Error("trace store recorded no misses; store not exercised")
	}
	if st.Misses != int64(storeLen(store)) {
		t.Errorf("misses (%d) != distinct keys (%d): single-flight accounting broken", st.Misses, storeLen(store))
	}
	t.Logf("trace store: %d hits, %d misses (hit rate %.0f%%)", st.Hits, st.Misses, 100*st.HitRate())
}

func storeLen(ts *TraceStore) int { return ts.store.Len() }

// TestCoreStoreSingleFlight hammers one key from many goroutines: the
// compute function must run exactly once and every caller must observe
// its value; a second key must recompute.
func TestCoreStoreSingleFlight(t *testing.T) {
	s := core.NewStore[int]()
	var computes atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := s.Get("k", func() (int, error) {
				computes.Add(1)
				return 42, nil
			})
			if err != nil || v != 42 {
				t.Errorf("Get = %d, %v", v, err)
			}
		}()
	}
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Errorf("compute ran %d times, want 1", n)
	}
	st := s.Stats()
	if st.Misses != 1 || st.Hits != 31 {
		t.Errorf("stats = %+v, want 1 miss / 31 hits", st)
	}

	// Errors are cached too: same outcome for every caller.
	boom := errors.New("boom")
	for i := 0; i < 2; i++ {
		if _, err := s.Get("bad", func() (int, error) { return 0, boom }); !errors.Is(err, boom) {
			t.Errorf("cached error lost: %v", err)
		}
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}
}

// TestTraceStoreKeysByEngine asserts runs on different engines never
// alias, and that the trace key renders its canonical form.
func TestTraceStoreKeysByEngine(t *testing.T) {
	store := NewTraceStore()
	a, err := store.Get(context.Background(), core.GoroutineEngine{}, "broadcast-tree", 64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := store.Get(context.Background(), core.BlockEngine{}, "broadcast-tree", 64)
	if err != nil {
		t.Fatal(err)
	}
	if a.Trace == b.Trace {
		t.Error("different engines shared one memoized run")
	}
	if st := store.Stats(); st.Misses != 2 {
		t.Errorf("misses = %d, want 2 (one per engine)", st.Misses)
	}
	if _, err := store.Get(context.Background(), nil, "no-such-alg", 8); err == nil {
		t.Error("unknown algorithm accepted")
	}
	key := core.TraceKey{Algorithm: "fft", N: 256, Engine: "block"}
	if key.String() != "fft/n=256@block" {
		t.Errorf("TraceKey.String() = %q", key.String())
	}
}
