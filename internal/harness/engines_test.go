package harness

import (
	"bytes"
	"testing"

	"netoblivious/internal/colsort"
	"netoblivious/internal/core"
	"netoblivious/internal/tracetest"
)

// TestEngineEquivalenceAllAlgorithms runs every registry algorithm on both
// execution engines across a ladder of machine sizes and asserts
// byte-identical traces: the BlockEngine must be a drop-in replacement for
// the reference GoroutineEngine on every real workload in the repository.
func TestEngineEquivalenceAllAlgorithms(t *testing.T) {
	sizes := map[string][]int{
		// n must be the square of a power of two for the matmul family.
		"matmul":       {4, 16, 64, 1024},
		"matmul-space": {4, 16, 64, 1024},
		// v = n² for the 2D stencil; keep the machine at or below 4096 VPs.
		"stencil2": {2, 8, 64},
	}
	defaultSizes := []int{2, 8, 64, 1024}

	runWith := func(eng core.Engine, alg TraceAlgorithm, n int) (*core.Trace, error) {
		prev := core.SetDefaultEngine(eng)
		defer core.SetDefaultEngine(prev)
		return alg.Run(n)
	}

	for _, alg := range TraceAlgorithms() {
		ns, ok := sizes[alg.Name]
		if !ok {
			ns = defaultSizes
		}
		if testing.Short() {
			ns = ns[:len(ns)-1] // drop the largest size under -short
		}
		compared := 0
		for _, n := range ns {
			ref, refErr := runWith(core.GoroutineEngine{}, alg, n)
			got, gotErr := runWith(core.BlockEngine{}, alg, n)
			if (refErr != nil) != (gotErr != nil) {
				t.Errorf("%s n=%d: engines disagree on validity: goroutine=%v block=%v", alg.Name, n, refErr, gotErr)
				continue
			}
			if refErr != nil {
				continue // size invalid for this algorithm on both engines
			}
			if !bytes.Equal(tracetest.Canonical(t, ref), tracetest.Canonical(t, got)) {
				t.Errorf("%s n=%d: BlockEngine trace differs from GoroutineEngine trace", alg.Name, n)
				continue
			}
			compared++
		}
		if compared < 2 {
			t.Errorf("%s: only %d sizes compared successfully; size ladder too restrictive", alg.Name, compared)
		}
	}
}

// TestEngineEquivalenceRecordedPairs re-checks equivalence with message
// recording enabled on a real algorithm, covering the Pairs field of the
// trace contract end to end.
func TestEngineEquivalenceRecordedPairs(t *testing.T) {
	keys := make([]int64, 64)
	for i := range keys {
		keys[i] = int64((i * 2654435761) % 1009)
	}
	run := func(eng core.Engine) *core.Trace {
		prev := core.SetDefaultEngine(eng)
		defer core.SetDefaultEngine(prev)
		res, err := colsort.Sort(keys, colsort.Options{Wise: true, Record: true})
		if err != nil {
			t.Fatalf("%s: %v", eng.Name(), err)
		}
		return res.Trace
	}
	ref := run(core.GoroutineEngine{})
	got := run(core.BlockEngine{})
	if ref.TotalMessages() == 0 {
		t.Fatal("expected a nonempty trace")
	}
	if !bytes.Equal(tracetest.Canonical(t, ref), tracetest.Canonical(t, got)) {
		t.Error("recorded-pairs trace differs between engines")
	}
}
