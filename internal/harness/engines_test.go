package harness

import (
	"bytes"
	"context"
	"testing"

	"netoblivious/internal/colsort"
	"netoblivious/internal/core"
	"netoblivious/internal/tracetest"
)

// TestEngineEquivalenceAllAlgorithms runs every registry algorithm on both
// execution engines across a ladder of machine sizes and asserts
// byte-identical traces: the BlockEngine must be a drop-in replacement for
// the reference GoroutineEngine on every real workload in the repository.
// The engine reaches the algorithms through the threaded option — never
// the process-wide default — so the comparisons can themselves run under
// a racing test schedule safely.
func TestEngineEquivalenceAllAlgorithms(t *testing.T) {
	sizes := map[string][]int{
		// n must be the square of a power of two for the matmul family.
		"matmul":       {4, 16, 64, 1024},
		"matmul-space": {4, 16, 64, 1024},
		// v = n² for the 2D stencil; keep the machine at or below 4096 VPs.
		"stencil2": {2, 8, 64},
	}
	defaultSizes := []int{2, 8, 64, 1024}

	for _, alg := range TraceAlgorithms() {
		ns, ok := sizes[alg.Name]
		if !ok {
			ns = defaultSizes
		}
		if testing.Short() {
			ns = ns[:len(ns)-1] // drop the largest size under -short
		}
		compared := 0
		for _, n := range ns {
			ref, refErr := alg.Run(context.Background(), core.GoroutineEngine{}, n, false)
			got, gotErr := alg.Run(context.Background(), core.BlockEngine{}, n, false)
			if (refErr != nil) != (gotErr != nil) {
				t.Errorf("%s n=%d: engines disagree on validity: goroutine=%v block=%v", alg.Name, n, refErr, gotErr)
				continue
			}
			if refErr != nil {
				continue // size invalid for this algorithm on both engines
			}
			if !bytes.Equal(tracetest.Canonical(t, ref.Trace), tracetest.Canonical(t, got.Trace)) {
				t.Errorf("%s n=%d: BlockEngine trace differs from GoroutineEngine trace", alg.Name, n)
				continue
			}
			compared++
		}
		if compared < 2 {
			t.Errorf("%s: only %d sizes compared successfully; size ladder too restrictive", alg.Name, compared)
		}
	}
}

// TestEngineEquivalenceRecordedPairs re-checks equivalence with message
// recording enabled on a real algorithm, covering the Pairs field of the
// trace contract end to end.
func TestEngineEquivalenceRecordedPairs(t *testing.T) {
	keys := make([]int64, 64)
	for i := range keys {
		keys[i] = int64((i * 2654435761) % 1009)
	}
	run := func(eng core.Engine) *core.Trace {
		res, err := colsort.Sort(keys, colsort.Options{Wise: true, Record: true, Engine: eng})
		if err != nil {
			t.Fatalf("%s: %v", eng.Name(), err)
		}
		return res.Trace
	}
	ref := run(core.GoroutineEngine{})
	got := run(core.BlockEngine{})
	if ref.TotalMessages() == 0 {
		t.Fatal("expected a nonempty trace")
	}
	if !bytes.Equal(tracetest.Canonical(t, ref), tracetest.Canonical(t, got)) {
		t.Error("recorded-pairs trace differs between engines")
	}
}

// TestSuiteEngineIsolation runs two suites concurrently on different
// engines — the scenario the process-global default engine could not
// support — and asserts both produce the same passing records.
func TestSuiteEngineIsolation(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-engine suite run is slow")
	}
	ids := []string{"E1", "E10"}
	type out struct {
		recs []Record
		err  error
	}
	ch := make(chan out, 2)
	for _, eng := range []core.Engine{core.GoroutineEngine{}, core.BlockEngine{}} {
		eng := eng
		go func() {
			recs, err := RunSuite(Config{Quick: true, Engine: eng, Parallel: 2}, ids)
			ch <- out{recs, err}
		}()
	}
	a, b := <-ch, <-ch
	if a.err != nil || b.err != nil {
		t.Fatalf("suite errors: %v / %v", a.err, b.err)
	}
	for i := range a.recs {
		if !a.recs[i].Passed() || !b.recs[i].Passed() {
			t.Errorf("%s: concurrent cross-engine runs did not both pass (err %q / %q)",
				a.recs[i].ID, a.recs[i].Err, b.recs[i].Err)
			continue
		}
		if a.recs[i].Results[0].Text() != b.recs[i].Results[0].Text() {
			t.Errorf("%s: engines rendered different results", a.recs[i].ID)
		}
	}
}
