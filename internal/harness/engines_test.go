package harness

import (
	"bytes"
	"context"
	"runtime"
	"testing"

	"netoblivious/alg"
	"netoblivious/internal/colsort"
	"netoblivious/internal/core"
	"netoblivious/internal/tracetest"
)

// The test registers its own algorithm through the public API before the
// equivalence sweep runs, proving the registry is open: the sweep below
// iterates the registry and never names it.
func init() {
	alg.MustRegister(alg.Algorithm{
		Name:    "zz-test-rotate",
		Doc:     "test-only ring rotation: VP i sends to (i+1) mod v each superstep",
		SizeDoc: "a power of two >= 2",
		Sizes:   []int{4, 16, 64},
		Valid:   alg.PowerOfTwo(2),
		RunFn: func(ctx context.Context, spec alg.Spec, n int) (alg.Result, error) {
			tr, err := core.RunOpt(n, func(vp *core.VP[int]) {
				for r := 0; r < 3; r++ {
					vp.Send((vp.ID()+1)%n, vp.ID())
					vp.Sync(0)
					vp.Receive()
				}
			}, spec.RunOptions())
			if err != nil {
				return alg.Result{}, err
			}
			return alg.Result{Trace: tr}, nil
		},
	})
}

// TestEngineEquivalenceAllAlgorithms runs every registry algorithm — the
// built-ins plus anything registered through the open alg API, such as
// the rotation fixture above — on every execution engine (goroutine,
// block, and replay cold + warm) across each algorithm's own default
// size ladder and asserts byte-identical traces: every engine must be a
// drop-in replacement for the reference GoroutineEngine on every
// workload that can reach the registry.  The
// engine reaches the algorithms through the threaded spec — never the
// process-wide default — so the comparisons can themselves run under a
// racing test schedule safely.
func TestEngineEquivalenceAllAlgorithms(t *testing.T) {
	if _, ok := TraceAlgorithmByName("zz-test-rotate"); !ok {
		t.Fatal("registry is not open: the test-registered algorithm is missing")
	}
	for _, a := range TraceAlgorithms() {
		ns := a.DefaultSizes()
		if testing.Short() && len(ns) > 2 {
			ns = ns[:len(ns)-1] // drop the largest size under -short
		}
		if compared := tracetest.EngineEquivalence(t, a, ns); compared < 2 {
			t.Errorf("%s: only %d sizes compared successfully; default size ladder too restrictive", a.Name, compared)
		}
	}
}

// TestEngineEquivalenceRecordedPairs re-checks equivalence with message
// recording enabled on a real algorithm, covering the Pairs field of the
// trace contract end to end.
func TestEngineEquivalenceRecordedPairs(t *testing.T) {
	keys := make([]int64, 64)
	for i := range keys {
		keys[i] = int64((i * 2654435761) % 1009)
	}
	run := func(eng core.Engine) *core.Trace {
		res, err := colsort.Sort(keys, colsort.Options{Wise: true, Record: true, Engine: eng})
		if err != nil {
			t.Fatalf("%s: %v", eng.Name(), err)
		}
		return res.Trace
	}
	ref := run(core.GoroutineEngine{})
	got := run(core.BlockEngine{})
	if ref.TotalMessages() == 0 {
		t.Fatal("expected a nonempty trace")
	}
	if !bytes.Equal(tracetest.Canonical(t, ref), tracetest.Canonical(t, got)) {
		t.Error("recorded-pairs trace differs between engines")
	}
}

// TestReplayDeterminismAcrossGOMAXPROCS compiles and replays the same
// keyed algorithm under different GOMAXPROCS settings — which change the
// BlockEngine worker count the compile run uses — and asserts the raw
// encoded traces (no canonicalization: replay order is part of the
// contract) are byte-identical.  The compiled schedule's (dst, src) sort
// is what makes this hold.
func TestReplayDeterminismAcrossGOMAXPROCS(t *testing.T) {
	a, ok := TraceAlgorithmByName("fft")
	if !ok {
		t.Fatal("fft not registered")
	}
	encode := func(tr *core.Trace) []byte {
		var buf bytes.Buffer
		if err := tr.EncodeJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	var want []byte
	for _, procs := range []int{1, 2, 4} {
		prev := runtime.GOMAXPROCS(procs)
		res, err := a.Run(context.Background(),
			alg.Spec{Engine: core.ReplayEngine{Store: core.NewScheduleStore()}, Record: true}, 64)
		runtime.GOMAXPROCS(prev)
		if err != nil {
			t.Fatalf("GOMAXPROCS=%d: %v", procs, err)
		}
		got := encode(res.Trace)
		if want == nil {
			want = got
		} else if !bytes.Equal(want, got) {
			t.Errorf("GOMAXPROCS=%d: replayed trace differs byte-for-byte from the first run", procs)
		}
	}
}

// TestReplayColdWarmByteEqual asserts the recording compile run and a
// warm cache hit produce byte-identical encoded traces — the replayed
// trace must not depend on which path produced it.
func TestReplayColdWarmByteEqual(t *testing.T) {
	a, ok := TraceAlgorithmByName("sort")
	if !ok {
		t.Fatal("sort not registered")
	}
	eng := core.ReplayEngine{Store: core.NewScheduleStore()}
	encode := func(tr *core.Trace) []byte {
		var buf bytes.Buffer
		if err := tr.EncodeJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	cold, err := a.Run(context.Background(), alg.Spec{Engine: eng, Record: true}, 64)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := a.Run(context.Background(), alg.Spec{Engine: eng, Record: true}, 64)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Store.Stats().Hits == 0 {
		t.Error("second run did not hit the schedule cache")
	}
	if !bytes.Equal(encode(cold.Trace), encode(warm.Trace)) {
		t.Error("cold and warm replay traces differ byte-for-byte")
	}
}

// TestSuiteEngineIsolation runs two suites concurrently on different
// engines — the scenario the process-global default engine could not
// support — and asserts both produce the same passing records.
func TestSuiteEngineIsolation(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-engine suite run is slow")
	}
	ids := []string{"E1", "E10"}
	type out struct {
		recs []Record
		err  error
	}
	ch := make(chan out, 2)
	for _, eng := range []core.Engine{core.GoroutineEngine{}, core.BlockEngine{}} {
		eng := eng
		go func() {
			recs, err := RunSuite(Config{Quick: true, Engine: eng, Parallel: 2}, ids)
			ch <- out{recs, err}
		}()
	}
	a, b := <-ch, <-ch
	if a.err != nil || b.err != nil {
		t.Fatalf("suite errors: %v / %v", a.err, b.err)
	}
	for i := range a.recs {
		if !a.recs[i].Passed() || !b.recs[i].Passed() {
			t.Errorf("%s: concurrent cross-engine runs did not both pass (err %q / %q)",
				a.recs[i].ID, a.recs[i].Err, b.recs[i].Err)
			continue
		}
		if a.recs[i].Results[0].Text() != b.recs[i].Results[0].Text() {
			t.Errorf("%s: engines rendered different results", a.recs[i].ID)
		}
	}
}
