package harness

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"netoblivious/internal/core"
)

// TestSpillingTraceStoreRoundTrip: a budget far below the working set
// forces every run to spill; revisiting a spilled key pages the exact
// same trace back in (byte-identical JSON encoding) with its metadata,
// without re-executing — distinguishable because reloads are counted.
func TestSpillingTraceStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ts, err := NewSpillingTraceStore(1, dir) // 1 byte: nothing stays resident
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	ref, err := NewTraceStore().GetRecorded(ctx, nil, "fft", 64)
	if err != nil {
		t.Fatal(err)
	}
	first, err := ts.GetRecorded(ctx, nil, "fft", 64)
	if err != nil {
		t.Fatal(err)
	}
	second, err := ts.GetRecorded(ctx, nil, "fft", 64)
	if err != nil {
		t.Fatal(err)
	}
	var want, got1, got2 bytes.Buffer
	if err := ref.Trace.EncodeJSON(&want); err != nil {
		t.Fatal(err)
	}
	if err := first.Trace.EncodeJSON(&got1); err != nil {
		t.Fatal(err)
	}
	if err := second.Trace.EncodeJSON(&got2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got1.Bytes()) {
		t.Error("first spilled-store run differs from the reference trace")
	}
	if !bytes.Equal(want.Bytes(), got2.Bytes()) {
		t.Error("reloaded run differs from the reference trace")
	}
	st, ok := ts.SpillStats()
	if !ok {
		t.Fatal("SpillStats reported non-spilling store")
	}
	if st.Spills < 1 {
		t.Errorf("spills = %d, want >= 1 (budget of 1 byte keeps nothing resident)", st.Spills)
	}
	if st.Reloads < 1 {
		t.Errorf("reloads = %d, want >= 1 (second Get must page in, not re-run)", st.Reloads)
	}
	if st.UsedBytes < 0 {
		t.Errorf("used bytes went negative: %d", st.UsedBytes)
	}
	// The spill files exist, are complete (footer validates on read), and
	// no temporary siblings are left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var files int
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Errorf("leftover temporary spill file %s", e.Name())
		}
		files++
		src, err := core.OpenTraceFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("opening spill file %s: %v", e.Name(), err)
		}
		if _, err := core.ReadAll(src); err != nil {
			t.Errorf("spill file %s does not decode: %v", e.Name(), err)
		}
		src.Close()
	}
	if files < 1 {
		t.Error("no spill files written")
	}
}

// TestSpillingTraceStorePreservesMetadata: PeakEntries lives only in the
// spill index (the binary format stores steps, not run metadata), so a
// reload must restore it.
func TestSpillingTraceStorePreservesMetadata(t *testing.T) {
	ts, err := NewSpillingTraceStore(1, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	ref, err := NewTraceStore().Get(ctx, nil, "matmul", 16)
	if err != nil {
		t.Fatal(err)
	}
	if ref.PeakEntries == 0 {
		t.Fatal("matmul run reported no PeakEntries; test needs an algorithm with the metric")
	}
	if _, err := ts.Get(ctx, nil, "matmul", 16); err != nil {
		t.Fatal(err)
	}
	reloaded, err := ts.Get(ctx, nil, "matmul", 16)
	if err != nil {
		t.Fatal(err)
	}
	if reloaded.PeakEntries != ref.PeakEntries {
		t.Errorf("reloaded PeakEntries = %d, want %d", reloaded.PeakEntries, ref.PeakEntries)
	}
}

// TestSpillingTraceStoreKeepsHotRunsResident: with a budget that fits
// the working set, nothing spills and hits are served from memory.
func TestSpillingTraceStoreKeepsHotRunsResident(t *testing.T) {
	ts, err := NewSpillingTraceStore(64<<20, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := ts.Get(ctx, nil, "fft", 64); err != nil {
			t.Fatal(err)
		}
	}
	st, _ := ts.SpillStats()
	if st.Spills != 0 {
		t.Errorf("spills = %d, want 0 under a 64 MiB budget", st.Spills)
	}
	if st.Resident != 1 {
		t.Errorf("resident = %d, want 1", st.Resident)
	}
	if hits := ts.Stats().Hits; hits < 2 {
		t.Errorf("store hits = %d, want >= 2 (repeat Gets served from memory)", hits)
	}
}

// TestSpillingTraceStoreRejectsBadConfig: a nonpositive budget is a
// configuration error, not a silent unbounded store.
func TestSpillingTraceStoreRejectsBadConfig(t *testing.T) {
	if _, err := NewSpillingTraceStore(0, t.TempDir()); err == nil {
		t.Error("want error for budget 0")
	}
	if _, err := NewSpillingTraceStore(-5, t.TempDir()); err == nil {
		t.Error("want error for negative budget")
	}
}
