package harness

import (
	"netoblivious/internal/cachesim"
	"netoblivious/internal/fft"
)

func init() {
	register(Experiment{
		ID:       "E16",
		Title:    "cache-oblivious connection: sequential simulation on IC(M,B)",
		PaperRef: "Section 6 conjecture (via Pietracaprina et al. 2006)",
		Run:      runE16,
	})
}

func runE16(cfg Config) ([]*Result, error) {
	rng := seededRng()
	n := 1 << 10
	if cfg.Quick {
		n = 1 << 8
	}
	x := randComplex(rng, n)
	// These runs need recorded message pairs and run dummy-free, so they
	// are E16's own rather than trace-store entries.
	rec, err := fft.Transform(x, fft.Options{Wise: false, Record: true, Engine: cfg.engine()})
	if err != nil {
		return nil, err
	}
	it, err := fft.TransformIterative(x, fft.Options{Wise: false, Record: true, Engine: cfg.engine()})
	if err != nil {
		return nil, err
	}
	const ctxWords, b = 4, 8
	sizes := []int{1 << 7, 1 << 9, 1 << 11, 1 << 13}
	curveRec, err := cachesim.MissCurve(rec.Trace, ctxWords, b, sizes)
	if err != nil {
		return nil, err
	}
	curveIt, err := cachesim.MissCurve(it.Trace, ctxWords, b, sizes)
	if err != nil {
		return nil, err
	}
	// Total word accesses (for miss rates): simulate with a huge cache.
	big1, _ := cachesim.New(1<<22, b)
	stRec, err := cachesim.SimulateTrace(rec.Trace, ctxWords, big1)
	if err != nil {
		return nil, err
	}
	big2, _ := cachesim.New(1<<22, b)
	stIt, err := cachesim.SimulateTrace(it.Trace, ctxWords, big2)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID: "E16", Title: "IC(M,B) misses of the one-processor simulation of the two FFTs",
		PaperRef: "Section 6",
		Columns:  []string{"n", "M (words)", "B", "misses: recursive", "miss rate", "misses: iterative", "miss rate", "compulsory"},
	}
	compulsory := stRec.Words / int64(b)
	for i, m := range sizes {
		res.AddRow(n, m, b,
			curveRec[i], float64(curveRec[i])/float64(stRec.Accesses),
			curveIt[i], float64(curveIt[i])/float64(stIt.Accesses),
			compulsory)
	}
	res.Notes = append(res.Notes,
		"the sequential (folded-to-one-processor) execution turns superstep labels into address locality; both FFTs drop to compulsory misses once the footprint fits in M",
		"honest finding: per-access miss rates of the two FFTs are comparable at these n, and the recursive variant's absolute misses are higher because the natural-order substitution (three transposes per level, DESIGN.md) triples its traffic — the Section 6 conjecture concerns asymptotic I/O complexity, which needs larger n and the single-transpose formulation to separate; the simulator makes that investigation runnable")
	last := len(sizes) - 1
	res.AddCheck("both FFTs drop to compulsory misses once the footprint fits in M",
		curveRec[last] == compulsory && curveIt[last] == compulsory,
		"misses at M=%d: recursive %d, iterative %d, compulsory %d", sizes[last], curveRec[last], curveIt[last], compulsory)
	return []*Result{res}, nil
}
