package harness

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"netoblivious/internal/core"
)

// TestRunSuiteCtxCancellation: a cancelled context stops the suite —
// experiments not yet dispatched are skipped with a cancellation record
// instead of executing — and the whole run returns promptly instead of
// finishing the remaining work.
func TestRunSuiteCtxCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: every experiment must be skipped
	recs, err := RunSuiteCtx(ctx, Config{Quick: true, Parallel: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("no records")
	}
	for _, rec := range recs {
		if rec.Err == "" || !strings.Contains(rec.Err, "cancel") {
			t.Fatalf("%s: record did not carry the cancellation (err = %q)", rec.ID, rec.Err)
		}
		if len(rec.Results) != 0 {
			t.Fatalf("%s: cancelled experiment produced results", rec.ID)
		}
	}
}

// TestTraceStoreGetCancellationNotMemoized: a store Get whose computation
// is aborted by the caller's context must not poison the key — the next
// Get with a live context recomputes and succeeds.  This is the property
// the service cache depends on: one impatient client must not break a key
// for everyone else.
func TestTraceStoreGetCancellationNotMemoized(t *testing.T) {
	store := NewTraceStore()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := store.Get(ctx, core.BlockEngine{}, "fft", 4096)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	run, err := store.Get(context.Background(), core.BlockEngine{}, "fft", 4096)
	if err != nil {
		t.Fatalf("key poisoned by cancelled run: %v", err)
	}
	if run.Trace == nil || run.Trace.V != 4096 {
		t.Fatal("recomputed run is wrong")
	}
}

// TestConfigAlgRunCancelsMidRun: Config.Context reaches the engine, so an
// in-flight specification run aborts at a superstep boundary well before
// completion.
func TestConfigAlgRunCancelsMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	cfg := Config{Engine: core.BlockEngine{}, Context: ctx}
	start := time.Now()
	// Large enough that an uncancelled run takes well over the cancel
	// delay on any host this test runs on.
	_, err := cfg.AlgRun("sort", 1<<15)
	elapsed := time.Since(start)
	if err == nil {
		// The run beat the cancellation — can happen on a very fast host;
		// not a failure of propagation.
		t.Skipf("run completed in %v before cancellation", elapsed)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
