package harness

import (
	"fmt"

	"netoblivious/internal/core"
)

// AlgRun bundles a registry algorithm's communication trace with the run
// metadata some experiments report alongside it.
type AlgRun struct {
	// Trace is the recorded communication of the M(v) execution.
	Trace *core.Trace
	// PeakEntries is the peak per-VP matrix-entry count of the matmul
	// family (its memory-blow-up metric); 0 for other algorithms.
	PeakEntries int
}

// TraceStore memoizes registry-algorithm runs by (algorithm, n, engine).
// The paper's algorithms are static — their communication depends only
// on the input size — so one execution per key serves every experiment
// that needs the trace: E1/E2/E8/E9/E10/E12/E13 all fold the same
// handful of traces, and without the store each recomputed them.
// The store is safe for concurrent use and computations are
// single-flight (core.Store), which also keeps the suite's hit/miss
// counters schedule-independent.
type TraceStore struct {
	store *core.Store[AlgRun]
}

// NewTraceStore returns an empty store.
func NewTraceStore() *TraceStore {
	return &TraceStore{store: core.NewStore[AlgRun]()}
}

// Get returns the memoized run of the named registry algorithm at size
// n on the given engine, executing it on first use.
func (ts *TraceStore) Get(eng core.Engine, name string, n int) (AlgRun, error) {
	if eng == nil {
		eng = core.DefaultEngine()
	}
	alg, ok := TraceAlgorithmByName(name)
	if !ok {
		return AlgRun{}, fmt.Errorf("harness: unknown algorithm %q", name)
	}
	key := core.TraceKey{Algorithm: name, N: n, Engine: eng.Name()}
	return ts.store.Get(key.String(), func() (AlgRun, error) {
		return alg.Run(eng, n)
	})
}

// Stats returns the cumulative hit/miss counters.
func (ts *TraceStore) Stats() core.StoreStats { return ts.store.Stats() }
