package harness

import (
	"context"
	"errors"
	"fmt"

	"netoblivious/alg"
	"netoblivious/internal/core"
	"netoblivious/internal/obs"
)

// AlgRun bundles a registry algorithm's communication trace with the run
// metadata some experiments report alongside it (the alg registry's
// result type).
type AlgRun = alg.Result

// TraceStore memoizes registry-algorithm runs by (algorithm, n, engine).
// The paper's algorithms are static — their communication depends only
// on the input size — so one execution per key serves every experiment
// that needs the trace: E1/E2/E8/E9/E10/E12/E13 all fold the same
// handful of traces, and without the store each recomputed them.
// The store is safe for concurrent use and computations are
// single-flight (core.Store), which also keeps the suite's hit/miss
// counters schedule-independent.
//
// A bounded store (NewBoundedTraceStore) additionally evicts the least
// recently used runs beyond a capacity, which is what lets a long-running
// process — nobld in particular — keep one store for its whole lifetime.
// A spilling store (NewSpillingTraceStore) replaces count eviction with a
// memory budget: runs beyond the budget move to disk and page back in on
// demand instead of being recomputed.
type TraceStore struct {
	store *core.Store[AlgRun]
	spill *spiller // nil unless built by NewSpillingTraceStore
	probe *obs.Probe
}

// SetProbe attaches a probe: every Get records a hit instant or wraps
// its miss computation in a "trace-compute" span, and computed runs
// inherit the probe so their engine supersteps appear in the same
// timeline.  Call before serving traffic; nil detaches.
func (ts *TraceStore) SetProbe(p *obs.Probe) { ts.probe = p }

// NewTraceStore returns an empty unbounded store.
func NewTraceStore() *TraceStore {
	return NewBoundedTraceStore(0)
}

// NewBoundedTraceStore returns an empty store retaining at most capacity
// completed runs under LRU eviction (0 = unbounded).
func NewBoundedTraceStore(capacity int) *TraceStore {
	return &TraceStore{store: core.NewBoundedStore[AlgRun](capacity)}
}

// Get returns the memoized run of the named registry algorithm at size
// n on the given engine, executing it on first use.  ctx bounds that
// execution; because cancellation errors would otherwise be memoized for
// every later caller of the key, a run failing with ctx's error is
// forgotten instead of cached.
func (ts *TraceStore) Get(ctx context.Context, eng core.Engine, name string, n int) (AlgRun, error) {
	return ts.get(ctx, eng, name, n, false)
}

// GetRecorded is Get for message-pair-recorded runs (the form the cache
// simulator consumes).  Recorded and unrecorded runs of the same
// algorithm are distinct store entries: their traces differ in payload,
// and a consumer of a recorded trace must never receive the lighter one.
func (ts *TraceStore) GetRecorded(ctx context.Context, eng core.Engine, name string, n int) (AlgRun, error) {
	return ts.get(ctx, eng, name, n, true)
}

func (ts *TraceStore) get(ctx context.Context, eng core.Engine, name string, n int, record bool) (AlgRun, error) {
	if eng == nil {
		eng = core.DefaultEngine()
	}
	a, ok := TraceAlgorithmByName(name)
	if !ok {
		return AlgRun{}, fmt.Errorf("harness: unknown algorithm %q", name)
	}
	key := core.TraceKey{Algorithm: name, N: n, Engine: eng.Name()}.String()
	if record {
		key += "+rec"
	}
	computed := false
	run, err := ts.store.Get(key, func() (AlgRun, error) {
		computed = true
		if ts.spill != nil {
			// A spilled run is paged back in from its binary file instead
			// of re-executing the algorithm.
			if run, ok, lerr := ts.spillReload(key); lerr != nil {
				return AlgRun{}, lerr
			} else if ok {
				return run, nil
			}
		}
		start := ts.probe.Now()
		r, rerr := a.Run(ctx, alg.Spec{Engine: eng, Record: record, Probe: ts.probe}, n)
		if rerr == nil && ts.probe != nil {
			ts.probe.Span("store", "trace-compute", 0, start, map[string]any{"key": key})
		}
		return r, rerr
	})
	if ts.probe != nil && !computed {
		ts.probe.Instant("store", "trace-hit", 0, map[string]any{"key": key})
	}
	if err == nil && ts.spill != nil {
		if serr := ts.spillTouch(key, run); serr != nil {
			return run, serr
		}
	}
	if IsCancellation(err) {
		// The computation died of a cancelled context: that outcome
		// belongs to whichever caller was cancelled, not to the key, so
		// drop it and let the next live caller recompute.  ForgetIf (not
		// Forget) so that when several waiters observe the same dead
		// computation, a stale one can never evict the fresh entry a
		// live caller has already started.  Genuine algorithm errors are
		// unaffected and stay memoized.
		ts.store.ForgetIf(key, func(_ AlgRun, err error) bool { return IsCancellation(err) })
	}
	return run, err
}

// IsCancellation reports whether err is (or wraps) a context
// cancellation or deadline — the class of errors that describe the
// caller rather than the computation, and therefore must never be
// memoized for a key.
func IsCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Stats returns the cumulative hit/miss/eviction counters.
func (ts *TraceStore) Stats() core.StoreStats { return ts.store.Stats() }

// Store exposes the underlying keyed store, for consumers that report its
// capacity and counters (the nobld metrics endpoint).
func (ts *TraceStore) Store() *core.Store[AlgRun] { return ts.store }

// Len returns the number of memoized runs (completed or in flight).
func (ts *TraceStore) Len() int { return ts.store.Len() }
