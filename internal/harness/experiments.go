package harness

import (
	"math/rand"

	"netoblivious/internal/broadcast"
	"netoblivious/internal/eval"
	"netoblivious/internal/stencil"
	"netoblivious/internal/theory"
)

// seededRng gives every experiment deterministic inputs.
func seededRng() *rand.Rand { return rand.New(rand.NewSource(20070326)) } // IPDPS'07

func randMatrix(rng *rand.Rand, s int) []int64 {
	m := make([]int64, s*s)
	for i := range m {
		m[i] = int64(rng.Intn(100))
	}
	return m
}

func randComplex(rng *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.Float64(), 0)
	}
	return x
}

func randKeys(rng *rand.Rand, n int) []int64 {
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = rng.Int63()
	}
	return keys
}

func randCells(rng *rand.Rand, n int) []int64 {
	in := make([]int64, n)
	for i := range in {
		in[i] = int64(rng.Intn(1 << 20))
	}
	return in
}

func init() {
	register(Experiment{
		ID:       "E1",
		Title:    "matrix multiplication: H = Θ(n/p^{2/3} + σ·log p)",
		PaperRef: "Theorem 4.2, Lemma 4.1",
		Run:      runE1,
	})
	register(Experiment{
		ID:       "E2",
		Title:    "space-efficient MM: H = Θ(n/√p + σ·√p), O(1) memory blow-up",
		PaperRef: "Section 4.1.1",
		Run:      runE2,
	})
	register(Experiment{
		ID:       "E3",
		Title:    "FFT: H = Θ((n/p+σ)·log n/log(n/p)); beats the butterfly baseline",
		PaperRef: "Theorem 4.5, Lemma 4.4",
		Run:      runE3,
	})
	register(Experiment{
		ID:       "E4",
		Title:    "sorting: H = Θ((n/p+σ)·(log n/log(n/p))^{log_{3/2}4})",
		PaperRef: "Theorem 4.8, Lemma 4.7",
		Run:      runE4,
	})
	register(Experiment{
		ID:       "E5",
		Title:    "(n,1)-stencil: H = O(n·4^{√log n})",
		PaperRef: "Theorem 4.11, Corollary 4.12, Lemma 4.10",
		Run:      runE5,
	})
	register(Experiment{
		ID:       "E6",
		Title:    "(n,2)-stencil: H = O((n²/√p)·8^{√log n})",
		PaperRef: "Theorem 4.13, Corollary 4.14",
		Run:      runE6,
	})
	register(Experiment{
		ID:       "E7",
		Title:    "broadcast: σ-aware κ-ary optimal; oblivious GAP grows as Theorem 4.16",
		PaperRef: "Theorem 4.15, Theorem 4.16",
		Run:      runE7,
	})
}

// mmSizes returns the matrix sides for E1/E2.
func (c Config) mmSizes() []int {
	if c.Quick {
		return []int{16}
	}
	return []int{16, 32, 64}
}

func runE1(cfg Config) ([]*Result, error) {
	res := &Result{
		ID: "E1", Title: "network-oblivious 8-way matrix multiplication",
		PaperRef: "Theorem 4.2",
		Columns:  []string{"n", "p", "σ", "H(n,p,σ)", "Θ(n/p^{2/3}+σlog p)", "H/pred", "β vs LB"},
	}
	worst := 0.0
	minBeta := 1.0
	for _, s := range cfg.mmSizes() {
		n := float64(s * s)
		tr, err := cfg.Trace("matmul", s*s)
		if err != nil {
			return nil, err
		}
		for p := 4; p <= s*s; p *= 8 {
			for _, sigma := range []float64{0, 4, 64} {
				h := eval.H(tr, p, sigma)
				pred := theory.PredictedMM(n, p, sigma)
				beta := eval.BetaOptimality(theory.LowerBoundMM(n, p, sigma), h)
				if r := h / pred; r > worst {
					worst = r
				}
				if beta < minBeta {
					minBeta = beta
				}
				res.AddRow(int(n), p, sigma, h, pred, h/pred, beta)
			}
		}
	}
	res.Notes = append(res.Notes,
		"β is measured against the Lemma 4.1 lower bound with unit constants; Θ(1)-optimality = β bounded away from 0")
	res.AddCheck("H tracks Theorem 4.2 within a constant factor", worst <= 10,
		"max H/pred = %.2f (bound 10)", worst)
	res.AddCheck("Θ(1)-optimality: β bounded away from 0", minBeta >= 0.05,
		"min β = %.4f (bound 0.05)", minBeta)
	return []*Result{res}, nil
}

func runE2(cfg Config) ([]*Result, error) {
	res := &Result{
		ID: "E2", Title: "space-efficient matrix multiplication",
		PaperRef: "Section 4.1.1",
		Columns:  []string{"n", "p", "σ", "H(n,p,σ)", "Θ(n/√p+σ√p)", "H/pred", "peak entries (8-way)", "peak entries (space-eff)"},
	}
	worst := 0.0
	spaceWins := true
	for _, s := range cfg.mmSizes() {
		n := float64(s * s)
		r8, err := cfg.AlgRun("matmul", s*s)
		if err != nil {
			return nil, err
		}
		rsp, err := cfg.AlgRun("matmul-space", s*s)
		if err != nil {
			return nil, err
		}
		if rsp.PeakEntries >= r8.PeakEntries {
			spaceWins = false
		}
		for p := 4; p <= s*s; p *= 8 {
			for _, sigma := range []float64{0, 16} {
				h := eval.H(rsp.Trace, p, sigma)
				pred := theory.PredictedMMSpace(n, p, sigma)
				if r := h / pred; r > worst {
					worst = r
				}
				res.AddRow(int(n), p, sigma, h, pred, h/pred, r8.PeakEntries, rsp.PeakEntries)
			}
		}
	}
	res.Notes = append(res.Notes,
		"peak entries: 8-way holds Θ(n^{1/3}) matrix entries per VP at the recursion leaves; the space-efficient variant holds O(log n) (2 per recursion frame)",
		"trade-off (Irony–Toledo–Tiskin): constant memory costs Θ(p^{1/6}) more communication")
	res.AddCheck("H tracks the Section 4.1.1 bound within a constant factor", worst <= 12,
		"max H/pred = %.2f (bound 12)", worst)
	res.AddCheck("constant-memory variant holds fewer entries than 8-way", spaceWins,
		"peak entries compared at every size")
	return []*Result{res}, nil
}

func runE3(cfg Config) ([]*Result, error) {
	sizes := []int{1 << 8, 1 << 10, 1 << 12}
	if cfg.Quick {
		sizes = []int{1 << 8}
	}
	res := &Result{
		ID: "E3", Title: "recursive FFT vs iterative butterfly baseline",
		PaperRef: "Theorem 4.5",
		Columns:  []string{"n", "p", "σ", "H recursive", "Θ((n/p+σ)·logn/log(n/p))", "H/pred", "H iterative", "iter/rec"},
	}
	worst, best := 0.0, 1e18
	for _, n := range sizes {
		rec, err := cfg.Trace("fft", n)
		if err != nil {
			return nil, err
		}
		it, err := cfg.Trace("fft-iterative", n)
		if err != nil {
			return nil, err
		}
		for p := 4; p <= n; p *= 16 {
			for _, sigma := range []float64{0, float64(n) / float64(p)} {
				hr := eval.H(rec, p, sigma)
				hi := eval.H(it, p, sigma)
				pred := theory.PredictedFFT(float64(n), p, sigma)
				r := hr / pred
				if r > worst {
					worst = r
				}
				if r < best {
					best = r
				}
				res.AddRow(n, p, sigma, hr, pred, hr/pred, hi, hi/hr)
			}
		}
	}
	res.Notes = append(res.Notes,
		"iter/rec > 1 where log p ≫ log n/log(n/p): the recursive decomposition wins exactly where Theorem 4.5 predicts",
		"the recursive variant uses three transposes per level (natural-order I/O; see DESIGN.md substitutions), so constants are ~3x the paper's single-transpose formulation")
	res.AddCheck("H tracks Theorem 4.5 within a constant factor", worst <= 8 && best >= 1,
		"H/pred in [%.2f, %.2f] (bounds [1, 8])", best, worst)
	return []*Result{res}, nil
}

func runE4(cfg Config) ([]*Result, error) {
	sizes := []int{1 << 8, 1 << 10, 1 << 12}
	if cfg.Quick {
		sizes = []int{1 << 8}
	}
	res := &Result{
		ID: "E4", Title: "recursive Columnsort",
		PaperRef: "Theorem 4.8",
		Columns:  []string{"n", "p", "σ", "H(n,p,σ)", "Θ((n/p+σ)·(logn/log(n/p))^3.419)", "H/pred", "β vs LB"},
	}
	worst := 0.0
	minBeta := 1.0
	for _, n := range sizes {
		tr, err := cfg.Trace("sort", n)
		if err != nil {
			return nil, err
		}
		for p := 4; p <= n; p *= 16 {
			for _, sigma := range []float64{0, 8} {
				h := eval.H(tr, p, sigma)
				pred := theory.PredictedSort(float64(n), p, sigma)
				beta := eval.BetaOptimality(theory.LowerBoundSort(float64(n), p, sigma), h)
				if r := h / pred; r > worst {
					worst = r
				}
				if beta < minBeta {
					minBeta = beta
				}
				res.AddRow(n, p, sigma, h, pred, h/pred, beta)
			}
		}
	}
	res.Notes = append(res.Notes,
		"Theorem 4.8 guarantees Θ(1)-optimality only for p = O(n^{1-δ}): β degrades as p → n, matching the (log n/log(n/p))^{log_{3/2}4} upper-bound growth")
	res.AddCheck("H tracks Theorem 4.8 within a constant factor", worst <= 25,
		"max H/pred = %.2f (bound 25)", worst)
	res.AddCheck("β stays positive at every grid point", minBeta > 0,
		"min β = %.4f", minBeta)
	return []*Result{res}, nil
}

func runE5(cfg Config) ([]*Result, error) {
	sizes := []int{32, 64, 128}
	if cfg.Quick {
		sizes = []int{32}
	}
	res := &Result{
		ID: "E5", Title: "(n,1)-stencil via recursive diamond decomposition",
		PaperRef: "Theorem 4.11",
		Columns:  []string{"n", "k", "p", "H(n,p,0)", "O(n·4^{√log n})", "H/pred", "LB Ω(n)", "β"},
	}
	worst := 0.0
	for _, n := range sizes {
		tr, err := cfg.Trace("stencil1", n)
		if err != nil {
			return nil, err
		}
		for p := 4; p <= n; p *= 4 {
			h := eval.H(tr, p, 0)
			pred := theory.PredictedStencil1(float64(n), p, 0)
			lb := theory.LowerBoundStencil(float64(n), 1, p, 0)
			if r := h / pred; r > worst {
				worst = r
			}
			res.AddRow(n, stencil.K(n), p, h, pred, h/pred, lb, eval.BetaOptimality(lb, h))
		}
	}
	res.Notes = append(res.Notes,
		"β ≈ Θ(1/4^{√log n}): the paper's stencil algorithms are efficient but not Θ(1)-optimal (an open problem, §4.4.1)")
	res.AddCheck("H stays below the Theorem 4.11 upper bound", worst <= 1,
		"max H/pred = %.4f (the bound is an O(·): ratio must not exceed 1)", worst)
	return []*Result{res}, nil
}

func runE6(cfg Config) ([]*Result, error) {
	sizes := []int{8, 16}
	if cfg.Quick {
		sizes = []int{8}
	}
	res := &Result{
		ID: "E6", Title: "(n,2)-stencil via octahedral decomposition",
		PaperRef: "Theorem 4.13",
		Columns:  []string{"n", "v=n²", "p", "H(n,p,0)", "O((n²/√p)·8^{√log n})", "H/pred", "LB Ω(n²/√p)", "β"},
	}
	worst := 0.0
	for _, n := range sizes {
		tr, err := cfg.Trace("stencil2", n)
		if err != nil {
			return nil, err
		}
		for p := 4; p <= n*n; p *= 4 {
			h := eval.H(tr, p, 0)
			pred := theory.PredictedStencil2(float64(n), p, 0)
			lb := theory.LowerBoundStencil(float64(n), 2, p, 0)
			if r := h / pred; r > worst {
				worst = r
			}
			res.AddRow(n, n*n, p, h, pred, h/pred, lb, eval.BetaOptimality(lb, h))
		}
	}
	res.Notes = append(res.Notes,
		"decomposition uses 3k-2 phases of ≤k² independent pieces (paper: 4k-3; both Θ(k), see DESIGN.md substitutions)")
	res.AddCheck("H tracks the Theorem 4.13 upper bound within a small constant", worst <= 2,
		"max H/pred = %.2f (bound 2: the boundary-overlap constant of the octahedral tiling)", worst)
	return []*Result{res}, nil
}

func runE7(cfg Config) ([]*Result, error) {
	p := 1 << 10
	if cfg.Quick {
		p = 1 << 8
	}
	res := &Result{
		ID: "E7", Title: "broadcast: aware vs oblivious across σ",
		PaperRef: "Theorems 4.15–4.16",
		Columns:  []string{"p", "σ", "κ(σ)", "H aware", "LB", "aware/LB", "H oblivious(tree)", "tree gap", "Thm4.16 curve [0,σ]"},
	}
	tree, err := cfg.Trace("broadcast-tree", p)
	if err != nil {
		return nil, err
	}
	worstAware := 0.0
	gapGrows := true
	prevGap := 0.0
	for _, sigma := range []float64{0, 2, 8, 32, 128, 512, 2048} {
		aw, err := broadcast.Aware(p, sigma, 1, broadcast.Options{Engine: cfg.engine()})
		if err != nil {
			return nil, err
		}
		hA := eval.H(aw.Trace, p, sigma)
		hT := eval.H(tree, p, sigma)
		lb := theory.LowerBoundBroadcast(p, sigma)
		gap := hT / lb
		if hA/lb > worstAware {
			worstAware = hA / lb
		}
		if gap < prevGap {
			gapGrows = false
		}
		prevGap = gap
		res.AddRow(p, sigma, aw.Kappa, hA, lb, hA/lb, hT, gap, theory.GapLowerBound(0, sigma))
	}
	res.Notes = append(res.Notes,
		"the σ-aware κ-ary tree stays within a constant of the lower bound at every σ; the oblivious binary tree's gap grows ~log σ, as Theorem 4.16 proves is unavoidable for any network-oblivious algorithm")
	res.AddCheck("σ-aware broadcast stays within a constant of the LB", worstAware <= 3,
		"max aware/LB = %.2f (bound 3)", worstAware)
	res.AddCheck("oblivious tree gap grows with σ (Theorem 4.16)", gapGrows,
		"gap nondecreasing across the σ ladder, reaching %.2f", prevGap)
	return []*Result{res}, nil
}
