package harness

import (
	"fmt"

	"netoblivious/internal/dbsp"
)

// PresetsResult renders the D-BSP preset parameter vectors at p as one
// Result grid — the per-level (g_i, ℓ_i) rows of every built-in network —
// with one Theorem 3.4 admissibility check per network.  It is the single
// source of this table, shared by the nobld "machines" analysis and
// `dbspinfo -json`.
func PresetsResult(p int) *Result {
	res := &Result{
		ID:       "dbsp-presets",
		Title:    fmt.Sprintf("D-BSP preset parameter vectors at p=%d", p),
		PaperRef: "§2, Eq. 2; Euro-Par 1999 presets",
		Columns:  []string{"network", "level", "cluster", "g_i", "l_i", "l_i/g_i"},
	}
	for _, pr := range dbsp.Presets(p) {
		for i := range pr.G {
			res.AddRow(pr.Name, i, p>>uint(i), pr.G[i], pr.L[i], pr.L[i]/pr.G[i])
		}
		err := pr.Admissible()
		detail := "g_i and l_i/g_i nonincreasing"
		if err != nil {
			detail = err.Error()
		}
		res.AddCheck("admissible for Theorem 3.4: "+pr.Name, err == nil, "%s", detail)
	}
	return res
}
