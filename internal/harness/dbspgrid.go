package harness

import (
	"fmt"

	"netoblivious/internal/dbsp"
	"netoblivious/internal/network"
)

// DBSPCounterpart returns the D-BSP preset parameter vectors modeling a
// p-processor instance of the named network family — the pairing that
// experiment E14 and the nobld "network" analysis compare measured
// makespans against.  It is the single source of the topology ↔ preset
// correspondence (Bilardi–Pietracaprina–Pucci 1999): the simulated
// network on the left, the asymptotic (g_i, ℓ_i) vectors on the right.
func DBSPCounterpart(family string, p int) (dbsp.Params, error) {
	if p < 2 || p&(p-1) != 0 {
		return dbsp.Params{}, fmt.Errorf("harness: counterpart needs a power of two >= 2, got p=%d", p)
	}
	switch family {
	case network.FamilyRing:
		return dbsp.Mesh(1, p), nil
	case network.FamilyTorus2D:
		return dbsp.Mesh(2, p), nil
	case network.FamilyTorus3D:
		return dbsp.Mesh(3, p), nil
	case network.FamilyHypercube:
		return dbsp.Hypercube(p), nil
	case network.FamilyFatTree:
		return dbsp.FatTree(p), nil
	}
	return dbsp.Params{}, fmt.Errorf("harness: no D-BSP counterpart for topology %q (have %v)",
		family, network.TopologyNames())
}

// PresetsResult renders the D-BSP preset parameter vectors at p as one
// Result grid — the per-level (g_i, ℓ_i) rows of every built-in network —
// with one Theorem 3.4 admissibility check per network.  It is the single
// source of this table, shared by the nobld "machines" analysis and
// `dbspinfo -json`.
func PresetsResult(p int) *Result {
	res := &Result{
		ID:       "dbsp-presets",
		Title:    fmt.Sprintf("D-BSP preset parameter vectors at p=%d", p),
		PaperRef: "§2, Eq. 2; Euro-Par 1999 presets",
		Columns:  []string{"network", "level", "cluster", "g_i", "l_i", "l_i/g_i"},
	}
	for _, pr := range dbsp.Presets(p) {
		for i := range pr.G {
			res.AddRow(pr.Name, i, p>>uint(i), pr.G[i], pr.L[i], pr.L[i]/pr.G[i])
		}
		err := pr.Admissible()
		detail := "g_i and l_i/g_i nonincreasing"
		if err != nil {
			detail = err.Error()
		}
		res.AddCheck("admissible for Theorem 3.4: "+pr.Name, err == nil, "%s", detail)
	}
	return res
}
