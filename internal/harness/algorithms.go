package harness

import (
	"context"
	"fmt"
	"sort"

	"netoblivious/internal/broadcast"
	"netoblivious/internal/colsort"
	"netoblivious/internal/core"
	"netoblivious/internal/fft"
	"netoblivious/internal/matmul"
	"netoblivious/internal/prefix"
	"netoblivious/internal/stencil"
)

// TraceAlgorithm runs a named algorithm at a given input size and returns
// its communication trace — the registry behind `nobl trace` and the keyed
// TraceStore.  Every entry derives its input from its own fixed-seed RNG,
// so a run is a pure function of (engine, n): the property that makes the
// store's (algorithm, n, engine) keying sound.
type TraceAlgorithm struct {
	Name string
	// Doc describes the algorithm and how n is interpreted.
	Doc string
	// Run executes the algorithm on a deterministic input of size n,
	// on the given execution engine (nil selects the default).  The
	// engine is passed explicitly — never through the process-wide
	// default — so concurrent runs with different engines cannot race.
	// ctx cancels the run at superstep granularity (nil disables);
	// record enables message-pair recording in the trace, which the
	// cache-simulation analyses require and everything else skips.
	Run func(ctx context.Context, eng core.Engine, n int, record bool) (AlgRun, error)
}

// TraceAlgorithms returns the runnable algorithm registry, sorted by name.
func TraceAlgorithms() []TraceAlgorithm {
	algos := []TraceAlgorithm{
		{
			Name: "matmul",
			Doc:  "8-way recursive n-MM (§4.1); n = matrix entries (side² = n, power of 4)",
			Run: func(ctx context.Context, eng core.Engine, n int, record bool) (AlgRun, error) {
				s, err := sideOf(n)
				if err != nil {
					return AlgRun{}, err
				}
				rng := seededRng()
				r, err := matmul.Multiply(s, randMatrix(rng, s), randMatrix(rng, s), matmul.Options{Wise: true, Engine: eng, Record: record, Ctx: ctx})
				if err != nil {
					return AlgRun{}, err
				}
				return AlgRun{Trace: r.Trace, PeakEntries: r.PeakEntries}, nil
			},
		},
		{
			Name: "matmul-space",
			Doc:  "space-efficient n-MM (§4.1.1); n = matrix entries",
			Run: func(ctx context.Context, eng core.Engine, n int, record bool) (AlgRun, error) {
				s, err := sideOf(n)
				if err != nil {
					return AlgRun{}, err
				}
				rng := seededRng()
				r, err := matmul.MultiplySpaceEfficient(s, randMatrix(rng, s), randMatrix(rng, s), matmul.Options{Wise: true, Engine: eng, Record: record, Ctx: ctx})
				if err != nil {
					return AlgRun{}, err
				}
				return AlgRun{Trace: r.Trace, PeakEntries: r.PeakEntries}, nil
			},
		},
		{
			Name: "fft",
			Doc:  "recursive n-FFT (§4.2)",
			Run: func(ctx context.Context, eng core.Engine, n int, record bool) (AlgRun, error) {
				r, err := fft.Transform(randComplex(seededRng(), n), fft.Options{Wise: true, Engine: eng, Record: record, Ctx: ctx})
				if err != nil {
					return AlgRun{}, err
				}
				return AlgRun{Trace: r.Trace}, nil
			},
		},
		{
			Name: "fft-iterative",
			Doc:  "butterfly baseline FFT (§4.2 discussion)",
			Run: func(ctx context.Context, eng core.Engine, n int, record bool) (AlgRun, error) {
				r, err := fft.TransformIterative(randComplex(seededRng(), n), fft.Options{Wise: true, Engine: eng, Record: record, Ctx: ctx})
				if err != nil {
					return AlgRun{}, err
				}
				return AlgRun{Trace: r.Trace}, nil
			},
		},
		{
			Name: "sort",
			Doc:  "recursive Columnsort (§4.3)",
			Run: func(ctx context.Context, eng core.Engine, n int, record bool) (AlgRun, error) {
				r, err := colsort.Sort(randKeys(seededRng(), n), colsort.Options{Wise: true, Engine: eng, Record: record, Ctx: ctx})
				if err != nil {
					return AlgRun{}, err
				}
				return AlgRun{Trace: r.Trace}, nil
			},
		},
		{
			Name: "bitonic",
			Doc:  "Batcher's bitonic network (E13 baseline)",
			Run: func(ctx context.Context, eng core.Engine, n int, record bool) (AlgRun, error) {
				r, err := colsort.SortBitonic(randKeys(seededRng(), n), colsort.Options{Wise: true, Engine: eng, Record: record, Ctx: ctx})
				if err != nil {
					return AlgRun{}, err
				}
				return AlgRun{Trace: r.Trace}, nil
			},
		},
		{
			Name: "stencil1",
			Doc:  "(n,1)-stencil diamond recursion (§4.4.1); n = spatial side",
			Run: func(ctx context.Context, eng core.Engine, n int, record bool) (AlgRun, error) {
				r, err := stencil.Run(n, 1, randCells(seededRng(), n), stencil.Options{Wise: true, Engine: eng, Record: record, Ctx: ctx})
				if err != nil {
					return AlgRun{}, err
				}
				return AlgRun{Trace: r.Trace}, nil
			},
		},
		{
			Name: "stencil2",
			Doc:  "(n,2)-stencil octahedral recursion (§4.4.2); n = spatial side, v = n²",
			Run: func(ctx context.Context, eng core.Engine, n int, record bool) (AlgRun, error) {
				r, err := stencil.Run(n, 2, randCells(seededRng(), n*n), stencil.Options{Wise: true, Engine: eng, Record: record, Ctx: ctx})
				if err != nil {
					return AlgRun{}, err
				}
				return AlgRun{Trace: r.Trace}, nil
			},
		},
		{
			Name: "broadcast-tree",
			Doc:  "oblivious binary-tree n-broadcast (§4.5)",
			Run: func(ctx context.Context, eng core.Engine, n int, record bool) (AlgRun, error) {
				r, err := broadcast.Oblivious(n, 1, broadcast.Options{Engine: eng, Record: record, Ctx: ctx})
				if err != nil {
					return AlgRun{}, err
				}
				return AlgRun{Trace: r.Trace}, nil
			},
		},
		{
			Name: "prefix-tree",
			Doc:  "work-efficient prefix sums (§5 substrate)",
			Run: func(ctx context.Context, eng core.Engine, n int, record bool) (AlgRun, error) {
				rng := seededRng()
				xs := make([]int64, n)
				for i := range xs {
					xs[i] = int64(rng.Intn(1000))
				}
				r, err := prefix.ScanTree(xs, prefix.Sum(), prefix.Options{Engine: eng, Record: record, Ctx: ctx})
				if err != nil {
					return AlgRun{}, err
				}
				return AlgRun{Trace: r.Trace}, nil
			},
		},
	}
	sort.Slice(algos, func(i, j int) bool { return algos[i].Name < algos[j].Name })
	return algos
}

// TraceAlgorithmByName looks up a registry entry.
func TraceAlgorithmByName(name string) (TraceAlgorithm, bool) {
	for _, a := range TraceAlgorithms() {
		if a.Name == name {
			return a, true
		}
	}
	return TraceAlgorithm{}, false
}

func sideOf(n int) (int, error) {
	s := 1
	for s*s < n {
		s *= 2
	}
	if s*s != n {
		return 0, fmt.Errorf("harness: n=%d is not the square of a power of two", n)
	}
	return s, nil
}
