package harness

import (
	"fmt"
	"sort"

	"netoblivious/internal/broadcast"
	"netoblivious/internal/colsort"
	"netoblivious/internal/core"
	"netoblivious/internal/fft"
	"netoblivious/internal/matmul"
	"netoblivious/internal/prefix"
	"netoblivious/internal/stencil"
)

// TraceAlgorithm runs a named algorithm at a given input size and returns
// its communication trace — the registry behind `nobl trace`.
type TraceAlgorithm struct {
	Name string
	// Doc describes the algorithm and how n is interpreted.
	Doc string
	// Run executes the algorithm on a deterministic input of size n.
	Run func(n int) (*core.Trace, error)
}

// TraceAlgorithms returns the runnable algorithm registry, sorted by name.
func TraceAlgorithms() []TraceAlgorithm {
	algos := []TraceAlgorithm{
		{
			Name: "matmul",
			Doc:  "8-way recursive n-MM (§4.1); n = matrix entries (side² = n, power of 4)",
			Run: func(n int) (*core.Trace, error) {
				s, err := sideOf(n)
				if err != nil {
					return nil, err
				}
				rng := seededRng()
				r, err := matmul.Multiply(s, randMatrix(rng, s), randMatrix(rng, s), matmul.Options{Wise: true})
				if err != nil {
					return nil, err
				}
				return r.Trace, nil
			},
		},
		{
			Name: "matmul-space",
			Doc:  "space-efficient n-MM (§4.1.1); n = matrix entries",
			Run: func(n int) (*core.Trace, error) {
				s, err := sideOf(n)
				if err != nil {
					return nil, err
				}
				rng := seededRng()
				r, err := matmul.MultiplySpaceEfficient(s, randMatrix(rng, s), randMatrix(rng, s), matmul.Options{Wise: true})
				if err != nil {
					return nil, err
				}
				return r.Trace, nil
			},
		},
		{
			Name: "fft",
			Doc:  "recursive n-FFT (§4.2)",
			Run: func(n int) (*core.Trace, error) {
				rng := seededRng()
				x := make([]complex128, n)
				for i := range x {
					x[i] = complex(rng.Float64(), 0)
				}
				r, err := fft.Transform(x, fft.Options{Wise: true})
				if err != nil {
					return nil, err
				}
				return r.Trace, nil
			},
		},
		{
			Name: "fft-iterative",
			Doc:  "butterfly baseline FFT (§4.2 discussion)",
			Run: func(n int) (*core.Trace, error) {
				rng := seededRng()
				x := make([]complex128, n)
				for i := range x {
					x[i] = complex(rng.Float64(), 0)
				}
				r, err := fft.TransformIterative(x, fft.Options{Wise: true})
				if err != nil {
					return nil, err
				}
				return r.Trace, nil
			},
		},
		{
			Name: "sort",
			Doc:  "recursive Columnsort (§4.3)",
			Run: func(n int) (*core.Trace, error) {
				rng := seededRng()
				keys := make([]int64, n)
				for i := range keys {
					keys[i] = rng.Int63()
				}
				r, err := colsort.Sort(keys, colsort.Options{Wise: true})
				if err != nil {
					return nil, err
				}
				return r.Trace, nil
			},
		},
		{
			Name: "bitonic",
			Doc:  "Batcher's bitonic network (E13 baseline)",
			Run: func(n int) (*core.Trace, error) {
				rng := seededRng()
				keys := make([]int64, n)
				for i := range keys {
					keys[i] = rng.Int63()
				}
				r, err := colsort.SortBitonic(keys, colsort.Options{Wise: true})
				if err != nil {
					return nil, err
				}
				return r.Trace, nil
			},
		},
		{
			Name: "stencil1",
			Doc:  "(n,1)-stencil diamond recursion (§4.4.1); n = spatial side",
			Run: func(n int) (*core.Trace, error) {
				rng := seededRng()
				in := make([]int64, n)
				for i := range in {
					in[i] = int64(rng.Intn(1 << 20))
				}
				r, err := stencil.Run(n, 1, in, stencil.Options{Wise: true})
				if err != nil {
					return nil, err
				}
				return r.Trace, nil
			},
		},
		{
			Name: "stencil2",
			Doc:  "(n,2)-stencil octahedral recursion (§4.4.2); n = spatial side, v = n²",
			Run: func(n int) (*core.Trace, error) {
				rng := seededRng()
				in := make([]int64, n*n)
				for i := range in {
					in[i] = int64(rng.Intn(1 << 20))
				}
				r, err := stencil.Run(n, 2, in, stencil.Options{Wise: true})
				if err != nil {
					return nil, err
				}
				return r.Trace, nil
			},
		},
		{
			Name: "broadcast-tree",
			Doc:  "oblivious binary-tree n-broadcast (§4.5)",
			Run: func(n int) (*core.Trace, error) {
				r, err := broadcast.Oblivious(n, 1, broadcast.Options{})
				if err != nil {
					return nil, err
				}
				return r.Trace, nil
			},
		},
		{
			Name: "prefix-tree",
			Doc:  "work-efficient prefix sums (§5 substrate)",
			Run: func(n int) (*core.Trace, error) {
				rng := seededRng()
				xs := make([]int64, n)
				for i := range xs {
					xs[i] = int64(rng.Intn(1000))
				}
				r, err := prefix.ScanTree(xs, prefix.Sum(), prefix.Options{})
				if err != nil {
					return nil, err
				}
				return r.Trace, nil
			},
		},
	}
	sort.Slice(algos, func(i, j int) bool { return algos[i].Name < algos[j].Name })
	return algos
}

// TraceAlgorithmByName looks up a registry entry.
func TraceAlgorithmByName(name string) (TraceAlgorithm, bool) {
	for _, a := range TraceAlgorithms() {
		if a.Name == name {
			return a, true
		}
	}
	return TraceAlgorithm{}, false
}

func sideOf(n int) (int, error) {
	s := 1
	for s*s < n {
		s *= 2
	}
	if s*s != n {
		return 0, fmt.Errorf("harness: n=%d is not the square of a power of two", n)
	}
	return s, nil
}
