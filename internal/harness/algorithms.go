package harness

import (
	"netoblivious/alg"

	// The paper's built-in algorithms self-register into the open alg
	// registry from their own packages; the blank imports guarantee the
	// full set is present for every harness consumer even if no
	// experiment file links a package in directly.
	_ "netoblivious/internal/broadcast"
	_ "netoblivious/internal/colsort"
	_ "netoblivious/internal/fft"
	_ "netoblivious/internal/matmul"
	_ "netoblivious/internal/prefix"
	_ "netoblivious/internal/stencil"
)

// TraceAlgorithm is a runnable algorithm descriptor — the open alg
// registry's type.  Every entry derives its input from its own fixed
// seed, so a run is a pure function of (engine, n): the property that
// makes the trace store's (algorithm, n, engine) keying sound.
type TraceAlgorithm = alg.Algorithm

// TraceAlgorithms returns the runnable algorithm registry sorted by name
// — built-ins plus anything the process registered through alg.Register.
// The slice is a shared read-only snapshot; it is not rebuilt per call.
func TraceAlgorithms() []TraceAlgorithm { return alg.All() }

// TraceAlgorithmByName looks up a registry entry (map-backed; O(1)).
func TraceAlgorithmByName(name string) (TraceAlgorithm, bool) { return alg.ByName(name) }
