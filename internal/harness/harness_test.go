package harness

import (
	"strings"
	"testing"
)

// TestRegistryComplete: every experiment of the DESIGN.md index is
// registered.
func TestRegistryComplete(t *testing.T) {
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "F1"}
	got := map[string]bool{}
	for _, e := range Experiments() {
		got[e.ID] = true
		if e.Title == "" || e.PaperRef == "" || e.Run == nil {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
	for _, id := range want {
		if !got[id] {
			t.Errorf("experiment %s missing from registry", id)
		}
	}
	if _, ok := ByID("e3"); !ok {
		t.Error("ByID should be case-insensitive")
	}
	if _, ok := ByID("E99"); ok {
		t.Error("ByID should reject unknown ids")
	}
}

// TestAllExperimentsRunQuick executes the whole suite in quick mode: every
// experiment must produce at least one non-empty table.
func TestAllExperimentsRunQuick(t *testing.T) {
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables, err := e.Run(Config{Quick: true})
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			for _, tbl := range tables {
				if len(tbl.Rows) == 0 {
					t.Errorf("%s: empty table %q", e.ID, tbl.Title)
				}
				if len(tbl.Columns) == 0 {
					t.Errorf("%s: no columns", e.ID)
				}
				for _, row := range tbl.Rows {
					if len(row) != len(tbl.Columns) {
						t.Errorf("%s: row width %d != %d columns", e.ID, len(row), len(tbl.Columns))
					}
				}
				// Both renderings must not panic and must mention the ID.
				if !strings.Contains(tbl.Text(), tbl.ID) || !strings.Contains(tbl.Markdown(), tbl.ID) {
					t.Errorf("%s: renderings lack the experiment id", e.ID)
				}
			}
		})
	}
}

// TestTableFormatting covers the cell formatter.
func TestTableFormatting(t *testing.T) {
	tb := &Table{ID: "T", Title: "x", PaperRef: "y", Columns: []string{"a", "b", "c", "d"}}
	tb.AddRow(1, "s", 3.14159, 1234567.0)
	if tb.Rows[0][0] != "1" || tb.Rows[0][1] != "s" {
		t.Errorf("bad cells: %v", tb.Rows[0])
	}
	if tb.Rows[0][2] != "3.14" {
		t.Errorf("float cell = %q, want 3.14", tb.Rows[0][2])
	}
	if !strings.Contains(tb.Rows[0][3], "e+06") && tb.Rows[0][3] != "1.23e+06" {
		t.Errorf("large float cell = %q", tb.Rows[0][3])
	}
	txt := tb.Text()
	if !strings.Contains(txt, "a") || !strings.Contains(txt, "---") {
		t.Errorf("text rendering broken:\n%s", txt)
	}
}
