package harness

import (
	"strings"
	"testing"
)

// TestRegistryComplete: every experiment of the DESIGN.md index is
// registered.
func TestRegistryComplete(t *testing.T) {
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "F1"}
	got := map[string]bool{}
	for _, e := range Experiments() {
		got[e.ID] = true
		if e.Title == "" || e.PaperRef == "" || e.Run == nil {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
	for _, id := range want {
		if !got[id] {
			t.Errorf("experiment %s missing from registry", id)
		}
	}
	if _, ok := ByID("e3"); !ok {
		t.Error("ByID should be case-insensitive")
	}
	if _, ok := ByID("E99"); ok {
		t.Error("ByID should reject unknown ids")
	}
}

// TestAllExperimentsRunQuick executes the whole suite in quick mode: every
// experiment must produce at least one non-empty, well-formed result set,
// and every check it declares must pass — the checks are the theorems'
// measurable claims, so a failure is a regression in either the
// algorithms or the metrics.
func TestAllExperimentsRunQuick(t *testing.T) {
	cfg := Config{Quick: true, Store: NewTraceStore()}
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			results, err := e.Run(cfg)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(results) == 0 {
				t.Fatalf("%s produced no results", e.ID)
			}
			for _, res := range results {
				if len(res.Rows) == 0 {
					t.Errorf("%s: empty result %q", e.ID, res.Title)
				}
				if len(res.Columns) == 0 {
					t.Errorf("%s: no columns", e.ID)
				}
				for _, row := range res.Rows {
					if len(row) != len(res.Columns) {
						t.Errorf("%s: row width %d != %d columns", e.ID, len(row), len(res.Columns))
					}
				}
				if len(res.Checks) == 0 {
					t.Errorf("%s: result %q declares no checks", e.ID, res.Title)
				}
				for _, c := range res.Checks {
					if !c.Pass {
						t.Errorf("%s: check failed: %s — %s", e.ID, c.Name, c.Detail)
					}
				}
				// Both renderings must not panic and must mention the ID.
				if !strings.Contains(res.Text(), res.ID) || !strings.Contains(res.Markdown(), res.ID) {
					t.Errorf("%s: renderings lack the experiment id", e.ID)
				}
			}
		})
	}
}

// TestRunSuiteChecksAndOrder runs the suite through the pool and verifies
// record ordering, pass/fail accounting and error propagation for an
// unknown id.
func TestRunSuiteChecksAndOrder(t *testing.T) {
	recs, err := RunSuite(Config{Quick: true, Parallel: 4}, []string{"E10", "E1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].ID != "E10" || recs[1].ID != "E1" {
		t.Fatalf("records out of selection order: %+v", recs)
	}
	for _, rec := range recs {
		if !rec.Passed() {
			t.Errorf("%s did not pass: err=%q", rec.ID, rec.Err)
		}
		passed, failed := rec.CheckCounts()
		if passed == 0 || failed != 0 {
			t.Errorf("%s check counts: passed=%d failed=%d", rec.ID, passed, failed)
		}
		if rec.Elapsed <= 0 {
			t.Errorf("%s did not record elapsed time", rec.ID)
		}
	}
	if _, err := RunSuite(Config{Quick: true}, []string{"E99"}); err == nil {
		t.Error("RunSuite should reject unknown experiment ids")
	}
}
