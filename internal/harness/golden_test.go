package harness

import (
	"bytes"
	"testing"
)

// renderSuite runs the full quick suite at the given parallelism and
// renders it through every sink, returning the concatenated bytes per
// format.
func renderSuite(t *testing.T, parallel int) map[Format][]byte {
	t.Helper()
	cfg := Config{Quick: true, Parallel: parallel, Store: NewTraceStore()}
	recs, err := RunSuite(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := map[Format][]byte{}
	for _, f := range Formats() {
		var buf bytes.Buffer
		s, err := NewSink(f, &buf, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range recs {
			if err := s.Write(rec); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		out[f] = buf.Bytes()
	}
	return out
}

// TestGoldenParallelDeterminism is the pipeline's determinism guarantee:
// a sequential run and a maximally parallel run of the full quick suite
// must render byte-identically in every format.  Experiments draw inputs
// from private fixed-seed RNGs and share traces through the single-flight
// store, so any divergence is a scheduling leak — a real bug.
func TestGoldenParallelDeterminism(t *testing.T) {
	seq := renderSuite(t, 1)
	par := renderSuite(t, 8)
	for _, f := range Formats() {
		if !bytes.Equal(seq[f], par[f]) {
			t.Errorf("%s output differs between sequential and parallel runs", f)
		}
	}
	// The text golden must carry real content: all 17 experiments.
	for _, id := range []string{"E1", "E16", "F1"} {
		if !bytes.Contains(seq[FormatText], []byte(id+" — ")) {
			t.Errorf("text output missing experiment %s", id)
		}
	}
	// And the JSON document must survive the schema-checked decode.
	if _, err := DecodeDocument(bytes.NewReader(seq[FormatJSON])); err != nil {
		t.Errorf("suite JSON document undecodable: %v", err)
	}
}
