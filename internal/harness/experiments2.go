package harness

import (
	"fmt"
	"strings"

	"netoblivious/alg"
	"netoblivious/internal/colsort"
	"netoblivious/internal/core"
	"netoblivious/internal/dbsp"
	"netoblivious/internal/eval"
	"netoblivious/internal/fft"
	"netoblivious/internal/matmul"
	"netoblivious/internal/randalg"
	"netoblivious/internal/stencil"
	"netoblivious/internal/theory"
)

func init() {
	register(Experiment{
		ID:       "E8",
		Title:    "optimality transfer to D-BSP machines (Theorem 3.4)",
		PaperRef: "Theorem 3.4, Corollaries 4.3/4.6/4.9",
		Run:      runE8,
	})
	register(Experiment{
		ID:       "E9",
		Title:    "wiseness α (Definition 3.2) of every algorithm, with/without dummies",
		PaperRef: "Definition 3.2",
		Run:      runE9,
	})
	register(Experiment{
		ID:       "E10",
		Title:    "folding inequality of Lemma 3.1 on random and real traces",
		PaperRef: "Lemma 3.1",
		Run:      runE10,
	})
	register(Experiment{
		ID:       "E11",
		Title:    "ascend–descend protocol rescues non-wise algorithms (Section 5)",
		PaperRef: "Lemma 5.1, Theorem 5.3",
		Run:      runE11,
	})
	register(Experiment{
		ID:       "E12",
		Title:    "communication time D(n,p,g,ℓ) of every algorithm on every network preset",
		PaperRef: "Equation 2, Corollaries 4.3–4.14",
		Run:      runE12,
	})
	register(Experiment{
		ID:       "F1",
		Title:    "diamond-DAG decomposition (Figure 1)",
		PaperRef: "Figure 1, Section 4.4.1",
		Run:      runF1,
	})
}

// suiteSize returns the standard trace-store size of an algorithm in the
// E8–E12 cross-algorithm suite.
func (c Config) suiteSize(name string) int {
	switch name {
	case "matmul", "matmul-space":
		if c.Quick {
			return 256 // 16×16
		}
		return 1024 // 32×32
	case "stencil1":
		if c.Quick {
			return 32
		}
		return 64
	default: // fft, fft-iterative, sort
		if c.Quick {
			return 1 << 8
		}
		return 1 << 10
	}
}

// suiteTrace pulls one cross-algorithm suite trace from the store.
func (c Config) suiteTrace(name string) (*core.Trace, error) {
	return c.Trace(name, c.suiteSize(name))
}

// lbAt returns the σ=0 message lower bound of an algorithm at fold p.
func lbAt(name string, v, p int) float64 {
	switch {
	case strings.HasPrefix(name, "matmul-space"):
		return theory.LowerBoundMMSpace(float64(v), p, 0)
	case strings.HasPrefix(name, "matmul"):
		return theory.LowerBoundMM(float64(v), p, 0)
	case strings.HasPrefix(name, "fft"):
		return theory.LowerBoundFFT(float64(v), p, 0)
	case name == "sort":
		return theory.LowerBoundSort(float64(v), p, 0)
	case name == "stencil1":
		return theory.LowerBoundStencil(float64(v), 1, p, 0)
	}
	return 0
}

// dbspLowerBound transports the evaluation-model message lower bound to a
// D-BSP machine: the algorithm folded on 2^j processors must exchange
// LB(2^j) messages, each crossing a level-(j−1) cluster boundary and thus
// costing at least g_{j-1}; per level the time is at least LB(2^j)/2^j...
// conservatively we take max_j g_{j-1}·LB(2^j)·2^j/p ... the per-processor
// load at fold 2^j scaled to p processors.  This is the standard D-BSP
// bandwidth argument (Bilardi et al. 2007a) with unit constants.
func dbspLowerBound(name string, v int, pr dbsp.Params) float64 {
	best := 0.0
	for j := 1; j <= pr.LogP(); j++ {
		lb := lbAt(name, v, 1<<uint(j))
		if t := lb * pr.G[j-1] * float64(int64(1)<<uint(j)) / float64(pr.P); t > best {
			best = t
		}
	}
	return best
}

func runE8(cfg Config) ([]*Result, error) {
	p := 64
	if cfg.Quick {
		p = 16
	}
	res := &Result{
		ID: "E8", Title: "communication time vs D-BSP bandwidth lower bound",
		PaperRef: "Theorem 3.4",
		Columns:  []string{"algorithm", "machine", "α(p)", "D(n,p,g,ℓ)", "D lower bound", "D/LB", "transfer β' = αβ/(1+α)"},
	}
	worst := 0.0
	for _, name := range []string{"matmul", "fft", "sort", "stencil1"} {
		tr, err := cfg.suiteTrace(name)
		if err != nil {
			return nil, err
		}
		for _, pr := range dbsp.Presets(p) {
			if err := pr.Admissible(); err != nil {
				return nil, err
			}
			alpha := eval.Wiseness(tr, p)
			d := dbsp.CommTime(tr, pr)
			lb := dbspLowerBound(name, tr.V, pr)
			beta := eval.BetaOptimality(lbAt(name, tr.V, p), eval.H(tr, p, 0))
			if d/lb > worst {
				worst = d / lb
			}
			res.AddRow(name, pr.Name, alpha, d, lb, d/lb, theory.BetaPrime(alpha, beta))
		}
	}
	res.Notes = append(res.Notes,
		"D/LB bounded across machine families = the optimality-transfer promise of Theorem 3.4 observed on mesh/hypercube/fat-tree parameter vectors",
		"β' is the factor Theorem 3.4 guarantees from the measured wiseness α and evaluation-model optimality β")
	res.AddCheck("communication time bounded vs the D-BSP bandwidth LB", worst > 0 && worst <= 200,
		"max D/LB = %.2f (bound 200; the loosest case is the non-Θ(1)-optimal stencil on mesh-1D)", worst)
	return []*Result{res}, nil
}

func runE9(cfg Config) ([]*Result, error) {
	res := &Result{
		ID: "E9", Title: "measured wiseness α(p)",
		PaperRef: "Definition 3.2",
		Columns:  []string{"algorithm", "p", "α with dummies", "α without dummies"},
	}
	// Wise runs come from the shared store; the dummy-free variants are
	// the experiment's own ablation and run directly.
	rng := seededRng()
	s := 16
	n := 1 << 8
	a, b := randMatrix(rng, s), randMatrix(rng, s)
	keys := randKeys(rng, n)
	x := randComplex(rng, n)
	type variant struct {
		name  string
		plain func() (*core.Trace, error)
	}
	variants := []variant{
		{"matmul", func() (*core.Trace, error) {
			r, err := matmul.Multiply(s, a, b, matmul.Options{Wise: false, Engine: cfg.engine()})
			if err != nil {
				return nil, err
			}
			return r.Trace, nil
		}},
		{"fft", func() (*core.Trace, error) {
			r, err := fft.Transform(x, fft.Options{Wise: false, Engine: cfg.engine()})
			if err != nil {
				return nil, err
			}
			return r.Trace, nil
		}},
		{"sort", func() (*core.Trace, error) {
			r, err := colsort.Sort(keys, colsort.Options{Wise: false, Engine: cfg.engine()})
			if err != nil {
				return nil, err
			}
			return r.Trace, nil
		}},
	}
	dummiesWin := true
	for _, vr := range variants {
		wise, err := cfg.Trace(vr.name, n)
		if err != nil {
			return nil, err
		}
		plain, err := vr.plain()
		if err != nil {
			return nil, err
		}
		for _, p := range []int{4, 16, wise.V} {
			aw, ap := eval.Wiseness(wise, p), eval.Wiseness(plain, p)
			if aw < ap {
				dummiesWin = false
			}
			res.AddRow(vr.name, p, aw, ap)
		}
	}
	// The Section 5 counterexample: a single unbalanced pair.
	ub, err := core.RunOpt(1<<8, func(vp *core.VP[int]) {
		if vp.ID() == 0 {
			for k := 0; k < 1<<8; k++ {
				vp.Send(1<<7, k)
			}
		}
		vp.Sync(0)
		vp.Sync(0)
	}, cfg.runOpts(false))
	if err != nil {
		return nil, err
	}
	unbalancedExact := true
	for _, p := range []int{4, 16, 256} {
		alpha := eval.Wiseness(ub, p)
		if alpha != 2/float64(p) {
			unbalancedExact = false
		}
		res.AddRow("unbalanced-pair", p, alpha, alpha)
	}
	res.Notes = append(res.Notes,
		"the paper's dummy-message trick keeps α = Θ(1); the unbalanced pair has α = 2/p, the motivating example of Section 5")
	res.AddCheck("dummy messages never reduce wiseness", dummiesWin,
		"α(wise) ≥ α(plain) at every (algorithm, p)")
	res.AddCheck("unbalanced pair measures α = 2/p exactly", unbalancedExact,
		"the Section 5 counterexample's wiseness is the closed form 2/p")
	return []*Result{res}, nil
}

func runE10(cfg Config) ([]*Result, error) {
	res := &Result{
		ID: "E10", Title: "Lemma 3.1 folding inequality",
		PaperRef: "Lemma 3.1",
		Columns:  []string{"trace", "folds checked", "violations", "max LHS/RHS"},
	}
	totalViol := 0
	worstAll := 0.0
	check := func(name string, tr *core.Trace) {
		checked, viol := 0, 0
		worst := 0.0
		for p := 2; p <= tr.V; p *= 2 {
			fp := tr.F(p)
			for j := 1; j <= core.Log2(p); j++ {
				fj := tr.F(1 << uint(j))
				var lhs, rhs int64
				for i := 0; i < j; i++ {
					lhs += fj[i]
					rhs += fp[i]
				}
				checked++
				scaled := float64(rhs) * float64(p>>uint(j))
				if scaled > 0 {
					if r := float64(lhs) / scaled; r > worst {
						worst = r
					}
					if float64(lhs) > scaled {
						viol++
					}
				}
			}
		}
		totalViol += viol
		if worst > worstAll {
			worstAll = worst
		}
		res.AddRow(name, checked, viol, worst)
	}
	for _, name := range []string{"matmul", "matmul-space", "fft", "fft-iterative", "sort", "stencil1"} {
		tr, err := cfg.suiteTrace(name)
		if err != nil {
			return nil, err
		}
		check(name, tr)
	}
	rng := seededRng()
	for trial := 0; trial < 5; trial++ {
		spec := randalg.Random(rng, 32, 6, 3)
		tr, err := spec.RunSpec(alg.Spec{Engine: cfg.engine(), Ctx: cfg.Context})
		if err != nil {
			return nil, err
		}
		check(fmt.Sprintf("random-%d", trial), tr)
	}
	res.Notes = append(res.Notes,
		"zero violations expected: the lemma holds per-superstep for every static algorithm; max ratio 1 means the bound is tight (achieved by perfectly wise patterns)")
	res.AddCheck("Lemma 3.1 holds on every fold of every trace", totalViol == 0,
		"%d violations across real and random traces", totalViol)
	res.AddCheck("the folding bound is never exceeded (ratio ≤ 1)", worstAll <= 1,
		"max LHS/RHS = %.4f", worstAll)
	return []*Result{res}, nil
}

func runE11(cfg Config) ([]*Result, error) {
	v := 1 << 6
	msgs := 1 << 12
	if cfg.Quick {
		v, msgs = 1<<5, 1<<10
	}
	tr, err := core.RunOpt(v, func(vp *core.VP[int]) {
		if vp.ID() == 0 {
			for k := 0; k < msgs; k++ {
				vp.Send(v/2, k)
			}
		}
		vp.Sync(0)
		vp.Sync(0)
	}, cfg.runOpts(true))
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID: "E11", Title: "ascend–descend execution of the unbalanced-pair workload",
		PaperRef: "Section 5, Lemma 5.1, Theorem 5.3",
		Columns:  []string{"machine", "α(p)", "γ(p)", "D standard", "D ascend–descend", "speedup"},
	}
	p := v
	allFaster := true
	for _, pr := range []dbsp.Params{dbsp.Mesh(1, p), dbsp.Mesh(2, p), dbsp.FatTree(p)} {
		std := dbsp.CommTime(tr, pr)
		pc, err := dbsp.AscendDescend(tr, p)
		if err != nil {
			return nil, err
		}
		reb := pc.CommTime(pr)
		if std/reb <= 1 {
			allFaster = false
		}
		pt := eval.Measure(tr, p, 0)
		res.AddRow(pr.Name, pt.Alpha, pt.Gamma, std, reb, std/reb)
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("workload: VP0 sends %d messages to VP%d in one 0-superstep (α = 2/p, γ = Θ(messages/p))", msgs, v/2),
		"the protocol spreads the burst across clusters, paying Lemma 5.1's O(log p) supersteps per level but trading n·g_0 for ~(n/p)·Σ g_k — the Theorem 5.3 mechanism")
	res.AddCheck("ascend–descend beats direct execution on every machine", allFaster,
		"speedup > 1 on mesh-1D, mesh-2D and fat-tree")
	return []*Result{res}, nil
}

func runE12(cfg Config) ([]*Result, error) {
	p := 64
	if cfg.Quick {
		p = 16
	}
	res := &Result{
		ID: "E12", Title: fmt.Sprintf("communication time D(n,p,g,ℓ) at p=%d", p),
		PaperRef: "Equation 2",
		Columns:  []string{"algorithm", "v(n)"},
	}
	presets := dbsp.Presets(p)
	for _, pr := range presets {
		res.Columns = append(res.Columns, pr.Name)
	}
	allPositive := true
	mesh1Worst := true
	for _, name := range []string{"matmul", "matmul-space", "fft", "fft-iterative", "sort", "stencil1"} {
		tr, err := cfg.suiteTrace(name)
		if err != nil {
			return nil, err
		}
		row := []any{name, tr.V}
		rowMax, mesh1 := 0.0, 0.0
		for _, pr := range presets {
			d := dbsp.CommTime(tr, pr)
			if d <= 0 {
				allPositive = false
			}
			if d > rowMax {
				rowMax = d
			}
			if strings.HasPrefix(pr.Name, "mesh-1D") {
				mesh1 = d
			}
			row = append(row, d)
		}
		if mesh1 < rowMax {
			mesh1Worst = false
		}
		res.AddRow(row...)
	}
	res.Notes = append(res.Notes,
		"the same folded trace is costed on every machine: network-obliviousness means the algorithm text never changes, only the (g, ℓ) vectors do")
	res.AddCheck("every (algorithm, machine) pair has positive communication time", allPositive, "D > 0 across the grid")
	res.AddCheck("the bandwidth-poorest network (mesh-1D) is the most expensive", mesh1Worst,
		"mesh-1D attains the row maximum for every algorithm")
	return []*Result{res}, nil
}

func runF1(cfg Config) ([]*Result, error) {
	n := 64
	if cfg.Quick {
		n = 32
	}
	tiles := stencil.Decompose(n)
	k := stencil.K(n)
	byPhase := map[int]int{}
	nodes := 0
	for _, t := range tiles {
		byPhase[t.Phase]++
		nodes += t.Nodes
	}
	res := &Result{
		ID: "F1", Title: fmt.Sprintf("diamond decomposition of the (%d,1)-stencil (k=%d)", n, k),
		PaperRef: "Figure 1",
		Columns:  []string{"phase (stripe)", "diamonds", "≤ k?"},
	}
	withinK := true
	for phase := 0; phase <= 2*k-2; phase++ {
		cnt := byPhase[phase]
		if cnt == 0 {
			continue
		}
		ok := "yes"
		if cnt > k {
			ok = "NO"
			withinK = false
		}
		res.AddRow(phase, cnt, ok)
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("%d non-empty diamonds over %d phases cover all %d DAG nodes (stripes of Figure 1)", len(tiles), len(byPhase), nodes),
		"rendering (phases as glyphs, t grows upward):",
	)
	for _, line := range strings.Split(strings.TrimRight(stencil.RenderDecomposition(min(n, 32)), "\n"), "\n") {
		res.Notes = append(res.Notes, line)
	}
	res.AddCheck("every stripe holds at most k diamonds", withinK,
		"phase-parallelism bound of the Figure 1 decomposition (k=%d)", k)
	res.AddCheck("the decomposition covers the full DAG", nodes == n*n,
		"%d nodes covered of %d", nodes, n*n)
	return []*Result{res}, nil
}
