package harness

import (
	"math"
	"math/rand"

	"netoblivious/internal/eval"
	"netoblivious/internal/network"
	"netoblivious/internal/theory"
)

func init() {
	register(Experiment{
		ID:       "E13",
		Title:    "sorting ablation: Columnsort vs Batcher's bitonic network",
		PaperRef: "Theorem 4.8 (optimality) vs the classic Θ(log²p)-suboptimal baseline",
		Run:      runE13,
	})
	register(Experiment{
		ID:       "E14",
		Title:    "D-BSP validity: packet-level routing vs h·g_i + ℓ_i on real networks",
		PaperRef: "Section 2 (execution model), Bilardi et al. 1999",
		Run:      runE14,
	})
}

func runE13(cfg Config) ([]*Result, error) {
	sizes := []int{1 << 8, 1 << 10, 1 << 12}
	if cfg.Quick {
		sizes = []int{1 << 8, 1 << 10}
	}
	res := &Result{
		ID: "E13", Title: "normalized per-key communication H·p/n at σ=0",
		PaperRef: "Theorem 4.8",
		Columns:  []string{"n", "p", "Columnsort H·p/n", "bitonic H·p/n", "bitonic shape log p(log p+1)", "col/bit"},
	}
	bitonicExact := true
	colTrendDown := true
	prevLargestP := math.Inf(1)
	for _, n := range sizes {
		col, err := cfg.Trace("sort", n)
		if err != nil {
			return nil, err
		}
		bit, err := cfg.Trace("bitonic", n)
		if err != nil {
			return nil, err
		}
		for _, p := range []int{4, 16, 64} {
			hc := eval.H(col, p, 0) * float64(p) / float64(n)
			hb := eval.H(bit, p, 0) * float64(p) / float64(n)
			shape := theory.PredictedBitonic(float64(n), p, 0) * 2 * float64(p) / float64(n)
			if math.Abs(hb-shape) > 1e-9 {
				bitonicExact = false
			}
			if p == 64 {
				if hc/hb > prevLargestP {
					colTrendDown = false
				}
				prevLargestP = hc / hb
			}
			res.AddRow(n, p, hc, hb, shape, hc/hb)
		}
	}
	res.Notes = append(res.Notes,
		"bitonic's normalized cost is exactly log p(log p+1), independent of n — the Θ(log²p) suboptimality factor made visible",
		"Columnsort's normalized cost falls with n toward a constant (Theorem 4.8's Θ(1)-optimality for p = O(n^{1-δ})); at simulable sizes bitonic's small constants still win in absolute terms — the paper's claim is asymptotic and the trend confirms it")
	res.AddCheck("bitonic normalized cost equals its closed form", bitonicExact,
		"H·p/n = log p(log p+1) at every grid point")
	res.AddCheck("Columnsort's relative cost falls with n (asymptotic optimality trend)", colTrendDown,
		"col/bit nonincreasing in n at p=64, ending at %.2f", prevLargestP)
	return []*Result{res}, nil
}

func runE14(cfg Config) ([]*Result, error) {
	rng := rand.New(rand.NewSource(1999)) // Euro-Par 1999
	p := 64
	if cfg.Quick {
		p = 16
	}
	res := &Result{
		ID: "E14", Title: "routing cluster-confined h-relations on real networks",
		PaperRef: "Section 2; Bilardi–Pietracaprina–Pucci 1999; Valiant 1982",
		Columns:  []string{"network", "strategy", "cluster level i", "h", "measured makespan", "D-BSP h·g_i+ℓ_i", "ratio"},
	}
	levels := []int{0, 2, 4}
	if cfg.Quick {
		levels = []int{0, 2}
	}
	worstDirect, worstValiant := 0.0, 0.0
	lost := false
	for _, family := range network.TopologyNames() {
		if !network.TopologyValid(family, p) {
			continue // e.g. torus3d at the non-cubic quick size
		}
		topo, err := network.TopologyByName(family, p)
		if err != nil {
			return nil, err
		}
		pr, err := DBSPCounterpart(family, p)
		if err != nil {
			return nil, err
		}
		sim := network.NewSim(topo)
		for _, level := range levels {
			for _, h := range []int{1, 4, 16} {
				// One relation per grid cell, routed under every
				// strategy: the shortest-path and valiant rows of a cell
				// compare the same traffic, not two random draws.
				msgs := network.ClusterHRelation(rng, p, level, h)
				for _, strategy := range network.RouterNames() {
					router, err := network.RouterByName(strategy, 1999)
					if err != nil {
						return nil, err
					}
					r := sim.RouteWith(router, msgs)
					if r.Delivered != len(msgs) {
						lost = true
					}
					pred := float64(h)*pr.G[level] + pr.L[level]
					ratio := float64(r.Makespan) / pred
					if strategy == network.StrategyValiant {
						if ratio > worstValiant {
							worstValiant = ratio
						}
					} else if ratio > worstDirect {
						worstDirect = ratio
					}
					res.AddRow(topo.Name, strategy, level, h, r.Makespan, pred, ratio)
				}
			}
		}
	}
	res.Notes = append(res.Notes,
		"bounded ratios across topologies, cluster levels and degrees justify using D-BSP as the execution machine model — the premise the paper takes from Bilardi et al. [1999], rebuilt here with a synchronous store-and-forward simulator",
		"ratios below 1 reflect that random h-relations do not saturate the bisection; the D-BSP vectors are worst-case",
		"valiant is two-phase oblivious routing through a random cluster-aligned intermediate: it pays about twice the distance to make congestion pattern-independent, so its ratios sit a constant factor above shortest-path")
	res.AddCheck("every routed relation delivered in full", !lost, "all strategies, all grid points")
	res.AddCheck("shortest-path makespan never exceeds the D-BSP cost by more than 50%", worstDirect <= 1.5,
		"max makespan/(h·g_i+ℓ_i) = %.2f (bound 1.5)", worstDirect)
	res.AddCheck("valiant two-phase makespan stays within 3x of the D-BSP cost", worstValiant <= 3,
		"max makespan/(h·g_i+ℓ_i) = %.2f (bound 3)", worstValiant)
	return []*Result{res}, nil
}
