package cluster

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// DefaultVNodes is the virtual-node count per member when the caller
// does not choose one.  At 64 points per member the expected load
// imbalance across a handful of members stays within a few percent,
// while the ring stays small enough that a lookup is a binary search
// over a few hundred entries.
const DefaultVNodes = 64

// Ring is a seeded consistent-hash ring over a static member list.  It
// is immutable after construction, so lookups need no locking: every
// node of a fleet builds the same Ring from the same (seed, vnodes,
// members) configuration and computes identical owners for every key.
type Ring struct {
	seed    uint64
	vnodes  int
	members []string // sorted, deduplicated
	points  []point  // sorted by (hash, member index)
}

// point is one virtual node: a position on the 64-bit hash circle and
// the index of the member it maps to.
type point struct {
	hash uint64
	idx  int32
}

// New builds a ring with vnodes virtual nodes per member (<= 0 means
// DefaultVNodes).  Members are deduplicated and sorted, so two rings
// built from the same set in any order are identical.  At least one
// non-blank member is required.
func New(seed uint64, vnodes int, members []string) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	seen := make(map[string]bool, len(members))
	uniq := make([]string, 0, len(members))
	for _, m := range members {
		if strings.TrimSpace(m) == "" {
			return nil, fmt.Errorf("cluster: blank ring member in %q", members)
		}
		if !seen[m] {
			seen[m] = true
			uniq = append(uniq, m)
		}
	}
	if len(uniq) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one member")
	}
	sort.Strings(uniq)
	r := &Ring{
		seed:    seed,
		vnodes:  vnodes,
		members: uniq,
		points:  make([]point, 0, len(uniq)*vnodes),
	}
	for i, m := range uniq {
		for v := 0; v < vnodes; v++ {
			h := hashString(seed, m+"#"+strconv.Itoa(v))
			r.points = append(r.points, point{hash: h, idx: int32(i)})
		}
	}
	// Ties (identical hashes) break by member index; members are sorted,
	// so the ordering — and therefore ownership — is independent of the
	// caller's member order.
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].idx < r.points[b].idx
	})
	return r, nil
}

// Owner returns the member owning key: the member of the first virtual
// node at or after the key's position on the hash circle, wrapping at
// the top.  It is a pure function of (ring configuration, key).
//
//nob:hotpath
func (r *Ring) Owner(key string) string {
	h := hashString(r.seed, key)
	// Manual binary search for the first point with hash >= h; sort.Search
	// would force a capturing closure onto this path.
	lo, hi := 0, len(r.points)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.points[mid].hash < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(r.points) {
		lo = 0 // wrap around the top of the circle
	}
	return r.members[r.points[lo].idx]
}

// Contains reports whether addr is a ring member.
func (r *Ring) Contains(addr string) bool {
	i := sort.SearchStrings(r.members, addr)
	return i < len(r.members) && r.members[i] == addr
}

// Members returns the sorted member list (a copy).
func (r *Ring) Members() []string {
	return append([]string(nil), r.members...)
}

// Size returns the number of members.
func (r *Ring) Size() int { return len(r.members) }

// VNodes returns the virtual-node count per member.
func (r *Ring) VNodes() int { return r.vnodes }

// Seed returns the placement seed.
func (r *Ring) Seed() uint64 { return r.seed }

// fnvOffset and fnvPrime are the 64-bit FNV-1a constants.  FNV is used
// (rather than maphash or map iteration order) because placement must
// be identical across processes and releases: the ring is configuration,
// not process state.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// hashString is seeded 64-bit FNV-1a over the seed's bytes followed by
// the key's bytes.
//
//nob:hotpath
func hashString(seed uint64, s string) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < 8; i++ {
		h ^= (seed >> (8 * i)) & 0xff
		h *= fnvPrime
	}
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

// NormalizeAddr canonicalizes a peer address for ring membership and
// self-identification: trims whitespace and trailing slashes and adds
// an http:// scheme when none is present, so "host:7413" in -peers and
// "http://host:7413" in -self name the same node.
func NormalizeAddr(addr string) string {
	addr = strings.TrimSpace(addr)
	addr = strings.TrimRight(addr, "/")
	if addr == "" {
		return ""
	}
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return addr
}

// NormalizeAddrs applies NormalizeAddr to a comma-separated or
// pre-split list, dropping empties.
func NormalizeAddrs(addrs []string) []string {
	out := make([]string, 0, len(addrs))
	for _, a := range addrs {
		for _, part := range strings.Split(a, ",") {
			if n := NormalizeAddr(part); n != "" {
				out = append(out, n)
			}
		}
	}
	return out
}
