package cluster

import (
	"fmt"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("trace/fft/n=%d@block", 1<<uint(i%20))
		if i >= 20 {
			out[i] = fmt.Sprintf("dbsp/sort/n=%d/p=%d,s=16@replay", i, i%64)
		}
	}
	return out
}

// TestRingDeterministicPlacement: rings built from the same member set
// in any order assign every key identically — the property the whole
// fleet relies on to agree on ownership without communicating.
func TestRingDeterministicPlacement(t *testing.T) {
	members := []string{"http://c:1", "http://a:1", "http://b:1"}
	reversed := []string{"http://b:1", "http://a:1", "http://c:1"}
	r1, err := New(7, 64, members)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := New(7, 64, reversed)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys(1000) {
		if o1, o2 := r1.Owner(k), r2.Owner(k); o1 != o2 {
			t.Fatalf("member order changed placement of %q: %s vs %s", k, o1, o2)
		}
	}
	// A rebuilt identical ring is point-for-point equal.
	r3, _ := New(7, 64, members)
	if len(r1.points) != len(r3.points) {
		t.Fatalf("rebuilt ring has %d points, want %d", len(r3.points), len(r1.points))
	}
	for i := range r1.points {
		if r1.points[i] != r3.points[i] {
			t.Fatalf("point %d differs across identical builds", i)
		}
	}
}

// TestRingSeedChangesPlacement: the seed is part of the placement
// function, so distinct seeds shuffle ownership.
func TestRingSeedChangesPlacement(t *testing.T) {
	members := []string{"http://a:1", "http://b:1", "http://c:1"}
	r1, _ := New(1, 64, members)
	r2, _ := New(2, 64, members)
	moved := 0
	for _, k := range keys(1000) {
		if r1.Owner(k) != r2.Owner(k) {
			moved++
		}
	}
	if moved == 0 {
		t.Error("changing the seed moved no key at all")
	}
}

// TestRingBalance: with the default virtual-node count no member of a
// small fleet is starved or hot by an order of magnitude.
func TestRingBalance(t *testing.T) {
	members := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	r, _ := New(1, DefaultVNodes, members)
	counts := map[string]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[r.Owner(fmt.Sprintf("key-%d", i))]++
	}
	for _, m := range members {
		share := float64(counts[m]) / n
		if share < 0.08 || share > 0.50 {
			t.Errorf("member %s owns %.1f%% of keys; want a rough quarter", m, 100*share)
		}
	}
}

// TestRingConsistentGrowth: adding a member only moves keys *to* the
// new member — no key shuffles between surviving members.  This is the
// consistent-hashing property that keeps a fleet upgrade from
// invalidating every node's cache.
func TestRingConsistentGrowth(t *testing.T) {
	old := []string{"http://a:1", "http://b:1", "http://c:1"}
	grown := append(append([]string(nil), old...), "http://d:1")
	r1, _ := New(9, 64, old)
	r2, _ := New(9, 64, grown)
	moved := 0
	for _, k := range keys(2000) {
		o1, o2 := r1.Owner(k), r2.Owner(k)
		if o1 == o2 {
			continue
		}
		moved++
		if o2 != "http://d:1" {
			t.Fatalf("key %q moved %s -> %s, not to the new member", k, o1, o2)
		}
	}
	if moved == 0 {
		t.Error("growing the ring moved no key to the new member")
	}
	if frac := float64(moved) / 2000; frac > 0.5 {
		t.Errorf("growth remapped %.0f%% of keys; expected roughly 1/4", 100*frac)
	}
}

func TestRingSingleMemberOwnsEverything(t *testing.T) {
	r, err := New(0, 0, []string{"http://solo:1"})
	if err != nil {
		t.Fatal(err)
	}
	if r.VNodes() != DefaultVNodes {
		t.Errorf("vnodes defaulted to %d, want %d", r.VNodes(), DefaultVNodes)
	}
	for _, k := range keys(100) {
		if o := r.Owner(k); o != "http://solo:1" {
			t.Fatalf("single-member ring assigned %q to %q", k, o)
		}
	}
}

func TestRingValidation(t *testing.T) {
	if _, err := New(1, 8, nil); err == nil {
		t.Error("empty member list accepted")
	}
	if _, err := New(1, 8, []string{"http://a:1", "  "}); err == nil {
		t.Error("blank member accepted")
	}
	r, err := New(1, 8, []string{"http://a:1", "http://a:1", "http://b:1"})
	if err != nil {
		t.Fatal(err)
	}
	if r.Size() != 2 {
		t.Errorf("duplicates not deduplicated: size %d", r.Size())
	}
	if !r.Contains("http://a:1") || r.Contains("http://z:1") {
		t.Error("Contains misreports membership")
	}
}

func TestNormalizeAddr(t *testing.T) {
	cases := map[string]string{
		"host:7413":           "http://host:7413",
		" http://host:7413/ ": "http://host:7413",
		"https://x.example/":  "https://x.example",
		"":                    "",
		"host:1/":             "http://host:1",
	}
	for in, want := range cases {
		if got := NormalizeAddr(in); got != want {
			t.Errorf("NormalizeAddr(%q) = %q, want %q", in, got, want)
		}
	}
	got := NormalizeAddrs([]string{"a:1,b:2", " c:3 ", ""})
	want := []string{"http://a:1", "http://b:2", "http://c:3"}
	if len(got) != len(want) {
		t.Fatalf("NormalizeAddrs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("NormalizeAddrs[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}
