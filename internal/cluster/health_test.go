package cluster

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestTrackerSweepAndStatus: peers start unhealthy, a sweep flips the
// reachable ones, and a later failure flips back with the error kept.
func TestTrackerSweepAndStatus(t *testing.T) {
	var mu sync.Mutex
	down := map[string]bool{"http://b:1": true}
	check := func(ctx context.Context, addr string) error {
		mu.Lock()
		defer mu.Unlock()
		if down[addr] {
			return errors.New("connection refused")
		}
		return nil
	}
	tr := NewTracker([]string{"http://b:1", "http://a:1"}, time.Second, check)
	for _, st := range tr.Status() {
		if st.Healthy || st.Checks != 0 {
			t.Fatalf("peer %s healthy before any probe", st.Addr)
		}
	}
	tr.sweep(context.Background())
	sts := tr.Status()
	if len(sts) != 2 || sts[0].Addr != "http://a:1" {
		t.Fatalf("status not sorted by addr: %+v", sts)
	}
	if !sts[0].Healthy || sts[0].LastSeen.IsZero() {
		t.Errorf("reachable peer not healthy: %+v", sts[0])
	}
	if sts[1].Healthy || sts[1].LastErr == "" {
		t.Errorf("down peer reported healthy: %+v", sts[1])
	}
	if tr.Healthy() != 1 {
		t.Errorf("Healthy() = %d, want 1", tr.Healthy())
	}
	// Recovery: the peer comes back, the next sweep notices.
	mu.Lock()
	down["http://b:1"] = false
	mu.Unlock()
	tr.sweep(context.Background())
	if tr.Healthy() != 2 {
		t.Errorf("Healthy() after recovery = %d, want 2", tr.Healthy())
	}
	for _, st := range tr.Status() {
		if st.LastErr != "" {
			t.Errorf("recovered peer keeps stale error: %+v", st)
		}
	}
}

// TestTrackerRunStopsOnCancel: Run exits promptly when its context is
// cancelled — the server's shutdown path.
func TestTrackerRunStopsOnCancel(t *testing.T) {
	tr := NewTracker([]string{"http://a:1"}, 10*time.Millisecond,
		func(ctx context.Context, addr string) error { return nil })
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		tr.Run(ctx)
		close(done)
	}()
	// Let at least one periodic sweep land, then cancel.
	deadline := time.Now().Add(5 * time.Second)
	for tr.Status()[0].Checks < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not exit after cancel")
	}
	if tr.Status()[0].Checks < 2 {
		t.Errorf("tracker swept %d times, want >= 2", tr.Status()[0].Checks)
	}
}

// TestTrackerNoPeers: a tracker over no peers returns immediately.
func TestTrackerNoPeers(t *testing.T) {
	tr := NewTracker(nil, time.Millisecond, func(ctx context.Context, addr string) error { return nil })
	done := make(chan struct{})
	go func() {
		tr.Run(context.Background())
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Run with no peers did not return")
	}
	if len(tr.Status()) != 0 {
		t.Error("empty tracker reports peers")
	}
}
