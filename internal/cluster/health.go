package cluster

import (
	"context"
	"sort"
	"sync"
	"time"
)

// DefaultHealthInterval is the peer probe cadence when the caller does
// not choose one.
const DefaultHealthInterval = 2 * time.Second

// CheckFunc probes one peer; a nil error means healthy.  The context
// carries the per-probe timeout.
type CheckFunc func(ctx context.Context, addr string) error

// PeerStatus is the tracked health of one peer at a point in time.
type PeerStatus struct {
	// Addr is the peer's advertised base URL.
	Addr string
	// Healthy reports the outcome of the most recent probe.
	Healthy bool
	// LastSeen is the time of the last successful probe (zero = never).
	LastSeen time.Time
	// LastErr is the most recent probe failure message ("" when the last
	// probe succeeded).
	LastErr string
	// Checks counts completed probes.
	Checks uint64
}

// Tracker periodically probes a static peer list and serves point-in-
// time status snapshots.  Health is advisory — it never changes ring
// membership — so the tracker is deliberately simple: one goroutine,
// one probe fan-out per tick, last-writer-wins state per peer.
type Tracker struct {
	interval time.Duration
	check    CheckFunc
	peers    []string // sorted order fixed at construction

	mu     sync.Mutex
	status map[string]*PeerStatus
}

// NewTracker builds a tracker over peers (probed every interval; <= 0
// means DefaultHealthInterval).  Peers start unhealthy until their
// first successful probe.
func NewTracker(peers []string, interval time.Duration, check CheckFunc) *Tracker {
	if interval <= 0 {
		interval = DefaultHealthInterval
	}
	t := &Tracker{
		interval: interval,
		check:    check,
		peers:    append([]string(nil), peers...),
		status:   make(map[string]*PeerStatus, len(peers)),
	}
	sort.Strings(t.peers)
	for _, p := range t.peers {
		t.status[p] = &PeerStatus{Addr: p}
	}
	return t
}

// Run probes every peer once immediately, then on every tick, until ctx
// is cancelled.  It is the peer-lifecycle loop of a cluster node; the
// server cancels ctx on shutdown.
//
//nob:ctxloop
func (t *Tracker) Run(ctx context.Context) {
	if len(t.peers) == 0 {
		return
	}
	t.sweep(ctx)
	ticker := time.NewTicker(t.interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			t.sweep(ctx)
		}
	}
}

// sweep probes every peer concurrently, bounding each probe to half the
// tick so one hung peer cannot smear its stall into the next sweep.
func (t *Tracker) sweep(ctx context.Context) {
	probeCtx, cancel := context.WithTimeout(ctx, t.interval/2)
	defer cancel()
	var wg sync.WaitGroup
	for _, addr := range t.peers {
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			err := t.check(probeCtx, addr)
			now := time.Now()
			t.mu.Lock()
			st := t.status[addr]
			st.Checks++
			if err != nil {
				st.Healthy = false
				st.LastErr = err.Error()
			} else {
				st.Healthy = true
				st.LastErr = ""
				st.LastSeen = now
			}
			t.mu.Unlock()
		}(addr)
	}
	wg.Wait()
}

// Status returns a snapshot of every peer, sorted by address (the fixed
// construction order).
func (t *Tracker) Status() []PeerStatus {
	out := make([]PeerStatus, 0, len(t.peers))
	t.mu.Lock()
	for _, addr := range t.peers {
		out = append(out, *t.status[addr])
	}
	t.mu.Unlock()
	return out
}

// Healthy counts the peers whose most recent probe succeeded.
func (t *Tracker) Healthy() int {
	n := 0
	t.mu.Lock()
	for _, addr := range t.peers {
		if t.status[addr].Healthy {
			n++
		}
	}
	t.mu.Unlock()
	return n
}
