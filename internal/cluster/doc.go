// Package cluster provides the shared static view that turns a fleet of
// nobld daemons into one horizontally scalable analysis service: a
// seeded consistent-hash ring assigning every cache key an owning node,
// and a peer health tracker reporting fleet liveness.
//
// The design is deliberately oblivious, in the routing sense of the
// source paper and of compact oblivious routing (Räcke & Schmid): the
// path of a request depends only on the request's key and a small,
// static, globally shared view — the ring (seed, virtual-node count,
// member list) — never on the current load, on per-request global
// state, or on a central coordinator.  Every node evaluates the same
// pure function Owner(key) over the same view and therefore agrees on
// placement without communicating; the only shared state is the
// configuration itself.  This is what makes the fleet cheap to front
// with stateless routers and safe to reason about: a key's owner is a
// deterministic function of the deployment, so "computed exactly once
// cluster-wide" reduces to "computed exactly once on the owner", which
// the owner's local single-flight store already guarantees.
//
// The ring uses virtual nodes (default 64 per member) hashed with a
// seeded FNV-1a so that placement is deterministic across processes,
// architectures and Go versions, balanced across members, and stable
// under membership growth: adding a member remaps only the keys that
// move to it (the classic consistent-hashing property, verified by the
// package tests).
//
// Health tracking is advisory: membership is static configuration, so a
// failing peer is reported (GET /v1/cluster) but never removed from the
// ring — re-routing around failures would re-introduce exactly the
// load-dependent, view-divergent behavior obliviousness exists to
// avoid.  Requests owned by a down node fail fast and are retried by
// clients with capped backoff.
package cluster
