package randalg

import (
	"math/rand"
	"testing"

	"netoblivious/internal/core"
)

// TestGeneratedAlgorithmsAreValid: every generated spec runs cleanly
// (cluster confinement holds by construction) and its messages are all
// delivered.
func TestGeneratedAlgorithmsAreValid(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		v := 1 << uint(1+rng.Intn(5))
		spec := Random(rng, v, 4, 3)
		tr, err := spec.Run()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if tr.NumSupersteps() != len(spec.Steps) {
			t.Errorf("trial %d: %d supersteps recorded, want %d", trial, tr.NumSupersteps(), len(spec.Steps))
		}
		var want int64
		for _, st := range spec.Steps {
			want += int64(len(st.Msgs))
		}
		if got := tr.TotalMessages(); got != want {
			t.Errorf("trial %d: %d messages recorded, want %d", trial, got, want)
		}
	}
}

// TestMessagesRespectClusters: the generator never emits a message
// crossing its step's label cluster.
func TestMessagesRespectClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 30; trial++ {
		v := 1 << uint(2+rng.Intn(4))
		spec := Random(rng, v, 5, 3)
		logV := core.Log2(v)
		for si, st := range spec.Steps {
			size := v >> uint(st.Label)
			for _, m := range st.Msgs {
				if m[0]/size != m[1]/size {
					t.Fatalf("trial %d step %d: message %v escapes its %d-cluster", trial, si, m, st.Label)
				}
			}
			if st.Label < 0 || st.Label >= maxInt(1, logV) {
				t.Fatalf("trial %d: bad label %d", trial, st.Label)
			}
		}
	}
}

// TestExpectedDegreeSelfMessages: self messages never count.
func TestExpectedDegreeSelfMessages(t *testing.T) {
	spec := Spec{V: 4, Steps: []StepSpec{{Label: 0, Msgs: [][2]int{{1, 1}, {2, 2}}}}}
	for p := 2; p <= 4; p *= 2 {
		if d := spec.ExpectedDegree(0, p); d != 0 {
			t.Errorf("p=%d: degree %d, want 0", p, d)
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
