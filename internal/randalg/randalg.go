// Package randalg generates random static algorithms for the specification
// model M(v).  It is used by property-based tests to exercise the metric
// machinery (Lemma 3.1, wiseness and fullness bounds, folding consistency)
// on arbitrary communication patterns, not just the hand-written
// algorithms.
package randalg

import (
	"math/rand"

	"netoblivious/alg"
	"netoblivious/internal/core"
)

// StepSpec describes one superstep of a generated algorithm.
type StepSpec struct {
	// Label is the label of the terminating sync.
	Label int
	// Msgs holds (src, dst) pairs; every pair lies within a single
	// Label-cluster by construction.
	Msgs [][2]int
}

// Spec is a complete randomly generated static algorithm.
type Spec struct {
	V     int
	Steps []StepSpec
}

// Random generates a random static algorithm on M(v) with up to maxSteps
// supersteps and up to maxMsgsPerVP messages per VP per superstep.  v must
// be a power of two >= 2.
func Random(rng *rand.Rand, v, maxSteps, maxMsgsPerVP int) Spec {
	logV := core.Log2(v)
	labelBound := logV
	if labelBound < 1 {
		labelBound = 1
	}
	steps := 1 + rng.Intn(maxSteps)
	spec := Spec{V: v}
	for t := 0; t < steps; t++ {
		label := rng.Intn(labelBound)
		size := v >> uint(label)
		st := StepSpec{Label: label}
		for src := 0; src < v; src++ {
			first := src / size * size
			k := rng.Intn(maxMsgsPerVP + 1)
			for m := 0; m < k; m++ {
				dst := first + rng.Intn(size)
				st.Msgs = append(st.Msgs, [2]int{src, dst})
			}
		}
		spec.Steps = append(spec.Steps, st)
	}
	return spec
}

// Program compiles the spec into an executable VP program.  Payloads are
// the source VP index, so delivery can be sanity-checked.
func (s Spec) Program() core.Program[int] {
	// Pre-index messages by source for O(1) lookup inside the program.
	bySrc := make([][][]int, len(s.Steps)) // [step][src] -> dsts
	for t, st := range s.Steps {
		bySrc[t] = make([][]int, s.V)
		for _, m := range st.Msgs {
			bySrc[t][m[0]] = append(bySrc[t][m[0]], m[1])
		}
	}
	return func(vp *core.VP[int]) {
		for t, st := range s.Steps {
			for _, dst := range bySrc[t][vp.ID()] {
				vp.Send(dst, vp.ID())
			}
			vp.Sync(st.Label)
		}
	}
}

// Run executes the generated algorithm and returns its trace.
func (s Spec) Run() (*core.Trace, error) {
	return core.Run(s.V, s.Program())
}

// RunSpec is Run with the unified run configuration (engine selection,
// message recording, cancellation), so callers running specs concurrently
// need not touch the process-wide default engine.
func (s Spec) RunSpec(spec alg.Spec) (*core.Trace, error) {
	return core.RunOpt(s.V, s.Program(), spec.RunOptions())
}

// ExpectedDegree computes, independently of the runtime, the degree
// h_s(n, p) of step t under folding on p processors, by brute force over
// the message list.  Used to cross-check the runtime's incremental
// accounting.
func (s Spec) ExpectedDegree(t, p int) int64 {
	lp := core.Log2(p)
	logV := core.Log2(s.V)
	shift := uint(logV - lp)
	sent := make(map[int]int64)
	recv := make(map[int]int64)
	for _, m := range s.Steps[t].Msgs {
		sb, db := m[0]>>shift, m[1]>>shift
		if sb != db {
			sent[sb]++
			recv[db]++
		}
	}
	var h int64
	for _, c := range sent {
		if c > h {
			h = c
		}
	}
	for _, c := range recv {
		if c > h {
			h = c
		}
	}
	return h
}
