package broadcast

import (
	"testing"

	"netoblivious/internal/eval"
	"netoblivious/internal/theory"
)

func checkAll(t *testing.T, got []int64, want int64) {
	t.Helper()
	for i, v := range got {
		if v != want {
			t.Fatalf("VP %d got %d, want %d", i, v, want)
		}
	}
}

func TestObliviousDelivers(t *testing.T) {
	for _, v := range []int{2, 4, 16, 256} {
		res, err := Oblivious(v, 42, Options{})
		if err != nil {
			t.Fatal(err)
		}
		checkAll(t, res.Got, 42)
		// log v supersteps of degree 1 each.
		if got := res.Trace.NumSupersteps(); got != trLog(v) {
			t.Errorf("v=%d: %d supersteps, want %d", v, got, trLog(v))
		}
	}
}

func trLog(v int) int {
	l := 0
	for 1<<uint(l) < v {
		l++
	}
	return l
}

func TestObliviousFlatDelivers(t *testing.T) {
	for _, v := range []int{2, 8, 64} {
		res, err := ObliviousFlat(v, 7, Options{})
		if err != nil {
			t.Fatal(err)
		}
		checkAll(t, res.Got, 7)
		if res.Trace.NumSupersteps() != 1 {
			t.Errorf("v=%d: %d supersteps, want 1", v, res.Trace.NumSupersteps())
		}
	}
}

func TestAwareDelivers(t *testing.T) {
	for _, p := range []int{2, 4, 16, 128, 1024} {
		for _, sigma := range []float64{0, 1, 3, 16, 100, 5000} {
			res, err := Aware(p, sigma, 13, Options{})
			if err != nil {
				t.Fatal(err)
			}
			checkAll(t, res.Got, 13)
		}
	}
}

func TestKappaFor(t *testing.T) {
	cases := map[float64]int{0: 2, 1: 2, 2: 2, 3: 4, 16: 16, 17: 32, 1000: 1024}
	for sigma, want := range cases {
		if got := KappaFor(sigma); got != want {
			t.Errorf("KappaFor(%v) = %d, want %d", sigma, got, want)
		}
	}
}

// TestAwareMatchesLowerBound: the σ-aware algorithm is O(1)-optimal: its
// measured H stays within a constant factor of Theorem 4.15's bound.
func TestAwareMatchesLowerBound(t *testing.T) {
	for _, p := range []int{16, 256, 1024} {
		for _, sigma := range []float64{0, 2, 8, 64, 512, 4096} {
			res, err := Aware(p, sigma, 1, Options{})
			if err != nil {
				t.Fatal(err)
			}
			h := eval.H(res.Trace, p, sigma)
			lb := theory.LowerBoundBroadcast(p, sigma)
			if h < lb*0.4 {
				t.Errorf("p=%d σ=%v: H=%v below lower bound %v", p, sigma, h, lb)
			}
			if h > lb*6 {
				t.Errorf("p=%d σ=%v: H=%v not O(1)-optimal vs %v", p, sigma, h, lb)
			}
		}
	}
}

// TestObliviousGapGrows: the binary-tree oblivious algorithm degrades as
// σ grows, following the Theorem 4.16 curve: GAP(σ) = Θ(log σ) for fixed
// p >= σ, while the theorem's lower-bound curve is
// Ω(log σ2/(log 2 + log log σ2)).
func TestObliviousGapGrows(t *testing.T) {
	const p = 1024
	res, err := Oblivious(p, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	gap := func(sigma float64) float64 {
		return eval.H(res.Trace, p, sigma) / theory.LowerBoundBroadcast(p, sigma)
	}
	g8 := gap(8)
	g512 := gap(512)
	if g512 <= g8 {
		t.Errorf("oblivious gap should grow with σ: gap(8)=%v, gap(512)=%v", g8, g512)
	}
	// Theorem 4.16: the measured worst gap over [0, σ2] dominates the
	// theoretical lower-bound curve (up to its constant).
	for _, sigma2 := range []float64{16, 256, 4096} {
		worst := 0.0
		for s := 0.0; s <= sigma2; s = s*2 + 1 {
			if g := gap(s); g > worst {
				worst = g
			}
		}
		lb := theory.GapLowerBound(0, sigma2)
		if worst < lb*0.5 {
			t.Errorf("σ2=%v: measured worst gap %v below Theorem 4.16 curve %v", sigma2, worst, lb)
		}
	}
}

// TestFlatVsTreeCrossover: the star is better when σ is enormous relative
// to p (one superstep), the tree better for small σ.
func TestFlatVsTreeCrossover(t *testing.T) {
	const p = 64
	tree, err := Oblivious(p, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	star, err := ObliviousFlat(p, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	hTree := func(s float64) float64 { return eval.H(tree.Trace, p, s) }
	hStar := func(s float64) float64 { return eval.H(star.Trace, p, s) }
	if hTree(0) >= hStar(0) {
		t.Errorf("σ=0: tree (%v) should beat star (%v)", hTree(0), hStar(0))
	}
	if hTree(1<<20) <= hStar(1<<20) {
		t.Errorf("σ=2^20: star (%v) should beat tree (%v)", hStar(1<<20), hTree(1<<20))
	}
}

// TestValidation rejects invalid sizes.
func TestValidation(t *testing.T) {
	if _, err := Oblivious(3, 1, Options{}); err == nil {
		t.Error("want error for v=3")
	}
	if _, err := Aware(1, 0, 1, Options{}); err == nil {
		t.Error("want error for p=1")
	}
}
