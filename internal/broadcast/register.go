package broadcast

import (
	"context"

	"netoblivious/alg"
)

func init() {
	alg.MustRegister(alg.Algorithm{
		Name:    "broadcast-tree",
		Doc:     "oblivious binary-tree n-broadcast (§4.5)",
		SizeDoc: "a power of two >= 2",
		Sizes:   []int{2, 8, 64, 1024},
		Valid:   alg.PowerOfTwo(2),
		RunFn: func(ctx context.Context, spec alg.Spec, n int) (alg.Result, error) {
			r, err := Oblivious(n, 1, spec)
			if err != nil {
				return alg.Result{}, err
			}
			return alg.Result{Trace: r.Trace}, nil
		},
	})
}
