// Package broadcast implements the algorithms of Section 4.5 of the
// paper, where the framework's limits are established: n-broadcast (copy
// V[0] to every other vector entry) admits an O(1)-optimal σ-aware
// algorithm on M(p, σ) (the κ-ary tree with κ = Θ(max{2, σ})), but no
// network-oblivious algorithm can be Θ(1)-optimal across widely different
// σ (Theorem 4.16: the slowdown over σ ∈ [σ1, σ2] is
// Ω(log σ2/(log σ1 + log log σ2))).
//
// Three algorithms are provided:
//
//   - Aware: the κ-ary tree of Section 4.5, parameter-aware (chooses κ
//     from σ), matching the Theorem 4.15 lower bound.
//   - Oblivious: the natural binary doubling tree, network-oblivious
//     (κ = 2 regardless of σ); Θ(1)-optimal only for σ = O(1).
//   - ObliviousFlat: the one-superstep star; Θ(1)-optimal only for huge σ.
//
// Experiment E7 measures the GAP of the oblivious algorithms against the
// lower bound across σ ranges and compares it with the Theorem 4.16 curve.
package broadcast

import (
	"fmt"
	"math"

	"netoblivious/alg"
	"netoblivious/internal/core"
)

// Result carries the broadcast outcome and trace.
type Result struct {
	// Got[i] is the value held by VP i at the end.
	Got []int64
	// Trace is the communication record.
	Trace *core.Trace
	// Kappa is the tree arity used (2 for Oblivious, n-1... for flat the
	// field is the machine size; informational).
	Kappa int
}

// Options is the unified run configuration (engine, recording,
// cancellation; the broadcast algorithms have no wise variant and ignore
// Spec.Wise).
type Options = alg.Spec

func checkV(v int) error {
	if v < 2 || v&(v-1) != 0 {
		return fmt.Errorf("broadcast: v=%d must be a power of two >= 2", v)
	}
	return nil
}

// Oblivious runs the binary doubling broadcast on M(v): superstep i (an
// i-superstep) doubles the informed set from the v/2^i-strided
// representatives to the v/2^{i+1}-strided ones.  Network-oblivious: no
// machine parameter appears.
func Oblivious(v int, value int64, opts Options) (*Result, error) {
	if err := checkV(v); err != nil {
		return nil, err
	}
	got := make([]int64, v)
	prog := func(vp *core.VP[int64]) {
		val := int64(0)
		if vp.ID() == 0 {
			val = value
		}
		d := v // stride of informed VPs
		for d > 1 {
			nd := d / 2
			label := core.Log2(v / d)
			if vp.ID()%d == 0 {
				vp.Send(vp.ID()+nd, val)
			}
			vp.Sync(label)
			if vp.ID()%nd == 0 && vp.ID()%d != 0 {
				m, ok := vp.Receive()
				if !ok {
					panic("broadcast: doubling round delivered no value")
				}
				val = m
			}
			d = nd
		}
		got[vp.ID()] = val
	}
	tr, err := core.RunOpt(v, prog, opts.RunOptions())
	if err != nil {
		return nil, err
	}
	return &Result{Got: got, Trace: tr, Kappa: 2}, nil
}

// ObliviousFlat runs the one-superstep star broadcast on M(v): VP 0 sends
// v−1 messages directly.
func ObliviousFlat(v int, value int64, opts Options) (*Result, error) {
	if err := checkV(v); err != nil {
		return nil, err
	}
	got := make([]int64, v)
	prog := func(vp *core.VP[int64]) {
		val := int64(0)
		if vp.ID() == 0 {
			val = value
			for t := 1; t < v; t++ {
				vp.Send(t, val)
			}
		}
		vp.Sync(0)
		if vp.ID() != 0 {
			m, ok := vp.Receive()
			if !ok {
				panic("broadcast: star delivered no value")
			}
			val = m
		}
		got[vp.ID()] = val
	}
	tr, err := core.RunOpt(v, prog, opts.RunOptions())
	if err != nil {
		return nil, err
	}
	return &Result{Got: got, Trace: tr, Kappa: v}, nil
}

// KappaFor returns the paper's arity choice for the σ-aware algorithm:
// the smallest power of two >= max{2, σ}.
func KappaFor(sigma float64) int {
	k := 2
	for float64(k) < math.Max(2, sigma) {
		k *= 2
	}
	return k
}

// Aware runs the σ-aware κ-ary broadcast of Section 4.5 on M(p) with
// κ = KappaFor(sigma): in round i the informed representatives fan out to
// κ−1 sub-representatives of their cluster, using ⌈log_κ p⌉ supersteps of
// degree κ−1.  Its communication complexity on M(p, σ) is
// O(max{2,σ}·log_{max{2,σ}} p), matching the Theorem 4.15 lower bound, so
// the algorithm is O(1)-optimal — but it is parameter-aware, which
// Theorem 4.16 shows is unavoidable.
func Aware(p int, sigma float64, value int64, opts Options) (*Result, error) {
	if err := checkV(p); err != nil {
		return nil, err
	}
	kappa := KappaFor(sigma)
	got := make([]int64, p)
	prog := func(vp *core.VP[int64]) {
		val := int64(0)
		if vp.ID() == 0 {
			val = value
		}
		d := p
		for d > 1 {
			nd := d / kappa
			if nd < 1 {
				nd = 1
			}
			label := core.Log2(p / d)
			if vp.ID()%d == 0 {
				for ell := 1; ell*nd < d; ell++ {
					vp.Send(vp.ID()+ell*nd, val)
				}
			}
			vp.Sync(label)
			if vp.ID()%nd == 0 && vp.ID()%d != 0 {
				m, ok := vp.Receive()
				if !ok {
					panic("broadcast: aware round delivered no value")
				}
				val = m
			}
			d = nd
		}
		got[vp.ID()] = val
	}
	tr, err := core.RunOpt(p, prog, opts.RunOptions())
	if err != nil {
		return nil, err
	}
	return &Result{Got: got, Trace: tr, Kappa: kappa}, nil
}
