package colsort

import "sort"

// SeqColumnsort is a sequential mirror of the parallel algorithm: the same
// shapes, permutations and recursion, executed on a slice.  It exists so
// the permutation logic can be validated exhaustively (0-1 principle)
// without spinning up machines, and so the parallel runs can be checked
// step-for-step against it.
func SeqColumnsort(keys []int64) []int64 {
	n := len(keys)
	if n&(n-1) != 0 || n == 0 {
		panic("colsort: SeqColumnsort needs a power-of-two length")
	}
	a := make([]kv, n)
	for i, k := range keys {
		a[i] = kv{key: k, tag: int32(i)}
	}
	seqRec(a, 8)
	out := make([]int64, n)
	for i, e := range a {
		out[i] = e.key
	}
	return out
}

func seqRec(a []kv, baseSize int) {
	size := len(a)
	if size == 1 {
		return
	}
	if size <= baseSize {
		sort.Slice(a, func(i, j int) bool { return a[i].less(a[j]) })
		return
	}
	r, s := Shape(size)
	columns := func() {
		for c := 0; c < s; c++ {
			seqRec(a[c*r:(c+1)*r], baseSize)
		}
	}
	apply := func(perm func(pos int) int) {
		b := make([]kv, size)
		for pos, e := range a {
			b[perm(pos)] = e
		}
		copy(a, b)
	}

	columns()                                              // 1
	apply(func(pos int) int { return pos%s*r + pos/s })    // 2: transpose
	columns()                                              // 3
	apply(func(pos int) int { return pos%r*s + pos/r })    // 4: untranspose
	columns()                                              // 5
	apply(func(pos int) int { return (pos + r/2) % size }) // 6: shift
	columns()                                              // 7
	apply(func(pos int) int {                              // 8: inverse shift with column-0 wrap
		switch {
		case pos >= r:
			return pos - r/2
		case pos < r/2:
			return pos
		default:
			return size - r + pos
		}
	})
}
