// Package colsort implements the network-oblivious comparison-based
// sorting algorithm of Section 4.3 of the paper: a recursive version of
// Leighton's Columnsort specified on M(n), one key per virtual processor.
//
// The n keys are viewed as an r×s matrix stored column-major (column c
// occupies the r consecutively numbered VPs [c·r, (c+1)·r)).  Columnsort
// runs eight phases: odd phases sort every column recursively; even phases
// permute the matrix (2: transpose, 4: untranspose, 6: cyclic r/2-shift,
// 8: inverse shift with the paper's column-0 wrap convention folded in).
// Each permutation is a single 0-superstep of constant degree relative to
// the current segment; column sorts recurse on r = Θ(n^{2/3})-size
// segments, giving (Theorem 4.8)
//
//	H_sort(n, p, σ) = O((n/p + σ)·(log n/log(n/p))^{log_{3/2} 4})
//
// and Θ(1)-optimality for p = O(n^{1-δ}) (Corollary 4.9).
//
// Substitution note (see DESIGN.md): we choose the matrix shape to satisfy
// Leighton's classical sufficient condition r >= 2(s-1)² (instead of the
// paper's r >= s²) and implement phase 4 as the inverse transposition.
// s remains Θ(n^{1/3}), so the recurrence and all stated bounds are
// unchanged, and correctness follows from the classical analysis —
// validated here by 0-1-principle and randomized tests.  Segments of at
// most BaseSize VPs sort by an all-gather brute-force pass (one superstep
// of constant degree).
package colsort

import (
	"fmt"
	"sort"

	"netoblivious/alg"
	"netoblivious/internal/core"
)

// Options is the unified run configuration (engine, recording, wiseness
// dummies, cancellation).
type Options = alg.Spec

// Result carries the sorted keys and the communication trace.
type Result struct {
	// Keys holds the input keys in nondecreasing order (ties broken by
	// original position, making the sort stable at the key level).
	Keys []int64
	// Trace is the recorded communication of the M(n) execution.
	Trace *core.Trace
}

// kv is a key with its original position as a tie-breaking tag, giving a
// total order even with duplicate keys (the paper assumes distinct keys;
// the tag removes the assumption).
type kv struct {
	key int64
	tag int32
}

func (a kv) less(b kv) bool {
	if a.key != b.key {
		return a.key < b.key
	}
	return a.tag < b.tag
}

// Shape returns the r×s matrix shape used for a segment of the given size:
// s = 2^⌊(log₂ size − 1)/3⌋ and r = size/s, which satisfies r >= 2(s−1)²
// and r >= s for every power of two size >= 16.
func Shape(size int) (r, s int) {
	nu := core.Log2(size)
	sigma := (nu - 1) / 3
	if sigma < 1 {
		panic(fmt.Sprintf("colsort: no valid shape for size %d", size))
	}
	s = 1 << uint(sigma)
	return size / s, s
}

// Sort runs the network-oblivious Columnsort on M(n), n = len(keys),
// with the default brute-force base-case size of 8.
func Sort(keys []int64, opts Options) (*Result, error) {
	return SortBase(keys, 0, opts)
}

// SortBase is Sort with an explicit base-case size: segments of at most
// base VPs sort by the all-gather brute-force pass.  base must be at
// least 8 (smaller segments cannot be split into a valid r×s shape);
// 0 means 8.  The knob exists for the base-case ablation benchmarks.
func SortBase(keys []int64, base int, opts Options) (*Result, error) {
	n := len(keys)
	if n < 1 || n&(n-1) != 0 {
		return nil, fmt.Errorf("colsort: input length %d must be a positive power of two", n)
	}
	if base == 0 {
		base = 8
	}
	if base < 8 {
		return nil, fmt.Errorf("colsort: base size %d must be >= 8", base)
	}
	out := make([]int64, n)
	prog := func(vp *core.VP[kv]) {
		me := kv{key: keys[vp.ID()], tag: int32(vp.ID())}
		me = sortRec(vp, 0, vp.V(), me, opts.Wise, base)
		out[vp.ID()] = me.key
	}
	tr, err := core.RunOpt(n, prog, opts.RunOptions())
	if err != nil {
		return nil, err
	}
	return &Result{Keys: out, Trace: tr}, nil
}

// permute sends my key to position perm(pos) of the segment and returns
// the key received; perm must be a bijection on [0, size).
func permute(vp *core.VP[kv], base, label int, my kv, dst int, wise bool) kv {
	self := dst == vp.ID()
	if !self {
		vp.Send(dst, my)
	}
	if wise {
		core.WisenessDummies(vp, label, 1)
	}
	vp.Sync(label)
	if self {
		return my
	}
	got, ok := vp.Receive()
	if !ok {
		panic("colsort: permutation delivered no key")
	}
	return got
}

// sortRec sorts the keys held one-per-VP by the segment [base, base+size)
// in position order: on return, the VP at segment position t holds the key
// of rank t within the segment.
func sortRec(vp *core.VP[kv], base, size int, my kv, wise bool, baseSize int) kv {
	if size == 1 {
		return my
	}
	if size <= baseSize {
		return gatherSort(vp, base, size, my, wise)
	}
	label := vp.LogV() - core.Log2(size)
	r, s := Shape(size)

	column := func(my kv) kv {
		pos := vp.ID() - base
		cbase := base + pos/r*r
		return sortRec(vp, cbase, r, my, wise, baseSize)
	}

	// Phase 1: sort columns.
	my = column(my)
	// Phase 2: transpose — entry at column-major index g moves to the
	// position whose row-major index is g.
	pos := vp.ID() - base
	my = permute(vp, base, label, my, base+pos%s*r+pos/s, wise)
	// Phase 3: sort columns.
	my = column(my)
	// Phase 4: untranspose (inverse of phase 2).
	pos = vp.ID() - base
	my = permute(vp, base, label, my, base+(pos%r)*s+pos/r, wise)
	// Phase 5: sort columns.
	my = column(my)
	// Phase 6: cyclic shift down by half a column.
	pos = vp.ID() - base
	my = permute(vp, base, label, my, base+(pos+r/2)%size, wise)
	// Phase 7: sort columns.
	my = column(my)
	// Phase 8: inverse shift.  Column 0 holds the r/2 globally smallest
	// keys in its top half and the r/2 largest in its bottom half (the
	// paper's wrap convention): top-half keys stay, bottom-half keys go
	// to the tail of the segment; all other columns shift up by r/2.
	pos = vp.ID() - base
	var dst int
	switch {
	case pos >= r:
		dst = pos - r/2
	case pos < r/2:
		dst = pos
	default:
		dst = size - r + pos
	}
	return permute(vp, base, label, my, base+dst, wise)
}

// gatherSort sorts a segment of at most BaseSize VPs with one all-gather
// superstep: every VP broadcasts its key within the segment, ranks the
// full set locally and keeps the key matching its position.
func gatherSort(vp *core.VP[kv], base, size int, my kv, wise bool) kv {
	label := vp.LogV() - core.Log2(size)
	pos := vp.ID() - base
	for t := 0; t < size; t++ {
		if t != pos {
			vp.Send(base+t, my)
		}
	}
	if wise {
		core.WisenessDummies(vp, label, 1)
	}
	vp.Sync(label)
	all := make([]kv, 0, size)
	all = append(all, my)
	for _, msg := range vp.Inbox() {
		all = append(all, msg.Payload)
	}
	if len(all) != size {
		panic("colsort: gather received wrong key count")
	}
	sort.Slice(all, func(i, j int) bool { return all[i].less(all[j]) })
	return all[pos]
}
