package colsort

import (
	"fmt"

	"netoblivious/internal/core"
)

// SortBitonic runs Batcher's bitonic sorting network on M(n), one key per
// VP — the classic fine-grained network-oblivious sorting algorithm, used
// here as the baseline Columnsort improves upon.
//
// The network has log n · (log n + 1)/2 compare-exchange stages; the stage
// exchanging keys between VPs differing in bit l is a superstep with label
// log n − l − 1 (partners share exactly the more significant bits).  Folded
// on M(p, σ) the communication complexity is
//
//	H_bitonic(n, p, σ) = Θ((n/p + σ)·log p·log n)
//
// — a log p·log n/(log n/log(n/p))^{log_{3/2}4}... in particular a
// Θ(log²p) factor off the Lemma 4.7 lower bound at p = n^Θ(1), whereas
// Columnsort is Θ(1)-optimal there (experiment E13).
func SortBitonic(keys []int64, opts Options) (*Result, error) {
	n := len(keys)
	if n < 1 || n&(n-1) != 0 {
		return nil, fmt.Errorf("colsort: input length %d must be a positive power of two", n)
	}
	logN := 0
	for 1<<uint(logN) < n {
		logN++
	}
	out := make([]int64, n)
	prog := func(vp *core.VP[kv]) {
		id := vp.ID()
		me := kv{key: keys[id], tag: int32(id)}
		// Stage (k, j): bitonic merge of blocks of size 2^{k+1}, exchange
		// distance 2^j, for k = 0..logN-1, j = k..0.
		for k := 0; k < logN; k++ {
			for j := k; j >= 0; j-- {
				dist := 1 << uint(j)
				partner := id ^ dist
				label := logN - j - 1
				vp.Send(partner, me)
				if opts.Wise {
					core.WisenessDummies(vp, label, 1)
				}
				vp.Sync(label)
				other, ok := vp.Receive()
				if !ok {
					panic("colsort: bitonic exchange delivered no key")
				}
				// Direction: ascending iff bit k+1 of id is 0.
				ascending := id&(1<<uint(k+1)) == 0
				keepMin := (id&dist == 0) == ascending
				if keepMin {
					if other.less(me) {
						me = other
					}
				} else {
					if me.less(other) {
						me = other
					}
				}
			}
		}
		out[id] = me.key
	}
	tr, err := core.RunOpt(n, prog, opts.RunOptions())
	if err != nil {
		return nil, err
	}
	return &Result{Keys: out, Trace: tr}, nil
}
