package colsort

import (
	"math/rand"
	"sort"
	"testing"

	"netoblivious/internal/eval"
	"netoblivious/internal/theory"
)

// TestBitonicCorrectness: bitonic output matches sort.Slice on assorted
// inputs.
func TestBitonicCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, n := range []int{1, 2, 4, 8, 16, 64, 256, 1024} {
		for trial := 0; trial < 4; trial++ {
			in := make([]int64, n)
			for i := range in {
				in[i] = int64(rng.Intn(200) - 100)
			}
			res, err := SortBitonic(in, Options{Wise: true})
			if err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			want := append([]int64(nil), in...)
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			for i := range want {
				if res.Keys[i] != want[i] {
					t.Fatalf("n=%d trial %d: Keys[%d] = %d, want %d", n, trial, i, res.Keys[i], want[i])
				}
			}
		}
	}
}

// TestBitonicZeroOne: 0-1 principle sampling (the network is oblivious, so
// 0-1 coverage is strong evidence).
func TestBitonicZeroOne(t *testing.T) {
	n := 16
	for mask := 0; mask < 1<<uint(n); mask += 7 { // stride-sampled masks
		in := make([]int64, n)
		for i := range in {
			in[i] = int64(mask >> uint(i) & 1)
		}
		res, err := SortBitonic(in, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !sort.SliceIsSorted(res.Keys, func(i, j int) bool { return res.Keys[i] < res.Keys[j] }) {
			t.Fatalf("mask %b: not sorted: %v", mask, res.Keys)
		}
	}
}

// TestBitonicStageCount: exactly log n (log n + 1)/2 supersteps.
func TestBitonicStageCount(t *testing.T) {
	n := 64
	in := make([]int64, n)
	res, err := SortBitonic(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	logN := 6
	if want := logN * (logN + 1) / 2; res.Trace.NumSupersteps() != want {
		t.Errorf("supersteps = %d, want %d", res.Trace.NumSupersteps(), want)
	}
}

// TestBitonicVsColumnsort is experiment E13's core claim, in normalized
// per-key cost H·p/n at σ=0.  Bitonic's is exactly Θ(log²p), independent
// of n (the Θ(log²p) suboptimality factor); Columnsort's decreases with n
// toward a constant (the (log n/log(n/p))^{log_{3/2}4} → 1 limit), which
// is the Theorem 4.8 optimality claim made visible.  At simulable sizes
// bitonic's small constants still win in absolute terms — an honest
// finding recorded in E13; the paper's claim is asymptotic.
func TestBitonicVsColumnsort(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	norm := func(n, p int, bitonic bool) float64 {
		in := make([]int64, n)
		for i := range in {
			in[i] = rng.Int63()
		}
		var res *Result
		var err error
		if bitonic {
			res, err = SortBitonic(in, Options{Wise: true})
		} else {
			res, err = Sort(in, Options{Wise: true})
		}
		if err != nil {
			t.Fatal(err)
		}
		return eval.H(res.Trace, p, 0) * float64(p) / float64(n)
	}
	// Bitonic: normalized cost equals log p(log p+1) (the wiseness
	// dummies double the ideal log p(log p+1)/2) at every n.
	for _, p := range []int{4, 16, 64} {
		lp := 0
		for 1<<uint(lp) < p {
			lp++
		}
		want := float64(lp * (lp + 1))
		for _, n := range []int{1 << 8, 1 << 12} {
			got := norm(n, p, true)
			if got != want {
				t.Errorf("bitonic n=%d p=%d: normalized H = %v, want exactly %v", n, p, got, want)
			}
			shape := theory.PredictedBitonic(float64(n), p, 0) * float64(p) / float64(n)
			if got/shape > 4 || got/shape < 0.5 {
				t.Errorf("bitonic n=%d p=%d: normalized %v vs shape %v", n, p, got, shape)
			}
		}
	}
	// Columnsort: normalized cost strictly decreases as n grows at fixed
	// p (heading for the Θ(1)-optimal regime p = O(n^{1-δ})).
	for _, p := range []int{16, 64} {
		c1 := norm(1<<8, p, false)
		c2 := norm(1<<12, p, false)
		if c2 >= c1 {
			t.Errorf("p=%d: Columnsort normalized cost should fall with n: %v -> %v", p, c1, c2)
		}
	}
}
