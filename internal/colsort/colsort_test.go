package colsort

import (
	"math/rand"
	"sort"
	"testing"

	"netoblivious/internal/eval"
	"netoblivious/internal/theory"
)

func isSorted(a []int64) bool {
	return sort.SliceIsSorted(a, func(i, j int) bool { return a[i] < a[j] })
}

// TestShapeCondition: every shape satisfies Leighton's r >= 2(s-1)² and
// r >= s, with s = Θ(size^{1/3}).
func TestShapeCondition(t *testing.T) {
	for size := 16; size <= 1<<20; size *= 2 {
		r, s := Shape(size)
		if r*s != size {
			t.Fatalf("size %d: r·s = %d", size, r*s)
		}
		if r < 2*(s-1)*(s-1) {
			t.Errorf("size %d: r=%d < 2(s-1)²=%d", size, r, 2*(s-1)*(s-1))
		}
		if r < s {
			t.Errorf("size %d: r=%d < s=%d", size, r, s)
		}
		if s < 2 {
			t.Errorf("size %d: s=%d < 2 makes no progress", size, s)
		}
	}
}

// TestSeqColumnsortZeroOneExhaustive applies the 0-1 principle to the
// sequential mirror: all 2^16 zero-one inputs of length 16 must sort.
// (Length <= 8 is the brute-force base case, so 16 is the first size that
// exercises the eight phases.)
func TestSeqColumnsortZeroOneExhaustive(t *testing.T) {
	n := 16
	for mask := 0; mask < 1<<uint(n); mask++ {
		in := make([]int64, n)
		for i := range in {
			in[i] = int64(mask >> uint(i) & 1)
		}
		if out := SeqColumnsort(in); !isSorted(out) {
			t.Fatalf("0-1 input %016b not sorted: %v", mask, out)
		}
	}
}

// TestSeqColumnsortZeroOneLarger samples 0-1 inputs at sizes that exercise
// deeper recursion and different shapes.
func TestSeqColumnsortZeroOneLarger(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{32, 64, 128, 256, 512, 1024, 4096, 1 << 14} {
		trials := 300
		if n > 256 {
			trials = 300 * 256 / n // keep the large shapes affordable
		}
		if trials < 10 {
			trials = 10
		}
		for trial := 0; trial < trials; trial++ {
			in := make([]int64, n)
			for i := range in {
				in[i] = int64(rng.Intn(2))
			}
			if out := SeqColumnsort(in); !isSorted(out) {
				t.Fatalf("n=%d trial %d: 0-1 input not sorted", n, trial)
			}
		}
		// Adversarial: single 1 / single 0 at every position near column
		// boundaries.
		r, _ := Shape(n)
		for _, posn := range []int{0, 1, r - 1, r, r + 1, n - r, n - 1, n/2 - 1, n / 2} {
			in := make([]int64, n)
			in[posn] = 1
			if out := SeqColumnsort(in); !isSorted(out) {
				t.Fatalf("n=%d: single 1 at %d not sorted", n, posn)
			}
			for i := range in {
				in[i] = 1
			}
			in[posn] = 0
			if out := SeqColumnsort(in); !isSorted(out) {
				t.Fatalf("n=%d: single 0 at %d not sorted", n, posn)
			}
		}
	}
}

// TestSortCorrectness: the parallel sort against sort.Slice on random,
// sorted, reversed, and constant inputs.
func TestSortCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 1024} {
		inputs := [][]int64{make([]int64, n)}
		asc := make([]int64, n)
		desc := make([]int64, n)
		rnd := make([]int64, n)
		dup := make([]int64, n)
		for i := 0; i < n; i++ {
			asc[i] = int64(i)
			desc[i] = int64(n - i)
			rnd[i] = int64(rng.Intn(1000) - 500)
			dup[i] = int64(rng.Intn(3))
		}
		inputs = append(inputs, asc, desc, rnd, dup)
		for which, in := range inputs {
			want := append([]int64(nil), in...)
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			res, err := Sort(in, Options{Wise: true})
			if err != nil {
				t.Fatalf("n=%d input %d: %v", n, which, err)
			}
			for i := range want {
				if res.Keys[i] != want[i] {
					t.Fatalf("n=%d input %d: Keys[%d] = %d, want %d\nin: %v\ngot: %v", n, which, i, res.Keys[i], want[i], in, res.Keys)
				}
			}
		}
	}
}

// TestParallelMatchesSequentialMirror: the parallel execution implements
// exactly the same permutations as SeqColumnsort.
func TestParallelMatchesSequentialMirror(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{16, 64, 512} {
		in := make([]int64, n)
		for i := range in {
			in[i] = int64(rng.Intn(50))
		}
		res, err := Sort(in, Options{})
		if err != nil {
			t.Fatal(err)
		}
		seq := SeqColumnsort(in)
		for i := range seq {
			if res.Keys[i] != seq[i] {
				t.Fatalf("n=%d: parallel and sequential mirrors diverge at %d", n, i)
			}
		}
	}
}

// TestSortComplexity verifies Theorem 4.8's shape.
func TestSortComplexity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 1 << 12
	in := make([]int64, n)
	for i := range in {
		in[i] = rng.Int63()
	}
	res, err := Sort(in, Options{Wise: true})
	if err != nil {
		t.Fatal(err)
	}
	for p := 2; p <= n; p *= 8 {
		h := eval.H(res.Trace, p, 0)
		pred := theory.PredictedSort(float64(n), p, 0)
		ratio := h / pred
		if ratio > 30 || ratio < 0.01 {
			t.Errorf("p=%d: H=%v vs predicted %v (ratio %v)", p, h, pred, ratio)
		}
	}
	// Optimality band for moderate p: H within a constant factor of the
	// sorting lower bound when p = O(n^{1-δ}).
	p := 1 << 4
	beta := eval.BetaOptimality(theory.LowerBoundSort(float64(n), p, 0), eval.H(res.Trace, p, 0))
	if beta < 0.02 {
		t.Errorf("β(%d) = %v, want bounded below", p, beta)
	}
}

// TestWiseness: with dummies the sort is (Θ(1), n)-wise.
func TestWiseness(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 512
	in := make([]int64, n)
	for i := range in {
		in[i] = rng.Int63()
	}
	res, err := Sort(in, Options{Wise: true})
	if err != nil {
		t.Fatal(err)
	}
	for p := 2; p <= n; p *= 4 {
		if alpha := eval.Wiseness(res.Trace, p); alpha < 0.05 {
			t.Errorf("α(%d) = %v, want Θ(1)", p, alpha)
		}
	}
	for p := 2; p <= n; p *= 2 {
		if err := eval.CheckFoldingLemma(res.Trace, p); err != nil {
			t.Errorf("p=%d: %v", p, err)
		}
	}
}

// TestStability: equal keys keep their input order (a bonus of the tag
// tie-break; also catches permutation bugs that shuffle equals).
func TestStability(t *testing.T) {
	n := 64
	in := make([]int64, n)
	for i := range in {
		in[i] = int64(i % 4)
	}
	res, err := Sort(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !isSorted(res.Keys) {
		t.Fatal("not sorted")
	}
}

// TestValidation rejects bad inputs.
func TestValidation(t *testing.T) {
	if _, err := Sort(make([]int64, 3), Options{}); err == nil {
		t.Error("want error for n=3")
	}
	if _, err := SortBase(make([]int64, 16), 4, Options{}); err == nil {
		t.Error("want error for BaseSize < 8")
	}
}
