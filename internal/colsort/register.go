package colsort

import (
	"context"
	"math/rand"

	"netoblivious/alg"
)

// randKeys draws the deterministic registry input.
func randKeys(rng *rand.Rand, n int) []int64 {
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = rng.Int63()
	}
	return keys
}

// The registry descriptors pin Wise (see the matmul registration note).
func init() {
	alg.MustRegister(alg.Algorithm{
		Name:    "sort",
		Doc:     "recursive Columnsort (§4.3)",
		SizeDoc: "a power of two >= 2",
		Sizes:   []int{2, 8, 64, 1024},
		Valid:   alg.PowerOfTwo(2),
		RunFn: func(ctx context.Context, spec alg.Spec, n int) (alg.Result, error) {
			spec.Wise = true
			r, err := Sort(randKeys(alg.SeededRand(), n), spec)
			if err != nil {
				return alg.Result{}, err
			}
			return alg.Result{Trace: r.Trace}, nil
		},
	})
	alg.MustRegister(alg.Algorithm{
		Name:    "bitonic",
		Doc:     "Batcher's bitonic network (E13 baseline)",
		SizeDoc: "a power of two >= 2",
		Sizes:   []int{2, 8, 64, 1024},
		Valid:   alg.PowerOfTwo(2),
		RunFn: func(ctx context.Context, spec alg.Spec, n int) (alg.Result, error) {
			spec.Wise = true
			r, err := SortBitonic(randKeys(alg.SeededRand(), n), spec)
			if err != nil {
				return alg.Result{}, err
			}
			return alg.Result{Trace: r.Trace}, nil
		},
	})
}
