package lint

import (
	"go/ast"
	"go/types"
)

// funcDecls returns every function declaration of the pass's package
// with a body, paired with its types object.
func funcDecls(p *Pass) map[*types.Func]*ast.FuncDecl {
	out := map[*types.Func]*ast.FuncDecl{}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if obj, ok := p.Info.Defs[fn.Name].(*types.Func); ok {
				out[obj] = fn
			}
		}
	}
	return out
}

// samePkgRefs returns the same-package functions referenced anywhere in
// fn's body — called directly, passed as values, or taken as method
// values.  It is the edge set of the package-local reachability graphs
// maporder and ctxflow walk.
func samePkgRefs(p *Pass, fn *ast.FuncDecl) []*types.Func {
	var out []*types.Func
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if f, ok := p.Info.Uses[id].(*types.Func); ok && f.Pkg() == p.Pkg {
			// Methods of generic types resolve to instantiated objects;
			// Origin maps them back to the declared function funcDecls
			// indexes by.
			out = append(out, f.Origin())
		}
		return true
	})
	return out
}

// enclosingFuncDecl returns the top-level function declaration whose
// body contains pos, or nil (package-level initializers).
func enclosingFuncDecl(p *Pass, pos ast.Node) *ast.FuncDecl {
	for _, f := range p.Files {
		if f.Pos() > pos.Pos() || pos.Pos() > f.End() {
			continue
		}
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if fn.Body.Pos() <= pos.Pos() && pos.Pos() <= fn.Body.End() {
				return fn
			}
		}
	}
	return nil
}

// fileOf returns the *ast.File containing pos.
func fileOf(p *Pass, pos ast.Node) *ast.File {
	for _, f := range p.Files {
		if f.Pos() <= pos.Pos() && pos.Pos() <= f.End() {
			return f
		}
	}
	return nil
}

// isNamedType reports whether t (after pointer stripping) is the named
// type pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	return t != nil && isNamedType(t, "context", "Context")
}

// recvIdent returns the receiver identifier of a method declaration, or
// nil for an anonymous receiver.
func recvIdent(fn *ast.FuncDecl) *ast.Ident {
	if fn.Recv == nil || len(fn.Recv.List) == 0 || len(fn.Recv.List[0].Names) == 0 {
		return nil
	}
	return fn.Recv.List[0].Names[0]
}
