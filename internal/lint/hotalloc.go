package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAllocAnalyzer polices the per-superstep hot paths.  A function
// annotated //nob:hotpath runs once per superstep or once per routed
// message, where PR 5's zero-allocation discipline is what keeps the
// router at memory bandwidth.  Inside such a function the analyzer
// flags the four allocation sources that have actually regressed these
// paths before:
//
//   - any call into the fmt package (Sprintf formats, boxes, and
//     allocates even when the result is discarded);
//   - interface boxing: a non-pointer concrete value converted or
//     passed where an interface is expected (pointers are exempt — the
//     pointee does not move);
//   - a function literal that captures variables of the enclosing
//     function (captured-by-closure variables escape to the heap);
//   - append in a loop onto a slice with no capacity hint — neither
//     make(..., n) nor a reuse-reslice v[:0] in the same function.
//
// Cold error paths inside a hot function (panics on programmer error)
// take a line-level //nolint:hotalloc with a reason.
var HotAllocAnalyzer = &Analyzer{
	Name: "hotalloc",
	Doc:  "//nob:hotpath functions must not call fmt, box interfaces, capture closures, or append unhinted in loops",
	Run:  runHotAlloc,
}

func runHotAlloc(p *Pass) {
	decls := funcDecls(p)
	for obj, fn := range decls {
		if !FuncAnnotated(fn, "hotpath") {
			continue
		}
		hinted := capHintedSlices(p, fn)
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				// A flagged fmt call subsumes the boxing its variadic
				// args would also trigger — one diagnostic per cause.
				if !checkFmtCall(p, n, obj.Name()) {
					checkBoxingCall(p, n, obj.Name())
				}
			case *ast.FuncLit:
				if capt := capturedVar(p, fn, n); capt != "" {
					p.Reportf(n.Pos(),
						"closure in //nob:hotpath function %s captures %s, forcing it to escape to the heap",
						obj.Name(), capt)
				}
			case *ast.CompositeLit:
				checkBoxingComposite(p, n, obj.Name())
			}
			return true
		})
		checkLoopAppends(p, fn, obj.Name(), hinted)
	}
}

// checkFmtCall flags any call whose callee lives in package fmt,
// reporting whether it did.
func checkFmtCall(p *Pass, call *ast.CallExpr, where string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	f, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || f.Pkg() == nil || f.Pkg().Path() != "fmt" {
		return false
	}
	p.Reportf(call.Pos(), "fmt.%s in //nob:hotpath function %s allocates per call; format off the hot path", f.Name(), where)
	return true
}

// checkBoxingCall flags non-pointer concrete arguments passed to
// interface-typed parameters (including variadic ...interface{}).
func checkBoxingCall(p *Pass, call *ast.CallExpr, where string) {
	sig := calleeSignature(p, call)
	if sig == nil {
		return
	}
	for i, arg := range call.Args {
		pt := paramType(sig, i)
		if pt == nil {
			continue
		}
		if boxes(p, arg, pt) {
			p.Reportf(arg.Pos(), "argument boxes a concrete value into an interface in //nob:hotpath function %s; pass a pointer or move this off the hot path", where)
		}
	}
}

// checkBoxingComposite flags concrete non-pointer elements stored into
// composite literals with interface element types ([]any{...} etc.).
func checkBoxingComposite(p *Pass, lit *ast.CompositeLit, where string) {
	t := p.TypeOf(lit)
	if t == nil {
		return
	}
	var elem types.Type
	switch u := t.Underlying().(type) {
	case *types.Slice:
		elem = u.Elem()
	case *types.Array:
		elem = u.Elem()
	case *types.Map:
		elem = u.Elem()
	default:
		return
	}
	if _, ok := elem.Underlying().(*types.Interface); !ok {
		return
	}
	for _, e := range lit.Elts {
		if kv, ok := e.(*ast.KeyValueExpr); ok {
			e = kv.Value
		}
		if boxes(p, e, elem) {
			p.Reportf(e.Pos(), "composite literal element boxes a concrete value into an interface in //nob:hotpath function %s", where)
		}
	}
}

// boxes reports whether storing expr into a slot of type target forces
// an interface allocation: target is an interface, expr's type is a
// concrete non-pointer, non-interface, non-nil value.
func boxes(p *Pass, expr ast.Expr, target types.Type) bool {
	if _, ok := target.Underlying().(*types.Interface); !ok {
		return false
	}
	at := p.TypeOf(expr)
	if at == nil {
		return false
	}
	if _, ok := at.Underlying().(*types.Interface); ok {
		return false // interface-to-interface: no new box
	}
	if _, ok := at.(*types.Pointer); ok {
		return false // pointer values ride in the iface word
	}
	if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	return true
}

// calleeSignature resolves the call's function signature, skipping
// builtins and type conversions.
func calleeSignature(p *Pass, call *ast.CallExpr) *types.Signature {
	tv, ok := p.Info.Types[call.Fun]
	if !ok || tv.IsType() || tv.IsBuiltin() {
		// panic(x) boxes its argument: treat the builtin specially.
		if id, isIdent := call.Fun.(*ast.Ident); isIdent && id.Name == "panic" && len(call.Args) == 1 {
			return panicSignature
		}
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// panicSignature models panic's (v any) parameter for boxing checks.
var panicSignature = types.NewSignatureType(nil, nil, nil,
	types.NewTuple(types.NewVar(token.NoPos, nil, "v",
		types.NewInterfaceType(nil, nil))), nil, false)

// paramType returns the type of parameter slot i, unrolling variadics.
func paramType(sig *types.Signature, i int) types.Type {
	params := sig.Params()
	if params.Len() == 0 {
		return nil
	}
	if sig.Variadic() && i >= params.Len()-1 {
		last := params.At(params.Len() - 1).Type()
		if sl, ok := last.(*types.Slice); ok {
			return sl.Elem()
		}
		return nil
	}
	if i >= params.Len() {
		return nil
	}
	return params.At(i).Type()
}

// capturedVar returns the name of a variable of the enclosing function
// captured by the literal, or "" when the closure is self-contained.
func capturedVar(p *Pass, outer *ast.FuncDecl, lit *ast.FuncLit) string {
	name := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := p.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Captured iff declared inside the outer function but outside
		// the literal.
		if v.Pos() >= outer.Pos() && v.Pos() <= outer.End() &&
			!(v.Pos() >= lit.Pos() && v.Pos() <= lit.End()) {
			name = v.Name()
			return false
		}
		return true
	})
	return name
}

// capHintedSlices collects slice variables the function demonstrably
// sized: assigned from make(T, …) with a length or capacity, or from a
// reuse-reslice v[:0] of an existing buffer.
func capHintedSlices(p *Pass, fn *ast.FuncDecl) map[types.Object]bool {
	hinted := map[types.Object]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok || len(asg.Lhs) != len(asg.Rhs) {
			return true
		}
		for i, lhs := range asg.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			obj := p.Info.Defs[id]
			if obj == nil {
				obj = p.Info.Uses[id]
			}
			if obj == nil {
				continue
			}
			if isCapHintExpr(p, asg.Rhs[i]) {
				hinted[obj] = true
			}
		}
		return true
	})
	return hinted
}

// isCapHintExpr matches make([]T, n[, c]) and v[:0]-style reslices.
func isCapHintExpr(p *Pass, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CallExpr:
		id, ok := e.Fun.(*ast.Ident)
		if !ok || id.Name != "make" || len(e.Args) < 2 {
			return false
		}
		b, ok := p.Info.Uses[id].(*types.Builtin)
		return ok && b.Name() == "make"
	case *ast.SliceExpr:
		// v[:0] (or v[0:0]): reusing an existing buffer's capacity.
		high, ok := e.High.(*ast.BasicLit)
		return ok && high.Value == "0"
	}
	return false
}

// checkLoopAppends flags append-onto-unhinted-slice inside any loop of
// the hot function.
func checkLoopAppends(p *Pass, fn *ast.FuncDecl, where string, hinted map[types.Object]bool) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch s := n.(type) {
		case *ast.ForStmt:
			body = s.Body
		case *ast.RangeStmt:
			body = s.Body
		default:
			return true
		}
		ast.Inspect(body, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok || len(call.Args) < 2 {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "append" {
				return true
			}
			if b, ok := p.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
				return true
			}
			target, ok := call.Args[0].(*ast.Ident)
			if !ok {
				return true // appends to fields/elements: out of scope
			}
			obj := p.Info.Uses[target]
			if obj == nil || hinted[obj] {
				return true
			}
			p.Reportf(call.Pos(),
				"append to %s in a loop of //nob:hotpath function %s without a capacity hint; preallocate with make or reuse a buffer via %s[:0]",
				target.Name, where, target.Name)
			return true
		})
		return false // the inner walk covered nested loops' bodies too
	})
}
