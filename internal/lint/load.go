package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed and type-checked package.
type Package struct {
	Path    string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	Sources map[string][]byte // file path -> raw source (for directive layout)
}

// listedPkg is the subset of `go list -json` output the loader reads.
type listedPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// ExportData maps import paths to compiled export-data files, the
// product of one `go list -export -deps` walk.  It is what lets the
// loader type-check any package of the module (and the test fixtures)
// against real dependency types without golang.org/x/tools.
type ExportData struct {
	files map[string]string
}

// Load enumerates the packages matching patterns (relative to dir, "" =
// current directory), type-checks each in-module, non-test package from
// source against build-cache export data, and returns them sorted by
// import path together with the export map (reusable for fixture
// loading).
func Load(dir string, patterns ...string) ([]*Package, *ExportData, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, nil, err
	}
	exp := &ExportData{files: map[string]string{}}
	var targets []listedPkg
	for _, p := range listed {
		if p.Error != nil {
			return nil, nil, fmt.Errorf("lint: go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exp.files[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard && p.Module != nil {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })
	pkgs := make([]*Package, 0, len(targets))
	for _, t := range targets {
		var files []string
		for _, f := range t.GoFiles {
			files = append(files, filepath.Join(t.Dir, f))
		}
		pkg, err := TypeCheck(t.ImportPath, t.Dir, files, exp)
		if err != nil {
			return nil, nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, exp, nil
}

// LoadExports runs the go list walk alone and returns the export map
// without type-checking any matched package — all the fixture tests
// need, at a fraction of Load's cost.
func LoadExports(dir string, patterns ...string) (*ExportData, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exp := &ExportData{files: map[string]string{}}
	for _, p := range listed {
		if p.Export != "" {
			exp.files[p.ImportPath] = p.Export
		}
	}
	return exp, nil
}

// goList runs `go list -e -export -deps -json` over the patterns and
// decodes the JSON stream.
func goList(dir string, patterns []string) ([]listedPkg, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("lint: go list: %w", err)
	}
	dec := json.NewDecoder(out)
	var pkgs []listedPkg
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("lint: go list: %w\n%s", err, stderr.String())
	}
	return pkgs, nil
}

// TypeCheck parses and type-checks one package from the given source
// files, resolving imports through the export map.  importPath is the
// identity given to the checked package (fixtures use synthetic paths).
func TypeCheck(importPath, dir string, files []string, exp *ExportData) (*Package, error) {
	fset := token.NewFileSet()
	pkg := &Package{Path: importPath, Dir: dir, Fset: fset, Sources: map[string][]byte{}}
	for _, name := range files {
		src, err := os.ReadFile(name)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		f, err := parser.ParseFile(fset, name, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parse: %w", err)
		}
		pkg.Files = append(pkg.Files, f)
		pkg.Sources[name] = src
	}
	if len(pkg.Files) == 0 {
		return nil, fmt.Errorf("lint: package %s has no Go files", importPath)
	}
	pkg.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exp.files[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q (fixtures may only import packages the module already uses)", path)
		}
		return os.Open(file)
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Error:    func(error) {}, // collect all, report the first below
	}
	tpkg, err := conf.Check(importPath, fset, pkg.Files, pkg.Info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %w", importPath, err)
	}
	pkg.Types = tpkg
	return pkg, nil
}

// LoadFixture type-checks the single package rooted at dir (every .go
// file in it, including _test.go-named fixtures), for the analyzer
// tests.  The synthetic import path keeps fixture packages out of the
// module namespace.
func LoadFixture(dir string, exp *ExportData) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: fixture: %w", err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(files)
	return TypeCheck("noblintfixture/"+filepath.Base(dir), dir, files, exp)
}
