package lint

import (
	"go/ast"
	"strings"
)

// commentGroupHasDirective reports whether any comment line in g is the
// directive //<name> (directives are unspaced, like //go:build).
func commentGroupHasDirective(g *ast.CommentGroup, name string) bool {
	if g == nil {
		return false
	}
	for _, c := range g.List {
		text := strings.TrimPrefix(c.Text, "//")
		// A directive may carry a trailing explanation after whitespace.
		if text == name || strings.HasPrefix(text, name+" ") || strings.HasPrefix(text, name+"\t") {
			return true
		}
	}
	return false
}

// nolintNames parses one comment's //nolint directive into the analyzer
// names it suppresses; nil when the comment is not a nolint directive.
// Accepted forms:
//
//	//nolint:maporder
//	//nolint:maporder,hotalloc // reason
//	//nolint:all // reason
func nolintNames(text string) []string {
	rest, ok := strings.CutPrefix(text, "//nolint:")
	if !ok {
		return nil
	}
	// Strip the conventional trailing reason.
	if i := strings.Index(rest, "//"); i >= 0 {
		rest = rest[:i]
	}
	var names []string
	for _, n := range strings.Split(rest, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names
}

// suppressKey identifies one (file, line, analyzer) suppression slot.
type suppressKey struct {
	file     string
	line     int
	analyzer string
}

// suppressions collects every //nolint directive of the package into a
// set of (file, line, analyzer) keys.  A directive suppresses its own
// line; a directive that is the only content of its line also
// suppresses the line below, so block-style suppression reads
//
//	//nolint:maporder // reason
//	for k := range m { ... }
func suppressions(pkg *Package) map[suppressKey]bool {
	set := map[suppressKey]bool{}
	for _, f := range pkg.Files {
		for _, g := range f.Comments {
			for _, c := range g.List {
				names := nolintNames(c.Text)
				if names == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				lines := []int{pos.Line}
				// Own-line comments cover the next source line too.
				if isOwnLine(pkg, c) {
					lines = append(lines, pos.Line+1)
				}
				for _, line := range lines {
					for _, n := range names {
						set[suppressKey{pos.Filename, line, n}] = true
					}
				}
			}
		}
	}
	return set
}

// isOwnLine reports whether comment c starts its source line (nothing
// but whitespace before it), i.e. it is not a trailing comment.
func isOwnLine(pkg *Package, c *ast.Comment) bool {
	if pkg.Fset.Position(c.Pos()).Column == 1 {
		return true
	}
	return onlyIndentBefore(pkg, c)
}

// onlyIndentBefore checks the raw source: a comment is own-line when
// nothing but whitespace precedes it on its line.
func onlyIndentBefore(pkg *Package, c *ast.Comment) bool {
	file := pkg.Fset.File(c.Pos())
	if file == nil {
		return false
	}
	line := file.Line(c.Pos())
	lineStart := file.LineStart(line)
	src, ok := pkg.Sources[file.Name()]
	if !ok {
		return false
	}
	off := file.Offset(c.Pos())
	start := file.Offset(lineStart)
	if start < 0 || off > len(src) {
		return false
	}
	return strings.TrimSpace(string(src[start:off])) == ""
}

// suppress filters out diagnostics of pkg covered by a //nolint
// directive.  Diagnostics of other packages pass through untouched.
func suppress(diags []Diagnostic, pkg *Package) []Diagnostic {
	set := suppressions(pkg)
	if len(set) == 0 {
		return diags
	}
	out := diags[:0]
	for _, d := range diags {
		if set[suppressKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}] ||
			set[suppressKey{d.Pos.Filename, d.Pos.Line, "all"}] {
			continue
		}
		out = append(out, d)
	}
	return out
}
