package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
)

// RegInitAnalyzer pins down where algorithms enter the registry:
// alg.Register / alg.MustRegister may only be called from an init()
// function in a file named register.go.  Scattered registration was how
// the pre-PR-6 tree ended up with two transpose variants racing for one
// name; funnelling every call through register.go files makes the
// registry's contents auditable with a single glob.
//
// Test files are exempt (they register throwaway algorithms), as is the
// alg package itself (MustRegister calls Register).
var RegInitAnalyzer = &Analyzer{
	Name: "reginit",
	Doc:  "alg.Register/MustRegister may only be called from init() in register.go files",
	Run:  runRegInit,
}

func runRegInit(p *Pass) {
	if p.Pkg.Path() == "netoblivious/alg" {
		return
	}
	for _, f := range p.Files {
		name := filepath.Base(p.Fset.Position(f.Pos()).Filename)
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		inRegisterFile := name == "register.go"
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := registryCallee(p, call)
			if callee == "" {
				return true
			}
			if !inRegisterFile {
				p.Reportf(call.Pos(), "alg.%s called from %s; algorithm registration belongs in a register.go file", callee, name)
				return true
			}
			if !inInit(p, f, call) {
				p.Reportf(call.Pos(), "alg.%s called outside init(); register algorithms at package initialization only", callee)
			}
			return true
		})
	}
}

// registryCallee returns "Register" or "MustRegister" when the call
// resolves to netoblivious/alg's registration entry points, else "".
func registryCallee(p *Pass, call *ast.CallExpr) string {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return ""
	}
	f, ok := p.Info.Uses[id].(*types.Func)
	if !ok || f.Pkg() == nil || f.Pkg().Path() != "netoblivious/alg" {
		return ""
	}
	if f.Name() == "Register" || f.Name() == "MustRegister" {
		return f.Name()
	}
	return ""
}

// inInit reports whether the node sits inside a top-level func init()
// of file f.
func inInit(p *Pass, f *ast.File, n ast.Node) bool {
	for _, d := range f.Decls {
		fn, ok := d.(*ast.FuncDecl)
		if !ok || fn.Body == nil || fn.Recv != nil || fn.Name.Name != "init" {
			continue
		}
		if fn.Body.Pos() <= n.Pos() && n.Pos() <= fn.Body.End() {
			return true
		}
	}
	return false
}
