// Package hotalloc exercises the hotalloc analyzer: //nob:hotpath
// functions may not call fmt, box interfaces, capture closures, or grow
// appends unhinted inside loops.
package hotalloc

import (
	"fmt"
	"strconv"
)

func record(k string, v any) {}

// route appends with a capacity hint: compliant.
//
//nob:hotpath
func route(xs []int) []string {
	out := make([]string, 0, len(xs))
	for _, x := range xs {
		out = append(out, strconv.Itoa(x))
	}
	return out
}

// reuse reslices an existing buffer: also a valid hint.
//
//nob:hotpath
func reuse(buf, xs []int) []int {
	out := buf[:0]
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// gather grows an unhinted slice once per element.
//
//nob:hotpath
func gather(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x) // want "without a capacity hint"
	}
	return out
}

// describe formats on the hot path.
//
//nob:hotpath
func describe(x int) string {
	return fmt.Sprintf("x=%d", x) // want "fmt.Sprintf"
}

// logInt boxes its int into record's any parameter.
//
//nob:hotpath
func logInt(x int) {
	record("x", x) // want "boxes"
}

// logPtr passes a pointer: it rides in the interface word, no box.
//
//nob:hotpath
func logPtr(x *int) {
	record("x", x)
}

// fields boxes into a composite literal with interface elements.
//
//nob:hotpath
func fields(x int) []any {
	return []any{x} // want "boxes"
}

// counter returns a closure capturing its parameter, forcing n to the
// heap on every call.
//
//nob:hotpath
func counter(n int) func() int {
	return func() int { return n } // want "captures n"
}

// pure returns a self-contained closure: nothing escapes.
//
//nob:hotpath
func pure() func() int {
	return func() int { return 42 }
}

// guard panics on programmer error; the cold path is exempted.
//
//nob:hotpath
func guard(x int) int {
	if x < 0 {
		//nolint:hotalloc // cold panic path may format
		panic(fmt.Sprintf("negative: %d", x))
	}
	return x
}

// cold is unannotated: the allocation rules do not apply.
func cold(xs []int) []string {
	var out []string
	for _, x := range xs {
		out = append(out, fmt.Sprintf("%d", x))
	}
	return out
}
