// Package ctxflow exercises the ctxflow analyzer: blocking loops in
// //nob:ctxloop functions must consult a context.Context.
package ctxflow

import (
	"context"
	"sync"
)

// Serve checks the context every iteration: compliant.
//
//nob:ctxloop
func Serve(ctx context.Context, work chan int) {
	for {
		select {
		case <-ctx.Done():
			return
		case w := <-work:
			_ = w
		}
	}
}

// Spin receives forever and never looks at its context.
//
//nob:ctxloop
func Spin(ctx context.Context, work chan int) {
	for { // want "never consults a context"
		<-work
	}
}

// Sweep contains only a bounded counting loop: exempt.
//
//nob:ctxloop
func Sweep(ctx context.Context, xs []int) int {
	t := 0
	for i := 0; i < len(xs); i++ {
		t += xs[i]
	}
	return t
}

type pool struct {
	ctx context.Context
}

func (p *pool) cancelled() bool { return p.ctx.Err() != nil }

// Drain consults the context transitively, through cancelled.
//
//nob:ctxloop
func (p *pool) Drain(work chan int) {
	for {
		if p.cancelled() {
			return
		}
		<-work
	}
}

// Park waits on a condition variable with no cancellation path.
//
//nob:ctxloop
func Park(mu *sync.Mutex, cond *sync.Cond, ready *bool) {
	mu.Lock()
	for !*ready { // want "never consults a context"
		cond.Wait()
	}
	mu.Unlock()
}

// Handoff is the same shape with a documented exemption.
//
//nob:ctxloop
func Handoff(cond *sync.Cond, done *bool) {
	cond.L.Lock()
	//nolint:ctxflow // released by a broadcaster that checks the context
	for !*done {
		cond.Wait()
	}
	cond.L.Unlock()
}

// Free is unannotated: nothing here is checked.
func Free(work chan int) {
	for {
		<-work
	}
}
