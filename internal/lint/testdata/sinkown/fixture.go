// Package sinkown exercises the sinkown analyzer: a StepRec handed to
// TraceSink.WriteStep surrenders its reference fields to the sink.
package sinkown

import "netoblivious/internal/core"

// flush touches only a scalar field after the handoff: the record is
// passed by value, so rec.Messages is the caller's own copy.
func flush(sink core.TraceSink, rec core.StepRec) int64 {
	_ = sink.WriteStep(rec)
	return rec.Messages
}

// leak reads a slice field the sink now owns.
func leak(sink core.TraceSink, rec core.StepRec) []int64 {
	_ = sink.WriteStep(rec)
	return rec.Degree // want "reference field Degree"
}

// spill hands the pairs to another goroutine's data structure.
func spill(sink core.TraceSink, rec core.StepRec) *core.PairList {
	_ = sink.WriteStep(rec)
	return rec.Pairs // want "reference field Pairs"
}

// resend writes the same record into two sinks.
func resend(a, b core.TraceSink, rec core.StepRec) {
	_ = a.WriteStep(rec)
	_ = b.WriteStep(rec) // want "passed to WriteStep again"
}

// rebuild reassigns after the handoff: the new record is untracked.
func rebuild(sink core.TraceSink, rec core.StepRec) *core.PairList {
	_ = sink.WriteStep(rec)
	rec = core.StepRec{}
	return rec.Pairs
}

// audit re-reads pairs under an explicit, justified exemption.
func audit(sink core.TraceSink, rec core.StepRec) int {
	_ = sink.WriteStep(rec)
	//nolint:sinkown // the sink under test is synchronous and retains nothing
	return rec.Pairs.Len()
}

// describe never hands the record off; everything is fair game.
func describe(rec core.StepRec) (int, *core.PairList) {
	return rec.Label, rec.Pairs
}
