// Package nilprobe exercises the nilprobe analyzer: exported pointer
// methods on //nob:nilsafe types must begin with a nil-receiver guard.
package nilprobe

// Gadget promises nil-safety, like obs.Probe.
//
//nob:nilsafe
type Gadget struct {
	n int
}

// Enabled uses the single-return predicate form of the guard.
func (g *Gadget) Enabled() bool { return g != nil }

// Count guards first: compliant.
func (g *Gadget) Count() int {
	if g == nil {
		return 0
	}
	return g.n
}

// Bump has no guard at all.
func (g *Gadget) Bump() { // want "nil-receiver guard"
	g.n++
}

// Late guards after already dereferencing the receiver.
func (g *Gadget) Late() int { // want "nil-receiver guard"
	v := g.n
	if g == nil {
		return 0
	}
	return v
}

// reset is unexported: internal callers hold a non-nil receiver.
func (g *Gadget) reset() { g.n = 0 }

// Snapshot has a value receiver; a nil pointer cannot reach it without
// a dereference at the call site, so it is outside the contract.
func (g Gadget) Snapshot() int { return g.n }

// Skipped documents an accepted exception.
//
//nolint:nilprobe // prototype: nil handling added with the real implementation
func (g *Gadget) Skipped() int {
	return g.n * 2
}

// Plain carries no annotation; its methods are unchecked.
type Plain struct{ n int }

// Bump on Plain needs no guard.
func (p *Plain) Bump() { p.n++ }
