// Package maporder exercises the maporder analyzer: map iteration in
// functions reachable from //nob:deterministic roots must collect and
// sort keys (or be provably order-insensitive).
package maporder

import (
	"sort"
	"strconv"
)

func line(name string, n int) string { return name + "=" + strconv.Itoa(n) }

// RenderReport iterates a map directly in a determinism root.
//
//nob:deterministic
func RenderReport(counts map[string]int) []string {
	out := make([]string, 0, len(counts))
	for name, n := range counts { // want "range over map"
		out = append(out, line(name, n))
	}
	return out
}

// RenderSorted collects keys, sorts, then emits: the compliant shape.
//
//nob:deterministic
func RenderSorted(counts map[string]int) []string {
	ks := make([]string, 0, len(counts))
	for k := range counts {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	out := make([]string, 0, len(ks))
	for _, k := range ks {
		out = append(out, line(k, counts[k]))
	}
	return out
}

// CountAll binds neither key nor value: the body cannot observe order.
//
//nob:deterministic
func CountAll(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// RenderNested reaches a violation through a same-package helper.
//
//nob:deterministic
func RenderNested(m map[string]int) []string { return renderHelper(m) }

func renderHelper(m map[string]int) []string {
	var out []string
	for k, v := range m { // want "range over map"
		out = append(out, line(k, v))
	}
	return out
}

// Sum reaches an order-insensitive iteration carrying an own-line
// suppression.
//
//nob:deterministic
func Sum(m map[string]int) int { return sum(m) }

func sum(m map[string]int) int {
	t := 0
	//nolint:maporder // addition is order-insensitive
	for _, v := range m {
		t += v
	}
	return t
}

// Checksum carries a trailing suppression on the loop line itself.
//
//nob:deterministic
func Checksum(m map[string]int) int {
	t := 0
	for _, v := range m { //nolint:maporder // xor-free sum, order-insensitive
		t += v
	}
	return t
}

// Unrooted is neither annotated nor referenced by a root: map order may
// leak into its result, but it is outside the contract.
func Unrooted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k+"!")
	}
	return out
}
