package reginit

import "netoblivious/alg"

// sideload registers from the wrong file entirely — even from init().
func init() {
	alg.MustRegister(alg.Algorithm{Name: "fixture-side"}) // want "belongs in a register.go file"
}

// helper shows the documented escape hatch.
func helper() {
	//nolint:reginit // test helper: the registry is reset after each case
	_ = alg.Register(alg.Algorithm{Name: "fixture-helper"})
}
