// Package reginit exercises the reginit analyzer: registry calls are
// confined to init() functions in register.go files.
package reginit

import "netoblivious/alg"

func init() {
	alg.MustRegister(alg.Algorithm{Name: "fixture-ok"})
}

// LateRegister is in the right file but not in init().
func LateRegister() {
	_ = alg.Register(alg.Algorithm{Name: "fixture-late"}) // want "outside init"
}
