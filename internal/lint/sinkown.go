package lint

import (
	"go/ast"
	"go/types"
)

// SinkOwnAnalyzer enforces the TraceSink.WriteStep ownership-transfer
// contract: once a StepRec has been handed to WriteStep, the caller
// must not touch its reference-carrying parts again.  Streaming sinks
// (the incremental codec, the ring sink) retain rec.Degree and
// rec.Pairs past the call and may hand them to a flush goroutine; a
// caller that keeps reading them races with that, and one that mutates
// them corrupts the recorded trace.
//
// Because WriteStep takes the record by value, fields of basic type
// (rec.Label, rec.Messages, rec.Superstep …) are the caller's own copy
// and remain fair game — the analyzer only flags uses of the whole
// record or of its reference fields (slices, pointers, maps) after the
// call.  Reassigning the variable starts a fresh record and resets the
// tracking.
var SinkOwnAnalyzer = &Analyzer{
	Name: "sinkown",
	Doc:  "a StepRec passed to TraceSink.WriteStep must not have its reference fields used afterwards",
	Run:  runSinkOwn,
}

func runSinkOwn(p *Pass) {
	decls := funcDecls(p)
	for _, fn := range decls {
		checkSinkOwnership(p, fn)
	}
}

// checkSinkOwnership walks one function body in source order, tracking
// which StepRec variables have been surrendered to WriteStep.
func checkSinkOwnership(p *Pass, fn *ast.FuncDecl) {
	surrendered := map[types.Object]bool{}
	// handoff marks the argument identifier of each WriteStep call, so
	// the call that performs the transfer is not itself flagged.
	handoff := map[*ast.Ident]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// Reassignment of a tracked variable starts a new record.
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					obj := p.Info.Defs[id]
					if obj == nil {
						obj = p.Info.Uses[id]
					}
					if obj != nil && surrendered[obj] {
						delete(surrendered, obj)
					}
				}
			}
			// Still need to examine the RHS for uses; continue below.
		case *ast.CallExpr:
			if isWriteStepCall(p, n) && len(n.Args) >= 1 {
				if id, ok := n.Args[0].(*ast.Ident); ok {
					if obj := p.Info.Uses[id]; obj != nil {
						if surrendered[obj] {
							p.Reportf(id.Pos(),
								"%s passed to WriteStep again after an earlier handoff; its reference fields now belong to the first sink",
								id.Name)
						}
						handoff[id] = true
						surrendered[obj] = true
					}
				}
			}
		case *ast.Ident:
			if handoff[n] {
				return true
			}
			obj := p.Info.Uses[n]
			if obj == nil || !surrendered[obj] {
				return true
			}
			if use, bad := postCallUse(p, fn, n); bad {
				p.Reportf(n.Pos(),
					"%s of %s after it was passed to WriteStep; the sink owns the record's reference fields from that point",
					use, n.Name)
			}
			return true
		}
		return true
	})
}

// isWriteStepCall matches method calls named WriteStep whose first
// parameter is core.StepRec (the TraceSink contract, on the interface
// or any concrete sink).
func isWriteStepCall(p *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "WriteStep" {
		return false
	}
	f, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 1 {
		return false
	}
	return isNamedType(sig.Params().At(0).Type(), "netoblivious/internal/core", "StepRec")
}

// postCallUse classifies a use of a surrendered record.  Selecting a
// basic-typed field is the caller reading its own by-value copy and is
// allowed; everything else — whole-record use, reference-field access —
// is an ownership violation.  The second result reports whether to flag.
func postCallUse(p *Pass, fn *ast.FuncDecl, id *ast.Ident) (string, bool) {
	parent := selectorParent(fn, id)
	if parent == nil {
		return "use", true // whole-record use (copy, pass, address-of)
	}
	selT := p.TypeOf(parent)
	if selT == nil {
		return "use", true
	}
	if _, basic := selT.Underlying().(*types.Basic); basic {
		return "", false // scalar field: caller's own copy
	}
	return "use of reference field " + parent.Sel.Name, true
}

// selectorParent finds the SelectorExpr whose X is exactly id, if any.
func selectorParent(fn *ast.FuncDecl, id *ast.Ident) *ast.SelectorExpr {
	var out *ast.SelectorExpr
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if out != nil {
			return false
		}
		if sel, ok := n.(*ast.SelectorExpr); ok && sel.X == id {
			out = sel
			return false
		}
		return true
	})
	return out
}
