package lint

import (
	"path/filepath"
	"regexp"
	"sync"
	"testing"
)

// repoRoot is the module root, two levels above this package.
var repoRoot = filepath.Join("..", "..")

var (
	expOnce sync.Once
	expData *ExportData
	expErr  error
)

// loadExports builds the export map once per test binary; every fixture
// package resolves its imports (including module-internal ones) from it.
func loadExports(t *testing.T) *ExportData {
	t.Helper()
	expOnce.Do(func() {
		expData, expErr = LoadExports(repoRoot, "./...")
	})
	if expErr != nil {
		t.Fatalf("loading export data: %v", expErr)
	}
	return expData
}

var wantRe = regexp.MustCompile(`// want "([^"]+)"`)

type wantKey struct {
	file string
	line int
}

// parseWants collects the fixture's `// want "regex"` expectations,
// keyed by the line the comment sits on.
func parseWants(t *testing.T, pkg *Package) map[wantKey]*regexp.Regexp {
	t.Helper()
	wants := map[wantKey]*regexp.Regexp{}
	for _, f := range pkg.Files {
		for _, g := range f.Comments {
			for _, c := range g.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("bad want pattern %q: %v", m[1], err)
				}
				pos := pkg.Fset.Position(c.Pos())
				wants[wantKey{pos.Filename, pos.Line}] = re
			}
		}
	}
	return wants
}

// runFixture loads testdata/<analyzer name>, runs the analyzer through
// the same suppression path as noblint, and matches the diagnostics
// against the fixture's want comments — both directions: no unexpected
// diagnostic, no unmatched expectation.
func runFixture(t *testing.T, a *Analyzer) {
	t.Helper()
	exp := loadExports(t)
	pkg, err := LoadFixture(filepath.Join("testdata", a.Name), exp)
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	wants := parseWants(t, pkg)
	if len(wants) == 0 {
		t.Fatalf("fixture for %s declares no want expectations", a.Name)
	}
	for _, d := range RunAnalyzers([]*Package{pkg}, []*Analyzer{a}) {
		key := wantKey{d.Pos.Filename, d.Pos.Line}
		if re, ok := wants[key]; ok && re.MatchString(d.Message) {
			delete(wants, key)
			continue
		}
		t.Errorf("unexpected diagnostic: %s", d)
	}
	for k, re := range wants {
		t.Errorf("%s:%d: want diagnostic matching %q, got none", k.file, k.line, re)
	}
}

func TestMapOrderFixture(t *testing.T) { runFixture(t, MapOrderAnalyzer) }
func TestNilProbeFixture(t *testing.T) { runFixture(t, NilProbeAnalyzer) }
func TestCtxFlowFixture(t *testing.T)  { runFixture(t, CtxFlowAnalyzer) }
func TestSinkOwnFixture(t *testing.T)  { runFixture(t, SinkOwnAnalyzer) }
func TestRegInitFixture(t *testing.T)  { runFixture(t, RegInitAnalyzer) }
func TestHotAllocFixture(t *testing.T) { runFixture(t, HotAllocAnalyzer) }

// TestRepoIsLintClean is the meta-test backing CI's lint job: the full
// suite over the whole module must produce zero diagnostics.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide analysis skipped in -short mode")
	}
	pkgs, _, err := Load(repoRoot, "./...")
	if err != nil {
		t.Fatalf("loading repository: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; pattern ./... seems wrong", len(pkgs))
	}
	for _, d := range RunAnalyzers(pkgs, Analyzers()) {
		t.Errorf("noblint: %s", d)
	}
}

func TestAnalyzerByName(t *testing.T) {
	for _, a := range Analyzers() {
		got, err := AnalyzerByName(a.Name)
		if err != nil || got != a {
			t.Errorf("AnalyzerByName(%q) = %v, %v", a.Name, got, err)
		}
	}
	if _, err := AnalyzerByName("nope"); err == nil {
		t.Error("AnalyzerByName(nope) succeeded; want error listing the suite")
	}
}

func TestNolintParsing(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"//nolint:maporder", []string{"maporder"}},
		{"//nolint:maporder,hotalloc // reason", []string{"maporder", "hotalloc"}},
		{"//nolint:all // reason", []string{"all"}},
		{"// nolint:maporder", nil}, // spaced: not a directive
		{"//nolint", nil},           // bare nolint without names is ignored
		{"// a comment", nil},
	}
	for _, c := range cases {
		got := nolintNames(c.in)
		if len(got) != len(c.want) {
			t.Errorf("nolintNames(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("nolintNames(%q) = %v, want %v", c.in, got, c.want)
			}
		}
	}
}
