// Package lint is the repository's static-analysis suite: a set of
// analyzers that machine-check the invariants the rest of the codebase
// documents in prose — determinism of schedules and codecs at any
// GOMAXPROCS, nil-safety of obs.Probe, context consultation in engine
// and worker loops, StepRec ownership transfer into trace sinks,
// init-only algorithm registration, and allocation discipline on
// annotated hot paths.  cmd/noblint runs every analyzer over ./... and
// CI fails the build on any diagnostic.
//
// The framework deliberately mirrors the golang.org/x/tools/go/analysis
// shape (Analyzer, Pass, positional diagnostics) but is built on the
// standard library alone: packages are enumerated with `go list -export
// -deps -json`, parsed with go/parser, and type-checked with go/types
// against the build cache's export data.  The container this repository
// grows in has no module proxy access, so the x/tools dependency the
// suite would normally take is reimplemented in ~300 lines here; the
// analyzer sources would port to go/analysis mechanically.
//
// # Annotations
//
// Analyzers key off machine-readable comment directives placed in the
// doc comment of a function or type declaration:
//
//	//nob:deterministic  — byte-determinism root (maporder walks its
//	                       same-package callees)
//	//nob:nilsafe        — every exported pointer method must begin
//	                       with a nil-receiver guard (nilprobe)
//	//nob:ctxloop        — every loop must consult a context.Context
//	                       on some path (ctxflow)
//	//nob:hotpath        — no fmt calls, interface boxing, escaping
//	                       closure captures or unhinted append growth
//	                       (hotalloc)
//
// # Suppression
//
// A diagnostic is suppressed by a directive on the flagged line, or on
// a comment line immediately above it:
//
//	//nolint:maporder // iteration feeds an order-insensitive sum
//
// The analyzer list after the colon is comma-separated; "all"
// suppresses every analyzer.  A reason after a second "//" is expected
// by convention (README, "Static analysis") and review should reject
// bare suppressions.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one invariant checker.  Run inspects a type-checked
// package through the Pass and reports findings with Pass.Reportf.
type Analyzer struct {
	// Name is the identifier used in diagnostics and //nolint directives.
	Name string
	// Doc is a one-paragraph description of the enforced invariant.
	Doc string
	// Run performs the analysis on one package.
	Run func(*Pass)
}

// Diagnostic is one reported finding, carrying its resolved position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the static type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.Info.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// FuncAnnotated reports whether fn's doc comment carries //nob:<name>.
func FuncAnnotated(fn *ast.FuncDecl, name string) bool {
	return commentGroupHasDirective(fn.Doc, "nob:"+name)
}

// Analyzers returns the full suite, sorted by name.
func Analyzers() []*Analyzer {
	all := []*Analyzer{
		MapOrderAnalyzer,
		NilProbeAnalyzer,
		CtxFlowAnalyzer,
		SinkOwnAnalyzer,
		RegInitAnalyzer,
		HotAllocAnalyzer,
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Name < all[j].Name })
	return all
}

// AnalyzerByName resolves one analyzer; the error enumerates the names.
func AnalyzerByName(name string) (*Analyzer, error) {
	var names []string
	for _, a := range Analyzers() {
		if a.Name == name {
			return a, nil
		}
		names = append(names, a.Name)
	}
	return nil, fmt.Errorf("lint: unknown analyzer %q (have %s)", name, strings.Join(names, ", "))
}

// RunAnalyzers applies every analyzer to every package and returns the
// surviving (non-suppressed) diagnostics sorted by position.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &diags,
			}
			a.Run(pass)
		}
		diags = suppress(diags, pkg)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}
