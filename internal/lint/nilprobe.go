package lint

import (
	"go/ast"
	"go/types"
)

// NilProbeAnalyzer enforces the probe contract: every exported method
// with a pointer receiver on *obs.Probe — and on any type whose
// declaration is annotated //nob:nilsafe — must begin with a
// nil-receiver guard, so instrumented code can thread a nil probe at
// zero cost.  Accepted openings:
//
//	if p == nil { return ... }     // guard statement first
//	return p != nil                // single-return predicate methods
//
// The guard must be the method's first statement: a nil check after any
// other work defeats the "free on the nil path" guarantee PR 8's
// benchmarks gate.
var NilProbeAnalyzer = &Analyzer{
	Name: "nilprobe",
	Doc:  "exported pointer methods on //nob:nilsafe types must start with a nil-receiver guard",
	Run:  runNilProbe,
}

// nilsafeHardcoded lists types under the contract even without their
// annotation, so deleting a comment cannot silently drop the check.
var nilsafeHardcoded = map[[2]string]bool{
	{"netoblivious/internal/obs", "Probe"}: true,
}

func runNilProbe(p *Pass) {
	targets := map[string]bool{}
	for key := range nilsafeHardcoded {
		if p.Pkg.Path() == key[0] {
			targets[key[1]] = true
		}
	}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				// The annotation may sit on the type spec or, for a
				// single-spec declaration, on the GenDecl.
				if commentGroupHasDirective(ts.Doc, "nob:nilsafe") ||
					(len(gd.Specs) == 1 && commentGroupHasDirective(gd.Doc, "nob:nilsafe")) {
					targets[ts.Name.Name] = true
				}
			}
		}
	}
	if len(targets) == 0 {
		return
	}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil || fn.Recv == nil || !fn.Name.IsExported() {
				continue
			}
			tname, pointer := receiverType(p, fn)
			if !pointer || !targets[tname] {
				continue
			}
			recv := recvIdent(fn)
			if recv == nil {
				p.Reportf(fn.Pos(), "exported method %s on nil-safe type *%s has an anonymous receiver and cannot guard against nil", fn.Name.Name, tname)
				continue
			}
			if !startsWithNilGuard(p, fn, recv) {
				p.Reportf(fn.Pos(), "exported method %s on nil-safe type *%s must begin with a nil-receiver guard (if %s == nil { return ... })", fn.Name.Name, tname, recv.Name)
			}
		}
	}
}

// receiverType resolves the receiver's named type and pointer-ness.
func receiverType(p *Pass, fn *ast.FuncDecl) (string, bool) {
	obj, ok := p.Info.Defs[fn.Name].(*types.Func)
	if !ok {
		return "", false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	t := sig.Recv().Type()
	ptr, isPtr := t.(*types.Pointer)
	if !isPtr {
		return "", false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return "", false
	}
	return named.Obj().Name(), true
}

// startsWithNilGuard reports whether the method's first statement
// guards the nil receiver.
func startsWithNilGuard(p *Pass, fn *ast.FuncDecl, recv *ast.Ident) bool {
	if len(fn.Body.List) == 0 {
		return false
	}
	recvObj := p.Info.Defs[recv]
	switch s := fn.Body.List[0].(type) {
	case *ast.IfStmt:
		// if recv == nil { ...; return }
		if !isRecvNilCompare(p, s.Cond, recvObj, "==") {
			return false
		}
		if len(s.Body.List) == 0 {
			return false
		}
		_, isRet := s.Body.List[len(s.Body.List)-1].(*ast.ReturnStmt)
		return isRet
	case *ast.ReturnStmt:
		// return recv != nil (or any result derived from the comparison)
		for _, r := range s.Results {
			found := false
			ast.Inspect(r, func(n ast.Node) bool {
				if e, ok := n.(ast.Expr); ok {
					if isRecvNilCompare(p, e, recvObj, "!=") || isRecvNilCompare(p, e, recvObj, "==") {
						found = true
						return false
					}
				}
				return true
			})
			if found {
				return true
			}
		}
	}
	return false
}

// isRecvNilCompare matches `recv <op> nil` / `nil <op> recv`.
func isRecvNilCompare(p *Pass, e ast.Expr, recvObj types.Object, op string) bool {
	be, ok := e.(*ast.BinaryExpr)
	if !ok || be.Op.String() != op {
		return false
	}
	isRecv := func(x ast.Expr) bool {
		id, ok := x.(*ast.Ident)
		return ok && recvObj != nil && p.Info.Uses[id] == recvObj
	}
	isNil := func(x ast.Expr) bool {
		id, ok := x.(*ast.Ident)
		if !ok {
			return false
		}
		_, builtin := p.Info.Uses[id].(*types.Nil)
		return builtin
	}
	return (isRecv(be.X) && isNil(be.Y)) || (isNil(be.X) && isRecv(be.Y))
}
