package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CtxFlowAnalyzer checks that functions annotated //nob:ctxloop — the
// engine superstep loops and the service job-queue workers — actually
// consult a context inside every for loop they contain.  A superstep
// loop that never looks at Options.Ctx turns cancellation into a hang:
// the daemon's DELETE /jobs/{id} returns 202 and the job spins forever.
//
// Checked loops are the ones that can actually stall: `for { … }` with
// no condition, and any loop whose body blocks (sync.Cond.Wait, channel
// send or receive, select).  Bounded counting sweeps — `for r := lo;
// r < hi; r++` over a VP block — terminate on their own and are exempt.
//
// A checked loop passes when its body references a
// context.Context-typed expression directly, or references (calls,
// passes, or takes a method value of) a same-package function that
// transitively does.  That matches how the engines are written: the
// block-engine worker checks ctx through barArrive → coordinate →
// ctxErr rather than inline.
var CtxFlowAnalyzer = &Analyzer{
	Name: "ctxflow",
	Doc:  "//nob:ctxloop functions must consult a context.Context in every blocking loop",
	Run:  runCtxFlow,
}

func runCtxFlow(p *Pass) {
	decls := funcDecls(p)
	// Fixed point: which package functions touch a context anywhere in
	// their bodies, directly or via same-package references.
	touches := map[*types.Func]bool{}
	for obj, fn := range decls {
		if bodyTouchesContext(p, fn.Body) {
			touches[obj] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for obj, fn := range decls {
			if touches[obj] {
				continue
			}
			for _, ref := range samePkgRefs(p, fn) {
				if touches[ref] {
					touches[obj] = true
					changed = true
					break
				}
			}
		}
	}
	for obj, fn := range decls {
		if !FuncAnnotated(fn, "ctxloop") {
			continue
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			var body *ast.BlockStmt
			unconditional := false
			switch s := n.(type) {
			case *ast.ForStmt:
				body = s.Body
				unconditional = s.Cond == nil
			case *ast.RangeStmt:
				body = s.Body
			default:
				return true
			}
			if !unconditional && !loopBlocks(p, body) {
				return true // bounded sweep: terminates on its own
			}
			if !loopConsultsContext(p, body, touches) {
				p.Reportf(n.Pos(),
					"blocking loop in //nob:ctxloop function %s never consults a context.Context; cancellation cannot stop it",
					obj.Name())
			}
			// Keep walking: each nested loop is judged on its own body.
			return true
		})
	}
}

// bodyTouchesContext reports whether any expression in body has type
// context.Context (a ctx variable, Options.Ctx field, ctx.Err() call
// receiver, and so on).
func bodyTouchesContext(p *Pass, body *ast.BlockStmt) bool {
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if isContextType(p.TypeOf(e)) {
			found = true
			return false
		}
		return true
	})
	return found
}

// loopBlocks reports whether the loop body contains a blocking
// primitive: a channel operation, a select, or a sync.Cond Wait.
func loopBlocks(p *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if t := p.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
				if isNamedType(p.TypeOf(sel.X), "sync", "Cond") {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// loopConsultsContext reports whether the loop body references a
// context directly or references a same-package function known to.
func loopConsultsContext(p *Pass, body *ast.BlockStmt, touches map[*types.Func]bool) bool {
	if bodyTouchesContext(p, body) {
		return true
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if f, ok := p.Info.Uses[id].(*types.Func); ok && f.Pkg() == p.Pkg && touches[f.Origin()] {
			found = true
			return false
		}
		return true
	})
	return found
}
