package lint

import (
	"go/ast"
	"go/types"
)

// MapOrderAnalyzer flags `for range` over a map inside any function
// reachable (through same-package references) from a byte-determinism
// root — a function annotated //nob:deterministic.  The repository's
// deterministic-output surfaces (CompileSchedule, the network routing
// entry points, the trace codecs, the /metrics renderers and the Chrome
// trace export) carry the annotation, because their output is cache
// keys and golden-compared artifacts: one map-ordered iteration there
// is a phantom nondeterminism of exactly the kind the old simulator
// shipped.
//
// Two shapes are exempt without a directive, because map order cannot
// leak through them:
//
//   - the collect-keys idiom, `for k := range m { ks = append(ks, k) }`,
//     whose product is sorted before use (the analyzer checks the shape,
//     not the later sort — pair it with sort.Strings or slices.Sort);
//   - `for range m { ... }` with neither key nor value bound: the body
//     runs len(m) identical times.
//
// Anything else needs `//nolint:maporder // reason`.
var MapOrderAnalyzer = &Analyzer{
	Name: "maporder",
	Doc:  "map iteration in code reachable from a //nob:deterministic root must collect-and-sort keys",
	Run:  runMapOrder,
}

func runMapOrder(p *Pass) {
	decls := funcDecls(p)
	// Roots: annotated declarations.
	roots := map[*types.Func]bool{}
	for obj, fn := range decls {
		if FuncAnnotated(fn, "deterministic") {
			roots[obj] = true
		}
	}
	if len(roots) == 0 {
		return
	}
	// Reachability over same-package references, remembering one root
	// per reached function for the diagnostic.
	via := map[*types.Func]*types.Func{}
	var queue []*types.Func
	for r := range roots {
		via[r] = r
		queue = append(queue, r)
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		fn, ok := decls[cur]
		if !ok {
			continue
		}
		for _, callee := range samePkgRefs(p, fn) {
			if _, seen := via[callee]; !seen {
				via[callee] = via[cur]
				queue = append(queue, callee)
			}
		}
	}
	for obj, root := range via {
		fn, ok := decls[obj]
		if !ok {
			continue
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if mapRangeIsBenign(p, rng) {
				return true
			}
			p.Reportf(rng.Pos(),
				"range over map in %s, reachable from deterministic-output root %s; collect keys and sort them first",
				obj.Name(), root.Name())
			return true
		})
	}
}

// mapRangeIsBenign recognizes the two order-insensitive map-range
// shapes described in the analyzer doc.
func mapRangeIsBenign(p *Pass, rng *ast.RangeStmt) bool {
	keyID, keyBound := boundIdent(rng.Key)
	_, valBound := boundIdent(rng.Value)
	if !keyBound && !valBound {
		// for range m {}: the body cannot observe the order.
		return true
	}
	if valBound || !keyBound || len(rng.Body.List) != 1 {
		return false
	}
	// Exactly `ks = append(ks, k)` (the key alone, no derived values).
	asg, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	fun, ok := call.Fun.(*ast.Ident)
	if !ok || fun.Name != "append" {
		return false
	}
	if b, ok := p.Info.Uses[fun].(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	arg, ok := call.Args[1].(*ast.Ident)
	if !ok || keyID == nil {
		return false
	}
	return p.Info.Uses[arg] == p.Info.Defs[keyID]
}

// boundIdent resolves a range clause slot to its identifier, reporting
// whether the slot binds a usable name (i.e. is present and not "_").
func boundIdent(e ast.Expr) (*ast.Ident, bool) {
	if e == nil {
		return nil, false
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil, true // destructuring into a selector/index: bound
	}
	if id.Name == "_" {
		return nil, false
	}
	return id, true
}
