// Package colls provides cluster-scoped collective operations on the
// specification model M(v): broadcast, reduce, all-reduce, all-gather and
// all-to-all within a label-cluster.  They are the building blocks the
// Section 4 algorithms hand-roll (quadrant replication in matrix
// multiplication, gather-based base cases in Columnsort) and the
// "prefix-like computations" of the ascend–descend protocol (Section 5),
// packaged for downstream users of the library.
//
// Every collective must be invoked by all VPs of the machine in the same
// program position (like any superstep); each VP participates in the
// collective of its own label-cluster.  The label discipline follows the
// model: a collective within label-clusters uses supersteps labeled
// label, label+1, ..., so messages never leave the cluster.
package colls

import (
	"netoblivious/internal/core"
)

// Broadcast distributes the value held by the cluster's first VP to every
// VP of the label-cluster using binary doubling: log(cluster size)
// supersteps of degree 1 with ascending labels — the network-oblivious
// κ=2 broadcast of Section 4.5 applied per cluster.  Returns the
// broadcast value on every member.
func Broadcast[P any](vp *core.VP[P], label int, val P) P {
	size := vp.ClusterSize(label)
	base := vp.ClusterFirst(label)
	logV := vp.LogV()
	pos := vp.ID() - base
	have := pos == 0
	for d := size; d > 1; d /= 2 {
		lab := logV - core.Log2(d)
		if lab < label {
			lab = label
		}
		if have && pos%d == 0 {
			vp.Send(base+pos+d/2, val)
		}
		vp.Sync(lab)
		if !have && pos%(d/2) == 0 {
			if m, ok := vp.Receive(); ok {
				val = m
				have = true
			}
		}
	}
	return val
}

// Reduce combines every cluster member's value with op, leaving the result
// on the cluster's first VP (returned there; other VPs receive their
// partial).  log(cluster size) supersteps of degree 1, descending tree.
func Reduce[P any](vp *core.VP[P], label int, val P, op func(a, b P) P) P {
	size := vp.ClusterSize(label)
	base := vp.ClusterFirst(label)
	logV := vp.LogV()
	pos := vp.ID() - base
	for d := 2; d <= size; d *= 2 {
		lab := logV - core.Log2(d)
		if lab < label {
			lab = label
		}
		if pos%d == d/2 {
			vp.Send(base+pos-d/2, val)
		}
		vp.Sync(lab)
		if pos%d == 0 {
			if m, ok := vp.Receive(); ok {
				val = op(val, m)
			}
		}
	}
	return val
}

// AllReduce combines every cluster member's value and returns the result
// on all of them, via a butterfly: log(cluster size) supersteps of
// degree 1.  op must be associative and commutative.
func AllReduce[P any](vp *core.VP[P], label int, val P, op func(a, b P) P) P {
	size := vp.ClusterSize(label)
	logV := vp.LogV()
	for d := size / 2; d >= 1; d /= 2 {
		// Exchange with the partner differing in the bit of weight d;
		// partners share all bits above, so the label is logV-log2(2d).
		lab := logV - core.Log2(2*d)
		if lab < label {
			lab = label
		}
		partner := vp.ID() ^ d
		vp.Send(partner, val)
		vp.Sync(lab)
		m, ok := vp.Receive()
		if !ok {
			panic("colls: AllReduce exchange delivered no value")
		}
		val = op(val, m)
	}
	return val
}

// AllGather returns every cluster member's value, indexed by cluster
// position, using one superstep of degree cluster-size−1 (the direct
// algorithm; for m members this is an (m−1)-relation).
func AllGather[P any](vp *core.VP[P], label int, val P) []P {
	size := vp.ClusterSize(label)
	base := vp.ClusterFirst(label)
	pos := vp.ID() - base
	for t := 0; t < size; t++ {
		if t != pos {
			vp.Send(base+t, val)
		}
	}
	vp.Sync(label)
	out := make([]P, size)
	out[pos] = val
	for _, msg := range vp.Inbox() {
		out[msg.Src-base] = msg.Payload
	}
	return out
}

// AllToAll delivers vals[t] to cluster member t and returns the values
// received, indexed by sender position: one superstep forming a
// (cluster size−1)-relation.  len(vals) must equal the cluster size.
func AllToAll[P any](vp *core.VP[P], label int, vals []P) []P {
	size := vp.ClusterSize(label)
	base := vp.ClusterFirst(label)
	pos := vp.ID() - base
	if len(vals) != size {
		panic("colls: AllToAll needs one value per cluster member")
	}
	for t := 0; t < size; t++ {
		if t != pos {
			vp.Send(base+t, vals[t])
		}
	}
	vp.Sync(label)
	out := make([]P, size)
	out[pos] = vals[pos]
	for _, msg := range vp.Inbox() {
		out[msg.Src-base] = msg.Payload
	}
	return out
}
