package colls

import (
	"testing"

	"netoblivious/internal/core"
	"netoblivious/internal/eval"
)

func add(a, b int64) int64 { return a + b }

// TestBroadcastWithinClusters: two independent 1-clusters broadcast their
// own roots' values.
func TestBroadcastWithinClusters(t *testing.T) {
	const v = 16
	got := make([]int64, v)
	_, err := core.Run(v, func(vp *core.VP[int64]) {
		val := int64(0)
		if vp.ID() == vp.ClusterFirst(1) {
			val = int64(100 + vp.ID())
		}
		got[vp.ID()] = Broadcast(vp, 1, val)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range got {
		want := int64(100)
		if i >= v/2 {
			want = 100 + v/2
		}
		if g != want {
			t.Errorf("VP %d got %d, want %d", i, g, want)
		}
	}
}

// TestBroadcastGlobal: label 0 covers the whole machine; degree 1 per
// superstep.
func TestBroadcastGlobal(t *testing.T) {
	const v = 32
	got := make([]int64, v)
	tr, err := core.Run(v, func(vp *core.VP[int64]) {
		val := int64(0)
		if vp.ID() == 0 {
			val = 7
		}
		got[vp.ID()] = Broadcast(vp, 0, val)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range got {
		if g != 7 {
			t.Fatalf("VP %d got %d", i, g)
		}
	}
	for _, rec := range tr.Steps {
		if rec.Degree[tr.LogV] > 1 {
			t.Errorf("broadcast superstep degree %d, want <= 1", rec.Degree[tr.LogV])
		}
	}
	if n := tr.NumSupersteps(); n != 5 {
		t.Errorf("supersteps = %d, want log v = 5", n)
	}
}

// TestReduce leaves the cluster sum on the first VP.
func TestReduce(t *testing.T) {
	const v = 16
	var got int64
	_, err := core.Run(v, func(vp *core.VP[int64]) {
		r := Reduce(vp, 0, int64(vp.ID()), add)
		if vp.ID() == 0 {
			got = r
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(v * (v - 1) / 2); got != want {
		t.Errorf("reduce = %d, want %d", got, want)
	}
}

// TestAllReduce: every VP gets the cluster sum; butterfly labels stay
// legal at every level.
func TestAllReduce(t *testing.T) {
	const v = 32
	got := make([]int64, v)
	_, err := core.Run(v, func(vp *core.VP[int64]) {
		got[vp.ID()] = AllReduce(vp, 2, int64(vp.ID()), add)
	})
	if err != nil {
		t.Fatal(err)
	}
	m := v / 4 // 2-cluster size
	for i, g := range got {
		base := i / m * m
		want := int64(m*base) + int64(m*(m-1)/2)
		if g != want {
			t.Errorf("VP %d allreduce = %d, want %d", i, g, want)
		}
	}
}

// TestAllGather returns position-indexed values.
func TestAllGather(t *testing.T) {
	const v = 8
	_, err := core.Run(v, func(vp *core.VP[int64]) {
		all := AllGather(vp, 1, int64(vp.ID()*10))
		base := vp.ClusterFirst(1)
		for i, x := range all {
			if x != int64((base+i)*10) {
				panic("allgather wrong value")
			}
		}
		vp.Sync(0)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAllToAll: VP i sends i·100+t to member t.
func TestAllToAll(t *testing.T) {
	const v = 8
	_, err := core.Run(v, func(vp *core.VP[int64]) {
		size := vp.ClusterSize(0)
		vals := make([]int64, size)
		for tgt := range vals {
			vals[tgt] = int64(vp.ID()*100 + tgt)
		}
		got := AllToAll(vp, 0, vals)
		for src, x := range got {
			if x != int64(src*100+vp.ID()) {
				panic("alltoall wrong value")
			}
		}
		vp.Sync(0)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCollectiveCosts checks the H profile: tree collectives cost
// Θ((1+σ)·log p), the direct all-gather Θ(m + σ).
func TestCollectiveCosts(t *testing.T) {
	const v = 64
	trTree, err := core.Run(v, func(vp *core.VP[int64]) {
		_ = AllReduce(vp, 0, int64(vp.ID()), add)
	})
	if err != nil {
		t.Fatal(err)
	}
	trGather, err := core.Run(v, func(vp *core.VP[int64]) {
		_ = AllGather(vp, 0, int64(vp.ID()))
		vp.Sync(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	// AllReduce folded on p: the log p butterfly stages with distance
	// >= v/p cross blocks with every VP sending once, h = v/p each.
	for p := 2; p <= v; p *= 4 {
		h := eval.H(trTree, p, 0)
		want := float64(v/p) * float64(core.Log2(p))
		if h != want {
			t.Errorf("allreduce H(%d) = %v, want %v", p, h, want)
		}
		// AllGather folded on p: each processor's v/p VPs each send
		// v − v/p block-leaving messages: h = (v/p)·(v − v/p).
		hg := eval.H(trGather, p, 0)
		wantG := float64(v/p) * float64(v-v/p)
		if hg != wantG {
			t.Errorf("allgather H(%d) = %v, want %v", p, hg, wantG)
		}
	}
}
