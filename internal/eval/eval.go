// Package eval implements the evaluation model M(p, σ) of the
// network-oblivious framework (Section 2 of Bilardi et al., "Network-
// Oblivious Algorithms", J.ACM 2016) and the communication metrics derived
// from a specification-model trace: communication complexity H(n, p, σ),
// wiseness α (Definition 3.2) and fullness γ (Definition 5.2).
//
// The evaluation model is a BSP with bandwidth parameter g = 1 and
// latency/synchronization parameter σ: the cost of a superstep of degree h
// is h + σ, regardless of its label.  A network-oblivious algorithm
// specified on M(v(n)) is evaluated on M(p, σ), p <= v(n), through the
// folding mechanism; all quantities here are exact functions of the
// recorded core.Trace.
package eval

import (
	"fmt"
	"math"

	"netoblivious/internal/core"
)

// Folding is the view of an M(v) algorithm folded onto p processors: the
// per-label superstep counts S_i(n) and cumulative degrees F_i(n, p) that
// the framework's two cost measures are built from.
type Folding struct {
	// P is the number of processors of the folded machine (a power of
	// two, 1 < P <= v).
	P int
	// LogP is log2(P).
	LogP int
	// F[i], 0 <= i < LogP, is the cumulative degree of all i-supersteps
	// on the folded machine.
	F []int64
	// S[i], 0 <= i < LabelBound, is the number of i-supersteps (fold
	// independent).  Only entries with i < LogP enter the cost measures.
	S []int64
}

// foldView is the accessor pair shared by *core.Trace and
// *core.FoldSummary; every metric in this package is a function of it,
// so each has a Trace entry point and a Summary ("Of") entry point over
// the same loop.
type foldView interface {
	F(p int) []int64
	S() []int64
}

// Fold computes the folding of a recorded algorithm onto p processors.
func Fold(tr *core.Trace, p int) Folding {
	lp := core.Log2(p)
	if lp < 1 || lp > tr.LogV {
		panic(fmt.Sprintf("eval: Fold: p=%d invalid for v=%d", p, tr.V))
	}
	return Folding{P: p, LogP: lp, F: tr.F(p), S: tr.S()}
}

// FoldOf is Fold over a FoldSummary, so folded metrics of a streamed
// trace never need the steps in memory.
func FoldOf(fs *core.FoldSummary, p int) Folding {
	lp := core.Log2(p)
	if lp < 1 || lp > fs.LogV() {
		panic(fmt.Sprintf("eval: FoldOf: p=%d invalid for v=%d", p, fs.V()))
	}
	return Folding{P: p, LogP: lp, F: fs.F(p), S: fs.S()}
}

// H returns the communication complexity H_A(n, p, σ) of the folded
// algorithm on the evaluation model M(p, σ) (Equation 1 of the paper):
//
//	H = Σ_{i=0}^{log p - 1} (F_i(n, p) + S_i(n)·σ)
func (f Folding) H(sigma float64) float64 {
	var msgs, steps int64
	for i := 0; i < f.LogP; i++ {
		msgs += f.F[i]
		if i < len(f.S) {
			steps += f.S[i]
		}
	}
	return float64(msgs) + float64(steps)*sigma
}

// Supersteps returns the number of supersteps that involve communication
// on the folded machine (labels < log p).
func (f Folding) Supersteps() int64 {
	var steps int64
	for i := 0; i < f.LogP && i < len(f.S); i++ {
		steps += f.S[i]
	}
	return steps
}

// MessageLoad returns Σ_{i<log p} F_i(n,p): the σ-free part of H.
func (f Folding) MessageLoad() int64 {
	var msgs int64
	for i := 0; i < f.LogP; i++ {
		msgs += f.F[i]
	}
	return msgs
}

// H is a convenience wrapper: the communication complexity of tr folded on
// M(p, σ).
func H(tr *core.Trace, p int, sigma float64) float64 {
	return Fold(tr, p).H(sigma)
}

// Wiseness returns the largest α such that the recorded algorithm is
// (α, p)-wise (Definition 3.2):
//
//	Σ_{i<j} F_i(n, 2^j)  >=  α · (p/2^j) · Σ_{i<j} F_i(n, p)
//
// for every 1 <= j <= log p.  A ratio with zero denominator is vacuous and
// skipped; if the algorithm exchanges no messages at any fold the result
// is 1.  The result is in [0, 1]: by Lemma 3.1 the ratio never exceeds 1.
func Wiseness(tr *core.Trace, p int) float64 {
	lp := core.Log2(p)
	if lp < 1 || lp > tr.LogV {
		panic(fmt.Sprintf("eval: Wiseness: p=%d invalid for v=%d", p, tr.V))
	}
	return wiseness(tr, p, lp)
}

// WisenessOf is Wiseness over a FoldSummary.
func WisenessOf(fs *core.FoldSummary, p int) float64 {
	lp := core.Log2(p)
	if lp < 1 || lp > fs.LogV() {
		panic(fmt.Sprintf("eval: WisenessOf: p=%d invalid for v=%d", p, fs.V()))
	}
	return wiseness(fs, p, lp)
}

func wiseness(fv foldView, p, lp int) float64 {
	fp := fv.F(p)
	alpha := 1.0
	for j := 1; j <= lp; j++ {
		fj := fv.F(1 << uint(j))
		var num, den int64
		for i := 0; i < j; i++ {
			num += fj[i]
			den += fp[i]
		}
		if den == 0 {
			continue
		}
		ratio := float64(num) * float64(int64(1)<<uint(j)) / (float64(den) * float64(p))
		if ratio < alpha {
			alpha = ratio
		}
	}
	return alpha
}

// Fullness returns the largest γ such that the recorded algorithm is
// (γ, p)-full (Definition 5.2):
//
//	Σ_{i<j} F_i(n, 2^j)  >=  γ · (p/2^j) · Σ_{i<j} S_i(n)
//
// for every 1 <= j <= log p.  Ratios with zero denominator are skipped;
// if no superstep has a label below log p the result is +Inf is avoided
// and 0 is returned (the notion is vacuous).
func Fullness(tr *core.Trace, p int) float64 {
	lp := core.Log2(p)
	if lp < 1 || lp > tr.LogV {
		panic(fmt.Sprintf("eval: Fullness: p=%d invalid for v=%d", p, tr.V))
	}
	return fullness(tr, p, lp)
}

// FullnessOf is Fullness over a FoldSummary.
func FullnessOf(fs *core.FoldSummary, p int) float64 {
	lp := core.Log2(p)
	if lp < 1 || lp > fs.LogV() {
		panic(fmt.Sprintf("eval: FullnessOf: p=%d invalid for v=%d", p, fs.V()))
	}
	return fullness(fs, p, lp)
}

func fullness(fv foldView, p, lp int) float64 {
	s := fv.S()
	gamma := math.Inf(1)
	for j := 1; j <= lp; j++ {
		fj := fv.F(1 << uint(j))
		var num, den int64
		for i := 0; i < j; i++ {
			num += fj[i]
			den += s[i]
		}
		if den == 0 {
			continue
		}
		ratio := float64(num) * float64(int64(1)<<uint(j)) / (float64(den) * float64(p))
		if ratio < gamma {
			gamma = ratio
		}
	}
	if math.IsInf(gamma, 1) {
		return 0
	}
	return gamma
}

// CheckFoldingLemma verifies Lemma 3.1 on a recorded trace: for every
// 1 <= j <= log p,
//
//	Σ_{i<j} F_i(n, 2^j)  <=  (p/2^j) · Σ_{i<j} F_i(n, p).
//
// It returns an error describing the first violation, or nil.  The lemma
// holds unconditionally for every static algorithm, so a violation
// indicates a metrics bug; the property tests exercise this.
func CheckFoldingLemma(tr *core.Trace, p int) error {
	lp := core.Log2(p)
	if lp < 1 || lp > tr.LogV {
		return fmt.Errorf("eval: CheckFoldingLemma: p=%d invalid for v=%d", p, tr.V)
	}
	return checkFoldingLemma(tr, p, lp)
}

// CheckFoldingLemmaOf is CheckFoldingLemma over a FoldSummary.
func CheckFoldingLemmaOf(fs *core.FoldSummary, p int) error {
	lp := core.Log2(p)
	if lp < 1 || lp > fs.LogV() {
		return fmt.Errorf("eval: CheckFoldingLemma: p=%d invalid for v=%d", p, fs.V())
	}
	return checkFoldingLemma(fs, p, lp)
}

func checkFoldingLemma(fv foldView, p, lp int) error {
	fp := fv.F(p)
	for j := 1; j <= lp; j++ {
		fj := fv.F(1 << uint(j))
		var lhs, rhs int64
		for i := 0; i < j; i++ {
			lhs += fj[i]
			rhs += fp[i]
		}
		scaled := rhs * int64(p>>uint(j))
		if lhs > scaled {
			return fmt.Errorf("eval: Lemma 3.1 violated at j=%d: Σ F_i(n,2^j)=%d > (p/2^j)·Σ F_i(n,p)=%d", j, lhs, scaled)
		}
	}
	return nil
}

// BetaOptimality returns the optimality factor β = lower/measured of a
// measured communication complexity against a lower bound (Definition
// 2.1: an algorithm is β-optimal when every competitor is at least β times
// as expensive; measuring against a proven lower bound certifies β).
// A result of 0 means the measurement was infinitely worse than the bound
// (or the bound was 0 with a positive measurement).
func BetaOptimality(lower, measured float64) float64 {
	switch {
	case measured <= 0 && lower <= 0:
		return 1
	case measured <= 0:
		return 0
	default:
		beta := lower / measured
		if beta > 1 {
			beta = 1
		}
		if beta < 0 {
			beta = 0
		}
		return beta
	}
}
