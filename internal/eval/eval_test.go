package eval

import (
	"math/rand"
	"testing"

	"netoblivious/internal/core"
	"netoblivious/internal/randalg"
)

// runPattern executes a fixed communication pattern and returns its trace.
func runPattern(t *testing.T, v int, prog core.Program[int]) *core.Trace {
	t.Helper()
	tr, err := core.Run(v, prog)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestHAllToComplement: v=8, every VP sends one message to its bitwise
// complement in a 0-superstep.  Folding on p: each block of v/p VPs sends
// and receives v/p messages, all crossing the top-level boundary, so
// F_0(n,p) = v/p and H = v/p + 2σ (two 0-supersteps: the communication
// one and the final empty sync).
func TestHAllToComplement(t *testing.T) {
	const v = 8
	tr := runPattern(t, v, func(vp *core.VP[int]) {
		vp.Send(v-1-vp.ID(), 0)
		vp.Sync(0)
		vp.Sync(0)
	})
	for _, p := range []int{2, 4, 8} {
		f := Fold(tr, p)
		wantF := int64(v / p)
		if f.F[0] != wantF {
			t.Errorf("p=%d: F_0 = %d, want %d", p, f.F[0], wantF)
		}
		for _, sigma := range []float64{0, 1, 2.5, 100} {
			got := f.H(sigma)
			want := float64(wantF) + 2*sigma
			if got != want {
				t.Errorf("p=%d σ=%v: H = %v, want %v", p, sigma, got, want)
			}
		}
	}
}

// TestWisenessPerfect: the complement pattern is (1, p)-wise: at every fold
// every block sends exactly v/2^j messages out, so the defining ratio is
// exactly 1.
func TestWisenessPerfect(t *testing.T) {
	const v = 16
	tr := runPattern(t, v, func(vp *core.VP[int]) {
		vp.Send(v-1-vp.ID(), 0)
		vp.Sync(0)
		vp.Sync(0)
	})
	for _, p := range []int{2, 4, 8, 16} {
		if alpha := Wiseness(tr, p); alpha != 1 {
			t.Errorf("p=%d: α = %v, want 1", p, alpha)
		}
	}
}

// TestWisenessUnbalancedPair reproduces the paper's Section 5 example: a
// single 0-superstep where VP 0 sends n messages to VP v/2.  The algorithm
// is (α, p)-wise only for α = O(1/p): F_i(n,2^j) = n for every fold, so
// the ratio at j=1 is n·2/(p·Σ F_i(n,p)) = 2/p.
func TestWisenessUnbalancedPair(t *testing.T) {
	const v = 16
	const n = 64
	tr := runPattern(t, v, func(vp *core.VP[int]) {
		if vp.ID() == 0 {
			for k := 0; k < n; k++ {
				vp.Send(v/2, k)
			}
		}
		vp.Sync(0)
		vp.Sync(0)
	})
	for _, p := range []int{4, 8, 16} {
		want := 2.0 / float64(p)
		if alpha := Wiseness(tr, p); alpha != want {
			t.Errorf("p=%d: α = %v, want %v", p, alpha, want)
		}
		// ... but it is (Θ(1), p)-full: F sums are n >= γ·(p/2^j)·S sums
		// with S = 2 supersteps.  γ = min_j n·2^j/(p·#{i<j steps}).
		// At j=1: n·2/(p·2) = n/p.
		gamma := Fullness(tr, p)
		if gamma < 1 {
			t.Errorf("p=%d: γ = %v, want >= 1 (full algorithm)", p, gamma)
		}
	}
}

// TestFoldingLemmaOnRandomAlgorithms is the property test for Lemma 3.1:
// for every randomly generated static algorithm and every fold, the
// folding inequality holds, wiseness is in [0,1], and the runtime's degree
// accounting matches a brute-force recount.
func TestFoldingLemmaOnRandomAlgorithms(t *testing.T) {
	rng := rand.New(rand.NewSource(20160301))
	for trial := 0; trial < 60; trial++ {
		v := 1 << uint(1+rng.Intn(5)) // 2..32
		spec := randalg.Random(rng, v, 5, 3)
		tr, err := spec.Run()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for p := 2; p <= v; p *= 2 {
			if err := CheckFoldingLemma(tr, p); err != nil {
				t.Errorf("trial %d (v=%d, p=%d): %v", trial, v, p, err)
			}
			alpha := Wiseness(tr, p)
			if alpha < 0 || alpha > 1 {
				t.Errorf("trial %d: α(%d) = %v out of [0,1]", trial, p, alpha)
			}
			// Cross-check every superstep degree against brute force.
			for st := range spec.Steps {
				want := spec.ExpectedDegree(st, p)
				got := tr.Steps[st].Degree[core.Log2(p)]
				if got != want {
					t.Errorf("trial %d step %d p=%d: degree %d, want %d", trial, st, p, got, want)
				}
			}
		}
	}
}

// TestWisenessMonotonicity: the paper notes that an (α, p)-wise algorithm
// is also (α', p')-wise for α' <= α, p' <= p.  Our measured α is the
// maximal one, so α(p') >= α(p) must hold... not in general; what holds is
// that the pair (α(p), p) dominates: algorithm is (α(p), p')-wise for all
// p' <= p.  Verify directly from the definition.
func TestWisenessMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		v := 1 << uint(2+rng.Intn(4)) // 4..32
		spec := randalg.Random(rng, v, 4, 2)
		tr, err := spec.Run()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		alphaV := Wiseness(tr, v)
		for p := 2; p < v; p *= 2 {
			// (α(v), v)-wise implies (α(v), p)-wise: measured α(p) >= α(v).
			if ap := Wiseness(tr, p); ap+1e-12 < alphaV {
				t.Errorf("trial %d: α(%d)=%v < α(%d)=%v violates Def 3.2 monotonicity", trial, p, ap, v, alphaV)
			}
		}
	}
}

// TestHAdditivity: H(n,p,σ) is affine in σ with slope = number of
// supersteps with label < log p.
func TestHAdditivity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	spec := randalg.Random(rng, 16, 6, 2)
	tr, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	for p := 2; p <= 16; p *= 2 {
		f := Fold(tr, p)
		h0 := f.H(0)
		for _, sigma := range []float64{1, 3, 10} {
			if got, want := f.H(sigma), h0+sigma*float64(f.Supersteps()); got != want {
				t.Errorf("p=%d σ=%v: H=%v, want %v", p, sigma, got, want)
			}
		}
		if h0 != float64(f.MessageLoad()) {
			t.Errorf("p=%d: H(0)=%v != message load %d", p, h0, f.MessageLoad())
		}
	}
}

// TestBetaOptimality covers the ratio clamp.
func TestBetaOptimality(t *testing.T) {
	cases := []struct {
		lower, measured, want float64
	}{
		{10, 20, 0.5},
		{20, 10, 1},
		{0, 0, 1},
		{0, 5, 0},
		{5, 0, 0},
		{-3, 7, 0},
	}
	for _, c := range cases {
		if got := BetaOptimality(c.lower, c.measured); got != c.want {
			t.Errorf("BetaOptimality(%v,%v) = %v, want %v", c.lower, c.measured, got, c.want)
		}
	}
}

// TestFullnessZeroWhenNoCoarseSteps: an algorithm whose supersteps all have
// labels >= log p has a vacuous fullness.
func TestFullnessZeroWhenNoCoarseSteps(t *testing.T) {
	const v = 8
	tr := runPattern(t, v, func(vp *core.VP[int]) {
		vp.Send(vp.ID()^1, 0)
		vp.Sync(2)
	})
	if gamma := Fullness(tr, 2); gamma != 0 {
		t.Errorf("γ = %v, want 0 (no supersteps below log p)", gamma)
	}
}
