package eval

import (
	"math/rand"
	"testing"

	"netoblivious/internal/colsort"
	"netoblivious/internal/core"
	"netoblivious/internal/matmul"
)

// recomputeF derives F_i(n, p) from the raw recorded message pairs,
// independently of the runtime's incremental degree accounting.
func recomputeF(tr *core.Trace, p int) []int64 {
	lp := core.Log2(p)
	shift := uint(tr.LogV - lp)
	f := make([]int64, lp)
	for si := range tr.Steps {
		rec := &tr.Steps[si]
		if rec.Label >= lp {
			continue
		}
		sent := map[int32]int64{}
		recv := map[int32]int64{}
		for src, dst := range rec.Pairs.All() {
			sb, db := src>>shift, dst>>shift
			if sb != db {
				sent[sb]++
				recv[db]++
			}
		}
		var h int64
		for _, c := range sent {
			if c > h {
				h = c
			}
		}
		for _, c := range recv {
			if c > h {
				h = c
			}
		}
		f[rec.Label] += h
	}
	return f
}

// TestMetricsCrossValidation: on full algorithm runs, every folded metric
// derived from raw pairs matches the runtime's degree tables exactly.
func TestMetricsCrossValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	s := 16
	a := make([]int64, s*s)
	b := make([]int64, s*s)
	for i := range a {
		a[i], b[i] = int64(rng.Intn(50)), int64(rng.Intn(50))
	}
	mm, err := matmul.Multiply(s, a, b, matmul.Options{Wise: true, Record: true})
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]int64, 256)
	for i := range keys {
		keys[i] = rng.Int63()
	}
	st, err := colsort.Sort(keys, colsort.Options{Wise: true, Record: true})
	if err != nil {
		t.Fatal(err)
	}
	for name, tr := range map[string]*core.Trace{"matmul": mm.Trace, "sort": st.Trace} {
		for p := 2; p <= tr.V; p *= 2 {
			want := recomputeF(tr, p)
			got := tr.F(p)
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("%s: F_%d(%d) = %d, brute force says %d", name, i, p, got[i], want[i])
				}
			}
		}
	}
}
