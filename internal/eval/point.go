package eval

import "netoblivious/internal/core"

// Point is the complete metric set of one (p, σ) grid point of a folded
// trace: the Result-friendly unit of measurement the experiment pipeline
// records.  Every field is an exact function of the recorded trace, so a
// Point is reproducible bit-for-bit from a stored trace file.
type Point struct {
	// P is the evaluation-machine processor count (a power of two,
	// 1 < P <= v).
	P int `json:"p"`
	// Sigma is the latency/synchronization cost σ of M(p, σ).
	Sigma float64 `json:"sigma"`
	// H is the communication complexity H(n, p, σ) (Equation 1).
	H float64 `json:"h"`
	// MessageLoad is the σ-free part of H: Σ_{i<log p} F_i(n, p).
	MessageLoad int64 `json:"message_load"`
	// Supersteps counts the supersteps with communication at this fold.
	Supersteps int64 `json:"supersteps"`
	// Alpha is the measured wiseness (Definition 3.2).
	Alpha float64 `json:"alpha"`
	// Gamma is the measured fullness (Definition 5.2).
	Gamma float64 `json:"gamma"`
}

// Measure computes the full metric set of tr folded on M(p, σ).
// It shares the Fold/Wiseness/Fullness panic contracts: p must be a
// power of two with 1 < p <= v.
func Measure(tr *core.Trace, p int, sigma float64) Point {
	f := Fold(tr, p)
	return Point{
		P:           p,
		Sigma:       sigma,
		H:           f.H(sigma),
		MessageLoad: f.MessageLoad(),
		Supersteps:  f.Supersteps(),
		Alpha:       Wiseness(tr, p),
		Gamma:       Fullness(tr, p),
	}
}

// MeasureSummary is Measure over a FoldSummary: one Summarize pass over
// a TraceSource, then any number of (p, σ) grid points in O(log²v) each
// — the streaming path of `nobl stat` and the analysis service.  It
// returns the same Point as Measure over the trace the summary was
// built from (both are exact functions of S and F).
func MeasureSummary(fs *core.FoldSummary, p int, sigma float64) Point {
	f := FoldOf(fs, p)
	return Point{
		P:           p,
		Sigma:       sigma,
		H:           f.H(sigma),
		MessageLoad: f.MessageLoad(),
		Supersteps:  f.Supersteps(),
		Alpha:       WisenessOf(fs, p),
		Gamma:       FullnessOf(fs, p),
	}
}
