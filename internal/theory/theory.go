// Package theory collects the analytic side of the reproduction: the
// communication lower bounds the paper optimizes against (Lemmas 4.1, 4.4,
// 4.7, 4.10 and Theorem 4.15, all in the form proved by Scquizzato and
// Silvestri, STACS 2014, plus Irony–Toledo–Tiskin for space-bounded matrix
// multiplication), the closed-form upper bounds of the paper's theorems,
// and the machinery of the optimality theorem (Lemma 3.3, Theorem 3.4,
// Theorem 4.16).
//
// All bounds are returned with unit leading constants; experiments check
// that measured/predicted ratios stay bounded, i.e. the *shape* of each
// claim, which is what an asymptotic reproduction can and should verify.
package theory

import (
	"fmt"
	"math"

	"netoblivious/internal/dbsp"
)

// log2 is the paper's log convention: log x = max{1, log2 x}.
func log2(x float64) float64 {
	l := math.Log2(x)
	if l < 1 {
		return 1
	}
	return l
}

// --- Lower bounds (Section 4, with σ = 0 bounds extended by +σ) ----------

// LowerBoundMM is Lemma 4.1: any n-MM algorithm in the class C (balanced
// multiplicative work, no initial replication) has
// H = Ω(n/p^{2/3} + σ) on M(p, σ).
func LowerBoundMM(n float64, p int, sigma float64) float64 {
	return n/math.Pow(float64(p), 2.0/3.0) + sigma
}

// LowerBoundMMSpace is the Irony–Toledo–Tiskin bound used in §4.1.1: with
// O(n/v) memory per processing element, H = Ω(n/√p + σ).
func LowerBoundMMSpace(n float64, p int, sigma float64) float64 {
	return n/math.Sqrt(float64(p)) + sigma
}

// LowerBoundFFT is Lemma 4.4: H = Ω((n log n)/(p log(n/p)) + σ).
func LowerBoundFFT(n float64, p int, sigma float64) float64 {
	return n*log2(n)/(float64(p)*log2(n/float64(p))) + sigma
}

// LowerBoundSort is Lemma 4.7; same form as the FFT bound.
func LowerBoundSort(n float64, p int, sigma float64) float64 {
	return LowerBoundFFT(n, p, sigma)
}

// LowerBoundStencil is Lemma 4.10: for the (n, d)-stencil,
// H = Ω(n^d/p^{(d-1)/d} + σ).
func LowerBoundStencil(n float64, d, p int, sigma float64) float64 {
	return math.Pow(n, float64(d))/math.Pow(float64(p), float64(d-1)/float64(d)) + sigma
}

// LowerBoundBroadcast is Theorem 4.15: any n-broadcast algorithm in C has
// H = Ω(max{2, σ}·log_{max{2,σ}} p) on M(p, σ).
func LowerBoundBroadcast(p int, sigma float64) float64 {
	base := math.Max(2, sigma)
	return base * math.Log2(float64(p)) / math.Log2(base)
}

// --- Upper bounds of the paper's theorems --------------------------------

// PredictedMM is Theorem 4.2: H_MM(n, p, σ) = O(n/p^{2/3} + σ·log p).
func PredictedMM(n float64, p int, sigma float64) float64 {
	return n/math.Pow(float64(p), 2.0/3.0) + sigma*log2(float64(p))
}

// PredictedMMSpace is §4.1.1: H = O(n/√p + σ·√p).
func PredictedMMSpace(n float64, p int, sigma float64) float64 {
	return n/math.Sqrt(float64(p)) + sigma*math.Sqrt(float64(p))
}

// PredictedFFT is Theorem 4.5: H = O((n/p + σ)·log n/log(n/p)).
func PredictedFFT(n float64, p int, sigma float64) float64 {
	return (n/float64(p) + sigma) * log2(n) / log2(n/float64(p))
}

// PredictedIterativeFFT is the communication complexity of the one-
// superstep-per-DAG-level butterfly algorithm (the suboptimal oblivious
// baseline): H = Θ((n/p + σ)·log p).
func PredictedIterativeFFT(n float64, p int, sigma float64) float64 {
	return (n/float64(p) + sigma) * log2(float64(p))
}

// PredictedSort is Theorem 4.8:
// H = O((n/p + σ)·(log n/log(n/p))^{log_{3/2} 4}).
func PredictedSort(n float64, p int, sigma float64) float64 {
	return (n/float64(p) + sigma) * math.Pow(log2(n)/log2(n/float64(p)), SortExponent)
}

// SortExponent is log_{3/2} 4 ≈ 3.419, the exponent of Theorem 4.8.
var SortExponent = math.Log(4) / math.Log(1.5)

// PredictedBitonic is the communication complexity of Batcher's bitonic
// sorting network folded on M(p, σ).  Of its log n·(log n+1)/2
// compare-exchange stages, exactly those with exchange distance
// 2^j >= n/p are non-local — log p·(log p+1)/2 of them, independent of n —
// each an (n/p)-relation:
//
//	H = Θ((n/p + σ)·log²p)
//
// a Θ(log²p) factor off the Lemma 4.7 lower bound where Columnsort is
// Θ(1)-optimal: the suboptimal fine-grained baseline of experiment E13.
func PredictedBitonic(n float64, p int, sigma float64) float64 {
	lp := log2(float64(p))
	return (n/float64(p) + sigma) * lp * (lp + 1) / 2
}

// PredictedStencil1 is Theorem 4.11: H = O(n·4^{√log n}) for
// σ = O(n/p).  (The bound is independent of p.)
func PredictedStencil1(n float64, p int, sigma float64) float64 {
	return n * math.Pow(4, math.Sqrt(log2(n)))
}

// PredictedStencil2 is Theorem 4.13: H = O((n²/√p)·8^{√log n}) for
// σ = O(n²/p).
func PredictedStencil2(n float64, p int, sigma float64) float64 {
	return n * n / math.Sqrt(float64(p)) * math.Pow(8, math.Sqrt(log2(n)))
}

// PredictedBroadcastAware is the σ-aware κ-ary broadcast of §4.5:
// H = O(max{2,σ}·log_{max{2,σ}} p), matching the lower bound.
func PredictedBroadcastAware(p int, sigma float64) float64 {
	return LowerBoundBroadcast(p, sigma)
}

// --- Optimality theorem machinery (Section 3) ----------------------------

// BetaPrime returns the optimality factor guaranteed on the D-BSP by
// Theorem 3.4 for an (α, p)-wise algorithm that is β-optimal on the
// evaluation model: β' = αβ/(1+α).
func BetaPrime(alpha, beta float64) float64 {
	if alpha <= 0 {
		return 0
	}
	return alpha * beta / (1 + alpha)
}

// BetaPrimeFull returns the factor of Theorem 5.3 for a (γ, p)-full
// algorithm executed with the ascend–descend protocol:
// β' = Θ(β/((1+1/γ)·log²p)).
func BetaPrimeFull(gamma, beta float64, p int) float64 {
	if gamma <= 0 {
		return 0
	}
	lg := log2(float64(p))
	return beta / ((1 + 1/gamma) * lg * lg)
}

// CheckDomination verifies the hypothesis and conclusion of Lemma 3.3: if
// prefix sums of xs are dominated by prefix sums of ys, then for every
// nonincreasing nonnegative weight vector fs, Σ x_i f_i <= Σ y_i f_i.
// It returns an error if the hypothesis holds but the conclusion fails
// (which would indicate a broken implementation; used by property tests).
func CheckDomination(xs, ys, fs []float64) error {
	m := len(xs)
	if len(ys) != m || len(fs) != m {
		return fmt.Errorf("theory: CheckDomination: length mismatch")
	}
	for i := 0; i+1 < m; i++ {
		if fs[i] < fs[i+1] {
			return fmt.Errorf("theory: weights must be nonincreasing")
		}
	}
	for i := 0; i < m; i++ {
		if fs[i] < 0 {
			return fmt.Errorf("theory: weights must be nonnegative")
		}
	}
	var px, py float64
	for k := 0; k < m; k++ {
		px += xs[k]
		py += ys[k]
		if px > py+1e-9 {
			return nil // hypothesis fails: nothing to check
		}
	}
	var sx, sy float64
	for i := 0; i < m; i++ {
		sx += xs[i] * fs[i]
		sy += ys[i] * fs[i]
	}
	if sx > sy+1e-6*(math.Abs(sy)+1) {
		return fmt.Errorf("theory: Lemma 3.3 violated: Σx·f = %v > Σy·f = %v", sx, sy)
	}
	return nil
}

// SigmaWindow describes the per-level σ ranges [Min[j], Max[j]] over which
// an algorithm has been certified β-optimal on M(2^{j+1}, σ); it is the
// (σ^m, σ^M) pair of vectors of Theorem 3.4 (indexed 0..log p̂ - 1).
type SigmaWindow struct {
	Min, Max []float64
}

// AdmissibleRatioBand returns the band [lo, hi] that every ratio ℓ_i/g_i
// of a p-processor D-BSP must lie in for Theorem 3.4 to apply:
//
//	lo = max_{1<=k<=log p} σ^m_{k-1}·2^k/p,   hi = min_k σ^M_{k-1}·2^k/p.
func (w SigmaWindow) AdmissibleRatioBand(p int) (lo, hi float64, err error) {
	lp := int(math.Round(math.Log2(float64(p))))
	if lp < 1 || 1<<uint(lp) != p {
		return 0, 0, fmt.Errorf("theory: p=%d not a power of two", p)
	}
	if len(w.Min) < lp || len(w.Max) < lp {
		return 0, 0, fmt.Errorf("theory: σ-window has %d levels, need %d", len(w.Min), lp)
	}
	hi = math.Inf(1)
	for k := 1; k <= lp; k++ {
		scale := float64(int64(1)<<uint(k)) / float64(p)
		if v := w.Min[k-1] * scale; v > lo {
			lo = v
		}
		if v := w.Max[k-1] * scale; v < hi {
			hi = v
		}
	}
	if lo > hi {
		return lo, hi, fmt.Errorf("theory: empty admissible band [%v, %v]", lo, hi)
	}
	return lo, hi, nil
}

// CheckTransfer verifies that a D-BSP machine satisfies all hypotheses of
// Theorem 3.4 for the given σ-window: structural admissibility plus every
// ℓ_i/g_i inside the window's band.  On success the theorem guarantees
// that an (α, p̂)-wise, β-optimal-on-M(2^j, σ) algorithm is αβ/(1+α)-
// optimal on the machine.
func CheckTransfer(w SigmaWindow, pr dbsp.Params) error {
	if err := pr.Admissible(); err != nil {
		return err
	}
	lo, hi, err := w.AdmissibleRatioBand(pr.P)
	if err != nil {
		return err
	}
	for i := range pr.G {
		r := pr.L[i] / pr.G[i]
		if r < lo-1e-9 || r > hi+1e-9 {
			return fmt.Errorf("theory: ℓ_%d/g_%d = %v outside admissible band [%v, %v] for machine %s", i, i, r, lo, hi, pr.Name)
		}
	}
	return nil
}

// GapLowerBound is Theorem 4.16: for any network-oblivious n-broadcast
// algorithm and 0 <= σ1 <= σ2, the maximum slowdown over σ in [σ1, σ2]
// with respect to the best σ-aware algorithm is
//
//	GAP = Ω(log max{2,σ2} / (log max{2,σ1} + log log max{2,σ2})).
func GapLowerBound(sigma1, sigma2 float64) float64 {
	s1 := math.Max(2, sigma1)
	s2 := math.Max(2, sigma2)
	return math.Log2(s2) / (math.Log2(s1) + math.Log2(math.Max(2, math.Log2(s2))))
}
