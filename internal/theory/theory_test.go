package theory

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"netoblivious/internal/dbsp"
)

func TestLowerBoundShapes(t *testing.T) {
	// MM: decreasing in p (as p^{2/3}), additive in σ.
	if LowerBoundMM(4096, 8, 0) != 1024 {
		t.Errorf("MM LB(4096, 8, 0) = %v, want 1024", LowerBoundMM(4096, 8, 0))
	}
	if got := LowerBoundMM(4096, 8, 5) - LowerBoundMM(4096, 8, 0); got != 5 {
		t.Errorf("σ additivity broken: %v", got)
	}
	// FFT at p = √n: (n log n)/(p·(log n)/2) = 2n/p.
	n := 1 << 12
	got := LowerBoundFFT(float64(n), 1<<6, 0)
	want := 2 * float64(n) / float64(1<<6)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("FFT LB = %v, want %v", got, want)
	}
	// Stencil d=1: Ω(n); d=2: Ω(n²/√p).
	if LowerBoundStencil(256, 1, 16, 0) != 256 {
		t.Errorf("stencil d=1 LB = %v", LowerBoundStencil(256, 1, 16, 0))
	}
	if LowerBoundStencil(16, 2, 16, 0) != 64 {
		t.Errorf("stencil d=2 LB = %v, want 64", LowerBoundStencil(16, 2, 16, 0))
	}
	// Broadcast: σ <= 2 gives 2·log2 p; large σ gives σ·log_σ p.
	if LowerBoundBroadcast(256, 0) != 16 {
		t.Errorf("broadcast LB σ=0: %v, want 16", LowerBoundBroadcast(256, 0))
	}
	if got := LowerBoundBroadcast(256, 16); math.Abs(got-32) > 1e-9 {
		t.Errorf("broadcast LB σ=16: %v, want 32", got)
	}
}

func TestPredictedDominatesLowerBound(t *testing.T) {
	// Every upper bound must dominate its lower bound pointwise (same
	// unit constants, so >= up to the σ terms' structure).
	for _, p := range []int{2, 8, 64, 512} {
		for _, sigma := range []float64{0, 1, 32} {
			n := 1 << 12
			if PredictedMM(float64(n), p, sigma) < LowerBoundMM(float64(n), p, sigma)-1e-9 {
				t.Errorf("MM predicted < LB at p=%d σ=%v", p, sigma)
			}
			if PredictedFFT(float64(n), p, sigma) < LowerBoundFFT(float64(n), p, sigma)-1e-9 {
				t.Errorf("FFT predicted < LB at p=%d σ=%v", p, sigma)
			}
			if PredictedSort(float64(n), p, sigma) < LowerBoundSort(float64(n), p, sigma)-1e-9 {
				t.Errorf("sort predicted < LB at p=%d σ=%v", p, sigma)
			}
		}
	}
}

func TestBetaPrime(t *testing.T) {
	if got := BetaPrime(1, 1); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("BetaPrime(1,1) = %v, want 0.5", got)
	}
	if BetaPrime(0, 1) != 0 {
		t.Error("BetaPrime(0, 1) should be 0")
	}
	if got := BetaPrime(0.5, 0.6); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("BetaPrime(0.5,0.6) = %v, want 0.2", got)
	}
}

// TestLemma33Property: random sequences with dominated prefix sums and
// random nonincreasing weights never violate the domination conclusion.
// This exercises the exact argument used inside Theorem 3.4's proof.
func TestLemma33Property(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	cfg := &quick.Config{MaxCount: 300, Rand: rng}
	prop := func(raw []float64, seed int64) bool {
		if len(raw) == 0 {
			return true
		}
		r := rand.New(rand.NewSource(seed))
		m := len(raw)
		// Build ys >= running xs by adding nonnegative slack.
		xs := make([]float64, m)
		ys := make([]float64, m)
		var slack float64
		for i := range raw {
			xs[i] = math.Mod(math.Abs(raw[i]), 100)
			extra := r.Float64() * 10
			// y_i = x_i + extra - min(slack, something): keep prefix
			// domination by only adding.
			ys[i] = xs[i] + extra
			slack += extra
		}
		// Nonincreasing nonnegative weights.
		fs := make([]float64, m)
		w := 100 * r.Float64()
		for i := range fs {
			fs[i] = w
			w -= r.Float64() * w / 2
		}
		return CheckDomination(xs, ys, fs) == nil
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestCheckDominationRejectsBadWeights(t *testing.T) {
	if err := CheckDomination([]float64{1}, []float64{2}, []float64{-1}); err == nil {
		t.Error("want error for negative weights")
	}
	if err := CheckDomination([]float64{1, 1}, []float64{2, 2}, []float64{1, 2}); err == nil {
		t.Error("want error for increasing weights")
	}
}

func TestSigmaWindowBand(t *testing.T) {
	// MM-style window on p̂ = 8: σ^m = 0, σ^M_j = n/((j+1)·2^{2j/3}) — here
	// just check the arithmetic with simple numbers.
	w := SigmaWindow{
		Min: []float64{0, 0, 0},
		Max: []float64{32, 16, 8},
	}
	lo, hi, err := w.AdmissibleRatioBand(8)
	if err != nil {
		t.Fatal(err)
	}
	if lo != 0 {
		t.Errorf("lo = %v, want 0", lo)
	}
	// hi = min(32·2/8, 16·4/8, 8·8/8) = min(8, 8, 8) = 8.
	if hi != 8 {
		t.Errorf("hi = %v, want 8", hi)
	}
	// Empty band must error.
	w2 := SigmaWindow{Min: []float64{4, 4, 4}, Max: []float64{1, 1, 1}}
	if _, _, err := w2.AdmissibleRatioBand(8); err == nil {
		t.Error("want empty-band error")
	}
}

func TestCheckTransfer(t *testing.T) {
	w := SigmaWindow{
		Min: []float64{0, 0, 0},
		Max: []float64{1 << 20, 1 << 20, 1 << 20},
	}
	for _, pr := range dbsp.Presets(8) {
		if err := CheckTransfer(w, pr); err != nil {
			t.Errorf("transfer should hold for %s: %v", pr.Name, err)
		}
	}
	// A tiny σ^M window excludes machines with large ℓ/g.
	wTight := SigmaWindow{Min: []float64{0, 0, 0}, Max: []float64{0.1, 0.1, 0.1}}
	if err := CheckTransfer(wTight, dbsp.Mesh(1, 8)); err == nil {
		t.Error("want band violation for mesh-1D under tight window")
	}
}

func TestGapLowerBound(t *testing.T) {
	// GAP grows with σ2 for fixed σ1.
	g1 := GapLowerBound(0, 16)
	g2 := GapLowerBound(0, 1<<20)
	if g2 <= g1 {
		t.Errorf("GAP not increasing: %v vs %v", g1, g2)
	}
	// Symmetric window [σ,σ] gives O(1) gap.
	if g := GapLowerBound(1024, 1024); g > 2 {
		t.Errorf("point window gap = %v, want small", g)
	}
}

func TestSortExponent(t *testing.T) {
	if math.Abs(SortExponent-3.4190) > 1e-3 {
		t.Errorf("log_{3/2}4 = %v, want ≈3.419", SortExponent)
	}
}
