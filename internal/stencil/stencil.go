// Package stencil implements the network-oblivious stencil algorithms of
// Section 4.4 of the paper: the (n,1)-stencil (Theorem 4.11) and the
// (n,2)-stencil (Theorem 4.13).
//
// The (n,d)-stencil problem evaluates a DAG with nodes ⟨x₁..x_d, t⟩,
// 0 <= x_i, t < n, where each node at time t depends on its (up to 3^d)
// spatial neighbours at time t−1.  Nodes with t = 0 are inputs.
//
// # Geometry
//
// We work in rotated space-time coordinates.  For d = 1 a node (x, t)
// maps to (a, b) = (x+t, x−t); the n×n space-time square becomes a
// diamond-oriented lattice inside a 2n×2n box, and the paper's diamond
// DAGs (Figure 1) become axis-aligned boxes.  Dependencies point towards
// larger a and smaller b, so the grid of w/k-side sub-boxes of a box can
// be evaluated in 2k−1 anti-diagonal phases of at most k mutually
// independent diamonds — exactly the stripe structure of Figure 1.  Each
// sub-box is assigned to a sub-segment of z/k VPs and evaluated
// recursively; below k VPs a segment evaluates its diamond as a 2z-step
// wavefront; a single VP evaluates locally.  The recursion degree is
// k = 2^⌈√log n⌉ as in the paper, giving H = O(n·4^{√log n}).
//
// For d = 2 a node (x, y, t) maps to (a, b, c) = (x+t, x−t, y+t); boxes
// in (a, b, c) are the octahedron-like pieces of Section 4.4.2, swept in
// 3k−2 phases of at most k² independent pieces on segments of z/k² VPs
// (the paper's decomposition has 4k−3 phases; both are Θ(k), see the
// substitution table in DESIGN.md), giving H = O((n²/√p)·8^{√log n}).
//
// Every value is computed by a statically determined VP (ComputeOwner);
// redistribution supersteps before each phase forward boundary values
// from producers to the consumers' owners, one superstep per phase with
// O(1) messages per VP, labeled with the enclosing segment's cluster.
package stencil

import (
	"fmt"

	"netoblivious/internal/core"
)

// Mod is the modulus of the concrete node function used by Run and the
// sequential reference.
const Mod = 1_000_000_007

// node identifies a DAG node in rotated coordinates: a = x+t, b = x−t,
// c = y+t (c is 0 for d = 1).
type node struct {
	a, b, c int32
}

// geom carries the run-wide geometry shared by all VPs.
type geom struct {
	n    int // spatial side and number of timesteps
	d    int // 1 or 2
	k    int // recursion degree, 2^⌈√log n⌉
	kd   int // k^d: sub-segments per box
	logV int
	b0   int // global b-origin of the root box
}

// K returns the paper's recursion degree k = 2^⌈√log₂ n⌉.
func K(n int) int {
	ln := core.Log2(n)
	s := 0
	for s*s < ln {
		s++
	}
	return 1 << uint(s)
}

func (g *geom) xyt(nd node) (x, y, t int) {
	x = int(nd.a+nd.b) / 2
	t = int(nd.a-nd.b) / 2
	y = int(nd.c) - t
	return
}

func (g *geom) valid(nd node) bool {
	if (nd.a-nd.b)&1 != 0 {
		return false
	}
	x, y, t := g.xyt(nd)
	if x < 0 || x >= g.n || t < 0 || t >= g.n {
		return false
	}
	if g.d == 2 && (y < 0 || y >= g.n) {
		return false
	}
	return true
}

// gridIndex flattens a node for the shared output grid: t·n+x for d=1,
// (t·n+x)·n+y for d=2.
func (g *geom) gridIndex(nd node) int {
	x, y, t := g.xyt(nd)
	if g.d == 1 {
		return t*g.n + x
	}
	return (t*g.n+x)*g.n + y
}

// preds appends the valid predecessors of nd to buf.
func (g *geom) preds(nd node, buf []node) []node {
	if int(nd.a-nd.b)/2 == 0 {
		return buf // t = 0: input node
	}
	for da := int32(-2); da <= 0; da++ {
		// (x+δ, t−1): a′ = a+δ−1 ∈ {a−2..a}, b′ = b+δ+1, so b′ = a′−a+b+2.
		p := node{a: nd.a + da, b: nd.b + da + 2}
		if g.d == 1 {
			if g.valid(p) {
				buf = append(buf, p)
			}
			continue
		}
		for dc := int32(-2); dc <= 0; dc++ {
			p.c = nd.c + dc
			if g.valid(p) {
				buf = append(buf, p)
			}
		}
	}
	return buf
}

// consumers appends the valid consumers (nodes at t+1 depending on nd).
func (g *geom) consumers(nd node, buf []node) []node {
	for da := int32(0); da <= 2; da++ {
		q := node{a: nd.a + da, b: nd.b + da - 2}
		if g.d == 1 {
			if g.valid(q) {
				buf = append(buf, q)
			}
			continue
		}
		for dc := int32(0); dc <= 2; dc++ {
			q.c = nd.c + dc
			if g.valid(q) {
				buf = append(buf, q)
			}
		}
	}
	return buf
}

// apply evaluates the concrete node function: inputs at t=0 come from in;
// later nodes combine their predecessors with position-indexed
// coefficients mod Mod.  Out-of-grid predecessors contribute 0 (but still
// advance the coefficient), exactly matching SeqEvaluate.
func (g *geom) apply(nd node, in []int64, vals map[node]int64) int64 {
	x, y, t := g.xyt(nd)
	if t == 0 {
		if g.d == 1 {
			return in[x] % Mod
		}
		return in[x*g.n+y] % Mod
	}
	var acc int64 = 1
	coef := int64(3)
	for da := int32(-2); da <= 0; da++ {
		p := node{a: nd.a + da, b: nd.b + da + 2}
		if g.d == 1 {
			if g.valid(p) {
				acc = (acc + coef*g.mustVal(p, nd, vals)) % Mod
			}
			coef += 2
			continue
		}
		for dc := int32(-2); dc <= 0; dc++ {
			p.c = nd.c + dc
			if g.valid(p) {
				acc = (acc + coef*g.mustVal(p, nd, vals)) % Mod
			}
			coef += 2
		}
	}
	return acc
}

func (g *geom) mustVal(p, nd node, vals map[node]int64) int64 {
	v, ok := vals[p]
	if !ok {
		px, py, pt := g.xyt(p)
		x, y, t := g.xyt(nd)
		panic(fmt.Sprintf("stencil: missing predecessor (x=%d y=%d t=%d) of (x=%d y=%d t=%d)", px, py, pt, x, y, t))
	}
	return v
}

// box is a recursion cell: the segment [sb, sb+z) of VPs evaluating the
// rotated-coordinate box [A0, A0+w) × [B0, B0+w) (× [C0, C0+w) for d=2).
// empty marks structural dummy boxes (idle segments run the same superstep
// sequence with no nodes, per the paper's footnote 8).
type box struct {
	sb, z      int
	A0, B0, C0 int
	w          int
	empty      bool
}

func (g *geom) contains(bx box, nd node) bool {
	if bx.empty {
		return false
	}
	if int(nd.a) < bx.A0 || int(nd.a) >= bx.A0+bx.w || int(nd.b) < bx.B0 || int(nd.b) >= bx.B0+bx.w {
		return false
	}
	if g.d == 2 && (int(nd.c) < bx.C0 || int(nd.c) >= bx.C0+bx.w) {
		return false
	}
	return true
}

// phases returns the number of anti-diagonal phases of a box: 2k−1 for
// d=1, 3k−2 for d=2.
func (g *geom) phases() int {
	if g.d == 1 {
		return 2*g.k - 1
	}
	return 3*g.k - 2
}

// subBox returns the sub-box evaluated by sub-segment q of bx in phase
// phi, which may be empty.
func (g *geom) subBox(bx box, phi, q int) box {
	w2 := bx.w / g.k
	z2 := bx.z / g.kd
	sub := box{sb: bx.sb + q*z2, z: z2, w: w2, empty: true}
	if bx.empty {
		return sub
	}
	if g.d == 1 {
		a := q
		b := a + (g.k - 1) - phi
		if b < 0 || b >= g.k {
			return sub
		}
		sub.A0 = bx.A0 + a*w2
		sub.B0 = bx.B0 + b*w2
		sub.empty = false
		return sub
	}
	a, c := q/g.k, q%g.k
	b := a + c + (g.k - 1) - phi
	if b < 0 || b >= g.k {
		return sub
	}
	sub.A0 = bx.A0 + a*w2
	sub.B0 = bx.B0 + b*w2
	sub.C0 = bx.C0 + c*w2
	sub.empty = false
	return sub
}

// subPhase returns the phase in which a node of bx is evaluated, plus its
// sub-segment index.
func (g *geom) subPhase(bx box, nd node) (phi, q int) {
	w2 := bx.w / g.k
	a := (int(nd.a) - bx.A0) / w2
	b := (int(nd.b) - bx.B0) / w2
	if g.d == 1 {
		return a + (g.k - 1) - b, a
	}
	c := (int(nd.c) - bx.C0) / w2
	return a + c + (g.k - 1) - b, a*g.k + c
}

// ComputeOwner returns the VP that evaluates a given space-time node under
// the static schedule.  Exposed for tests; nodes are passed in original
// coordinates.
func (g *geom) computeOwner(nd node) int {
	bx := g.root()
	for bx.z >= g.kd && bx.z > 1 {
		_, q := g.subPhase(bx, nd)
		bx = g.descend(bx, nd, q)
	}
	if bx.z == 1 {
		return bx.sb
	}
	// Wavefront slab ownership.
	if g.d == 1 {
		return bx.sb + (int(nd.a)-bx.A0)/2
	}
	return bx.sb + (int(nd.a)-bx.A0)/2*(bx.w/2) + (int(nd.c)-bx.C0)/2
}

func (g *geom) descend(bx box, nd node, q int) box {
	w2 := bx.w / g.k
	z2 := bx.z / g.kd
	sub := box{sb: bx.sb + q*z2, z: z2, w: w2}
	sub.A0 = bx.A0 + (int(nd.a)-bx.A0)/w2*w2
	sub.B0 = bx.B0 + (int(nd.b)-bx.B0)/w2*w2
	if g.d == 2 {
		sub.C0 = bx.C0 + (int(nd.c)-bx.C0)/w2*w2
	}
	return sub
}

func (g *geom) root() box {
	v := 1 << uint(g.logV)
	return box{sb: 0, z: v, A0: 0, B0: g.b0, C0: 0, w: 2 * g.n}
}
