package stencil

import (
	"fmt"
	"strings"

	"netoblivious/internal/core"
)

// Tile describes one diamond of the top-level decomposition of the (n,1)
// space-time square, for inspection and for the Figure-1 rendering.
type Tile struct {
	// A, B are the rotated-coordinate tile indices.
	A, B int
	// Phase is the evaluation phase (stripe) of the tile, in [0, 2k-1).
	Phase int
	// Segment is the VP segment index assigned to the tile.
	Segment int
	// Nodes is the number of valid DAG nodes the tile contains (tiles at
	// the square's corners are truncated and may be empty).
	Nodes int
}

// Decompose returns the top-level diamond decomposition of the
// (n,1)-stencil: the k×k grid of rotated boxes with their phases, mirroring
// Figure 1 of the paper (2k−1 stripes, each with at most k diamonds).
// Empty tiles (no valid nodes) are omitted.
func Decompose(n int) []Tile {
	k := K(n)
	g := &geom{n: n, d: 1, k: k, kd: k, logV: core.Log2(n), b0: -(n - 1)}
	root := g.root()
	w2 := root.w / k
	var tiles []Tile
	for a := 0; a < k; a++ {
		for b := 0; b < k; b++ {
			cnt := 0
			for aa := root.A0 + a*w2; aa < root.A0+(a+1)*w2; aa++ {
				for bb := root.B0 + b*w2; bb < root.B0+(b+1)*w2; bb++ {
					if g.valid(node{a: int32(aa), b: int32(bb)}) {
						cnt++
					}
				}
			}
			if cnt == 0 {
				continue
			}
			tiles = append(tiles, Tile{A: a, B: b, Phase: a + (k - 1) - b, Segment: a, Nodes: cnt})
		}
	}
	return tiles
}

// RenderDecomposition draws the (n,1) decomposition as ASCII art: the
// space-time square with each node labeled by the phase (stripe) of its
// tile, reproducing the structure of Figure 1 of the paper.  Rows are
// printed top-down from t = n−1 to t = 0.
func RenderDecomposition(n int) string {
	k := K(n)
	g := &geom{n: n, d: 1, k: k, kd: k, logV: core.Log2(n), b0: -(n - 1)}
	root := g.root()
	w2 := root.w / k
	var sb strings.Builder
	fmt.Fprintf(&sb, "(%d,1)-stencil, k=%d: %d phases, tiles labeled by phase\n", n, k, 2*k-1)
	glyph := func(p int) byte {
		const alphabet = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
		if p < len(alphabet) {
			return alphabet[p]
		}
		return '#'
	}
	for t := n - 1; t >= 0; t-- {
		for x := 0; x < n; x++ {
			a, b := x+t, x-t
			ta := (a - root.A0) / w2
			tb := (b - root.B0) / w2
			sb.WriteByte(glyph(ta + (k - 1) - tb))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
