package stencil

import (
	"math/rand"
	"strings"
	"testing"

	"netoblivious/internal/eval"
	"netoblivious/internal/theory"
)

func randInputs(rng *rand.Rand, m int) []int64 {
	in := make([]int64, m)
	for i := range in {
		in[i] = int64(rng.Intn(1 << 20))
	}
	return in
}

func TestK(t *testing.T) {
	cases := map[int]int{2: 2, 4: 4, 8: 4, 16: 4, 32: 8, 256: 8, 512: 8, 1024: 16}
	for n, want := range cases {
		if got := K(n); got != want {
			t.Errorf("K(%d) = %d, want %d", n, got, want)
		}
	}
}

// TestRun1DCorrectness checks the parallel (n,1) evaluation against the
// sequential reference on the full space-time grid.
func TestRun1DCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8, 16, 32, 64} {
		in := randInputs(rng, n)
		res, err := Run(n, 1, in, Options{Wise: true})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		want := SeqEvaluate(n, 1, in)
		for i := range want {
			if res.Grid[i] != want[i] {
				t.Fatalf("n=%d: grid[%d] = %d, want %d (x=%d t=%d)", n, i, res.Grid[i], want[i], i%n, i/n)
			}
		}
	}
}

// TestRun1DCustomK exercises non-default recursion degrees (the ablation
// knob) including ones forcing deep recursion and wavefront base cases.
func TestRun1DCustomK(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 32
	in := randInputs(rng, n)
	want := SeqEvaluate(n, 1, in)
	for _, k := range []int{2, 4, 8, 16, 32} {
		res, err := RunK(n, 1, k, in, Options{})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		for i := range want {
			if res.Grid[i] != want[i] {
				t.Fatalf("k=%d: grid[%d] = %d, want %d", k, i, res.Grid[i], want[i])
			}
		}
	}
}

// TestRun2DCorrectness checks the (n,2) evaluation.
func TestRun2DCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 4, 8, 16} {
		in := randInputs(rng, n*n)
		res, err := Run(n, 2, in, Options{Wise: true})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		want := SeqEvaluate(n, 2, in)
		for i := range want {
			if res.Grid[i] != want[i] {
				t.Fatalf("n=%d: grid[%d] = %d, want %d", n, i, res.Grid[i], want[i])
			}
		}
	}
}

// TestRun2DCustomK exercises d=2 with forced recursion degrees.
func TestRun2DCustomK(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 8
	in := randInputs(rng, n*n)
	want := SeqEvaluate(n, 2, in)
	for _, k := range []int{2, 4, 8} {
		res, err := RunK(n, 2, k, in, Options{})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		for i := range want {
			if res.Grid[i] != want[i] {
				t.Fatalf("k=%d: grid[%d] = %d, want %d", k, i, res.Grid[i], want[i])
			}
		}
	}
}

// TestStencil1Complexity verifies the H = O(n·4^{√log n}) bound of
// Theorem 4.11 (measured against the closed form, constant-factor band).
func TestStencil1Complexity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 128
	in := randInputs(rng, n)
	res, err := Run(n, 1, in, Options{Wise: true})
	if err != nil {
		t.Fatal(err)
	}
	for p := 2; p <= n; p *= 4 {
		h := eval.H(res.Trace, p, 0)
		pred := theory.PredictedStencil1(float64(n), p, 0)
		if ratio := h / pred; ratio > 8 || ratio < 0.005 {
			t.Errorf("p=%d: H=%v vs predicted %v (ratio %v)", p, h, pred, ratio)
		}
		// And H must dominate the Lemma 4.10 lower bound Ω(n).
		if h < theory.LowerBoundStencil(float64(n), 1, p, 0)*0.5 {
			t.Errorf("p=%d: H=%v below the lower bound", p, h)
		}
	}
}

// TestStencil2Complexity verifies the d=2 shape O((n²/√p)·8^{√log n}).
func TestStencil2Complexity(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 16
	in := randInputs(rng, n*n)
	res, err := Run(n, 2, in, Options{Wise: true})
	if err != nil {
		t.Fatal(err)
	}
	for p := 4; p <= n*n; p *= 4 {
		h := eval.H(res.Trace, p, 0)
		pred := theory.PredictedStencil2(float64(n), p, 0)
		if ratio := h / pred; ratio > 8 || ratio < 0.002 {
			t.Errorf("p=%d: H=%v vs predicted %v (ratio %v)", p, h, pred, ratio)
		}
	}
}

// TestFoldingAndWiseness: Lemma 3.1 and (Θ(1), ·)-wiseness on stencil
// traces.
func TestFoldingAndWiseness(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 64
	res, err := Run(n, 1, randInputs(rng, n), Options{Wise: true})
	if err != nil {
		t.Fatal(err)
	}
	for p := 2; p <= n; p *= 2 {
		if err := eval.CheckFoldingLemma(res.Trace, p); err != nil {
			t.Errorf("p=%d: %v", p, err)
		}
	}
	for p := 2; p <= n; p *= 4 {
		if alpha := eval.Wiseness(res.Trace, p); alpha < 0.02 {
			t.Errorf("α(%d) = %v, want Θ(1)", p, alpha)
		}
	}
}

// TestDecomposeStructure checks the Figure-1 invariants: 2k−1 phases, at
// most k tiles per phase, tiles of one phase pairwise independent
// (distinct segments), and full node coverage.
func TestDecomposeStructure(t *testing.T) {
	for _, n := range []int{16, 64, 256} {
		k := K(n)
		tiles := Decompose(n)
		byPhase := map[int][]Tile{}
		total := 0
		for _, tile := range tiles {
			byPhase[tile.Phase] = append(byPhase[tile.Phase], tile)
			total += tile.Nodes
		}
		if total != n*n {
			t.Errorf("n=%d: tiles cover %d nodes, want %d", n, total, n*n)
		}
		if len(byPhase) > 2*k-1 {
			t.Errorf("n=%d: %d phases, want <= %d", n, len(byPhase), 2*k-1)
		}
		for phase, ts := range byPhase {
			if len(ts) > k {
				t.Errorf("n=%d phase %d: %d tiles, want <= %d", n, phase, len(ts), k)
			}
			segs := map[int]bool{}
			for _, tile := range ts {
				if segs[tile.Segment] {
					t.Errorf("n=%d phase %d: duplicate segment %d", n, phase, tile.Segment)
				}
				segs[tile.Segment] = true
				if tile.Phase != tile.A+(k-1)-tile.B {
					t.Errorf("n=%d: inconsistent phase for tile %+v", n, tile)
				}
			}
		}
	}
}

// TestRenderDecomposition sanity-checks the Figure-1 ASCII rendering.
func TestRenderDecomposition(t *testing.T) {
	s := RenderDecomposition(16)
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 17 { // header + 16 rows
		t.Fatalf("render has %d lines, want 17", len(lines))
	}
	// Bottom-left corner (x=0, t=0) belongs to tile A=0, B index of b=0;
	// top row must use later phases than the bottom row on average.
	if len(lines[1]) != 16 {
		t.Errorf("row length %d, want 16", len(lines[1]))
	}
}

// TestValidation rejects bad parameters.
func TestValidation(t *testing.T) {
	if _, err := Run(3, 1, make([]int64, 3), Options{}); err == nil {
		t.Error("want error for n=3")
	}
	if _, err := Run(4, 3, make([]int64, 4), Options{}); err == nil {
		t.Error("want error for d=3")
	}
	if _, err := Run(4, 1, make([]int64, 5), Options{}); err == nil {
		t.Error("want error for wrong input length")
	}
	if _, err := RunK(8, 1, 3, make([]int64, 8), Options{}); err == nil {
		t.Error("want error for non-power-of-two K")
	}
	if _, err := RunK(8, 1, 16, make([]int64, 8), Options{}); err == nil {
		t.Error("want error for K > n")
	}
}
