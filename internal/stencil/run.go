package stencil

import (
	"fmt"

	"netoblivious/alg"
	"netoblivious/internal/core"
)

// Options is the unified run configuration (engine, recording, wiseness
// dummies, cancellation).
type Options = alg.Spec

// Result carries the evaluated space-time grid and the trace.
type Result struct {
	// Grid holds every DAG node value: index t·n+x for d=1,
	// (t·n+x)·n+y for d=2.
	Grid []int64
	// Trace is the recorded communication of the run on M(n^d).
	Trace *core.Trace
}

// payload is the message type: a node value forwarded to a consumer's
// owner.
type payload struct {
	nd node
	v  int64
}

// SeqEvaluate is the sequential reference: row-by-row evaluation of the
// (n,d)-stencil DAG with the same node function as Run.
func SeqEvaluate(n, d int, in []int64) []int64 {
	switch d {
	case 1:
		grid := make([]int64, n*n)
		for x := 0; x < n; x++ {
			grid[x] = in[x] % Mod
		}
		for t := 1; t < n; t++ {
			for x := 0; x < n; x++ {
				var acc int64 = 1
				coef := int64(3)
				for dx := -1; dx <= 1; dx++ {
					px := x + dx
					if px >= 0 && px < n {
						acc = (acc + coef*grid[(t-1)*n+px]) % Mod
					}
					coef += 2
				}
				grid[t*n+x] = acc
			}
		}
		return grid
	case 2:
		grid := make([]int64, n*n*n)
		for x := 0; x < n; x++ {
			for y := 0; y < n; y++ {
				grid[x*n+y] = in[x*n+y] % Mod
			}
		}
		for t := 1; t < n; t++ {
			for x := 0; x < n; x++ {
				for y := 0; y < n; y++ {
					var acc int64 = 1
					coef := int64(3)
					// Same predecessor order as geom.preds: outer δx
					// from -1..1 (via a-offsets), inner δy.
					for dx := -1; dx <= 1; dx++ {
						for dy := -1; dy <= 1; dy++ {
							px, py := x+dx, y+dy
							if px >= 0 && px < n && py >= 0 && py < n {
								acc = (acc + coef*grid[((t-1)*n+px)*n+py]) % Mod
							}
							coef += 2
						}
					}
					grid[(t*n+x)*n+y] = acc
				}
			}
		}
		return grid
	}
	panic("stencil: d must be 1 or 2")
}

// Run evaluates the (n,d)-stencil DAG with the network-oblivious recursive
// diamond algorithm on M(n^d), at the paper's recursion degree
// K = 2^⌈√log n⌉.  in is the t=0 input row (n values for d=1, n² row-major
// values for d=2).
func Run(n, d int, in []int64, opts Options) (*Result, error) {
	return RunK(n, d, 0, in, opts)
}

// RunK is Run with an explicit recursion degree k, a knob the ablation
// benchmarks sweep; k must be a power of two in [2, n], and 0 selects
// the paper's default.
func RunK(n, d, k int, in []int64, opts Options) (*Result, error) {
	if n < 1 || n&(n-1) != 0 {
		return nil, fmt.Errorf("stencil: n=%d must be a positive power of two", n)
	}
	if d != 1 && d != 2 {
		return nil, fmt.Errorf("stencil: d=%d must be 1 or 2", d)
	}
	want := n
	if d == 2 {
		want = n * n
	}
	if len(in) != want {
		return nil, fmt.Errorf("stencil: need %d inputs, got %d", want, len(in))
	}
	if n == 1 {
		// Trivial instance: one node per spatial point at t=0, all local.
		tr, err := core.RunOpt(1, func(vp *core.VP[payload]) {}, opts.RunOptions())
		if err != nil {
			return nil, err
		}
		grid := make([]int64, len(in))
		for i, x := range in {
			grid[i] = x % Mod
		}
		return &Result{Grid: grid, Trace: tr}, nil
	}
	if k == 0 {
		k = K(n)
	}
	if k < 2 || k&(k-1) != 0 {
		return nil, fmt.Errorf("stencil: K=%d must be a power of two >= 2", k)
	}
	if k > n {
		return nil, fmt.Errorf("stencil: K=%d must not exceed n=%d", k, n)
	}
	v := n
	if d == 2 {
		v = n * n
	}
	g := &geom{n: n, d: d, k: k, kd: pow(k, d), logV: core.Log2(v), b0: -(n - 1)}
	gridLen := n * n
	if d == 2 {
		gridLen = n * n * n
	}
	grid := make([]int64, gridLen)

	prog := func(vp *core.VP[payload]) {
		w := &evaluator{g: g, vp: vp, in: in, grid: grid, wise: opts.Wise,
			vals: make(map[node]int64)}
		w.evalBox(g.root())
	}
	tr, err := core.RunOpt(v, prog, opts.RunOptions())
	if err != nil {
		return nil, err
	}
	return &Result{Grid: grid, Trace: tr}, nil
}

func pow(k, d int) int {
	r := 1
	for i := 0; i < d; i++ {
		r *= k
	}
	return r
}

// evaluator is the per-VP execution state.
type evaluator struct {
	g    *geom
	vp   *core.VP[payload]
	in   []int64
	grid []int64
	wise bool
	vals map[node]int64
}

func (e *evaluator) label(z int) int {
	return e.g.logV - core.Log2(z)
}

// store records a computed value and publishes it to the shared grid.
func (e *evaluator) store(nd node, v int64) {
	e.vals[nd] = v
	e.grid[e.g.gridIndex(nd)] = v
}

// drainInbox merges delivered values into the local store.
func (e *evaluator) drainInbox() {
	for _, msg := range e.vp.Inbox() {
		e.vals[msg.Payload.nd] = msg.Payload.v
	}
}

// evalBox evaluates every valid node of bx using the segment
// [bx.sb, bx.sb+bx.z).  All VPs of the machine traverse structurally
// identical superstep sequences (empty boxes included), so the label
// trace is static.
func (e *evaluator) evalBox(bx box) {
	g := e.g
	if bx.z == 1 {
		e.evalLocal(bx)
		return
	}
	if bx.z < g.kd {
		e.evalWavefront(bx)
		return
	}
	lab := e.label(bx.z)
	myQ := (e.vp.ID() - bx.sb) / (bx.z / g.kd)
	for phi := 0; phi < g.phases(); phi++ {
		// Redistribution superstep: forward values produced in earlier
		// phases of this box (and box inputs delivered by ancestors) to
		// the owners of their phase-phi consumers.
		e.redistribute(bx, phi, lab)
		e.evalBox(g.subBox(bx, phi, myQ))
	}
}

// redistribute sends, for every value this VP canonically owns, the value
// to the compute-owners of its consumers that are evaluated in phase phi
// of box bx.  One superstep, label lab.
func (e *evaluator) redistribute(bx box, phi, lab int) {
	g := e.g
	var cbuf [9]node
	var targets [9]int
	for nd, v := range e.vals {
		if !g.contains(bx, nd) || g.computeOwner(nd) != e.vp.ID() {
			continue
		}
		nt := 0
		for _, ch := range g.consumers(nd, cbuf[:0]) {
			if !g.contains(bx, ch) {
				continue
			}
			cphi, _ := g.subPhase(bx, ch)
			if cphi != phi {
				continue
			}
			// Skip consumers inside nd's own sub-box: those are handled
			// internally (and nd's sub-box always has an earlier phase).
			nphi, nq := g.subPhase(bx, nd)
			chphi, chq := g.subPhase(bx, ch)
			if nphi == chphi && nq == chq {
				continue
			}
			own := g.computeOwner(ch)
			if own == e.vp.ID() {
				continue // already local
			}
			dup := false
			for i := 0; i < nt; i++ {
				if targets[i] == own {
					dup = true
					break
				}
			}
			if !dup {
				targets[nt] = own
				nt++
				e.vp.Send(own, payload{nd: nd, v: v})
			}
		}
	}
	if e.wise {
		core.WisenessDummies(e.vp, lab, 1)
	}
	e.vp.Sync(lab)
	e.drainInbox()
}

// evalLocal evaluates a leaf box on a single VP, in time order.
func (e *evaluator) evalLocal(bx box) {
	if bx.empty {
		return
	}
	e.forEachNodeByTime(bx, func(nd node) {
		e.store(nd, e.g.apply(nd, e.in, e.vals))
	})
}

// evalWavefront evaluates a box on a segment of 1 < z < k^d VPs as a
// straightforward wavefront: one superstep per time row (2z rows for d=1),
// each VP evaluating the nodes of its (a[,c]) slab and forwarding results
// to the owners of next-row consumers.  This is the paper's
// "2·n_τ − 1 supersteps of label τ·log k" base case.
func (e *evaluator) evalWavefront(bx box) {
	g := e.g
	lab := e.label(bx.z)
	// Time rows of the box: t = (a-b)/2 spans w consecutive values.
	tLo := (bx.A0 - bx.B0 - bx.w + 2) / 2
	var cbuf [9]node
	for row := 0; row < bx.w; row++ {
		t := tLo + row
		if !bx.empty {
			e.forEachNodeAtTime(bx, t, func(nd node) {
				v := g.apply(nd, e.in, e.vals)
				e.store(nd, v)
				// Forward to next-row consumers inside the box.
				var sent [9]int
				ns := 0
				for _, ch := range g.consumers(nd, cbuf[:0]) {
					if !g.contains(bx, ch) {
						continue
					}
					own := g.computeOwner(ch)
					if own == e.vp.ID() {
						continue
					}
					dup := false
					for i := 0; i < ns; i++ {
						if sent[i] == own {
							dup = true
							break
						}
					}
					if !dup {
						sent[ns] = own
						ns++
						e.vp.Send(own, payload{nd: nd, v: v})
					}
				}
			})
		}
		if e.wise {
			core.WisenessDummies(e.vp, lab, 1)
		}
		e.vp.Sync(lab)
		e.drainInbox()
	}
}

// forEachNodeByTime visits the valid nodes of a z=1 box in time order.
func (e *evaluator) forEachNodeByTime(bx box, f func(node)) {
	tLo := (bx.A0 - bx.B0 - bx.w + 2) / 2
	for row := 0; row < bx.w; row++ {
		e.forEachNodeAtTime(bx, tLo+row, f)
	}
}

// forEachNodeAtTime visits the valid nodes of bx owned by this VP at time
// t.  For multi-VP boxes (wavefront) ownership is the (a[,c]) slab; for
// z=1 the single VP owns everything.
func (e *evaluator) forEachNodeAtTime(bx box, t int, f func(node)) {
	g := e.g
	aLo, aHi := bx.A0, bx.A0+bx.w
	if bx.z > 1 {
		// Slab ownership: two consecutive a values per VP.
		pos := e.vp.ID() - bx.sb
		if g.d == 1 {
			aLo = bx.A0 + 2*pos
			aHi = aLo + 2
		} else {
			aLo = bx.A0 + 2*(pos/(bx.w/2))
			aHi = aLo + 2
		}
	}
	for a := aLo; a < aHi; a++ {
		b := a - 2*t
		if b < bx.B0 || b >= bx.B0+bx.w {
			continue
		}
		if g.d == 1 {
			nd := node{a: int32(a), b: int32(b)}
			if g.valid(nd) {
				f(nd)
			}
			continue
		}
		cLo, cHi := bx.C0, bx.C0+bx.w
		if bx.z > 1 {
			pos := e.vp.ID() - bx.sb
			cLo = bx.C0 + 2*(pos%(bx.w/2))
			cHi = cLo + 2
		}
		for c := cLo; c < cHi; c++ {
			nd := node{a: int32(a), b: int32(b), c: int32(c)}
			if g.valid(nd) {
				f(nd)
			}
		}
	}
}
