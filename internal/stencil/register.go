package stencil

import (
	"context"
	"math/rand"

	"netoblivious/alg"
)

// randCells draws the deterministic registry input.
func randCells(rng *rand.Rand, n int) []int64 {
	in := make([]int64, n)
	for i := range in {
		in[i] = int64(rng.Intn(1 << 20))
	}
	return in
}

// The registry descriptors pin Wise (see the matmul registration note).
func init() {
	alg.MustRegister(alg.Algorithm{
		Name:    "stencil1",
		Doc:     "(n,1)-stencil diamond recursion (§4.4.1); n = spatial side",
		SizeDoc: "spatial side n, a power of two >= 2",
		Sizes:   []int{2, 8, 64, 1024},
		Valid:   alg.PowerOfTwo(2),
		RunFn: func(ctx context.Context, spec alg.Spec, n int) (alg.Result, error) {
			spec.Wise = true
			r, err := Run(n, 1, randCells(alg.SeededRand(), n), spec)
			if err != nil {
				return alg.Result{}, err
			}
			return alg.Result{Trace: r.Trace}, nil
		},
	})
	alg.MustRegister(alg.Algorithm{
		Name:    "stencil2",
		Doc:     "(n,2)-stencil octahedral recursion (§4.4.2); n = spatial side, v = n²",
		SizeDoc: "spatial side n, a power of two >= 2 (the machine has v = n² VPs)",
		Sizes:   []int{2, 8, 64},
		Valid:   alg.PowerOfTwo(2),
		RunFn: func(ctx context.Context, spec alg.Spec, n int) (alg.Result, error) {
			spec.Wise = true
			r, err := Run(n, 2, randCells(alg.SeededRand(), n*n), spec)
			if err != nil {
				return alg.Result{}, err
			}
			return alg.Result{Trace: r.Trace}, nil
		},
	})
}
