package network

import (
	"fmt"
	"math/bits"
	"sync"
)

// Packet is the in-flight routing state of one message.  Dst is the final
// destination; Via is the intermediate destination of a two-phase
// strategy (Valiant), or -1 when heading straight to Dst.
type Packet struct {
	Dst int32
	Via int32
}

// target is the node the packet is currently steering toward.
func (pk Packet) target() int32 {
	if pk.Via >= 0 {
		return pk.Via
	}
	return pk.Dst
}

// RouteResult summarizes one routed message set.
type RouteResult struct {
	// Makespan is the number of steps until the last delivery.
	Makespan int
	// TotalHops is the sum of path lengths actually traversed.
	TotalHops int
	// Delivered is the number of messages routed.
	Delivered int
}

// edgeQueue is a growable FIFO ring buffer of packets for one directed
// edge.  The zero value is an empty queue.
type edgeQueue struct {
	buf  []Packet
	head int
	n    int
}

func (q *edgeQueue) push(pk Packet) {
	if q.n == len(q.buf) {
		grown := make([]Packet, max(4, 2*len(q.buf)))
		for i := 0; i < q.n; i++ {
			grown[i] = q.buf[(q.head+i)%len(q.buf)]
		}
		q.buf, q.head = grown, 0
	}
	q.buf[(q.head+q.n)%len(q.buf)] = pk
	q.n++
}

func (q *edgeQueue) pop() Packet {
	pk := q.buf[q.head]
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return pk
}

// arrival is a packet that traversed an edge this step.
type arrival struct {
	at int32
	pk Packet
}

// routeState is the per-Route mutable state of the engine, reusable
// across calls on the same Sim (via the state pool) so steady-state
// routing allocates nothing per step.
type routeState struct {
	queues   []edgeQueue
	active   []uint64 // bitset over directed edge ids; set = queue nonempty
	arrivals []arrival
}

func (s *Sim) newState() *routeState {
	e := s.topo.Edges()
	return &routeState{
		queues: make([]edgeQueue, e),
		active: make([]uint64, (e+63)/64),
	}
}

func (s *Sim) getState() *routeState {
	if st := s.states.Get(); st != nil {
		return st.(*routeState)
	}
	return s.newState()
}

func (s *Sim) putState(st *routeState) { s.states.Put(st) }

// Route injects every (src, dst) message at time 0 and runs the
// synchronous store-and-forward simulation to completion under
// deterministic shortest-path routing.  Messages with src == dst are
// delivered instantly.
//
//nob:deterministic
func (s *Sim) Route(msgs [][2]int) RouteResult {
	return s.RouteWith(ShortestPath(), msgs)
}

// RouteWith routes the message set under the given strategy.  Identical
// inputs (and, for randomized routers, identical seeds) produce identical
// results on every run: packets are injected in message order and edges
// always drain in ascending edge-id order — the (node, neighbor-index)
// lexicographic order — with no dependence on scheduling or GOMAXPROCS.
//
//nob:deterministic
func (s *Sim) RouteWith(r Router, msgs [][2]int) RouteResult {
	for _, m := range msgs {
		if m[0] < 0 || m[0] >= s.topo.P || m[1] < 0 || m[1] >= s.topo.P {
			panic(fmt.Sprintf("network: message %v out of range", m))
		}
	}
	start := s.Probe.Now()
	st := s.getState()
	res := st.run(s, r, msgs)
	// Pooled only on normal completion: a panic unwinding past here (a
	// router or topology bug) must not recycle half-drained queues into
	// the next Route call.
	s.putState(st)
	if s.Probe != nil {
		s.Probe.Span("network", "route "+s.topo.Name, 0, start, map[string]any{
			"strategy":   r.Name(),
			"messages":   len(msgs),
			"makespan":   res.Makespan,
			"total_hops": res.TotalHops,
		})
	}
	return res
}

// enqueue places pk, currently at node `at`, on an outgoing edge toward
// its next hop: among the parallel edges of the (at → hop) link it picks
// the shortest queue, breaking ties by lowest edge id.  It runs once per
// hop of every routed packet.
//
//nob:hotpath
func (st *routeState) enqueue(s *Sim, at int32, pk Packet) {
	hop := s.nextHop[at][pk.target()]
	for _, g := range s.topo.links[at] {
		if g.to != hop {
			continue
		}
		e := g.e0
		if g.width > 1 {
			best := st.queues[e].n
			for i := int32(1); i < g.width; i++ {
				if n := st.queues[g.e0+i].n; n < best {
					best, e = n, g.e0+i
				}
			}
		}
		st.queues[e].push(pk)
		st.active[e>>6] |= 1 << uint(e&63)
		return
	}
	//nolint:hotalloc // unreachable unless the routing table is corrupt; the cold panic path may format
	panic(fmt.Sprintf("network: %s: no link %d->%d", s.topo.Name, at, hop))
}

// settle advances the packet's phase at node `at`: clearing a reached
// intermediate destination.  It reports whether the packet is home.
func settle(at int32, pk *Packet) (delivered bool) {
	if pk.Via == at {
		pk.Via = -1
	}
	return pk.Dst == at
}

// run is the simulation's inner loop: inject, then drain active edges
// superstep by superstep until every packet is home.  It reuses the
// pooled state's buffers and must stay allocation-free per step.
//
//nob:hotpath
func (st *routeState) run(s *Sim, r Router, msgs [][2]int) RouteResult {
	res := RouteResult{}
	inflight := 0
	for _, m := range msgs {
		pk := r.Inject(int32(m[0]), int32(m[1]))
		if settle(int32(m[0]), &pk) {
			res.Delivered++
			continue
		}
		st.enqueue(s, int32(m[0]), pk)
		inflight++
	}
	step := 0
	arrivals := st.arrivals[:0]
	for inflight > 0 {
		step++
		// Drain one packet from every active edge, ascending edge id.
		// The bitset scan is the event horizon: idle edges cost one
		// cleared bit, not a map visit and a sort slot.
		for w, word := range st.active {
			for word != 0 {
				b := bits.TrailingZeros64(word)
				word &^= 1 << uint(b)
				e := int32(w<<6 | b)
				q := &st.queues[e]
				arrivals = append(arrivals, arrival{at: s.topo.edgeHead[e], pk: q.pop()})
				res.TotalHops++
				if q.n == 0 {
					st.active[w] &^= 1 << uint(b)
				}
			}
		}
		// Deliver or forward, in the same deterministic order.
		for _, a := range arrivals {
			if settle(a.at, &a.pk) {
				res.Delivered++
				res.Makespan = step
				inflight--
				continue
			}
			st.enqueue(s, a.at, a.pk)
		}
		arrivals = arrivals[:0]
	}
	st.arrivals = arrivals
	return res
}

// MergeResults combines results of independently routed message sets: the
// merged makespan is the maximum (the sets run concurrently on disjoint
// parts of the network), hops and deliveries add.
func MergeResults(results []RouteResult) RouteResult {
	var m RouteResult
	for _, r := range results {
		if r.Makespan > m.Makespan {
			m.Makespan = r.Makespan
		}
		m.TotalHops += r.TotalHops
		m.Delivered += r.Delivered
	}
	return m
}

// RouteSets routes independent message sets, each with its own router
// from mkRouter (nil = shortest-path for every set; randomized routers
// must not be shared across sets, their RNG draws would race).  With
// parallel true the sets run concurrently on separate engine states
// sharing the immutable tables.  Per-set results are deterministic either
// way.  When the sets use disjoint links — e.g. cluster-confined
// h-relations on ring or hypercube, whose shortest paths stay inside the
// index-prefix cluster — MergeResults of the output equals routing the
// union in one call.
func (s *Sim) RouteSets(sets [][][2]int, mkRouter func(set int) Router, parallel bool) []RouteResult {
	if mkRouter == nil {
		mkRouter = func(int) Router { return ShortestPath() }
	}
	out := make([]RouteResult, len(sets))
	if !parallel {
		for i, msgs := range sets {
			out[i] = s.RouteWith(mkRouter(i), msgs)
		}
		return out
	}
	var wg sync.WaitGroup
	for i, msgs := range sets {
		wg.Add(1)
		go func(i int, msgs [][2]int) {
			defer wg.Done()
			out[i] = s.RouteWith(mkRouter(i), msgs)
		}(i, msgs)
	}
	wg.Wait()
	return out
}
