package network

import (
	"fmt"
	"math/rand"
	"sort"
)

// Routing strategy names, used by the registry and the nobld analysis
// API.
const (
	StrategyShortestPath = "shortest-path"
	StrategyValiant      = "valiant"
)

// Router is a pluggable routing strategy: it assigns each injected
// message its in-flight state.  Hop-by-hop forwarding always follows the
// simulator's deterministic shortest-path tables toward Packet.target(),
// so a strategy shapes routes purely through intermediate destinations —
// the oblivious-routing design space of Valiant and of Räcke-style
// schemes, where paths may not depend on the traffic pattern.
type Router interface {
	// Name identifies the strategy.
	Name() string
	// Inject returns the initial routing state of a message src → dst.
	Inject(src, dst int32) Packet
}

// shortestPath routes every packet directly along the precomputed
// shortest path — the deterministic single-phase baseline.
type shortestPath struct{}

func (shortestPath) Name() string { return StrategyShortestPath }

func (shortestPath) Inject(src, dst int32) Packet { return Packet{Dst: dst, Via: -1} }

// ShortestPath returns the deterministic shortest-path router (the
// Sim.Route default).  It is stateless and safe to share.
func ShortestPath() Router { return shortestPath{} }

// valiant implements Valiant's randomized two-phase oblivious routing:
// each packet first travels to a random intermediate node, then to its
// destination.  The intermediate is drawn uniformly from the smallest
// 2^k-aligned index range containing both endpoints — the smallest D-BSP
// cluster enclosing the message — so cluster-confined h-relations stay
// cluster-confined and the h·g_i + ℓ_i comparison remains meaningful.
// Two phases trade a factor ≈2 in distance for congestion that is, with
// high probability, within a constant of optimal for any permutation.
type valiant struct {
	rng *rand.Rand
}

func (*valiant) Name() string { return StrategyValiant }

func (v *valiant) Inject(src, dst int32) Packet {
	if src == dst {
		return Packet{Dst: dst, Via: -1}
	}
	// Smallest aligned power-of-two range [base, base+m) with both ends.
	k := uint(0)
	for src>>k != dst>>k {
		k++
	}
	base := (src >> k) << k
	return Packet{Dst: dst, Via: base + v.rng.Int31n(1<<k)}
}

// Valiant returns a seeded Valiant two-phase router.  Identical seeds
// reproduce identical routes; a router instance must not be shared
// across concurrent Route calls (its RNG draws would race — derive one
// per set, e.g. seed+i, as RouteSets' mkRouter does naturally).
func Valiant(seed int64) Router {
	return &valiant{rng: rand.New(rand.NewSource(seed))}
}

// routerFactories registers the strategy constructors.
var routerFactories = map[string]func(seed int64) Router{
	StrategyShortestPath: func(int64) Router { return ShortestPath() },
	StrategyValiant:      Valiant,
}

// RouterNames lists the registered strategies in deterministic order.
func RouterNames() []string {
	names := make([]string, 0, len(routerFactories))
	for name := range routerFactories {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// RouterByName builds the named strategy; seed only matters for
// randomized ones.
func RouterByName(name string, seed int64) (Router, error) {
	f, ok := routerFactories[name]
	if !ok {
		return nil, fmt.Errorf("network: unknown routing strategy %q (have %v)", name, RouterNames())
	}
	return f(seed), nil
}
