package network

import (
	"math/rand"
	"testing"
)

// TestRingTwoNodeDedup is the regression test for the phantom-parallel-
// link bug: Ring(2)'s wrap-around neighbor coincides with its forward
// neighbor ((u+1)%2 == (u+p-1)%2), and listing it twice inflated the
// degree with a link the router could never use.
func TestRingTwoNodeDedup(t *testing.T) {
	r := Ring(2)
	for u := 0; u < 2; u++ {
		if got := r.Neighbors(u); len(got) != 1 || got[0] != 1-u {
			t.Errorf("ring(2) node %d neighbors = %v, want [%d]", u, got, 1-u)
		}
	}
	if e := r.Edges(); e != 2 {
		t.Errorf("ring(2) has %d directed edges, want 2", e)
	}
	s := NewSim(r)
	if d := s.Diameter(); d != 1 {
		t.Errorf("ring(2) diameter = %d, want 1", d)
	}
	// Two messages over the single 0->1 link serialize: makespan 2, not
	// the 1 a phantom second link would allow.
	res := s.Route([][2]int{{0, 1}, {0, 1}})
	if res.Makespan != 2 || res.Delivered != 2 || res.TotalHops != 2 {
		t.Errorf("ring(2) two-message route = %+v, want makespan 2", res)
	}
}

// TestTorus2DTwoByTwoDedup: the 2x2 torus has side q=2 in both
// dimensions, so every wrap-around collapses; each node has exactly one
// row and one column neighbor.
func TestTorus2DTwoByTwoDedup(t *testing.T) {
	tor := Torus2D(4)
	for u := 0; u < 4; u++ {
		if got := len(tor.Neighbors(u)); got != 2 {
			t.Errorf("torus2D(4) node %d degree = %d, want 2", u, got)
		}
	}
	if e := tor.Edges(); e != 8 {
		t.Errorf("torus2D(4) has %d directed edges, want 8", e)
	}
	s := NewSim(tor)
	if d := s.Diameter(); d != 2 {
		t.Errorf("torus2D(4) diameter = %d, want 2", d)
	}
	// Node 0 -> 3 is the diagonal: distance 2, and doubling the load on
	// the two disjoint routes still bounds the makespan by serialization.
	res := s.Route([][2]int{{0, 3}, {0, 3}})
	if res.Delivered != 2 || res.Makespan < 2 || res.Makespan > 3 {
		t.Errorf("torus2D(4) diagonal route = %+v, want makespan in [2,3]", res)
	}
}

func TestTorus3DShape(t *testing.T) {
	tor := Torus3D(64) // 4x4x4
	for u := 0; u < 64; u++ {
		if got := len(tor.Neighbors(u)); got != 6 {
			t.Errorf("torus3D(64) node %d degree = %d, want 6", u, got)
		}
	}
	s := NewSim(tor)
	if d := s.Diameter(); d != 6 {
		t.Errorf("torus3D(64) diameter = %d, want 6 (3 axes x q/2)", d)
	}
	// The 2x2x2 torus is the 3-cube: wrap-around dedup in every axis.
	cube := Torus3D(8)
	for u := 0; u < 8; u++ {
		if got := len(cube.Neighbors(u)); got != 3 {
			t.Errorf("torus3D(8) node %d degree = %d, want 3", u, got)
		}
	}
	if d := NewSim(cube).Diameter(); d != 3 {
		t.Errorf("torus3D(8) diameter = %d, want 3", d)
	}
}

func TestFatTreeShape(t *testing.T) {
	p := 16
	ft := FatTree(p)
	if ft.P != p || ft.N != 2*p-1 {
		t.Fatalf("fattree(16): P=%d N=%d, want 16/31", ft.P, ft.N)
	}
	// Every processor has exactly one uplink; switches connect two
	// children bundles and one parent bundle (root: children only).
	for u := 0; u < p; u++ {
		if got := len(ft.Neighbors(u)); got != 1 {
			t.Errorf("fattree leaf %d degree = %d, want 1", u, got)
		}
	}
	s := NewSim(ft)
	// Processor-to-processor diameter: up log p levels, down log p.
	if d := s.Diameter(); d != 8 {
		t.Errorf("fattree(16) diameter = %d, want 8", d)
	}
	// Uplink widths follow the area-universal thinning m/log2(m).
	for _, tc := range []struct{ m, want int }{{1, 1}, {2, 2}, {4, 2}, {8, 2}, {16, 4}, {32, 6}, {64, 10}} {
		if got := uplinkWidth(tc.m); got != tc.want {
			t.Errorf("uplinkWidth(%d) = %d, want %d", tc.m, got, tc.want)
		}
	}
	// Parallel links are real capacity: a full bisection exchange on the
	// fat-tree beats the same exchange on a width-1 binary tree.  Both
	// halves exchange mirrors through the root bundle.
	msgs := BisectionRelation(p, 0, 4)
	res := s.Route(msgs)
	if res.Delivered != len(msgs) {
		t.Fatalf("fattree bisection lost messages: %+v", res)
	}
	// 32 packets per direction cross the root; its bundle width is
	// uplinkWidth(8)=2, so serialization alone forces >= 16 steps.
	if res.Makespan < 16 {
		t.Errorf("fattree bisection makespan %d below root-capacity bound 16", res.Makespan)
	}
}

// TestTopologyRegistry covers the by-name constructor table.
func TestTopologyRegistry(t *testing.T) {
	want := []string{FamilyFatTree, FamilyHypercube, FamilyRing, FamilyTorus2D, FamilyTorus3D}
	got := TopologyNames()
	if len(got) != len(want) {
		t.Fatalf("TopologyNames() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TopologyNames() = %v, want %v", got, want)
		}
	}
	for _, name := range want {
		topo, err := TopologyByName(name, 64)
		if err != nil {
			t.Fatalf("TopologyByName(%s, 64): %v", name, err)
		}
		if topo.Family != name || topo.P != 64 {
			t.Errorf("%s: family=%q P=%d", name, topo.Family, topo.P)
		}
	}
	// Size validation without panics.
	if _, err := TopologyByName(FamilyTorus2D, 32); err == nil {
		t.Error("torus2d at non-square 32 did not error")
	}
	if _, err := TopologyByName(FamilyTorus3D, 16); err == nil {
		t.Error("torus3d at non-cubic 16 did not error")
	}
	if _, err := TopologyByName("moebius", 16); err == nil {
		t.Error("unknown family did not error")
	}
	if !TopologyValid(FamilyTorus3D, 512) || TopologyValid(FamilyTorus3D, 128) {
		t.Error("TopologyValid torus3d: want 512 valid, 128 invalid")
	}
}

// TestNewTopologiesRouteHRelations: the engine delivers every message of
// cluster h-relations on the new topologies too.
func TestNewTopologiesRouteHRelations(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, topo := range []*Topology{Torus3D(64), FatTree(64)} {
		s := NewSim(topo)
		for _, level := range []int{0, 2} {
			for _, h := range []int{1, 4} {
				msgs := ClusterHRelation(rng, topo.P, level, h)
				res := s.Route(msgs)
				if res.Delivered != len(msgs) {
					t.Errorf("%s level=%d h=%d: delivered %d of %d", topo.Name, level, h, res.Delivered, len(msgs))
				}
			}
		}
	}
}
