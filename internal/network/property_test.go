package network

import (
	"math/rand"
	"testing"
)

// walkPath reconstructs the shortest path src -> dst the tables dictate,
// returning the directed (node, hop) pairs traversed.
func (s *Sim) walkPath(src, dst int) [][2]int {
	var hops [][2]int
	for at := src; at != dst; {
		next := int(s.nextHop[at][dst])
		hops = append(hops, [2]int{at, next})
		at = next
	}
	return hops
}

// congestionBound computes the max-load lower bound of shortest-path
// routing: the largest (packets over a directed link) / (link capacity),
// where capacity is the parallel-edge multiplicity of the link.  Every
// link moves capacity packets per step, so the makespan is at least the
// ceiling of that ratio.
func (s *Sim) congestionBound(msgs [][2]int) int {
	load := map[[2]int]int{}
	for _, m := range msgs {
		for _, hop := range s.walkPath(m[0], m[1]) {
			load[hop]++
		}
	}
	bound := 0
	for hop, n := range load {
		capacity := 0
		for _, g := range s.topo.links[hop[0]] {
			if g.to == int32(hop[1]) {
				capacity = int(g.width)
			}
		}
		if capacity == 0 {
			panic("walked a nonexistent link")
		}
		if b := (n + capacity - 1) / capacity; b > bound {
			bound = b
		}
	}
	return bound
}

// TestRouteLowerBounds is the property test of the routing engine: on
// random h-relations over every topology, the measured makespan is at
// least the max shortest-path distance among routed pairs (a packet
// cannot beat its own path) and at least the congestion bound (a link
// bundle moves only its capacity per step).  The randomized strategy is
// held to the distance bound, which is strategy-independent.
func TestRouteLowerBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	topos := []*Topology{Ring(32), Torus2D(16), Torus3D(64), Hypercube(64), FatTree(32)}
	for _, topo := range topos {
		s := NewSim(topo)
		for trial := 0; trial < 4; trial++ {
			h := 1 + rng.Intn(4)
			level := rng.Intn(2)
			msgs := ClusterHRelation(rng, topo.P, level, h)
			// Add a handful of fully random pairs for non-permutation load.
			for extra := 0; extra < topo.P/2; extra++ {
				msgs = append(msgs, [2]int{rng.Intn(topo.P), rng.Intn(topo.P)})
			}
			maxDist := 0
			for _, m := range msgs {
				if d := s.Dist(m[0], m[1]); d > maxDist {
					maxDist = d
				}
			}
			res := s.Route(msgs)
			if res.Delivered != len(msgs) {
				t.Fatalf("%s trial %d: delivered %d of %d", topo.Name, trial, res.Delivered, len(msgs))
			}
			if res.Makespan < maxDist {
				t.Errorf("%s trial %d: makespan %d below distance bound %d", topo.Name, trial, res.Makespan, maxDist)
			}
			if bound := s.congestionBound(msgs); res.Makespan < bound {
				t.Errorf("%s trial %d: makespan %d below congestion bound %d", topo.Name, trial, res.Makespan, bound)
			}
			vres := s.RouteWith(Valiant(int64(trial)), msgs)
			if vres.Delivered != len(msgs) {
				t.Fatalf("%s trial %d: valiant delivered %d of %d", topo.Name, trial, vres.Delivered, len(msgs))
			}
			if vres.Makespan < maxDist {
				t.Errorf("%s trial %d: valiant makespan %d below distance bound %d", topo.Name, trial, vres.Makespan, maxDist)
			}
		}
	}
}

// TestTotalHopsEqualsPathLengths: under shortest-path routing the
// engine's TotalHops is exactly the sum of the table-dictated path
// lengths — no packet wanders.
func TestTotalHopsEqualsPathLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for _, topo := range []*Topology{Ring(16), Torus3D(8), Hypercube(32), FatTree(16)} {
		s := NewSim(topo)
		var msgs [][2]int
		want := 0
		for i := 0; i < 3*topo.P; i++ {
			m := [2]int{rng.Intn(topo.P), rng.Intn(topo.P)}
			msgs = append(msgs, m)
			want += s.Dist(m[0], m[1])
		}
		if res := s.Route(msgs); res.TotalHops != want {
			t.Errorf("%s: TotalHops %d != summed path lengths %d", topo.Name, res.TotalHops, want)
		}
	}
}
