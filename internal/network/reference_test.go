package network

import "sort"

// routeMapReference is the pre-refactor map-of-slices simulator, retained
// verbatim (modulo the removal of the never-read packet.seq field) as the
// behavioral reference for the flat engine: the golden test pins
// RouteResult equality on seed cases, and BenchmarkRouteMapReference
// quantifies the speedup of the rewrite.  Its hot loop re-collects and
// re-sorts every edge key ever touched on every step and never deletes
// drained keys — the O(E log E)-per-step behavior the flat engine
// replaces.
func (s *Sim) routeMapReference(msgs [][2]int) RouteResult {
	p := s.topo.P
	type refPacket struct {
		dst int
	}
	// Output queue per directed edge, keyed by (u, neighbor index).
	type edgeKey struct{ u, ni int }
	queues := map[edgeKey][]refPacket{}
	neighborIndex := make([]map[int]int, p)
	for u := 0; u < p; u++ {
		neighborIndex[u] = make(map[int]int, len(s.topo.adj[u]))
		for ni, w := range s.topo.adj[u] {
			neighborIndex[u][w] = ni
		}
	}
	res := RouteResult{}
	enqueue := func(at int, pk refPacket) bool {
		if at == pk.dst {
			res.Delivered++
			return false
		}
		hop := int(s.nextHop[at][pk.dst])
		k := edgeKey{at, neighborIndex[at][hop]}
		queues[k] = append(queues[k], pk)
		return true
	}
	inflight := 0
	for _, m := range msgs {
		if enqueue(m[0], refPacket{dst: m[1]}) {
			inflight++
		}
	}
	step := 0
	type refArrival struct {
		at int
		pk refPacket
	}
	for inflight > 0 {
		step++
		// Deterministic edge order.
		keys := make([]edgeKey, 0, len(queues))
		for k, q := range queues {
			if len(q) > 0 {
				keys = append(keys, k)
			}
		}
		sort.Slice(keys, func(a, b int) bool {
			if keys[a].u != keys[b].u {
				return keys[a].u < keys[b].u
			}
			return keys[a].ni < keys[b].ni
		})
		arrivals := make([]refArrival, 0, len(keys))
		for _, k := range keys {
			q := queues[k]
			pk := q[0]
			queues[k] = q[1:]
			res.TotalHops++
			arrivals = append(arrivals, refArrival{at: s.topo.adj[k.u][k.ni], pk: pk})
		}
		for _, a := range arrivals {
			if a.at == a.pk.dst {
				res.Delivered++
				res.Makespan = step
				inflight--
				continue
			}
			if !enqueue(a.at, a.pk) {
				res.Makespan = step
				inflight--
			}
		}
	}
	return res
}
