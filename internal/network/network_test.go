package network

import (
	"math/rand"
	"testing"

	"netoblivious/internal/dbsp"
)

func TestTopologyShapes(t *testing.T) {
	r := Ring(8)
	for u := 0; u < 8; u++ {
		if len(r.Neighbors(u)) != 2 {
			t.Errorf("ring node %d has degree %d", u, len(r.Neighbors(u)))
		}
	}
	h := Hypercube(16)
	for u := 0; u < 16; u++ {
		if len(h.Neighbors(u)) != 4 {
			t.Errorf("hypercube node %d has degree %d", u, len(h.Neighbors(u)))
		}
	}
	tor := Torus2D(16)
	for u := 0; u < 16; u++ {
		if len(tor.Neighbors(u)) != 4 {
			t.Errorf("torus node %d has degree %d", u, len(tor.Neighbors(u)))
		}
	}
}

func TestDiameters(t *testing.T) {
	if d := NewSim(Ring(16)).Diameter(); d != 8 {
		t.Errorf("ring(16) diameter = %d, want 8", d)
	}
	if d := NewSim(Hypercube(32)).Diameter(); d != 5 {
		t.Errorf("hypercube(32) diameter = %d, want 5", d)
	}
	if d := NewSim(Torus2D(16)).Diameter(); d != 4 {
		t.Errorf("torus2D(16) diameter = %d, want 4", d)
	}
}

func TestShortestPathTables(t *testing.T) {
	// Next hops must strictly decrease distance.
	for _, topo := range []*Topology{Ring(16), Torus2D(16), Hypercube(16)} {
		s := NewSim(topo)
		for u := 0; u < topo.P; u++ {
			for d := 0; d < topo.P; d++ {
				if u == d {
					continue
				}
				hop := int(s.nextHop[u][d])
				if s.Dist(hop, d) != s.Dist(u, d)-1 {
					t.Fatalf("%s: next hop %d->%d via %d does not descend", topo.Name, u, d, hop)
				}
			}
		}
	}
}

func TestRouteSingleMessage(t *testing.T) {
	s := NewSim(Ring(16))
	res := s.Route([][2]int{{0, 8}})
	if res.Makespan != 8 || res.Delivered != 1 || res.TotalHops != 8 {
		t.Errorf("single message: %+v, want makespan 8", res)
	}
	// Self message: free.
	res = s.Route([][2]int{{3, 3}})
	if res.Makespan != 0 || res.Delivered != 1 {
		t.Errorf("self message: %+v", res)
	}
}

func TestRouteAllToOneCongestion(t *testing.T) {
	// p-1 senders into one node on a ring: the receiver's two links are
	// the bottleneck, so makespan >= (p-1)/2.
	p := 32
	s := NewSim(Ring(p))
	var msgs [][2]int
	for u := 1; u < p; u++ {
		msgs = append(msgs, [2]int{u, 0})
	}
	res := s.Route(msgs)
	if res.Delivered != p-1 {
		t.Fatalf("delivered %d, want %d", res.Delivered, p-1)
	}
	if res.Makespan < (p-1)/2 {
		t.Errorf("all-to-one makespan %d below bandwidth bound %d", res.Makespan, (p-1)/2)
	}
}

func TestRoutePermutationDelivers(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, topo := range []*Topology{Ring(32), Torus2D(64), Hypercube(64)} {
		s := NewSim(topo)
		for trial := 0; trial < 5; trial++ {
			perm := rng.Perm(topo.P)
			msgs := make([][2]int, topo.P)
			for i, j := range perm {
				msgs[i] = [2]int{i, j}
			}
			res := s.Route(msgs)
			if res.Delivered != topo.P {
				t.Fatalf("%s: delivered %d of %d", topo.Name, res.Delivered, topo.P)
			}
			if res.Makespan > 4*s.Diameter()+topo.P/2 {
				t.Errorf("%s: permutation makespan %d unreasonably high", topo.Name, res.Makespan)
			}
		}
	}
}

// TestDBSPPredictionBand is the heart of experiment E14: routing a
// cluster-confined h-relation on the real network takes time within a
// constant band of the D-BSP prediction h·g_i + ℓ_i of the matching
// preset vectors.
func TestDBSPPredictionBand(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const p = 64
	cases := []struct {
		topo *Topology
		pr   dbsp.Params
	}{
		{Ring(p), dbsp.Mesh(1, p)},
		{Torus2D(p), dbsp.Mesh(2, p)},
		{Hypercube(p), dbsp.Hypercube(p)},
	}
	for _, c := range cases {
		s := NewSim(c.topo)
		for _, level := range []int{0, 2, 4} {
			for _, h := range []int{1, 4, 16} {
				msgs := ClusterHRelation(rng, p, level, h)
				res := s.Route(msgs)
				if res.Delivered != len(msgs) {
					t.Fatalf("%s: lost messages", c.topo.Name)
				}
				pred := float64(h)*c.pr.G[level] + c.pr.L[level]
				ratio := float64(res.Makespan) / pred
				if ratio > 3 || ratio < 0.02 {
					t.Errorf("%s level=%d h=%d: makespan %d vs D-BSP %.0f (ratio %.3f) outside band",
						c.topo.Name, level, h, res.Makespan, pred, ratio)
				}
			}
		}
	}
}

// TestClusterHRelationShape: every processor sends and receives exactly h,
// and no message crosses its cluster.
func TestClusterHRelationShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p, level, h := 32, 2, 3
	msgs := ClusterHRelation(rng, p, level, h)
	m := p >> uint(level)
	sent := make([]int, p)
	recv := make([]int, p)
	for _, msg := range msgs {
		sent[msg[0]]++
		recv[msg[1]]++
		if msg[0]/m != msg[1]/m {
			t.Fatalf("message %v crosses cluster boundary", msg)
		}
	}
	for u := 0; u < p; u++ {
		if sent[u] != h || recv[u] != h {
			t.Errorf("node %d: sent %d recv %d, want %d", u, sent[u], recv[u], h)
		}
	}
}

// TestBisectionRelation checks the mirror pattern and that its routing
// time on a ring reflects the bisection bound h·m/2... per direction the
// m/2·h packets cross two links, so makespan >= h·m/8.
func TestBisectionRelation(t *testing.T) {
	p := 32
	h := 4
	msgs := BisectionRelation(p, 0, h)
	if len(msgs) != p*h {
		t.Fatalf("message count %d, want %d", len(msgs), p*h)
	}
	s := NewSim(Ring(p))
	res := s.Route(msgs)
	if res.Makespan < h*p/8 {
		t.Errorf("bisection makespan %d below bandwidth bound %d", res.Makespan, h*p/8)
	}
}
