package network

import (
	"math/rand"
	"testing"
)

// The simulators were historically exercised only through E14's mid-range
// configurations; these tests pin the degenerate boundaries: the p=1
// ring, cluster levels deep enough that every cluster is a single
// processor, and empty (h=0) relations.

func TestRingSingleNode(t *testing.T) {
	r := Ring(1)
	if r.P != 1 || len(r.Neighbors(0)) != 0 {
		t.Fatalf("ring(1): P=%d, degree=%d; want an isolated node", r.P, len(r.Neighbors(0)))
	}
	s := NewSim(r)
	if d := s.Diameter(); d != 0 {
		t.Errorf("ring(1) diameter = %d, want 0", d)
	}
	if d := s.Dist(0, 0); d != 0 {
		t.Errorf("ring(1) self distance = %d, want 0", d)
	}
	// Every message on a single node is a self message: delivered at time
	// zero, traversing no links.
	res := s.Route([][2]int{{0, 0}, {0, 0}, {0, 0}})
	if res.Makespan != 0 || res.Delivered != 3 || res.TotalHops != 0 {
		t.Errorf("ring(1) routing = %+v, want 3 instant deliveries", res)
	}
}

func TestRouteEmptyMessageSet(t *testing.T) {
	for _, topo := range []*Topology{Ring(1), Ring(8), Torus2D(16), Hypercube(8)} {
		res := NewSim(topo).Route(nil)
		if res.Makespan != 0 || res.Delivered != 0 || res.TotalHops != 0 {
			t.Errorf("%s: empty route = %+v, want zeros", topo.Name, res)
		}
	}
}

// TestClusterHRelationUnitClusters: at level = log2 p every cluster is a
// single processor, so the only permutation is the identity — h self
// messages per node, all delivered instantly on every topology.
func TestClusterHRelationUnitClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const p, h = 16, 3
	msgs := ClusterHRelation(rng, p, 4, h) // 16 >> 4 = 1: unit clusters
	if len(msgs) != p*h {
		t.Fatalf("message count %d, want %d", len(msgs), p*h)
	}
	for _, m := range msgs {
		if m[0] != m[1] {
			t.Fatalf("unit-cluster relation produced cross message %v", m)
		}
	}
	for _, topo := range []*Topology{Ring(p), Torus2D(p), Hypercube(p)} {
		res := NewSim(topo).Route(msgs)
		if res.Makespan != 0 || res.Delivered != p*h || res.TotalHops != 0 {
			t.Errorf("%s: unit-cluster routing = %+v, want instant delivery of %d", topo.Name, res, p*h)
		}
	}
}

// TestClusterHRelationZeroDegree: h = 0 is the empty relation at every
// level, and routing it is free.
func TestClusterHRelationZeroDegree(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, level := range []int{0, 1, 3} {
		msgs := ClusterHRelation(rng, 8, level, 0)
		if len(msgs) != 0 {
			t.Errorf("level %d: h=0 relation has %d messages, want 0", level, len(msgs))
		}
	}
	if res := NewSim(Ring(8)).Route(ClusterHRelation(rng, 8, 0, 0)); res != (RouteResult{}) {
		t.Errorf("routing the empty relation = %+v, want zero result", res)
	}
}

// TestBisectionRelationDegenerate: h = 0 and unit clusters (m = 1, no
// halves to mirror) both yield the empty pattern.
func TestBisectionRelationDegenerate(t *testing.T) {
	if msgs := BisectionRelation(16, 0, 0); len(msgs) != 0 {
		t.Errorf("h=0 bisection has %d messages", len(msgs))
	}
	if msgs := BisectionRelation(16, 4, 5); len(msgs) != 0 {
		t.Errorf("unit-cluster bisection has %d messages", len(msgs))
	}
}

// TestClusterHRelationTooDeepPanics pins the contract: levels beyond
// log2 p (m < 1) are programmer errors, reported loudly.
func TestClusterHRelationTooDeepPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("level > log2(p) did not panic")
		}
	}()
	ClusterHRelation(rand.New(rand.NewSource(13)), 8, 4, 1)
}

// TestRingOneInvalidSizesStillPanic: widening Ring to p=1 must not have
// loosened the power-of-two requirement.
func TestRingOneInvalidSizesStillPanic(t *testing.T) {
	for _, p := range []int{0, -1, 3, 6} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Ring(%d) did not panic", p)
				}
			}()
			Ring(p)
		}()
	}
}
