package network

import (
	"fmt"
	"math/rand"
	"testing"
)

// benchRelation is the standard benchmark workload: a full h-relation
// (h random permutations) on the whole machine.
func benchRelation(p, h int) [][2]int {
	return ClusterHRelation(rand.New(rand.NewSource(1)), p, 0, h)
}

// BenchmarkRoute measures the flat engine on a p=256 hypercube full
// h-relation — the acceptance workload of the rewrite.
func BenchmarkRoute(b *testing.B) {
	s := NewSim(Hypercube(256))
	msgs := benchRelation(256, 8)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Route(msgs)
	}
}

// BenchmarkRouteMapReference is the same workload on the pre-refactor
// map-of-slices simulator; the ratio to BenchmarkRoute is the speedup.
func BenchmarkRouteMapReference(b *testing.B) {
	s := NewSim(Hypercube(256))
	msgs := benchRelation(256, 8)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.routeMapReference(msgs)
	}
}

// BenchmarkRouteTopologies tracks throughput across the topology suite.
func BenchmarkRouteTopologies(b *testing.B) {
	for _, topo := range []*Topology{Ring(256), Torus2D(256), Torus3D(512), Hypercube(256), FatTree(256)} {
		s := NewSim(topo)
		msgs := benchRelation(topo.P, 4)
		b.Run(topo.Family, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.Route(msgs)
			}
		})
	}
}

// BenchmarkRouteValiant tracks the randomized strategy's overhead.
func BenchmarkRouteValiant(b *testing.B) {
	s := NewSim(Hypercube(256))
	msgs := benchRelation(256, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.RouteWith(Valiant(int64(i)), msgs)
	}
}

// BenchmarkRouteSets compares sequential vs parallel routing of the
// disconnected per-cluster simulations.
func BenchmarkRouteSets(b *testing.B) {
	p, level := 256, 2
	s := NewSim(Hypercube(p))
	m := p >> uint(level)
	rng := rand.New(rand.NewSource(2))
	var sets [][][2]int
	for base := 0; base < p; base += m {
		set := ClusterHRelation(rng, m, 0, 8)
		for i := range set {
			set[i][0] += base
			set[i][1] += base
		}
		sets = append(sets, set)
	}
	for _, parallel := range []bool{false, true} {
		b.Run(fmt.Sprintf("parallel=%v", parallel), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s.RouteSets(sets, nil, parallel)
			}
		})
	}
}
