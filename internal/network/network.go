// Package network implements synchronous store-and-forward point-to-point
// network simulators (ring, 2-D torus, hypercube).  Its purpose in the
// reproduction is foundational: the paper adopts D-BSP(p, g, ℓ) as its
// execution machine model on the strength of Bilardi, Pietracaprina and
// Pucci (Euro-Par 1999), who show the model's 2·log p parameters capture
// the communication costs of a large class of point-to-point networks.
// This package rebuilds that evidence executably: experiment E14 routes
// h-relations confined to i-clusters on the actual networks and compares
// the measured makespan against the D-BSP prediction h·g_i + ℓ_i of the
// corresponding preset vectors (internal/dbsp).
//
// The simulator model: time advances in synchronous steps; every directed
// link transfers one packet per step (FIFO output queues, unbounded
// buffers); packets follow precomputed shortest-path next-hop tables with
// deterministic tie-breaking, so simulations are reproducible.
package network

import (
	"fmt"
	"sort"
)

// Topology is an undirected multigraph of processors.
type Topology struct {
	// Name identifies the network family and size.
	Name string
	// P is the number of processors (= nodes; no separate switch nodes).
	P int
	// adj[u] lists the neighbors of node u in deterministic order.
	adj [][]int
}

// Neighbors returns the adjacency list of node u.
func (t *Topology) Neighbors(u int) []int { return t.adj[u] }

// Ring builds a p-node ring (the 1-D torus); its D-BSP counterpart is
// dbsp.Mesh(1, p).  p = 1 is the degenerate single-node network: no
// links, every message local.
func Ring(p int) *Topology {
	if p < 1 || p&(p-1) != 0 {
		panic(fmt.Sprintf("network: p=%d must be a power of two >= 1", p))
	}
	t := &Topology{Name: fmt.Sprintf("ring(p=%d)", p), P: p, adj: make([][]int, p)}
	if p == 1 {
		t.adj[0] = []int{}
		return t
	}
	for u := 0; u < p; u++ {
		t.adj[u] = []int{(u + 1) % p, (u + p - 1) % p}
	}
	return t
}

// Torus2D builds a √p×√p torus; its D-BSP counterpart is dbsp.Mesh(2, p).
// Node (r, c) has index r·√p + c, so D-BSP clusters (index prefixes) are
// unions of whole rows — submachines with the right bisection, matching
// the recursive decomposition of the 1999 analysis.
func Torus2D(p int) *Topology {
	q := 1
	for q*q < p {
		q *= 2
	}
	if q*q != p {
		panic(fmt.Sprintf("network: Torus2D needs a square power of two, got %d", p))
	}
	t := &Topology{Name: fmt.Sprintf("torus2D(p=%d)", p), P: p, adj: make([][]int, p)}
	for r := 0; r < q; r++ {
		for c := 0; c < q; c++ {
			u := r*q + c
			t.adj[u] = []int{
				r*q + (c+1)%q,
				r*q + (c+q-1)%q,
				((r+1)%q)*q + c,
				((r+q-1)%q)*q + c,
			}
		}
	}
	return t
}

// Hypercube builds a log p-dimensional binary hypercube; its D-BSP
// counterpart is dbsp.Hypercube(p).
func Hypercube(p int) *Topology {
	if p < 2 || p&(p-1) != 0 {
		panic(fmt.Sprintf("network: p=%d must be a power of two >= 2", p))
	}
	t := &Topology{Name: fmt.Sprintf("hypercube(p=%d)", p), P: p, adj: make([][]int, p)}
	for u := 0; u < p; u++ {
		for b := 1; b < p; b *= 2 {
			t.adj[u] = append(t.adj[u], u^b)
		}
	}
	return t
}

// Sim is a routing simulator for one topology, with precomputed
// shortest-path next-hop tables.
type Sim struct {
	topo *Topology
	// nextHop[u][dst] is the neighbor u forwards packets for dst to.
	nextHop [][]int32
	// dist[u][dst] is the shortest-path distance.
	dist [][]int32
}

// NewSim precomputes deterministic shortest-path routing tables with a
// breadth-first search from every destination (ties broken by smallest
// neighbor index).
func NewSim(t *Topology) *Sim {
	p := t.P
	s := &Sim{topo: t, nextHop: make([][]int32, p), dist: make([][]int32, p)}
	for u := 0; u < p; u++ {
		s.nextHop[u] = make([]int32, p)
		s.dist[u] = make([]int32, p)
		for d := range s.dist[u] {
			s.dist[u][d] = -1
		}
	}
	queue := make([]int, 0, p)
	for dst := 0; dst < p; dst++ {
		// BFS over reversed edges (graph is undirected).
		queue = queue[:0]
		queue = append(queue, dst)
		s.dist[dst][dst] = 0
		s.nextHop[dst][dst] = int32(dst)
		for qi := 0; qi < len(queue); qi++ {
			v := queue[qi]
			for _, w := range t.adj[v] {
				if s.dist[w][dst] == -1 {
					s.dist[w][dst] = s.dist[v][dst] + 1
					s.nextHop[w][dst] = int32(v)
					queue = append(queue, w)
				}
			}
		}
	}
	return s
}

// Dist returns the shortest-path distance between two nodes.
func (s *Sim) Dist(u, v int) int { return int(s.dist[u][v]) }

// Diameter returns the network diameter.
func (s *Sim) Diameter() int {
	m := 0
	for u := range s.dist {
		for _, d := range s.dist[u] {
			if int(d) > m {
				m = int(d)
			}
		}
	}
	return m
}

// packet is an in-flight message.
type packet struct {
	dst int
	seq int // injection order, for deterministic queueing
}

// RouteResult summarizes one routed message set.
type RouteResult struct {
	// Makespan is the number of steps until the last delivery.
	Makespan int
	// TotalHops is the sum of path lengths actually traversed.
	TotalHops int
	// Delivered is the number of messages routed.
	Delivered int
}

// Route injects every (src, dst) message at time 0 and runs the
// synchronous store-and-forward simulation to completion.  Messages with
// src == dst are delivered instantly.
func (s *Sim) Route(msgs [][2]int) RouteResult {
	p := s.topo.P
	// Output queue per directed edge, keyed by (u, neighbor index).
	type edgeKey struct{ u, ni int }
	queues := map[edgeKey][]packet{}
	neighborIndex := make([]map[int]int, p)
	for u := 0; u < p; u++ {
		neighborIndex[u] = make(map[int]int, len(s.topo.adj[u]))
		for ni, w := range s.topo.adj[u] {
			neighborIndex[u][w] = ni
		}
	}
	res := RouteResult{}
	enqueue := func(at int, pk packet) bool {
		if at == pk.dst {
			res.Delivered++
			return false
		}
		hop := int(s.nextHop[at][pk.dst])
		k := edgeKey{at, neighborIndex[at][hop]}
		queues[k] = append(queues[k], pk)
		return true
	}
	inflight := 0
	for i, m := range msgs {
		if m[0] < 0 || m[0] >= p || m[1] < 0 || m[1] >= p {
			panic(fmt.Sprintf("network: message %v out of range", m))
		}
		if enqueue(m[0], packet{dst: m[1], seq: i}) {
			inflight++
		}
	}
	step := 0
	type arrival struct {
		at int
		pk packet
	}
	for inflight > 0 {
		step++
		// Deterministic edge order.
		keys := make([]edgeKey, 0, len(queues))
		for k, q := range queues {
			if len(q) > 0 {
				keys = append(keys, k)
			}
		}
		sort.Slice(keys, func(a, b int) bool {
			if keys[a].u != keys[b].u {
				return keys[a].u < keys[b].u
			}
			return keys[a].ni < keys[b].ni
		})
		arrivals := make([]arrival, 0, len(keys))
		for _, k := range keys {
			q := queues[k]
			pk := q[0]
			queues[k] = q[1:]
			res.TotalHops++
			arrivals = append(arrivals, arrival{at: s.topo.adj[k.u][k.ni], pk: pk})
		}
		for _, a := range arrivals {
			if a.at == a.pk.dst {
				res.Delivered++
				res.Makespan = step
				inflight--
				continue
			}
			if !enqueue(a.at, a.pk) {
				res.Makespan = step
				inflight--
			}
		}
	}
	return res
}
