// Package network implements synchronous store-and-forward point-to-point
// network simulators (ring, 2-D/3-D torus, hypercube, area-universal
// fat-tree).  Its purpose in the reproduction is foundational: the paper
// adopts D-BSP(p, g, ℓ) as its execution machine model on the strength of
// Bilardi, Pietracaprina and Pucci (Euro-Par 1999), who show the model's
// 2·log p parameters capture the communication costs of a large class of
// point-to-point networks.  This package rebuilds that evidence
// executably: experiment E14 routes h-relations confined to i-clusters on
// the actual networks and compares the measured makespan against the
// D-BSP prediction h·g_i + ℓ_i of the corresponding preset vectors
// (internal/dbsp).
//
// The simulator model: time advances in synchronous steps; every directed
// link transfers one packet per step (FIFO output queues, unbounded
// buffers); packets follow precomputed shortest-path next-hop tables with
// deterministic tie-breaking, so simulations are reproducible.  Routing
// strategies are pluggable behind the Router interface (router.go): the
// default deterministic shortest-path router, or Valiant-style randomized
// two-phase oblivious routing with a seeded RNG.  The routing core
// (engine.go) is a flat allocation-conscious engine: per-edge ring-buffer
// queues indexed by a contiguous edge array, with an active-edge bitset
// horizon that skips idle links instead of sorting every touched edge on
// every step.
package network

import (
	"sync"

	"netoblivious/internal/obs"
)

// Sim is a routing simulator for one topology, with precomputed
// shortest-path next-hop tables.
type Sim struct {
	topo *Topology
	// nextHop[u][dst] is the neighbor node u forwards packets for dst to.
	nextHop [][]int32
	// dist[u][dst] is the shortest-path distance.
	dist [][]int32
	// states recycles engine state (queues, bitsets) across Route calls.
	states sync.Pool

	// Probe, when non-nil, records one "network"-category span per
	// RouteWith call (strategy, message count, makespan, total hops).
	// Set it before routing; nil costs one pointer check per call.
	Probe *obs.Probe
}

// NewSim precomputes deterministic shortest-path routing tables with a
// breadth-first search from every destination (ties broken by smallest
// neighbor index).  Tables cover every node, switches included.
func NewSim(t *Topology) *Sim {
	n := t.N
	s := &Sim{topo: t, nextHop: make([][]int32, n), dist: make([][]int32, n)}
	for u := 0; u < n; u++ {
		s.nextHop[u] = make([]int32, n)
		s.dist[u] = make([]int32, n)
		for d := range s.dist[u] {
			s.dist[u][d] = -1
		}
	}
	queue := make([]int, 0, n)
	for dst := 0; dst < n; dst++ {
		// BFS over reversed edges (graph is undirected).
		queue = queue[:0]
		queue = append(queue, dst)
		s.dist[dst][dst] = 0
		s.nextHop[dst][dst] = int32(dst)
		for qi := 0; qi < len(queue); qi++ {
			v := queue[qi]
			for _, w := range t.adj[v] {
				if s.dist[w][dst] == -1 {
					s.dist[w][dst] = s.dist[v][dst] + 1
					s.nextHop[w][dst] = int32(v)
					queue = append(queue, w)
				}
			}
		}
	}
	return s
}

// Topology returns the simulated network.
func (s *Sim) Topology() *Topology { return s.topo }

// Dist returns the shortest-path distance between two nodes.
func (s *Sim) Dist(u, v int) int { return int(s.dist[u][v]) }

// Diameter returns the maximum shortest-path distance between two
// processors (switch nodes are route infrastructure, not endpoints).
func (s *Sim) Diameter() int {
	m := 0
	for u := 0; u < s.topo.P; u++ {
		for _, d := range s.dist[u][:s.topo.P] {
			if int(d) > m {
				m = int(d)
			}
		}
	}
	return m
}
