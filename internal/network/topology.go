package network

import (
	"fmt"
	"sort"
)

// Topology family names, used by the registry, the harness's D-BSP
// counterpart table, and the nobld analysis API.
const (
	FamilyRing      = "ring"
	FamilyTorus2D   = "torus2d"
	FamilyTorus3D   = "torus3d"
	FamilyHypercube = "hypercube"
	FamilyFatTree   = "fattree"
)

// Topology is an undirected multigraph of nodes.  Nodes 0..P-1 are
// processors (the only legal message endpoints); nodes P..N-1 are
// switches (fat-tree internal nodes), present only in indirect networks.
// Parallel edges model fat links: each parallel edge forwards one packet
// per step, so multiplicity is capacity.
type Topology struct {
	// Name identifies the network family and size.
	Name string
	// Family is the registry family name (FamilyRing, ...).
	Family string
	// P is the number of processors.
	P int
	// N is the total node count including switches; N == P for direct
	// networks (ring, torus, hypercube).
	N int
	// adj[u] lists the neighbors of node u in deterministic order, with
	// parallel edges to the same neighbor listed contiguously.
	adj [][]int

	// Flat directed-edge arrays, built once by finalize: the directed
	// edge (u, ni) has id edgeOff[u]+ni and head edgeHead[edgeOff[u]+ni].
	edgeOff  []int32
	edgeHead []int32
	// links[u] groups u's outgoing edges by neighbor: parallel edges to
	// the same neighbor form one group of consecutive edge ids.
	links [][]linkGroup
}

// linkGroup is the bundle of parallel directed edges from one node to one
// neighbor: edge ids [e0, e0+width).
type linkGroup struct {
	to    int32
	e0    int32
	width int32
}

// Neighbors returns the adjacency list of node u (parallel edges appear
// once per link).
func (t *Topology) Neighbors(u int) []int { return t.adj[u] }

// Edges returns the number of directed edges (2x the undirected link
// count, counting parallel links individually).
func (t *Topology) Edges() int { return len(t.edgeHead) }

// finalize freezes the adjacency lists into the flat edge arrays the
// routing engine indexes.  Every constructor calls it last.
func (t *Topology) finalize() *Topology {
	t.edgeOff = make([]int32, t.N+1)
	total := 0
	for u := 0; u < t.N; u++ {
		t.edgeOff[u] = int32(total)
		total += len(t.adj[u])
	}
	t.edgeOff[t.N] = int32(total)
	t.edgeHead = make([]int32, 0, total)
	t.links = make([][]linkGroup, t.N)
	for u := 0; u < t.N; u++ {
		for _, w := range t.adj[u] {
			if w == u {
				panic(fmt.Sprintf("network: %s: self loop at node %d", t.Name, u))
			}
			e := int32(len(t.edgeHead))
			t.edgeHead = append(t.edgeHead, int32(w))
			gs := t.links[u]
			if k := len(gs) - 1; k >= 0 && gs[k].to == int32(w) {
				gs[k].width++
			} else {
				t.links[u] = append(gs, linkGroup{to: int32(w), e0: e, width: 1})
			}
		}
	}
	// Contiguity of parallel edges is what lets links[u] be a grouping of
	// consecutive ids; constructors must not interleave them.
	for u := 0; u < t.N; u++ {
		seen := map[int32]bool{}
		for _, g := range t.links[u] {
			if seen[g.to] {
				panic(fmt.Sprintf("network: %s: parallel edges %d->%d not contiguous", t.Name, u, g.to))
			}
			seen[g.to] = true
		}
	}
	return t
}

// mustPow2 validates p as a power of two >= min.
func mustPow2(p, min int, what string) {
	if p < min || p&(p-1) != 0 {
		panic(fmt.Sprintf("network: %s: p=%d must be a power of two >= %d", what, p, min))
	}
}

// Ring builds a p-node ring (the 1-D torus); its D-BSP counterpart is
// dbsp.Mesh(1, p).  p = 1 is the degenerate single-node network: no
// links, every message local.  p = 2 is a single link, not two parallel
// wrap-around links: (u+1) mod 2 and (u-1) mod 2 coincide, and listing
// the coincidence twice would inflate the degree with a phantom edge.
func Ring(p int) *Topology {
	mustPow2(p, 1, "Ring")
	t := &Topology{Name: fmt.Sprintf("ring(p=%d)", p), Family: FamilyRing, P: p, N: p, adj: make([][]int, p)}
	for u := 0; u < p; u++ {
		t.adj[u] = torusLine(u, 1, p, nil)
	}
	return t.finalize()
}

// torusLine appends the +-1 neighbors of coordinate u (stride apart, in a
// cycle of length q) to dst, deduplicating the wrap-around when q == 2
// (where u+1 and u-1 coincide) and emitting nothing when q == 1.
func torusLine(u, stride, q int, dst []int) []int {
	if q == 1 {
		return dst
	}
	base := (u / (stride * q)) * (stride * q)
	off := (u / stride) % q
	dst = append(dst, base+((off+1)%q)*stride+u%stride)
	if q > 2 {
		dst = append(dst, base+((off+q-1)%q)*stride+u%stride)
	}
	return dst
}

// Torus2D builds a √p x √p torus; its D-BSP counterpart is dbsp.Mesh(2, p).
// Node (r, c) has index r·√p + c, so D-BSP clusters (index prefixes) are
// unions of whole rows — submachines with the right bisection, matching
// the recursive decomposition of the 1999 analysis.  Side-2 dimensions
// contribute one link, not two parallel wrap-arounds.
func Torus2D(p int) *Topology {
	q := 1
	for q*q < p {
		q *= 2
	}
	if q*q != p {
		panic(fmt.Sprintf("network: Torus2D needs a square power of two, got %d", p))
	}
	t := &Topology{Name: fmt.Sprintf("torus2D(p=%d)", p), Family: FamilyTorus2D, P: p, N: p, adj: make([][]int, p)}
	for u := 0; u < p; u++ {
		t.adj[u] = torusLine(u, 1, q, t.adj[u]) // row neighbors
		t.adj[u] = torusLine(u, q, q, t.adj[u]) // column neighbors
	}
	return t.finalize()
}

// Torus3D builds a ∛p x ∛p x ∛p torus; its D-BSP counterpart is
// dbsp.Mesh(3, p).  Node (x, y, z) has index (x·∛p + y)·∛p + z, so D-BSP
// clusters are unions of whole planes.
func Torus3D(p int) *Topology {
	q := 1
	for q*q*q < p {
		q *= 2
	}
	if q*q*q != p {
		panic(fmt.Sprintf("network: Torus3D needs a cubic power of two, got %d", p))
	}
	t := &Topology{Name: fmt.Sprintf("torus3D(p=%d)", p), Family: FamilyTorus3D, P: p, N: p, adj: make([][]int, p)}
	for u := 0; u < p; u++ {
		t.adj[u] = torusLine(u, 1, q, t.adj[u])   // z neighbors
		t.adj[u] = torusLine(u, q, q, t.adj[u])   // y neighbors
		t.adj[u] = torusLine(u, q*q, q, t.adj[u]) // x neighbors
	}
	return t.finalize()
}

// Hypercube builds a log p-dimensional binary hypercube; its D-BSP
// counterpart is dbsp.Hypercube(p).
func Hypercube(p int) *Topology {
	mustPow2(p, 2, "Hypercube")
	t := &Topology{Name: fmt.Sprintf("hypercube(p=%d)", p), Family: FamilyHypercube, P: p, N: p, adj: make([][]int, p)}
	for u := 0; u < p; u++ {
		for b := 1; b < p; b *= 2 {
			t.adj[u] = append(t.adj[u], u^b)
		}
	}
	return t.finalize()
}

// FatTree builds an area-universal fat-tree over p processor leaves: a
// complete binary tree whose internal nodes are switches (node ids
// p..2p-2, level by level), with the uplink of a subtree of m leaves
// carrying max(1, m/⌊log2 m⌋) parallel links — the logarithmic bandwidth
// thinning of Leiserson's area-universal construction, matching the
// dbsp.FatTree preset g_i = max(1, log2(p/2^i)).
func FatTree(p int) *Topology {
	mustPow2(p, 2, "FatTree")
	t := &Topology{Name: fmt.Sprintf("fattree(p=%d)", p), Family: FamilyFatTree, P: p, N: 2*p - 1}
	t.adj = make([][]int, t.N)
	// Level ℓ has p/2^ℓ switches covering 2^ℓ leaves each; levelBase maps
	// (level, index) to node ids: level 0 = the processors themselves.
	base := 0
	for m := 1; m < p; m *= 2 {
		nodes := p / m          // nodes at this level
		parent0 := base + nodes // first node of the level above
		for j := 0; j < nodes; j++ {
			u, par := base+j, parent0+j/2
			for k := 0; k < uplinkWidth(m); k++ {
				t.adj[u] = append(t.adj[u], par)
				t.adj[par] = append(t.adj[par], u)
			}
		}
		base = parent0
	}
	return t.finalize()
}

// uplinkWidth is the parallel-link count of the uplink out of a subtree
// with m leaves.
func uplinkWidth(m int) int {
	if m < 2 {
		return 1
	}
	lg := 0
	for q := m; q > 1; q /= 2 {
		lg++
	}
	if w := m / lg; w > 1 {
		return w
	}
	return 1
}

// --- Registry ------------------------------------------------------------

// topologyEntry couples a family's constructor with its size validator.
type topologyEntry struct {
	build func(p int) *Topology
	valid func(p int) error
}

func pow2Valid(min int) func(int) error {
	return func(p int) error {
		if p < min || p&(p-1) != 0 {
			return fmt.Errorf("needs a power of two >= %d, got %d", min, p)
		}
		return nil
	}
}

func rootValid(dim int) func(int) error {
	return func(p int) error {
		if p < 2 || p&(p-1) != 0 {
			return fmt.Errorf("needs a power of two >= 2, got %d", p)
		}
		q := 1
		qd := func(q int) int {
			v := 1
			for i := 0; i < dim; i++ {
				v *= q
			}
			return v
		}
		for qd(q) < p {
			q *= 2
		}
		if qd(q) != p {
			return fmt.Errorf("needs a %d-th power of two, got %d", dim, p)
		}
		return nil
	}
}

var topologies = map[string]topologyEntry{
	FamilyRing:      {Ring, pow2Valid(2)},
	FamilyTorus2D:   {Torus2D, rootValid(2)},
	FamilyTorus3D:   {Torus3D, rootValid(3)},
	FamilyHypercube: {Hypercube, pow2Valid(2)},
	FamilyFatTree:   {FatTree, pow2Valid(2)},
}

// TopologyNames lists the registered families in deterministic order.
func TopologyNames() []string {
	names := make([]string, 0, len(topologies))
	for name := range topologies {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// TopologyValid reports whether family supports a p-processor instance.
func TopologyValid(family string, p int) bool {
	e, ok := topologies[family]
	return ok && e.valid(p) == nil
}

// TopologyByName builds a p-processor instance of the named family,
// rejecting unknown families and invalid sizes with an error (the
// constructors themselves panic, as programmer-error contracts).
func TopologyByName(family string, p int) (*Topology, error) {
	e, ok := topologies[family]
	if !ok {
		return nil, fmt.Errorf("network: unknown topology %q (have %v)", family, TopologyNames())
	}
	if err := e.valid(p); err != nil {
		return nil, fmt.Errorf("network: %s: %v", family, err)
	}
	return e.build(p), nil
}
