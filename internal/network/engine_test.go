package network

import (
	"math/rand"
	"runtime"
	"testing"
)

// seedRelations builds the seed message sets of the golden comparison:
// random permutations, cluster h-relations at several levels, bisection
// mirrors, and all-to-one hot spots.
func seedRelations(rng *rand.Rand, p int) [][][2]int {
	var sets [][][2]int
	for trial := 0; trial < 3; trial++ {
		perm := rng.Perm(p)
		msgs := make([][2]int, p)
		for i, j := range perm {
			msgs[i] = [2]int{i, j}
		}
		sets = append(sets, msgs)
	}
	for _, level := range []int{0, 2} {
		for _, h := range []int{1, 4} {
			sets = append(sets, ClusterHRelation(rng, p, level, h))
		}
	}
	sets = append(sets, BisectionRelation(p, 0, 3))
	hot := make([][2]int, 0, p-1)
	for u := 1; u < p; u++ {
		hot = append(hot, [2]int{u, 0})
	}
	sets = append(sets, hot)
	return sets
}

// TestGoldenAgainstMapReference pins the refactor: for shortest-path
// routing the flat engine's RouteResult is identical to the pre-refactor
// map-based simulator on every seed case of every direct topology.
func TestGoldenAgainstMapReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, topo := range []*Topology{Ring(32), Torus2D(64), Hypercube(64)} {
		s := NewSim(topo)
		for ci, msgs := range seedRelations(rng, topo.P) {
			got := s.Route(msgs)
			want := s.routeMapReference(msgs)
			if got != want {
				t.Errorf("%s case %d: flat %+v != reference %+v", topo.Name, ci, got, want)
			}
		}
	}
}

// TestRouteDeterminism pins the determinism contract that used to rest on
// per-step edge-key sorting and now rests on the fixed ascending-edge
// drain order: identical message sets produce identical RouteResults
// across repeated runs and across GOMAXPROCS settings, for both the
// deterministic and the seeded randomized strategy.
func TestRouteDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, topo := range []*Topology{Ring(32), Torus2D(16), Torus3D(64), Hypercube(64), FatTree(32)} {
		s := NewSim(topo)
		msgs := ClusterHRelation(rng, topo.P, 0, 4)
		baseSP := s.Route(msgs)
		baseV := s.RouteWith(Valiant(99), msgs)
		prev := runtime.GOMAXPROCS(0)
		for _, procs := range []int{1, 2, prev} {
			runtime.GOMAXPROCS(procs)
			for rep := 0; rep < 3; rep++ {
				if got := s.Route(msgs); got != baseSP {
					t.Errorf("%s GOMAXPROCS=%d rep %d: shortest-path %+v != %+v", topo.Name, procs, rep, got, baseSP)
				}
				if got := s.RouteWith(Valiant(99), msgs); got != baseV {
					t.Errorf("%s GOMAXPROCS=%d rep %d: valiant %+v != %+v", topo.Name, procs, rep, got, baseV)
				}
			}
		}
		runtime.GOMAXPROCS(prev)
	}
}

// TestRouteSpeedup is the benchmark-backed regression test of the engine
// rewrite (and of the drained-queue leak it removed): on a p=256
// hypercube full h-relation the flat engine must beat the map-based
// reference by at least 5x.
func TestRouteSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison")
	}
	rng := rand.New(rand.NewSource(256))
	p := 256
	s := NewSim(Hypercube(p))
	msgs := ClusterHRelation(rng, p, 0, 8)
	// Warm both paths once so table/page faults don't skew the ratio.
	s.Route(msgs)
	s.routeMapReference(msgs)
	flat := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s.Route(msgs)
		}
	})
	ref := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s.routeMapReference(msgs)
		}
	})
	ratio := float64(ref.NsPerOp()) / float64(flat.NsPerOp())
	t.Logf("p=%d hypercube h=8: flat %v/op, map reference %v/op, speedup %.1fx",
		p, flat.NsPerOp(), ref.NsPerOp(), ratio)
	if raceEnabled {
		t.Skipf("race instrumentation skews the ratio (measured %.1fx); the bound is enforced without -race", ratio)
	}
	if ratio < 5 {
		t.Errorf("flat engine speedup %.1fx below the 5x bound", ratio)
	}
}

// TestRouteSetsMatchesUnion: cluster-confined h-relations on ring and
// hypercube use link-disjoint cluster subnetworks (shortest paths never
// leave an index-prefix cluster), so routing the per-cluster sets
// independently — sequentially or in parallel — and merging must equal
// routing the union in one call.
func TestRouteSetsMatchesUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, topo := range []*Topology{Ring(64), Hypercube(64)} {
		s := NewSim(topo)
		for _, level := range []int{1, 2, 3} {
			m := topo.P >> uint(level)
			var union [][2]int
			var sets [][][2]int
			for base := 0; base < topo.P; base += m {
				set := ClusterHRelation(rng, m, 0, 4)
				for i := range set {
					set[i][0] += base
					set[i][1] += base
				}
				sets = append(sets, set)
				union = append(union, set...)
			}
			want := s.Route(union)
			for _, parallel := range []bool{false, true} {
				merged := MergeResults(s.RouteSets(sets, nil, parallel))
				if merged != want {
					t.Errorf("%s level %d parallel=%v: merged %+v != union %+v",
						topo.Name, level, parallel, merged, want)
				}
			}
		}
	}
}

// TestValiantTwoPhase checks the strategy's defining shape: packets
// arrive (so phase switching works), total hops grow (the detour is
// real), and the route stays inside the smallest cluster containing the
// endpoints (the intermediate is cluster-aligned by construction).
func TestValiantTwoPhase(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	p := 64
	for _, topo := range []*Topology{Ring(p), Hypercube(p), FatTree(p)} {
		s := NewSim(topo)
		for _, level := range []int{0, 2} {
			msgs := ClusterHRelation(rng, p, level, 4)
			sp := s.Route(msgs)
			vl := s.RouteWith(Valiant(3), msgs)
			if vl.Delivered != len(msgs) {
				t.Fatalf("%s level %d: valiant delivered %d of %d", topo.Name, level, vl.Delivered, len(msgs))
			}
			if vl.TotalHops < sp.TotalHops {
				t.Errorf("%s level %d: valiant hops %d below direct %d — no detours taken",
					topo.Name, level, vl.TotalHops, sp.TotalHops)
			}
		}
	}
	// Cluster alignment of the intermediate: every Via drawn for a
	// message inside [base, base+m) stays inside it.
	v := Valiant(11).(*valiant)
	for trial := 0; trial < 200; trial++ {
		base, m := int32(16), int32(16)
		src := base + v.rng.Int31n(m)
		dst := base + v.rng.Int31n(m)
		pk := v.Inject(src, dst)
		if src != dst && (pk.Via < base || pk.Via >= base+m) {
			t.Fatalf("intermediate %d for %d->%d escapes cluster [%d,%d)", pk.Via, src, dst, base, base+m)
		}
	}
}

// TestValiantSeedReproducibility: one seed, one result; the seed is the
// whole source of randomness.
func TestValiantSeedReproducibility(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	s := NewSim(Hypercube(64))
	msgs := ClusterHRelation(rng, 64, 0, 8)
	a := s.RouteWith(Valiant(7), msgs)
	b := s.RouteWith(Valiant(7), msgs)
	if a != b {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
}

// TestRouterRegistry covers the by-name plumbing the service and CLI use.
func TestRouterRegistry(t *testing.T) {
	names := RouterNames()
	if len(names) != 2 || names[0] != StrategyShortestPath || names[1] != StrategyValiant {
		t.Fatalf("RouterNames() = %v", names)
	}
	for _, name := range names {
		r, err := RouterByName(name, 7)
		if err != nil {
			t.Fatalf("RouterByName(%q): %v", name, err)
		}
		if r.Name() != name {
			t.Errorf("router %q reports name %q", name, r.Name())
		}
	}
	if _, err := RouterByName("hot-potato", 0); err == nil {
		t.Error("unknown strategy did not error")
	}
}
