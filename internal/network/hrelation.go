package network

import (
	"math/rand"
)

// ClusterHRelation generates an h-relation confined to the i-clusters of a
// p-processor machine: within every cluster of m = p/2^i consecutively
// numbered processors, the messages are h independent random permutations
// of the cluster (so every processor sends exactly h and receives exactly
// h messages, none crossing a cluster boundary) — the communication
// pattern of an i-superstep of degree h.
func ClusterHRelation(rng *rand.Rand, p, level, h int) [][2]int {
	m := p >> uint(level)
	if m < 1 {
		panic("network: cluster level too deep")
	}
	var msgs [][2]int
	perm := make([]int, m)
	for base := 0; base < p; base += m {
		for round := 0; round < h; round++ {
			copy(perm, rng.Perm(m))
			for i, j := range perm {
				msgs = append(msgs, [2]int{base + i, base + j})
			}
		}
	}
	return msgs
}

// BisectionRelation generates the worst-case pattern for bandwidth
// analysis: every processor of the lower half of each i-cluster exchanges
// h messages with its mirror in the upper half.
func BisectionRelation(p, level, h int) [][2]int {
	m := p >> uint(level)
	var msgs [][2]int
	for base := 0; base < p; base += m {
		for i := 0; i < m/2; i++ {
			for k := 0; k < h; k++ {
				msgs = append(msgs, [2]int{base + i, base + i + m/2})
				msgs = append(msgs, [2]int{base + i + m/2, base + i})
			}
		}
	}
	return msgs
}
