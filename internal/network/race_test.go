//go:build race

package network

// raceEnabled reports that this test binary runs under the race
// detector, whose instrumentation skews tight-loop timing comparisons.
const raceEnabled = true
