package matmul

import (
	"math"
	"math/rand"
	"testing"

	"netoblivious/internal/eval"
	"netoblivious/internal/theory"
)

func randMatrix(rng *rand.Rand, s int) []int64 {
	m := make([]int64, s*s)
	for i := range m {
		m[i] = int64(rng.Intn(200) - 100)
	}
	return m
}

func TestSeqMultiplyIdentity(t *testing.T) {
	s := 4
	id := make([]int64, s*s)
	for i := 0; i < s; i++ {
		id[i*s+i] = 1
	}
	rng := rand.New(rand.NewSource(1))
	a := randMatrix(rng, s)
	got := SeqMultiply(s, a, id, Plus())
	for i := range a {
		if got[i] != a[i] {
			t.Fatalf("A·I != A at %d: %d vs %d", i, got[i], a[i])
		}
	}
}

// TestMultiplyCorrectness checks the 8-way algorithm against the reference
// for every supported side, including the gather sizes (s not a power of 8).
func TestMultiplyCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, s := range []int{1, 2, 4, 8, 16, 32} {
		a := randMatrix(rng, s)
		b := randMatrix(rng, s)
		res, err := Multiply(s, a, b, Options{Wise: true})
		if err != nil {
			t.Fatalf("s=%d: %v", s, err)
		}
		want := SeqMultiply(s, a, b, Plus())
		for i := range want {
			if res.C[i] != want[i] {
				t.Fatalf("s=%d: C[%d] = %d, want %d", s, i, res.C[i], want[i])
			}
		}
	}
}

// TestMultiplyTropical exercises a different semiring (min-plus shortest
// paths), confirming the algorithm uses only Add/Mul/Zero.
func TestMultiplyTropical(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := 8
	tro := Tropical()
	a := make([]int64, s*s)
	for i := range a {
		a[i] = int64(rng.Intn(50))
	}
	res, err := MultiplySemiring(s, a, a, tro, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := SeqMultiply(s, a, a, tro)
	for i := range want {
		if res.C[i] != want[i] {
			t.Fatalf("tropical C[%d] = %d, want %d", i, res.C[i], want[i])
		}
	}
}

// TestSpaceEfficientCorrectness checks the 4-way two-round variant.
func TestSpaceEfficientCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, s := range []int{1, 2, 4, 8, 16, 32} {
		a := randMatrix(rng, s)
		b := randMatrix(rng, s)
		res, err := MultiplySpaceEfficient(s, a, b, Options{Wise: true})
		if err != nil {
			t.Fatalf("s=%d: %v", s, err)
		}
		want := SeqMultiply(s, a, b, Plus())
		for i := range want {
			if res.C[i] != want[i] {
				t.Fatalf("s=%d: C[%d] = %d, want %d", s, i, res.C[i], want[i])
			}
		}
	}
}

// TestMultiplyComplexity verifies Theorem 4.2's shape: the measured H at
// σ=0 stays within a constant factor of n/p^{2/3}, and the superstep count
// is O(log p).
func TestMultiplyComplexity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := 32 // n = 1024
	n := float64(s * s)
	a, b := randMatrix(rng, s), randMatrix(rng, s)
	res, err := Multiply(s, a, b, Options{Wise: true})
	if err != nil {
		t.Fatal(err)
	}
	for p := 2; p <= s*s; p *= 4 {
		f := eval.Fold(res.Trace, p)
		h := f.H(0)
		pred := theory.PredictedMM(n, p, 0)
		ratio := h / pred
		if ratio > 16 || ratio < 0.05 {
			t.Errorf("p=%d: H=%v vs predicted %v (ratio %v) outside constant band", p, h, pred, ratio)
		}
		steps := float64(f.Supersteps())
		if lim := 8 * (1 + math.Log2(float64(p))); steps > lim {
			t.Errorf("p=%d: %v supersteps, want O(log p) <= %v", p, steps, lim)
		}
	}
}

// TestSpaceEfficientComplexity verifies the O(n/√p + σ√p) shape.
func TestSpaceEfficientComplexity(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	s := 32
	n := float64(s * s)
	a, b := randMatrix(rng, s), randMatrix(rng, s)
	res, err := MultiplySpaceEfficient(s, a, b, Options{Wise: true})
	if err != nil {
		t.Fatal(err)
	}
	for p := 4; p <= s*s; p *= 4 {
		h := eval.H(res.Trace, p, 0)
		pred := theory.PredictedMMSpace(n, p, 0)
		ratio := h / pred
		if ratio > 16 || ratio < 0.05 {
			t.Errorf("p=%d: H=%v vs predicted %v (ratio %v)", p, h, pred, ratio)
		}
	}
}

// TestWisenessConstant: with dummy messages both algorithms are
// (Θ(1), n)-wise; without, wiseness may degrade.
func TestWisenessConstant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := 16
	a, b := randMatrix(rng, s), randMatrix(rng, s)
	res, err := Multiply(s, a, b, Options{Wise: true})
	if err != nil {
		t.Fatal(err)
	}
	for p := 2; p <= s*s; p *= 4 {
		if alpha := eval.Wiseness(res.Trace, p); alpha < 0.05 {
			t.Errorf("8-way: α(%d) = %v, want Θ(1)", p, alpha)
		}
	}
	res2, err := MultiplySpaceEfficient(s, a, b, Options{Wise: true})
	if err != nil {
		t.Fatal(err)
	}
	for p := 2; p <= s*s; p *= 4 {
		if alpha := eval.Wiseness(res2.Trace, p); alpha < 0.05 {
			t.Errorf("space-efficient: α(%d) = %v, want Θ(1)", p, alpha)
		}
	}
}

// TestFoldingLemmaOnMM: Lemma 3.1 must hold on the real algorithm traces.
func TestFoldingLemmaOnMM(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	s := 16
	a, b := randMatrix(rng, s), randMatrix(rng, s)
	res, err := Multiply(s, a, b, Options{Wise: true})
	if err != nil {
		t.Fatal(err)
	}
	for p := 2; p <= s*s; p *= 2 {
		if err := eval.CheckFoldingLemma(res.Trace, p); err != nil {
			t.Errorf("p=%d: %v", p, err)
		}
	}
}

// TestMemoryBlowup contrasts the two variants: the 8-way holds Θ(n^{1/3})
// entries per VP at the recursion leaves, the space-efficient one O(log n).
func TestMemoryBlowup(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s := 64 // n = 4096, n^{1/3} = 16
	a, b := randMatrix(rng, s), randMatrix(rng, s)
	r8, err := Multiply(s, a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rsp, err := MultiplySpaceEfficient(s, a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	n := float64(s * s)
	cbrt := math.Cbrt(n)
	if float64(r8.PeakEntries) < cbrt {
		t.Errorf("8-way peak %d entries, want >= n^{1/3} = %v", r8.PeakEntries, cbrt)
	}
	logBound := 6 * math.Log2(n)
	if float64(rsp.PeakEntries) > logBound {
		t.Errorf("space-efficient peak %d entries, want O(log n) <= %v", rsp.PeakEntries, logBound)
	}
	if rsp.PeakEntries*2 > r8.PeakEntries {
		t.Errorf("space-efficient (%d) not clearly smaller than 8-way (%d)", rsp.PeakEntries, r8.PeakEntries)
	}
}

// TestValidation rejects bad inputs.
func TestValidation(t *testing.T) {
	if _, err := Multiply(3, make([]int64, 9), make([]int64, 9), Options{}); err == nil {
		t.Error("want error for s=3")
	}
	if _, err := Multiply(4, make([]int64, 7), make([]int64, 16), Options{}); err == nil {
		t.Error("want error for wrong lengths")
	}
}
