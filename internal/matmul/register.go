package matmul

import (
	"context"
	"math/rand"

	"netoblivious/alg"
)

// registryMatrix draws the deterministic s×s registry input.
func registryMatrix(rng *rand.Rand, s int) []int64 {
	m := make([]int64, s*s)
	for i := range m {
		m[i] = int64(rng.Intn(100))
	}
	return m
}

// The registry descriptors pin Wise: the paper's algorithms are analyzed
// in their (Θ(1), n)-wise form, and the trace store keys runs by
// (algorithm, n, engine) only, so a registry run must not vary with the
// caller's Wise flag.
func init() {
	alg.MustRegister(alg.Algorithm{
		Name:    "matmul",
		Doc:     "8-way recursive n-MM (§4.1); n = matrix entries (side² = n, power of 4)",
		SizeDoc: "n = s² matrix entries with s a power of two: 4, 16, 64, 256, ...",
		Sizes:   []int{4, 16, 64, 1024},
		Valid:   alg.SquareOfPowerOfTwo(4),
		RunFn: func(ctx context.Context, spec alg.Spec, n int) (alg.Result, error) {
			spec.Wise = true
			s := alg.SquareSide(n)
			rng := alg.SeededRand()
			r, err := Multiply(s, registryMatrix(rng, s), registryMatrix(rng, s), spec)
			if err != nil {
				return alg.Result{}, err
			}
			return alg.Result{Trace: r.Trace, PeakEntries: r.PeakEntries}, nil
		},
	})
	alg.MustRegister(alg.Algorithm{
		Name:    "matmul-space",
		Doc:     "space-efficient n-MM (§4.1.1); n = matrix entries",
		SizeDoc: "n = s² matrix entries with s a power of two: 4, 16, 64, 256, ...",
		Sizes:   []int{4, 16, 64, 1024},
		Valid:   alg.SquareOfPowerOfTwo(4),
		RunFn: func(ctx context.Context, spec alg.Spec, n int) (alg.Result, error) {
			spec.Wise = true
			s := alg.SquareSide(n)
			rng := alg.SeededRand()
			r, err := MultiplySpaceEfficient(s, registryMatrix(rng, s), registryMatrix(rng, s), spec)
			if err != nil {
				return alg.Result{}, err
			}
			return alg.Result{Trace: r.Trace, PeakEntries: r.PeakEntries}, nil
		},
	})
}
