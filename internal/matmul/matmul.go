// Package matmul implements the network-oblivious matrix-multiplication
// algorithms of Section 4.1 of the paper.
//
// The n-MM problem multiplies two √n×√n matrices over a semiring (only
// Add/Mul, no inverses — the class for which Kerr's Ω(n^{3/2})
// multiplicative-term bound and the Scquizzato–Silvestri communication
// bound hold).  The network-oblivious algorithm is specified on M(n): one
// virtual processor per matrix entry.
//
// Two variants are provided:
//
//   - Multiply: the recursive 8-way algorithm (Theorem 4.2), with
//     H(n,p,σ) = O(n/p^{2/3} + σ·log p) and a Θ(n^{1/3}) per-VP memory
//     blow-up; Θ(1)-optimal for σ = O(n/(p^{2/3} log p)).
//   - MultiplySpaceEfficient: the 4-segment, two-round variant
//     (Section 4.1.1) with O(1) memory blow-up and
//     H(n,p,σ) = O(n/√p + σ·√p); Θ(1)-optimal among constant-memory
//     algorithms (Irony–Toledo–Tiskin bound).
package matmul

import (
	"fmt"

	"netoblivious/alg"
	"netoblivious/internal/core"
)

// Semiring supplies the two operations the algorithms are allowed to use.
// Add must have Zero as neutral element.
type Semiring struct {
	Add  func(a, b int64) int64
	Mul  func(a, b int64) int64
	Zero int64
}

// Plus is the ordinary (+, ×, 0) semiring on int64.
func Plus() Semiring {
	return Semiring{
		Add:  func(a, b int64) int64 { return a + b },
		Mul:  func(a, b int64) int64 { return a * b },
		Zero: 0,
	}
}

// Tropical is the (min, +, +∞) semiring; matrix powers over it compute
// shortest paths, exercising the "semiring only" restriction of the class.
func Tropical() Semiring {
	const inf = int64(1) << 40
	return Semiring{
		Add: func(a, b int64) int64 {
			if a < b {
				return a
			}
			return b
		},
		Mul:  func(a, b int64) int64 { return a + b },
		Zero: inf,
	}
}

// Options is the unified run configuration (engine, recording, wiseness
// dummies, cancellation).  The semiring is an explicit argument of the
// *Semiring entry points; the plain entry points use Plus().
type Options = alg.Spec

// Result carries the product and the communication trace of the run.
type Result struct {
	// C is the s×s product matrix, row-major.
	C []int64
	// Trace is the recorded communication of the M(n) execution.
	Trace *core.Trace
	// PeakEntries is the maximum number of matrix entries simultaneously
	// held by any VP (measures the memory blow-up: Θ(n^{1/3}) for the
	// 8-way algorithm, O(log n) for the space-efficient one).
	PeakEntries int
}

// payload is the message type of both algorithms.
type payload struct {
	kind byte  // 'a', 'b' input entries; 'm' product partials
	f    int32 // flattened index within the destination submatrix
	v    int64
}

// SeqMultiply is the sequential reference: the straightforward semiring
// triple loop.
func SeqMultiply(s int, a, b []int64, sr Semiring) []int64 {
	c := make([]int64, s*s)
	for i := 0; i < s; i++ {
		for j := 0; j < s; j++ {
			acc := sr.Zero
			for k := 0; k < s; k++ {
				acc = sr.Add(acc, sr.Mul(a[i*s+k], b[k*s+j]))
			}
			c[i*s+j] = acc
		}
	}
	return c
}

func validate(s int, a, b []int64) error {
	if s < 1 || s&(s-1) != 0 {
		return fmt.Errorf("matmul: matrix side %d must be a positive power of two", s)
	}
	if len(a) != s*s || len(b) != s*s {
		return fmt.Errorf("matmul: need %d entries, got |A|=%d |B|=%d", s*s, len(a), len(b))
	}
	return nil
}

// Multiply runs the recursive 8-way network-oblivious n-MM algorithm on
// M(n), n = s², over the ordinary (+, ×, 0) semiring, and returns the
// product together with its communication trace.  Input and output
// matrices are evenly distributed: VP r holds A[r], B[r] and produces
// C[r].
func Multiply(s int, a, b []int64, opts Options) (*Result, error) {
	return MultiplySemiring(s, a, b, Plus(), opts)
}

// MultiplySemiring is Multiply over an arbitrary semiring (the class the
// Section 4.1 lower bounds hold for — only Add/Mul, no inverses).
func MultiplySemiring(s int, a, b []int64, sr Semiring, opts Options) (*Result, error) {
	if err := validate(s, a, b); err != nil {
		return nil, err
	}
	n := s * s
	c := make([]int64, n)
	peaks := make([]int, n)

	prog := func(vp *core.VP[payload]) {
		w := &worker{vp: vp, sr: sr, wise: opts.Wise, peak: &peaks[vp.ID()]}
		myC := w.rec8(0, vp.V(), s, []int64{a[vp.ID()]}, []int64{b[vp.ID()]})
		c[vp.ID()] = myC[0]
	}
	tr, err := core.RunOpt(n, prog, opts.RunOptions())
	if err != nil {
		return nil, err
	}
	res := &Result{C: c, Trace: tr}
	for _, p := range peaks {
		if p > res.PeakEntries {
			res.PeakEntries = p
		}
	}
	return res, nil
}

// worker bundles the per-VP state of a run.
type worker struct {
	vp   *core.VP[payload]
	sr   Semiring
	wise bool
	held int // currently held matrix entries
	peak *int
}

func (w *worker) hold(d int) {
	w.held += d
	if w.held > *w.peak {
		*w.peak = w.held
	}
}

// dummies applies the paper's wiseness trick (core.WisenessDummies) when
// the run is configured as wise.
func (w *worker) dummies(label, count int) {
	if w.wise {
		core.WisenessDummies(w.vp, label, count)
	}
}

// rec8 multiplies the q×q submatrices held by the segment
// [base, base+size): each VP holds e = q²/size consecutive row-major
// entries of A' and B' (VP at segment position t holds flats
// [t·e, (t+1)·e)) and returns its e entries of the product.
func (w *worker) rec8(base, size, q int, myA, myB []int64) []int64 {
	w.hold(2 * len(myA))
	defer w.hold(-2 * len(myA))
	m := q * q
	e := m / size
	if size == 1 {
		return SeqMultiply(q, myA, myB, w.sr)
	}
	if size < 8 {
		return w.gatherSolve(base, size, q, myA, myB)
	}

	vp := w.vp
	label := vp.LogV() - core.Log2(size)
	pos := vp.ID() - base
	myOff := pos * e
	size8 := size / 8
	e2 := 2 * e
	q2 := q / 2

	// Step 1: replicate and distribute quadrants to the eight segments
	// S_{hkl}; segment index is 4h+2k+l.  A_{hl} goes to S_{hkl} for both
	// k; B_{lk} to S_{hkl} for both h.
	for fi, val := range myA {
		f := myOff + fi
		i, j := f/q, f%q
		h, l := i/q2, j/q2
		lf := (i%q2)*q2 + (j % q2)
		for k := 0; k <= 1; k++ {
			idx := 4*h + 2*k + l
			vp.Send(base+idx*size8+lf/e2, payload{kind: 'a', f: int32(lf), v: val})
		}
	}
	for fi, val := range myB {
		f := myOff + fi
		i, j := f/q, f%q
		l, k := i/q2, j/q2
		lf := (i%q2)*q2 + (j % q2)
		for h := 0; h <= 1; h++ {
			idx := 4*h + 2*k + l
			vp.Send(base+idx*size8+lf/e2, payload{kind: 'b', f: int32(lf), v: val})
		}
	}
	w.dummies(label, e)
	vp.Sync(label)

	idx := pos / size8
	h, k, l := idx/4, (idx/2)%2, idx%2
	pos2 := pos % size8
	childOff := pos2 * e2
	childA := make([]int64, e2)
	childB := make([]int64, e2)
	for _, msg := range vp.Inbox() {
		switch msg.Payload.kind {
		case 'a':
			childA[int(msg.Payload.f)-childOff] = msg.Payload.v
		case 'b':
			childB[int(msg.Payload.f)-childOff] = msg.Payload.v
		default:
			panic("matmul: unexpected message kind in step 1")
		}
	}

	// Step 2: recurse within the segment.
	myM := w.rec8(base+idx*size8, size8, q2, childA, childB)

	// Step 3: route the partial products M_{hkl} to the VPs responsible
	// for C' and add the two partials per entry.
	for fi, val := range myM {
		lf := childOff + fi
		i2, j2 := lf/q2, lf%q2
		pf := (h*q2+i2)*q + (k*q2 + j2)
		vp.Send(base+pf/e, payload{kind: 'm', f: int32(pf), v: val})
	}
	_ = l
	w.dummies(label, e)
	vp.Sync(label)

	myC := make([]int64, e)
	for fi := range myC {
		myC[fi] = w.sr.Zero
	}
	for _, msg := range vp.Inbox() {
		if msg.Payload.kind != 'm' {
			panic("matmul: unexpected message kind in step 3")
		}
		fi := int(msg.Payload.f) - myOff
		myC[fi] = w.sr.Add(myC[fi], msg.Payload.v)
	}
	return myC
}

// gatherSolve handles segments of 2 or 4 VPs (which arise when log n is
// not a multiple of 3): the whole subproblem is all-gathered, solved
// locally by every member, and each keeps its slice.  The superstep degree
// is O(m) = O(e), preserving the level's O(2^i) degree.
func (w *worker) gatherSolve(base, size, q int, myA, myB []int64) []int64 {
	vp := w.vp
	m := q * q
	e := m / size
	label := vp.LogV() - core.Log2(size)
	pos := vp.ID() - base
	myOff := pos * e
	for fi, val := range myA {
		for t := 0; t < size; t++ {
			if t != pos {
				vp.Send(base+t, payload{kind: 'a', f: int32(myOff + fi), v: val})
			}
		}
	}
	for fi, val := range myB {
		for t := 0; t < size; t++ {
			if t != pos {
				vp.Send(base+t, payload{kind: 'b', f: int32(myOff + fi), v: val})
			}
		}
	}
	w.dummies(label, e)
	vp.Sync(label)

	fullA := make([]int64, m)
	fullB := make([]int64, m)
	w.hold(2 * m)
	copy(fullA[myOff:], myA)
	copy(fullB[myOff:], myB)
	for _, msg := range vp.Inbox() {
		switch msg.Payload.kind {
		case 'a':
			fullA[msg.Payload.f] = msg.Payload.v
		case 'b':
			fullB[msg.Payload.f] = msg.Payload.v
		}
	}
	full := SeqMultiply(q, fullA, fullB, w.sr)
	w.hold(-2 * m)
	out := make([]int64, e)
	copy(out, full[myOff:myOff+e])
	return out
}
