package matmul

import (
	"math"
	"math/rand"
	"testing"

	"netoblivious/internal/eval"
)

func randRect(rng *rand.Rand, m, n int) []int64 {
	x := make([]int64, m*n)
	for i := range x {
		x[i] = int64(rng.Intn(40) - 20)
	}
	return x
}

// TestSeqMultiplyRect cross-checks the rectangular reference against the
// square one.
func TestSeqMultiplyRect(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	s := 8
	a, b := randRect(rng, s, s), randRect(rng, s, s)
	got := SeqMultiplyRect(s, s, s, a, b, Plus())
	want := SeqMultiply(s, a, b, Plus())
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rect reference diverges at %d", i)
		}
	}
}

// TestMultiplyRectCorrectness sweeps shapes: tall, wide, inner-heavy,
// square, and degenerate vectors, across machine sizes.
func TestMultiplyRectCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	shapes := [][3]int{
		{8, 8, 8}, {16, 4, 4}, {4, 16, 4}, {4, 4, 16},
		{32, 2, 8}, {2, 32, 8}, {8, 32, 2}, {1, 16, 16}, {16, 16, 1}, {1, 64, 1},
	}
	for _, sh := range shapes {
		m, k, n := sh[0], sh[1], sh[2]
		a, b := randRect(rng, m, k), randRect(rng, k, n)
		want := SeqMultiplyRect(m, k, n, a, b, Plus())
		for v := 1; v <= m*k*n && v <= 64; v *= 4 {
			res, err := MultiplyRect(m, k, n, v, a, b, Options{Wise: true})
			if err != nil {
				t.Fatalf("shape %v v=%d: %v", sh, v, err)
			}
			for i := range want {
				if res.C[i] != want[i] {
					t.Fatalf("shape %v v=%d: C[%d] = %d, want %d", sh, v, i, res.C[i], want[i])
				}
			}
		}
	}
}

// TestMultiplyRectMatchesSquareBound: on square inputs the rectangular
// recursion meets the same Θ(n_entries/p^{2/3}) communication shape as the
// 8-way algorithm (it is the same 3D blocking, discovered dimension by
// dimension).
func TestMultiplyRectMatchesSquareBound(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	s := 32
	v := 1024
	a, b := randRect(rng, s, s), randRect(rng, s, s)
	res, err := MultiplyRect(s, s, s, v, a, b, Options{Wise: true})
	if err != nil {
		t.Fatal(err)
	}
	for p := 4; p <= v; p *= 4 {
		h := eval.H(res.Trace, p, 0)
		pred := float64(s*s) / math.Pow(float64(p), 2.0/3.0)
		if ratio := h / pred; ratio > 24 || ratio < 0.1 {
			t.Errorf("p=%d: H=%v vs n/p^{2/3}=%v (ratio %v)", p, h, pred, ratio)
		}
	}
}

// TestMultiplyRectTallSkinnyBound: for dominantly one-dimensional shapes
// the k-splits dominate and communication is governed by the input sizes,
// not the 3D bound — the regime CARMA handles and square-only algorithms
// miss.
func TestMultiplyRectTallSkinny(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	m, k, n := 512, 4, 4
	v := 256
	a, b := randRect(rng, m, k), randRect(rng, k, n)
	res, err := MultiplyRect(m, k, n, v, a, b, Options{Wise: true})
	if err != nil {
		t.Fatal(err)
	}
	want := SeqMultiplyRect(m, k, n, a, b, Plus())
	for i := range want {
		if res.C[i] != want[i] {
			t.Fatalf("C[%d] mismatch", i)
		}
	}
	// m-splits only partition (B is tiny): per-fold load stays near the
	// input term (mk + kn + mn)/p.
	for p := 4; p <= v; p *= 4 {
		h := eval.H(res.Trace, p, 0)
		inputs := float64(m*k+k*n+m*n) / float64(p)
		if h > 40*inputs {
			t.Errorf("p=%d: H=%v far above input term %v", p, h, inputs)
		}
	}
}

// TestMultiplyRectTropical: semiring generality carries over.
func TestMultiplyRectTropical(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	tro := Tropical()
	m, k, n := 8, 16, 4
	a, b := randRect(rng, m, k), randRect(rng, k, n)
	for i := range a {
		if a[i] < 0 {
			a[i] = -a[i]
		}
	}
	for i := range b {
		if b[i] < 0 {
			b[i] = -b[i]
		}
	}
	res, err := MultiplyRectSemiring(m, k, n, 32, a, b, tro, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := SeqMultiplyRect(m, k, n, a, b, tro)
	for i := range want {
		if res.C[i] != want[i] {
			t.Fatalf("tropical C[%d] = %d, want %d", i, res.C[i], want[i])
		}
	}
}

// TestMultiplyRectValidation rejects bad parameters.
func TestMultiplyRectValidation(t *testing.T) {
	if _, err := MultiplyRect(3, 4, 4, 4, make([]int64, 12), make([]int64, 16), Options{}); err == nil {
		t.Error("want error for non-power-of-two m")
	}
	if _, err := MultiplyRect(2, 2, 2, 16, make([]int64, 4), make([]int64, 4), Options{}); err == nil {
		t.Error("want error for v > m·k·n")
	}
	if _, err := MultiplyRect(4, 4, 4, 4, make([]int64, 15), make([]int64, 16), Options{}); err == nil {
		t.Error("want error for wrong |A|")
	}
}
