package matmul

import (
	"netoblivious/internal/core"
)

// MultiplySpaceEfficient runs the space-efficient network-oblivious n-MM
// algorithm of Section 4.1.1 on M(n), n = s²: the VPs are recursively
// divided into four segments that solve the eight quadrant subproblems in
// two rounds, keeping exactly one entry of A, B and C per VP at every
// level (O(1) memory blow-up) at the price of communication complexity
// H(n,p,σ) = O(n/√p + σ·√p).
//
// Round 1 computes A00·B00, A01·B11, A11·B10, A10·B01 (one per segment);
// round 2 computes A01·B10, A00·B01, A10·B00, A11·B11.  Segment 2h+k is
// responsible for output quadrant C_{hk} in both rounds; the A-quadrant it
// consumes in round r is A_{h,l} with l = h⊕k⊕r.
func MultiplySpaceEfficient(s int, a, b []int64, opts Options) (*Result, error) {
	return MultiplySpaceEfficientSemiring(s, a, b, Plus(), opts)
}

// MultiplySpaceEfficientSemiring is MultiplySpaceEfficient over an
// arbitrary semiring.
func MultiplySpaceEfficientSemiring(s int, a, b []int64, sr Semiring, opts Options) (*Result, error) {
	if err := validate(s, a, b); err != nil {
		return nil, err
	}
	n := s * s
	c := make([]int64, n)
	peaks := make([]int, n)

	prog := func(vp *core.VP[payload]) {
		w := &worker{vp: vp, sr: sr, wise: opts.Wise, peak: &peaks[vp.ID()]}
		c[vp.ID()] = w.rec4(0, vp.V(), s, a[vp.ID()], b[vp.ID()])
	}
	tr, err := core.RunOpt(n, prog, opts.RunOptions())
	if err != nil {
		return nil, err
	}
	res := &Result{C: c, Trace: tr}
	for _, p := range peaks {
		if p > res.PeakEntries {
			res.PeakEntries = p
		}
	}
	return res, nil
}

// rec4 multiplies the q×q submatrices distributed one entry per VP over
// the segment [base, base+size), size = q², and returns this VP's product
// entry.  The VP at segment position t holds entry t (row-major flat).
func (w *worker) rec4(base, size, q int, myA, myB int64) int64 {
	w.hold(2)
	defer w.hold(-2)
	if size == 1 {
		return w.sr.Mul(myA, myB)
	}
	vp := w.vp
	label := vp.LogV() - core.Log2(size)
	pos := vp.ID() - base
	size4 := size / 4
	q2 := q / 2

	i, j := pos/q, pos%q
	aQuad := [2]int{i / q2, j / q2} // my A entry lives in quadrant (a0, a1)
	bQuad := [2]int{i / q2, j / q2} // same position, B quadrant
	lf := (i%q2)*q2 + (j % q2)      // flat index within my quadrant
	myC := w.sr.Zero

	for r := 0; r <= 1; r++ {
		// Route my A entry to the segment consuming A_{h,l} this round:
		// the segment 2h+k with h = aQuad[0], l = aQuad[1], k = h⊕l⊕r.
		{
			h, l := aQuad[0], aQuad[1]
			k := h ^ l ^ r
			seg := 2*h + k
			vp.Send(base+seg*size4+lf, payload{kind: 'a', f: int32(lf), v: myA})
		}
		// Route my B entry: B_{l,k} is consumed by segment 2h+k with
		// l = bQuad[0], k = bQuad[1], h = l⊕k⊕r.
		{
			l, k := bQuad[0], bQuad[1]
			h := l ^ k ^ r
			seg := 2*h + k
			vp.Send(base+seg*size4+lf, payload{kind: 'b', f: int32(lf), v: myB})
		}
		w.dummies(label, 1)
		vp.Sync(label)

		var childA, childB int64
		gotA, gotB := false, false
		for _, msg := range vp.Inbox() {
			switch msg.Payload.kind {
			case 'a':
				childA, gotA = msg.Payload.v, true
			case 'b':
				childB, gotB = msg.Payload.v, true
			}
		}
		if !gotA || !gotB {
			panic("matmul: space-efficient routing failed to deliver operands")
		}

		seg := pos / size4
		childPos := pos % size4
		m := w.rec4(base+seg*size4, size4, q2, childA, childB)

		// Combine: my segment produced a partial for C_{hk}; entry
		// childPos of the q2×q2 product maps to parent flat
		// (h·q2 + i')·q + (k·q2 + j').
		h, k := seg/2, seg%2
		i2, j2 := childPos/q2, childPos%q2
		pf := (h*q2+i2)*q + (k*q2 + j2)
		vp.Send(base+pf, payload{kind: 'm', f: int32(pf), v: m})
		w.dummies(label, 1)
		vp.Sync(label)

		got := false
		for _, msg := range vp.Inbox() {
			if msg.Payload.kind == 'm' {
				myC = w.sr.Add(myC, msg.Payload.v)
				got = true
			}
		}
		if !got {
			panic("matmul: space-efficient combine received no partial")
		}
	}
	return myC
}
