package matmul

import (
	"fmt"

	"netoblivious/internal/core"
)

// RectResult carries the rectangular product and trace.
type RectResult struct {
	// C is the m×n product, row-major.
	C []int64
	// Trace is the communication record of the M(v) run.
	Trace *core.Trace
}

// SeqMultiplyRect is the sequential reference for C = A(m×k)·B(k×n).
func SeqMultiplyRect(m, k, n int, a, b []int64, sr Semiring) []int64 {
	c := make([]int64, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			acc := sr.Zero
			for t := 0; t < k; t++ {
				acc = sr.Add(acc, sr.Mul(a[i*k+t], b[t*n+j]))
			}
			c[i*n+j] = acc
		}
	}
	return c
}

// unit is the per-VP slice length of a flattened operand with `total`
// entries distributed over `size` VPs: total/size, at least 1 (operands
// smaller than the segment live one entry per VP on the first `total`
// VPs).  Totals and sizes are powers of two, so division is exact.
func unit(total, size int) int {
	e := total / size
	if e < 1 {
		e = 1
	}
	return e
}

// shr returns the [lo, hi) flat range held by the VP at segment position
// pos.
func shr(total, size, pos int) (lo, hi int) {
	e := unit(total, size)
	lo = pos * e
	if lo > total {
		lo = total
	}
	hi = lo + e
	if hi > total {
		hi = total
	}
	return
}

// MultiplyRect computes C = A(m×k)·B(k×n) on M(v) with the recursive
// split-largest-dimension strategy of Demmel, Eliahu, Fox, Kamil,
// Lipshitz, Schwartz and Spillinger (IPDPS 2013), which the paper's
// Section 6 cites as follow-up work within the network-oblivious
// framework ("communication-optimal parallel recursive rectangular matrix
// multiplication").  At every recursion level the VPs split in half
// (label = level, so all communication stays in the current segment):
//
//   - splitting m partitions A and C and replicates B;
//   - splitting n partitions B and C and replicates A;
//   - splitting k partitions A and B; both halves compute partial
//     products that a combine superstep adds into C.
//
// All of m, k, n and v must be powers of two with m·k·n >= v.  Operands
// are distributed evenly: the VP at segment position t holds the t-th
// slice of each operand's row-major flattening (one entry per VP on the
// leading VPs when an operand is smaller than the segment).
func MultiplyRect(m, k, n, v int, a, b []int64, opts Options) (*RectResult, error) {
	return MultiplyRectSemiring(m, k, n, v, a, b, Plus(), opts)
}

// MultiplyRectSemiring is MultiplyRect over an arbitrary semiring.
func MultiplyRectSemiring(m, k, n, v int, a, b []int64, sr Semiring, opts Options) (*RectResult, error) {
	for _, d := range []struct {
		name string
		val  int
	}{{"m", m}, {"k", k}, {"n", n}, {"v", v}} {
		if d.val < 1 || d.val&(d.val-1) != 0 {
			return nil, fmt.Errorf("matmul: %s=%d must be a positive power of two", d.name, d.val)
		}
	}
	if len(a) != m*k || len(b) != k*n {
		return nil, fmt.Errorf("matmul: need |A|=%d and |B|=%d, got %d and %d", m*k, k*n, len(a), len(b))
	}
	if m*k*n < v {
		return nil, fmt.Errorf("matmul: m·k·n = %d smaller than v = %d", m*k*n, v)
	}
	c := make([]int64, m*n)

	prog := func(vp *core.VP[payload]) {
		w := &rectWorker{vp: vp, sr: sr, wise: opts.Wise}
		aLo, aHi := shr(m*k, v, vp.ID())
		bLo, bHi := shr(k*n, v, vp.ID())
		myA := append([]int64(nil), a[aLo:aHi]...)
		myB := append([]int64(nil), b[bLo:bHi]...)
		myC := w.rec(0, v, m, k, n, myA, myB)
		cLo, cHi := shr(m*n, v, vp.ID())
		copy(c[cLo:cHi], myC)
	}
	tr, err := core.RunOpt(v, prog, opts.RunOptions())
	if err != nil {
		return nil, err
	}
	return &RectResult{C: c, Trace: tr}, nil
}

type rectWorker struct {
	vp   *core.VP[payload]
	sr   Semiring
	wise bool
}

// rec multiplies the ma×ka by ka×na operands held by the segment
// [base, base+size) and returns this VP's share of the ma×na product.
func (w *rectWorker) rec(base, size, ma, ka, na int, myA, myB []int64) []int64 {
	if size == 1 {
		return SeqMultiplyRect(ma, ka, na, myA, myB, w.sr)
	}
	vp := w.vp
	label := vp.LogV() - core.Log2(size)
	pos := vp.ID() - base
	half := size / 2
	child := pos / half
	cpos := pos % half
	aLo, _ := shr(ma*ka, size, pos)
	bLo, _ := shr(ka*na, size, pos)
	uC := unit(ma*na, size)

	// Choose the largest dimension (ties: m, then n, then k) — the CARMA
	// rule; deterministic, hence uniform across sibling segments.
	var myM []int64
	var cFlat func(childFlat int) int // child product flat -> parent C flat
	var addCombine bool

	switch {
	case ma >= na && ma >= ka && ma > 1:
		// Split m: A and C partition by row halves, B replicates.
		ma2 := ma / 2
		uA2 := unit(ma2*ka, half)
		uB2 := unit(ka*na, half)
		for fi, val := range myA {
			f := aLo + fi
			i, j := f/ka, f%ka
			ch := i / ma2
			lf := (i%ma2)*ka + j
			vp.Send(base+ch*half+lf/uA2, payload{kind: 'a', f: int32(lf), v: val})
		}
		for fi, val := range myB {
			f := bLo + fi
			for ch := 0; ch <= 1; ch++ {
				vp.Send(base+ch*half+f/uB2, payload{kind: 'b', f: int32(f), v: val})
			}
		}
		w.dummiesRect(label, len(myA)+2*len(myB))
		vp.Sync(label)
		childA, childB := w.collect(ma2*ka, ka*na, half, cpos)
		myM = w.rec(base+child*half, half, ma2, ka, na, childA, childB)
		mBase, _ := shr(ma2*na, half, cpos)
		cFlat = func(cf int) int {
			lf := mBase + cf
			i, j := lf/na, lf%na
			return (child*ma2+i)*na + j
		}

	case na >= ka && na > 1:
		// Split n: B and C partition by column halves, A replicates.
		na2 := na / 2
		uA2 := unit(ma*ka, half)
		uB2 := unit(ka*na2, half)
		for fi, val := range myB {
			f := bLo + fi
			i, j := f/na, f%na
			ch := j / na2
			lf := i*na2 + (j % na2)
			vp.Send(base+ch*half+lf/uB2, payload{kind: 'b', f: int32(lf), v: val})
		}
		for fi, val := range myA {
			f := aLo + fi
			for ch := 0; ch <= 1; ch++ {
				vp.Send(base+ch*half+f/uA2, payload{kind: 'a', f: int32(f), v: val})
			}
		}
		w.dummiesRect(label, 2*len(myA)+len(myB))
		vp.Sync(label)
		childA, childB := w.collect(ma*ka, ka*na2, half, cpos)
		myM = w.rec(base+child*half, half, ma, ka, na2, childA, childB)
		mBase, _ := shr(ma*na2, half, cpos)
		cFlat = func(cf int) int {
			lf := mBase + cf
			i, j := lf/na2, lf%na2
			return i*na + child*na2 + j
		}

	default:
		// Split k: A partitions by column halves, B by row halves; both
		// children compute full-shape partials, combined by addition.
		ka2 := ka / 2
		uA2 := unit(ma*ka2, half)
		uB2 := unit(ka2*na, half)
		for fi, val := range myA {
			f := aLo + fi
			i, j := f/ka, f%ka
			ch := j / ka2
			lf := i*ka2 + (j % ka2)
			vp.Send(base+ch*half+lf/uA2, payload{kind: 'a', f: int32(lf), v: val})
		}
		for fi, val := range myB {
			f := bLo + fi
			i, j := f/na, f%na
			ch := i / ka2
			lf := (i%ka2)*na + j
			vp.Send(base+ch*half+lf/uB2, payload{kind: 'b', f: int32(lf), v: val})
		}
		w.dummiesRect(label, len(myA)+len(myB))
		vp.Sync(label)
		childA, childB := w.collect(ma*ka2, ka2*na, half, cpos)
		myM = w.rec(base+child*half, half, ma, ka2, na, childA, childB)
		mBase, _ := shr(ma*na, half, cpos)
		cFlat = func(cf int) int { return mBase + cf }
		addCombine = true
	}

	// Combine: route partials to the parent C holders.
	for fi, val := range myM {
		pf := cFlat(fi)
		vp.Send(base+pf/uC, payload{kind: 'm', f: int32(pf % uC), v: val})
	}
	w.dummiesRect(label, len(myM))
	vp.Sync(label)

	cLo, cHi := shr(ma*na, size, pos)
	myC := make([]int64, cHi-cLo)
	if addCombine {
		for i := range myC {
			myC[i] = w.sr.Zero
		}
	}
	seen := make([]bool, len(myC))
	for _, msg := range vp.Inbox() {
		if msg.Payload.kind != 'm' {
			panic("matmul: unexpected message kind in combine")
		}
		fi := int(msg.Payload.f)
		if addCombine {
			myC[fi] = w.sr.Add(myC[fi], msg.Payload.v)
			continue
		}
		if seen[fi] {
			panic("matmul: duplicate C partial in m/n combine")
		}
		seen[fi] = true
		myC[fi] = msg.Payload.v
	}
	return myC
}

// collect builds the child operand slices from the inbox; message f
// indices are child-segment flats.
func (w *rectWorker) collect(aTotal, bTotal, half, cpos int) (childA, childB []int64) {
	aLo, aHi := shr(aTotal, half, cpos)
	bLo, bHi := shr(bTotal, half, cpos)
	childA = make([]int64, aHi-aLo)
	childB = make([]int64, bHi-bLo)
	for _, msg := range w.vp.Inbox() {
		switch msg.Payload.kind {
		case 'a':
			childA[int(msg.Payload.f)-aLo] = msg.Payload.v
		case 'b':
			childB[int(msg.Payload.f)-bLo] = msg.Payload.v
		default:
			panic("matmul: unexpected message kind in distribution")
		}
	}
	return childA, childB
}

// dummiesRect applies the wiseness trick.
func (w *rectWorker) dummiesRect(label, count int) {
	if w.wise {
		core.WisenessDummies(w.vp, label, count)
	}
}
