package core

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"netoblivious/internal/obs"
)

// Message is a delivered message as seen by the receiving VP.
type Message[P any] struct {
	Src, Dst int
	Payload  P
}

// staged is a message waiting in a VP's outbox for the next barrier.
type staged[P any] struct {
	dst     int
	payload P
	dummy   bool
}

// Options configures a run of an algorithm on M(v).
type Options struct {
	// RecordMessages stores the (src, dst) pair of every message in the
	// Trace.  It is required by the executable ascend–descend protocol
	// and by debugging tools, and costs memory proportional to the total
	// message count.
	RecordMessages bool

	// Engine selects the execution engine.  nil uses DefaultEngine().
	// Every engine produces the same Trace for valid programs; see the
	// Engine documentation for the trade-offs.
	Engine Engine

	// Context cancels the run: once it is done, the machine aborts at the
	// next superstep boundary and Run returns an error wrapping
	// Context.Err() (test with errors.Is).  The check sits on the
	// once-per-superstep coordination path of both engines, so
	// cancellation costs nothing on the per-VP hot path and a cancelled
	// request stops burning CPU within one superstep.  nil disables
	// cancellation.
	Context context.Context

	// Sink streams the trace instead of accumulating it: every completed
	// superstep record is handed to the sink at the barrier completing
	// it, and RunOpt returns a metadata-only Trace (dimensions plus
	// NumSupersteps/TotalMessages counters, empty Steps).  With a
	// file-backed sink a run's peak memory is O(largest superstep)
	// rather than O(total messages), which is what lets `nobl trace`
	// record sizes whose full Trace would not fit in RAM.  nil keeps the
	// classic accumulate-in-memory behaviour.
	Sink TraceSink

	// Probe records per-superstep spans and engine events for timeline
	// export (see the probe contract in the package documentation).  nil
	// — the default — disables instrumentation entirely; the nil path
	// costs one pointer check per superstep and is benchmark-gated to
	// stay indistinguishable from an un-instrumented run.
	Probe *obs.Probe
}

// Program is the code executed by every virtual processor of M(v).  The
// same function runs on all VPs; behaviour is differentiated through
// VP.ID().  Per the paper's restrictions, every VP must execute the same
// sequence of Sync labels and must terminate immediately after a Sync.
type Program[P any] func(vp *VP[P])

// abortSentinel is panicked by VP primitives to unwind a goroutine after
// the machine has failed.
type abortSentinel struct{}

// barrier synchronizes one cluster.  It is reused across supersteps via a
// generation counter.
type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	count int
	gen   uint64
	step  int // superstep index of the current generation
}

type machine[P any] struct {
	v, logV    int
	labelBound int
	opts       Options
	trace      *Trace
	vps        []VP[P]      // contiguous: the VP hot loops walk them in order
	barriers   [][]*barrier // [label][cluster]; GoroutineEngine only
	block      *blockRun[P] // non-nil under BlockEngine

	failOnce sync.Once
	errMu    sync.Mutex
	err      error
	aborted  atomic.Bool
	parked   atomic.Int64
	finished atomic.Int64
}

// VP is the handle through which a program accesses its virtual processor:
// its identity, the communication primitives and the barrier.
type VP[P any] struct {
	id   int
	m    *machine[P]
	step int

	inbox  []Message[P]
	rpos   int
	outbox []staged[P]
}

// ID returns the index of this virtual processor, in [0, V()).
func (vp *VP[P]) ID() int { return vp.id }

// V returns the number of virtual processors of the machine.
func (vp *VP[P]) V() int { return vp.m.v }

// LogV returns log2(V()).
func (vp *VP[P]) LogV() int { return vp.m.logV }

// Superstep returns the index of the current superstep (the number of
// Syncs executed so far by this VP).
func (vp *VP[P]) Superstep() int { return vp.step }

// ClusterFirst returns the index of the first VP of this VP's
// label-cluster: the 2^label VPs sharing the label most significant bits.
func (vp *VP[P]) ClusterFirst(label int) int {
	size := vp.m.v >> uint(label)
	return vp.id / size * size
}

// ClusterSize returns the number of VPs in a label-cluster, v/2^label.
func (vp *VP[P]) ClusterSize(label int) int { return vp.m.v >> uint(label) }

// Send stages a message with the given payload for VP dst.  The message is
// delivered at the Sync terminating the current superstep; the terminating
// label i must satisfy the cluster rule (dst shares the i most significant
// bits with the sender), which the runtime checks at delivery time.
func (vp *VP[P]) Send(dst int, payload P) {
	if dst < 0 || dst >= vp.m.v {
		vp.m.fail(fmt.Errorf("core: VP %d: Send to out-of-range VP %d (v=%d)", vp.id, dst, vp.m.v))
		panic(abortSentinel{})
	}
	vp.outbox = append(vp.outbox, staged[P]{dst: dst, payload: payload})
}

// SendDummy stages a dummy message for VP dst.  Dummy messages are counted
// by every communication metric exactly like real messages — the paper uses
// them to make algorithms (Θ(1), p)-wise — but they are not delivered to
// the destination's inbox.
func (vp *VP[P]) SendDummy(dst int) {
	if dst < 0 || dst >= vp.m.v {
		vp.m.fail(fmt.Errorf("core: VP %d: SendDummy to out-of-range VP %d (v=%d)", vp.id, dst, vp.m.v))
		panic(abortSentinel{})
	}
	var zero P
	vp.outbox = append(vp.outbox, staged[P]{dst: dst, payload: zero, dummy: true})
}

// Receive returns (and consumes) the next message delivered at the
// preceding barrier, in deterministic (source, send-order) order.  The
// second result is false when no messages remain.
func (vp *VP[P]) Receive() (P, bool) {
	if vp.rpos >= len(vp.inbox) {
		var zero P
		return zero, false
	}
	msg := vp.inbox[vp.rpos]
	vp.rpos++
	return msg.Payload, true
}

// Inbox returns the messages delivered at the preceding barrier that have
// not yet been consumed by Receive.  The returned slice is valid until the
// next Sync.
func (vp *VP[P]) Inbox() []Message[P] { return vp.inbox[vp.rpos:] }

// Sync ends the current superstep with the given label: it barrier-
// synchronizes the VP's label-cluster and delivers the messages staged by
// the cluster's members during the superstep.  label must be in
// [0, max{1, log2 v}).
func (vp *VP[P]) Sync(label int) {
	m := vp.m
	if m.aborted.Load() {
		panic(abortSentinel{})
	}
	if label < 0 || label >= m.labelBound {
		m.fail(fmt.Errorf("core: VP %d: Sync label %d out of range [0, %d)", vp.id, label, m.labelBound))
		panic(abortSentinel{})
	}
	if m.block != nil {
		m.block.sync(vp, label)
	} else {
		vp.syncGoroutine(label)
	}
	vp.step++
	vp.rpos = 0
}

// syncGoroutine is the GoroutineEngine barrier: park on the cluster's
// condition variable; the last arriver delivers the cluster's messages.
// The last-arriver branch checks the run context before releasing the
// cluster, which is how cancellation reaches every parked VP.
//
//nob:ctxloop
func (vp *VP[P]) syncGoroutine(label int) {
	m := vp.m
	cluster := 0
	if label > 0 {
		cluster = vp.id >> uint(m.logV-label)
	}
	b := m.barriers[label][cluster]
	size := m.v >> uint(label)

	b.mu.Lock()
	if b.count == 0 {
		b.step = vp.step
	} else if b.step != vp.step {
		b.mu.Unlock()
		m.fail(fmt.Errorf("core: VPs of %d-cluster %d reached Sync at different supersteps (%d vs %d); the label sequence must be identical on every VP", label, cluster, b.step, vp.step))
		panic(abortSentinel{})
	}
	b.count++
	if b.count == size {
		// Last arriver: check for cancellation, deliver the cluster's
		// messages, advance the generation and release the waiters.
		err := m.ctxErr()
		if err == nil {
			err = m.deliver(label, cluster*size, size, vp.step)
		}
		if err != nil {
			b.mu.Unlock()
			m.fail(err)
			panic(abortSentinel{})
		}
		m.parked.Add(-int64(size - 1))
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
	} else {
		gen := b.gen
		m.parked.Add(1)
		m.checkDeadlock()
		//nolint:ctxflow // parked waiters cannot poll: the last arriver checks the context and broadcasts, flipping aborted
		for b.gen == gen && !m.aborted.Load() {
			b.cond.Wait()
		}
		b.mu.Unlock()
		if m.aborted.Load() {
			panic(abortSentinel{})
		}
	}
}

// deliver routes the messages staged by the VPs in [first, first+size),
// records the per-fold metrics of the superstep and fills the members'
// inboxes.  It runs under the cluster barrier's mutex, with every member
// but the caller parked.
func (m *machine[P]) deliver(label, first, size, step int) error {
	vps := m.vps[first : first+size]
	var total int64
	for i := range vps {
		total += int64(len(vps[i].outbox))
	}

	nLevels := m.logV - label // folds j in (label, logV]
	var sent, recv [][]int32
	var pairs *PairList
	if total > 0 {
		sent = make([][]int32, nLevels)
		recv = make([][]int32, nLevels)
		for jj := 0; jj < nLevels; jj++ {
			blocks := 1 << uint(jj+1)
			if blocks > size {
				blocks = size
			}
			sent[jj] = make([]int32, blocks)
			recv[jj] = make([]int32, blocks)
		}
		if m.opts.RecordMessages {
			pairs = NewPairList(int(total))
		}
	}

	for w := first; w < first+size; w++ {
		src := &m.vps[w]
		if len(src.outbox) == 0 {
			continue
		}
		for _, msg := range src.outbox {
			if msg.dst < first || msg.dst >= first+size {
				return fmt.Errorf("core: superstep %d: VP %d sent a message to VP %d outside its %d-cluster [%d, %d); messages of an i-superstep must stay within i-clusters",
					step, w, msg.dst, label, first, first+size)
			}
			for j := m.logV; j > label; j-- {
				sb := w >> uint(m.logV-j)
				db := msg.dst >> uint(m.logV-j)
				if sb == db {
					break // equal here implies equal at every coarser fold
				}
				jj := j - label - 1
				base := first >> uint(m.logV-j)
				sent[jj][sb-base]++
				recv[jj][db-base]++
			}
			if pairs != nil {
				pairs.Append(int32(w), int32(msg.dst))
			}
		}
	}
	// Second pass: deliver in ascending source order so every inbox ends
	// up sorted by (src, send-order) without an explicit sort.
	if total > 0 {
		for w := first; w < first+size; w++ {
			// Reset the inbox of every member: messages not consumed in
			// the superstep following their delivery are discarded, per
			// the BSP semantics of the model.
			m.vps[w].inbox = m.vps[w].inbox[:0]
		}
		for w := first; w < first+size; w++ {
			src := &m.vps[w]
			for _, msg := range src.outbox {
				if !msg.dummy {
					dst := &m.vps[msg.dst]
					dst.inbox = append(dst.inbox, Message[P]{Src: w, Dst: msg.dst, Payload: msg.payload})
				}
			}
			src.outbox = src.outbox[:0]
		}
	} else {
		for i := range vps {
			vps[i].inbox = vps[i].inbox[:0]
		}
	}

	levelMax := make([]int64, nLevels)
	if total > 0 {
		for jj := 0; jj < nLevels; jj++ {
			var mx int32
			for b := range sent[jj] {
				if sent[jj][b] > mx {
					mx = sent[jj][b]
				}
				if recv[jj][b] > mx {
					mx = recv[jj][b]
				}
			}
			levelMax[jj] = int64(mx)
		}
	}
	return m.trace.merge(step, label, levelMax, total, pairs, size)
}

// ctxErr reports the run context's cancellation, wrapped so callers can
// errors.Is against context.Canceled/DeadlineExceeded; nil while the run
// may proceed.
func (m *machine[P]) ctxErr() error {
	if m.opts.Context == nil {
		return nil
	}
	if err := m.opts.Context.Err(); err != nil {
		return fmt.Errorf("core: run cancelled: %w", err)
	}
	return nil
}

func (m *machine[P]) fail(err error) {
	m.failOnce.Do(func() {
		m.errMu.Lock()
		m.err = err
		m.errMu.Unlock()
		m.aborted.Store(true)
		for _, lvl := range m.barriers {
			for _, b := range lvl {
				b.mu.Lock()
				b.cond.Broadcast()
				b.mu.Unlock()
			}
		}
	})
}

// checkDeadlock fails the machine when every unfinished VP is parked at a
// barrier: no arrival can ever complete a cluster, so the run cannot make
// progress.  This happens only for buggy programs (mismatched label
// sequences across clusters); detecting it turns a hang into an error.
// It must not be called while holding a barrier mutex by the goroutine
// that would perform the failing broadcast, hence the asynchronous fail.
func (m *machine[P]) checkDeadlock() {
	if m.aborted.Load() {
		return
	}
	fin := m.finished.Load()
	if m.parked.Load()+fin >= int64(m.v) && fin < int64(m.v) {
		go m.fail(fmt.Errorf("core: deadlock: every unfinished VP is blocked at a barrier (mismatched label sequences across clusters)"))
	}
}

func newMachine[P any](v int, opts Options) *machine[P] {
	logV := Log2(v)
	labelBound := logV
	if labelBound < 1 {
		labelBound = 1
	}
	m := &machine[P]{
		v:          v,
		logV:       logV,
		labelBound: labelBound,
		opts:       opts,
		trace:      newTrace(v, logV),
	}
	m.vps = make([]VP[P], v)
	for r := 0; r < v; r++ {
		m.vps[r] = VP[P]{id: r, m: m}
	}
	return m
}

// initBarriers allocates the per-cluster barrier tree used by the
// GoroutineEngine.  The BlockEngine synchronizes workers instead of VPs
// and never needs it.
func (m *machine[P]) initBarriers() {
	m.barriers = make([][]*barrier, m.labelBound)
	for i := 0; i < m.labelBound; i++ {
		n := 1 << uint(i)
		if n > m.v {
			n = m.v
		}
		m.barriers[i] = make([]*barrier, n)
		for c := range m.barriers[i] {
			b := &barrier{}
			b.cond = sync.NewCond(&b.mu)
			m.barriers[i][c] = b
		}
	}
}

// Run executes prog on a specification machine M(v) with v virtual
// processors (v must be a positive power of two) and returns the recorded
// communication Trace.  It returns an error if the program violates the
// model's restrictions (cluster-confined messages, identical label
// sequences, terminating Sync) or panics.  The program runs on the
// process-wide DefaultEngine; use RunOpt to pick one explicitly.
func Run[P any](v int, prog Program[P]) (*Trace, error) {
	return RunOpt(v, prog, Options{})
}

// RunOpt is Run with explicit Options.
func RunOpt[P any](v int, prog Program[P], opts Options) (*Trace, error) {
	if v < 1 || v&(v-1) != 0 {
		return nil, fmt.Errorf("core: v must be a positive power of two, got %d", v)
	}
	if prog == nil {
		return nil, fmt.Errorf("core: nil program")
	}
	eng := opts.Engine
	if eng == nil {
		eng = DefaultEngine()
	}
	if opts.Context != nil {
		if err := opts.Context.Err(); err != nil {
			return nil, fmt.Errorf("core: run cancelled: %w", err)
		}
	}
	// The ReplayEngine never builds a machine: it is dispatched before the
	// per-VP state is allocated, which is what makes warm replays nearly
	// allocation-free.
	switch e := eng.(type) {
	case ReplayEngine:
		return runReplay(v, prog, opts, e)
	case *ReplayEngine:
		return runReplay(v, prog, opts, *e)
	}
	switch eng.(type) {
	case GoroutineEngine, *GoroutineEngine, BlockEngine, *BlockEngine:
	default:
		return nil, fmt.Errorf("core: unknown engine %q", eng.Name())
	}
	m := newMachine[P](v, opts)
	if opts.Probe != nil {
		m.trace.probe = opts.Probe
		m.trace.probeLast = time.Now()
	}
	if opts.Sink != nil {
		if err := opts.Sink.BeginTrace(v, m.logV); err != nil {
			return nil, fmt.Errorf("core: trace sink: %w", err)
		}
		m.trace.sink = opts.Sink
	}
	runErr := func() error {
		switch e := eng.(type) {
		case GoroutineEngine, *GoroutineEngine:
			m.runGoroutineEngine(prog)
		case BlockEngine:
			runBlockEngine(m, prog, e.workerCount(v))
		case *BlockEngine:
			runBlockEngine(m, prog, e.workerCount(v))
		}
		m.errMu.Lock()
		err := m.err
		m.errMu.Unlock()
		if err != nil {
			return err
		}
		// The label-sequence restriction also requires every VP to execute
		// the same number of supersteps.
		steps := m.vps[0].step
		for i := range m.vps {
			if m.vps[i].step != steps {
				return fmt.Errorf("core: VPs executed different numbers of supersteps (%d vs %d on VP %d)", steps, m.vps[i].step, m.vps[i].id)
			}
		}
		if got := m.trace.recordedSteps(); got != steps {
			return fmt.Errorf("core: internal error: %d supersteps executed but %d recorded", steps, got)
		}
		if pending := m.trace.pendingSteps(); pending != 0 {
			return fmt.Errorf("core: internal error: %d supersteps still pending after the run completed", pending)
		}
		return nil
	}()
	// The sink always sees its EndTrace — a failed or cancelled run is
	// how file sinks know to discard partial output.
	if opts.Sink != nil {
		if eerr := opts.Sink.EndTrace(runErr); eerr != nil && runErr == nil {
			runErr = fmt.Errorf("core: trace sink: %w", eerr)
		}
	}
	if runErr != nil {
		return nil, runErr
	}
	return m.trace, nil
}

// runGoroutineEngine spawns one goroutine per VP and waits for all of
// them; clusters self-synchronize on the barrier tree.
func (m *machine[P]) runGoroutineEngine(prog Program[P]) {
	m.initBarriers()
	var wg sync.WaitGroup
	wg.Add(m.v)
	for r := 0; r < m.v; r++ {
		go func(r int) {
			defer wg.Done()
			m.runVP(r, prog)
		}(r)
	}
	wg.Wait()
}

func (m *machine[P]) runVP(r int, prog Program[P]) {
	defer func() {
		if e := recover(); e != nil {
			if _, ok := e.(abortSentinel); !ok {
				m.fail(fmt.Errorf("core: VP %d panicked: %v\n%s", r, e, debug.Stack()))
			}
		}
		m.finished.Add(1)
		m.checkDeadlock()
	}()
	vp := &m.vps[r]
	prog(vp)
	if len(vp.outbox) > 0 {
		m.fail(fmt.Errorf("core: VP %d terminated with %d staged messages; programs must end with a Sync", r, len(vp.outbox)))
	}
}
