package core

import (
	"fmt"
	"io"
)

// TraceSink receives the supersteps of a run as they complete.  Selected
// through Options.Sink, it is how recording runs in O(largest superstep)
// memory instead of O(total messages): every engine emits each finished
// StepRec to the sink at the superstep barrier that completes it and
// retains nothing, so a run's peak footprint is the pending superstep
// window, not the whole trace.
//
// The contract:
//
//   - BeginTrace is called exactly once, before any step, with the
//     machine's dimensions.  Sinks that can only absorb one trace (the
//     codec writers) must reject a second BeginTrace.
//   - WriteStep is called once per superstep, in superstep order, from
//     at most one goroutine at a time.  Ownership of the record —
//     including rec.Pairs — transfers to the sink: accumulating sinks
//     retain it, encoding sinks may Release the pairs after use.
//   - EndTrace is called exactly once, after the last step, with the
//     run's error (nil on success).  A failed or cancelled run still
//     gets its EndTrace, which is where file-backed sinks discard
//     partial output instead of leaving a truncated trace behind.
//
// An error from any method aborts the run at the next superstep
// boundary.
type TraceSink interface {
	BeginTrace(v, logV int) error
	WriteStep(rec StepRec) error
	EndTrace(runErr error) error
}

// BeginTrace implements TraceSink: a Trace is the accumulating sink,
// collecting every step in memory exactly as a non-streaming run would.
func (t *Trace) BeginTrace(v, logV int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if lv, err := TryLog2(v); err != nil || lv != logV {
		return fmt.Errorf("core: trace sink: log_v=%d inconsistent with v=%d", logV, v)
	}
	t.V = v
	t.LogV = logV
	t.Steps = t.Steps[:0]
	return nil
}

// WriteStep implements TraceSink by retaining the record.
func (t *Trace) WriteStep(rec StepRec) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.Steps = append(t.Steps, rec)
	return nil
}

// EndTrace implements TraceSink.  The accumulated steps of a failed run
// are kept — they are diagnostic, and the run's caller already received
// the error.
func (t *Trace) EndTrace(runErr error) error { return nil }

// DiscardSink accepts and releases every step.  It exists for
// measurement: a run into a DiscardSink exposes the engine's true
// streaming footprint (nobl benchcore uses it for BENCH_trace.json).
type DiscardSink struct {
	steps    int
	messages int64
}

// BeginTrace implements TraceSink.
func (d *DiscardSink) BeginTrace(v, logV int) error { return nil }

// WriteStep implements TraceSink, returning the record's pooled pair
// chunks for reuse.
func (d *DiscardSink) WriteStep(rec StepRec) error {
	d.steps++
	d.messages += rec.Messages
	rec.Pairs.Release()
	return nil
}

// EndTrace implements TraceSink.
func (d *DiscardSink) EndTrace(runErr error) error { return nil }

// Steps returns the number of supersteps written to the sink, and
// Messages their message total.
func (d *DiscardSink) Steps() int      { return d.steps }
func (d *DiscardSink) Messages() int64 { return d.messages }

// TraceSource iterates a trace one superstep at a time, so analyses can
// process traces far larger than RAM.  Sources exist over an in-memory
// Trace (Trace.Source), a JSON or binary trace stream (NewTraceSource),
// or a trace file of either format (OpenTraceFile).
//
// Next returns the following superstep, or io.EOF after the last one.
// The returned record is only valid until the next call to Next —
// streaming readers reuse decode state — so consumers must copy
// anything they retain.  Close releases the underlying stream; it is
// safe to call after an error or EOF, and required even then when the
// source owns a file handle.
type TraceSource interface {
	V() int
	LogV() int
	Next() (*StepRec, error)
	Close() error
}

// traceSliceSource iterates an in-memory Trace.
type traceSliceSource struct {
	tr  *Trace
	idx int
}

// Source returns a TraceSource over the trace's recorded steps, letting
// in-memory traces flow through the same single-pass analyses as
// streamed files.
func (t *Trace) Source() TraceSource { return &traceSliceSource{tr: t} }

func (s *traceSliceSource) V() int    { return s.tr.V }
func (s *traceSliceSource) LogV() int { return s.tr.LogV }

func (s *traceSliceSource) Next() (*StepRec, error) {
	if s.idx >= len(s.tr.Steps) {
		return nil, io.EOF
	}
	rec := &s.tr.Steps[s.idx]
	s.idx++
	return rec, nil
}

func (s *traceSliceSource) Close() error { return nil }

// ReadAll drains a TraceSource into an in-memory Trace, copying each
// record (sources reuse their decode state between Next calls).  It is
// the inverse of streaming: the harness uses it to page a spilled trace
// back in.  It does not Close the source.
func ReadAll(src TraceSource) (*Trace, error) {
	v := src.V()
	logV, err := TryLog2(v)
	if err != nil || logV != src.LogV() {
		return nil, fmt.Errorf("core: trace log_v=%d inconsistent with v=%d", src.LogV(), v)
	}
	tr := &Trace{V: v, LogV: logV}
	for {
		rec, err := src.Next()
		if err == io.EOF {
			return tr, nil
		}
		if err != nil {
			return nil, err
		}
		cp := *rec
		cp.Degree = append([]int64(nil), rec.Degree...)
		tr.Steps = append(tr.Steps, cp)
	}
}

// FoldSummary is the O(log²v) fixed-size accumulator behind the
// single-pass analyses: one Observe per superstep maintains the
// superstep counts S_i(n) and the full fold-degree matrix
// F_i(n, 2^j) for every fold j at once, which is everything the
// paper's metrics — H(n,p,σ), wiseness, fullness, the D-BSP
// communication time of Eq. 2 — need.  Summarizing a TraceSource
// therefore costs O(steps·log v) time and O(log²v) memory regardless
// of how many messages the trace records.
type FoldSummary struct {
	v, logV  int
	steps    int
	messages int64
	s        []int64   // s[i]: number of i-supersteps
	f        [][]int64 // f[lp][i]: F_i(n, 2^lp), for 1 <= lp <= logV
}

// NewFoldSummary returns an empty summary for a machine with v VPs.
func NewFoldSummary(v int) (*FoldSummary, error) {
	logV, err := TryLog2(v)
	if err != nil {
		return nil, fmt.Errorf("core: fold summary: %w", err)
	}
	fs := &FoldSummary{v: v, logV: logV}
	fs.s = make([]int64, fs.LabelBound())
	fs.f = make([][]int64, logV+1)
	for lp := 1; lp <= logV; lp++ {
		fs.f[lp] = make([]int64, lp)
	}
	return fs, nil
}

// Observe folds one superstep into the summary.  It validates the same
// structural invariants DecodeJSON enforces, so summarizing an
// untrusted stream is safe.
func (fs *FoldSummary) Observe(rec *StepRec) error {
	i := fs.steps
	if rec.Label < 0 || rec.Label >= fs.LabelBound() {
		return fmt.Errorf("core: trace step %d has invalid label %d", i, rec.Label)
	}
	if len(rec.Degree) != fs.logV+1 {
		return fmt.Errorf("core: trace step %d has %d degree entries, want %d", i, len(rec.Degree), fs.logV+1)
	}
	for j, d := range rec.Degree {
		if d < 0 {
			return fmt.Errorf("core: trace step %d degree[%d] negative", i, j)
		}
		if j <= rec.Label && d != 0 {
			return fmt.Errorf("core: trace step %d has nonzero degree at fold %d <= label %d", i, j, rec.Label)
		}
	}
	fs.steps++
	fs.messages += rec.Messages
	fs.s[rec.Label]++
	for lp := rec.Label + 1; lp <= fs.logV; lp++ {
		fs.f[lp][rec.Label] += rec.Degree[lp]
	}
	return nil
}

// V returns the machine width the summary was built for, LogV its log.
func (fs *FoldSummary) V() int    { return fs.v }
func (fs *FoldSummary) LogV() int { return fs.logV }

// LabelBound mirrors Trace.LabelBound: max{1, log2 v}.
func (fs *FoldSummary) LabelBound() int {
	if fs.logV < 1 {
		return 1
	}
	return fs.logV
}

// NumSupersteps returns the number of observed supersteps, and
// TotalMessages their message total.
func (fs *FoldSummary) NumSupersteps() int   { return fs.steps }
func (fs *FoldSummary) TotalMessages() int64 { return fs.messages }

// S returns the vector S_i(n), exactly as Trace.S would for the same
// steps.  The slice is a copy.
func (fs *FoldSummary) S() []int64 {
	out := make([]int64, len(fs.s))
	copy(out, fs.s)
	return out
}

// TryF returns the vector F_i(n, p) for a fold onto p processors,
// exactly as Trace.TryF would for the same steps.  The slice is a copy.
func (fs *FoldSummary) TryF(p int) ([]int64, error) {
	lp := logOf(p)
	if lp < 1 || lp > fs.logV {
		return nil, fmt.Errorf("core: Trace.F: p=%d out of range for v=%d (need a power of two with 1 < p <= v)", p, fs.v)
	}
	out := make([]int64, lp)
	copy(out, fs.f[lp])
	return out, nil
}

// F is TryF with the panic contract of Trace.F.
func (fs *FoldSummary) F(p int) []int64 {
	f, err := fs.TryF(p)
	if err != nil {
		panic(err.Error())
	}
	return f
}

// Summarize drains a TraceSource into a FoldSummary in one pass.  It
// does not Close the source.
func Summarize(src TraceSource) (*FoldSummary, error) {
	fs, err := NewFoldSummary(src.V())
	if err != nil {
		return nil, err
	}
	for {
		rec, err := src.Next()
		if err == io.EOF {
			return fs, nil
		}
		if err != nil {
			return nil, err
		}
		if err := fs.Observe(rec); err != nil {
			return nil, err
		}
	}
}

// Summary returns the trace's FoldSummary without re-deriving it per
// analysis call.
func (t *Trace) Summary() (*FoldSummary, error) {
	return Summarize(t.Source())
}
