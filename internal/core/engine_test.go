package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestEngineErrorDetection runs every model-violation scenario on both
// engines: each must detect the violation (with the same primary error
// text where the check is shared) and never hang.
func TestEngineErrorDetection(t *testing.T) {
	scenarios := []struct {
		name string
		v    int
		prog Program[int]
		want string // substring of the error; "" = any error
	}{
		{"cluster-confinement", 4, func(vp *VP[int]) {
			if vp.ID() == 0 {
				vp.Send(2, 1)
			}
			vp.Sync(1)
			vp.Sync(0)
		}, "outside its 1-cluster"},
		{"label-mismatch", 4, func(vp *VP[int]) {
			if vp.ID() < 2 {
				vp.Sync(1)
				vp.Sync(0)
			} else {
				vp.Sync(0)
			}
		}, ""},
		{"uneven-supersteps", 4, func(vp *VP[int]) {
			vp.Sync(1)
			if vp.ID() < 2 {
				vp.Sync(1)
			}
		}, ""},
		{"staged-messages", 2, func(vp *VP[int]) {
			vp.Sync(0)
			vp.Send(0, 7)
		}, "staged messages"},
		{"panic", 4, func(vp *VP[int]) {
			if vp.ID() == 3 {
				panic("boom")
			}
			vp.Sync(0)
		}, "boom"},
		{"bad-label", 4, func(vp *VP[int]) {
			vp.Sync(5)
		}, "out of range"},
		{"bad-dst", 4, func(vp *VP[int]) {
			vp.Send(99, 0)
			vp.Sync(0)
		}, "out-of-range"},
	}
	engines := []Engine{GoroutineEngine{}, BlockEngine{}, BlockEngine{Workers: 2}}
	for _, sc := range scenarios {
		for _, eng := range engines {
			name := fmt.Sprintf("%s/%s-%v", sc.name, eng.Name(), eng)
			_, err := RunOpt(sc.v, sc.prog, Options{Engine: eng})
			if err == nil {
				t.Errorf("%s: want error, got nil", name)
				continue
			}
			if sc.want != "" && !strings.Contains(err.Error(), sc.want) {
				t.Errorf("%s: error %q does not contain %q", name, err, sc.want)
			}
		}
	}
}

func TestEngineByName(t *testing.T) {
	for _, name := range EngineNames() {
		e, err := EngineByName(name)
		if err != nil {
			t.Fatalf("EngineByName(%q): %v", name, err)
		}
		if e.Name() != name {
			t.Errorf("EngineByName(%q).Name() = %q", name, e.Name())
		}
	}
	if _, err := EngineByName("quantum"); err == nil {
		t.Error("EngineByName(quantum): want error")
	}
}

func TestDefaultEngine(t *testing.T) {
	prev := SetDefaultEngine(GoroutineEngine{})
	defer SetDefaultEngine(prev)
	if DefaultEngine().Name() != "goroutine" {
		t.Fatalf("DefaultEngine = %q after SetDefaultEngine(goroutine)", DefaultEngine().Name())
	}
	if got := SetDefaultEngine(BlockEngine{}); got.Name() != "goroutine" {
		t.Errorf("SetDefaultEngine returned %q, want the previous engine", got.Name())
	}
}

// TestCoroCacheReuse hammers the BlockEngine's coroutine cache: many
// runs of different sizes, payload types and outcomes (success, panic,
// model violation) interleaved and in parallel must all behave like
// fresh machines — no state may leak through recycled coroutines.
func TestCoroCacheReuse(t *testing.T) {
	eng := BlockEngine{}
	okProg := func(vp *VP[int]) {
		vp.Send(vp.V()-1-vp.ID(), vp.ID())
		vp.Sync(0)
		if got, ok := vp.Receive(); !ok || got != vp.V()-1-vp.ID() {
			panic(fmt.Sprintf("VP %d: bad payload %v %v", vp.ID(), got, ok))
		}
		vp.Sync(0)
	}
	for round := 0; round < 30; round++ {
		v := 1 << uint(round%6)
		switch round % 3 {
		case 0: // success
			if _, err := RunOpt(v, okProg, Options{Engine: eng}); err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
		case 1: // VP panic: coroutines must survive and stay reusable
			_, err := RunOpt(v, func(vp *VP[int]) {
				if vp.ID() == v-1 {
					panic("kaboom")
				}
				vp.Sync(0)
			}, Options{Engine: eng})
			if err == nil || !strings.Contains(err.Error(), "kaboom") {
				t.Fatalf("round %d: want kaboom, got %v", round, err)
			}
		case 2: // different payload type through the same cache
			if _, err := RunOpt(v, func(vp *VP[string]) {
				vp.Send(vp.ID(), "x")
				vp.Sync(0)
				vp.Sync(0)
			}, Options{Engine: eng}); err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
		}
	}
	// Concurrent runs share the cache.
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < 10; k++ {
				if _, err := RunOpt(64, okProg, Options{Engine: eng}); err != nil {
					errs[i] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("concurrent runner %d: %v", i, err)
		}
	}
}

// TestCoroCacheDecay checks the cache never exceeds its cap for long:
// after an oversized run drains, repeated small runs shrink it back.
func TestCoroCacheDecay(t *testing.T) {
	grow := func(n int) {
		vpCoros.mu.Lock()
		for len(vpCoros.free) < n {
			vpCoros.free = append(vpCoros.free, newVPCoro())
		}
		vpCoros.mu.Unlock()
	}
	grow(maxPooledVPCoros + 1000)
	for i := 0; i < 64; i++ {
		vpCoros.put(nil) // each call decays an eighth of the excess
	}
	vpCoros.mu.Lock()
	n := len(vpCoros.free)
	vpCoros.mu.Unlock()
	if n > maxPooledVPCoros {
		t.Errorf("cache holds %d coroutines after decay, cap is %d", n, maxPooledVPCoros)
	}
}

// TestBlockEngineWorkerCount pins the worker-count resolution rules:
// power-of-two rounding, clipping to v, and the automatic default.
func TestBlockEngineWorkerCount(t *testing.T) {
	cases := []struct {
		workers, v, want int
	}{
		{1, 8, 1},
		{2, 8, 2},
		{3, 8, 2},
		{7, 8, 4},
		{8, 8, 8},
		{64, 8, 8},
		{5, 2, 2},
		{16, 1, 1},
	}
	for _, c := range cases {
		if got := (BlockEngine{Workers: c.workers}).workerCount(c.v); got != c.want {
			t.Errorf("workerCount(workers=%d, v=%d) = %d, want %d", c.workers, c.v, got, c.want)
		}
	}
	if got := (BlockEngine{}).workerCount(1 << 20); got < 1 || got&(got-1) != 0 {
		t.Errorf("automatic workerCount = %d, want a positive power of two", got)
	}
}
