package core

import (
	"encoding/json"
	"strings"
	"testing"

	"netoblivious/internal/obs"
)

// probeTestProg is a small static program: logV supersteps of ascending
// labels with a butterfly exchange each.
func probeTestProg(vp *VP[int]) {
	logV := vp.LogV()
	if logV == 0 {
		vp.Sync(0)
		return
	}
	for s := 0; s < logV; s++ {
		vp.Send(vp.ID()^(1<<uint(logV-1-s)), vp.ID())
		vp.Sync(s)
	}
}

// decodeProbe parses a probe's Chrome trace JSON into events.
func decodeProbe(t *testing.T, p *obs.Probe) []struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TID  int            `json:"tid"`
	Dur  float64        `json:"dur"`
	Args map[string]any `json:"args"`
} {
	t.Helper()
	var b strings.Builder
	if err := p.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			TID  int            `json:"tid"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("probe emitted invalid chrome trace JSON: %v", err)
	}
	return doc.TraceEvents
}

// countEngineSpans returns the number of ph=X engine-category spans and
// checks each carries label and messages args.
func countEngineSpans(t *testing.T, p *obs.Probe) int {
	t.Helper()
	n := 0
	for _, e := range decodeProbe(t, p) {
		if e.Ph != "X" || e.Cat != "engine" {
			continue
		}
		n++
		if _, ok := e.Args["label"]; !ok {
			t.Fatalf("engine span %q missing label arg: %v", e.Name, e.Args)
		}
		if _, ok := e.Args["messages"]; !ok {
			t.Fatalf("engine span %q missing messages arg: %v", e.Name, e.Args)
		}
	}
	return n
}

// TestProbeSpansPerSuperstep is the probe contract test: every engine
// emits exactly one engine-category span per executed superstep.
func TestProbeSpansPerSuperstep(t *testing.T) {
	const v = 32
	for _, eng := range Engines() {
		t.Run(eng.Name(), func(t *testing.T) {
			probe := obs.NewProbe()
			tr, err := RunOpt(v, probeTestProg, Options{Engine: eng, Probe: probe})
			if err != nil {
				t.Fatal(err)
			}
			want := tr.NumSupersteps()
			if got := countEngineSpans(t, probe); got != want {
				t.Fatalf("%s: %d engine spans for %d supersteps", eng.Name(), got, want)
			}
		})
	}
}

// TestProbeWarmReplaySpans runs a keyed replay twice: the warm run must
// still emit one span per superstep (plus no second compile span).
func TestProbeWarmReplaySpans(t *testing.T) {
	eng := KeyedReplay(ReplayEngine{Store: NewScheduleStore()}, "probe-warm-test", 32)
	if _, err := RunOpt(32, probeTestProg, Options{Engine: eng}); err != nil {
		t.Fatal(err)
	}
	probe := obs.NewProbe()
	eng = KeyedReplay(eng, "probe-warm-test", 32) // fresh seq counter
	tr, err := RunOpt(32, probeTestProg, Options{Engine: eng, Probe: probe})
	if err != nil {
		t.Fatal(err)
	}
	if got := countEngineSpans(t, probe); got != tr.NumSupersteps() {
		t.Fatalf("warm replay: %d engine spans for %d supersteps", got, tr.NumSupersteps())
	}
	for _, e := range decodeProbe(t, probe) {
		if e.Cat == "compiler" {
			t.Fatalf("warm replay emitted a compile span: %q", e.Name)
		}
	}
}

// TestProbeColdReplayCompileSpan: the cold keyed run emits a
// schedule-compile span around the instrumented first run.
func TestProbeColdReplayCompileSpan(t *testing.T) {
	probe := obs.NewProbe()
	eng := KeyedReplay(ReplayEngine{Store: NewScheduleStore()}, "probe-cold-test", 32)
	if _, err := RunOpt(32, probeTestProg, Options{Engine: eng, Probe: probe}); err != nil {
		t.Fatal(err)
	}
	sawCompile := false
	for _, e := range decodeProbe(t, probe) {
		if e.Ph == "X" && e.Cat == "compiler" && e.Name == "schedule-compile" {
			sawCompile = true
		}
	}
	if !sawCompile {
		t.Fatal("cold replay did not emit a schedule-compile span")
	}
}

// TestProbeBlockBarrierWait: the BlockEngine emits a barrier_wait_ns
// counter sample per superstep with one series per worker.
func TestProbeBlockBarrierWait(t *testing.T) {
	probe := obs.NewProbe()
	tr, err := RunOpt(64, probeTestProg, Options{Engine: BlockEngine{Workers: 4}, Probe: probe})
	if err != nil {
		t.Fatal(err)
	}
	samples := 0
	for _, e := range decodeProbe(t, probe) {
		if e.Ph == "C" && e.Name == "barrier_wait_ns" {
			samples++
			if len(e.Args) != 4 {
				t.Fatalf("barrier_wait_ns sample has %d worker series, want 4: %v", len(e.Args), e.Args)
			}
		}
	}
	if samples != tr.NumSupersteps() {
		t.Fatalf("%d barrier_wait_ns samples for %d supersteps", samples, tr.NumSupersteps())
	}
}

// TestProbeStreamingSink: probe spans are also emitted in streaming
// (sink) mode, where completed steps leave the pending window.
func TestProbeStreamingSink(t *testing.T) {
	probe := obs.NewProbe()
	sink := &countingSink{}
	tr, err := RunOpt(32, probeTestProg, Options{Engine: GoroutineEngine{}, Probe: probe, Sink: sink})
	if err != nil {
		t.Fatal(err)
	}
	if got := countEngineSpans(t, probe); got != tr.NumSupersteps() {
		t.Fatalf("streaming: %d engine spans for %d supersteps", got, tr.NumSupersteps())
	}
}

// countingSink is a minimal TraceSink for the streaming probe test.
type countingSink struct{ steps int }

func (s *countingSink) BeginTrace(v, logV int) error { return nil }
func (s *countingSink) WriteStep(rec StepRec) error  { s.steps++; return nil }
func (s *countingSink) EndTrace(runErr error) error  { return nil }

// TestNilProbeAllocParity documents the nil-probe guarantee: a run with
// an explicitly nil probe allocates exactly as much as a run with no
// probe field at all — there is no instrumented path left when the
// probe is nil.
func TestNilProbeAllocParity(t *testing.T) {
	run := func(opts Options) func() {
		return func() {
			if _, err := RunOpt(64, probeTestProg, opts); err != nil {
				t.Fatal(err)
			}
		}
	}
	base := testing.AllocsPerRun(5, run(Options{Engine: BlockEngine{Workers: 2}}))
	nilProbe := testing.AllocsPerRun(5, run(Options{Engine: BlockEngine{Workers: 2}, Probe: nil}))
	if base != nilProbe {
		t.Fatalf("nil-probe run allocates differently: baseline %v vs nil-probe %v allocs", base, nilProbe)
	}
}
