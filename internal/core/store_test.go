package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestStoreSingleFlight(t *testing.T) {
	s := NewStore[int]()
	var computes atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			v, err := s.Get("k", func() (int, error) {
				computes.Add(1)
				return 7, nil
			})
			if err != nil || v != 7 {
				t.Errorf("Get = %d, %v", v, err)
			}
		}()
	}
	close(start)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Errorf("compute ran %d times, want 1", n)
	}
	st := s.Stats()
	if st.Hits != 31 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 31 hits / 1 miss", st)
	}
}

// TestStoreLRUEvictionOrder fills a bounded store beyond capacity and
// asserts that exactly the least-recently-used entries fall out, with Get
// recency (not insertion order) defining use.
func TestStoreLRUEvictionOrder(t *testing.T) {
	s := NewBoundedStore[string](3)
	if s.Capacity() != 3 {
		t.Fatalf("Capacity = %d", s.Capacity())
	}
	get := func(k string) {
		t.Helper()
		v, err := s.Get(k, func() (string, error) { return "v" + k, nil })
		if err != nil || v != "v"+k {
			t.Fatalf("Get(%s) = %q, %v", k, v, err)
		}
	}
	get("a")
	get("b")
	get("c")
	get("a") // refresh a: b is now the LRU entry
	get("d") // evicts b
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if _, _, ok := s.Peek("b"); ok {
		t.Error("b should have been evicted (LRU)")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, _, ok := s.Peek(k); !ok {
			t.Errorf("%s should be resident", k)
		}
	}
	if ev := s.Stats().Evictions; ev != 1 {
		t.Errorf("evictions = %d, want 1", ev)
	}
	// An evicted key recomputes on the next Get.
	var recomputed bool
	if _, err := s.Get("b", func() (string, error) { recomputed = true; return "vb", nil }); err != nil {
		t.Fatal(err)
	}
	if !recomputed {
		t.Error("Get of evicted key did not recompute")
	}
}

// TestStoreLRUSingleFlightInteraction: an in-flight computation is never
// evicted — waiters that joined it observe its outcome even while newer
// completed entries churn the LRU list past capacity.
func TestStoreLRUSingleFlightInteraction(t *testing.T) {
	s := NewBoundedStore[int](1)
	release := make(chan struct{})
	started := make(chan struct{})
	var inflightVal atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, err := s.Get("slow", func() (int, error) {
			close(started)
			<-release
			return 42, nil
		})
		if err != nil {
			t.Errorf("slow Get: %v", err)
		}
		inflightVal.Store(int64(v))
	}()
	<-started
	// Churn the capacity-1 store while "slow" is in flight.
	for i := 0; i < 5; i++ {
		k := fmt.Sprintf("fast%d", i)
		if _, err := s.Get(k, func() (int, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
	}
	// A second waiter joins the in-flight computation (a hit).
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, err := s.Get("slow", func() (int, error) {
			t.Error("joined computation must not recompute")
			return -1, nil
		})
		if err != nil || v != 42 {
			t.Errorf("joined Get = %d, %v; want 42", v, err)
		}
	}()
	close(release)
	wg.Wait()
	if inflightVal.Load() != 42 {
		t.Errorf("in-flight computation returned %d, want 42", inflightVal.Load())
	}
	// Once completed, "slow" entered the LRU order most-recently-used and
	// the bound holds again.
	if s.Len() > 2 {
		t.Errorf("Len = %d after churn; capacity bound not enforced", s.Len())
	}
}

func TestStoreForget(t *testing.T) {
	s := NewStore[int]()
	sentinel := errors.New("boom")
	if _, err := s.Get("k", func() (int, error) { return 0, sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	// Errors are sticky until forgotten.
	if _, err := s.Get("k", func() (int, error) { return 1, nil }); !errors.Is(err, sentinel) {
		t.Fatalf("memoized error not returned: %v", err)
	}
	if !s.Forget("k") {
		t.Fatal("Forget found nothing")
	}
	if s.Forget("k") {
		t.Fatal("double Forget succeeded")
	}
	v, err := s.Get("k", func() (int, error) { return 1, nil })
	if err != nil || v != 1 {
		t.Fatalf("Get after Forget = %d, %v", v, err)
	}
}

// TestStoreForgetInFlight: forgetting a key mid-computation detaches it —
// waiters still get the outcome, but the store does not retain it.
func TestStoreForgetInFlight(t *testing.T) {
	s := NewStore[int]()
	release := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, err := s.Get("k", func() (int, error) {
			close(started)
			<-release
			return 9, nil
		})
		if err != nil || v != 9 {
			t.Errorf("Get = %d, %v", v, err)
		}
	}()
	<-started
	if !s.Forget("k") {
		t.Fatal("Forget of in-flight entry failed")
	}
	close(release)
	wg.Wait()
	if _, _, ok := s.Peek("k"); ok {
		t.Error("forgotten in-flight entry resurfaced after completion")
	}
	if s.Len() != 0 {
		t.Errorf("Len = %d, want 0", s.Len())
	}
}

// TestStoreForgetIf: conditional removal touches only completed entries
// whose outcome matches the predicate — the guard that keeps a stale
// waiter from evicting a fresh recomputation.
func TestStoreForgetIf(t *testing.T) {
	s := NewStore[int]()
	boom := errors.New("boom")
	isBoom := func(_ int, err error) bool { return errors.Is(err, boom) }
	if s.ForgetIf("k", isBoom) {
		t.Fatal("ForgetIf removed an absent key")
	}
	if _, err := s.Get("k", func() (int, error) { return 0, boom }); !errors.Is(err, boom) {
		t.Fatal(err)
	}
	if !s.ForgetIf("k", isBoom) {
		t.Fatal("ForgetIf did not remove the matching error entry")
	}
	// A fresh successful entry for the same key must survive a stale
	// ForgetIf with the old predicate.
	if _, err := s.Get("k", func() (int, error) { return 5, nil }); err != nil {
		t.Fatal(err)
	}
	if s.ForgetIf("k", isBoom) {
		t.Fatal("stale ForgetIf evicted the fresh entry")
	}
	if v, _, ok := s.Peek("k"); !ok || v != 5 {
		t.Fatalf("fresh entry lost: %d, %v", v, ok)
	}
	// In-flight entries are never touched.
	release := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = s.Get("slow", func() (int, error) { close(started); <-release; return 1, nil })
	}()
	<-started
	if s.ForgetIf("slow", func(int, error) bool { return true }) {
		t.Error("ForgetIf removed an in-flight entry")
	}
	close(release)
	wg.Wait()
	if _, _, ok := s.Peek("slow"); !ok {
		t.Error("in-flight entry vanished after completion")
	}
}

func TestStorePeek(t *testing.T) {
	s := NewStore[int]()
	if _, _, ok := s.Peek("k"); ok {
		t.Fatal("Peek of absent key succeeded")
	}
	if st := s.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("failed Peek moved counters: %+v", st)
	}
	if _, err := s.Get("k", func() (int, error) { return 3, nil }); err != nil {
		t.Fatal(err)
	}
	v, err, ok := s.Peek("k")
	if !ok || err != nil || v != 3 {
		t.Fatalf("Peek = %d, %v, %v", v, err, ok)
	}
	if st := s.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss", st)
	}
}
