package core

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// This file implements the compact binary trace format used for
// spilling traces to disk.  Like the JSON codec it is fully streaming —
// one superstep in memory at a time, on both sides — but it stores each
// step's pairs as two flat []int32 columns (the Schedule's CSR column
// layout), so a spilled trace costs ~8 bytes per message instead of the
// ~16 bytes of decimal JSON, and decoding is a bulk byte copy instead
// of a parse.
//
// Layout (little-endian):
//
//	magic "NOBTRC01" | u32 v | u32 logV
//	per step: u8 0x01 | u32 label | i64 messages
//	          | (logV+1) × i64 degree
//	          | u64 pairCount | pairCount × i32 src | pairCount × i32 dst
//	footer:   u8 0xFF | u64 stepCount
//
// The footer makes truncation detectable: a reader that hits EOF before
// the footer (or a step count that disagrees) reports a corrupt trace.

const traceBinaryMagic = "NOBTRC01"

const (
	binTagStep byte = 0x01
	binTagEnd  byte = 0xFF
)

// TraceBinaryWriter is a TraceSink encoding the binary spill format.
type TraceBinaryWriter struct {
	// ReleasePairs has the same contract as TraceJSONWriter.ReleasePairs:
	// enable only when the writer owns its records exclusively.
	ReleasePairs bool

	bw      *bufio.Writer
	scratch []byte
	started bool
	ended   bool
	steps   int
}

// NewTraceBinaryWriter returns a writer encoding to w.
func NewTraceBinaryWriter(w io.Writer) *TraceBinaryWriter {
	return &TraceBinaryWriter{bw: bufio.NewWriter(w)}
}

// BeginTrace implements TraceSink.
func (bw *TraceBinaryWriter) BeginTrace(v, logV int) error {
	if bw.started {
		return fmt.Errorf("core: trace writer: BeginTrace called twice; a codec writer serializes exactly one trace (one machine per run)")
	}
	bw.started = true
	b := bw.buf(len(traceBinaryMagic) + 8)
	b = append(b, traceBinaryMagic...)
	b = binary.LittleEndian.AppendUint32(b, uint32(v))
	b = binary.LittleEndian.AppendUint32(b, uint32(logV))
	_, err := bw.bw.Write(b)
	return err
}

// WriteStep implements TraceSink.  The binary frame layout is part of
// the archived-trace format and must be byte-identical across runs of
// the same trace.
//
//nob:deterministic
func (bw *TraceBinaryWriter) WriteStep(rec StepRec) error {
	if !bw.started || bw.ended {
		return fmt.Errorf("core: trace writer: WriteStep outside BeginTrace/EndTrace")
	}
	n := rec.Pairs.Len()
	b := bw.buf(1 + 4 + 8 + len(rec.Degree)*8 + 8)
	b = append(b, binTagStep)
	b = binary.LittleEndian.AppendUint32(b, uint32(rec.Label))
	b = binary.LittleEndian.AppendUint64(b, uint64(rec.Messages))
	for _, d := range rec.Degree {
		b = binary.LittleEndian.AppendUint64(b, uint64(d))
	}
	b = binary.LittleEndian.AppendUint64(b, uint64(n))
	if _, err := bw.bw.Write(b); err != nil {
		return err
	}
	if n > 0 {
		if err := bw.writeColumn(rec.Pairs, false); err != nil {
			return err
		}
		if err := bw.writeColumn(rec.Pairs, true); err != nil {
			return err
		}
	}
	bw.steps++
	if bw.ReleasePairs {
		rec.Pairs.Release()
	}
	return nil
}

// writeColumn streams one side (src or dst) of the pair list, chunk by
// chunk, through the scratch buffer.
func (bw *TraceBinaryWriter) writeColumn(p *PairList, dstSide bool) error {
	for _, c := range p.chunks {
		col := c.src
		if dstSide {
			col = c.dst
		}
		b := bw.buf(len(col) * 4)
		for _, v := range col {
			b = binary.LittleEndian.AppendUint32(b, uint32(v))
		}
		if _, err := bw.bw.Write(b); err != nil {
			return err
		}
	}
	return nil
}

// EndTrace implements TraceSink.  Like the JSON writer it finalizes
// only successful runs, leaving failed output without its footer so it
// can never decode as complete.
func (bw *TraceBinaryWriter) EndTrace(runErr error) error {
	if bw.ended {
		return nil
	}
	bw.ended = true
	if runErr != nil {
		return nil
	}
	if !bw.started {
		return fmt.Errorf("core: trace writer: EndTrace without BeginTrace")
	}
	b := bw.buf(9)
	b = append(b, binTagEnd)
	b = binary.LittleEndian.AppendUint64(b, uint64(bw.steps))
	if _, err := bw.bw.Write(b); err != nil {
		return err
	}
	return bw.bw.Flush()
}

// Steps returns the number of records written so far.
func (bw *TraceBinaryWriter) Steps() int { return bw.steps }

func (bw *TraceBinaryWriter) buf(n int) []byte {
	if cap(bw.scratch) < n {
		bw.scratch = make([]byte, 0, n)
	}
	return bw.scratch[:0]
}

// TraceBinaryReader is a TraceSource over the binary spill format.
type TraceBinaryReader struct {
	br         *bufio.Reader
	v, logV    int
	labelBound int
	idx        int
	done       bool
	rec        StepRec
	scratch    []byte
}

// NewTraceBinaryReader parses the header from r and positions the
// reader at the first superstep.  The caller must have consumed
// nothing from r (including the magic).
func NewTraceBinaryReader(r io.Reader) (*TraceBinaryReader, error) {
	br := &TraceBinaryReader{br: bufio.NewReader(r)}
	hdr := make([]byte, len(traceBinaryMagic)+8)
	if _, err := io.ReadFull(br.br, hdr); err != nil {
		return nil, fmt.Errorf("core: decoding trace: %w", err)
	}
	if string(hdr[:len(traceBinaryMagic)]) != traceBinaryMagic {
		return nil, fmt.Errorf("core: decoding trace: bad magic %q", hdr[:len(traceBinaryMagic)])
	}
	br.v = int(binary.LittleEndian.Uint32(hdr[len(traceBinaryMagic):]))
	br.logV = int(binary.LittleEndian.Uint32(hdr[len(traceBinaryMagic)+4:]))
	if br.v < 1 || br.v&(br.v-1) != 0 {
		return nil, fmt.Errorf("core: trace has invalid v=%d", br.v)
	}
	if lv, err := TryLog2(br.v); err != nil || br.logV != lv {
		return nil, fmt.Errorf("core: trace log_v=%d inconsistent with v=%d", br.logV, br.v)
	}
	br.labelBound = br.logV
	if br.labelBound < 1 {
		br.labelBound = 1
	}
	return br, nil
}

// V returns the machine width declared by the trace header, LogV its
// log.
func (br *TraceBinaryReader) V() int    { return br.v }
func (br *TraceBinaryReader) LogV() int { return br.logV }

// Next implements TraceSource.  The returned record is reused by the
// following Next call.
func (br *TraceBinaryReader) Next() (*StepRec, error) {
	if br.done {
		return nil, io.EOF
	}
	tag, err := br.br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("core: decoding trace: %w (truncated spill file?)", err)
	}
	switch tag {
	case binTagEnd:
		br.done = true
		var cnt [8]byte
		if _, err := io.ReadFull(br.br, cnt[:]); err != nil {
			return nil, fmt.Errorf("core: decoding trace: %w (truncated spill file?)", err)
		}
		if got := binary.LittleEndian.Uint64(cnt[:]); got != uint64(br.idx) {
			return nil, fmt.Errorf("core: decoding trace: footer declares %d steps but %d were read", got, br.idx)
		}
		return nil, io.EOF
	case binTagStep:
	default:
		return nil, fmt.Errorf("core: decoding trace: unknown record tag %#x at step %d", tag, br.idx)
	}
	fixed := br.buf(4 + 8 + (br.logV+1)*8 + 8)
	if _, err := io.ReadFull(br.br, fixed); err != nil {
		return nil, fmt.Errorf("core: decoding trace: %w (truncated spill file?)", err)
	}
	br.rec = StepRec{
		Label:    int(int32(binary.LittleEndian.Uint32(fixed))),
		Degree:   make([]int64, br.logV+1),
		Messages: int64(binary.LittleEndian.Uint64(fixed[4:])),
	}
	for j := range br.rec.Degree {
		br.rec.Degree[j] = int64(binary.LittleEndian.Uint64(fixed[12+j*8:]))
	}
	n := binary.LittleEndian.Uint64(fixed[12+(br.logV+1)*8:])
	if n > uint64(br.rec.Messages) {
		return nil, fmt.Errorf("core: decoding trace: step %d declares %d pairs for %d messages", br.idx, n, br.rec.Messages)
	}
	if n > 0 {
		src, err := br.readColumn(int(n))
		if err != nil {
			return nil, err
		}
		dst, err := br.readColumn(int(n))
		if err != nil {
			return nil, err
		}
		br.rec.Pairs = pairListOver(src, dst)
	}
	if err := validateStep(&br.rec, br.idx, br.logV, br.labelBound); err != nil {
		return nil, err
	}
	br.idx++
	return &br.rec, nil
}

// readColumn reads n int32 values.
func (br *TraceBinaryReader) readColumn(n int) ([]int32, error) {
	raw := br.buf(n * 4)
	if _, err := io.ReadFull(br.br, raw); err != nil {
		return nil, fmt.Errorf("core: decoding trace: %w (truncated spill file?)", err)
	}
	col := make([]int32, n)
	for i := range col {
		col[i] = int32(binary.LittleEndian.Uint32(raw[i*4:]))
	}
	return col, nil
}

// Close implements TraceSource.  The reader does not own the underlying
// stream.
func (br *TraceBinaryReader) Close() error { return nil }

func (br *TraceBinaryReader) buf(n int) []byte {
	if cap(br.scratch) < n {
		br.scratch = make([]byte, n)
	}
	return br.scratch[:n]
}

// TraceFormat selects a trace file encoding.
type TraceFormat int

const (
	// TraceJSON is the archival wire format (EncodeJSON).
	TraceJSON TraceFormat = iota
	// TraceBinary is the compact spill format.
	TraceBinary
)

// TraceFileSink is a TraceSink writing a trace file atomically: output
// goes to a temporary sibling (path + ".tmp") created at BeginTrace and
// renamed over path only when EndTrace sees a successful run.  A failed
// or cancelled run removes the temporary, so a partial trace file is
// never left behind under the target name.
type TraceFileSink struct {
	// KeepPairs leaves each record's pair chunks intact after encoding.
	// By default the sink owns its records — a run streaming into a file
	// recycles pooled chunks as they are written.  A caller writing out a
	// still-live in-memory trace (the harness spill path) must keep them:
	// the trace, and possibly a compiled replay schedule, still reference
	// the chunks.
	KeepPairs bool

	path   string
	format TraceFormat
	f      *os.File
	inner  TraceSink
}

// NewTraceFileSink returns a sink that will write path in the given
// format.  Nothing touches the filesystem until BeginTrace.  The sink
// owns its records: pooled pair chunks are recycled as steps are
// encoded.
func NewTraceFileSink(path string, format TraceFormat) *TraceFileSink {
	return &TraceFileSink{path: path, format: format}
}

func (fs *TraceFileSink) tmpPath() string { return fs.path + ".tmp" }

// BeginTrace implements TraceSink.
func (fs *TraceFileSink) BeginTrace(v, logV int) error {
	if fs.inner != nil {
		return fmt.Errorf("core: trace writer: BeginTrace called twice; a codec writer serializes exactly one trace (one machine per run)")
	}
	f, err := os.OpenFile(fs.tmpPath(), os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("core: trace sink: %w", err)
	}
	fs.f = f
	switch fs.format {
	case TraceBinary:
		w := NewTraceBinaryWriter(f)
		w.ReleasePairs = !fs.KeepPairs
		fs.inner = w
	default:
		w := NewTraceJSONWriter(f)
		w.ReleasePairs = !fs.KeepPairs
		fs.inner = w
	}
	return fs.inner.BeginTrace(v, logV)
}

// WriteStep implements TraceSink.
func (fs *TraceFileSink) WriteStep(rec StepRec) error {
	if fs.inner == nil {
		return fmt.Errorf("core: trace writer: WriteStep outside BeginTrace/EndTrace")
	}
	return fs.inner.WriteStep(rec)
}

// EndTrace implements TraceSink: finalize and rename on success, remove
// the temporary on failure.
func (fs *TraceFileSink) EndTrace(runErr error) error {
	if fs.f == nil {
		return nil
	}
	f := fs.f
	fs.f = nil
	if runErr != nil {
		f.Close()
		os.Remove(fs.tmpPath())
		return nil
	}
	if err := fs.inner.EndTrace(nil); err != nil {
		f.Close()
		os.Remove(fs.tmpPath())
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(fs.tmpPath())
		return fmt.Errorf("core: trace sink: %w", err)
	}
	if err := os.Rename(fs.tmpPath(), fs.path); err != nil {
		os.Remove(fs.tmpPath())
		return fmt.Errorf("core: trace sink: %w", err)
	}
	return nil
}

// closerSource wraps a TraceSource with the owning file handle.
type closerSource struct {
	TraceSource
	c io.Closer
}

func (cs *closerSource) Close() error {
	err := cs.TraceSource.Close()
	if cerr := cs.c.Close(); err == nil {
		err = cerr
	}
	return err
}

// NewTraceSource returns a streaming TraceSource over r, sniffing the
// encoding: the binary spill magic selects the binary reader, anything
// else is treated as the JSON wire format.  The caller retains
// ownership of r; Close does not close it.
func NewTraceSource(r io.Reader) (TraceSource, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(len(traceBinaryMagic))
	if err != nil && len(head) == 0 {
		return nil, fmt.Errorf("core: decoding trace: %w", err)
	}
	if bytes.Equal(head, []byte(traceBinaryMagic)) {
		return NewTraceBinaryReader(br)
	}
	return NewTraceJSONReader(br)
}

// OpenTraceFile opens a trace file of either format for streaming.
// Closing the returned source closes the file.
func OpenTraceFile(path string) (TraceSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	src, err := NewTraceSource(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("%s: %w", filepath.Base(path), err)
	}
	return &closerSource{TraceSource: src, c: f}, nil
}
