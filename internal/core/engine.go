package core

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync/atomic"
)

// Engine selects the execution strategy used to run a program on M(v).
// The engine changes only *how* the v virtual processors are scheduled on
// the host; the model semantics — superstep structure, message delivery
// order, the recorded Trace — are engine-independent, and the test suite
// asserts trace-for-trace equivalence between all engines.
//
// The interface is sealed: the machine internals are generic and
// unexported, so implementations live in this package.  Use EngineByName
// to resolve a user-facing name (e.g. a CLI flag) to an Engine.
type Engine interface {
	// Name is the stable identifier of the engine ("goroutine", "block").
	Name() string

	// sealed marks the interface as implementable only inside core.
	sealed()
}

// GoroutineEngine is the reference engine: one goroutine per virtual
// processor, parked on per-cluster condition-variable barriers.  It is the
// most literal rendering of the model — every VP is an independent thread
// of control and clusters synchronizing at deep labels proceed fully
// independently — but wakeups broadcast to whole clusters and every
// barrier completion funnels through a global trace mutex, so scheduler
// churn dominates at large v.  Prefer it for debugging and as the
// semantic oracle.
type GoroutineEngine struct{}

// Name implements Engine.
func (GoroutineEngine) Name() string { return "goroutine" }

func (GoroutineEngine) sealed() {}

// BlockEngine is the scalable engine: W workers (W a power of two,
// clipped to v) each own a contiguous block of v/W VPs and drive them
// through supersteps in lockstep.  VPs live on coroutines (iter.Pull) —
// a Go function can only be suspended mid-call on its own stack — so a
// superstep resume is a direct stack switch with no scheduler wakeup,
// and idle coroutines are recycled across runs through a bounded
// process-wide cache; workers meet at a sense-reversing tree barrier
// once per superstep; messages travel through per-worker destination-bucketed
// outboxes (bulk appends, no per-message locking); and the h-relation
// counters are accumulated in per-worker partitions merged once per
// barrier, so the global trace mutex is off the hot path entirely.
//
// For valid programs the produced Trace is identical to GoroutineEngine's
// (the equivalence tests enforce this).  The only observable difference
// is pacing of invalid programs: the BlockEngine runs all clusters
// superstep-synchronously, so label-sequence violations are detected at
// the end of the offending superstep rather than through the deadlock
// detector; the same class of errors is reported either way.
type BlockEngine struct {
	// Workers is the number of workers to use.  0 means automatic: the
	// largest power of two not exceeding runtime.GOMAXPROCS(0).  Any
	// other value is rounded down to a power of two and clipped to
	// [1, v].
	Workers int
}

// Name implements Engine.
func (BlockEngine) Name() string { return "block" }

func (BlockEngine) sealed() {}

// workerCount resolves the effective worker count for a machine of v VPs.
func (e BlockEngine) workerCount(v int) int {
	w := e.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	w = floorPow2(w)
	if w > v {
		w = v
	}
	if w < 1 {
		w = 1
	}
	return w
}

// floorPow2 returns the largest power of two <= n (1 for n <= 1).
func floorPow2(n int) int {
	p := 1
	for p*2 <= n {
		p *= 2
	}
	return p
}

// engineFactories is the registry of selectable engines: name → fresh
// default-configured instance.  EngineByName, EngineNames and Engines all
// derive from it, so adding an engine here updates every user-facing
// enumeration (CLI flag docs, usage text, service error bodies) at once.
var engineFactories = map[string]func() Engine{
	GoroutineEngine{}.Name(): func() Engine { return GoroutineEngine{} },
	BlockEngine{}.Name():     func() Engine { return BlockEngine{} },
	ReplayEngine{}.Name():    func() Engine { return ReplayEngine{} },
}

// EngineByName resolves an engine name, as accepted on command lines
// ("goroutine", "block", "replay"), to a default-configured Engine.  The
// error enumerates every registered name.
func EngineByName(name string) (Engine, error) {
	if f, ok := engineFactories[name]; ok {
		return f(), nil
	}
	return nil, fmt.Errorf("core: unknown engine %q (have %s)", name, strings.Join(EngineNames(), ", "))
}

// EngineNames lists the selectable engine names, sorted.
func EngineNames() []string {
	names := make([]string, 0, len(engineFactories))
	for n := range engineFactories {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Engines returns one default-configured instance of every selectable
// engine, sorted by name — the listing surfaces (nobl, the service's
// /v1/algorithms) render engine tables from it.
func Engines() []Engine {
	names := EngineNames()
	out := make([]Engine, len(names))
	for i, n := range names {
		out[i] = engineFactories[n]()
	}
	return out
}

// engineBox wraps an Engine so atomic.Value always stores one concrete
// type regardless of which engine is selected.
type engineBox struct{ e Engine }

// defaultEngine holds the Engine used when Options.Engine is nil.
var defaultEngine atomic.Value

func init() { defaultEngine.Store(engineBox{BlockEngine{}}) }

// DefaultEngine returns the engine used by Run and by RunOpt when
// Options.Engine is nil.  It is the BlockEngine unless overridden with
// SetDefaultEngine.
func DefaultEngine() Engine { return defaultEngine.Load().(engineBox).e }

// SetDefaultEngine changes the process-wide default engine and returns
// the previous one.  It is safe for concurrent use; runs already in
// flight are unaffected.
func SetDefaultEngine(e Engine) Engine {
	if e == nil {
		panic("core: SetDefaultEngine(nil)")
	}
	return defaultEngine.Swap(engineBox{e}).(engineBox).e
}
