package core

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"
)

// TraceKey identifies one deterministic specification-model run: a named
// algorithm executed at input size N.  Because the paper's algorithms are
// static — their communication depends only on the input size, never on
// input values — a trace computed once for a key is valid for every
// consumer, which is what makes keyed memoization sound.  The Engine
// component is included so runs on different execution engines (whose
// traces are equivalent but whose runs are distinct) never alias.
type TraceKey struct {
	// Algorithm is the registry name of the algorithm ("matmul", "fft", ...).
	Algorithm string
	// N is the input size the algorithm was specified at.
	N int
	// Engine is the name of the execution engine used for the run.
	Engine string
}

// String renders the key in its canonical "algorithm/n=N@engine" form,
// used as the memo-store key and as a stable file-name stem for archived
// traces.
func (k TraceKey) String() string {
	return fmt.Sprintf("%s/n=%d@%s", k.Algorithm, k.N, k.Engine)
}

// StoreStats reports the cumulative effectiveness of a Store.
type StoreStats struct {
	// Hits counts Get calls served from a completed or in-flight entry.
	Hits int64
	// Misses counts Get calls that had to compute the value.
	Misses int64
	// Evictions counts completed entries discarded by the LRU bound.
	Evictions int64
}

// HitRate returns Hits/(Hits+Misses), or 0 when the store is unused.
func (s StoreStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Store is a keyed, concurrency-safe, single-flight memo store with an
// optional LRU capacity bound.  The first Get for a key computes the
// value; concurrent and later Gets for the same key wait for (or reuse)
// that single computation.  Errors are cached alongside values: a failed
// computation is not retried, so every caller of a key observes the same
// outcome — a property the experiment suite relies on for
// schedule-independent output.  (Callers that must not memoize an error —
// e.g. a cancelled context — Forget the key instead.)
//
// A bounded store (NewBoundedStore) keeps at most capacity completed
// entries, discarding the least recently used beyond that; a long-running
// process can therefore share one store across its whole lifetime without
// unbounded growth.  In-flight computations are never evicted — a waiter
// always observes the computation it joined — so the resident entry count
// may transiently exceed the capacity by the number of computations in
// flight.
type Store[V any] struct {
	mu        sync.Mutex
	capacity  int // 0 = unbounded
	entries   map[string]*storeEntry[V]
	lru       *list.List // completed entries; front = most recently used
	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

type storeEntry[V any] struct {
	key  string
	done chan struct{} // closed when val/err are set
	val  V
	err  error
	elem *list.Element // non-nil once completed and resident
}

// NewStore returns an empty unbounded store.
func NewStore[V any]() *Store[V] {
	return NewBoundedStore[V](0)
}

// NewBoundedStore returns an empty store keeping at most capacity
// completed entries under LRU eviction; capacity <= 0 means unbounded.
func NewBoundedStore[V any](capacity int) *Store[V] {
	if capacity < 0 {
		capacity = 0
	}
	return &Store[V]{
		capacity: capacity,
		entries:  map[string]*storeEntry[V]{},
		lru:      list.New(),
	}
}

// Capacity returns the LRU bound (0 = unbounded).
func (s *Store[V]) Capacity() int { return s.capacity }

// Get returns the value for key, computing it with compute on the first
// call.  compute runs at most once per key across all goroutines; callers
// that find the computation in flight block until it completes.
func (s *Store[V]) Get(key string, compute func() (V, error)) (V, error) {
	s.mu.Lock()
	e, ok := s.entries[key]
	if ok {
		if e.elem != nil {
			s.lru.MoveToFront(e.elem)
		}
		s.mu.Unlock()
		s.hits.Add(1)
		<-e.done
		return e.val, e.err
	}
	e = &storeEntry[V]{key: key, done: make(chan struct{})}
	s.entries[key] = e
	s.mu.Unlock()
	s.misses.Add(1)
	e.val, e.err = compute()
	close(e.done)
	s.mu.Lock()
	// The entry enters the LRU order only now that it is completed; a
	// Forget during the computation removed it from the map, in which case
	// it must not resurface.
	if s.entries[key] == e {
		e.elem = s.lru.PushFront(e)
		s.evictLocked()
	}
	s.mu.Unlock()
	return e.val, e.err
}

// Peek returns the completed value for key without ever computing.  ok
// reports whether a completed entry exists; in-flight computations report
// !ok (Peek never blocks).  A successful Peek counts as a hit and
// refreshes the entry's LRU position; a failed one is not counted as a
// miss (nothing was computed).
func (s *Store[V]) Peek(key string) (val V, err error, ok bool) {
	s.mu.Lock()
	e, exists := s.entries[key]
	if !exists || e.elem == nil {
		s.mu.Unlock()
		var zero V
		return zero, nil, false
	}
	s.lru.MoveToFront(e.elem)
	s.mu.Unlock()
	s.hits.Add(1)
	return e.val, e.err, true
}

// Forget removes key from the store, so a later Get recomputes it.  It
// reports whether an entry (completed or in flight) was removed.  Waiters
// already joined to an in-flight computation still observe its outcome;
// the outcome is simply not retained.  Forget is how callers drop a
// memoized error they do not want to be sticky (e.g. a cancelled run).
func (s *Store[V]) Forget(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if !ok {
		return false
	}
	if e.elem != nil {
		s.lru.Remove(e.elem)
		e.elem = nil
	}
	delete(s.entries, key)
	return true
}

// ForgetIf removes key only when its entry is completed and its outcome
// satisfies pred.  In-flight computations and entries that fail pred are
// left untouched, so a caller reacting to a stale outcome (e.g. a
// cancellation error it received earlier) can never evict the fresh
// entry that replaced it — the race unconditional Forget is exposed to
// when several waiters of one failed computation all try to drop it.
func (s *Store[V]) ForgetIf(key string, pred func(val V, err error) bool) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if !ok || e.elem == nil {
		return false
	}
	if !pred(e.val, e.err) {
		return false
	}
	s.lru.Remove(e.elem)
	e.elem = nil
	delete(s.entries, key)
	return true
}

// evictLocked discards least-recently-used completed entries beyond the
// capacity.  Called with s.mu held.
func (s *Store[V]) evictLocked() {
	if s.capacity <= 0 {
		return
	}
	for s.lru.Len() > s.capacity {
		back := s.lru.Back()
		victim := back.Value.(*storeEntry[V])
		s.lru.Remove(back)
		victim.elem = nil
		delete(s.entries, victim.key)
		s.evictions.Add(1)
	}
}

// Len returns the number of keyed entries (completed or in flight).
func (s *Store[V]) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Stats returns the cumulative hit/miss/eviction counters.
func (s *Store[V]) Stats() StoreStats {
	return StoreStats{Hits: s.hits.Load(), Misses: s.misses.Load(), Evictions: s.evictions.Load()}
}
