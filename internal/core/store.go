package core

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// TraceKey identifies one deterministic specification-model run: a named
// algorithm executed at input size N.  Because the paper's algorithms are
// static — their communication depends only on the input size, never on
// input values — a trace computed once for a key is valid for every
// consumer, which is what makes keyed memoization sound.  The Engine
// component is included so runs on different execution engines (whose
// traces are equivalent but whose runs are distinct) never alias.
type TraceKey struct {
	// Algorithm is the registry name of the algorithm ("matmul", "fft", ...).
	Algorithm string
	// N is the input size the algorithm was specified at.
	N int
	// Engine is the name of the execution engine used for the run.
	Engine string
}

// String renders the key in its canonical "algorithm/n=N@engine" form,
// used as the memo-store key and as a stable file-name stem for archived
// traces.
func (k TraceKey) String() string {
	return fmt.Sprintf("%s/n=%d@%s", k.Algorithm, k.N, k.Engine)
}

// StoreStats reports the cumulative effectiveness of a Store.
type StoreStats struct {
	// Hits counts Get calls served from a completed or in-flight entry.
	Hits int64
	// Misses counts Get calls that had to compute the value.
	Misses int64
}

// HitRate returns Hits/(Hits+Misses), or 0 when the store is unused.
func (s StoreStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Store is a keyed, concurrency-safe, single-flight memo store.  The
// first Get for a key computes the value; concurrent and later Gets for
// the same key wait for (or reuse) that single computation.  Errors are
// cached alongside values: a failed computation is not retried, so every
// caller of a key observes the same outcome — a property the experiment
// suite relies on for schedule-independent output.
type Store[V any] struct {
	mu      sync.Mutex
	entries map[string]*storeEntry[V]
	hits    atomic.Int64
	misses  atomic.Int64
}

type storeEntry[V any] struct {
	done chan struct{} // closed when val/err are set
	val  V
	err  error
}

// NewStore returns an empty store.
func NewStore[V any]() *Store[V] {
	return &Store[V]{entries: map[string]*storeEntry[V]{}}
}

// Get returns the value for key, computing it with compute on the first
// call.  compute runs at most once per key across all goroutines; callers
// that find the computation in flight block until it completes.
func (s *Store[V]) Get(key string, compute func() (V, error)) (V, error) {
	s.mu.Lock()
	e, ok := s.entries[key]
	if ok {
		s.mu.Unlock()
		s.hits.Add(1)
		<-e.done
		return e.val, e.err
	}
	e = &storeEntry[V]{done: make(chan struct{})}
	s.entries[key] = e
	s.mu.Unlock()
	s.misses.Add(1)
	e.val, e.err = compute()
	close(e.done)
	return e.val, e.err
}

// Len returns the number of keyed entries (completed or in flight).
func (s *Store[V]) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Stats returns the cumulative hit/miss counters.
func (s *Store[V]) Stats() StoreStats {
	return StoreStats{Hits: s.hits.Load(), Misses: s.misses.Load()}
}
