package core_test

import (
	"bytes"
	"math/rand"
	"testing"

	"netoblivious/internal/core"
	"netoblivious/internal/tracetest"
)

// randomProgram builds a deterministic valid program: a common label
// sequence, and per-(VP, step) message patterns derived from a seed so
// every engine and worker count executes the identical algorithm.
func randomProgram(seed int64, v, steps int) core.Program[int] {
	labelBound := core.Log2(v)
	if labelBound < 1 {
		labelBound = 1
	}
	rng := rand.New(rand.NewSource(seed))
	labels := make([]int, steps)
	for s := range labels {
		labels[s] = rng.Intn(labelBound)
	}
	return func(vp *core.VP[int]) {
		for s, label := range labels {
			r := rand.New(rand.NewSource(seed ^ int64(vp.ID()*1000003+s*7919)))
			size := vp.ClusterSize(label)
			first := vp.ClusterFirst(label)
			for k := r.Intn(4); k > 0; k-- {
				dst := first + r.Intn(size)
				if r.Intn(5) == 0 {
					vp.SendDummy(dst)
				} else {
					vp.Send(dst, vp.ID()*100+k)
				}
			}
			// Drain a prefix of the inbox so Receive state is exercised.
			for i := r.Intn(3); i > 0; i-- {
				if _, ok := vp.Receive(); !ok {
					break
				}
			}
			vp.Sync(label)
		}
	}
}

// TestEngineEquivalenceRandom is the core equivalence property: random
// valid programs produce byte-identical traces on the GoroutineEngine and
// on the BlockEngine at every worker count.
func TestEngineEquivalenceRandom(t *testing.T) {
	for _, v := range []int{1, 2, 4, 8, 16, 64, 256} {
		for trial := 0; trial < 4; trial++ {
			seed := int64(v*100 + trial)
			steps := 1 + trial
			prog := randomProgram(seed, v, steps)
			opts := core.Options{RecordMessages: true, Engine: core.GoroutineEngine{}}
			ref, err := core.RunOpt(v, prog, opts)
			if err != nil {
				t.Fatalf("v=%d trial=%d: goroutine engine: %v", v, trial, err)
			}
			want := tracetest.Canonical(t, ref)
			for _, workers := range []int{0, 1, 2, 3, 8, 64} {
				opts.Engine = core.BlockEngine{Workers: workers}
				got, err := core.RunOpt(v, prog, opts)
				if err != nil {
					t.Fatalf("v=%d trial=%d workers=%d: block engine: %v", v, trial, workers, err)
				}
				if g := tracetest.Canonical(t, got); !bytes.Equal(want, g) {
					t.Errorf("v=%d trial=%d workers=%d: trace mismatch\ngoroutine: %s\nblock:     %s", v, trial, workers, want, g)
				}
			}
		}
	}
}

// TestPointerEngines: engines passed by pointer (which also satisfy the
// sealed interface) must behave exactly like their value forms, both
// per-run and as the process default.
func TestPointerEngines(t *testing.T) {
	prog := randomProgram(7, 8, 2)
	ref, err := core.RunOpt(8, prog, core.Options{RecordMessages: true, Engine: core.GoroutineEngine{}})
	if err != nil {
		t.Fatal(err)
	}
	want := tracetest.Canonical(t, ref)
	for _, eng := range []core.Engine{&core.GoroutineEngine{}, &core.BlockEngine{}, &core.BlockEngine{Workers: 2}} {
		got, err := core.RunOpt(8, prog, core.Options{RecordMessages: true, Engine: eng})
		if err != nil {
			t.Fatalf("%s (pointer): %v", eng.Name(), err)
		}
		if !bytes.Equal(want, tracetest.Canonical(t, got)) {
			t.Errorf("%s (pointer): trace mismatch", eng.Name())
		}
	}
	prev := core.SetDefaultEngine(&core.BlockEngine{})
	defer core.SetDefaultEngine(prev)
	if _, err := core.Run(8, prog); err != nil {
		t.Errorf("pointer default engine: %v", err)
	}
}
