package core

import (
	"fmt"
	"iter"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// This file implements the BlockEngine: W workers, each owning the
// contiguous block of v/W VPs [w·v/W, (w+1)·v/W), drive the machine
// through supersteps in lockstep.
//
// A superstep is one pass of the worker loop:
//
//	resume  — the worker advances each of its live VPs to its next Sync
//	          (or termination).  VPs are coroutines (iter.Pull), so a
//	          resume is a direct stack switch — no channels, no scheduler
//	          wakeup, no lock: the whole block is one logical thread and
//	          its VP state needs no synchronization;
//	barrier — workers meet at a sense-reversing tree barrier; worker 0
//	          validates cluster completeness and the common label;
//	send    — each worker checks confinement, counts sender-side degrees
//	          and buckets its VPs' outboxes by destination worker;
//	barrier — (so every bucket is complete before anyone drains it)
//	receive — each worker drains the buckets addressed to it in source-
//	          worker order, counting receiver-side degrees and bulk-
//	          appending to its VPs' inboxes;
//	barrier — worker 0 merges the per-worker partitions into one StepRec.
//
// Degree counters are partitioned so no two workers ever write the same
// word: at fold levels with 2^j >= W every fold block lies inside exactly
// one worker's VP range (W is a power of two), so a single global array
// per level has disjoint per-worker index ranges — the sender side is
// written by the source block's owner during send, the receiver side by
// the destination block's owner during receive.  At coarse levels
// (2^j < W) a fold block spans several workers, so each worker sums into
// a private shard and worker 0 adds the shards at the merge barrier.
// Message delivery needs no sort: workers scan their VPs in ascending
// order and buckets are drained in ascending source-worker order, so
// every inbox is built already sorted by (source, send order) exactly as
// the GoroutineEngine produces it.

const (
	vpParked uint8 = iota // yielded at a Sync, waiting for delivery
	vpFinished
)

// vpCoro is a reusable coroutine that executes one VP program per
// activation and parks between jobs.  Creating a coroutine is the
// dominant per-run cost of the BlockEngine (a fresh goroutine and stack
// per VP), so finished coroutines are recycled through a process-wide
// cache: steady-state workloads — benchmark loops, experiment suites,
// servers running many machines — pay it only once.
//
// A coroutine is always in one of two parks: inside a job at a Sync
// yield (during a run), or at the between-jobs yield (idle, cacheable).
// Jobs recover their own panics, so a coroutine survives program
// failures and remains reusable.  next/stop may be called from any
// goroutine as long as calls are serialized, which the owning worker
// (during a run) and the cache mutex (between runs) guarantee.
type vpCoro struct {
	next func() (struct{}, bool)
	stop func()
	job  func(yield func() bool) // set by the owner before resuming
}

func newVPCoro() *vpCoro {
	c := &vpCoro{}
	c.next, c.stop = iter.Pull(func(yield func(struct{}) bool) {
		y := func() bool { return yield(struct{}{}) }
		for {
			job := c.job
			if job == nil {
				return
			}
			job(y)
			c.job = nil
			if !yield(struct{}{}) {
				return // torn down while idle
			}
		}
	})
	return c
}

// coroCache is a bounded LIFO free list of idle coroutines.  Parked
// goroutines are GC roots — an evicted-but-running coroutine would leak
// its stack forever — so the cache never "drops" a coroutine: beyond the
// cap it is explicitly stopped, which unwinds and frees it.
type coroCache struct {
	mu   sync.Mutex
	free []*vpCoro
}

// maxPooledVPCoros bounds the idle coroutines kept for reuse.  Entries
// exist only if a past run needed them, and the GC shrinks idle stacks,
// but a process that once ran a machine with >= 2^16 VPs retains up to
// 2^16 parked coroutines (order of 100 MB) until it exits — a deliberate
// trade: such a process already allocated several times that transiently
// during the run, and repeating large runs is the common case.
const maxPooledVPCoros = 1 << 16

var vpCoros coroCache

// take returns n coroutine slots, the first ones warm from the cache and
// the rest nil (the caller creates those).
func (cc *coroCache) take(n int) []*vpCoro {
	out := make([]*vpCoro, n)
	cc.mu.Lock()
	k := len(cc.free)
	if k > n {
		k = n
	}
	for i := 0; i < k; i++ {
		out[i] = cc.free[len(cc.free)-1-i]
		cc.free[len(cc.free)-1-i] = nil
	}
	cc.free = cc.free[:len(cc.free)-k]
	doomed := cc.decayLocked()
	cc.mu.Unlock()
	stopAll(doomed)
	return out
}

// put returns idle coroutines to the cache.  The cache may transiently
// exceed its cap — repeated large runs then keep reusing the full set —
// and decays back toward the cap a fraction per call, so a genuine
// downshift in machine size releases the excess within a few runs.
func (cc *coroCache) put(batch []*vpCoro) {
	cc.mu.Lock()
	cc.free = append(cc.free, batch...)
	doomed := cc.decayLocked()
	cc.mu.Unlock()
	stopAll(doomed)
}

// decayLocked removes an eighth of the over-cap excess from the free
// list and returns it for teardown outside the lock.
func (cc *coroCache) decayLocked() []*vpCoro {
	excess := len(cc.free) - maxPooledVPCoros
	if excess <= 0 {
		return nil
	}
	n := (excess + 7) / 8
	doomed := make([]*vpCoro, n)
	copy(doomed, cc.free[len(cc.free)-n:])
	for i := len(cc.free) - n; i < len(cc.free); i++ {
		cc.free[i] = nil
	}
	cc.free = cc.free[:len(cc.free)-n]
	return doomed
}

// stopAll unwinds idle coroutines, freeing their goroutines and stacks.
func stopAll(doomed []*vpCoro) {
	for _, c := range doomed {
		c.stop()
	}
}

const (
	phaseDeliver = iota // valid superstep: run send/receive/merge
	phaseDrain          // aborted: resume parked VPs so they unwind
	phaseDone           // all VPs finished (or fully drained): exit
)

// routedMsg is a staged message en route between workers.
type routedMsg[P any] struct {
	src, dst int32
	dummy    bool
	payload  P
}

// blockRun is the per-run state of the BlockEngine.
type blockRun[P any] struct {
	m  *machine[P]
	w  int // worker count: power of two, <= v
	bs int // block size v/w

	coro    []*vpCoro     // per-VP coroutine, driven by the owning worker
	yieldFn []func() bool // per-VP Sync suspension point
	state   []uint8       // vpParked/vpFinished
	label   []int32       // label of the Sync the VP is parked at

	bar *treeBarrier

	liveCount []int64 // per worker: parked VPs after the resume phase
	msgCount  []int64 // per worker: staged messages across parked VPs

	outBuckets [][][]routedMsg[P] // [srcWorker][dstWorker]

	sentG, recvG [][]int32   // [level][globalBlock]; nil at coarse levels
	sentL, recvL [][][]int32 // [worker][level][block]; nil at fine levels
	localMax     [][]int32   // [worker][level] partition maxima
	pairShard    []*PairList // per-worker recorded pairs; spliced at merge

	// waitNs accumulates, per worker, the nanoseconds spent inside
	// treeBarrier.arrive since the last mergeStep sample.  Allocated only
	// when Options.Probe is set; nil keeps the barrier path untouched.
	// Worker 0 reads and clears the counters inside the merge barrier
	// action, so ordering is provided by the barrier's atomics; a
	// worker's wait at the merge barrier itself lands in the next sample.
	waitNs []int64

	// Coordinator state, written by worker 0 inside a barrier and read by
	// every worker after its release.
	stepIdx   int
	stepLabel int
	stepMsgs  int64
	phase     int
}

// runBlockEngine executes prog on m with W block-scheduled workers.
func runBlockEngine[P any](m *machine[P], prog Program[P], W int) {
	b := &blockRun[P]{m: m, w: W, bs: m.v / W}
	m.block = b
	b.coro = make([]*vpCoro, m.v)
	b.yieldFn = make([]func() bool, m.v)
	b.state = make([]uint8, m.v)
	b.label = make([]int32, m.v)
	b.bar = newTreeBarrier(W)
	b.liveCount = make([]int64, W)
	b.msgCount = make([]int64, W)
	b.outBuckets = make([][][]routedMsg[P], W)
	b.sentL = make([][][]int32, W)
	b.recvL = make([][][]int32, W)
	b.localMax = make([][]int32, W)
	for w := 0; w < W; w++ {
		b.outBuckets[w] = make([][]routedMsg[P], W)
		b.sentL[w] = make([][]int32, m.logV+1)
		b.recvL[w] = make([][]int32, m.logV+1)
		b.localMax[w] = make([]int32, m.logV+1)
	}
	b.sentG = make([][]int32, m.logV+1)
	b.recvG = make([][]int32, m.logV+1)
	for j := 1; j <= m.logV; j++ {
		nb := 1 << uint(j)
		if nb >= W {
			b.sentG[j] = make([]int32, nb)
			b.recvG[j] = make([]int32, nb)
		} else {
			for w := 0; w < W; w++ {
				b.sentL[w][j] = make([]int32, nb)
				b.recvL[w][j] = make([]int32, nb)
			}
		}
	}
	if m.opts.RecordMessages {
		b.pairShard = make([]*PairList, W)
		for w := 0; w < W; w++ {
			b.pairShard[w] = &PairList{}
		}
	}
	if m.opts.Probe != nil {
		b.waitNs = make([]int64, W)
	}
	var wg sync.WaitGroup
	wg.Add(W)
	for w := 0; w < W; w++ {
		go func(w int) {
			defer wg.Done()
			b.worker(w, prog)
		}(w)
	}
	wg.Wait()
}

// makeVP installs VP r's program as the job of a (possibly recycled)
// coroutine.  The job recovers its own panics — so the coroutine stays
// reusable — and performs the end-of-program staged-message check.
func (b *blockRun[P]) makeVP(r int, c *vpCoro, prog Program[P]) {
	m := b.m
	vp := &m.vps[r]
	b.coro[r] = c
	c.job = func(yield func() bool) {
		defer func() {
			if e := recover(); e != nil {
				if _, ok := e.(abortSentinel); !ok {
					m.fail(fmt.Errorf("core: VP %d panicked: %v\n%s", r, e, debug.Stack()))
				}
			}
			b.state[r] = vpFinished
			m.finished.Add(1)
		}()
		if m.aborted.Load() {
			return
		}
		b.yieldFn[r] = yield
		prog(vp)
		if len(vp.outbox) > 0 {
			m.fail(fmt.Errorf("core: VP %d terminated with %d staged messages; programs must end with a Sync", r, len(vp.outbox)))
		}
	}
}

// sync implements VP.Sync under the BlockEngine: publish the label and
// suspend the coroutine until the worker resumes it for the next
// superstep.  A false yield means the coroutine is being torn down.
func (b *blockRun[P]) sync(vp *VP[P], label int) {
	r := vp.id
	b.label[r] = int32(label)
	b.state[r] = vpParked
	if !b.yieldFn[r]() {
		panic(abortSentinel{})
	}
	if b.m.aborted.Load() {
		panic(abortSentinel{})
	}
}

// worker drives the VP block [w·bs, (w+1)·bs) through supersteps.
// Cancellation reaches the loop through coordinate (run by one worker
// per barrier generation), which checks the machine's context.
//
//nob:ctxloop
func (b *blockRun[P]) worker(w int, prog Program[P]) {
	m := b.m
	lo, hi := w*b.bs, (w+1)*b.bs
	batch := vpCoros.take(hi - lo)
	for i, r := 0, lo; r < hi; i, r = i+1, r+1 {
		c := batch[i]
		if c == nil {
			c = newVPCoro()
		}
		batch[i] = nil
		b.makeVP(r, c, prog)
	}
	idle := batch[:0] // finished coroutines, returned to the cache on exit
	for {
		// Resume phase: advance every live VP to its next yield point.
		// After an abort this same sweep drains: resumed VPs observe the
		// failure in Sync, unwind, and finish without parking.
		var live, msgs int64
		for r := lo; r < hi; r++ {
			if b.state[r] == vpFinished {
				continue
			}
			if _, ok := b.coro[r].next(); !ok || b.state[r] == vpFinished {
				// Program complete: recycle the coroutine, now parked
				// between jobs.  ok == false means the coroutine itself
				// exited (e.g. a Goexit in VP code) and is not reusable.
				if ok {
					idle = append(idle, b.coro[r])
				}
				b.state[r] = vpFinished
				b.coro[r] = nil
				b.yieldFn[r] = nil
				continue
			}
			live++
			msgs += int64(len(m.vps[r].outbox))
		}
		b.liveCount[w] = live
		b.msgCount[w] = msgs
		b.barArrive(w, b.coordinate)
		switch b.phase {
		case phaseDone:
			vpCoros.put(idle)
			return
		case phaseDrain:
			continue
		}
		b.sendPhase(w, lo, hi)
		b.barArrive(w, nil)
		b.recvPhase(w, lo, hi)
		b.barArrive(w, b.mergeStep)
	}
}

// barArrive is arrive plus per-worker wait accounting when a probe is
// attached.  For worker 0 the measured time includes the barrier action
// it runs; for the others it is pure wait.
func (b *blockRun[P]) barArrive(w int, action func()) {
	if b.waitNs == nil {
		b.bar.arrive(w, action)
		return
	}
	t0 := time.Now()
	b.bar.arrive(w, action)
	b.waitNs[w] += time.Since(t0).Nanoseconds()
}

// coordinate runs on worker 0 between the gather and release of the
// post-resume barrier: it validates that every parked cluster is complete
// and label-consistent and publishes the superstep's label and message
// total, or flips the run into the drain phase on error.
func (b *blockRun[P]) coordinate() {
	m := b.m
	var live, msgs int64
	for w := 0; w < b.w; w++ {
		live += b.liveCount[w]
		msgs += b.msgCount[w]
	}
	if m.aborted.Load() {
		if live == 0 {
			b.phase = phaseDone
		} else {
			b.phase = phaseDrain
		}
		return
	}
	if live == 0 {
		b.phase = phaseDone
		return
	}
	if err := m.ctxErr(); err != nil {
		m.fail(err)
		b.phase = phaseDrain
		return
	}
	v := m.v
	label := -1
	for r := 0; r < v; {
		if b.state[r] == vpFinished {
			r++
			continue
		}
		l := int(b.label[r])
		size := v >> uint(l)
		first := r / size * size
		if first != r {
			// An earlier member of r's cluster finished or synchronized
			// elsewhere, so this cluster can never complete.
			m.fail(fmt.Errorf("core: superstep %d: VP %d reached Sync(%d) but its %d-cluster [%d, %d) did not synchronize together; the label sequence must be identical on every VP", b.stepIdx, r, l, l, first, first+size))
			b.phase = phaseDrain
			return
		}
		for s := r; s < r+size; s++ {
			if b.state[s] == vpFinished {
				m.fail(fmt.Errorf("core: deadlock: VP %d is blocked at a Sync(%d) barrier of superstep %d that VP %d already terminated before (mismatched superstep counts)", r, l, b.stepIdx, s))
				b.phase = phaseDrain
				return
			}
			if int(b.label[s]) != l {
				m.fail(fmt.Errorf("core: VPs of %d-cluster %d reached superstep %d with different sync labels (%d vs %d); the label sequence must be identical on every VP", l, r/size, b.stepIdx, l, b.label[s]))
				b.phase = phaseDrain
				return
			}
		}
		if label == -1 {
			label = l
		} else if label != l {
			m.fail(fmt.Errorf("core: superstep %d has mismatched sync labels %d and %d across clusters; network-oblivious algorithms must use the same label sequence on every VP", b.stepIdx, label, l))
			b.phase = phaseDrain
			return
		}
		r += size
	}
	b.stepLabel = label
	b.stepMsgs = msgs
	b.phase = phaseDeliver
}

// partition returns the index range of worker w in the global counter
// array of a fine fold level j (2^j >= W blocks).
func (b *blockRun[P]) partition(w, j int) (int, int) {
	per := (1 << uint(j)) / b.w
	return w * per, (w + 1) * per
}

// deliverSequential is the single-worker fast path: with the whole
// machine in one block there is nothing to route between workers, so
// confinement checks, both counter sides and inbox delivery fuse into
// one ascending pass over the outboxes — the same work the worker pair
// of phases would do, minus the bucket hop.
func (b *blockRun[P]) deliverSequential() {
	m := b.m
	label, logV := b.stepLabel, m.logV
	for r := 0; r < m.v; r++ {
		if b.state[r] == vpParked {
			m.vps[r].inbox = m.vps[r].inbox[:0]
		}
	}
	if b.stepMsgs == 0 {
		return
	}
	for j := label + 1; j <= logV; j++ {
		clear(b.sentG[j])
		clear(b.recvG[j])
	}
	size := m.v >> uint(label)
	for r := 0; r < m.v; r++ {
		vp := &m.vps[r]
		if b.state[r] != vpParked || len(vp.outbox) == 0 {
			continue
		}
		first := r / size * size
		for _, msg := range vp.outbox {
			if msg.dst < first || msg.dst >= first+size {
				m.fail(fmt.Errorf("core: superstep %d: VP %d sent a message to VP %d outside its %d-cluster [%d, %d); messages of an i-superstep must stay within i-clusters",
					b.stepIdx, r, msg.dst, label, first, first+size))
				return
			}
			for j := logV; j > label; j-- {
				sb := r >> uint(logV-j)
				db := msg.dst >> uint(logV-j)
				if sb == db {
					break
				}
				b.sentG[j][sb]++
				b.recvG[j][db]++
			}
			if b.pairShard != nil {
				b.pairShard[0].Append(int32(r), int32(msg.dst))
			}
			if !msg.dummy {
				dst := &m.vps[msg.dst]
				dst.inbox = append(dst.inbox, Message[P]{Src: r, Dst: msg.dst, Payload: msg.payload})
			}
		}
		vp.outbox = vp.outbox[:0]
	}
	for j := label + 1; j <= logV; j++ {
		sg, rg := b.sentG[j], b.recvG[j]
		var mx int32
		for i := range sg {
			if sg[i] > mx {
				mx = sg[i]
			}
			if rg[i] > mx {
				mx = rg[i]
			}
		}
		b.localMax[0][j] = mx
	}
}

// sendPhase checks cluster confinement, accumulates the sender side of
// the h-relation counters and buckets the worker's staged messages by
// destination worker.
func (b *blockRun[P]) sendPhase(w, lo, hi int) {
	m := b.m
	if b.w == 1 {
		b.deliverSequential()
		return
	}
	label, logV := b.stepLabel, m.logV
	if b.stepMsgs > 0 {
		for j := label + 1; j <= logV; j++ {
			if sg := b.sentG[j]; sg != nil {
				plo, phi := b.partition(w, j)
				clear(sg[plo:phi])
				clear(b.recvG[j][plo:phi])
			} else {
				clear(b.sentL[w][j])
				clear(b.recvL[w][j])
			}
			b.localMax[w][j] = 0
		}
	}
	size := m.v >> uint(label)
	for r := lo; r < hi; r++ {
		vp := &m.vps[r]
		if b.state[r] != vpParked || len(vp.outbox) == 0 {
			continue
		}
		first := r / size * size
		for _, msg := range vp.outbox {
			if msg.dst < first || msg.dst >= first+size {
				m.fail(fmt.Errorf("core: superstep %d: VP %d sent a message to VP %d outside its %d-cluster [%d, %d); messages of an i-superstep must stay within i-clusters",
					b.stepIdx, r, msg.dst, label, first, first+size))
				return
			}
			for j := logV; j > label; j-- {
				sb := r >> uint(logV-j)
				db := msg.dst >> uint(logV-j)
				if sb == db {
					break // equal here implies equal at every coarser fold
				}
				if sg := b.sentG[j]; sg != nil {
					sg[sb]++
				} else {
					b.sentL[w][j][sb]++
				}
			}
			if b.pairShard != nil {
				b.pairShard[w].Append(int32(r), int32(msg.dst))
			}
			dw := msg.dst / b.bs
			b.outBuckets[w][dw] = append(b.outBuckets[w][dw], routedMsg[P]{src: int32(r), dst: int32(msg.dst), dummy: msg.dummy, payload: msg.payload})
		}
		vp.outbox = vp.outbox[:0]
	}
}

// recvPhase resets the inboxes of the worker's parked VPs (BSP discard
// semantics), drains the buckets addressed to this worker in ascending
// source-worker order — preserving the (source, send order) inbox
// invariant without a sort — and accumulates the receiver side of the
// h-relation counters plus the worker's partition maxima.
func (b *blockRun[P]) recvPhase(w, lo, hi int) {
	m := b.m
	if b.w == 1 {
		return // deliverSequential already did the receive side
	}
	for r := lo; r < hi; r++ {
		if b.state[r] == vpParked {
			vp := &m.vps[r]
			vp.inbox = vp.inbox[:0]
		}
	}
	if b.stepMsgs == 0 {
		return
	}
	label, logV := b.stepLabel, m.logV
	for src := 0; src < b.w; src++ {
		bucket := b.outBuckets[src][w]
		for i := range bucket {
			msg := &bucket[i]
			for j := logV; j > label; j-- {
				sb := int(msg.src) >> uint(logV-j)
				db := int(msg.dst) >> uint(logV-j)
				if sb == db {
					break
				}
				if rg := b.recvG[j]; rg != nil {
					rg[db]++
				} else {
					b.recvL[w][j][db]++
				}
			}
			if !msg.dummy {
				dst := &m.vps[msg.dst]
				dst.inbox = append(dst.inbox, Message[P]{Src: int(msg.src), Dst: int(msg.dst), Payload: msg.payload})
			}
		}
		b.outBuckets[src][w] = bucket[:0]
	}
	for j := label + 1; j <= logV; j++ {
		sg := b.sentG[j]
		if sg == nil {
			continue
		}
		rg := b.recvG[j]
		plo, phi := b.partition(w, j)
		var mx int32
		for i := plo; i < phi; i++ {
			if sg[i] > mx {
				mx = sg[i]
			}
			if rg[i] > mx {
				mx = rg[i]
			}
		}
		b.localMax[w][j] = mx
	}
}

// mergeStep runs on worker 0 at the end-of-superstep barrier: it reduces
// the per-worker partitions into the superstep's StepRec — the only place
// the BlockEngine touches the Trace, once per superstep.
func (b *blockRun[P]) mergeStep() {
	m := b.m
	if m.aborted.Load() {
		return // the run is unwinding; the trace will be discarded
	}
	label, logV := b.stepLabel, m.logV
	nLevels := logV - label
	levelMax := make([]int64, nLevels)
	var pairs *PairList
	if b.stepMsgs > 0 {
		for j := label + 1; j <= logV; j++ {
			var mx int32
			if b.sentG[j] != nil {
				for w := 0; w < b.w; w++ {
					if b.localMax[w][j] > mx {
						mx = b.localMax[w][j]
					}
				}
			} else {
				nb := 1 << uint(j)
				for blk := 0; blk < nb; blk++ {
					var s, rc int32
					for w := 0; w < b.w; w++ {
						s += b.sentL[w][j][blk]
						rc += b.recvL[w][j][blk]
					}
					if s > mx {
						mx = s
					}
					if rc > mx {
						mx = rc
					}
				}
			}
			levelMax[j-label-1] = int64(mx)
		}
		if b.pairShard != nil {
			// Shard chunks move into the trace by ownership transfer; the
			// shards come back empty for the next superstep.
			pairs = &PairList{}
			for w := 0; w < b.w; w++ {
				pairs.Splice(b.pairShard[w])
			}
		}
	}
	if err := m.trace.merge(b.stepIdx, label, levelMax, b.stepMsgs, pairs, m.v); err != nil {
		m.fail(err)
		return
	}
	if prb := m.opts.Probe; prb != nil {
		vals := make(map[string]any, b.w)
		for w := 0; w < b.w; w++ {
			vals["w"+strconv.Itoa(w)] = b.waitNs[w]
			b.waitNs[w] = 0
		}
		prb.Counter("engine", "barrier_wait_ns", 0, vals)
	}
	b.stepIdx++
}

// treeBarrier is a sense-reversing tree barrier over W workers (MCS
// style): worker w's node has children 2w+1 and 2w+2; a worker gathers
// its children's arrival flags, flips its slot in its parent's node, and
// waits for the release sense to propagate back down.  Worker 0 is the
// root and runs the barrier action, if any, between the last arrival and
// the release.  All flags are sense-reversed epochs, so no state is ever
// reset between rounds.  Waiters yield the processor between polls: while
// a barrier is pending every VP goroutine is blocked on its handoff
// channel, so only the W workers (W <= GOMAXPROCS by default) compete
// for it.
type treeBarrier struct {
	nodes []tbNode
}

type tbNode struct {
	arrived [2]atomic.Uint32 // flipped by each child on arrival
	release atomic.Uint32    // flipped by the parent on release
	sense   uint32           // owner-local: epoch of the next round
	_       [48]byte         // pad to 64 bytes: one node per cache line
}

func newTreeBarrier(w int) *treeBarrier {
	tb := &treeBarrier{nodes: make([]tbNode, w)}
	for i := range tb.nodes {
		tb.nodes[i].sense = 1
	}
	return tb
}

// arrive blocks until all workers have arrived.  action, if non-nil, is
// executed by worker 0 after every worker has arrived and before any is
// released.
func (tb *treeBarrier) arrive(w int, action func()) {
	n := &tb.nodes[w]
	next := n.sense
	for c := 0; c < 2; c++ {
		if 2*w+1+c < len(tb.nodes) {
			for n.arrived[c].Load() != next {
				runtime.Gosched()
			}
		}
	}
	if w == 0 {
		if action != nil {
			action()
		}
	} else {
		parent := &tb.nodes[(w-1)/2]
		parent.arrived[(w-1)%2].Store(next)
		for n.release.Load() != next {
			runtime.Gosched()
		}
	}
	for c := 0; c < 2; c++ {
		if child := 2*w + 1 + c; child < len(tb.nodes) {
			tb.nodes[child].release.Store(next)
		}
	}
	n.sense = next + 1
}
