package core

import (
	"strings"
	"testing"
)

// TestSingleVP checks the degenerate machine M(1): label 0 is allowed (the
// paper's log convention makes log 1 = 1) and self-messages are local.
func TestSingleVP(t *testing.T) {
	tr, err := Run(1, func(vp *VP[int]) {
		vp.Send(0, 42)
		vp.Sync(0)
		if got, ok := vp.Receive(); !ok || got != 42 {
			t.Errorf("self message: got (%v, %v), want (42, true)", got, ok)
		}
		vp.Sync(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumSupersteps() != 2 {
		t.Errorf("supersteps = %d, want 2", tr.NumSupersteps())
	}
	if tr.TotalMessages() != 1 {
		t.Errorf("messages = %d, want 1", tr.TotalMessages())
	}
}

// TestPairExchange verifies delivery, inbox ordering and degree recording
// for a two-VP exchange.
func TestPairExchange(t *testing.T) {
	tr, err := Run(2, func(vp *VP[string]) {
		other := 1 - vp.ID()
		vp.Send(other, "a")
		vp.Send(other, "b")
		vp.Sync(0)
		in := vp.Inbox()
		if len(in) != 2 {
			t.Errorf("VP %d inbox size %d, want 2", vp.ID(), len(in))
		}
		if in[0].Payload != "a" || in[1].Payload != "b" {
			t.Errorf("VP %d inbox out of order: %v", vp.ID(), in)
		}
		if in[0].Src != other {
			t.Errorf("VP %d: src = %d, want %d", vp.ID(), in[0].Src, other)
		}
		vp.Sync(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Steps[0].Degree[1]; got != 2 {
		t.Errorf("superstep 0 degree at fold 2: %d, want 2", got)
	}
	if got := tr.Steps[1].Degree[1]; got != 0 {
		t.Errorf("superstep 1 degree at fold 2: %d, want 0", got)
	}
}

// TestDeterministicInboxOrder checks the documented (src, send-order)
// delivery order with many senders.
func TestDeterministicInboxOrder(t *testing.T) {
	const v = 16
	_, err := Run(v, func(vp *VP[int]) {
		// Everyone sends two messages to VP 0.
		vp.Send(0, vp.ID()*10)
		vp.Send(0, vp.ID()*10+1)
		vp.Sync(0)
		if vp.ID() == 0 {
			in := vp.Inbox()
			if len(in) != 2*v {
				t.Errorf("inbox size %d, want %d", len(in), 2*v)
			}
			for k, msg := range in {
				want := (k/2)*10 + k%2
				if msg.Payload != want {
					t.Errorf("inbox[%d] = %d, want %d", k, msg.Payload, want)
				}
			}
		}
		vp.Sync(0)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestClusterConfinement: messages that escape the cluster of the
// terminating sync must abort the run.
func TestClusterConfinement(t *testing.T) {
	_, err := Run(4, func(vp *VP[int]) {
		if vp.ID() == 0 {
			vp.Send(2, 1) // VP 2 is outside VP 0's 1-cluster {0,1}
		}
		vp.Sync(1)
		vp.Sync(0)
	})
	if err == nil || !strings.Contains(err.Error(), "outside its 1-cluster") {
		t.Fatalf("want cluster-confinement error, got %v", err)
	}
}

// TestLabelSequenceEnforced: two clusters using different labels at the
// same superstep is a staticity violation and must be reported (either as
// a label mismatch or as a deadlock, depending on interleaving).
func TestLabelSequenceEnforced(t *testing.T) {
	_, err := Run(4, func(vp *VP[int]) {
		if vp.ID() < 2 {
			vp.Sync(1)
			vp.Sync(0)
		} else {
			vp.Sync(0) // wrong: needs all four VPs, others are at sync(1)
		}
	})
	if err == nil {
		t.Fatal("want error for mismatched label sequences, got nil")
	}
}

// TestUnevenSuperstepCounts: VPs that run different numbers of supersteps
// must be detected.
func TestUnevenSuperstepCounts(t *testing.T) {
	_, err := Run(4, func(vp *VP[int]) {
		vp.Sync(1)
		if vp.ID() < 2 {
			vp.Sync(1)
		}
	})
	if err == nil {
		t.Fatal("want error for uneven superstep counts, got nil")
	}
}

// TestMissingFinalSync: a VP terminating with staged messages is an error.
func TestMissingFinalSync(t *testing.T) {
	_, err := Run(2, func(vp *VP[int]) {
		vp.Sync(0)
		vp.Send(0, 7)
	})
	if err == nil || !strings.Contains(err.Error(), "staged messages") {
		t.Fatalf("want staged-messages error, got %v", err)
	}
}

// TestPanicPropagation: a panic in VP code surfaces as an error, not a
// crash or a hang.
func TestPanicPropagation(t *testing.T) {
	_, err := Run(4, func(vp *VP[int]) {
		if vp.ID() == 3 {
			panic("boom")
		}
		vp.Sync(0)
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("want panic error, got %v", err)
	}
}

// TestBadLabel: out-of-range sync labels abort.
func TestBadLabel(t *testing.T) {
	_, err := Run(4, func(vp *VP[int]) {
		vp.Sync(5)
	})
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("want label range error, got %v", err)
	}
}

// TestBadDst: out-of-range destinations abort.
func TestBadDst(t *testing.T) {
	_, err := Run(4, func(vp *VP[int]) {
		vp.Send(99, 0)
		vp.Sync(0)
	})
	if err == nil || !strings.Contains(err.Error(), "out-of-range") {
		t.Fatalf("want destination range error, got %v", err)
	}
}

// TestNonPowerOfTwo rejects invalid machine sizes.
func TestNonPowerOfTwo(t *testing.T) {
	if _, err := Run(3, func(vp *VP[int]) {}); err == nil {
		t.Fatal("want error for v=3")
	}
	if _, err := Run(0, func(vp *VP[int]) {}); err == nil {
		t.Fatal("want error for v=0")
	}
}

// TestIndependentClusters: clusters synchronizing at a deep label proceed
// independently; the global label sequence is still common.
func TestIndependentClusters(t *testing.T) {
	const v = 8
	tr, err := Run(v, func(vp *VP[int]) {
		// Three supersteps inside 2-clusters (pairs), then one global.
		for k := 0; k < 3; k++ {
			partner := vp.ID() ^ 1
			vp.Send(partner, k)
			vp.Sync(2)
			if got, ok := vp.Receive(); !ok || got != k {
				t.Errorf("VP %d superstep %d: got (%v,%v)", vp.ID(), k, got, ok)
			}
		}
		vp.Sync(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumSupersteps() != 4 {
		t.Fatalf("supersteps = %d, want 4", tr.NumSupersteps())
	}
	for k := 0; k < 3; k++ {
		rec := tr.Steps[k]
		if rec.Label != 2 {
			t.Errorf("superstep %d label = %d, want 2", k, rec.Label)
		}
		// Pair exchange: crossing only at the finest fold (j=3).
		if rec.Degree[3] != 1 {
			t.Errorf("superstep %d degree[8] = %d, want 1", k, rec.Degree[3])
		}
		if rec.Degree[2] != 0 || rec.Degree[1] != 0 {
			t.Errorf("superstep %d coarse degrees nonzero: %v", k, rec.Degree)
		}
	}
}

// TestDegreesAcrossFolds exercises the fold accounting with a precise
// hand-computed pattern.
func TestDegreesAcrossFolds(t *testing.T) {
	// v=8. VP 0 sends 3 messages to VP 7 (crosses every fold boundary);
	// VP 4 sends 1 message to VP 5 (crosses only fold 8); VP 2 sends one
	// to VP 3 and one to VP 0.
	tr, err := Run(8, func(vp *VP[int]) {
		switch vp.ID() {
		case 0:
			vp.Send(7, 1)
			vp.Send(7, 2)
			vp.Send(7, 3)
		case 4:
			vp.Send(5, 1)
		case 2:
			vp.Send(3, 1)
			vp.Send(0, 1)
		}
		vp.Sync(0)
		vp.Sync(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := tr.Steps[0]
	// Fold 2 (blocks {0..3},{4..7}): block 0 sends 3 (to 7), receives 0;
	// block 1 receives 3. Messages 2->3, 2->0, 4->5 are internal. h = 3.
	if rec.Degree[1] != 3 {
		t.Errorf("degree fold 2 = %d, want 3", rec.Degree[1])
	}
	// Fold 4 (blocks of 2): 0->7 crosses (block0 sends 3, block3 recv 3);
	// 2->0 crosses (block1 sends 1, block0 recv 1); 2->3, 4->5 internal.
	// h = max(3,1,...) = 3.
	if rec.Degree[2] != 3 {
		t.Errorf("degree fold 4 = %d, want 3", rec.Degree[2])
	}
	// Fold 8: per-VP: VP0 sends 3 recv 1; VP7 recv 3; VP4 sends 1; VP2
	// sends 2; VP3 recv 1; VP5 recv 1. h = 3.
	if rec.Degree[3] != 3 {
		t.Errorf("degree fold 8 = %d, want 3", rec.Degree[3])
	}
	if rec.Messages != 6 {
		t.Errorf("messages = %d, want 6", rec.Messages)
	}
}

// TestDummyMessagesCountedNotDelivered checks the wiseness-padding
// mechanism.
func TestDummyMessagesCountedNotDelivered(t *testing.T) {
	tr, err := Run(4, func(vp *VP[int]) {
		vp.SendDummy(vp.ID() ^ 2)
		vp.Sync(0)
		if len(vp.Inbox()) != 0 {
			t.Errorf("VP %d received a dummy message", vp.ID())
		}
		vp.Sync(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Steps[0].Messages != 4 {
		t.Errorf("messages = %d, want 4", tr.Steps[0].Messages)
	}
	// Fold 2: each block of two VPs sends (and receives) two crossing
	// messages, h=2; fold 4: one per VP, h=1.
	if tr.Steps[0].Degree[1] != 2 || tr.Steps[0].Degree[2] != 1 {
		t.Errorf("dummy degrees = %v, want [0 2 1]", tr.Steps[0].Degree)
	}
}

// TestRecordMessages checks the optional pair recording.
func TestRecordMessages(t *testing.T) {
	tr, err := RunOpt(4, func(vp *VP[int]) {
		vp.Send((vp.ID()+1)%4, 0)
		vp.Sync(0)
		vp.Sync(0)
	}, Options{RecordMessages: true})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Steps[0].Pairs.Len() != 4 {
		t.Fatalf("pairs = %v, want 4 entries", tr.Steps[0].Pairs.Pairs())
	}
	seen := map[[2]int32]bool{}
	for _, p := range tr.Steps[0].Pairs.Pairs() {
		seen[p] = true
	}
	for i := int32(0); i < 4; i++ {
		if !seen[[2]int32{i, (i + 1) % 4}] {
			t.Errorf("missing pair %d->%d", i, (i+1)%4)
		}
	}
}

// TestInboxDiscardedAtNextSync: messages not consumed are dropped at the
// following barrier (BSP semantics).
func TestInboxDiscardedAtNextSync(t *testing.T) {
	_, err := Run(2, func(vp *VP[int]) {
		vp.Send(1-vp.ID(), 9)
		vp.Sync(0)
		vp.Sync(0) // do not read
		if n := len(vp.Inbox()); n != 0 {
			t.Errorf("VP %d: stale inbox of size %d", vp.ID(), n)
		}
		vp.Sync(0)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSAndF checks the trace summary vectors on a structured run.
func TestSAndF(t *testing.T) {
	// v=8: one 0-superstep where everyone sends to their complement
	// (crosses all folds), two 1-supersteps of pair exchange within
	// 1-clusters, final sync(0).
	tr, err := Run(8, func(vp *VP[int]) {
		vp.Send(7-vp.ID(), 0)
		vp.Sync(0)
		for k := 0; k < 2; k++ {
			vp.Send(vp.ID()^1, 0)
			vp.Sync(1)
		}
		vp.Sync(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	s := tr.S()
	if s[0] != 2 || s[1] != 2 || s[2] != 0 {
		t.Errorf("S = %v, want [2 2 0]", s)
	}
	// F at fold p=2: only labels < 1 count, i.e. the 0-supersteps.
	f2 := tr.F(2)
	if len(f2) != 1 || f2[0] != 4 {
		t.Errorf("F(2) = %v, want [4]", f2)
	}
	// F at fold p=8: 0-superstep contributes degree 1 per VP; the pair
	// exchanges contribute 1 each at label 1.
	f8 := tr.F(8)
	if f8[0] != 1 || f8[1] != 2 || f8[2] != 0 {
		t.Errorf("F(8) = %v, want [1 2 0]", f8)
	}
}
