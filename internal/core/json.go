package core

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// traceDTO is the serialized form of a Trace.
type traceDTO struct {
	V     int       `json:"v"`
	LogV  int       `json:"log_v"`
	Steps []StepRec `json:"steps"`
}

// TraceJSONWriter is a TraceSink that encodes supersteps to the wire
// format incrementally, one record at a time, so serializing a trace
// never materializes more than a single superstep.  The bytes produced
// are identical to encoding a whole in-memory Trace at once — a
// streamed file and EncodeJSON agree byte for byte — because the writer
// emits exactly the header, per-element encoding and footer that
// encoding/json produces for traceDTO.
//
// A writer serializes one trace: a second BeginTrace is an error.  The
// caller owns the underlying io.Writer; EndTrace flushes but does not
// close it.
type TraceJSONWriter struct {
	// ReleasePairs returns each record's pooled pair chunks to the
	// chunk pool after encoding.  Enable it only when the writer owns
	// its records exclusively — a run's Options.Sink does, a retained
	// in-memory trace being archived does not.
	ReleasePairs bool

	bw        *bufio.Writer
	started   bool
	ended     bool
	wroteStep bool
	steps     int
}

// NewTraceJSONWriter returns a writer encoding to w.
func NewTraceJSONWriter(w io.Writer) *TraceJSONWriter {
	return &TraceJSONWriter{bw: bufio.NewWriter(w)}
}

// BeginTrace implements TraceSink: it emits the trace header.
func (jw *TraceJSONWriter) BeginTrace(v, logV int) error {
	if jw.started {
		return fmt.Errorf("core: trace writer: BeginTrace called twice; a codec writer serializes exactly one trace (one machine per run)")
	}
	jw.started = true
	var hdr []byte
	hdr = append(hdr, `{"v":`...)
	hdr = strconv.AppendInt(hdr, int64(v), 10)
	hdr = append(hdr, `,"log_v":`...)
	hdr = strconv.AppendInt(hdr, int64(logV), 10)
	hdr = append(hdr, `,"steps":`...)
	_, err := jw.bw.Write(hdr)
	return err
}

// WriteStep implements TraceSink: it appends one superstep record.
// Its output is part of the archived-trace format and must be
// byte-identical across runs of the same trace.
//
//nob:deterministic
func (jw *TraceJSONWriter) WriteStep(rec StepRec) error {
	if !jw.started || jw.ended {
		return fmt.Errorf("core: trace writer: WriteStep outside BeginTrace/EndTrace")
	}
	sep := byte(',')
	if !jw.wroteStep {
		sep = '['
		jw.wroteStep = true
	}
	if err := jw.bw.WriteByte(sep); err != nil {
		return err
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("core: encoding trace step %d: %w", jw.steps, err)
	}
	if _, err := jw.bw.Write(b); err != nil {
		return err
	}
	jw.steps++
	if jw.ReleasePairs {
		rec.Pairs.Release()
	}
	return nil
}

// EndTrace implements TraceSink.  On a successful run it emits the
// footer and flushes; on a failed run it leaves the output mid-stream —
// unterminated on purpose, so a truncated trace can never decode as a
// complete one — and the file sink wrapping it removes the partial file.
func (jw *TraceJSONWriter) EndTrace(runErr error) error {
	if jw.ended {
		return nil
	}
	jw.ended = true
	if runErr != nil {
		return nil
	}
	if !jw.started {
		return fmt.Errorf("core: trace writer: EndTrace without BeginTrace")
	}
	footer := "]}\n"
	if !jw.wroteStep {
		// encoding/json renders a nil Steps slice as null.
		footer = "null}\n"
	}
	if _, err := jw.bw.WriteString(footer); err != nil {
		return err
	}
	return jw.bw.Flush()
}

// Steps returns the number of records written so far.
func (jw *TraceJSONWriter) Steps() int { return jw.steps }

// EncodeJSON writes the trace as JSON, allowing runs to be archived and
// re-analyzed (folded, costed on new machines) without re-executing the
// algorithm.  It streams through TraceJSONWriter, so encoding buffers
// one superstep at a time rather than rendering the whole document.
//
//nob:deterministic
func (t *Trace) EncodeJSON(w io.Writer) error {
	jw := NewTraceJSONWriter(w)
	if err := jw.BeginTrace(t.V, t.LogV); err != nil {
		return err
	}
	for i := range t.Steps {
		if err := jw.WriteStep(t.Steps[i]); err != nil {
			return err
		}
	}
	return jw.EndTrace(nil)
}

// TraceJSONReader is a TraceSource over the JSON wire format: it
// decodes one superstep per Next, validating the same structural
// invariants DecodeJSON enforces, so analyses can consume trace files
// (or pipes) far larger than RAM.
type TraceJSONReader struct {
	dec        *json.Decoder
	v, logV    int
	labelBound int
	idx        int
	stepsNull  bool
	done       bool
	rec        StepRec
}

// NewTraceJSONReader parses the trace header from r and positions the
// reader at the first superstep.
func NewTraceJSONReader(r io.Reader) (*TraceJSONReader, error) {
	jr := &TraceJSONReader{dec: json.NewDecoder(r)}
	if err := jr.readHeader(); err != nil {
		return nil, err
	}
	return jr, nil
}

func (jr *TraceJSONReader) readHeader() error {
	fail := func(err error) error {
		return fmt.Errorf("core: decoding trace: %w", err)
	}
	tok, err := jr.dec.Token()
	if err != nil {
		return fail(err)
	}
	if d, ok := tok.(json.Delim); !ok || d != '{' {
		return fail(fmt.Errorf("expected object, got %v", tok))
	}
	var haveV, haveLogV bool
	for {
		tok, err := jr.dec.Token()
		if err != nil {
			return fail(err)
		}
		key, ok := tok.(string)
		if !ok {
			return fail(fmt.Errorf("expected object key, got %v", tok))
		}
		switch key {
		case "v":
			if err := jr.dec.Decode(&jr.v); err != nil {
				return fail(err)
			}
			haveV = true
		case "log_v":
			if err := jr.dec.Decode(&jr.logV); err != nil {
				return fail(err)
			}
			haveLogV = true
		case "steps":
			if !haveV || !haveLogV {
				return fail(fmt.Errorf(`"steps" precedes "v"/"log_v" in trace header`))
			}
			if jr.v < 1 || jr.v&(jr.v-1) != 0 {
				return fmt.Errorf("core: trace has invalid v=%d", jr.v)
			}
			if lv, lerr := TryLog2(jr.v); lerr != nil || jr.logV != lv {
				return fmt.Errorf("core: trace log_v=%d inconsistent with v=%d", jr.logV, jr.v)
			}
			jr.labelBound = jr.logV
			if jr.labelBound < 1 {
				jr.labelBound = 1
			}
			tok, err := jr.dec.Token()
			if err != nil {
				return fail(err)
			}
			switch d := tok.(type) {
			case json.Delim:
				if d != '[' {
					return fail(fmt.Errorf("expected steps array, got %v", tok))
				}
			case nil:
				jr.stepsNull = true
			default:
				return fail(fmt.Errorf("expected steps array, got %v", tok))
			}
			return nil
		default:
			return fail(fmt.Errorf("unexpected trace header key %q", key))
		}
	}
}

// V returns the machine width declared by the trace header, LogV its
// log.
func (jr *TraceJSONReader) V() int    { return jr.v }
func (jr *TraceJSONReader) LogV() int { return jr.logV }

// Next implements TraceSource.  The returned record is reused by the
// following Next call.
func (jr *TraceJSONReader) Next() (*StepRec, error) {
	if jr.done {
		return nil, io.EOF
	}
	if jr.stepsNull || !jr.dec.More() {
		jr.done = true
		if !jr.stepsNull {
			if tok, err := jr.dec.Token(); err != nil {
				return nil, fmt.Errorf("core: decoding trace: %w", err)
			} else if d, ok := tok.(json.Delim); !ok || d != ']' {
				return nil, fmt.Errorf("core: decoding trace: expected end of steps array, got %v", tok)
			}
		}
		if tok, err := jr.dec.Token(); err != nil {
			return nil, fmt.Errorf("core: decoding trace: %w", err)
		} else if d, ok := tok.(json.Delim); !ok || d != '}' {
			return nil, fmt.Errorf("core: decoding trace: expected end of trace object, got %v", tok)
		}
		return nil, io.EOF
	}
	jr.rec = StepRec{}
	if err := jr.dec.Decode(&jr.rec); err != nil {
		return nil, fmt.Errorf("core: decoding trace: %w", err)
	}
	if err := validateStep(&jr.rec, jr.idx, jr.logV, jr.labelBound); err != nil {
		return nil, err
	}
	jr.idx++
	return &jr.rec, nil
}

// Close implements TraceSource.  The reader does not own the underlying
// stream.
func (jr *TraceJSONReader) Close() error { return nil }

// validateStep checks the structural invariants of one decoded step,
// shared by both codec readers.
func validateStep(rec *StepRec, i, logV, labelBound int) error {
	if rec.Label < 0 || rec.Label >= labelBound {
		return fmt.Errorf("core: trace step %d has invalid label %d", i, rec.Label)
	}
	if len(rec.Degree) != logV+1 {
		return fmt.Errorf("core: trace step %d has %d degree entries, want %d", i, len(rec.Degree), logV+1)
	}
	for j, d := range rec.Degree {
		if d < 0 {
			return fmt.Errorf("core: trace step %d degree[%d] negative", i, j)
		}
		if j <= rec.Label && d != 0 {
			return fmt.Errorf("core: trace step %d has nonzero degree at fold %d <= label %d", i, j, rec.Label)
		}
	}
	return nil
}

// DecodeJSON reads a trace written by EncodeJSON and validates its
// structural invariants.
func DecodeJSON(r io.Reader) (*Trace, error) {
	var dto traceDTO
	dec := json.NewDecoder(r)
	if err := dec.Decode(&dto); err != nil {
		return nil, fmt.Errorf("core: decoding trace: %w", err)
	}
	if dto.V < 1 || dto.V&(dto.V-1) != 0 {
		return nil, fmt.Errorf("core: trace has invalid v=%d", dto.V)
	}
	if dto.LogV != Log2(dto.V) {
		return nil, fmt.Errorf("core: trace log_v=%d inconsistent with v=%d", dto.LogV, dto.V)
	}
	labelBound := dto.LogV
	if labelBound < 1 {
		labelBound = 1
	}
	for i := range dto.Steps {
		if err := validateStep(&dto.Steps[i], i, dto.LogV, labelBound); err != nil {
			return nil, err
		}
	}
	return &Trace{V: dto.V, LogV: dto.LogV, Steps: dto.Steps}, nil
}
