package core

import (
	"encoding/json"
	"fmt"
	"io"
)

// traceDTO is the serialized form of a Trace.
type traceDTO struct {
	V     int       `json:"v"`
	LogV  int       `json:"log_v"`
	Steps []StepRec `json:"steps"`
}

// stepDTO mirrors StepRec for encoding (kept implicit: StepRec's fields
// are exported and stable).

// EncodeJSON writes the trace as JSON, allowing runs to be archived and
// re-analyzed (folded, costed on new machines) without re-executing the
// algorithm.
func (t *Trace) EncodeJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(traceDTO{V: t.V, LogV: t.LogV, Steps: t.Steps})
}

// DecodeJSON reads a trace written by EncodeJSON and validates its
// structural invariants.
func DecodeJSON(r io.Reader) (*Trace, error) {
	var dto traceDTO
	dec := json.NewDecoder(r)
	if err := dec.Decode(&dto); err != nil {
		return nil, fmt.Errorf("core: decoding trace: %w", err)
	}
	if dto.V < 1 || dto.V&(dto.V-1) != 0 {
		return nil, fmt.Errorf("core: trace has invalid v=%d", dto.V)
	}
	if dto.LogV != Log2(dto.V) {
		return nil, fmt.Errorf("core: trace log_v=%d inconsistent with v=%d", dto.LogV, dto.V)
	}
	labelBound := dto.LogV
	if labelBound < 1 {
		labelBound = 1
	}
	for i := range dto.Steps {
		rec := &dto.Steps[i]
		if rec.Label < 0 || rec.Label >= labelBound {
			return nil, fmt.Errorf("core: trace step %d has invalid label %d", i, rec.Label)
		}
		if len(rec.Degree) != dto.LogV+1 {
			return nil, fmt.Errorf("core: trace step %d has %d degree entries, want %d", i, len(rec.Degree), dto.LogV+1)
		}
		for j, d := range rec.Degree {
			if d < 0 {
				return nil, fmt.Errorf("core: trace step %d degree[%d] negative", i, j)
			}
			if j <= rec.Label && d != 0 {
				return nil, fmt.Errorf("core: trace step %d has nonzero degree at fold %d <= label %d", i, j, rec.Label)
			}
		}
	}
	return &Trace{V: dto.V, LogV: dto.LogV, Steps: dto.Steps}, nil
}
