package core

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// replayTestProg is a small static program: a butterfly exchange at the
// deepest label, then a global exchange.
func replayTestProg(v int) Program[int] {
	return func(vp *VP[int]) {
		vp.Send(vp.ID()^1, vp.ID())
		vp.Sync(Log2(v) - 1)
		vp.Receive()
		vp.Send((vp.ID()+v/2)%v, vp.ID())
		vp.Sync(0)
		vp.Receive()
	}
}

func encodeTrace(t *testing.T, tr *Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCompileScheduleNeedsPairs rejects traces recorded without message
// pairs: there is nothing to route from.
func TestCompileScheduleNeedsPairs(t *testing.T) {
	tr, err := RunOpt(4, replayTestProg(4), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CompileSchedule(tr); err == nil {
		t.Fatal("CompileSchedule accepted a trace without recorded pairs")
	} else if !strings.Contains(err.Error(), "RecordMessages") {
		t.Errorf("error does not point at RecordMessages: %v", err)
	}
}

// TestReplayUnkeyedFallback: a zero-Key ReplayEngine has no identity to
// cache under, so it must execute the program directly every time and
// leave the schedule store untouched.
func TestReplayUnkeyedFallback(t *testing.T) {
	store := NewScheduleStore()
	var executions atomic.Int32
	prog := func(vp *VP[int]) {
		if vp.ID() == 0 {
			executions.Add(1)
		}
		vp.Send(vp.ID()^1, 1)
		vp.Sync(0)
		vp.Receive()
	}
	for i := 0; i < 3; i++ {
		if _, err := RunOpt(4, prog, Options{Engine: ReplayEngine{Store: store}}); err != nil {
			t.Fatal(err)
		}
	}
	if got := executions.Load(); got != 3 {
		t.Errorf("unkeyed replay executed the program %d times, want 3 (direct execution)", got)
	}
	if store.Len() != 0 {
		t.Errorf("unkeyed replay cached %d schedules, want 0", store.Len())
	}
}

// TestReplayKeyedColdWarm: the first keyed run records and compiles; the
// second skips the program body entirely and replays an identical trace.
func TestReplayKeyedColdWarm(t *testing.T) {
	const v = 8
	store := NewScheduleStore()
	var executions atomic.Int32
	prog := func(vp *VP[int]) {
		if vp.ID() == 0 {
			executions.Add(1)
		}
		replayTestProg(v)(vp)
	}
	eng := ReplayEngine{Key: TraceKey{Algorithm: "replay-test", N: v, Engine: "replay"}, Store: store}
	cold, err := RunOpt(v, prog, Options{RecordMessages: true, Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := RunOpt(v, prog, Options{RecordMessages: true, Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	if got := executions.Load(); got != 1 {
		t.Errorf("program executed %d times, want 1 (warm run must replay)", got)
	}
	if !bytes.Equal(encodeTrace(t, cold), encodeTrace(t, warm)) {
		t.Error("cold and warm traces differ")
	}
	if warm.TotalMessages() != cold.TotalMessages() || warm.TotalMessages() == 0 {
		t.Errorf("unexpected message totals: cold=%d warm=%d", cold.TotalMessages(), warm.TotalMessages())
	}
}

// TestReplaySeqDisambiguation: an algorithm run that invokes RunOpt
// several times gets one schedule per invocation — the per-run sequence
// counter must keep a v=1 probe's schedule from aliasing the real
// machine's.
func TestReplaySeqDisambiguation(t *testing.T) {
	store := NewScheduleStore()
	run := func() (*Trace, *Trace) {
		eng := KeyedReplay(ReplayEngine{Store: store}, "seq-test", 8)
		probe, err := RunOpt(1, func(vp *VP[int]) { vp.Sync(0) }, Options{Engine: eng})
		if err != nil {
			t.Fatal(err)
		}
		main, err := RunOpt(8, replayTestProg(8), Options{Engine: eng})
		if err != nil {
			t.Fatal(err)
		}
		return probe, main
	}
	p1, m1 := run()
	p2, m2 := run() // fresh KeyedReplay counter → same keys, warm hits
	if store.Len() != 2 {
		t.Errorf("store holds %d schedules, want 2 (one per RunOpt invocation)", store.Len())
	}
	if p1.V != 1 || m1.V != 8 {
		t.Fatalf("unexpected machine sizes: probe v=%d main v=%d", p1.V, m1.V)
	}
	if !bytes.Equal(encodeTrace(t, p1), encodeTrace(t, p2)) || !bytes.Equal(encodeTrace(t, m1), encodeTrace(t, m2)) {
		t.Error("second algorithm run replayed different traces")
	}
	if hits := store.Stats().Hits; hits == 0 {
		t.Error("second algorithm run missed the schedule cache")
	}
}

// TestReplayVMismatch: reusing one key at a different machine size is a
// staticness violation and must fail loudly, not replay the wrong
// schedule.
func TestReplayVMismatch(t *testing.T) {
	store := NewScheduleStore()
	eng := ReplayEngine{Key: TraceKey{Algorithm: "vmismatch", N: 8, Engine: "replay"}, Store: store}
	if _, err := RunOpt(8, replayTestProg(8), Options{Engine: eng}); err != nil {
		t.Fatal(err)
	}
	_, err := RunOpt(4, replayTestProg(4), Options{Engine: eng})
	if err == nil {
		t.Fatal("replay accepted one key at two machine sizes")
	}
	if !strings.Contains(err.Error(), "static") {
		t.Errorf("error does not explain the staticness requirement: %v", err)
	}
}

// TestReplayCompileThroughReplayRejected: a ReplayEngine must not be its
// own compile engine.
func TestReplayCompileThroughReplayRejected(t *testing.T) {
	eng := ReplayEngine{
		Key:     TraceKey{Algorithm: "self", N: 4, Engine: "replay"},
		Store:   NewScheduleStore(),
		Compile: ReplayEngine{},
	}
	if _, err := RunOpt(4, replayTestProg(4), Options{Engine: eng}); err == nil {
		t.Fatal("replay accepted another ReplayEngine as its compile engine")
	}
}

// TestReplayCancellationNotCached: a compile run killed by the caller's
// context must not poison the key — the next caller recompiles.
func TestReplayCancellationNotCached(t *testing.T) {
	store := NewScheduleStore()
	eng := ReplayEngine{Key: TraceKey{Algorithm: "cancel-test", N: 8, Engine: "replay"}, Store: store}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunOpt(8, replayTestProg(8), Options{Engine: eng, Context: ctx}); err == nil {
		t.Fatal("run with a cancelled context succeeded")
	}
	tr, err := RunOpt(8, replayTestProg(8), Options{Engine: eng})
	if err != nil {
		t.Fatalf("cancellation stayed memoized: %v", err)
	}
	if tr.TotalMessages() == 0 {
		t.Error("recompiled schedule lost its messages")
	}
}

// TestReplayConcurrentSingleFlight hammers one cold key from many
// goroutines: the program must compile exactly once and every caller
// must get the identical trace.  Run under -race this also exercises the
// schedule-cache paths for data races.
func TestReplayConcurrentSingleFlight(t *testing.T) {
	const v = 16
	store := NewScheduleStore()
	var executions atomic.Int32
	prog := func(vp *VP[int]) {
		if vp.ID() == 0 {
			executions.Add(1)
		}
		replayTestProg(v)(vp)
	}
	eng := ReplayEngine{Key: TraceKey{Algorithm: "flight-test", N: v, Engine: "replay"}, Store: store}
	const callers = 8
	traces := make([]*Trace, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			traces[i], errs[i] = RunOpt(v, prog, Options{RecordMessages: true, Engine: eng})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	if got := executions.Load(); got != 1 {
		t.Errorf("program compiled %d times under contention, want 1 (single flight)", got)
	}
	want := encodeTrace(t, traces[0])
	for i := 1; i < callers; i++ {
		if !bytes.Equal(want, encodeTrace(t, traces[i])) {
			t.Errorf("caller %d replayed a different trace", i)
		}
	}
}

// TestWarmReplayAllocs enforces the replay allocation budget: a warm
// keyed run may allocate only the returned Trace (struct, step slice,
// one degree backing array) plus the store key — at most 10 allocations,
// independent of message volume.
func TestWarmReplayAllocs(t *testing.T) {
	const v = 1 << 10
	store := NewScheduleStore()
	eng := ReplayEngine{Key: TraceKey{Algorithm: "alloc-test", N: v, Engine: "replay"}, Store: store}
	prog := replayTestProg(v)
	if _, err := RunOpt(v, prog, Options{Engine: eng}); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := RunOpt(v, prog, Options{Engine: eng}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 10 {
		t.Errorf("warm replay allocates %.0f objects per run, budget is 10", allocs)
	}
}

// TestWarmReplaySpeedup is the performance regression gate for the
// engine: on a large machine the warm replay path must beat the
// BlockEngine by at least 3x on the standard superstep workload.
// (Measured headroom is >50x; 3x keeps the gate robust on loaded CI
// machines.)
func TestWarmReplaySpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	const v = 1 << 14
	workload := func(eng Engine) {
		logV := Log2(v)
		labels := []int{logV - 1, 2, 0}
		_, err := RunOpt(v, func(vp *VP[int64]) {
			var acc int64
			for _, lab := range labels {
				partner := vp.ID() ^ (v >> uint(lab+1))
				vp.Send(partner, int64(vp.ID())+acc)
				vp.Sync(lab)
				if m, ok := vp.Receive(); ok {
					acc += m
				}
			}
			vp.Sync(0)
		}, Options{Engine: eng})
		if err != nil {
			t.Fatal(err)
		}
	}
	replay := ReplayEngine{
		Key:   TraceKey{Algorithm: "speedup-test", N: v, Engine: "replay"},
		Store: NewScheduleStore(),
	}
	workload(replay) // cold: record, compile, cache
	measure := func(eng Engine, reps int) time.Duration {
		best := time.Duration(-1)
		for r := 0; r < reps; r++ {
			start := time.Now()
			workload(eng)
			if d := time.Since(start); best < 0 || d < best {
				best = d
			}
		}
		return best
	}
	block := measure(BlockEngine{}, 3)
	warm := measure(replay, 10)
	if warm <= 0 {
		warm = time.Nanosecond
	}
	if speedup := float64(block) / float64(warm); speedup < 3 {
		t.Errorf("warm replay speedup %.1fx over BlockEngine at v=%d, want >= 3x (block=%v replay=%v)",
			speedup, v, block, warm)
	}
}
