// Package core implements the specification model M(v) of the
// network-oblivious framework of Bilardi, Pietracaprina, Pucci, Scquizzato
// and Silvestri ("Network-Oblivious Algorithms", J.ACM 63(1), 2016;
// preliminary version in IPDPS 2007).
//
// An M(v) machine consists of v processing elements (virtual processors,
// VPs), each with unbounded local memory, communicating in labeled
// supersteps.  A VP executes ordinary Go code plus three primitives:
//
//   - Send(dst, payload): stage a constant-size message for VP dst;
//   - Receive() / Inbox(): read the messages delivered at the last barrier;
//   - Sync(i): barrier-synchronize the i-cluster (the v/2^i VPs whose
//     indices share the i most significant bits with the caller) and
//     deliver the messages staged during the superstep.
//
// A superstep terminated by Sync(i) is an i-superstep; during it a VP may
// only send messages to VPs in its own i-cluster.  The runtime enforces
// the two restrictions the paper places on the algorithm class:
//
//   - all VPs execute the same sequence of superstep labels (staticity of
//     the label trace), and
//   - every message stays inside the cluster of the terminating sync.
//
// Violations abort the run with a descriptive error.
//
// While the algorithm runs, the machine records a Trace: for every
// superstep s and every folding of M(v) onto M(2^j) (the paper's mechanism
// for executing an algorithm on fewer processors, with VP blocks of size
// v/2^j mapped to each processor), the degree h_s(n, 2^j) of the h-relation
// the superstep induces.  All the metrics of the framework — communication
// complexity H(n,p,σ) on the evaluation model M(p,σ), communication time
// D(n,p,g,ℓ) on the execution model D-BSP(p,g,ℓ), wiseness α (Def. 3.2)
// and fullness γ (Def. 5.2) — are exact functions of the Trace and are
// computed by the companion packages internal/eval and internal/dbsp.
//
// # Execution engines
//
// How the v virtual processors are scheduled on the host is pluggable
// through the Engine interface; three engines are provided:
//
//   - GoroutineEngine — the reference: one goroutine per VP, parked on
//     per-cluster condition-variable barriers.  Sync parks the goroutine
//     on the barrier of its cluster, so different clusters may proceed
//     through their (identical) label sequences at different speeds,
//     exactly as the model allows.  Wakeups broadcast to whole clusters
//     and every barrier completion serializes on the trace mutex, so
//     scheduler churn dominates beyond a few thousand VPs.
//
//   - BlockEngine (the default) — W workers (a power of two, by default
//     the largest not exceeding GOMAXPROCS) each own a contiguous block
//     of v/W VPs, the same folding the paper uses to execute M(v) on a
//     p-processor machine.  VPs are coroutines (iter.Pull) resumed by
//     their worker through direct stack switches — no scheduler, no
//     locks — and recycled through a process-wide cache across runs;
//     workers meet at a sense-reversing tree barrier once per superstep;
//     messages route through per-worker destination-bucketed outboxes
//     (bulk appends, no per-message locking); and h-relation counters
//     accumulate in per-worker partitions merged once per barrier,
//     keeping the trace mutex off the hot path.  All clusters advance
//     superstep-synchronously.
//
//   - ReplayEngine — the schedule cache, built on the paper's central
//     determinism fact: a static algorithm's communication at a fixed
//     input size is a pure function of that size.  The first run for a
//     key (algorithm, n) executes once, instrumented, on the Compile
//     engine and compiles the recorded trace into a Schedule — per
//     superstep, the label, the fold-degree vector and a
//     destination-bucketed CSR routing table sorted by (destination,
//     source) so the compiled form is canonical.  Every later run
//     replays the schedule as pure data movement through a pooled
//     arena: no goroutine per VP, no barriers, no Trace.mu contention,
//     and a constant handful of allocations regardless of message
//     volume (the trace itself plus the store key; the budget is
//     enforced by TestWarmReplayAllocs).  Warm replays skip the program
//     body entirely, so only the trace — not payload side effects — is
//     produced; the alg registry keys every registered algorithm
//     automatically (KeyedReplay), and an unkeyed ReplayEngine degrades
//     to direct execution on its Compile engine.
//
// Compiled schedules live in a ScheduleStore — a bounded single-flight
// LRU keyed like the trace store, one shared process-wide instance
// (SharedScheduleStore) by default.  Cancellation during a compile run
// is never memoized: the next caller recompiles.
//
// # Streaming traces
//
// By default a run accumulates its whole Trace in memory.  For input
// sizes whose trace exceeds RAM, Options.Sink streams it instead: every
// engine hands each completed StepRec to the TraceSink at the barrier
// that completes it and retains nothing, so the run's peak trace
// footprint is the largest superstep, not the total.  The sink side of
// the pipeline:
//
//   - TraceSink implementations: an accumulating *Trace (the in-memory
//     default expressed as a sink), DiscardSink (measurement), the
//     codec writers TraceJSONWriter and TraceBinaryWriter, and
//     TraceFileSink (atomic tmp-and-rename file output in either
//     format, discarding partial output when the run fails);
//   - the streamed JSON is byte-identical to Trace.EncodeJSON of the
//     same run, so stored traces are indistinguishable from in-memory
//     encodes; the binary format ("NOBTRC01") is the compact spill
//     representation reusing the schedule's flat column layout;
//   - TraceSource is the reading half — Trace.Source, NewTraceSource
//     (format-sniffing stream reader), OpenTraceFile — over which the
//     single-pass consumers run: Summarize folds a source into a
//     FoldSummary, the O(log²v) accumulator from which H(n,p,σ),
//     wiseness, fullness and the D-BSP communication time are computed
//     without materializing the trace (eval.MeasureSummary,
//     dbsp.CommTimeSummary), and the cache simulator's single-pass
//     sweep (cachesim.CurveSim) consumes records the same way;
//   - released pair records recycle their chunk storage through an
//     internal pool, so a streaming recorded run reaches a steady state
//     with near-zero pair allocation.
//
// Sinks see BeginTrace exactly once, WriteStep per superstep in order,
// and EndTrace exactly once with the run's error — see the TraceSink
// contract for ownership rules.
//
// # Determinism guarantees
//
// Engines differ only in scheduling cost, never in observable semantics.
// For every valid program, on every engine, at every worker count:
//
//   - message delivery is deterministic — the messages a VP finds in its
//     inbox are ordered by (source VP, send order);
//   - the recorded Trace is identical: Steps, Labels, Degrees at every
//     fold, and Messages match entry for entry (StepRec.Pairs is
//     order-free on every engine; its multiset is identical);
//   - invalid programs (cluster-escaping messages, divergent label
//     sequences, uneven superstep counts, panics) are reported as errors
//     on every engine, never hangs — the engines may detect a violation
//     at different points, so only the error class is portable.
//
// The cross-engine equivalence tests (core and harness packages) enforce
// all three properties on every algorithm in the repository.
//
// # Probe contract
//
// Options.Probe attaches an obs.Probe to a run; the engines report into
// it and `nobl prof` exports the result as a Chrome trace-event timeline.
// Every engine honours the same contract:
//
//   - Per-superstep spans.  Each executed superstep s emits exactly one
//     duration span named "superstep s" in category "engine", covering
//     the wall time from the completion of the previous superstep (or
//     the run start) to the barrier completing s, with args carrying the
//     sync label and message total; non-replay engines add fold_ops, the
//     messages × fold-levels upper bound on degree-counter updates the
//     step induced, and replay spans mark themselves replayed=true and
//     cover the step's data-movement time.  TestProbeSpansPerSuperstep
//     enforces one span per superstep on every engine, in both in-memory
//     and streaming (Sink) modes.
//
//   - Barrier-wait visibility.  The BlockEngine additionally emits one
//     "barrier_wait_ns" counter sample per superstep with a series per
//     worker: the nanoseconds that worker spent inside the tree barrier
//     since the previous sample (worker 0's figure includes the barrier
//     actions it runs; a worker's wait at the sampling barrier itself is
//     attributed to the next sample).
//
//   - Compile spans.  A keyed ReplayEngine's cold run wraps its
//     instrumented compile in a "schedule-compile" span (category
//     "compiler") and threads the probe into the compile engine, so the
//     cold timeline shows the compile run's supersteps; warm replays
//     emit no compile span.
//
//   - The nil-probe guarantee.  A nil Probe (the zero Options) leaves
//     every hot path untouched beyond a pointer check: no allocation,
//     no clock read, no map construction.  TestNilProbeAllocParity
//     asserts allocation parity with an un-probed run and CI gates the
//     block-engine ns/op ratio (BENCH_obs.json) at 3%.
//
// Custom engines are not possible (the Engine interface is sealed), so
// the contract doubles as the exhaustive list of span sources in core.
//
// # Enforced invariants (static analysis)
//
// The prose contracts above are machine-checked: internal/lint defines
// six analyzers, cmd/noblint runs them over the module, and CI fails on
// any diagnostic.  The mapping from invariant to analyzer:
//
//	invariant                                          analyzer   annotation
//	-------------------------------------------------  ---------  ------------------
//	deterministic outputs (CompileSchedule, codec       maporder   //nob:deterministic
//	  writers, Route*, /metrics and Chrome-trace
//	  renderers) never iterate a map unsorted
//	every exported *obs.Probe method begins with a      nilprobe   //nob:nilsafe
//	  nil-receiver guard (the nil-probe guarantee)
//	engine superstep loops and job-queue workers        ctxflow    //nob:ctxloop
//	  consult the run context in every blocking loop
//	a StepRec handed to TraceSink.WriteStep is not      sinkown    (none: inferred
//	  reused by the caller (ownership transfer)                     from signatures)
//	alg.Register/MustRegister only called from init()   reginit    (none: inferred
//	  in register.go files                                          from call sites)
//	annotated hot paths stay allocation-free: no fmt,   hotalloc   //nob:hotpath
//	  interface boxing, escaping closures, or
//	  unhinted append growth in loops
//
// Suppressions take the form `//nolint:<analyzer> // reason` on (or
// immediately above) the flagged line; see the README's "Static
// analysis" section and the package documentation of internal/lint.
package core
