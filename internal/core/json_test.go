package core

import (
	"bytes"
	"strings"
	"testing"
)

// TestJSONRoundTrip: a real trace survives encode/decode with identical
// metrics.
func TestJSONRoundTrip(t *testing.T) {
	tr, err := Run(8, func(vp *VP[int]) {
		vp.Send(7-vp.ID(), 1)
		vp.Sync(0)
		vp.Send(vp.ID()^1, 2)
		vp.Sync(2)
		vp.Sync(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.V != tr.V || got.NumSupersteps() != tr.NumSupersteps() {
		t.Fatalf("round trip mutated shape: %+v vs %+v", got, tr)
	}
	for p := 2; p <= 8; p *= 2 {
		a, b := tr.F(p), got.F(p)
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("F(%d)[%d] = %d after round trip, want %d", p, i, b[i], a[i])
			}
		}
	}
	sa, sb := tr.S(), got.S()
	for i := range sa {
		if sa[i] != sb[i] {
			t.Errorf("S[%d] mutated: %d vs %d", i, sb[i], sa[i])
		}
	}
}

// TestDecodeJSONRejectsCorruptTraces covers the validation paths.
func TestDecodeJSONRejectsCorruptTraces(t *testing.T) {
	cases := map[string]string{
		"bad json":        `{`,
		"bad v":           `{"v":3,"log_v":2,"steps":[]}`,
		"bad log_v":       `{"v":4,"log_v":3,"steps":[]}`,
		"bad label":       `{"v":4,"log_v":2,"steps":[{"Label":5,"Degree":[0,0,0],"Messages":0}]}`,
		"bad degree len":  `{"v":4,"log_v":2,"steps":[{"Label":0,"Degree":[0],"Messages":0}]}`,
		"negative degree": `{"v":4,"log_v":2,"steps":[{"Label":0,"Degree":[0,-1,0],"Messages":0}]}`,
		"local degree":    `{"v":4,"log_v":2,"steps":[{"Label":1,"Degree":[0,2,0],"Messages":0}]}`,
	}
	for name, payload := range cases {
		if _, err := DecodeJSON(strings.NewReader(payload)); err == nil {
			t.Errorf("%s: decode should fail", name)
		}
	}
}

// TestDecodeJSONAcceptsSingleVP: the degenerate machine round-trips.
func TestDecodeJSONAcceptsSingleVP(t *testing.T) {
	tr, err := Run(1, func(vp *VP[int]) { vp.Sync(0) })
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
}
