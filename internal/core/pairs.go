package core

import (
	"encoding/json"
	"fmt"
	"iter"
)

// pairChunkLen is the pair capacity of one PairList chunk: 4096 pairs =
// two 16 KiB columns.  Growth beyond a chunk allocates a fresh chunk and
// never copies recorded pairs, so a message-heavy superstep costs one
// small allocation per 4096 messages instead of the repeated re-grow
// (and transient memory doubling) of a single flat slice.
const pairChunkLen = 4096

// pairChunk is one columnar segment of a PairList: parallel source and
// destination columns of equal length.
type pairChunk struct {
	src, dst []int32
}

// PairList is the chunked, columnar record of a superstep's message
// (src, dst) pairs.  Chunks are append-only and immutable once a run
// completes, which lets consumers — the trace store, the replay engine's
// compiled schedules — share one list across traces without copying.
//
// The JSON form is the flat [[src, dst], ...] array the pre-columnar
// trace format used, so archived traces decode unchanged.
type PairList struct {
	chunks []pairChunk
	n      int
}

// NewPairList returns an empty list.  hint, when positive, pre-sizes the
// first chunk for hint pairs (clipped to the chunk capacity) so callers
// that know a superstep's message count — the engines do — avoid every
// intermediate growth step.
func NewPairList(hint int) *PairList {
	p := &PairList{}
	if hint > 0 {
		if hint > pairChunkLen {
			hint = pairChunkLen
		}
		p.chunks = []pairChunk{{src: make([]int32, 0, hint), dst: make([]int32, 0, hint)}}
	}
	return p
}

// pairListOver wraps existing parallel columns as a single-chunk list
// without copying.  The caller must treat the columns as immutable
// afterwards; the replay engine uses this to share one compiled column
// pair across every replayed trace.
func pairListOver(src, dst []int32) *PairList {
	if len(src) != len(dst) {
		panic("core: pairListOver: column lengths differ")
	}
	if len(src) == 0 {
		return &PairList{}
	}
	return &PairList{chunks: []pairChunk{{src: src, dst: dst}}, n: len(src)}
}

// Len returns the number of recorded pairs.  A nil list is empty.
func (p *PairList) Len() int {
	if p == nil {
		return 0
	}
	return p.n
}

// Append records one (src, dst) pair.
func (p *PairList) Append(src, dst int32) {
	if len(p.chunks) == 0 || len(p.chunks[len(p.chunks)-1].src) == cap(p.chunks[len(p.chunks)-1].src) {
		p.chunks = append(p.chunks, pairChunk{
			src: make([]int32, 0, pairChunkLen),
			dst: make([]int32, 0, pairChunkLen),
		})
	}
	c := &p.chunks[len(p.chunks)-1]
	c.src = append(c.src, src)
	c.dst = append(c.dst, dst)
	p.n++
}

// Splice moves every chunk of other into p without copying a single
// pair.  other is emptied: ownership of its chunks transfers to p.  This
// is how the engines hand a superstep's per-worker shards to the trace —
// an O(chunks) pointer move inside the trace lock instead of an
// O(messages) copy.
func (p *PairList) Splice(other *PairList) {
	if other == nil || other.n == 0 {
		return
	}
	p.chunks = append(p.chunks, other.chunks...)
	p.n += other.n
	other.chunks = nil
	other.n = 0
}

// All iterates the pairs in append order (across spliced shards, shard
// order).  No order is guaranteed between runs — pairs are a multiset;
// see the Trace documentation.
func (p *PairList) All() iter.Seq2[int32, int32] {
	return func(yield func(int32, int32) bool) {
		if p == nil {
			return
		}
		for _, c := range p.chunks {
			for i := range c.src {
				if !yield(c.src[i], c.dst[i]) {
					return
				}
			}
		}
	}
}

// Pairs materializes the list as a flat [][2]int32, in iteration order.
// Intended for tests and one-shot analyses; hot paths should iterate All.
func (p *PairList) Pairs() [][2]int32 {
	if p.Len() == 0 {
		return nil
	}
	out := make([][2]int32, 0, p.n)
	for src, dst := range p.All() {
		out = append(out, [2]int32{src, dst})
	}
	return out
}

// PairListOf builds a list from a flat pair slice (the inverse of Pairs).
func PairListOf(pairs [][2]int32) *PairList {
	p := NewPairList(len(pairs))
	for _, pr := range pairs {
		p.Append(pr[0], pr[1])
	}
	return p
}

// MarshalJSON renders the list in the stable flat wire format
// [[src, dst], ...] regardless of the chunk layout.
func (p *PairList) MarshalJSON() ([]byte, error) {
	if p.Len() == 0 {
		return []byte("[]"), nil
	}
	// Hand-rolled encoding: a trace at large n carries millions of pairs
	// and fmt/reflect dominate the generic path.
	buf := make([]byte, 0, p.n*8)
	buf = append(buf, '[')
	first := true
	for src, dst := range p.All() {
		if !first {
			buf = append(buf, ',')
		}
		first = false
		buf = append(buf, '[')
		buf = appendInt32(buf, src)
		buf = append(buf, ',')
		buf = appendInt32(buf, dst)
		buf = append(buf, ']')
	}
	buf = append(buf, ']')
	return buf, nil
}

// appendInt32 appends the decimal form of v.
func appendInt32(buf []byte, v int32) []byte {
	if v < 0 {
		buf = append(buf, '-')
		v = -v
	}
	var tmp [11]byte
	i := len(tmp)
	for {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	return append(buf, tmp[i:]...)
}

// UnmarshalJSON decodes the flat wire format back into chunks.
func (p *PairList) UnmarshalJSON(data []byte) error {
	var flat [][2]int32
	if err := json.Unmarshal(data, &flat); err != nil {
		return fmt.Errorf("core: decoding pair list: %w", err)
	}
	*p = PairList{}
	for _, pr := range flat {
		p.Append(pr[0], pr[1])
	}
	return nil
}
