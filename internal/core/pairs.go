package core

import (
	"encoding/json"
	"fmt"
	"iter"
	"slices"
	"sync"
)

// pairChunkLen is the pair capacity of one PairList chunk: 4096 pairs =
// two 16 KiB columns.  Growth beyond a chunk allocates a fresh chunk and
// never copies recorded pairs, so a message-heavy superstep costs one
// small allocation per 4096 messages instead of the repeated re-grow
// (and transient memory doubling) of a single flat slice.
const pairChunkLen = 4096

// pairChunk is one columnar segment of a PairList: parallel source and
// destination columns of equal length.  pooled marks chunks obtained
// from pairChunkPool: only those are ever returned to it by Release,
// which keeps foreign columns — the replay engine's shared compiled
// columns wrapped by pairListOver, or undersized hint chunks — out of
// the pool no matter how lists are spliced together.
type pairChunk struct {
	src, dst []int32
	pooled   bool
}

// pairChunkPool recycles full-size chunks so a streaming run — where a
// sink consumes and Releases each superstep's pairs at the barrier —
// stops allocating two fresh 16 KiB columns per 4096 messages per
// superstep.  Non-streaming runs retain their traces, never Release,
// and simply bypass the pool's benefit.
var pairChunkPool = sync.Pool{New: func() any {
	return &pairChunk{
		src:    make([]int32, 0, pairChunkLen),
		dst:    make([]int32, 0, pairChunkLen),
		pooled: true,
	}
}}

// PairList is the chunked, columnar record of a superstep's message
// (src, dst) pairs.  Chunks are append-only and immutable once a run
// completes, which lets consumers — the trace store, the replay engine's
// compiled schedules — share one list across traces without copying.
//
// The JSON form is the flat [[src, dst], ...] array the pre-columnar
// trace format used, so archived traces decode unchanged.
type PairList struct {
	chunks []*pairChunk
	n      int
}

// NewPairList returns an empty list.  hint, when positive, pre-sizes the
// first chunk for hint pairs (clipped to the chunk capacity) so callers
// that know a superstep's message count — the engines do — avoid every
// intermediate growth step.  A hint of at least a full chunk draws from
// the chunk pool.
func NewPairList(hint int) *PairList {
	p := &PairList{}
	if hint > 0 {
		p.chunks = append(p.chunks, newPairChunk(hint))
	}
	return p
}

// newPairChunk returns an empty chunk with room for hint pairs: pooled
// full-size chunks for hint >= pairChunkLen (or unknown hints <= 0), a
// private right-sized allocation below that.
func newPairChunk(hint int) *pairChunk {
	if hint <= 0 || hint >= pairChunkLen {
		return pairChunkPool.Get().(*pairChunk)
	}
	return &pairChunk{src: make([]int32, 0, hint), dst: make([]int32, 0, hint)}
}

// Release returns the list's pooled chunks to the chunk pool and empties
// the list.  Call it only when the pairs are provably dead — a trace
// sink that has finished encoding a superstep it owns.  Chunks that did
// not come from the pool (replay-shared columns, undersized hint chunks)
// are left for the garbage collector.  Releasing a nil or empty list is
// a no-op; releasing the same pairs twice is a caller bug that corrupts
// the pool, which is why only the codec sinks ever call this.
func (p *PairList) Release() {
	if p == nil {
		return
	}
	for i, c := range p.chunks {
		if c.pooled {
			c.src = c.src[:0]
			c.dst = c.dst[:0]
			pairChunkPool.Put(c)
		}
		p.chunks[i] = nil
	}
	p.chunks = nil
	p.n = 0
}

// pairListOver wraps existing parallel columns as a single-chunk list
// without copying.  The caller must treat the columns as immutable
// afterwards; the replay engine uses this to share one compiled column
// pair across every replayed trace.
func pairListOver(src, dst []int32) *PairList {
	if len(src) != len(dst) {
		panic("core: pairListOver: column lengths differ")
	}
	if len(src) == 0 {
		return &PairList{}
	}
	return &PairList{chunks: []*pairChunk{{src: src, dst: dst}}, n: len(src)}
}

// alias returns a fresh list header over the same chunks, for handing
// shared immutable pairs to a consumer that owns (and may Release) its
// records: releasing the alias leaves the original list untouched, and
// its foreign chunks are never pooled.  The streaming replay path uses
// this to share one compiled column pair with every sink.
func (p *PairList) alias() *PairList {
	if p.Len() == 0 {
		return &PairList{}
	}
	return &PairList{chunks: slices.Clone(p.chunks), n: p.n}
}

// Len returns the number of recorded pairs.  A nil list is empty.
func (p *PairList) Len() int {
	if p == nil {
		return 0
	}
	return p.n
}

// Append records one (src, dst) pair.
func (p *PairList) Append(src, dst int32) {
	if len(p.chunks) == 0 || len(p.chunks[len(p.chunks)-1].src) == cap(p.chunks[len(p.chunks)-1].src) {
		p.chunks = append(p.chunks, newPairChunk(0))
	}
	c := p.chunks[len(p.chunks)-1]
	c.src = append(c.src, src)
	c.dst = append(c.dst, dst)
	p.n++
}

// Splice moves every chunk of other into p without copying a single
// pair.  other is emptied: ownership of its chunks transfers to p.  This
// is how the engines hand a superstep's per-worker shards to the trace —
// an O(chunks) pointer move inside the trace lock instead of an
// O(messages) copy.
func (p *PairList) Splice(other *PairList) {
	if other == nil || other.n == 0 {
		return
	}
	p.chunks = append(p.chunks, other.chunks...)
	p.n += other.n
	other.chunks = nil
	other.n = 0
}

// All iterates the pairs in append order (across spliced shards, shard
// order).  No order is guaranteed between runs — pairs are a multiset;
// see the Trace documentation.
func (p *PairList) All() iter.Seq2[int32, int32] {
	return func(yield func(int32, int32) bool) {
		if p == nil {
			return
		}
		for _, c := range p.chunks {
			for i := range c.src {
				if !yield(c.src[i], c.dst[i]) {
					return
				}
			}
		}
	}
}

// Pairs materializes the list as a flat [][2]int32, in iteration order.
// Intended for tests and one-shot analyses; hot paths should iterate All.
func (p *PairList) Pairs() [][2]int32 {
	if p.Len() == 0 {
		return nil
	}
	out := make([][2]int32, 0, p.n)
	for src, dst := range p.All() {
		out = append(out, [2]int32{src, dst})
	}
	return out
}

// PairListOf builds a list from a flat pair slice (the inverse of Pairs).
func PairListOf(pairs [][2]int32) *PairList {
	p := NewPairList(len(pairs))
	for _, pr := range pairs {
		p.Append(pr[0], pr[1])
	}
	return p
}

// MarshalJSON renders the list in the stable flat wire format
// [[src, dst], ...] regardless of the chunk layout.
func (p *PairList) MarshalJSON() ([]byte, error) {
	if p.Len() == 0 {
		return []byte("[]"), nil
	}
	// Hand-rolled encoding: a trace at large n carries millions of pairs
	// and fmt/reflect dominate the generic path.
	buf := make([]byte, 0, p.n*8)
	buf = append(buf, '[')
	first := true
	for src, dst := range p.All() {
		if !first {
			buf = append(buf, ',')
		}
		first = false
		buf = append(buf, '[')
		buf = appendInt32(buf, src)
		buf = append(buf, ',')
		buf = appendInt32(buf, dst)
		buf = append(buf, ']')
	}
	buf = append(buf, ']')
	return buf, nil
}

// appendInt32 appends the decimal form of v.
func appendInt32(buf []byte, v int32) []byte {
	if v < 0 {
		buf = append(buf, '-')
		v = -v
	}
	var tmp [11]byte
	i := len(tmp)
	for {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	return append(buf, tmp[i:]...)
}

// UnmarshalJSON decodes the flat wire format back into chunks.
func (p *PairList) UnmarshalJSON(data []byte) error {
	var flat [][2]int32
	if err := json.Unmarshal(data, &flat); err != nil {
		return fmt.Errorf("core: decoding pair list: %w", err)
	}
	*p = PairList{}
	for _, pr := range flat {
		p.Append(pr[0], pr[1])
	}
	return nil
}
