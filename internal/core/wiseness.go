package core

// WisenessDummies implements the paper's dummy-message trick (Section 4.1):
// in a label-superstep, every VP j with j < v/2^{label+1} sends count dummy
// messages to VP j + v/2^{label+1}.  The dummies guarantee that at least
// one (label+1)-cluster boundary carries degree-count traffic, making the
// enclosing algorithm (Θ(1), v)-wise without affecting its asymptotic
// communication complexity or its output.
//
// Call it once per superstep, before the terminating Sync.
func WisenessDummies[P any](vp *VP[P], label, count int) {
	v := vp.V()
	if v < 2 {
		return
	}
	half := v >> uint(label+1)
	if half == 0 || vp.ID() >= half {
		return
	}
	for k := 0; k < count; k++ {
		vp.SendDummy(vp.ID() + half)
	}
}
