package core

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"netoblivious/internal/obs"
)

// StepRec holds the communication metrics of a single superstep, recorded
// once per run and valid for every folding of the algorithm.
type StepRec struct {
	// Label is the label of the sync terminating the superstep: the
	// superstep is a Label-superstep and its messages stay within
	// Label-clusters.
	Label int

	// Degree[j], for 1 <= j <= log2(v), is h_s(n, 2^j): the degree of the
	// h-relation this superstep induces when the algorithm is folded onto
	// a machine with 2^j processors (each processor simulating a block of
	// v/2^j consecutively numbered VPs).  Only messages crossing a block
	// boundary count; the degree of a block is max(messages sent,
	// messages received).  Degree[0] is always 0 (a single processor
	// exchanges no messages).  For j <= Label the entry is 0 because an
	// i-superstep is local on machines with at most 2^i processors.
	Degree []int64

	// Messages is the total number of messages (including dummy messages
	// and self-messages) exchanged in the superstep across the machine.
	Messages int64

	// Pairs lists the (src, dst) of every message of the superstep, in no
	// particular order.  Populated only under Options.RecordMessages.
	// The chunked columnar representation keeps recording message-heavy
	// supersteps from repeatedly re-growing (and transiently doubling)
	// one flat slice.
	Pairs *PairList
}

// Trace is the complete communication record of one run of an algorithm on
// M(v).  For static algorithms (the class covered by the paper's optimality
// theorem) the Trace depends only on the input size, so a single run
// characterizes the algorithm's communication for every folding, every σ
// and every D-BSP parameter vector.
type Trace struct {
	// V is the number of virtual processors of the specification machine.
	V int
	// LogV is log2(V) (0 when V == 1).
	LogV int
	// Steps holds one record per superstep, in superstep order.  In
	// streaming mode (Options.Sink) it is only the pending window of
	// supersteps not yet completed by every VP; finished records are
	// flushed to the sink and removed.
	Steps []StepRec

	mu sync.Mutex

	// Streaming state, used only when sink is non-nil.  base is the
	// superstep index of Steps[0]; seen[i] counts the VPs whose cluster
	// has merged into Steps[i]; flushed and flushedMsgs summarize the
	// records already handed to the sink, keeping NumSupersteps and
	// TotalMessages valid on the metadata-only Trace a streaming run
	// returns.
	sink        TraceSink
	base        int
	seen        []int
	flushed     int
	flushedMsgs int64

	// Probe state, used only when probe is non-nil (Options.Probe).  A
	// superstep's span ends when every VP has merged into its record;
	// probeSeen counts merged VPs per pending step outside streaming mode
	// (streaming mode reuses seen), probeDone is the next step to emit,
	// and probeLast is the end time of the previous span — so spans tile
	// the run without gaps.
	probe     *obs.Probe
	probeSeen []int
	probeDone int
	probeLast time.Time
}

func newTrace(v, logV int) *Trace {
	return &Trace{V: v, LogV: logV}
}

// merge folds the metrics of one cluster's barrier completion into the
// global per-superstep record.  levelMax is indexed by j-label-1 for
// j in (label, logV]; vps is the number of VPs in the merging cluster,
// which is how streaming mode knows a superstep is complete (all V VPs
// accounted for) and can be flushed to the sink.  The GoroutineEngine
// merges once per cluster — clusters run ahead of each other, so the
// pending window can transiently hold a few supersteps — while the
// BlockEngine merges whole supersteps and keeps the window at one.
// Pairs are built by the engines outside the lock and spliced in here —
// an O(chunks) pointer move, never a per-pair copy.
func (t *Trace) merge(step, label int, levelMax []int64, msgs int64, pairs *PairList, vps int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	idx := step - t.base
	if idx < 0 {
		return fmt.Errorf("core: internal error: superstep %d merged after being flushed to the trace sink", step)
	}
	for len(t.Steps) <= idx {
		t.Steps = append(t.Steps, StepRec{Label: -1, Degree: make([]int64, t.LogV+1)})
		if t.sink != nil {
			t.seen = append(t.seen, 0)
		}
	}
	rec := &t.Steps[idx]
	if rec.Label == -1 {
		rec.Label = label
	} else if rec.Label != label {
		return fmt.Errorf("core: superstep %d has mismatched sync labels %d and %d across clusters; network-oblivious algorithms must use the same label sequence on every VP", step, rec.Label, label)
	}
	for jj, v := range levelMax {
		j := label + 1 + jj
		if v > rec.Degree[j] {
			rec.Degree[j] = v
		}
	}
	rec.Messages += msgs
	if pairs.Len() > 0 {
		if rec.Pairs == nil {
			rec.Pairs = &PairList{}
		}
		rec.Pairs.Splice(pairs)
	}
	if t.sink == nil {
		if t.probe != nil {
			for len(t.probeSeen) <= idx {
				t.probeSeen = append(t.probeSeen, 0)
			}
			t.probeSeen[idx] += vps
			for t.probeDone < len(t.probeSeen) && t.probeSeen[t.probeDone] >= t.V {
				t.probeStepDoneLocked(t.probeDone, &t.Steps[t.probeDone])
				t.probeDone++
			}
		}
		return nil
	}
	t.seen[idx] += vps
	return t.flushLocked()
}

// probeStepDoneLocked records the span of a completed superstep: from
// the end of the previous superstep (or the run start) to now, annotated
// with the sync label, the message total, and fold_ops — the upper bound
// messages x fold levels on degree-counter updates the step induced.
func (t *Trace) probeStepDoneLocked(step int, rec *StepRec) {
	end := time.Now()
	start := t.probeLast
	t.probeLast = end
	t.probe.SpanBetween("engine", "superstep "+strconv.Itoa(step), 0, start, end, map[string]any{
		"label":    rec.Label,
		"messages": rec.Messages,
		"fold_ops": rec.Messages * int64(len(rec.Degree)-1-rec.Label),
	})
}

// flushLocked writes the completed prefix of the pending window to the
// sink, in superstep order, and shifts the window.
func (t *Trace) flushLocked() error {
	for len(t.Steps) > 0 && t.seen[0] >= t.V {
		if t.seen[0] > t.V {
			return fmt.Errorf("core: internal error: superstep %d merged %d VPs on a machine of %d", t.base, t.seen[0], t.V)
		}
		rec := t.Steps[0]
		if t.probe != nil {
			t.probeStepDoneLocked(t.base, &rec)
		}
		if err := t.sink.WriteStep(rec); err != nil {
			return fmt.Errorf("core: trace sink: %w", err)
		}
		t.flushed++
		t.flushedMsgs += rec.Messages
		t.base++
		n := copy(t.Steps, t.Steps[1:])
		t.Steps[n] = StepRec{}
		t.Steps = t.Steps[:n]
		m := copy(t.seen, t.seen[1:])
		t.seen = t.seen[:m]
	}
	return nil
}

// recordedSteps returns the number of complete supersteps the trace has
// accounted for (flushed plus pending), under the lock.
func (t *Trace) recordedSteps() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.flushed + len(t.Steps)
}

// pendingSteps returns the size of the streaming window: supersteps
// merged by some but not all VPs.  Zero outside streaming mode and at
// the end of every successful streaming run.
func (t *Trace) pendingSteps() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.sink == nil {
		return 0
	}
	return len(t.Steps)
}

// NumSupersteps returns the number of supersteps executed.  On the
// metadata-only Trace returned by a streaming run it counts the steps
// flushed to the sink.
func (t *Trace) NumSupersteps() int { return t.flushed + len(t.Steps) }

// TotalMessages returns the total number of messages exchanged during the
// run, including dummy messages and, in streaming mode, the messages of
// every step already flushed to the sink.
func (t *Trace) TotalMessages() int64 {
	tot := t.flushedMsgs
	for i := range t.Steps {
		tot += t.Steps[i].Messages
	}
	return tot
}

// LabelBound returns the exclusive upper bound on superstep labels,
// max{1, log2 V} per the paper's log convention.
func (t *Trace) LabelBound() int {
	if t.LogV < 1 {
		return 1
	}
	return t.LogV
}

// S returns the vector S_i(n), for 0 <= i < LabelBound(): the number of
// i-supersteps executed by the algorithm.
func (t *Trace) S() []int64 {
	s := make([]int64, t.LabelBound())
	for i := range t.Steps {
		s[t.Steps[i].Label]++
	}
	return s
}

// F returns the vector F_i(n, p), for 0 <= i < log2(p): the cumulative
// degree of all i-supersteps when the algorithm is folded on p processors
// (Section 2 of the paper).
//
// Panic contract: p must be a power of two with 1 < p <= V; any other p
// (including p = 1, whose folding exchanges no messages and has no F
// entries) panics.  Use TryF when p comes from untrusted input.
func (t *Trace) F(p int) []int64 {
	f, err := t.TryF(p)
	if err != nil {
		panic(err.Error())
	}
	return f
}

// TryF is F with an error instead of a panic for out-of-range p.
func (t *Trace) TryF(p int) ([]int64, error) {
	lp := logOf(p)
	if lp < 1 || lp > t.LogV {
		return nil, fmt.Errorf("core: Trace.F: p=%d out of range for v=%d (need a power of two with 1 < p <= v)", p, t.V)
	}
	f := make([]int64, lp)
	for i := range t.Steps {
		rec := &t.Steps[i]
		if rec.Label < lp {
			f[rec.Label] += rec.Degree[lp]
		}
	}
	return f, nil
}

// logOf returns log2(p) for a positive power of two, or -1 otherwise.
func logOf(p int) int {
	if p <= 0 || p&(p-1) != 0 {
		return -1
	}
	l := 0
	for 1<<uint(l) < p {
		l++
	}
	return l
}

// Log2 returns log2(p) for a positive power of two.  It is exported for
// use by the metric packages.
//
// Panic contract: any p that is not a positive power of two panics
// (p = 1 is valid and returns 0).  Use TryLog2 when p comes from
// untrusted input.
func Log2(p int) int {
	l := logOf(p)
	if l < 0 {
		panic(fmt.Sprintf("core: %d is not a positive power of two", p))
	}
	return l
}

// TryLog2 is Log2 with an error instead of a panic: it returns log2(p)
// for a positive power of two (0 for p = 1) and an error otherwise.
func TryLog2(p int) (int, error) {
	l := logOf(p)
	if l < 0 {
		return 0, fmt.Errorf("core: %d is not a positive power of two", p)
	}
	return l, nil
}
