package core

import (
	"strings"
	"testing"
)

// exchangeTrace builds a small trace: v=8, one 0-superstep where every VP
// sends to its complement.
func exchangeTrace(t *testing.T) *Trace {
	t.Helper()
	tr, err := Run(8, func(vp *VP[int]) {
		vp.Send(7-vp.ID(), 1)
		vp.Sync(0)
		vp.Sync(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestTryLog2(t *testing.T) {
	cases := []struct {
		p, want int
		ok      bool
	}{
		{1, 0, true}, {2, 1, true}, {1024, 10, true},
		{0, 0, false}, {-4, 0, false}, {3, 0, false}, {6, 0, false},
	}
	for _, c := range cases {
		got, err := TryLog2(c.p)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("TryLog2(%d) = (%d, %v), want (%d, nil)", c.p, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("TryLog2(%d): want error", c.p)
		}
	}
}

func TestLog2PanicContract(t *testing.T) {
	if got := Log2(1); got != 0 {
		t.Errorf("Log2(1) = %d, want 0 (p = 1 is valid)", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Log2(3): want panic")
		}
	}()
	Log2(3)
}

// TestTraceFEdges covers the p = 1 and p = V boundaries of the folding
// vector: p = 1 is out of range (a single processor exchanges nothing and
// F has no entries), p = V is the finest legal fold.
func TestTraceFEdges(t *testing.T) {
	tr := exchangeTrace(t)

	if _, err := tr.TryF(1); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("TryF(1) = %v, want out-of-range error", err)
	}
	if _, err := tr.TryF(2 * tr.V); err == nil {
		t.Error("TryF(2V): want error")
	}
	if _, err := tr.TryF(3); err == nil {
		t.Error("TryF(3): want error (not a power of two)")
	}

	// p = V: every VP is its own processor; the complement exchange is a
	// 1-relation in the single 0-superstep.
	f, err := tr.TryF(tr.V)
	if err != nil {
		t.Fatalf("TryF(V): %v", err)
	}
	if len(f) != tr.LogV {
		t.Fatalf("len(F(V)) = %d, want %d", len(f), tr.LogV)
	}
	if f[0] != 1 {
		t.Errorf("F(V)[0] = %d, want 1", f[0])
	}

	// F and TryF agree in range.
	for p := 2; p <= tr.V; p *= 2 {
		want, err := tr.TryF(p)
		if err != nil {
			t.Fatalf("TryF(%d): %v", p, err)
		}
		got := tr.F(p)
		if len(got) != len(want) {
			t.Fatalf("F(%d) and TryF(%d) disagree", p, p)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("F(%d)[%d] = %d, TryF = %d", p, i, got[i], want[i])
			}
		}
	}

	defer func() {
		if recover() == nil {
			t.Error("F(1): want panic per the documented contract")
		}
	}()
	tr.F(1)
}

// TestTraceFSingleVP: on M(1) no fold is legal (LogV = 0).
func TestTraceFSingleVP(t *testing.T) {
	tr, err := Run(1, func(vp *VP[int]) { vp.Sync(0) })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.TryF(1); err == nil {
		t.Error("TryF(1) on M(1): want error")
	}
	if _, err := tr.TryF(2); err == nil {
		t.Error("TryF(2) on M(1): want error (p > V)")
	}
}
