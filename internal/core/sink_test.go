package core_test

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"testing"

	"netoblivious/internal/core"
)

// exchangeProgram is a deterministic workload: steps supersteps, each VP
// sending fanout messages to staggered neighbours and syncing at label 0.
func exchangeProgram(v, steps, fanout int) core.Program[int] {
	return func(vp *core.VP[int]) {
		for s := 0; s < steps; s++ {
			for k := 1; k <= fanout; k++ {
				vp.Send((vp.ID()+k*(s+1))%v, s)
			}
			vp.Sync(0)
		}
	}
}

// streamEngine is the deterministic engine for byte-identity checks: with
// a fixed worker count the BlockEngine's shard merge order — and so the
// pair order inside each step — is reproducible run to run.
var streamEngine = core.BlockEngine{Workers: 2}

// TestStreamedJSONByteIdentical: running into a TraceJSONWriter produces
// exactly the bytes EncodeJSON produces for the accumulated trace of an
// identical run — recorded pairs included.
func TestStreamedJSONByteIdentical(t *testing.T) {
	for _, record := range []bool{false, true} {
		prog := randomProgram(7, 16, 12)
		ref, err := core.RunOpt(16, prog, core.Options{Engine: streamEngine, RecordMessages: record})
		if err != nil {
			t.Fatal(err)
		}
		var want bytes.Buffer
		if err := ref.EncodeJSON(&want); err != nil {
			t.Fatal(err)
		}
		var got bytes.Buffer
		jw := core.NewTraceJSONWriter(&got)
		jw.ReleasePairs = true
		meta, err := core.RunOpt(16, prog, core.Options{Engine: streamEngine, RecordMessages: record, Sink: jw})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want.Bytes(), got.Bytes()) {
			t.Errorf("record=%v: streamed JSON differs from in-memory EncodeJSON", record)
		}
		if meta.NumSupersteps() != ref.NumSupersteps() || meta.TotalMessages() != ref.TotalMessages() {
			t.Errorf("record=%v: metadata-only trace counters %d/%d, want %d/%d", record,
				meta.NumSupersteps(), meta.TotalMessages(), ref.NumSupersteps(), ref.TotalMessages())
		}
		if len(meta.Steps) != 0 {
			t.Errorf("record=%v: streamed run retained %d steps in memory", record, len(meta.Steps))
		}
	}
}

// TestStreamedJSONZeroSteps: the empty-trace framing ("steps":null) is
// preserved by the streaming writer.
func TestStreamedJSONZeroSteps(t *testing.T) {
	empty := func(vp *core.VP[int]) {}
	ref, err := core.RunOpt(1, empty, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var want, got bytes.Buffer
	if err := ref.EncodeJSON(&want); err != nil {
		t.Fatal(err)
	}
	if _, err := core.RunOpt(1, empty, core.Options{Sink: core.NewTraceJSONWriter(&got)}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Errorf("zero-step stream %q differs from EncodeJSON %q", got.String(), want.String())
	}
}

// TestTraceFileSinkBothFormats: a run streamed into a file sink round-
// trips through OpenTraceFile in both formats, the JSON file is exactly
// the EncodeJSON bytes, and no temporary files survive.
func TestTraceFileSinkBothFormats(t *testing.T) {
	prog := randomProgram(11, 32, 9)
	ref, err := core.RunOpt(32, prog, core.Options{Engine: streamEngine, RecordMessages: true})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := ref.EncodeJSON(&want); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for _, tc := range []struct {
		name   string
		format core.TraceFormat
	}{
		{"trace.json", core.TraceJSON},
		{"trace.bin", core.TraceBinary},
	} {
		path := filepath.Join(dir, tc.name)
		sink := core.NewTraceFileSink(path, tc.format)
		if _, err := core.RunOpt(32, prog, core.Options{Engine: streamEngine, RecordMessages: true, Sink: sink}); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		src, err := core.OpenTraceFile(path)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		back, err := core.ReadAll(src)
		src.Close()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		var got bytes.Buffer
		if err := back.EncodeJSON(&got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want.Bytes(), got.Bytes()) {
			t.Errorf("%s: file round-trip changed the trace", tc.name)
		}
		if tc.format == core.TraceJSON {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(want.Bytes(), raw) {
				t.Error("streamed JSON file is not byte-identical to EncodeJSON")
			}
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Errorf("directory holds %d entries, want exactly the 2 trace files", len(entries))
	}
}

// TestTraceFileSinkCancellationLeavesNoFiles: a run cancelled mid-stream
// must not leave a trace file or a temporary sibling behind — EndTrace
// with the run error is the file sink's discard signal.
func TestTraceFileSinkCancellationLeavesNoFiles(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	prog := func(vp *core.VP[int]) {
		for s := 0; s < 50; s++ {
			if s == 5 && vp.ID() == 0 {
				cancel()
			}
			vp.Send((vp.ID()+1)%8, s)
			vp.Sync(0)
		}
	}
	sink := core.NewTraceFileSink(filepath.Join(dir, "partial.json"), core.TraceJSON)
	_, err := core.RunOpt(8, prog, core.Options{RecordMessages: true, Context: ctx, Sink: sink})
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	entries, rerr := os.ReadDir(dir)
	if rerr != nil {
		t.Fatal(rerr)
	}
	for _, e := range entries {
		t.Errorf("cancelled run left %s behind", e.Name())
	}
}

// TestStreamedRunMemoryBounded is the streaming guarantee itself: a run
// whose full trace is more than 10x the largest superstep streams with
// peak live heap far below the accumulated trace size.  Live heap is
// sampled at every superstep boundary after a forced GC, so the numbers
// are live bytes rather than allocation churn.
func TestStreamedRunMemoryBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("forces a GC per superstep")
	}
	const v, steps, fanout = 256, 400, 8
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	baseline := ms.HeapAlloc
	sink := &memProbeSink{}
	if _, err := core.RunOpt(v, exchangeProgram(v, steps, fanout), core.Options{
		RecordMessages: true, Sink: sink,
	}); err != nil {
		t.Fatal(err)
	}
	if sink.inmem < 10*sink.largest {
		t.Fatalf("workload too small to be meaningful: trace %d bytes, largest step %d bytes", sink.inmem, sink.largest)
	}
	peakDelta := int64(0)
	if sink.peak > baseline {
		peakDelta = int64(sink.peak - baseline)
	}
	// The bound is deliberately loose (a quarter of the full trace) to
	// absorb machine state and allocator slack; an accumulating run would
	// sit at or above sink.inmem by its final steps.
	if limit := sink.inmem / 4; peakDelta > limit {
		t.Errorf("peak live heap %d bytes over baseline exceeds %d (full trace %d bytes, largest step %d bytes): streaming is not O(superstep)",
			peakDelta, limit, sink.inmem, sink.largest)
	}
}

// memProbeSink discards records while tracking live-heap peaks and what
// an accumulated trace would have occupied.
type memProbeSink struct {
	discard core.DiscardSink
	inmem   int64
	largest int64
	peak    uint64
}

func (s *memProbeSink) BeginTrace(v, logV int) error { return s.discard.BeginTrace(v, logV) }

func (s *memProbeSink) WriteStep(rec core.StepRec) error {
	sz := int64(64 + len(rec.Degree)*8 + rec.Pairs.Len()*8)
	s.inmem += sz
	if sz > s.largest {
		s.largest = sz
	}
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > s.peak {
		s.peak = ms.HeapAlloc
	}
	return s.discard.WriteStep(rec)
}

func (s *memProbeSink) EndTrace(runErr error) error { return s.discard.EndTrace(runErr) }

// TestPooledPairChunksSteadyState: once a streaming run has primed the
// chunk pool, further runs reuse released chunks instead of allocating
// fresh pair columns — steady-state allocation per run stays well below
// the pair bytes the run records.  GC is disabled during the measurement
// so pool emptying cannot skew it.
func TestPooledPairChunksSteadyState(t *testing.T) {
	const v, steps, fanout = 64, 50, 64 // 4096 pairs/step: full pooled chunks
	run := func() int64 {
		sink := &core.DiscardSink{}
		if _, err := core.RunOpt(v, exchangeProgram(v, steps, fanout), core.Options{
			RecordMessages: true, Sink: sink, Engine: core.BlockEngine{Workers: 1},
		}); err != nil {
			t.Fatal(err)
		}
		return int64(sink.Messages())
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	var messages int64
	for i := 0; i < 3; i++ {
		messages = run() // prime the coroutine cache and the chunk pool
	}
	pairBytes := messages * 8
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	const reps = 5
	for i := 0; i < reps; i++ {
		run()
	}
	runtime.ReadMemStats(&after)
	perRun := int64(after.TotalAlloc-before.TotalAlloc) / reps
	if limit := pairBytes / 2; perRun > limit {
		t.Errorf("steady-state run allocates %d bytes, want < %d (records %d pair bytes; chunk pool not reusing)",
			perRun, limit, pairBytes)
	}
}

// BenchmarkStreamedRecordedRun is the allocation series behind the chunk
// pool: a recorded run streamed into a discard sink.  Watch allocs/op —
// without pooling it grows by two 16 KiB columns per 4096 messages.
func BenchmarkStreamedRecordedRun(b *testing.B) {
	const v, steps, fanout = 64, 50, 64
	prog := exchangeProgram(v, steps, fanout)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sink := &core.DiscardSink{}
		if _, err := core.RunOpt(v, prog, core.Options{
			RecordMessages: true, Sink: sink, Engine: core.BlockEngine{Workers: 1},
		}); err != nil {
			b.Fatal(err)
		}
	}
}
