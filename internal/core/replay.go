package core

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"strconv"
	"sync"
	"sync/atomic"

	"netoblivious/internal/obs"
)

// This file implements the ReplayEngine: the third execution engine,
// built on the paper's central determinism fact.  A static network-
// oblivious algorithm's communication at a fixed input size is a pure
// function of that size — so the superstep schedule (labels, fold
// degrees, message routing) can be recorded once, compiled into flat
// routing tables, and replayed on every later run as pure data movement:
// no goroutine per VP, no coroutine resumes, no barriers, no Trace.mu
// contention, and zero per-message allocation in steady state.

// Schedule is the compiled form of one program's run on M(v): per
// superstep, the sync label, the message total, the full fold-degree
// vector, and a destination-bucketed routing table in CSR layout —
// srcCol holds every message's source sorted by (destination, source)
// and rowStart[d] .. rowStart[d+1] delimits the messages destined to
// VP d.  The sort makes the compiled form canonical: two compiles of
// the same program (on any engine, at any GOMAXPROCS) produce identical
// schedules, so replayed traces are deterministic byte for byte.
//
// A Schedule is immutable after compilation and safe to share across
// concurrent replays.
type Schedule struct {
	v, logV int
	steps   []schedStep
	maxMsgs int // largest per-superstep message count, for arena sizing
}

type schedStep struct {
	label    int
	messages int64
	degree   []int64 // logV+1 entries; view into one schedule-owned backing
	srcCol   []int32 // message sources, sorted by (dst, src)
	rowStart []int32 // CSR offsets into srcCol by destination VP; len v+1
	pairs    *PairList
}

// V returns the number of virtual processors the schedule was compiled
// for, and NumSupersteps the superstep count — the identity a replay
// validates against its key.
func (s *Schedule) V() int             { return s.v }
func (s *Schedule) NumSupersteps() int { return len(s.steps) }

// CompileSchedule compiles tr — a trace recorded with RecordMessages —
// into a replayable Schedule.  It is exported for tests and offline
// tooling; the ReplayEngine compiles on first miss automatically.
// Compilation must be byte-deterministic: the sharded-nobld roadmap
// item keys cache entries by compiled schedules, so two compiles of
// the same trace must agree exactly.
//
//nob:deterministic
func CompileSchedule(tr *Trace) (*Schedule, error) {
	s := &Schedule{v: tr.V, logV: tr.LogV, steps: make([]schedStep, len(tr.Steps))}
	degBacking := make([]int64, len(tr.Steps)*(tr.LogV+1))
	for i := range tr.Steps {
		rec := &tr.Steps[i]
		if rec.Messages > 0 && rec.Pairs.Len() == 0 {
			return nil, fmt.Errorf("core: CompileSchedule: superstep %d has %d messages but no recorded pairs; compile from a RecordMessages trace", i, rec.Messages)
		}
		st := &s.steps[i]
		st.label = rec.Label
		st.messages = rec.Messages
		st.degree = degBacking[: tr.LogV+1 : tr.LogV+1]
		degBacking = degBacking[tr.LogV+1:]
		copy(st.degree, rec.Degree)

		msgs := rec.Pairs.Len()
		if msgs > s.maxMsgs {
			s.maxMsgs = msgs
		}
		st.rowStart = make([]int32, tr.V+1)
		if msgs == 0 {
			st.pairs = &PairList{}
			continue
		}
		// Counting sort by destination: one pass to count, prefix-sum to
		// offsets, one pass to place, then an ascending source sort inside
		// each destination bucket for full canonical order.
		counts := st.rowStart // reuse: counts[d+1] accumulates, prefix-sum in place
		for _, dst := range rec.Pairs.All() {
			counts[dst+1]++
		}
		for d := 0; d < tr.V; d++ {
			counts[d+1] += counts[d]
		}
		st.srcCol = make([]int32, msgs)
		dstCol := make([]int32, msgs)
		cursor := make([]int32, tr.V)
		for src, dst := range rec.Pairs.All() {
			at := st.rowStart[dst] + cursor[dst]
			cursor[dst]++
			st.srcCol[at] = src
			dstCol[at] = dst
		}
		for d := 0; d < tr.V; d++ {
			lo, hi := st.rowStart[d], st.rowStart[d+1]
			if hi-lo > 1 {
				slices.Sort(st.srcCol[lo:hi])
			}
		}
		st.pairs = pairListOver(st.srcCol, dstCol)
	}
	return s, nil
}

// replayArena is the reusable scratch buffer a replay streams messages
// through.  Pooled process-wide so steady-state replays allocate nothing
// per message.
type replayArena struct{ buf []int32 }

var replayArenas = sync.Pool{New: func() any { return new(replayArena) }}

// Replay reconstructs the recorded trace: per superstep it copies the
// compiled degree vector (callers own their Trace), restates the label
// and message count, and streams every message's source id into its
// destination bucket through a pooled arena — the honest data-movement
// cost of delivery, proportional to the message total.  When record is
// set, the step's Pairs share the schedule's immutable columns; no copy
// is ever made.
func (s *Schedule) Replay(record bool) *Trace {
	return s.replay(record, nil)
}

// replay is Replay with an optional probe: non-nil, it records one
// "engine"-category span per replayed superstep (the data-movement time
// of that step's delivery).  The nil path is the exported Replay and
// stays within the warm-replay allocation budget.
func (s *Schedule) replay(record bool, probe *obs.Probe) *Trace {
	tr := &Trace{V: s.v, LogV: s.logV, Steps: make([]StepRec, len(s.steps))}
	degBacking := make([]int64, len(s.steps)*(s.logV+1))
	ar := replayArenas.Get().(*replayArena)
	if cap(ar.buf) < s.maxMsgs {
		ar.buf = make([]int32, s.maxMsgs)
	}
	for i := range s.steps {
		st := &s.steps[i]
		stepStart := probe.Now()
		deg := degBacking[: s.logV+1 : s.logV+1]
		degBacking = degBacking[s.logV+1:]
		copy(deg, st.degree)
		rec := &tr.Steps[i]
		rec.Label = st.label
		rec.Degree = deg
		rec.Messages = st.messages
		if record && st.pairs.Len() > 0 {
			rec.Pairs = st.pairs
		}
		if len(st.srcCol) > 0 {
			inbox := ar.buf[:len(st.srcCol)]
			rs := st.rowStart
			for d := 0; d < s.v; d++ {
				lo, hi := rs[d], rs[d+1]
				if lo < hi {
					copy(inbox[lo:hi], st.srcCol[lo:hi])
				}
			}
		}
		if probe != nil {
			probe.Span("engine", "superstep "+strconv.Itoa(i), 0, stepStart, map[string]any{
				"label":    st.label,
				"messages": st.messages,
				"replayed": true,
			})
		}
	}
	replayArenas.Put(ar)
	return tr
}

// replayTo is Replay in streaming form: every superstep record is
// handed to the sink as it is reconstructed, so a warm replay of an
// arbitrarily long schedule runs in O(largest superstep) memory.  The
// returned Trace is the metadata-only form of a streaming run.  Pair
// records are aliases of the schedule's immutable compiled columns —
// shared, never copied, and safe for sinks that Release what they own.
func (s *Schedule) replayTo(sink TraceSink, record bool, probe *obs.Probe) (*Trace, error) {
	if err := sink.BeginTrace(s.v, s.logV); err != nil {
		return nil, fmt.Errorf("core: trace sink: %w", err)
	}
	meta := &Trace{V: s.v, LogV: s.logV, sink: sink}
	ar := replayArenas.Get().(*replayArena)
	if cap(ar.buf) < s.maxMsgs {
		ar.buf = make([]int32, s.maxMsgs)
	}
	var runErr error
	for i := range s.steps {
		st := &s.steps[i]
		stepStart := probe.Now()
		deg := make([]int64, s.logV+1)
		copy(deg, st.degree)
		rec := StepRec{Label: st.label, Degree: deg, Messages: st.messages}
		if record && st.pairs.Len() > 0 {
			rec.Pairs = st.pairs.alias()
		}
		if len(st.srcCol) > 0 {
			inbox := ar.buf[:len(st.srcCol)]
			rs := st.rowStart
			for d := 0; d < s.v; d++ {
				lo, hi := rs[d], rs[d+1]
				if lo < hi {
					copy(inbox[lo:hi], st.srcCol[lo:hi])
				}
			}
		}
		if err := sink.WriteStep(rec); err != nil {
			runErr = fmt.Errorf("core: trace sink: %w", err)
			break
		}
		if probe != nil {
			probe.Span("engine", "superstep "+strconv.Itoa(i), 0, stepStart, map[string]any{
				"label":    st.label,
				"messages": st.messages,
				"replayed": true,
			})
		}
		meta.flushed++
		meta.flushedMsgs += rec.Messages
	}
	replayArenas.Put(ar)
	if eerr := sink.EndTrace(runErr); eerr != nil && runErr == nil {
		runErr = fmt.Errorf("core: trace sink: %w", eerr)
	}
	if runErr != nil {
		return nil, runErr
	}
	return meta, nil
}

// ScheduleStore is a bounded, single-flight cache of compiled schedules,
// keyed like the trace store ("algorithm/n=N@replay" plus a per-run
// RunOpt sequence suffix).  One process-wide store (SharedScheduleStore)
// backs every keyed ReplayEngine whose Store field is nil.
type ScheduleStore struct {
	store *Store[*Schedule]
}

// DefaultScheduleCapacity bounds the shared schedule store: schedules
// are a compressed form of recorded traces, so a few hundred of them fit
// comfortably where the same number of live traces would not.
const DefaultScheduleCapacity = 256

// NewScheduleStore returns an empty store with the default capacity.
func NewScheduleStore() *ScheduleStore {
	return NewBoundedScheduleStore(DefaultScheduleCapacity)
}

// NewBoundedScheduleStore returns an empty store retaining at most
// capacity compiled schedules under LRU eviction (0 = unbounded).
func NewBoundedScheduleStore(capacity int) *ScheduleStore {
	return &ScheduleStore{store: NewBoundedStore[*Schedule](capacity)}
}

var processScheduleStore = NewScheduleStore()

// SharedScheduleStore returns the process-wide schedule store used by
// keyed ReplayEngines with a nil Store.
func SharedScheduleStore() *ScheduleStore { return processScheduleStore }

// Stats returns the store's cumulative hit/miss/eviction counters.
func (ss *ScheduleStore) Stats() StoreStats { return ss.store.Stats() }

// Len returns the number of cached schedules (completed or in flight).
func (ss *ScheduleStore) Len() int { return ss.store.Len() }

// Forget drops one schedule, forcing recompilation on next use.
func (ss *ScheduleStore) Forget(key string) bool { return ss.store.Forget(key) }

// ReplayEngine executes compiled schedules.  On the first run for a Key
// it executes the program once, instrumented, on the Compile engine and
// compiles the recorded trace; every later run for the Key replays the
// compiled schedule allocation-free without executing the program at
// all.  That is sound exactly for the algorithms the paper's optimality
// theory covers — static programs, whose communication depends only on
// the input size — and it is the caller's responsibility (discharged by
// the alg registry's determinism contract) to key only such programs.
//
// Because the program body is skipped on a warm replay, side effects of
// VP code (e.g. payload output buffers) are produced only by the cold
// compile run.  The replayed Trace, however, is byte-for-byte identical
// on cold and warm paths, and trace-equivalent to every other engine.
//
// The zero value is unkeyed: with no program identity to memoize under,
// it degrades gracefully by executing directly on the Compile engine,
// so ad-hoc core.RunOpt callers can still select "replay" and lose
// nothing but the caching.
type ReplayEngine struct {
	// Key identifies the program being run.  The alg registry sets it
	// automatically (KeyedReplay) for every registered algorithm; direct
	// core users key their own static programs.  The zero Key disables
	// schedule caching.
	Key TraceKey
	// Store is the schedule cache; nil uses SharedScheduleStore().
	Store *ScheduleStore
	// Compile is the engine used for the instrumented first run (and for
	// direct execution when unkeyed); nil uses BlockEngine{}.
	Compile Engine

	// seq numbers the RunOpt invocations of one algorithm run, so an
	// algorithm that runs several machines (e.g. a v=1 probe before the
	// real machine) gets one schedule per invocation instead of aliasing
	// them all on one key.  KeyedReplay installs a fresh counter per
	// algorithm run; nil means every invocation is number 0.
	seq *atomic.Int32
}

// Name implements Engine.
func (ReplayEngine) Name() string { return "replay" }

func (ReplayEngine) sealed() {}

// compileEngine resolves the engine used for instrumented compile runs.
func (e ReplayEngine) compileEngine() (Engine, error) {
	c := e.Compile
	if c == nil {
		return BlockEngine{}, nil
	}
	switch c.(type) {
	case ReplayEngine, *ReplayEngine:
		return nil, errors.New("core: ReplayEngine cannot compile through another ReplayEngine")
	}
	return c, nil
}

// KeyedReplay prepares eng for one algorithm run: when eng is a
// ReplayEngine it returns a copy keyed by (algorithm, n) with a fresh
// RunOpt sequence counter; any other engine passes through unchanged.
// The alg registry calls this on every Algorithm.Run, which is how
// `-engine replay` works for every registered algorithm with no
// per-algorithm code.
func KeyedReplay(eng Engine, algorithm string, n int) Engine {
	var re ReplayEngine
	switch e := eng.(type) {
	case ReplayEngine:
		re = e
	case *ReplayEngine:
		re = *e
	default:
		return eng
	}
	re.Key = TraceKey{Algorithm: algorithm, N: n, Engine: re.Name()}
	re.seq = new(atomic.Int32)
	return re
}

// scheduleKey renders the store key for one RunOpt invocation:
// "algorithm/n=N@replay#idx".  Built by hand — this is on the warm
// per-run path and must stay within the replay allocation budget.
//
//nob:hotpath
func scheduleKey(k TraceKey, idx int) string {
	b := make([]byte, 0, len(k.Algorithm)+len(k.Engine)+16)
	b = append(b, k.Algorithm...)
	b = append(b, "/n="...)
	b = strconv.AppendInt(b, int64(k.N), 10)
	b = append(b, '@')
	b = append(b, k.Engine...)
	b = append(b, '#')
	b = strconv.AppendInt(b, int64(idx), 10)
	return string(b)
}

// isCancellation reports whether err describes the caller's cancelled
// context rather than the computation — the class of outcomes that must
// never stay memoized (harness.IsCancellation, restated locally because
// core sits below the harness).
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// runReplay is the RunOpt path for the ReplayEngine.  It never builds a
// machine: a warm run touches the schedule store and the compiled
// tables, nothing else.
func runReplay[P any](v int, prog Program[P], opts Options, re ReplayEngine) (*Trace, error) {
	compile, err := re.compileEngine()
	if err != nil {
		return nil, err
	}
	if re.Key == (TraceKey{}) {
		// Unkeyed: no identity to cache under — run directly.
		o := opts
		o.Engine = compile
		return RunOpt(v, prog, o)
	}
	idx := 0
	if re.seq != nil {
		idx = int(re.seq.Add(1)) - 1
	}
	store := re.Store
	if store == nil {
		store = processScheduleStore
	}
	key := scheduleKey(re.Key, idx)
	// Peek first: the warm path must not pay the compute-closure
	// allocation of Get.
	sched, err, ok := store.store.Peek(key)
	if !ok {
		sched, err = store.store.Get(key, func() (*Schedule, error) {
			// The instrumented compile run inherits the probe, so a cold
			// replay's timeline shows the compile engine's supersteps
			// under the schedule-compile span.
			o := Options{RecordMessages: true, Engine: compile, Context: opts.Context, Probe: opts.Probe}
			compileStart := opts.Probe.Now()
			tr, rerr := RunOpt(v, prog, o)
			if rerr != nil {
				return nil, rerr
			}
			s, cerr := CompileSchedule(tr)
			if cerr == nil && opts.Probe != nil {
				opts.Probe.Span("compiler", "schedule-compile", 0, compileStart, map[string]any{
					"key": key, "v": v, "supersteps": len(s.steps),
				})
			}
			return s, cerr
		})
	}
	if err != nil {
		if isCancellation(err) {
			// The compile died of a cancelled context; that outcome belongs
			// to the cancelled caller, not the key (same discipline as the
			// harness trace store).
			store.store.ForgetIf(key, func(_ *Schedule, e error) bool { return isCancellation(e) })
		}
		return nil, err
	}
	if sched.v != v {
		return nil, fmt.Errorf("core: replay key %q compiled for v=%d but run requested v=%d; the keyed program must be static (one machine size per key)", key, sched.v, v)
	}
	if opts.Context != nil {
		if cerr := opts.Context.Err(); cerr != nil {
			return nil, fmt.Errorf("core: run cancelled: %w", cerr)
		}
	}
	if opts.Sink != nil {
		return sched.replayTo(opts.Sink, opts.RecordMessages, opts.Probe)
	}
	return sched.replay(opts.RecordMessages, opts.Probe), nil
}
