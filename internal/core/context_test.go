package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

// spinProgram returns a program of total supersteps that counts, on VP 0,
// how many supersteps actually executed, and cancels ctx once VP 0 passes
// cancelAt supersteps.
func spinProgram(total, cancelAt int, cancel context.CancelFunc, executed *atomic.Int64) Program[int] {
	return func(vp *VP[int]) {
		for s := 0; s < total; s++ {
			if vp.ID() == 0 {
				executed.Add(1)
				if s == cancelAt {
					cancel()
				}
			}
			vp.Send(vp.ID()^1, s)
			vp.Sync(0)
		}
	}
}

// TestRunCancellationMidRun: cancelling the context mid-run aborts both
// engines within a bounded number of supersteps, the returned error wraps
// context.Canceled, and the machine does not keep burning supersteps.
func TestRunCancellationMidRun(t *testing.T) {
	const total, cancelAt = 200, 5
	for _, eng := range []Engine{GoroutineEngine{}, BlockEngine{}} {
		t.Run(eng.Name(), func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var executed atomic.Int64
			_, err := RunOpt(8, spinProgram(total, cancelAt, cancel, &executed), Options{
				Engine:  eng,
				Context: ctx,
			})
			if err == nil {
				t.Fatal("cancelled run returned nil error")
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("error %v does not wrap context.Canceled", err)
			}
			// The abort lands at the next superstep boundary: VP 0 may
			// execute at most a couple of supersteps past the cancel
			// point, never the full program.
			if got := executed.Load(); got > cancelAt+2 || got >= total {
				t.Errorf("VP 0 executed %d supersteps after cancel at %d; abort did not propagate", got, cancelAt)
			}
		})
	}
}

func TestRunCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Bool
	for _, eng := range []Engine{GoroutineEngine{}, BlockEngine{}} {
		_, err := RunOpt(4, func(vp *VP[int]) {
			ran.Store(true)
			vp.Sync(0)
		}, Options{Engine: eng, Context: ctx})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", eng.Name(), err)
		}
	}
	if ran.Load() {
		t.Error("program ran despite pre-cancelled context")
	}
}

// TestRunNilContextUnaffected: runs without a context behave exactly as
// before the cancellation plumbing.
func TestRunNilContextUnaffected(t *testing.T) {
	for _, eng := range []Engine{GoroutineEngine{}, BlockEngine{}} {
		tr, err := RunOpt(4, func(vp *VP[int]) {
			vp.Send(vp.ID()^1, 1)
			vp.Sync(0)
		}, Options{Engine: eng})
		if err != nil {
			t.Fatalf("%s: %v", eng.Name(), err)
		}
		if tr.NumSupersteps() != 1 || tr.TotalMessages() != 4 {
			t.Errorf("%s: trace %d steps / %d msgs", eng.Name(), tr.NumSupersteps(), tr.TotalMessages())
		}
	}
}
