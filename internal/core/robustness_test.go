package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"
)

// testEngines are the engines every robustness scenario runs on.
var testEngines = []Engine{GoroutineEngine{}, BlockEngine{}, BlockEngine{Workers: 2}}

// TestRandomFailureInjection: programs that panic on arbitrary VPs at
// arbitrary supersteps must surface an error quickly — never hang, never
// crash the process.
func TestRandomFailureInjection(t *testing.T) {
	for _, eng := range testEngines {
		rng := rand.New(rand.NewSource(13))
		for trial := 0; trial < 40; trial++ {
			v := 1 << uint(1+rng.Intn(5))
			steps := 1 + rng.Intn(5)
			failVP := rng.Intn(v)
			failStep := rng.Intn(steps)
			done := make(chan error, 1)
			go func() {
				_, err := RunOpt(v, func(vp *VP[int]) {
					for s := 0; s < steps; s++ {
						if vp.ID() == failVP && s == failStep {
							panic(fmt.Sprintf("injected-%d", trial))
						}
						vp.Send(0, 1)
						vp.Sync(0)
					}
				}, Options{Engine: eng})
				done <- err
			}()
			select {
			case err := <-done:
				if err == nil || !strings.Contains(err.Error(), "injected") {
					t.Fatalf("%s trial %d: want injected panic error, got %v", eng.Name(), trial, err)
				}
			case <-time.After(10 * time.Second):
				t.Fatalf("%s trial %d: run hung after injected failure", eng.Name(), trial)
			}
		}
	}
}

// TestMismatchedLabelsNeverHang: arbitrary divergent label sequences are
// detected (either label mismatch, superstep mismatch, or deadlock), never
// a hang.
func TestMismatchedLabelsNeverHang(t *testing.T) {
	for _, eng := range testEngines {
		rng := rand.New(rand.NewSource(14))
		for trial := 0; trial < 40; trial++ {
			v := 1 << uint(2+rng.Intn(3))
			labelBound := Log2(v)
			// Give each VP a randomly perturbed label sequence: mostly a
			// common schedule, with one VP deviating.
			common := make([]int, 3)
			for i := range common {
				common[i] = rng.Intn(labelBound)
			}
			deviant := rng.Intn(v)
			devStep := rng.Intn(len(common))
			devLabel := rng.Intn(labelBound)
			if devLabel == common[devStep] {
				devLabel = (devLabel + 1) % labelBound
			}
			done := make(chan error, 1)
			go func() {
				_, err := RunOpt(v, func(vp *VP[int]) {
					for s, lab := range common {
						if vp.ID() == deviant && s == devStep {
							lab = devLabel
						}
						vp.Sync(lab)
					}
				}, Options{Engine: eng})
				done <- err
			}()
			select {
			case err := <-done:
				if err == nil {
					t.Fatalf("%s trial %d: divergent labels not detected", eng.Name(), trial)
				}
			case <-time.After(10 * time.Second):
				t.Fatalf("%s trial %d: divergent labels caused a hang", eng.Name(), trial)
			}
		}
	}
}

// TestManyVPsStress: a larger machine with nontrivial traffic finishes
// correctly (exercises the barrier tree under contention).
func TestManyVPsStress(t *testing.T) {
	const v = 1 << 12
	sum := make([]int64, v)
	tr, err := Run(v, func(vp *VP[int64]) {
		// Three rounds of neighbor exchange at different levels.
		var acc int64
		for _, lab := range []int{LogOfV(v) - 1, 2, 0} {
			partner := vp.ID() ^ (v >> uint(lab+1))
			vp.Send(partner, int64(vp.ID()))
			vp.Sync(lab)
			if m, ok := vp.Receive(); ok {
				acc += m
			}
		}
		sum[vp.ID()] = acc
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumSupersteps() != 3 {
		t.Fatalf("supersteps = %d", tr.NumSupersteps())
	}
	for id, s := range sum {
		want := int64(id^(v>>uint(LogOfV(v)))) + int64(id^(v>>3)) + int64(id^(v>>1))
		if s != want {
			t.Fatalf("VP %d sum = %d, want %d", id, s, want)
		}
	}
}

// LogOfV is a test helper mirroring Log2 for readability.
func LogOfV(v int) int { return Log2(v) }
