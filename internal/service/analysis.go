// Package service implements nobld: a long-running HTTP service that
// answers network-oblivious analysis queries.  One oblivious
// specification on M(v) can be evaluated for any machine (p, σ) and
// executed on any D-BSP(p, g, ℓ) — which makes the codebase a query
// engine: "for this algorithm and input size, what does machine X cost,
// and is it near-optimal?".
//
// The service splits queries into two classes:
//
//   - closed-form analyses (theory bounds, D-BSP preset vectors) are
//     answered synchronously — they cost microseconds;
//   - simulation-backed analyses (M(v) traces, D-BSP folding, ideal-cache
//     miss counts, network-routing makespans) run through an asynchronous
//     job subsystem: a priority queue feeding a bounded worker pool, with
//     per-job cancellation and timeout, progress streamed over SSE, and a
//     process-lifetime LRU result cache with single-flight dedup of
//     identical requests.
//
// Responses reuse the schema-tagged harness.Document JSON as the wire
// format, so `nobl -format json run` output, stored result files and
// nobld responses are one format with one decoder.
package service

import (
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"strings"

	"netoblivious/alg"
	"netoblivious/internal/cachesim"
	"netoblivious/internal/core"
	"netoblivious/internal/dbsp"
	"netoblivious/internal/eval"
	"netoblivious/internal/harness"
	"netoblivious/internal/network"
	"netoblivious/internal/theory"
)

// Kind names one analysis a Request can ask for.
type Kind string

const (
	// KindBounds reports the closed-form lower and upper communication
	// bounds of the algorithm on each M(p, σ) (synchronous).
	KindBounds Kind = "bounds"
	// KindMachines reports the D-BSP preset parameter vectors and their
	// Theorem 3.4 admissibility for each requested p (synchronous).
	KindMachines Kind = "machines"
	// KindTrace executes the algorithm on M(v) and reports the measured
	// metric set (H, α, γ, ...) on each M(p, σ) (asynchronous).
	KindTrace Kind = "trace"
	// KindDBSP folds the measured trace onto the network presets and
	// reports the communication time D(n, p, g, ℓ) (asynchronous).
	KindDBSP Kind = "dbsp"
	// KindCache simulates the sequential execution of the trace under
	// ideal caches IC(M, B) and reports the miss curve (asynchronous).
	KindCache Kind = "cache"
	// KindNetwork routes cluster-confined h-relations on simulated
	// point-to-point networks and compares the makespan against the
	// D-BSP prediction (asynchronous; algorithm-independent).
	KindNetwork Kind = "network"
)

// Kinds lists every analysis kind, synchronous first.
func Kinds() []Kind {
	return []Kind{KindBounds, KindMachines, KindTrace, KindDBSP, KindCache, KindNetwork}
}

// Sync reports whether the kind is answered inline (closed-form) rather
// than through the job subsystem.
func (k Kind) Sync() bool { return k == KindBounds || k == KindMachines }

// MachineSpec selects one evaluation machine M(p, σ).
type MachineSpec struct {
	P     int     `json:"p"`
	Sigma float64 `json:"sigma"`
}

// RequestSchema tags the analyze request JSON; bump on breaking changes.
const RequestSchema = "nobld/analyze/v1"

// Request is one analysis query.
type Request struct {
	// Algorithm is a registry name (see GET /v1/algorithms).  Required
	// for every kind except "machines" and "network".
	Algorithm string `json:"algorithm,omitempty"`
	// N is the input size.  Required whenever Algorithm is.
	N int `json:"n,omitempty"`
	// Kind selects the analysis; default "trace".
	Kind Kind `json:"kind,omitempty"`
	// Engine overrides the server's configured execution engine for this
	// request ("goroutine", "block", "replay"); empty uses the server
	// default.  Unknown names are rejected with 400 enumerating the
	// selectable engines.
	Engine string `json:"engine,omitempty"`
	// Machines lists the evaluation machines M(p, σ).  Empty means a
	// default sweep: powers of two up to min(v, 64) at σ ∈ {0, 16}
	// (for "machines"/"network"/"dbsp", the largest p of the sweep).
	Machines []MachineSpec `json:"machines,omitempty"`
	// Topology selects the simulated network family for kind "network"
	// (ring, torus2d, torus3d, hypercube, fattree); empty means the full
	// suite of families valid at the requested p.
	Topology string `json:"topology,omitempty"`
	// Strategy selects the routing strategy for kind "network":
	// "shortest-path" (default) or "valiant".
	Strategy string `json:"strategy,omitempty"`
	// Seed seeds randomized routing strategies; 0 means a fixed default,
	// so identical requests stay cacheable.
	Seed int64 `json:"seed,omitempty"`
	// Priority orders queued jobs: higher runs first (FIFO within a
	// priority).  Synchronous kinds ignore it.
	Priority int `json:"priority,omitempty"`
	// Wait makes POST /v1/analyze block until an asynchronous analysis
	// completes, returning the document instead of a job reference.
	Wait bool `json:"wait,omitempty"`
}

// normalize fills defaults and validates what can be validated without
// running anything.
func (r *Request) normalize() error {
	if r.Kind == "" {
		r.Kind = KindTrace
	}
	valid := false
	for _, k := range Kinds() {
		if r.Kind == k {
			valid = true
		}
	}
	if !valid {
		return fmt.Errorf("unknown kind %q (have %v)", r.Kind, Kinds())
	}
	if r.Engine != "" {
		if _, err := core.EngineByName(r.Engine); err != nil {
			return fmt.Errorf("unknown engine %q (have %s)", r.Engine, strings.Join(core.EngineNames(), ", "))
		}
	}
	needsAlg := r.Kind != KindMachines && r.Kind != KindNetwork
	if needsAlg {
		if r.Algorithm == "" {
			return fmt.Errorf("kind %q needs an algorithm (see /v1/algorithms)", r.Kind)
		}
		a, ok := alg.ByName(r.Algorithm)
		if !ok {
			return fmt.Errorf("unknown algorithm %q (see /v1/algorithms)", r.Algorithm)
		}
		// Reject invalid sizes before any job is queued: the typed
		// SizeError carries the algorithm's size doc to the client.  The
		// n >= 2 floor only backstops descriptors with permissive
		// predicates (a trace at n < 2 folds onto no machine).
		if err := a.ValidSize(r.N); err != nil {
			return err
		}
		if r.N < 2 {
			return fmt.Errorf("kind %q needs n >= 2", r.Kind)
		}
	}
	for _, m := range r.Machines {
		if m.P < 2 || m.P&(m.P-1) != 0 {
			return fmt.Errorf("machine p=%d must be a power of two >= 2", m.P)
		}
		if m.Sigma < 0 || math.IsNaN(m.Sigma) || math.IsInf(m.Sigma, 0) {
			return fmt.Errorf("machine sigma=%v must be finite and nonnegative", m.Sigma)
		}
	}
	if r.Kind != KindNetwork && (r.Topology != "" || r.Strategy != "" || r.Seed != 0) {
		return fmt.Errorf("topology/strategy/seed only apply to kind %q", KindNetwork)
	}
	if r.Kind == KindNetwork {
		p := r.maxMachineP(0)
		if r.Topology != "" {
			if _, err := network.TopologyByName(r.Topology, p); err != nil {
				return fmt.Errorf("at p=%d: %v", p, err)
			}
		}
		if r.Strategy != "" {
			if _, err := network.RouterByName(r.Strategy, 0); err != nil {
				return err
			}
		}
		if r.Seed < 0 {
			return fmt.Errorf("seed must be nonnegative, got %d", r.Seed)
		}
	}
	return nil
}

// Key is the canonical cache/dedup key of the request: every field that
// changes the answer, and nothing else (Priority and Wait are delivery
// concerns).  The engine is included by the caller (Server.requestKey)
// since it is server configuration, not request data.
func (r Request) Key() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s/%s/n=%d", r.Kind, r.Algorithm, r.N)
	for _, m := range r.Machines {
		fmt.Fprintf(&sb, "/p=%d,s=%g", m.P, m.Sigma)
	}
	if r.Topology != "" || r.Strategy != "" || r.Seed != 0 {
		fmt.Fprintf(&sb, "/topo=%s,strat=%s,seed=%d", r.Topology, r.Strategy, r.Seed)
	}
	return sb.String()
}

// machines resolves the request's machine list against the specification
// width v (0 = unbounded, for kinds that do not run a trace).  An
// explicit list is only filtered; use machinesWithin when the caller
// must surface dropped entries instead of silently shrinking the grid.
func (r Request) machines(v int) []MachineSpec {
	kept, _, err := r.machinesWithin(v)
	if err != nil {
		return nil
	}
	return kept
}

// machinesWithin splits the request's machine list into the machines
// that fit the specification width v and those that do not (p > v).  An
// explicit list with no fitting machine is an error — answering with
// machines the client never asked for would be worse than refusing.
// With no explicit list it returns the default sweep: powers of two up
// to min(v, 64) at σ ∈ {0, 16}.
func (r Request) machinesWithin(v int) (kept, dropped []MachineSpec, err error) {
	if len(r.Machines) > 0 {
		for _, m := range r.Machines {
			if v == 0 || m.P <= v {
				kept = append(kept, m)
			} else {
				dropped = append(dropped, m)
			}
		}
		if len(kept) == 0 {
			return nil, nil, fmt.Errorf("no requested machine fits the specification: every p exceeds v=%d", v)
		}
		return kept, dropped, nil
	}
	maxP := 64
	if v > 0 && v < maxP {
		maxP = v
	}
	for _, sigma := range []float64{0, 16} {
		for p := 2; p <= maxP; p *= 2 {
			kept = append(kept, MachineSpec{P: p, Sigma: sigma})
		}
	}
	return kept, nil, nil
}

// droppedNote renders the machines a trace-bounded analysis had to skip.
func droppedNote(dropped []MachineSpec, v int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "skipped machines exceeding the specification width v=%d:", v)
	for _, m := range dropped {
		fmt.Fprintf(&sb, " p=%d", m.P)
	}
	return sb.String()
}

// maxMachineP returns the largest p of the resolved machine list.
func (r Request) maxMachineP(v int) int {
	p := 2
	for _, m := range r.machines(v) {
		if m.P > p {
			p = m.P
		}
	}
	return p
}

// progressFunc receives coarse progress stages of a running analysis.
type progressFunc func(stage, detail string)

func (p progressFunc) emit(stage, detail string) {
	if p != nil {
		p(stage, detail)
	}
}

// runAnalysis computes the document for one request.  It is the single
// entry point the synchronous path and the job workers share; ctx bounds
// every simulation it triggers.
func (s *Server) runAnalysis(ctx context.Context, req Request, progress progressFunc) (*harness.Document, error) {
	var results []*harness.Result
	var err error
	switch req.Kind {
	case KindBounds:
		results, err = s.analyzeBounds(req)
	case KindMachines:
		results, err = analyzeMachines(req)
	case KindTrace:
		results, err = s.analyzeTrace(ctx, req, progress)
	case KindDBSP:
		results, err = s.analyzeDBSP(ctx, req, progress)
	case KindCache:
		results, err = s.analyzeCache(ctx, req, progress)
	case KindNetwork:
		results, err = analyzeNetwork(ctx, req, progress)
	default:
		err = fmt.Errorf("unknown kind %q", req.Kind)
	}
	if err != nil {
		return nil, err
	}
	doc := &harness.Document{
		Schema: harness.DocumentSchema,
		Engine: s.engineFor(req).Name(),
		Records: []harness.Record{{
			ID:      string(req.Kind),
			Title:   recordTitle(req),
			Results: results,
		}},
	}
	return doc, nil
}

func recordTitle(req Request) string {
	switch req.Kind {
	case KindMachines:
		return "D-BSP preset parameter vectors"
	case KindNetwork:
		return "network routing vs D-BSP prediction"
	default:
		return fmt.Sprintf("%s analysis of %s at n=%d", req.Kind, req.Algorithm, req.N)
	}
}

// boundsFor maps a registry algorithm to its closed-form (lower,
// predicted) communication bounds on M(p, σ).  The bool result reports
// whether the paper provides closed forms for the algorithm.
func boundsFor(alg string, n float64, p int, sigma float64) (lower, predicted float64, ok bool) {
	switch alg {
	case "matmul":
		return theory.LowerBoundMM(n, p, sigma), theory.PredictedMM(n, p, sigma), true
	case "matmul-space":
		return theory.LowerBoundMMSpace(n, p, sigma), theory.PredictedMMSpace(n, p, sigma), true
	case "fft":
		return theory.LowerBoundFFT(n, p, sigma), theory.PredictedFFT(n, p, sigma), true
	case "fft-iterative":
		return theory.LowerBoundFFT(n, p, sigma), theory.PredictedIterativeFFT(n, p, sigma), true
	case "sort":
		return theory.LowerBoundSort(n, p, sigma), theory.PredictedSort(n, p, sigma), true
	case "bitonic":
		return theory.LowerBoundSort(n, p, sigma), theory.PredictedBitonic(n, p, sigma), true
	case "stencil1":
		return theory.LowerBoundStencil(n, 1, p, sigma), theory.PredictedStencil1(n, p, sigma), true
	case "stencil2":
		return theory.LowerBoundStencil(n, 2, p, sigma), theory.PredictedStencil2(n, p, sigma), true
	case "broadcast-tree":
		return theory.LowerBoundBroadcast(p, sigma), theory.PredictedBroadcastAware(p, sigma), true
	default:
		return 0, 0, false
	}
}

// analyzeBounds builds the closed-form bound table.
func (s *Server) analyzeBounds(req Request) ([]*harness.Result, error) {
	res := &harness.Result{
		ID:       string(KindBounds),
		Title:    fmt.Sprintf("closed-form bounds for %s at n=%d", req.Algorithm, req.N),
		PaperRef: "§4 lower bounds and theorems",
		Columns:  []string{"p", "sigma", "lower H", "predicted H", "pred/lower"},
	}
	n := float64(req.N)
	worst := 0.0
	for _, m := range req.machines(0) {
		lower, pred, ok := boundsFor(req.Algorithm, n, m.P, m.Sigma)
		if !ok {
			res.Notes = append(res.Notes,
				fmt.Sprintf("no closed-form bounds for %q; run a trace analysis instead", req.Algorithm))
			return []*harness.Result{res}, nil
		}
		ratio := math.Inf(1)
		if lower > 0 {
			ratio = pred / lower
		}
		if ratio > worst && !math.IsInf(ratio, 0) {
			worst = ratio
		}
		res.AddRow(m.P, m.Sigma, lower, pred, ratio)
	}
	res.AddCheck("predicted within polylog of lower bound", true,
		"worst predicted/lower ratio %.2f over %d machines (unit constants)", worst, len(res.Rows))
	return []*harness.Result{res}, nil
}

// analyzeMachines builds the preset parameter-vector table for each
// distinct requested p.
func analyzeMachines(req Request) ([]*harness.Result, error) {
	seen := map[int]bool{}
	var ps []int
	for _, m := range req.machines(0) {
		if !seen[m.P] {
			seen[m.P] = true
			ps = append(ps, m.P)
		}
	}
	sort.Ints(ps)
	// Largest machine only for the default sweep: the per-level vectors
	// of nested p's repeat as suffixes.
	if len(req.Machines) == 0 && len(ps) > 0 {
		ps = ps[len(ps)-1:]
	}
	var out []*harness.Result
	for _, p := range ps {
		out = append(out, harness.PresetsResult(p))
	}
	return out, nil
}

// algRun pulls the request's specification run from the shared trace
// cache (recorded form only when the analysis needs message pairs).
func (s *Server) algRun(ctx context.Context, req Request, recorded bool) (harness.AlgRun, error) {
	eng := s.engineFor(req)
	if recorded {
		return s.traces.GetRecorded(ctx, eng, req.Algorithm, req.N)
	}
	return s.traces.Get(ctx, eng, req.Algorithm, req.N)
}

// analyzeTrace runs the algorithm and measures every requested machine.
func (s *Server) analyzeTrace(ctx context.Context, req Request, progress progressFunc) ([]*harness.Result, error) {
	progress.emit("tracing", fmt.Sprintf("%s n=%d on %s", req.Algorithm, req.N, s.engineFor(req).Name()))
	run, err := s.algRun(ctx, req, false)
	if err != nil {
		return nil, err
	}
	tr := run.Trace
	machines, dropped, err := req.machinesWithin(tr.V)
	if err != nil {
		return nil, err
	}
	// One pass over the supersteps builds the O(log²v) FoldSummary; every
	// machine of the grid is then measured from it without touching the
	// steps again.
	fs, err := tr.Summary()
	if err != nil {
		return nil, err
	}
	progress.emit("measuring", fmt.Sprintf("v=%d, %d supersteps, %d messages", tr.V, fs.NumSupersteps(), fs.TotalMessages()))
	res := &harness.Result{
		ID:       string(KindTrace),
		Title:    fmt.Sprintf("measured metrics of %s at n=%d (v=%d)", req.Algorithm, req.N, tr.V),
		PaperRef: "Eq. 1; Def. 3.2; Def. 5.2",
		Columns:  []string{"p", "sigma", "H(n,p,sigma)", "msg load", "supersteps", "alpha", "gamma"},
	}
	folding := true
	for _, m := range machines {
		pt := eval.MeasureSummary(fs, m.P, m.Sigma)
		res.AddRow(pt.P, pt.Sigma, pt.H, pt.MessageLoad, pt.Supersteps, pt.Alpha, pt.Gamma)
		if err := eval.CheckFoldingLemmaOf(fs, m.P); err != nil {
			folding = false
		}
	}
	res.AddCheck("folding inequality (Lemma 3.1)", folding,
		"H never shrinks under coarser folding across %d machines", len(res.Rows))
	if len(dropped) > 0 {
		res.Notes = append(res.Notes, droppedNote(dropped, tr.V))
	}
	if run.PeakEntries > 0 {
		res.Notes = append(res.Notes, fmt.Sprintf("peak per-VP matrix entries: %d", run.PeakEntries))
	}
	return []*harness.Result{res}, nil
}

// analyzeDBSP folds the measured trace on the network presets.
func (s *Server) analyzeDBSP(ctx context.Context, req Request, progress progressFunc) ([]*harness.Result, error) {
	progress.emit("tracing", fmt.Sprintf("%s n=%d on %s", req.Algorithm, req.N, s.engineFor(req).Name()))
	run, err := s.algRun(ctx, req, false)
	if err != nil {
		return nil, err
	}
	tr := run.Trace
	machines, dropped, err := req.machinesWithin(tr.V)
	if err != nil {
		return nil, err
	}
	p := 2
	for _, m := range machines {
		if m.P > p {
			p = m.P
		}
	}
	progress.emit("folding", fmt.Sprintf("onto D-BSP presets at p=%d", p))
	fs, err := tr.Summary()
	if err != nil {
		return nil, err
	}
	res := &harness.Result{
		ID:       string(KindDBSP),
		Title:    fmt.Sprintf("communication time of %s at n=%d on D-BSP presets (p=%d)", req.Algorithm, req.N, p),
		PaperRef: "Eq. 2; §2 presets",
		Columns:  []string{"network", "p", "D(n,p,g,l)", "admissible"},
	}
	for _, pr := range dbsp.Presets(p) {
		adm := "yes"
		if pr.Admissible() != nil {
			adm = "no"
		}
		res.AddRow(pr.Name, pr.P, dbsp.CommTimeSummary(fs, pr), adm)
	}
	res.AddCheck("folded on every preset", true, "%d networks at p=%d", len(res.Rows), p)
	if len(dropped) > 0 {
		res.Notes = append(res.Notes, droppedNote(dropped, tr.V))
	}
	return []*harness.Result{res}, nil
}

// cacheSweepSizes are the IC(M, B) capacities (words) of the miss curve.
var cacheSweepSizes = []int{1 << 8, 1 << 10, 1 << 12, 1 << 14, 1 << 16}

// analyzeCache simulates the folded-to-one-processor execution under
// ideal caches (the Section 6 conjecture's measurable content).
func (s *Server) analyzeCache(ctx context.Context, req Request, progress progressFunc) ([]*harness.Result, error) {
	progress.emit("tracing", fmt.Sprintf("%s n=%d (recorded) on %s", req.Algorithm, req.N, s.engineFor(req).Name()))
	run, err := s.algRun(ctx, req, true)
	if err != nil {
		return nil, err
	}
	tr := run.Trace
	const ctxWords, bWords = 8, 8
	res := &harness.Result{
		ID:       string(KindCache),
		Title:    fmt.Sprintf("ideal-cache miss curve of %s at n=%d", req.Algorithm, req.N),
		PaperRef: "§6 conjecture; Pietracaprina et al. 2006",
		Columns:  []string{"M (words)", "B (words)", "misses", "miss rate"},
	}
	// One traversal of the trace drives every cache size of the sweep
	// at once (Mattson stack simulation); cancellation is checked at
	// superstep granularity.
	progress.emit("simulating", fmt.Sprintf("IC sweep %v, single pass", cacheSweepSizes))
	cs, err := cachesim.NewCurveSim(tr.V, ctxWords, bWords, cacheSweepSizes)
	if err != nil {
		return nil, err
	}
	src := tr.Source()
	defer src.Close()
	for {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("cache analysis cancelled: %w", err)
		}
		rec, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if err := cs.Step(rec); err != nil {
			return nil, err
		}
	}
	misses := cs.Misses()
	monotone := true
	for i, m := range cacheSweepSizes {
		rate := 0.0
		if cs.Accesses() > 0 {
			rate = float64(misses[i]) / float64(cs.Accesses())
		}
		res.AddRow(m, bWords, misses[i], rate)
		if i > 0 && misses[i] > misses[i-1] {
			monotone = false
		}
	}
	res.AddCheck("misses nonincreasing in M", monotone,
		"LRU inclusion property over %d cache sizes", len(cacheSweepSizes))
	return []*harness.Result{res}, nil
}

// networkLevels picks the routed cluster levels for a p-processor
// machine: the whole machine, a mid hierarchy level, and the deepest
// (m=1, all-local) level.
func networkLevels(p int) []int {
	lp := 0
	for q := p; q > 1; q /= 2 {
		lp++
	}
	levels := []int{0}
	if lp >= 2 {
		levels = append(levels, lp/2)
	}
	levels = append(levels, lp)
	return levels
}

// defaultNetworkSeed seeds randomized strategies when the request does
// not pin one, keeping identical requests cacheable.
const defaultNetworkSeed = 7

// networkPairings resolves the request's topology selection into
// (topology, counterpart-preset) pairs: one pair for an explicit
// topology, otherwise every registered family valid at p.
func networkPairings(req Request, p int) ([]*network.Topology, []dbsp.Params, error) {
	families := network.TopologyNames()
	if req.Topology != "" {
		families = []string{req.Topology}
	}
	var topos []*network.Topology
	var prs []dbsp.Params
	for _, family := range families {
		if req.Topology == "" && !network.TopologyValid(family, p) {
			continue
		}
		topo, err := network.TopologyByName(family, p)
		if err != nil {
			return nil, nil, err
		}
		pr, err := harness.DBSPCounterpart(family, p)
		if err != nil {
			return nil, nil, err
		}
		topos = append(topos, topo)
		prs = append(prs, pr)
	}
	return topos, prs, nil
}

// analyzeNetwork routes cluster h-relations on the simulated networks
// under the requested strategy and compares the measured makespan
// against h·g_i + ℓ_i of the matching D-BSP preset.
func analyzeNetwork(ctx context.Context, req Request, progress progressFunc) ([]*harness.Result, error) {
	p := req.maxMachineP(0)
	strategy := req.Strategy
	if strategy == "" {
		strategy = network.StrategyShortestPath
	}
	seed := req.Seed
	if seed == 0 {
		seed = defaultNetworkSeed
	}
	topos, prs, err := networkPairings(req, p)
	if err != nil {
		return nil, err
	}
	res := &harness.Result{
		ID:       string(KindNetwork),
		Title:    fmt.Sprintf("routing vs D-BSP prediction at p=%d (strategy %s)", p, strategy),
		PaperRef: "E14; Euro-Par 1999; Valiant 1982",
		Columns:  []string{"network", "strategy", "level", "h", "makespan", "predicted", "ratio"},
	}
	rng := rand.New(rand.NewSource(defaultNetworkSeed))
	inBand := true
	band := 3.0
	if strategy == network.StrategyValiant {
		band = 6.0 // two phases double the distance term
	}
	for ci, topo := range topos {
		progress.emit("routing", fmt.Sprintf("%s via %s", topo.Name, strategy))
		sim := network.NewSim(topo)
		for _, level := range networkLevels(p) {
			for _, h := range []int{1, 4, 16} {
				if err := ctx.Err(); err != nil {
					return nil, fmt.Errorf("network analysis cancelled: %w", err)
				}
				router, err := network.RouterByName(strategy, seed)
				if err != nil {
					return nil, err
				}
				msgs := network.ClusterHRelation(rng, p, level, h)
				rr := sim.RouteWith(router, msgs)
				pred, ratio := 0.0, 0.0
				if level < len(prs[ci].G) {
					pred = float64(h)*prs[ci].G[level] + prs[ci].L[level]
					ratio = float64(rr.Makespan) / pred
					if ratio > band {
						inBand = false
					}
				}
				res.AddRow(topo.Name, strategy, level, h, rr.Makespan, pred, ratio)
			}
		}
	}
	res.AddCheck("makespan within constant band of h*g_i + l_i", inBand,
		"%d routed patterns across %d networks (band %.0fx, strategy %s)", len(res.Rows), len(topos), band, strategy)
	res.Notes = append(res.Notes, "level = log2 p rows are all-local (m=1 clusters): makespan 0, no D-BSP term")
	return []*harness.Result{res}, nil
}
