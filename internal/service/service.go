package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"netoblivious/alg"
	"netoblivious/internal/core"
	"netoblivious/internal/harness"
	"netoblivious/internal/network"
	"netoblivious/internal/obs"
)

// Config tunes a Server.  The zero value is usable: every field has a
// production-sane default.
type Config struct {
	// Workers is the job worker-pool size; 0 means GOMAXPROCS.
	Workers int
	// QueueLimit bounds the number of queued (not yet running) jobs;
	// enqueues beyond it are rejected with 503.  0 means 1024.
	QueueLimit int
	// CacheEntries is the LRU capacity of the result cache (completed
	// analysis documents); 0 means 512, negative means unbounded.
	CacheEntries int
	// TraceEntries is the LRU capacity of the trace cache (memoized
	// specification runs — the memory-heavy store); 0 means 64, negative
	// means unbounded.  Ignored when TraceMemBudget is set.
	TraceEntries int
	// TraceMemBudget, when positive, replaces the trace cache's
	// count-based eviction with a memory budget (bytes of estimated
	// trace footprint): least recently used runs beyond the budget spill
	// to binary files under TraceSpillDir and page back in on demand
	// instead of being recomputed.
	TraceMemBudget int64
	// TraceSpillDir is the spill directory for TraceMemBudget; empty
	// means a fresh directory under os.TempDir().  The server does not
	// remove it on shutdown.
	TraceSpillDir string
	// JobTimeout bounds each job's execution; 0 means 2 minutes.
	JobTimeout time.Duration
	// Engine is the execution engine for every specification run; nil
	// means core.DefaultEngine().
	Engine core.Engine
	// Logger receives the service's structured logs (access lines, job
	// lifecycle); nil discards them.
	Logger *slog.Logger
	// LogSample emits one access-log line per N requests (job lifecycle
	// lines are never sampled); 0 or 1 logs every request.
	LogSample int
	// Probe, when non-nil, collects a Chrome-traceable timeline of the
	// server's work: job spans, trace-store hits and compute spans, and —
	// through the store — every engine's per-superstep spans.
	Probe *obs.Probe
	// Cluster, when non-nil, makes the server one node of a sharded
	// fleet (or a cacheless router): requests whose key hashes to
	// another member are transparently forwarded to it.
	Cluster *ClusterConfig
	// AdmitQueueHigh is the admission-control high-water mark: enqueues
	// arriving while this many jobs are already queued are shed with
	// HTTP 429 and a Retry-After derived from observed queue waits.
	// Joining an in-flight duplicate is always admitted (it costs no
	// queue slot).  0 disables shedding; QueueLimit still applies as
	// the hard 503 bound.
	AdmitQueueHigh int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueLimit == 0 {
		c.QueueLimit = 1024
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 512
	} else if c.CacheEntries < 0 {
		c.CacheEntries = 0 // unbounded
	}
	if c.TraceEntries == 0 {
		c.TraceEntries = 64
	} else if c.TraceEntries < 0 {
		c.TraceEntries = 0
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 2 * time.Minute
	}
	if c.Engine == nil {
		c.Engine = core.DefaultEngine()
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.DiscardHandler)
	}
	if c.LogSample <= 0 {
		c.LogSample = 1
	}
	return c
}

// ResponseSchema tags analyze responses; bump on breaking changes.
const ResponseSchema = "nobld/response/v1"

// Response is the outcome of one analyze request.
type Response struct {
	Schema string `json:"schema"`
	// Status is "done", "queued", "running", "failed" or "cancelled".
	Status string `json:"status"`
	// Cached reports that the document was served from the result cache.
	Cached bool `json:"cached,omitempty"`
	// JobID references the asynchronous job computing the document, when
	// the request did not wait for it.
	JobID string `json:"job,omitempty"`
	// Document carries the analysis results (the PR 2 wire format).
	Document *harness.Document `json:"document,omitempty"`
	// Error is the failure message of a failed analysis.
	Error string `json:"error,omitempty"`
	// Code is the per-item HTTP status inside a batch response, so a
	// routed batch can partially succeed: some items 200, a shed shard's
	// items 429, a malformed item 400.  Single-request responses carry
	// the status on the HTTP layer instead and leave Code zero.
	Code int `json:"code,omitempty"`
	// RetryAfterSec accompanies a 429 (shed) outcome: how long the
	// client should back off, mirroring the Retry-After header.
	RetryAfterSec int `json:"retry_after_sec,omitempty"`
}

// BatchRequest is the POST /v1/analyze/batch payload.
type BatchRequest struct {
	Requests []Request `json:"requests"`
}

// BatchResponse pairs each batch entry with its response, in order.
// Succeeded and Failed count items by their per-item Code, so a caller
// can see partial success without scanning.
type BatchResponse struct {
	Schema    string     `json:"schema"`
	Succeeded int        `json:"succeeded"`
	Failed    int        `json:"failed"`
	Responses []Response `json:"responses"`
}

// JobInfo is the GET /v1/jobs/{id} payload.
type JobInfo struct {
	ID     string    `json:"id"`
	Status JobStatus `json:"status"`
	// RequestID is the correlation ID of the request that created the
	// job; requests that joined an in-flight job see the creator's ID.
	RequestID string  `json:"request_id,omitempty"`
	Request   Request `json:"request"`
	Events    []Event `json:"events"`
	// Response is present once the job is terminal.
	Response *Response `json:"response,omitempty"`
}

// AlgorithmInfo is one GET /v1/algorithms entry: the full descriptor
// metadata of the open algorithm registry.
type AlgorithmInfo struct {
	Name string `json:"name"`
	Doc  string `json:"doc"`
	// SizeDoc states the size constraint in prose; requests with an n
	// violating it are rejected with HTTP 400 before any job is queued.
	SizeDoc string `json:"size_doc,omitempty"`
	// DefaultSizes is the algorithm's suggested input-size ladder.
	DefaultSizes []int `json:"default_sizes,omitempty"`
}

// AlgorithmsResponse is the GET /v1/algorithms payload.
type AlgorithmsResponse struct {
	Schema string `json:"schema"`
	// Engine is the server's default execution engine; Engines lists
	// every engine a request may select through its "engine" field.
	Engine     string          `json:"engine"`
	Engines    []string        `json:"engines"`
	Algorithms []AlgorithmInfo `json:"algorithms"`
	Kinds      []Kind          `json:"kinds"`
	// Topologies and Strategies enumerate the network families and
	// routing strategies a kind "network" request may select.
	Topologies []string `json:"topologies"`
	Strategies []string `json:"strategies"`
}

// Server is the nobld analysis service: HTTP handlers over a priority
// job scheduler, a bounded worker pool, and two process-lifetime LRU
// caches (analysis documents and specification traces), both
// single-flight.
type Server struct {
	cfg     Config
	engine  core.Engine
	results *core.Store[*harness.Document]
	traces  *harness.TraceStore
	sched   *scheduler
	metrics *metrics
	cluster *clusterState // nil in single-node mode
	mux     *http.ServeMux
	logger  *slog.Logger
	probe   *obs.Probe
	started time.Time

	// accessSeq numbers served requests for access-log sampling.
	accessSeq atomic.Uint64

	baseCtx context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup
}

// New builds a Server and starts its worker pool.  Callers must Close
// it.  It fails only on an unusable trace-spill configuration.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	traces := harness.NewBoundedTraceStore(cfg.TraceEntries)
	if cfg.TraceMemBudget > 0 {
		dir := cfg.TraceSpillDir
		if dir == "" {
			d, err := os.MkdirTemp("", "nobld-spill-")
			if err != nil {
				return nil, fmt.Errorf("service: trace spill dir: %w", err)
			}
			dir = d
		}
		ts, err := harness.NewSpillingTraceStore(cfg.TraceMemBudget, dir)
		if err != nil {
			return nil, fmt.Errorf("service: %w", err)
		}
		traces = ts
	}
	traces.SetProbe(cfg.Probe)
	s := &Server{
		cfg:     cfg,
		engine:  cfg.Engine,
		results: core.NewBoundedStore[*harness.Document](cfg.CacheEntries),
		traces:  traces,
		sched:   newScheduler(cfg.QueueLimit, cfg.AdmitQueueHigh),
		metrics: newMetrics(),
		mux:     http.NewServeMux(),
		logger:  cfg.Logger,
		probe:   cfg.Probe,
		started: time.Now(),
	}
	s.registerGauges()
	s.baseCtx, s.stop = context.WithCancel(context.Background())
	if cfg.Cluster != nil {
		cs, err := newClusterState(s, *cfg.Cluster)
		if err != nil {
			s.stop()
			return nil, err
		}
		s.cluster = cs
		if cs != nil {
			s.registerClusterGauges()
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				cs.tracker.Run(s.baseCtx)
			}()
		}
	}
	s.routes()
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Close stops the worker pool and cancels every running job.  In-flight
// HTTP requests observe cancelled jobs rather than hanging.
func (s *Server) Close() {
	s.sched.close()
	s.stop()
	s.wg.Wait()
}

// Handler returns the HTTP handler of the service: the API mux wrapped
// in the observability middleware (request-ID propagation and sampled
// access logging).
func (s *Server) Handler() http.Handler { return s.withObservability(s.mux) }

// ctxKeyRequestID keys the per-request correlation ID in the request
// context.
type ctxKeyRequestID struct{}

// requestIDFrom returns the request's correlation ID, or "" outside a
// served request.
func requestIDFrom(ctx context.Context) string {
	rid, _ := ctx.Value(ctxKeyRequestID{}).(string)
	return rid
}

// statusWriter records the response status for the access log.  It
// forwards Flush so SSE streaming keeps working through the wrapper.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// withObservability assigns every request a correlation ID — the
// client's X-Request-ID when present, a fresh one otherwise — echoes it
// on the response, threads it through the context (jobs started by the
// request inherit it), and writes a sampled structured access line.
func (s *Server) withObservability(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rid := r.Header.Get("X-Request-ID")
		if rid == "" {
			rid = obs.NewRequestID()
		}
		w.Header().Set("X-Request-ID", rid)
		ctx := context.WithValue(r.Context(), ctxKeyRequestID{}, rid)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, r.WithContext(ctx))
		if n := s.accessSeq.Add(1); s.cfg.LogSample <= 1 || n%uint64(s.cfg.LogSample) == 1 {
			s.logger.Info("request",
				"request_id", rid,
				"method", r.Method,
				"path", r.URL.Path,
				"status", sw.status,
				"dur_ms", ms(time.Since(start)))
		}
	})
}

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	s.mux.HandleFunc("POST /v1/analyze/batch", s.handleBatch)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	s.mux.HandleFunc("GET /v1/algorithms", s.handleAlgorithms)
	s.mux.HandleFunc("GET /v1/cluster", s.handleCluster)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
}

// engineFor resolves the effective execution engine of a request: its
// own engine override when set (normalize already validated the name),
// the server's configured engine otherwise.
func (s *Server) engineFor(req Request) core.Engine {
	if req.Engine == "" {
		return s.engine
	}
	eng, err := core.EngineByName(req.Engine)
	if err != nil {
		return s.engine // unreachable after normalize; fail safe
	}
	return eng
}

// requestKey namespaces the request's semantic key by the engine, since
// the engine is part of what was executed.  It coincides with routeKey:
// the local cache key and the cluster placement key are the same string,
// which is what makes a forwarded miss land in the owner's cache under
// the identity the whole fleet agrees on.
func (s *Server) requestKey(req Request) string {
	return routeKey(req, s.engineFor(req).Name())
}

// apiError is the JSON error body of every non-2xx response.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

// HealthResponse is the GET /healthz payload: liveness plus enough
// build and runtime identity to tell *which* binary answered.
type HealthResponse struct {
	Status     string  `json:"status"`
	Engine     string  `json:"engine"`
	Version    string  `json:"version"`
	GoVersion  string  `json:"go_version"`
	UptimeSec  float64 `json:"uptime_sec"`
	Gomaxprocs int     `json:"gomaxprocs"`
	Workers    int     `json:"workers"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:     "ok",
		Engine:     s.engine.Name(),
		Version:    obs.BuildVersion(),
		GoVersion:  runtime.Version(),
		UptimeSec:  time.Since(s.started).Seconds(),
		Gomaxprocs: runtime.GOMAXPROCS(0),
		Workers:    s.cfg.Workers,
	})
}

func (s *Server) handleAlgorithms(w http.ResponseWriter, r *http.Request) {
	s.metrics.countRequest("algorithms")
	resp := AlgorithmsResponse{
		Schema:     "nobld/algorithms/v1",
		Engine:     s.engine.Name(),
		Engines:    core.EngineNames(),
		Kinds:      Kinds(),
		Topologies: network.TopologyNames(),
		Strategies: network.RouterNames(),
	}
	for _, a := range alg.All() {
		resp.Algorithms = append(resp.Algorithms, AlgorithmInfo{
			Name:         a.Name,
			Doc:          a.Doc,
			SizeDoc:      a.SizeDoc,
			DefaultSizes: a.DefaultSizes(),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	s.metrics.countRequest("analyze")
	var req Request
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	resp, status := s.analyze(r.Context(), req, isForwarded(r))
	if status == http.StatusTooManyRequests && resp.RetryAfterSec > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(resp.RetryAfterSec))
	}
	writeJSON(w, status, resp)
}

// isForwarded reports whether the request already crossed one
// forwarding hop; such requests are always served locally.
func isForwarded(r *http.Request) bool {
	return r.Header.Get(headerForwarded) != ""
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.metrics.countRequest("batch")
	var batch BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&batch); err != nil {
		writeError(w, http.StatusBadRequest, "decoding batch: %v", err)
		return
	}
	if len(batch.Requests) == 0 {
		writeError(w, http.StatusBadRequest, "batch carries no requests")
		return
	}
	out := BatchResponse{Schema: "nobld/batch/v1", Responses: make([]Response, len(batch.Requests))}
	forwarded := isForwarded(r)
	// Three lanes, so one bad or remote item never sinks the batch:
	// forwards run concurrently (each is a network round trip to its
	// owning shard), async misses are enqueued before any waiter blocks
	// so the batch's jobs spread across the worker pool, and every item
	// lands with its own per-item status code.
	type pending struct {
		idx int
		j   *job
	}
	var waits []pending
	var fwd sync.WaitGroup
	for i := range batch.Requests {
		req := batch.Requests[i]
		if err := req.normalize(); err != nil {
			out.Responses[i] = Response{Schema: ResponseSchema, Status: string(StatusFailed),
				Error: err.Error(), Code: http.StatusBadRequest}
			continue
		}
		if owner := s.routeOf(&req, forwarded); owner != "" {
			fwd.Add(1)
			go func(i int, owner string, req Request) {
				defer fwd.Done()
				resp, status := s.cluster.forward(owner, req)
				resp.Code = status
				out.Responses[i] = resp
			}(i, owner, req)
			continue
		}
		if resp, status := s.analyzeStart(r.Context(), &req); resp != nil {
			resp.Code = status
			out.Responses[i] = *resp
			continue
		}
		j, resp, status := s.startJob(r.Context(), req)
		if j == nil {
			resp.Code = status
			out.Responses[i] = *resp
			continue
		}
		if req.Wait {
			waits = append(waits, pending{idx: i, j: j})
		} else {
			out.Responses[i] = Response{Schema: ResponseSchema, Status: string(jobStatus(j)),
				JobID: j.id, Code: http.StatusAccepted}
		}
	}
	for _, p := range waits {
		resp := s.awaitJob(r.Context(), p.j)
		resp.Code = http.StatusOK
		out.Responses[p.idx] = resp
	}
	fwd.Wait()
	for i := range out.Responses {
		if out.Responses[i].Code >= 400 {
			out.Failed++
		} else {
			out.Succeeded++
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// analyze serves one request and returns its response plus HTTP status.
func (s *Server) analyze(ctx context.Context, req Request, forwarded bool) (Response, int) {
	if err := req.normalize(); err != nil {
		return Response{Schema: ResponseSchema, Status: string(StatusFailed), Error: err.Error()}, http.StatusBadRequest
	}
	if owner := s.routeOf(&req, forwarded); owner != "" {
		return s.cluster.forward(owner, req)
	}
	if resp, status := s.analyzeStart(ctx, &req); resp != nil {
		return *resp, status
	}
	j, resp, status := s.startJob(ctx, req)
	if j == nil {
		return *resp, status
	}
	if req.Wait {
		return s.awaitJob(ctx, j), http.StatusOK
	}
	return Response{Schema: ResponseSchema, Status: string(jobStatus(j)), JobID: j.id}, http.StatusAccepted
}

// analyzeStart handles validation, synchronous kinds and cache hits; a
// nil response means the caller must start (or join) a job.  Routing
// happens before this point — a request reaching analyzeStart is served
// by this node.
func (s *Server) analyzeStart(ctx context.Context, req *Request) (*Response, int) {
	if err := req.normalize(); err != nil {
		return &Response{Schema: ResponseSchema, Status: string(StatusFailed), Error: err.Error()}, http.StatusBadRequest
	}
	if req.Kind.Sync() {
		start := time.Now()
		doc, err := s.runAnalysis(ctx, *req, nil)
		s.metrics.observeLatency(req.Algorithm, time.Since(start))
		if err != nil {
			return &Response{Schema: ResponseSchema, Status: string(StatusFailed), Error: err.Error()}, http.StatusInternalServerError
		}
		return &Response{Schema: ResponseSchema, Status: string(StatusDone), Document: doc}, http.StatusOK
	}
	if doc, err, ok := s.results.Peek(s.requestKey(*req)); ok {
		if err != nil {
			return &Response{Schema: ResponseSchema, Status: string(StatusFailed), Cached: true, Error: err.Error()}, http.StatusInternalServerError
		}
		return &Response{Schema: ResponseSchema, Status: string(StatusDone), Cached: true, Document: doc}, http.StatusOK
	}
	return nil, 0
}

// startJob enqueues (or joins) the job computing req's key.  A created
// job inherits the request's correlation ID; a joined one keeps the ID
// of the request that created it (the job ran for that one).  A nil job
// comes back with the rejection response and its HTTP status: 429 with
// a Retry-After when admission control shed the request, 503 when the
// hard queue bound rejected it.
func (s *Server) startJob(ctx context.Context, req Request) (*job, *Response, int) {
	rid := requestIDFrom(ctx)
	j, created, err := s.sched.enqueue(s.requestKey(req), req, rid)
	if err != nil {
		s.metrics.jobsRejected.Add(1)
		s.logger.Warn("job rejected", "request_id", rid, "error", err.Error())
		resp := &Response{Schema: ResponseSchema, Status: string(StatusFailed), Error: err.Error()}
		if errors.Is(err, errShed) {
			resp.RetryAfterSec = s.metrics.retryAfterSec()
			s.metrics.countShed("queue")
			return nil, resp, http.StatusTooManyRequests
		}
		return nil, resp, http.StatusServiceUnavailable
	}
	if created {
		j.publish("queued", fmt.Sprintf("priority=%d", req.Priority))
		s.logger.Info("job queued",
			"job", j.id,
			"request_id", j.requestID,
			"kind", string(j.req.Kind),
			"algorithm", j.req.Algorithm,
			"n", j.req.N,
			"priority", j.req.Priority)
	}
	return j, nil, 0
}

// awaitJob blocks until the job finishes or the request context is
// cancelled; in the latter case the job keeps running and the caller
// gets its reference.
func (s *Server) awaitJob(ctx context.Context, j *job) Response {
	select {
	case <-j.done:
		_, _, resp := j.snapshot()
		if resp != nil {
			return *resp
		}
		return Response{Schema: ResponseSchema, Status: string(StatusFailed), Error: "job finished without a response"}
	case <-ctx.Done():
		return Response{Schema: ResponseSchema, Status: string(jobStatus(j)), JobID: j.id}
	}
}

func jobStatus(j *job) JobStatus {
	st, _, _ := j.snapshot()
	return st
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	s.metrics.countRequest("jobs")
	j, ok := s.sched.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	status, events, resp := j.snapshot()
	writeJSON(w, http.StatusOK, JobInfo{ID: j.id, Status: status, RequestID: j.requestID, Request: j.req, Events: events, Response: resp})
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	s.metrics.countRequest("jobs")
	j, ok := s.sched.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	s.cancelJob(j)
	status, _, resp := j.snapshot()
	writeJSON(w, http.StatusOK, JobInfo{ID: j.id, Status: status, RequestID: j.requestID, Request: j.req, Response: resp})
}

// handleJobEvents streams the job's progress as server-sent events: every
// past event, then live ones, ending with the terminal status event.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	s.metrics.countRequest("events")
	j, ok := s.sched.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	writeEvent := func(ev Event) {
		data, _ := json.Marshal(ev)
		fmt.Fprintf(w, "event: progress\ndata: %s\n\n", data)
	}
	past, live := j.subscribe()
	for _, ev := range past {
		writeEvent(ev)
	}
	flusher.Flush()
	if live != nil {
		defer j.unsubscribe(live)
		for {
			select {
			case ev, open := <-live:
				if !open {
					// Terminal: the final status event is already in the
					// log (published before close), but it may have raced
					// past this subscriber — re-emit from the snapshot.
					_, events, _ := j.snapshot()
					for _, e := range events {
						if e.Seq > lastSeq(past) {
							writeEvent(e)
							past = append(past, e)
						}
					}
					flusher.Flush()
					s.writeSSEDone(w, flusher, j)
					return
				}
				writeEvent(ev)
				past = append(past, ev)
				flusher.Flush()
			case <-r.Context().Done():
				return
			case <-s.baseCtx.Done():
				return
			}
		}
	}
	s.writeSSEDone(w, flusher, j)
}

func lastSeq(events []Event) int {
	if len(events) == 0 {
		return 0
	}
	return events[len(events)-1].Seq
}

// writeSSEDone emits the closing "done" SSE frame carrying the job's
// terminal status.
func (s *Server) writeSSEDone(w http.ResponseWriter, flusher http.Flusher, j *job) {
	status, _, _ := j.snapshot()
	fmt.Fprintf(w, "event: done\ndata: %q\n\n", string(status))
	flusher.Flush()
}
