package service

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"netoblivious/internal/harness"
)

func copyBody(dst io.Writer, resp *http.Response) (int64, error) {
	return io.Copy(dst, resp.Body)
}

// newTestServer starts a Server over httptest and returns a client bound
// to it.  Cleanup closes both.
func newTestServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	c := NewClient(ts.URL)
	c.HTTPClient = ts.Client()
	return srv, c
}

func TestHealthAndAlgorithms(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 2})
	ctx := context.Background()
	if err := c.Health(ctx); err != nil {
		t.Fatal(err)
	}
	algs, err := c.Algorithms(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(algs.Algorithms) != len(harness.TraceAlgorithms()) {
		t.Errorf("algorithms listed %d, registry has %d", len(algs.Algorithms), len(harness.TraceAlgorithms()))
	}
	if len(algs.Kinds) != len(Kinds()) {
		t.Errorf("kinds listed %d, want %d", len(algs.Kinds), len(Kinds()))
	}
}

func TestSynchronousKinds(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()
	resp, err := c.Analyze(ctx, Request{Algorithm: "fft", N: 1024, Kind: KindBounds})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != "done" || resp.Document == nil {
		t.Fatalf("bounds response: %+v", resp)
	}
	if resp.Document.Schema != harness.DocumentSchema {
		t.Errorf("document schema %q", resp.Document.Schema)
	}
	if len(resp.Document.Records) != 1 || len(resp.Document.Records[0].Results) == 0 {
		t.Fatal("bounds document carries no results")
	}
	if rows := len(resp.Document.Records[0].Results[0].Rows); rows == 0 {
		t.Error("bounds grid is empty")
	}

	resp, err = c.Analyze(ctx, Request{Kind: KindMachines, Machines: []MachineSpec{{P: 16}}})
	if err != nil {
		t.Fatal(err)
	}
	res := resp.Document.Records[0].Results[0]
	if got := len(res.Rows); got != 6*4 { // 6 presets × log2(16) levels
		t.Errorf("machines grid has %d rows, want 24", got)
	}
}

func TestValidationErrors(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()
	cases := []Request{
		{Algorithm: "no-such", N: 64, Kind: KindTrace},
		{Algorithm: "fft", N: 0, Kind: KindTrace},
		{Algorithm: "fft", N: 64, Kind: Kind("bogus")},
		{Algorithm: "fft", N: 64, Kind: KindTrace, Machines: []MachineSpec{{P: 3}}},
	}
	for _, req := range cases {
		if _, err := c.Analyze(ctx, req); err == nil {
			t.Errorf("request %+v accepted, want validation error", req)
		}
	}
}

func TestAsyncJobLifecycleAndSSE(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 2})
	ctx := context.Background()
	resp, err := c.Analyze(ctx, Request{Algorithm: "fft", N: 512, Kind: KindTrace})
	if err != nil {
		t.Fatal(err)
	}
	if resp.JobID == "" {
		t.Fatalf("async analyze returned no job id: %+v", resp)
	}
	var stages []string
	info, err := c.WaitJob(ctx, resp.JobID, func(ev Event) { stages = append(stages, ev.Stage) })
	if err != nil {
		t.Fatal(err)
	}
	if info.Status != StatusDone {
		t.Fatalf("job finished %s: %+v", info.Status, info.Response)
	}
	if info.Response == nil || info.Response.Document == nil {
		t.Fatal("terminal job carries no document")
	}
	joined := strings.Join(stages, ",")
	for _, want := range []string{"queued", "started", "tracing", "done"} {
		if !strings.Contains(joined, want) {
			t.Errorf("SSE stream missing stage %q (got %s)", want, joined)
		}
	}
	// The document is the PR 2 wire format: re-encode/decode round-trips.
	res := info.Response.Document.Records[0].Results[0]
	if len(res.Rows) == 0 || len(res.Checks) == 0 {
		t.Error("trace analysis produced no rows/checks")
	}
}

func TestWaitInlineAndCaching(t *testing.T) {
	srv, c := newTestServer(t, Config{Workers: 2})
	ctx := context.Background()
	req := Request{Algorithm: "sort", N: 256, Kind: KindTrace, Wait: true}
	resp, err := c.Analyze(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != "done" || resp.Document == nil {
		t.Fatalf("wait=true response: %+v", resp)
	}
	if resp.Cached {
		t.Error("first request claims cached")
	}
	resp2, err := c.Analyze(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !resp2.Cached || resp2.Document == nil {
		t.Fatalf("second request not served from cache: %+v", resp2)
	}
	st := srv.results.Stats()
	if st.Misses != 1 || st.Hits < 1 {
		t.Errorf("result cache stats %+v, want exactly 1 miss", st)
	}
}

// TestTraceMemBudgetSpills runs trace analyses under a 1-byte trace
// memory budget: every specification run spills to disk, later analyses
// of the same key page it back in, and the answers match the
// unconstrained server's.
func TestTraceMemBudgetSpills(t *testing.T) {
	dir := t.TempDir()
	srv, c := newTestServer(t, Config{Workers: 2, TraceMemBudget: 1, TraceSpillDir: dir})
	_, cRef := newTestServer(t, Config{Workers: 2})
	ctx := context.Background()
	for _, kind := range []Kind{KindTrace, KindDBSP, KindTrace} {
		req := Request{Algorithm: "fft", N: 64, Kind: kind, Wait: true}
		resp, err := c.Analyze(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Status != "done" || resp.Document == nil {
			t.Fatalf("%s under spill budget: %+v", kind, resp)
		}
		ref, err := cRef.Analyze(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := len(resp.Document.Records), len(ref.Document.Records); got != want {
			t.Fatalf("%s: %d records under budget, %d without", kind, got, want)
		}
	}
	st, ok := srv.traces.SpillStats()
	if !ok {
		t.Fatal("budgeted server is not using a spilling trace store")
	}
	if st.Spills < 1 {
		t.Errorf("spills = %d, want >= 1 under a 1-byte budget", st.Spills)
	}
	snap := srv.metricsSnapshot(srv.metrics.reg.Snapshot())
	if snap.Spill == nil {
		t.Error("metrics snapshot missing trace_spill section")
	}
}

// TestEveryAlgorithmEveryAsyncKind exercises the full registry surface
// the service exposes: every algorithm through trace analysis, plus every
// async kind for one algorithm.
func TestEveryAlgorithmEveryAsyncKind(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry sweep is slow")
	}
	_, c := newTestServer(t, Config{Workers: 4, JobTimeout: 2 * time.Minute})
	ctx := context.Background()
	ns := map[string]int{
		"matmul": 256, "matmul-space": 256,
		"stencil1": 64, "stencil2": 16,
	}
	var reqs []Request
	for _, a := range harness.TraceAlgorithms() {
		n, ok := ns[a.Name]
		if !ok {
			n = 256
		}
		reqs = append(reqs, Request{Algorithm: a.Name, N: n, Kind: KindTrace, Wait: true})
	}
	for _, kind := range []Kind{KindDBSP, KindCache, KindNetwork} {
		reqs = append(reqs, Request{Algorithm: "fft", N: 256, Kind: kind, Wait: true, Machines: []MachineSpec{{P: 16}}})
	}
	resps, err := c.AnalyzeBatch(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, resp := range resps {
		if resp.Status != "done" || resp.Document == nil {
			t.Errorf("request %d (%s %s): status %s err %q", i, reqs[i].Kind, reqs[i].Algorithm, resp.Status, resp.Error)
		}
	}
}

// TestNetworkTopologyStrategySelection is an acceptance criterion of the
// routing-engine PR: the network analysis is steerable per request — any
// registered topology family and routing strategy, end to end through
// POST /v1/analyze.
func TestNetworkTopologyStrategySelection(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 2})
	ctx := context.Background()
	for _, tc := range []struct{ topology, strategy string }{
		{"fattree", "valiant"},
		{"torus3d", "shortest-path"},
		{"hypercube", "valiant"},
	} {
		req := Request{
			Kind: KindNetwork, Wait: true,
			Topology: tc.topology, Strategy: tc.strategy, Seed: 11,
			Machines: []MachineSpec{{P: 64}},
		}
		resp, err := c.Analyze(ctx, req)
		if err != nil {
			t.Fatalf("%s/%s: %v", tc.topology, tc.strategy, err)
		}
		if resp.Status != "done" || resp.Document == nil {
			t.Fatalf("%s/%s: %+v", tc.topology, tc.strategy, resp)
		}
		res := resp.Document.Records[0].Results[0]
		if len(res.Rows) == 0 {
			t.Fatalf("%s/%s: empty grid", tc.topology, tc.strategy)
		}
		// Every row names the requested topology family and strategy.
		for _, row := range res.Rows {
			if !strings.Contains(row[0].Str, tc.topology[:4]) {
				t.Errorf("row topology %q does not match requested %q", row[0].Str, tc.topology)
			}
			if row[1].Str != tc.strategy {
				t.Errorf("row strategy %q, want %q", row[1].Str, tc.strategy)
			}
		}
		for _, check := range res.Checks {
			if !check.Pass {
				t.Errorf("%s/%s: failed check %s (%s)", tc.topology, tc.strategy, check.Name, check.Detail)
			}
		}
	}
	// The registry is discoverable.
	algs, err := c.Algorithms(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(algs.Topologies) != 5 || len(algs.Strategies) != 2 {
		t.Errorf("algorithms response lists %v / %v", algs.Topologies, algs.Strategies)
	}
	// Distinct strategies are distinct cache entries: the valiant run
	// above must not shadow a shortest-path run of the same grid.
	base := Request{Kind: KindNetwork, Wait: true, Machines: []MachineSpec{{P: 64}}, Topology: "hypercube"}
	spResp, err := c.Analyze(ctx, base)
	if err != nil {
		t.Fatal(err)
	}
	if spResp.Cached {
		t.Error("shortest-path run shadowed by the valiant cache entry")
	}
}

// TestNetworkValidation: unknown or size-invalid topology/strategy
// selections fail fast with 400s, and the fields are rejected on
// non-network kinds.
func TestNetworkValidation(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()
	cases := []Request{
		{Kind: KindNetwork, Topology: "moebius"},
		{Kind: KindNetwork, Strategy: "hot-potato"},
		{Kind: KindNetwork, Topology: "torus3d", Machines: []MachineSpec{{P: 16}}}, // 16 is not a cube
		{Kind: KindNetwork, Seed: -3},
		{Kind: KindTrace, Algorithm: "fft", N: 256, Topology: "ring"},
		{Kind: KindBounds, Algorithm: "fft", N: 256, Strategy: "valiant"},
	}
	for _, req := range cases {
		if _, err := c.Analyze(ctx, req); err == nil {
			t.Errorf("request %+v accepted, want validation error", req)
		}
	}
}

// TestBatchRepeatFullyCached is an acceptance criterion: a repeated batch
// request is answered entirely from cache, verified via the metrics
// counters.
func TestBatchRepeatFullyCached(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 4})
	ctx := context.Background()
	batch := []Request{
		{Algorithm: "fft", N: 256, Kind: KindTrace, Wait: true},
		{Algorithm: "sort", N: 256, Kind: KindTrace, Wait: true},
		{Algorithm: "prefix-tree", N: 256, Kind: KindDBSP, Wait: true, Machines: []MachineSpec{{P: 16}}},
	}
	first, err := c.AnalyzeBatch(ctx, batch)
	if err != nil {
		t.Fatal(err)
	}
	for i, resp := range first {
		if resp.Status != "done" {
			t.Fatalf("batch entry %d failed: %+v", i, resp)
		}
	}
	before, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	second, err := c.AnalyzeBatch(ctx, batch)
	if err != nil {
		t.Fatal(err)
	}
	for i, resp := range second {
		if resp.Status != "done" || !resp.Cached {
			t.Errorf("repeated batch entry %d not cached: %+v", i, resp)
		}
	}
	after, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if misses := after.Results.Misses - before.Results.Misses; misses != 0 {
		t.Errorf("repeated batch caused %d cache misses, want 0", misses)
	}
	if hits := after.Results.Hits - before.Results.Hits; hits != int64(len(batch)) {
		t.Errorf("repeated batch recorded %d hits, want %d", hits, len(batch))
	}
}

// TestConcurrentCachedLoad is the headline acceptance criterion: >= 500
// concurrent /v1/analyze requests for one cached key, hit rate > 95%,
// no races (run under -race in CI).
func TestConcurrentCachedLoad(t *testing.T) {
	srv, c := newTestServer(t, Config{Workers: 4})
	ctx := context.Background()
	req := Request{Algorithm: "fft", N: 256, Kind: KindTrace}
	// Prime the key.
	prime := req
	prime.Wait = true
	if resp, err := c.Analyze(ctx, prime); err != nil || resp.Status != "done" {
		t.Fatalf("priming failed: %+v, %v", resp, err)
	}

	const clients = 500
	var wg sync.WaitGroup
	var ok, cached atomic.Int64
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := c.Analyze(ctx, req)
			if err != nil {
				errs <- err
				return
			}
			if resp.Status == "done" && resp.Document != nil {
				ok.Add(1)
			}
			if resp.Cached {
				cached.Add(1)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent analyze failed: %v", err)
	}
	if ok.Load() != clients {
		t.Fatalf("only %d/%d requests completed with a document", ok.Load(), clients)
	}
	if cached.Load() != clients {
		t.Errorf("only %d/%d requests were served from cache", cached.Load(), clients)
	}
	st := srv.results.Stats()
	if rate := st.HitRate(); rate <= 0.95 {
		t.Errorf("cache hit rate %.3f, want > 0.95 (%+v)", rate, st)
	}
	snap, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Results.HitRate <= 0.95 {
		t.Errorf("/metrics hit rate %.3f, want > 0.95", snap.Results.HitRate)
	}
	if snap.Requests["analyze"] < clients {
		t.Errorf("request counter %d < %d", snap.Requests["analyze"], clients)
	}
}

// TestSingleFlightDedupOfInflightRequests: concurrent identical requests
// while the key is cold produce exactly one job and one computation.
func TestSingleFlightDedupOfInflightRequests(t *testing.T) {
	srv, c := newTestServer(t, Config{Workers: 2})
	ctx := context.Background()
	req := Request{Algorithm: "bitonic", N: 1024, Kind: KindTrace, Wait: true}
	const clients = 24
	var wg sync.WaitGroup
	ids := make([]string, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := c.Analyze(ctx, req)
			if err != nil {
				t.Errorf("analyze: %v", err)
				return
			}
			if resp.Status != "done" || resp.Document == nil {
				t.Errorf("response %d: %+v", i, resp)
			}
		}(i)
	}
	wg.Wait()
	_ = ids
	if misses := srv.results.Stats().Misses; misses != 1 {
		t.Errorf("computation ran %d times for one key, want 1", misses)
	}
	if done := srv.metrics.jobsDone.Value(); done != 1 {
		t.Errorf("%d jobs completed for one key, want 1 (dedup broken)", done)
	}
}

// TestJobCancellation cancels a running job and asserts it terminates
// quickly with cancelled status and does not poison the cache.
func TestJobCancellation(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()
	// sort at n=4096 runs for seconds here: long enough to cancel.
	resp, err := c.Analyze(ctx, Request{Algorithm: "sort", N: 4096, Kind: KindTrace})
	if err != nil {
		t.Fatal(err)
	}
	if resp.JobID == "" {
		t.Fatalf("no job id: %+v", resp)
	}
	// Give the worker a moment to start, then cancel.
	time.Sleep(20 * time.Millisecond)
	if _, err := c.CancelJob(ctx, resp.JobID); err != nil {
		t.Fatal(err)
	}
	waitCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	info, err := c.WaitJob(waitCtx, resp.JobID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.Status != StatusCancelled && info.Status != StatusDone {
		t.Fatalf("cancelled job finished %s", info.Status)
	}
	if info.Status == StatusDone {
		t.Skip("job completed before the cancel landed")
	}
	// The key must not be poisoned: a fresh identical request succeeds.
	resp2, err := c.Analyze(ctx, Request{Algorithm: "sort", N: 4096, Kind: KindTrace, Wait: true})
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Status != "done" || resp2.Document == nil {
		t.Fatalf("post-cancel request: %+v", resp2)
	}
}

// TestJobTimeout: a job exceeding the configured timeout fails with a
// deadline error instead of running forever.
func TestJobTimeout(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1, JobTimeout: 30 * time.Millisecond})
	ctx := context.Background()
	resp, err := c.Analyze(ctx, Request{Algorithm: "sort", N: 4096, Kind: KindTrace})
	if err != nil {
		t.Fatal(err)
	}
	waitCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	info, err := c.WaitJob(waitCtx, resp.JobID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.Status == StatusDone {
		t.Skip("host fast enough to beat a 30ms timeout")
	}
	if info.Status != StatusFailed {
		t.Fatalf("timed-out job finished %s", info.Status)
	}
	if info.Response == nil || !strings.Contains(info.Response.Error, "deadline") {
		t.Errorf("timeout error not surfaced: %+v", info.Response)
	}
}

// TestQueueLimitRejects: enqueues beyond the bound are rejected and
// counted.
func TestQueueLimitRejects(t *testing.T) {
	srv, c := newTestServer(t, Config{Workers: 1, QueueLimit: 1})
	ctx := context.Background()
	// Occupy the single worker and fill the queue of one.
	distinct := []Request{
		{Algorithm: "sort", N: 4096, Kind: KindTrace},
		{Algorithm: "fft", N: 1024, Kind: KindTrace},
		{Algorithm: "bitonic", N: 1024, Kind: KindTrace},
		{Algorithm: "prefix-tree", N: 1024, Kind: KindTrace},
		{Algorithm: "broadcast-tree", N: 1024, Kind: KindTrace},
	}
	rejected := 0
	for _, req := range distinct {
		if _, err := c.Analyze(ctx, req); err != nil {
			if !strings.Contains(err.Error(), "queue full") {
				t.Fatalf("unexpected error: %v", err)
			}
			rejected++
		}
	}
	if rejected == 0 {
		t.Error("no request was rejected by a queue of capacity 1")
	}
	if srv.metrics.jobsRejected.Value() == 0 {
		t.Error("rejections not counted")
	}
}

// TestPriorityOrdering: the scheduler pops by priority (higher first),
// FIFO within a priority.
func TestPriorityOrdering(t *testing.T) {
	sched := newScheduler(0, 0)
	keys := []struct {
		key string
		pri int
	}{
		{"a", 0}, {"b", 5}, {"c", 5}, {"d", 9},
	}
	for _, k := range keys {
		if _, created, err := sched.enqueue(k.key, Request{Priority: k.pri}, ""); err != nil || !created {
			t.Fatalf("enqueue %s: created=%v err=%v", k.key, created, err)
		}
	}
	var got []string
	for range keys {
		got = append(got, sched.next().key)
	}
	want := "d,b,c,a"
	if joined := strings.Join(got, ","); joined != want {
		t.Errorf("pop order %s, want %s", joined, want)
	}
	// Dedup: re-enqueueing an in-flight key joins the existing job.
	j1, created, _ := sched.enqueue("x", Request{}, "")
	if !created {
		t.Fatal("fresh key not created")
	}
	j2, created, _ := sched.enqueue("x", Request{}, "")
	if created || j1 != j2 {
		t.Error("in-flight dedup did not return the existing job")
	}
	// A joining duplicate with higher priority raises the queued job so
	// the joiner is not stuck behind the original's priority.
	y, _, _ := sched.enqueue("y", Request{Priority: 1}, "")
	sched.enqueue("z", Request{Priority: 5}, "")
	if _, created, _ := sched.enqueue("y", Request{Priority: 9}, ""); created {
		t.Fatal("duplicate treated as fresh")
	}
	if first := sched.next(); first != y {
		t.Errorf("pop after priority bump = %s, want the raised job %s", first.key, y.key)
	}
}

// TestJobRetentionBounded: terminal jobs are evicted beyond the
// retention bound, so the id registry cannot grow forever in a
// long-running daemon; live jobs are never evicted.
func TestJobRetentionBounded(t *testing.T) {
	sched := newScheduler(0, 0)
	sched.retention = 3
	for i := 0; i < 10; i++ {
		j, _, err := sched.enqueue(string(rune('a'+i)), Request{}, "")
		if err != nil {
			t.Fatal(err)
		}
		sched.next()
		sched.release(j)
		j.finish(StatusDone, &Response{})
		sched.retire(j)
	}
	sched.mu.Lock()
	kept := len(sched.jobs)
	sched.mu.Unlock()
	if kept != 3 {
		t.Errorf("registry keeps %d terminal jobs, want 3", kept)
	}
	// The most recent ids survive, the oldest are gone.
	if _, ok := sched.lookup("j00000010"); !ok {
		t.Error("newest job evicted")
	}
	if _, ok := sched.lookup("j00000001"); ok {
		t.Error("oldest job not evicted")
	}
}

func TestMetricsTextFormat(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()
	if _, err := c.Analyze(ctx, Request{Algorithm: "fft", N: 256, Kind: KindBounds}); err != nil {
		t.Fatal(err)
	}
	resp, err := c.http().Get(c.BaseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := new(strings.Builder)
	if _, err := copyBody(buf, resp); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	for _, want := range []string{"nobld_requests_total", "nobld_cache_hits_total", "nobld_queue_depth", "nobld_latency_ms_bucket"} {
		if !strings.Contains(body, want) {
			t.Errorf("text metrics missing %q", want)
		}
	}
}

// TestSizeValidationRejectsEarly is an acceptance check of the algorithm
// API: a request whose n violates the algorithm's size constraint is
// rejected with HTTP 400 before any job is queued, and the error body
// carries the algorithm's size doc so the client can self-correct.
func TestSizeValidationRejectsEarly(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1})
	post := func(body string) (int, string) {
		t.Helper()
		resp, err := http.Post(c.BaseURL+"/v1/analyze", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		if _, err := copyBody(&sb, resp); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, sb.String()
	}
	// matmul needs the square of a power of two; 6 is neither.
	status, body := post(`{"algorithm":"matmul","n":6,"kind":"trace","wait":true}`)
	if status != http.StatusBadRequest {
		t.Fatalf("invalid size: status %d, want 400 (body %s)", status, body)
	}
	a, ok := harness.TraceAlgorithmByName("matmul")
	if !ok {
		t.Fatal("matmul missing from registry")
	}
	if !strings.Contains(body, a.SizeDoc) {
		t.Errorf("400 body does not carry the size doc %q: %s", a.SizeDoc, body)
	}
	// No job may have been queued or run for the rejected request.
	if running, done := jobCounts(t, c); running+done != 0 {
		t.Errorf("rejected request left jobs behind (running %d, done %d)", running, done)
	}
	// The smallest invalid sizes get the same typed treatment (the
	// generic n >= 2 floor must not shadow the size doc).
	status, body = post(`{"algorithm":"matmul","n":1,"kind":"trace","wait":true}`)
	if status != http.StatusBadRequest || !strings.Contains(body, a.SizeDoc) {
		t.Errorf("n=1: status %d body %s, want 400 with the size doc", status, body)
	}
	// The same n on an algorithm that accepts it goes through.
	status, body = post(`{"algorithm":"fft","n":8,"kind":"trace","wait":true}`)
	if status != http.StatusOK {
		t.Errorf("valid size: status %d (body %s)", status, body)
	}
}

// jobCounts reads the scheduler's running/done job counters via the
// metrics endpoint.
func jobCounts(t *testing.T, c *Client) (running, done int) {
	t.Helper()
	snap, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return int(snap.Jobs.Running), int(snap.Jobs.Done)
}
