package service

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"netoblivious/internal/harness"
)

// JobStatus is the lifecycle state of an asynchronous analysis.
type JobStatus string

const (
	StatusQueued    JobStatus = "queued"
	StatusRunning   JobStatus = "running"
	StatusDone      JobStatus = "done"
	StatusFailed    JobStatus = "failed"
	StatusCancelled JobStatus = "cancelled"
)

// Terminal reports whether the status is final.
func (s JobStatus) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCancelled
}

// Event is one progress notification of a job, streamed over SSE and
// kept in the job's event log.
type Event struct {
	// Seq is the 1-based index of the event in the job's log.
	Seq int `json:"seq"`
	// Stage is a coarse phase name ("queued", "tracing", "done", ...).
	Stage string `json:"stage"`
	// Detail elaborates the stage.
	Detail string `json:"detail,omitempty"`
	// RequestID correlates the event with the request that created the
	// job, so an SSE consumer can tie progress back to its access logs.
	RequestID string `json:"request_id,omitempty"`
}

// job is one queued/running/finished asynchronous analysis.
type job struct {
	id        string
	key       string // request cache key; "" once detached from dedup
	req       Request
	requestID string // correlation ID of the creating request
	priority  int    // guarded by the scheduler lock while queued
	seq       uint64 // enqueue order, breaks priority ties FIFO
	idx       int    // heap index while queued, -1 once popped

	cancel context.CancelCauseFunc

	mu              sync.Mutex
	status          JobStatus
	events          []Event
	subs            map[chan Event]struct{}
	resp            *Response // terminal outcome
	cancelRequested bool      // a DELETE landed; honored even mid-pop
	created         time.Time

	done chan struct{} // closed when status turns terminal
}

// publish appends an event and fans it out to the subscribers.  Slow
// subscribers lose events rather than block the worker: SSE progress is
// advisory, the authoritative log is the job's event slice.
func (j *job) publish(stage, detail string) {
	j.mu.Lock()
	ev := Event{Seq: len(j.events) + 1, Stage: stage, Detail: detail, RequestID: j.requestID}
	j.events = append(j.events, ev)
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
	j.mu.Unlock()
}

// subscribe returns a snapshot of the past events and a channel carrying
// the future ones (nil when the job is already terminal).
func (j *job) subscribe() ([]Event, chan Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	past := append([]Event(nil), j.events...)
	if j.status.Terminal() {
		return past, nil
	}
	ch := make(chan Event, 64)
	j.subs[ch] = struct{}{}
	return past, ch
}

func (j *job) unsubscribe(ch chan Event) {
	j.mu.Lock()
	delete(j.subs, ch)
	j.mu.Unlock()
}

// finish transitions the job to a terminal status exactly once.
func (j *job) finish(status JobStatus, resp *Response) bool {
	j.mu.Lock()
	if j.status.Terminal() {
		j.mu.Unlock()
		return false
	}
	j.status = status
	j.resp = resp
	j.mu.Unlock()
	j.publish(string(status), "")
	j.mu.Lock()
	for ch := range j.subs {
		close(ch)
	}
	j.subs = map[chan Event]struct{}{}
	j.mu.Unlock()
	close(j.done)
	return true
}

func (j *job) snapshot() (JobStatus, []Event, *Response) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status, append([]Event(nil), j.events...), j.resp
}

// jobQueue is a priority queue: higher Priority first, FIFO within equal
// priorities (by enqueue sequence).
type jobQueue []*job

func (q jobQueue) Len() int { return len(q) }
func (q jobQueue) Less(a, b int) bool {
	if q[a].priority != q[b].priority {
		return q[a].priority > q[b].priority
	}
	return q[a].seq < q[b].seq
}
func (q jobQueue) Swap(a, b int) {
	q[a], q[b] = q[b], q[a]
	q[a].idx = a
	q[b].idx = b
}

func (q *jobQueue) Push(x any) {
	j := x.(*job)
	j.idx = len(*q)
	*q = append(*q, j)
}

func (q *jobQueue) Pop() any {
	old := *q
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	j.idx = -1
	*q = old[:n-1]
	return j
}

// scheduler owns the queue, the dedup index and the bounded registry of
// recent jobs.
type scheduler struct {
	mu        sync.Mutex
	cond      *sync.Cond
	queue     jobQueue
	inflight  map[string]*job // request key -> queued/running job
	jobs      map[string]*job // id -> job, bounded by retention
	retired   []string        // terminal job ids, oldest first
	retention int             // max terminal jobs kept for GET /v1/jobs/{id}
	nextSeq   uint64
	nextID    uint64
	closed    bool
	limit     int
	admitHigh int // shed threshold; 0 disables admission control
}

// defaultJobRetention bounds how many finished jobs stay queryable.  A
// terminal job holds its response document; without a bound the id
// registry would be the one structure in the daemon that still grows
// forever (results are answered by the LRU cache, so old job records
// are pure history).
const defaultJobRetention = 1024

func newScheduler(limit, admitHigh int) *scheduler {
	s := &scheduler{
		inflight:  map[string]*job{},
		jobs:      map[string]*job{},
		retention: defaultJobRetention,
		limit:     limit,
		admitHigh: admitHigh,
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// retire records a terminal job and evicts the oldest terminal jobs
// beyond the retention bound.  Queued/running jobs are never evicted —
// they are reachable from the queue and the dedup index.
func (s *scheduler) retire(j *job) {
	s.mu.Lock()
	s.retired = append(s.retired, j.id)
	for len(s.retired) > s.retention {
		delete(s.jobs, s.retired[0])
		s.retired = s.retired[1:]
	}
	s.mu.Unlock()
}

// errQueueFull is returned when the bounded queue rejects an enqueue.
var errQueueFull = errors.New("job queue full")

// errShed marks an admission-control rejection: the queue crossed the
// high-water mark and the server asks the client to retry later (429 +
// Retry-After) rather than pile on.  Distinct from errQueueFull, the
// hard bound that still answers 503.
var errShed = errors.New("server saturated, retry later")

// enqueue registers a new job for key, or returns the already queued or
// running job computing the same key (single-flight dedup of identical
// in-flight requests).  created reports which happened.
func (s *scheduler) enqueue(key string, req Request, requestID string) (j *job, created bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false, errors.New("service shutting down")
	}
	if existing, ok := s.inflight[key]; ok {
		// A higher-priority duplicate raises the queued job so the
		// joining caller is not stuck behind the original's priority.
		if existing.idx >= 0 && req.Priority > existing.priority {
			existing.priority = req.Priority
			heap.Fix(&s.queue, existing.idx)
		}
		return existing, false, nil
	}
	// Admission order matters: dedup joins are checked first (they cost
	// no queue slot and must always be admitted — a shed here would
	// break single-flight), then the soft shed mark, then the hard bound.
	if s.admitHigh > 0 && len(s.queue) >= s.admitHigh {
		return nil, false, errShed
	}
	if s.limit > 0 && len(s.queue) >= s.limit {
		return nil, false, errQueueFull
	}
	s.nextID++
	s.nextSeq++
	j = &job{
		id:        fmt.Sprintf("j%08d", s.nextID),
		key:       key,
		req:       req,
		requestID: requestID,
		priority:  req.Priority,
		seq:       s.nextSeq,
		status:    StatusQueued,
		subs:      map[chan Event]struct{}{},
		created:   time.Now(),
		done:      make(chan struct{}),
	}
	s.inflight[key] = j
	s.jobs[j.id] = j
	heap.Push(&s.queue, j)
	s.cond.Signal()
	return j, true, nil
}

// next blocks until a job is available or the scheduler closes (nil).
func (s *scheduler) next() *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.queue) == 0 && !s.closed {
		s.cond.Wait()
	}
	if len(s.queue) == 0 {
		return nil
	}
	return heap.Pop(&s.queue).(*job)
}

// release drops the job from the dedup index, so a later identical
// request starts fresh (it will normally hit the result cache instead).
func (s *scheduler) release(j *job) {
	s.mu.Lock()
	if s.inflight[j.key] == j {
		delete(s.inflight, j.key)
	}
	s.mu.Unlock()
}

// remove is release plus eviction from the priority heap, for jobs
// cancelled while still queued: a dead entry must not keep occupying a
// bounded-queue slot (rejecting live enqueues with "queue full") until a
// worker happens to pop it.
func (s *scheduler) remove(j *job) {
	s.mu.Lock()
	if j.idx >= 0 {
		heap.Remove(&s.queue, j.idx)
	}
	if s.inflight[j.key] == j {
		delete(s.inflight, j.key)
	}
	s.mu.Unlock()
}

// lookup finds a job by id.
func (s *scheduler) lookup(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// depth returns the number of queued (not yet running) jobs.
func (s *scheduler) depth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// close wakes every worker with no work, so they exit.
func (s *scheduler) close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// errJobCancelled marks client-requested cancellation as the context
// cause, distinguishing it from the per-job timeout.
var errJobCancelled = errors.New("job cancelled by client")

// worker is the job execution loop: pop by priority, run the analysis
// under a per-job timeout, publish the outcome, feed the result cache.
// Each iteration runs the job under a context derived from the server's
// base context, so Shutdown and DELETE /jobs/{id} can stop it.
//
//nob:ctxloop
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j := s.sched.next()
		if j == nil {
			return
		}
		s.runJob(j)
	}
}

func (s *Server) runJob(j *job) {
	j.mu.Lock()
	cancelled := j.status.Terminal()
	if !cancelled {
		j.status = StatusRunning
	}
	j.mu.Unlock()
	if cancelled {
		// Cancelled while still queued; nothing to run.
		s.sched.release(j)
		return
	}
	s.metrics.jobsRunning.Add(1)
	defer s.metrics.jobsRunning.Add(-1)
	queueWait := time.Since(j.created)
	s.metrics.observeQueueWait(queueWait)
	j.publish("started", fmt.Sprintf("kind=%s algorithm=%s n=%d", j.req.Kind, j.req.Algorithm, j.req.N))
	s.logger.Info("job started",
		"job", j.id,
		"request_id", j.requestID,
		"kind", string(j.req.Kind),
		"algorithm", j.req.Algorithm,
		"n", j.req.N,
		"queue_wait_ms", ms(queueWait))

	ctx, cancelTimeout := context.WithTimeout(s.baseCtx, s.cfg.JobTimeout)
	defer cancelTimeout()
	jobCtx, cancelRun := context.WithCancelCause(ctx)
	defer cancelRun(nil)
	// Install the cancel hook and re-check for a DELETE that raced the
	// queue pop under one lock: a cancel that saw status Queued before we
	// flipped it to Running sets cancelRequested instead of finding the
	// hook, and we honor it here — the run then aborts immediately.
	j.mu.Lock()
	j.cancel = cancelRun
	if j.cancelRequested {
		cancelRun(errJobCancelled)
	}
	j.mu.Unlock()

	start := time.Now()
	probeStart := s.probe.Now()
	key := s.requestKey(j.req)
	var doc *harness.Document
	var err error
	for attempt := 0; ; attempt++ {
		doc, err = s.results.Get(key, func() (*harness.Document, error) {
			return s.runAnalysis(jobCtx, j.req, j.publish)
		})
		if !harness.IsCancellation(err) {
			break
		}
		// A cancellation describes a job, not the key: never leave it
		// memoized.  ForgetIf so a stale waiter cannot evict a fresh
		// entry another caller has already recomputed.
		s.results.ForgetIf(key, func(_ *harness.Document, err error) bool { return harness.IsCancellation(err) })
		if jobCtx.Err() != nil || attempt >= 2 {
			break // our own cancellation/timeout (or giving up): terminal
		}
		// This job was a *victim*: it shared an in-flight computation
		// with a job that was cancelled, and inherited the abort.  Its
		// own context is live, so re-run under it.
		j.publish("retrying", "shared computation was cancelled by another job")
	}
	elapsed := time.Since(start)
	s.metrics.observeLatency(j.req.Algorithm, elapsed)
	s.metrics.observeRun(s.engineFor(j.req).Name(), elapsed)
	s.sched.release(j)

	var finished bool
	switch {
	case err == nil:
		finished = j.finish(StatusDone, &Response{Schema: ResponseSchema, Status: string(StatusDone), Document: doc})
		if finished {
			s.metrics.jobsDone.Add(1)
		}
	case errors.Is(err, errJobCancelled) || errors.Is(context.Cause(jobCtx), errJobCancelled):
		finished = j.finish(StatusCancelled, &Response{Schema: ResponseSchema, Status: string(StatusCancelled), Error: err.Error()})
		if finished {
			s.metrics.jobsCancelled.Add(1)
		}
	default:
		finished = j.finish(StatusFailed, &Response{Schema: ResponseSchema, Status: string(StatusFailed), Error: err.Error()})
		if finished {
			s.metrics.jobsFailed.Add(1)
		}
	}
	status, _, _ := j.snapshot()
	if s.probe != nil {
		s.probe.Span("job", string(j.req.Kind)+" "+j.req.Algorithm, 0, probeStart, map[string]any{
			"job":        j.id,
			"request_id": j.requestID,
			"status":     string(status),
		})
	}
	logAttrs := []any{
		"job", j.id,
		"request_id", j.requestID,
		"status", string(status),
		"elapsed_ms", ms(elapsed),
	}
	if err != nil {
		s.logger.Warn("job finished", append(logAttrs, "error", err.Error())...)
	} else {
		s.logger.Info("job finished", logAttrs...)
	}
	if finished {
		s.sched.retire(j)
	}
}

// cancelJob cancels a job by id: a queued job finishes immediately, a
// running one has its context cancelled and finishes when the engine
// aborts at the next superstep boundary.  The request is recorded under
// the job lock so a cancel racing the worker's queue pop is never lost —
// runJob re-checks cancelRequested right after installing its hook.
func (s *Server) cancelJob(j *job) {
	j.mu.Lock()
	status := j.status
	cancel := j.cancel
	j.cancelRequested = true
	j.mu.Unlock()
	if status.Terminal() {
		return
	}
	if cancel != nil {
		cancel(errJobCancelled)
	}
	if status == StatusQueued && cancel == nil {
		s.sched.remove(j)
		if j.finish(StatusCancelled, &Response{Schema: ResponseSchema, Status: string(StatusCancelled), Error: errJobCancelled.Error()}) {
			s.metrics.jobsCancelled.Add(1)
			s.sched.retire(j)
		}
	}
}
