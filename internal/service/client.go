package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"netoblivious/internal/cluster"
)

// Client is a typed HTTP client for a nobld daemon, used by the
// `nobl remote` mode, the cluster forwarding tier and the
// examples/service-client demo.  The zero value (plus BaseURL) is
// usable: requests go through http.DefaultClient and shed (429)
// responses are retried transparently with capped exponential backoff,
// honoring the server's Retry-After.
type Client struct {
	// BaseURL is the daemon address, e.g. "http://127.0.0.1:7413".
	BaseURL string
	// HTTPClient overrides the transport (httptest servers, timeouts).
	HTTPClient *http.Client
	// MaxRetries bounds the transparent retries of 429 (shed) responses:
	// 0 means the default (4), negative disables retrying.  Retries stop
	// early when the request context expires — the deadline always wins.
	MaxRetries int
	// RetryBase is the first backoff delay (default 250ms); subsequent
	// attempts double it.  A server Retry-After overrides the computed
	// delay.  Every delay is capped by RetryMax (default 5s).
	RetryBase time.Duration
	RetryMax  time.Duration
	// OnRetry, when non-nil, observes each retry before its backoff
	// sleep: the HTTP status that triggered it and the chosen delay.
	OnRetry func(status int, wait time.Duration)
	// Header carries extra headers applied to every request (request-ID
	// propagation, the cluster forwarding marker).
	Header http.Header
}

// NewClient returns a client for the daemon at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) maxRetries() int {
	if c.MaxRetries < 0 {
		return 0
	}
	if c.MaxRetries == 0 {
		return 4
	}
	return c.MaxRetries
}

func (c *Client) retryBase() time.Duration {
	if c.RetryBase <= 0 {
		return 250 * time.Millisecond
	}
	return c.RetryBase
}

func (c *Client) retryMax() time.Duration {
	if c.RetryMax <= 0 {
		return 5 * time.Second
	}
	return c.RetryMax
}

// backoffDelay picks the sleep before retry attempt (0-based): the
// server's Retry-After when it sent one, capped exponential backoff
// from RetryBase otherwise.
func (c *Client) backoffDelay(attempt int, retryAfter time.Duration) time.Duration {
	d := c.retryBase() << uint(attempt)
	if retryAfter > 0 {
		d = retryAfter
	}
	if max := c.retryMax(); d > max {
		d = max
	}
	return d
}

// retryAfterOf parses a Retry-After header carrying delay seconds.
func retryAfterOf(resp *http.Response) time.Duration {
	if resp == nil {
		return 0
	}
	secs, err := strconv.Atoi(strings.TrimSpace(resp.Header.Get("Retry-After")))
	if err != nil || secs <= 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// do performs one request (no retries) and returns the response with
// its body fully read.
func (c *Client) do(ctx context.Context, method, path string, body []byte) (*http.Response, []byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return nil, nil, fmt.Errorf("service client: %w", err)
	}
	for name, vals := range c.Header {
		for _, v := range vals {
			req.Header.Add(name, v)
		}
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, nil, fmt.Errorf("service client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, fmt.Errorf("service client: reading %s: %w", path, err)
	}
	return resp, data, nil
}

// doJSON performs one request and decodes the JSON response into out,
// transparently retrying shed (429) responses with capped exponential
// backoff that honors the server's Retry-After.  Non-2xx responses are
// surfaced as errors carrying the server's error message.
func (c *Client) doJSON(ctx context.Context, method, path string, body, out any) error {
	var data []byte
	if body != nil {
		var err error
		data, err = json.Marshal(body)
		if err != nil {
			return fmt.Errorf("service client: encoding request: %w", err)
		}
	}
	var resp *http.Response
	var respBody []byte
	for attempt := 0; ; attempt++ {
		var err error
		resp, respBody, err = c.do(ctx, method, path, data)
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusTooManyRequests || attempt >= c.maxRetries() {
			break
		}
		wait := c.backoffDelay(attempt, retryAfterOf(resp))
		if c.OnRetry != nil {
			c.OnRetry(resp.StatusCode, wait)
		}
		timer := time.NewTimer(wait)
		select {
		case <-ctx.Done():
			timer.Stop()
			return fmt.Errorf("service client: %s %s: shed by server, retry abandoned: %w", method, path, ctx.Err())
		case <-timer.C:
		}
	}
	if resp.StatusCode >= 400 {
		var apiErr apiError
		if json.Unmarshal(respBody, &apiErr) == nil && apiErr.Error != "" {
			return fmt.Errorf("service client: %s %s: %s (HTTP %d)", method, path, apiErr.Error, resp.StatusCode)
		}
		// Analyze endpoints carry failures inside the Response body.
		var r Response
		if json.Unmarshal(respBody, &r) == nil && r.Error != "" {
			return fmt.Errorf("service client: %s %s: %s (HTTP %d)", method, path, r.Error, resp.StatusCode)
		}
		return fmt.Errorf("service client: %s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(respBody, out); err != nil {
		return fmt.Errorf("service client: decoding %s: %w", path, err)
	}
	return nil
}

// postAnalyzeOnce submits one analyze request with no retries and no
// error mapping: the raw Response body, the HTTP status, and the
// Retry-After delay (seconds, 0 when absent).  The cluster forwarding
// tier uses it to relay an owner's verdict — including sheds — to the
// originating client unchanged.
func (c *Client) postAnalyzeOnce(ctx context.Context, req Request) (Response, int, int, error) {
	data, err := json.Marshal(req)
	if err != nil {
		return Response{}, 0, 0, fmt.Errorf("service client: encoding request: %w", err)
	}
	resp, body, err := c.do(ctx, http.MethodPost, "/v1/analyze", data)
	if err != nil {
		return Response{}, 0, 0, err
	}
	retryAfter := int(retryAfterOf(resp) / time.Second)
	var out Response
	if jsonErr := json.Unmarshal(body, &out); jsonErr != nil || out.Schema == "" {
		// A non-Response body (decode-level apiError, proxy page, ...):
		// synthesize a failed Response so the caller has one shape.
		var apiErr apiError
		msg := fmt.Sprintf("HTTP %d from %s", resp.StatusCode, c.BaseURL)
		if json.Unmarshal(body, &apiErr) == nil && apiErr.Error != "" {
			msg = apiErr.Error
		}
		out = Response{Schema: ResponseSchema, Status: string(StatusFailed), Error: msg}
	}
	return out, resp.StatusCode, retryAfter, nil
}

// Health checks the daemon's liveness.
func (c *Client) Health(ctx context.Context) error {
	return c.doJSON(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Algorithms lists the daemon's algorithm registry and analysis kinds.
func (c *Client) Algorithms(ctx context.Context) (AlgorithmsResponse, error) {
	var out AlgorithmsResponse
	err := c.doJSON(ctx, http.MethodGet, "/v1/algorithms", nil, &out)
	return out, err
}

// Cluster fetches the daemon's cluster view: mode, ring parameters,
// membership and per-peer health.  With a non-empty key, the response
// also carries the key's ownership lookup.
func (c *Client) Cluster(ctx context.Context, key string) (ClusterResponse, error) {
	path := "/v1/cluster"
	if key != "" {
		path += "?key=" + url.QueryEscape(key)
	}
	var out ClusterResponse
	err := c.doJSON(ctx, http.MethodGet, path, nil, &out)
	return out, err
}

// Analyze submits one analysis request.  With req.Wait set, the call
// blocks until the document is ready; otherwise asynchronous kinds
// return a job reference in Response.JobID.
func (c *Client) Analyze(ctx context.Context, req Request) (Response, error) {
	var out Response
	err := c.doJSON(ctx, http.MethodPost, "/v1/analyze", req, &out)
	return out, err
}

// AnalyzeBatch submits several requests in one call.  Per-item failures
// (a bad size among good requests, a shed item on a saturated shard)
// appear in the matching Response — its Status, Error and Code fields —
// while the call itself succeeds: batches partially succeed per item.
func (c *Client) AnalyzeBatch(ctx context.Context, reqs []Request) ([]Response, error) {
	var out BatchResponse
	if err := c.doJSON(ctx, http.MethodPost, "/v1/analyze/batch", BatchRequest{Requests: reqs}, &out); err != nil {
		return nil, err
	}
	return out.Responses, nil
}

// AnalyzeBatchRouted splits a batch by shard ownership and sends each
// owner its items directly, in parallel, bypassing the server-side
// forwarding hop.  The ring view comes from GET /v1/cluster; when the
// daemon is not clustered (or the view is unavailable) the whole batch
// falls back to a single AnalyzeBatch through BaseURL.  Item order is
// preserved.  Requests with no explicit engine are pinned to the
// cluster's advertised engine, since the engine is part of the routed
// key.
func (c *Client) AnalyzeBatchRouted(ctx context.Context, reqs []Request) ([]Response, error) {
	view, err := c.Cluster(ctx, "")
	if err != nil || len(view.Members) < 2 {
		return c.AnalyzeBatch(ctx, reqs)
	}
	ring, err := cluster.New(view.Seed, view.VNodes, view.Members)
	if err != nil {
		return c.AnalyzeBatch(ctx, reqs)
	}
	out := make([]Response, len(reqs))
	groups := map[string][]int{}
	routed := make([]Request, len(reqs))
	for i, req := range reqs {
		rq := req
		if err := rq.normalize(); err != nil {
			out[i] = Response{Schema: ResponseSchema, Status: string(StatusFailed), Error: err.Error(), Code: http.StatusBadRequest}
			continue
		}
		if rq.Engine == "" {
			rq.Engine = view.Engine
		}
		routed[i] = rq
		owner := ring.Owner(routeKey(rq, rq.Engine))
		groups[owner] = append(groups[owner], i)
	}
	var wg sync.WaitGroup
	for owner, idxs := range groups {
		wg.Add(1)
		go func(owner string, idxs []int) {
			defer wg.Done()
			sub := make([]Request, len(idxs))
			for i, idx := range idxs {
				sub[i] = routed[idx]
			}
			sc := c
			if owner != c.BaseURL {
				sc = &Client{
					BaseURL:    owner,
					HTTPClient: c.HTTPClient,
					MaxRetries: c.MaxRetries,
					RetryBase:  c.RetryBase,
					RetryMax:   c.RetryMax,
					OnRetry:    c.OnRetry,
					Header:     c.Header,
				}
			}
			resps, err := sc.AnalyzeBatch(ctx, sub)
			for i, idx := range idxs {
				switch {
				case err != nil:
					out[idx] = Response{Schema: ResponseSchema, Status: string(StatusFailed),
						Error: fmt.Sprintf("shard %s: %v", owner, err), Code: http.StatusBadGateway}
				case i < len(resps):
					out[idx] = resps[i]
				}
			}
		}(owner, idxs)
	}
	wg.Wait()
	return out, nil
}

// Job fetches a job's status, event log and (when terminal) response.
func (c *Client) Job(ctx context.Context, id string) (JobInfo, error) {
	var out JobInfo
	err := c.doJSON(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &out)
	return out, err
}

// CancelJob cancels a queued or running job.
func (c *Client) CancelJob(ctx context.Context, id string) (JobInfo, error) {
	var out JobInfo
	err := c.doJSON(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &out)
	return out, err
}

// Metrics fetches the JSON metrics snapshot.
func (c *Client) Metrics(ctx context.Context) (MetricsSnapshot, error) {
	var out MetricsSnapshot
	err := c.doJSON(ctx, http.MethodGet, "/metrics?format=json", nil, &out)
	return out, err
}

// StreamEvents follows a job's SSE progress stream, invoking fn for each
// event until the stream ends (job terminal, context cancelled, or
// server shutdown).  fn may be nil to just drain.
func (c *Client) StreamEvents(ctx context.Context, id string, fn func(Event)) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return fmt.Errorf("service client: %w", err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.http().Do(req)
	if err != nil {
		return fmt.Errorf("service client: events: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("service client: events: HTTP %d", resp.StatusCode)
	}
	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for scanner.Scan() {
		line := scanner.Text()
		data, ok := strings.CutPrefix(line, "data: ")
		if !ok {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(data), &ev); err != nil {
			continue // terminal "done" frames carry a bare status string
		}
		if fn != nil && ev.Stage != "" {
			fn(ev)
		}
	}
	return scanner.Err()
}

// WaitJob follows the job's event stream until it is terminal, then
// returns the job's final state.  It degrades to polling if the stream
// breaks before the terminal status lands.
func (c *Client) WaitJob(ctx context.Context, id string, fn func(Event)) (JobInfo, error) {
	_ = c.StreamEvents(ctx, id, fn) // stream errors fall through to polling
	for {
		info, err := c.Job(ctx, id)
		if err != nil {
			return JobInfo{}, err
		}
		if info.Status.Terminal() {
			return info, nil
		}
		select {
		case <-ctx.Done():
			return info, ctx.Err()
		case <-time.After(100 * time.Millisecond):
		}
	}
}
