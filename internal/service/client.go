package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client is a typed HTTP client for a nobld daemon, used by the
// `nobl remote` mode and the examples/service-client demo.  The zero
// HTTPClient means http.DefaultClient.
type Client struct {
	// BaseURL is the daemon address, e.g. "http://127.0.0.1:7413".
	BaseURL string
	// HTTPClient overrides the transport (httptest servers, timeouts).
	HTTPClient *http.Client
}

// NewClient returns a client for the daemon at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// doJSON performs one request and decodes the JSON response into out.
// Non-2xx responses are surfaced as errors carrying the server's error
// message.
func (c *Client) doJSON(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("service client: encoding request: %w", err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return fmt.Errorf("service client: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return fmt.Errorf("service client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("service client: reading %s: %w", path, err)
	}
	if resp.StatusCode >= 400 {
		var apiErr apiError
		if json.Unmarshal(data, &apiErr) == nil && apiErr.Error != "" {
			return fmt.Errorf("service client: %s %s: %s (HTTP %d)", method, path, apiErr.Error, resp.StatusCode)
		}
		// Analyze endpoints carry failures inside the Response body.
		var r Response
		if json.Unmarshal(data, &r) == nil && r.Error != "" {
			return fmt.Errorf("service client: %s %s: %s (HTTP %d)", method, path, r.Error, resp.StatusCode)
		}
		return fmt.Errorf("service client: %s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("service client: decoding %s: %w", path, err)
	}
	return nil
}

// Health checks the daemon's liveness.
func (c *Client) Health(ctx context.Context) error {
	return c.doJSON(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Algorithms lists the daemon's algorithm registry and analysis kinds.
func (c *Client) Algorithms(ctx context.Context) (AlgorithmsResponse, error) {
	var out AlgorithmsResponse
	err := c.doJSON(ctx, http.MethodGet, "/v1/algorithms", nil, &out)
	return out, err
}

// Analyze submits one analysis request.  With req.Wait set, the call
// blocks until the document is ready; otherwise asynchronous kinds
// return a job reference in Response.JobID.
func (c *Client) Analyze(ctx context.Context, req Request) (Response, error) {
	var out Response
	err := c.doJSON(ctx, http.MethodPost, "/v1/analyze", req, &out)
	return out, err
}

// AnalyzeBatch submits several requests in one call.
func (c *Client) AnalyzeBatch(ctx context.Context, reqs []Request) ([]Response, error) {
	var out BatchResponse
	if err := c.doJSON(ctx, http.MethodPost, "/v1/analyze/batch", BatchRequest{Requests: reqs}, &out); err != nil {
		return nil, err
	}
	return out.Responses, nil
}

// Job fetches a job's status, event log and (when terminal) response.
func (c *Client) Job(ctx context.Context, id string) (JobInfo, error) {
	var out JobInfo
	err := c.doJSON(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &out)
	return out, err
}

// CancelJob cancels a queued or running job.
func (c *Client) CancelJob(ctx context.Context, id string) (JobInfo, error) {
	var out JobInfo
	err := c.doJSON(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &out)
	return out, err
}

// Metrics fetches the JSON metrics snapshot.
func (c *Client) Metrics(ctx context.Context) (MetricsSnapshot, error) {
	var out MetricsSnapshot
	err := c.doJSON(ctx, http.MethodGet, "/metrics?format=json", nil, &out)
	return out, err
}

// StreamEvents follows a job's SSE progress stream, invoking fn for each
// event until the stream ends (job terminal, context cancelled, or
// server shutdown).  fn may be nil to just drain.
func (c *Client) StreamEvents(ctx context.Context, id string, fn func(Event)) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return fmt.Errorf("service client: %w", err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.http().Do(req)
	if err != nil {
		return fmt.Errorf("service client: events: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("service client: events: HTTP %d", resp.StatusCode)
	}
	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for scanner.Scan() {
		line := scanner.Text()
		data, ok := strings.CutPrefix(line, "data: ")
		if !ok {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(data), &ev); err != nil {
			continue // terminal "done" frames carry a bare status string
		}
		if fn != nil && ev.Stage != "" {
			fn(ev)
		}
	}
	return scanner.Err()
}

// WaitJob follows the job's event stream until it is terminal, then
// returns the job's final state.  It degrades to polling if the stream
// breaks before the terminal status lands.
func (c *Client) WaitJob(ctx context.Context, id string, fn func(Event)) (JobInfo, error) {
	_ = c.StreamEvents(ctx, id, fn) // stream errors fall through to polling
	for {
		info, err := c.Job(ctx, id)
		if err != nil {
			return JobInfo{}, err
		}
		if info.Status.Terminal() {
			return info, nil
		}
		select {
		case <-ctx.Done():
			return info, ctx.Err()
		case <-time.After(100 * time.Millisecond):
		}
	}
}
