package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"netoblivious/internal/core"
)

// testNode is one in-process cluster member: a Server plus the httptest
// listener advertising it.
type testNode struct {
	srv *Server
	ts  *httptest.Server
	url string
	c   *Client
}

// newTestCluster boots n nodes sharing one ring.  Construction is
// two-phase because each node's ClusterConfig needs every peer's URL
// before any Server exists: the httptest listeners come up first behind
// an atomic handler indirection (answering 503 until the real handler
// is stored), then the Servers are built against the full peer list.
func newTestCluster(t *testing.T, n int, mutate func(i int, cfg *Config)) []*testNode {
	t.Helper()
	nodes := make([]*testNode, n)
	handlers := make([]atomic.Value, n)
	for i := range nodes {
		i := i
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			h, _ := handlers[i].Load().(http.Handler)
			if h == nil {
				http.Error(w, "booting", http.StatusServiceUnavailable)
				return
			}
			h.ServeHTTP(w, r)
		}))
		nodes[i] = &testNode{ts: ts, url: ts.URL}
		t.Cleanup(ts.Close)
	}
	peers := make([]string, n)
	for i, nd := range nodes {
		peers[i] = nd.url
	}
	for i, nd := range nodes {
		cfg := Config{
			Workers: 2,
			Cluster: &ClusterConfig{
				Self:           nd.url,
				Peers:          peers,
				HealthInterval: 50 * time.Millisecond,
			},
		}
		if mutate != nil {
			mutate(i, &cfg)
		}
		srv, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		nd.srv = srv
		nd.c = NewClient(nd.url)
		handlers[i].Store(srv.Handler())
		t.Cleanup(srv.Close)
	}
	return nodes
}

// ownerIndex finds which node owns the request under the fleet's ring.
func ownerIndex(t *testing.T, nodes []*testNode, req Request) int {
	t.Helper()
	rq := req
	if err := rq.normalize(); err != nil {
		t.Fatal(err)
	}
	engine := rq.Engine
	if engine == "" {
		engine = core.DefaultEngine().Name()
	}
	owner := nodes[0].srv.cluster.ring.Owner(routeKey(rq, engine))
	for i, nd := range nodes {
		if nd.url == owner {
			return i
		}
	}
	t.Fatalf("owner %q is not one of the test nodes", owner)
	return -1
}

// requestOwnedBy searches input sizes until it finds a trace request the
// ring places on nodes[want].
func requestOwnedBy(t *testing.T, nodes []*testNode, want int) Request {
	t.Helper()
	for n := 8; n <= 4096; n *= 2 {
		for _, algo := range []string{"fft", "sort"} {
			req := Request{Algorithm: algo, N: n, Kind: KindTrace, Wait: true}
			if ownerIndex(t, nodes, req) == want {
				return req
			}
		}
	}
	t.Fatal("no probed request hashes to the wanted node")
	return Request{}
}

// TestClusterExactlyOnceCompute is the acceptance gate: 64 concurrent
// identical requests sprayed round-robin across a 3-node fleet must
// compute the trace exactly once cluster-wide.  Every node's result
// cache and job counters are summed — forwarders coalesce on their
// replica store and the owner coalesces on its single-flight job, so
// only the owner misses, once.
func TestClusterExactlyOnceCompute(t *testing.T) {
	nodes := newTestCluster(t, 3, nil)
	req := Request{Algorithm: "sort", N: 256, Kind: KindTrace, Wait: true}
	ctx := context.Background()

	const clients = 64
	var wg sync.WaitGroup
	errs := make([]error, clients)
	resps := make([]Response, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i], errs[i] = nodes[i%len(nodes)].c.Analyze(ctx, req)
		}(i)
	}
	wg.Wait()
	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		if resps[i].Status != string(StatusDone) || resps[i].Document == nil {
			t.Fatalf("client %d: status %q, document %v", i, resps[i].Status, resps[i].Document != nil)
		}
	}

	var resultMisses, traceMisses, done int64
	for _, nd := range nodes {
		resultMisses += nd.srv.results.Stats().Misses
		traceMisses += nd.srv.traces.Store().Stats().Misses
		done += nd.srv.metrics.jobsDone.Value()
	}
	if resultMisses != 1 {
		t.Errorf("summed result-cache misses = %d, want exactly 1", resultMisses)
	}
	if traceMisses != 1 {
		t.Errorf("summed trace-cache misses = %d, want exactly 1", traceMisses)
	}
	if done != 1 {
		t.Errorf("summed jobs done = %d, want exactly 1", done)
	}
}

// TestClusterForwardFromNonOwner: a request entering at a non-owner is
// forwarded to the owner, a repeat is answered from the non-owner's
// replica cache without another hop, and a request already marked
// forwarded is served locally no matter what the ring says (loop
// freedom).
func TestClusterForwardFromNonOwner(t *testing.T) {
	nodes := newTestCluster(t, 2, nil)
	ctx := context.Background()
	req := requestOwnedBy(t, nodes, 1)
	entry := nodes[0] // not the owner

	resp, err := entry.c.Analyze(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != string(StatusDone) || resp.Document == nil {
		t.Fatalf("forwarded request: status %q", resp.Status)
	}
	if m := entry.srv.results.Stats().Misses; m != 0 {
		t.Errorf("non-owner computed locally: %d result-cache misses", m)
	}
	snap, err := entry.c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Cluster == nil || snap.Cluster.Forwards[nodes[1].url] == 0 {
		t.Fatalf("no forward recorded toward the owner: %+v", snap.Cluster)
	}

	// Repeat: served from the non-owner's replica, marked cached, no
	// second forward.
	before := snap.Cluster.Forwards[nodes[1].url]
	resp2, err := entry.c.Analyze(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !resp2.Cached || resp2.Status != string(StatusDone) {
		t.Errorf("repeat not served from replica: cached=%v status=%q", resp2.Cached, resp2.Status)
	}
	snap, err = entry.c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Cluster.Forwards[nodes[1].url] != before {
		t.Errorf("replica hit still forwarded: %d -> %d", before, snap.Cluster.Forwards[nodes[1].url])
	}

	// Loop freedom: a forwarded-marked request for a non-owned key is
	// answered locally, never re-forwarded.  Node 1 already has one
	// result-cache miss from computing the forwarded request above; the
	// forwarded-marked one must add a second, locally.
	other := requestOwnedBy(t, nodes, 0)
	missesBefore := nodes[1].srv.results.Stats().Misses
	hdr := http.Header{}
	hdr.Set(headerForwarded, "1")
	fc := &Client{BaseURL: nodes[1].url, Header: hdr} // node 1 does not own `other`
	resp3, err := fc.Analyze(ctx, other)
	if err != nil {
		t.Fatal(err)
	}
	if resp3.Status != string(StatusDone) {
		t.Fatalf("forwarded-marked request: status %q", resp3.Status)
	}
	if m := nodes[1].srv.results.Stats().Misses; m != missesBefore+1 {
		t.Errorf("forwarded-marked request not computed locally: misses %d -> %d", missesBefore, m)
	}
	ownerSnap, err := nodes[1].c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ownerSnap.Cluster != nil && len(ownerSnap.Cluster.Forwards) != 0 {
		t.Errorf("forwarded-marked request was re-forwarded: %+v", ownerSnap.Cluster.Forwards)
	}
}

// TestClusterRouterMode: a cacheless router in front of two nodes
// forwards everything and keeps nothing.
func TestClusterRouterMode(t *testing.T) {
	nodes := newTestCluster(t, 2, nil)
	router, err := New(Config{
		Workers: 1,
		Cluster: &ClusterConfig{
			RouteOnly:      true,
			Peers:          []string{nodes[0].url, nodes[1].url},
			HealthInterval: 50 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(router.Handler())
	t.Cleanup(func() {
		rts.Close()
		router.Close()
	})
	rc := NewClient(rts.URL)
	ctx := context.Background()

	for _, req := range []Request{
		{Algorithm: "fft", N: 128, Kind: KindTrace, Wait: true},
		{Algorithm: "sort", N: 128, Kind: KindTrace, Wait: true},
	} {
		resp, err := rc.Analyze(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Status != string(StatusDone) || resp.Document == nil {
			t.Fatalf("routed %s: status %q", req.Algorithm, resp.Status)
		}
	}
	// Synchronous kinds stay local even on a router: they cost less
	// than the hop.
	resp, err := rc.Analyze(ctx, Request{Algorithm: "fft", N: 128, Kind: KindBounds})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != string(StatusDone) {
		t.Fatalf("sync kind on router: status %q", resp.Status)
	}
	if m := router.results.Stats().Misses + router.results.Stats().Hits; m != 0 {
		t.Errorf("router touched its result cache %d times", m)
	}
	snap, err := rc.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Cluster == nil || snap.Cluster.Mode != "router" {
		t.Fatalf("router snapshot: %+v", snap.Cluster)
	}
	var forwards int64
	for _, v := range snap.Cluster.Forwards {
		forwards += v
	}
	if forwards < 2 {
		t.Errorf("router forwarded %d requests, want >= 2", forwards)
	}
	if snap.Cluster.Replicas != nil {
		t.Error("router keeps a replica cache")
	}
}

// TestClusterEndpoint: every node serves the same membership view, all
// nodes agree on any key's owner, and peer health converges to up.
func TestClusterEndpoint(t *testing.T) {
	nodes := newTestCluster(t, 3, nil)
	ctx := context.Background()

	var owners []string
	for _, nd := range nodes {
		view, err := nd.c.Cluster(ctx, "trace/fft/n=512")
		if err != nil {
			t.Fatal(err)
		}
		if view.Schema != ClusterSchema || view.Mode != "node" {
			t.Fatalf("view: schema %q mode %q", view.Schema, view.Mode)
		}
		if len(view.Members) != 3 {
			t.Fatalf("node %s sees %d members", nd.url, len(view.Members))
		}
		if view.Ownership == nil || view.Ownership.Owner == "" {
			t.Fatalf("no ownership lookup in view from %s", nd.url)
		}
		if !strings.Contains(view.Ownership.RouteKey, "@") {
			t.Errorf("route key %q not engine-qualified", view.Ownership.RouteKey)
		}
		if view.Ownership.Local != (view.Ownership.Owner == nd.url) {
			t.Errorf("local flag disagrees with owner on %s", nd.url)
		}
		owners = append(owners, view.Ownership.Owner)
	}
	for _, o := range owners[1:] {
		if o != owners[0] {
			t.Fatalf("nodes disagree on ownership: %v", owners)
		}
	}

	// Peer health: probes against live /healthz endpoints converge to
	// healthy within a few sweeps.
	deadline := time.Now().Add(5 * time.Second)
	for {
		view, err := nodes[0].c.Cluster(ctx, "")
		if err != nil {
			t.Fatal(err)
		}
		healthy := 0
		for _, p := range view.Peers {
			if p.Healthy {
				healthy++
			}
		}
		if healthy == len(view.Peers) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("peers never converged to healthy: %+v", view.Peers)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// A single-node server reports mode "single" and local ownership.
	_, sc := newTestServer(t, Config{Workers: 1})
	view, err := sc.Cluster(ctx, "trace/fft/n=512")
	if err != nil {
		t.Fatal(err)
	}
	if view.Mode != "single" || len(view.Members) != 0 {
		t.Fatalf("single-node view: %+v", view)
	}
	if view.Ownership == nil || !view.Ownership.Local {
		t.Fatalf("single-node ownership not local: %+v", view.Ownership)
	}
}

// TestAdmission429RetryAfter saturates a 1-worker node past its
// admission high-water mark and checks both halves of the contract:
// the server answers 429 with a positive integer Retry-After, and the
// client retries transparently until the queue drains.
func TestAdmission429RetryAfter(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1, QueueLimit: 64, AdmitQueueHigh: 1})
	ctx := context.Background()

	// Occupy the worker and the queue with slow distinct jobs (sort at
	// n=4096 runs for seconds), then burst more: everything beyond the
	// high-water mark must shed.
	var jobIDs []string
	var shed *http.Response
	for i := 0; i < 6 && shed == nil; i++ {
		// Distinct cache keys via the machine list (sigma varies); the
		// size stays 4096, which sorts for seconds on this engine.
		body := fmt.Sprintf(`{"algorithm":"sort","n":4096,"kind":"trace","machines":[{"p":2,"sigma":%d}]}`, i)
		httpResp, err := http.Post(c.BaseURL+"/v1/analyze", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		switch httpResp.StatusCode {
		case http.StatusAccepted:
			var r Response
			if err := json.NewDecoder(httpResp.Body).Decode(&r); err != nil {
				t.Fatal(err)
			}
			jobIDs = append(jobIDs, r.JobID)
			httpResp.Body.Close()
		case http.StatusTooManyRequests:
			shed = httpResp
		default:
			t.Fatalf("request %d: unexpected HTTP %d", i, httpResp.StatusCode)
		}
	}
	if shed == nil {
		t.Fatal("no request was shed past the high-water mark")
	}
	retryAfter := shed.Header.Get("Retry-After")
	var r Response
	if err := json.NewDecoder(shed.Body).Decode(&r); err != nil {
		t.Fatal(err)
	}
	shed.Body.Close()
	var sec int
	if _, err := fmt.Sscanf(retryAfter, "%d", &sec); err != nil || sec < 1 {
		t.Fatalf("Retry-After %q is not a positive integer", retryAfter)
	}
	if r.RetryAfterSec != sec {
		t.Errorf("body retry_after_sec %d != header %q", r.RetryAfterSec, retryAfter)
	}

	// The client half: a retrying Analyze sees the 429, backs off, and
	// succeeds once the saturating jobs are cancelled.
	var retries atomic.Int64
	rc := &Client{
		BaseURL:    c.BaseURL,
		HTTPClient: c.HTTPClient,
		MaxRetries: 20,
		RetryBase:  50 * time.Millisecond,
		RetryMax:   100 * time.Millisecond,
		OnRetry:    func(status int, wait time.Duration) { retries.Add(1) },
	}
	done := make(chan error, 1)
	go func() {
		resp, err := rc.Analyze(ctx, Request{Algorithm: "sort", N: 64, Kind: KindTrace, Wait: true})
		if err == nil && resp.Status != string(StatusDone) {
			err = fmt.Errorf("status %q", resp.Status)
		}
		done <- err
	}()
	// Wait for at least one client-side retry before releasing the
	// queue, so the test proves the backoff path actually engaged.
	deadline := time.Now().Add(5 * time.Second)
	for retries.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if retries.Load() == 0 {
		t.Fatal("client never hit the 429 retry path")
	}
	for _, id := range jobIDs {
		if _, err := c.CancelJob(ctx, id); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("retrying client failed: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("retrying client never completed")
	}
}

// TestBatchPartialPerItemStatus: one bad item inside a batch fails with
// its own 400 code while its neighbors complete, and the counts say so.
func TestBatchPartialPerItemStatus(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 2})
	ctx := context.Background()
	resps, err := c.AnalyzeBatch(ctx, []Request{
		{Algorithm: "fft", N: 128, Kind: KindTrace, Wait: true},
		{Algorithm: "no-such-algorithm", N: 64, Kind: KindTrace},
		{Algorithm: "fft", N: 128, Kind: KindBounds},
	})
	if err != nil {
		t.Fatal(err)
	}
	wantCodes := []int{http.StatusOK, http.StatusBadRequest, http.StatusOK}
	for i, want := range wantCodes {
		if resps[i].Code != want {
			t.Errorf("item %d: code %d, want %d (status %q, error %q)", i, resps[i].Code, want, resps[i].Status, resps[i].Error)
		}
	}
	if resps[1].Error == "" || resps[1].Status != string(StatusFailed) {
		t.Errorf("bad item carries no failure: %+v", resps[1])
	}

	// The wire-level counts match the per-item codes.
	var raw BatchResponse
	body := `{"requests":[{"algorithm":"fft","n":128,"kind":"bounds"},{"algorithm":"nope","n":8}]}`
	httpResp, err := http.Post(c.BaseURL+"/v1/analyze/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	if err := json.NewDecoder(httpResp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	if raw.Succeeded != 1 || raw.Failed != 1 {
		t.Errorf("counts succeeded=%d failed=%d, want 1/1", raw.Succeeded, raw.Failed)
	}
}

// TestClusterBatchRouting: a batch entering one node fans out across
// the fleet server-side; AnalyzeBatchRouted does the same split
// client-side, skipping the forwarding hop entirely.
func TestClusterBatchRouting(t *testing.T) {
	nodes := newTestCluster(t, 3, nil)
	ctx := context.Background()
	reqs := []Request{
		{Algorithm: "fft", N: 64, Kind: KindTrace, Wait: true},
		{Algorithm: "sort", N: 64, Kind: KindTrace, Wait: true},
		{Algorithm: "fft", N: 32, Kind: KindTrace, Wait: true},
		{Algorithm: "bad", N: 64, Kind: KindTrace},
	}

	// Server-side: the batch partially succeeds item by item.
	resps, err := nodes[0].c.AnalyzeBatch(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if resps[i].Code != http.StatusOK || resps[i].Document == nil {
			t.Errorf("item %d: code %d, document %v", i, resps[i].Code, resps[i].Document != nil)
		}
	}
	if resps[3].Code != http.StatusBadRequest {
		t.Errorf("bad item: code %d, want 400", resps[3].Code)
	}

	// Client-side routing sends every item straight to its owner: no
	// node records any new server-side forward.
	var beforeForwards int64
	snapshotForwards := func() int64 {
		var total int64
		for _, nd := range nodes {
			snap, err := nd.c.Metrics(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if snap.Cluster != nil {
				for _, v := range snap.Cluster.Forwards {
					total += v
				}
			}
		}
		return total
	}
	beforeForwards = snapshotForwards()
	routed, err := nodes[0].c.AnalyzeBatchRouted(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(routed) != len(reqs) {
		t.Fatalf("routed batch returned %d responses for %d requests", len(routed), len(reqs))
	}
	for i := 0; i < 3; i++ {
		if routed[i].Status != string(StatusDone) || routed[i].Document == nil {
			t.Errorf("routed item %d: status %q", i, routed[i].Status)
		}
	}
	if routed[3].Code != http.StatusBadRequest {
		t.Errorf("routed bad item: code %d, want 400", routed[3].Code)
	}
	if after := snapshotForwards(); after != beforeForwards {
		t.Errorf("client-side routing still caused %d server-side forwards", after-beforeForwards)
	}
}
