package service

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"netoblivious/internal/cluster"
	"netoblivious/internal/core"
	"netoblivious/internal/obs"
)

// ClusterConfig turns a Server into one node of a nobld fleet (or a
// cacheless router in front of one).  Placement is oblivious in the
// paper's sense: which node answers a request depends only on the
// request key and this static configuration — never on load, history
// or any coordinator — so every node (and every routing client)
// computes the same owner independently.
type ClusterConfig struct {
	// Self is this node's advertised base URL; it must appear in Peers
	// unless RouteOnly is set.  Ignored (may be empty) for routers.
	Self string
	// Peers is the full static membership: every cache-owning node's
	// base URL, including this one.  All nodes of a fleet must be
	// configured with the same set (order does not matter).
	Peers []string
	// RouteOnly makes the server a stateless router: it owns no shard,
	// keeps no caches, and forwards every asynchronous request to the
	// owning peer.
	RouteOnly bool
	// VNodes is the virtual-node count per member; 0 means
	// cluster.DefaultVNodes.  Must match across the fleet.
	VNodes int
	// Seed seeds the ring's placement hash.  Must match across the fleet.
	Seed uint64
	// ReplicaEntries bounds the hot-entry read-through replica cache a
	// forwarding node keeps (completed documents fetched from owners);
	// 0 means 256, negative disables replication.  Routers never keep
	// replicas.
	ReplicaEntries int
	// MaxForwards bounds concurrent in-flight forwards per node; excess
	// forwards are shed with 429.  0 means 256.
	MaxForwards int
	// HealthInterval is the peer-probe cadence; 0 means
	// cluster.DefaultHealthInterval.
	HealthInterval time.Duration
}

// headerForwarded marks a request as already forwarded once.  A node
// receiving it answers locally no matter what its ring says — with a
// consistent fleet configuration the ring says "local" anyway, and with
// an inconsistent one this bound keeps disagreement from becoming a
// forwarding loop.
const headerForwarded = "X-Nobld-Forwarded"

// routeKey is the cluster-wide canonical identity of a request: its
// semantic cache key plus the engine that will execute it.  The entry
// node pins the engine before routing, so every node derives the same
// key — the invariant that makes each trace computed exactly once
// cluster-wide.
func routeKey(req Request, engine string) string {
	return req.Key() + "@" + engine
}

// forwardOutcome is a memoized forwarded verdict: the owner's response
// body and HTTP status.  Only completed documents stay memoized
// (read-through replication); everything else is forgotten right after
// delivery.
type forwardOutcome struct {
	resp   Response
	status int
}

// clusterState is the per-server cluster runtime: the ring, the peer
// clients, the health tracker, the replica cache and the forward gate.
// All fields are set at construction; only the atomics mutate.
type clusterState struct {
	self      string
	routeOnly bool
	ring      *cluster.Ring
	replicas  *core.Store[forwardOutcome] // nil for routers and ReplicaEntries < 0
	tracker   *cluster.Tracker
	clients   map[string]*Client // ring member -> forwarding client
	seed      uint64

	inFlight       atomic.Int64
	maxInFlight    int64
	forwardTimeout time.Duration
	baseCtx        context.Context
	metrics        *metrics
	logger         *slog.Logger
}

// newClusterState validates the cluster configuration and builds the
// runtime.  It returns (nil, nil) for an empty non-router peer list:
// that is plain single-node operation.
func newClusterState(s *Server, cc ClusterConfig) (*clusterState, error) {
	peers := cluster.NormalizeAddrs(cc.Peers)
	self := cluster.NormalizeAddr(cc.Self)
	if len(peers) == 0 {
		if cc.RouteOnly {
			return nil, fmt.Errorf("service: router mode needs a peer list")
		}
		return nil, nil
	}
	ring, err := cluster.New(cc.Seed, cc.VNodes, peers)
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	if !cc.RouteOnly && !ring.Contains(self) {
		return nil, fmt.Errorf("service: self %q is not one of the peers %v", self, ring.Members())
	}
	maxForwards := int64(cc.MaxForwards)
	if maxForwards <= 0 {
		maxForwards = 256
	}
	cs := &clusterState{
		self:           self,
		routeOnly:      cc.RouteOnly,
		ring:           ring,
		seed:           cc.Seed,
		maxInFlight:    maxForwards,
		forwardTimeout: s.cfg.JobTimeout + 30*time.Second,
		baseCtx:        s.baseCtx,
		metrics:        s.metrics,
		logger:         s.logger,
	}
	if !cc.RouteOnly && cc.ReplicaEntries >= 0 {
		entries := cc.ReplicaEntries
		if entries == 0 {
			entries = 256
		}
		cs.replicas = core.NewBoundedStore[forwardOutcome](entries)
	}
	probeClient := &http.Client{Timeout: 5 * time.Second}
	check := func(ctx context.Context, addr string) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/healthz", nil)
		if err != nil {
			return err
		}
		resp, err := probeClient.Do(req)
		if err != nil {
			return err
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("healthz: HTTP %d", resp.StatusCode)
		}
		return nil
	}
	var tracked []string
	cs.clients = make(map[string]*Client, ring.Size())
	for _, m := range ring.Members() {
		if m == self {
			continue
		}
		tracked = append(tracked, m)
		hdr := http.Header{}
		hdr.Set(headerForwarded, "1")
		cs.clients[m] = &Client{
			BaseURL:    m,
			HTTPClient: &http.Client{Timeout: cs.forwardTimeout},
			MaxRetries: -1, // the owner's shed verdict is relayed, not retried
			Header:     hdr,
		}
	}
	cs.tracker = cluster.NewTracker(tracked, cc.HealthInterval, check)
	return cs, nil
}

// mode names the server's cluster role for /v1/cluster and metrics.
func (c *clusterState) mode() string {
	if c == nil {
		return "single"
	}
	if c.routeOnly {
		return "router"
	}
	return "node"
}

// routeOf decides a normalized request's placement: the owning peer's
// address when the request must be forwarded, "" when it is served
// locally.  Synchronous kinds are always local (they cost microseconds;
// forwarding would cost more than answering).  The engine is pinned
// onto the request here, before the key is hashed, so the owner — whose
// default engine may differ — resolves the same key.
//
//nob:hotpath
func (s *Server) routeOf(req *Request, forwarded bool) string {
	c := s.cluster
	if c == nil || forwarded || req.Kind.Sync() {
		return ""
	}
	if req.Engine == "" {
		req.Engine = s.engine.Name()
	}
	owner := c.ring.Owner(routeKey(*req, req.Engine))
	if !c.routeOnly && owner == c.self {
		return ""
	}
	return owner
}

// forward relays a request to its owning peer.  On a non-router node
// the relay is read-through: concurrent forwards of the same key
// coalesce on the replica store's single-flight, and a completed
// document stays as a bounded local replica so the next request for a
// hot entry is answered without a network hop.  Routers forward every
// request directly.  The round trip deliberately runs under the
// server's base context, not the originating request's — see
// forwardCompute.
func (c *clusterState) forward(owner string, req Request) (Response, int) {
	if c.replicas == nil {
		return deliver(c.forwardCompute(owner, req))
	}
	key := routeKey(req, req.Engine)
	if out, err, ok := c.replicas.Peek(key); ok && err == nil {
		out.resp.Cached = true
		return out.resp, out.status
	}
	out, err := c.replicas.Get(key, func() (forwardOutcome, error) {
		return c.forwardCompute(owner, req)
	})
	// Replicate only completed documents: errors, sheds and failures
	// describe a moment, not the key, and must not be sticky.
	c.replicas.ForgetIf(key, func(o forwardOutcome, err error) bool {
		return err != nil || o.status != http.StatusOK || o.resp.Status != string(StatusDone)
	})
	return deliver(out, err)
}

// deliver maps a forward outcome (or transport error) onto the response
// the entry node returns to its client.
func deliver(out forwardOutcome, err error) (Response, int) {
	if err != nil {
		return Response{
			Schema: ResponseSchema,
			Status: string(StatusFailed),
			Error:  err.Error(),
		}, http.StatusBadGateway
	}
	return out.resp, out.status
}

// forwardCompute performs one forwarded round trip to the owner.  It
// runs under the server's base context (not the originating request's),
// so a read-through replication in flight survives its first
// requester's disconnect and still lands for the coalesced joiners.
// The request is pinned to Wait so the owner answers with the document
// itself; owner-local job IDs never leak across nodes.
func (c *clusterState) forwardCompute(owner string, req Request) (forwardOutcome, error) {
	if c.inFlight.Add(1) > c.maxInFlight {
		c.inFlight.Add(-1)
		c.metrics.countShed("forwards")
		return forwardOutcome{
			resp: Response{
				Schema:        ResponseSchema,
				Status:        string(StatusFailed),
				Error:         "too many in-flight forwards; retry later",
				RetryAfterSec: 1,
			},
			status: http.StatusTooManyRequests,
		}, nil
	}
	defer c.inFlight.Add(-1)
	cl, ok := c.clients[owner]
	if !ok {
		return forwardOutcome{}, fmt.Errorf("no client for ring member %q", owner)
	}
	ctx, cancel := context.WithTimeout(c.baseCtx, c.forwardTimeout)
	defer cancel()
	rq := req
	rq.Wait = true
	c.metrics.countForward(owner)
	resp, status, retryAfter, err := cl.postAnalyzeOnce(ctx, rq)
	if err != nil {
		c.metrics.countForwardError(owner)
		c.logger.Warn("forward failed", "peer", owner, "error", err.Error())
		return forwardOutcome{}, fmt.Errorf("forwarding to %s: %w", owner, err)
	}
	if status == http.StatusTooManyRequests && resp.RetryAfterSec == 0 {
		resp.RetryAfterSec = retryAfter
	}
	return forwardOutcome{resp: resp, status: status}, nil
}

// replicaStats exposes the replica cache's counters (zero when the node
// keeps no replicas).
func (c *clusterState) replicaStats() (CacheStats, bool) {
	if c == nil || c.replicas == nil {
		return CacheStats{}, false
	}
	return cacheStats(c.replicas), true
}

// ClusterSchema tags the GET /v1/cluster payload.
const ClusterSchema = "nobld/cluster/v1"

// PeerInfo is one peer's advisory health in the cluster view.
type PeerInfo struct {
	Addr string `json:"addr"`
	// Self marks the answering node's own entry.
	Self    bool `json:"self,omitempty"`
	Healthy bool `json:"healthy"`
	// LastSeenSec is seconds since the last successful probe; absent
	// when the peer has never answered.
	LastSeenSec float64 `json:"last_seen_sec,omitempty"`
	Error       string  `json:"error,omitempty"`
	Checks      uint64  `json:"checks"`
}

// Ownership is the ?key= lookup result: which node owns a cache key.
type Ownership struct {
	// Key is the looked-up key as given.
	Key string `json:"key"`
	// RouteKey is the engine-qualified form actually hashed.
	RouteKey string `json:"route_key"`
	Owner    string `json:"owner"`
	// Local reports whether the answering node owns the key itself.
	Local bool `json:"local"`
}

// ClusterResponse is the GET /v1/cluster payload: enough of the ring
// configuration for a client to compute ownership itself (the
// AnalyzeBatchRouted fast path), plus advisory peer health.
type ClusterResponse struct {
	Schema string `json:"schema"`
	// Mode is "single", "node" or "router".
	Mode string `json:"mode"`
	Self string `json:"self,omitempty"`
	// Engine is the node's default execution engine — the one pinned
	// onto engine-less requests before their key is hashed.
	Engine  string     `json:"engine"`
	Seed    uint64     `json:"seed"`
	VNodes  int        `json:"vnodes"`
	Members []string   `json:"members,omitempty"`
	Peers   []PeerInfo `json:"peers,omitempty"`
	// Ownership is present when the request carried ?key=.
	Ownership *Ownership `json:"ownership,omitempty"`
}

// handleCluster serves the cluster view.  It answers in every mode —
// a single-node server reports mode "single" with no members, which
// routing clients read as "just talk to me directly".
func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	s.metrics.countRequest("cluster")
	c := s.cluster
	resp := ClusterResponse{
		Schema: ClusterSchema,
		Mode:   c.mode(),
		Engine: s.engine.Name(),
	}
	if c != nil {
		resp.Self = c.self
		resp.Seed = c.seed
		resp.VNodes = c.ring.VNodes()
		resp.Members = c.ring.Members()
		for _, st := range c.tracker.Status() {
			pi := PeerInfo{Addr: st.Addr, Healthy: st.Healthy, Error: st.LastErr, Checks: st.Checks}
			if !st.LastSeen.IsZero() {
				pi.LastSeenSec = time.Since(st.LastSeen).Seconds()
			}
			resp.Peers = append(resp.Peers, pi)
		}
		if !c.routeOnly {
			resp.Peers = append(resp.Peers, PeerInfo{Addr: c.self, Self: true, Healthy: true})
		}
	}
	if key := r.URL.Query().Get("key"); key != "" {
		rk := key
		if !strings.Contains(rk, "@") {
			rk += "@" + s.engine.Name()
		}
		own := &Ownership{Key: key, RouteKey: rk}
		if c != nil {
			own.Owner = c.ring.Owner(rk)
			own.Local = !c.routeOnly && own.Owner == c.self
		} else {
			own.Local = true
		}
		resp.Ownership = own
	}
	writeJSON(w, http.StatusOK, resp)
}

// registerClusterGauges installs the cluster gauges; called from New
// once the cluster state exists.
func (s *Server) registerClusterGauges() {
	c := s.cluster
	reg := s.metrics.reg
	reg.GaugeFunc("nobld_cluster_ring_size", "cache-owning members of the consistent-hash ring",
		func() float64 { return float64(c.ring.Size()) })
	reg.GaugeFunc("nobld_cluster_peers_healthy", "peers whose last health probe succeeded",
		func() float64 { return float64(c.tracker.Healthy()) })
	reg.GaugeFunc("nobld_cluster_forwards_inflight", "forwarded requests currently in flight",
		func() float64 { return float64(c.inFlight.Load()) })
	if c.replicas != nil {
		registerCacheGauges(reg, "nobld_cluster_replica", func() CacheStats { return cacheStats(c.replicas) })
	}
}

// countForward / countForwardError / countShed are the cluster counters.
// Sheds cover both admission paths: "queue" (the scheduler's high-water
// mark) and "forwards" (the in-flight forward gate).
func (m *metrics) countForward(peer string) {
	m.reg.Counter("nobld_cluster_forwards_total", "requests forwarded to owning peers",
		obs.L("peer", peer)).Inc()
}

func (m *metrics) countForwardError(peer string) {
	m.reg.Counter("nobld_cluster_forward_errors_total", "forwarded requests that failed in transit",
		obs.L("peer", peer)).Inc()
}

func (m *metrics) countShed(reason string) {
	m.reg.Counter("nobld_cluster_sheds_total", "requests shed by admission control",
		obs.L("reason", reason)).Inc()
}
