package service

import (
	"math"
	"net/http"
	"sync/atomic"
	"time"

	"netoblivious/internal/core"
	"netoblivious/internal/harness"
	"netoblivious/internal/obs"
)

// latencyBuckets are the upper bounds (milliseconds) of the service's
// duration histograms: powers of four from 1 ms to ~4.4 min, plus +Inf.
// Analysis latencies span closed-form microseconds to multi-second
// simulation runs, so a geometric ladder keeps every regime resolvable
// with few buckets.
var latencyBuckets = []float64{1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144}

// queueWaitBuckets resolve queue waits, which sit well below run
// latencies on a healthy server: powers of four from 0.25 ms upward.
var queueWaitBuckets = []float64{0.25, 1, 4, 16, 64, 256, 1024, 4096, 16384}

// metrics is the service's metric surface: a thin façade over one
// obs.Registry, from which both /metrics renderings (Prometheus text and
// the MetricsSnapshot JSON) are derived — one snapshot, two encodings,
// so they can never disagree.  Values owned elsewhere (cache stats,
// queue depth, spill counters) are registered as gauge callbacks in
// (*Server).registerGauges rather than mirrored by writes.
type metrics struct {
	reg *obs.Registry

	jobsRunning   *obs.Gauge
	jobsDone      *obs.Counter
	jobsFailed    *obs.Counter
	jobsCancelled *obs.Counter
	jobsRejected  *obs.Counter // queue-full and shed rejections

	// queueWaitEWMA holds the float64 bits of an exponentially weighted
	// moving average of queue waits (ms); admission control derives its
	// Retry-After from it so the advice tracks the load actually observed.
	queueWaitEWMA atomic.Uint64
}

func newMetrics() *metrics {
	reg := obs.NewRegistry()
	return &metrics{
		reg:           reg,
		jobsRunning:   reg.Gauge("nobld_jobs_running", "jobs being executed by workers"),
		jobsDone:      reg.Counter("nobld_jobs_done_total", "jobs finished successfully"),
		jobsFailed:    reg.Counter("nobld_jobs_failed_total", "jobs finished with an error"),
		jobsCancelled: reg.Counter("nobld_jobs_cancelled_total", "jobs cancelled by clients or shutdown"),
		jobsRejected:  reg.Counter("nobld_jobs_rejected_total", "enqueues rejected by the bounded queue"),
	}
}

func (m *metrics) countRequest(endpoint string) {
	m.reg.Counter("nobld_requests_total", "HTTP requests by endpoint", obs.L("endpoint", endpoint)).Inc()
}

func (m *metrics) observeLatency(algorithm string, d time.Duration) {
	if algorithm == "" {
		algorithm = "none"
	}
	m.reg.Histogram("nobld_latency_ms", "end-to-end analysis latency by algorithm",
		latencyBuckets, obs.L("algorithm", algorithm)).Observe(ms(d))
}

// observeQueueWait records the time a job spent queued before a worker
// picked it up, both in the histogram and in the EWMA that prices
// Retry-After.
func (m *metrics) observeQueueWait(d time.Duration) {
	m.reg.Histogram("nobld_queue_wait_ms", "time jobs spent queued before execution",
		queueWaitBuckets).Observe(ms(d))
	for {
		old := m.queueWaitEWMA.Load()
		next := ms(d)
		if old != 0 {
			next = 0.8*math.Float64frombits(old) + 0.2*next
		}
		if m.queueWaitEWMA.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// retryAfterSec turns the observed queue-wait EWMA into the Retry-After
// a shed response advertises: roughly one average wait, clamped to
// [1, 60] seconds so the advice is neither zero (retry storm) nor
// absurd (client gives up).
func (m *metrics) retryAfterSec() int {
	ewmaMs := math.Float64frombits(m.queueWaitEWMA.Load())
	sec := int(math.Ceil(ewmaMs / 1000))
	if sec < 1 {
		sec = 1
	}
	if sec > 60 {
		sec = 60
	}
	return sec
}

// observeRun records one job execution's duration under its effective
// engine.
func (m *metrics) observeRun(engine string, d time.Duration) {
	m.reg.Histogram("nobld_run_ms", "job execution time by engine",
		latencyBuckets, obs.L("engine", engine)).Observe(ms(d))
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1e3 }

// registerGauges installs the callback-backed gauges that read server
// state live at snapshot time.  Called once from New, after the stores
// and scheduler exist.
func (s *Server) registerGauges() {
	reg := s.metrics.reg
	reg.GaugeFunc("nobld_queue_depth", "queued (not yet running) jobs",
		func() float64 { return float64(s.sched.depth()) })
	registerCacheGauges(reg, "nobld_cache", func() CacheStats { return cacheStats(s.results) })
	registerCacheGauges(reg, "nobld_trace_cache", func() CacheStats { return cacheStats(s.traces.Store()) })
	if _, ok := s.traces.SpillStats(); ok {
		spill := func(read func(harness.SpillStats) float64) func() float64 {
			return func() float64 {
				sp, _ := s.traces.SpillStats()
				return read(sp)
			}
		}
		reg.GaugeFunc("nobld_trace_spill_resident", "trace-cache runs resident in memory",
			spill(func(sp harness.SpillStats) float64 { return float64(sp.Resident) }))
		reg.GaugeFunc("nobld_trace_spill_spilled", "trace-cache runs spilled to disk",
			spill(func(sp harness.SpillStats) float64 { return float64(sp.Spilled) }))
		reg.GaugeFunc("nobld_trace_spill_used_bytes", "estimated bytes of resident spillable traces",
			spill(func(sp harness.SpillStats) float64 { return float64(sp.UsedBytes) }))
		reg.GaugeFunc("nobld_trace_spill_budget_bytes", "trace spill memory budget",
			spill(func(sp harness.SpillStats) float64 { return float64(sp.BudgetBytes) }))
		reg.GaugeFunc("nobld_trace_spill_spills_total", "cumulative spill-to-disk operations",
			spill(func(sp harness.SpillStats) float64 { return float64(sp.Spills) }))
		reg.GaugeFunc("nobld_trace_spill_reloads_total", "cumulative page-back-in operations",
			spill(func(sp harness.SpillStats) float64 { return float64(sp.Reloads) }))
	}
}

// registerCacheGauges installs the five per-store gauges under prefix.
func registerCacheGauges(reg *obs.Registry, prefix string, stats func() CacheStats) {
	reg.GaugeFunc(prefix+"_hits_total", "cache hits", func() float64 { return float64(stats().Hits) })
	reg.GaugeFunc(prefix+"_misses_total", "cache misses", func() float64 { return float64(stats().Misses) })
	reg.GaugeFunc(prefix+"_evictions_total", "cache evictions", func() float64 { return float64(stats().Evictions) })
	reg.GaugeFunc(prefix+"_hit_rate", "cache hit rate", func() float64 { return stats().HitRate })
	reg.GaugeFunc(prefix+"_entries", "live cache entries", func() float64 { return float64(stats().Entries) })
}

// CacheStats is the snapshot of one store's counters plus its hit rate.
type CacheStats struct {
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	Evictions int64   `json:"evictions"`
	HitRate   float64 `json:"hit_rate"`
	Entries   int     `json:"entries"`
	Capacity  int     `json:"capacity"`
}

func cacheStats[V any](s *core.Store[V]) CacheStats {
	st := s.Stats()
	return CacheStats{
		Hits:      st.Hits,
		Misses:    st.Misses,
		Evictions: st.Evictions,
		HitRate:   st.HitRate(),
		Entries:   s.Len(),
		Capacity:  s.Capacity(),
	}
}

// HistogramSnapshot is the JSON form of one histogram: cumulative bucket
// counts keyed by upper bound, plus count and sum.
type HistogramSnapshot struct {
	// Buckets maps the bucket upper bound (ms, formatted) to the
	// cumulative count of observations at or below it.
	Buckets map[string]int64 `json:"buckets"`
	Count   int64            `json:"count"`
	SumMs   float64          `json:"sum_ms"`
}

// MetricsSnapshot is the machine-readable /metrics?format=json payload.
type MetricsSnapshot struct {
	Schema     string                       `json:"schema"`
	Requests   map[string]int64             `json:"requests"`
	Results    CacheStats                   `json:"result_cache"`
	Traces     CacheStats                   `json:"trace_cache"`
	Spill      *harness.SpillStats          `json:"trace_spill,omitempty"`
	QueueDepth int64                        `json:"queue_depth"`
	Jobs       JobCounters                  `json:"jobs"`
	Latency    map[string]HistogramSnapshot `json:"latency_ms"`
	// QueueWait and Runs expose the obs-registry histograms added for
	// the ROADMAP's scaling work: queue wait (all jobs) and execution
	// time by effective engine.
	QueueWait HistogramSnapshot            `json:"queue_wait_ms"`
	Runs      map[string]HistogramSnapshot `json:"run_ms"`
	// Cluster summarizes the sharding tier; absent in single-node mode.
	Cluster *ClusterCounters `json:"cluster,omitempty"`
}

// ClusterCounters summarizes the cluster subsystem in the JSON snapshot.
type ClusterCounters struct {
	Mode         string `json:"mode"`
	RingSize     int    `json:"ring_size"`
	PeersHealthy int    `json:"peers_healthy"`
	// Forwards counts forwarded requests by owning peer; ForwardErrors
	// the ones that failed in transit; Sheds the admission-control
	// rejections by reason ("queue", "forwards").
	Forwards      map[string]int64 `json:"forwards,omitempty"`
	ForwardErrors map[string]int64 `json:"forward_errors,omitempty"`
	Sheds         map[string]int64 `json:"sheds,omitempty"`
	// Replicas is the read-through replica cache; absent on routers.
	Replicas *CacheStats `json:"replica_cache,omitempty"`
}

// JobCounters summarizes the job subsystem.
type JobCounters struct {
	Running   int64 `json:"running"`
	Done      int64 `json:"done"`
	Failed    int64 `json:"failed"`
	Cancelled int64 `json:"cancelled"`
	Rejected  int64 `json:"rejected"`
}

// MetricsSchema tags the JSON metrics snapshot.
const MetricsSchema = "nobld/metrics/v1"

// histogramJSON converts one obs histogram series to the wire form.
// The numeric bucket bounds travel alongside their formatted strings in
// the obs snapshot, so nothing here (or anywhere) re-parses a formatted
// bound; the +Inf bucket is represented by Count, as in every release
// of this schema.
func histogramJSON(ss obs.SeriesSnapshot) HistogramSnapshot {
	snap := HistogramSnapshot{Buckets: make(map[string]int64, len(ss.Buckets)), Count: ss.Count, SumMs: ss.Sum}
	for _, b := range ss.Buckets {
		if b.LE == "+Inf" {
			continue
		}
		snap.Buckets[b.LE] = b.Cumulative
	}
	return snap
}

// labelValue returns the value of the named label in a series.
func labelValue(ss obs.SeriesSnapshot, name string) string {
	for _, l := range ss.Labels {
		if l.Name == name {
			return l.Value
		}
	}
	return ""
}

// metricsSnapshot derives the JSON wire form from one obs-registry
// snapshot, so the JSON and Prometheus-text renderings of a single
// /metrics request describe the same instant.
//
//nob:deterministic
func (s *Server) metricsSnapshot(osnap obs.Snapshot) MetricsSnapshot {
	snap := MetricsSnapshot{
		Schema:     MetricsSchema,
		Requests:   map[string]int64{},
		Results:    cacheStats(s.results),
		Traces:     cacheStats(s.traces.Store()),
		QueueDepth: int64(s.sched.depth()),
		Jobs: JobCounters{
			Running:   int64(s.metrics.jobsRunning.Value()),
			Done:      s.metrics.jobsDone.Value(),
			Failed:    s.metrics.jobsFailed.Value(),
			Cancelled: s.metrics.jobsCancelled.Value(),
			Rejected:  s.metrics.jobsRejected.Value(),
		},
		Latency: map[string]HistogramSnapshot{},
		Runs:    map[string]HistogramSnapshot{},
	}
	if sp, ok := s.traces.SpillStats(); ok {
		snap.Spill = &sp
	}
	if f := osnap.Family("nobld_requests_total"); f != nil {
		for _, ss := range f.Series {
			snap.Requests[labelValue(ss, "endpoint")] = int64(ss.Value)
		}
	}
	if f := osnap.Family("nobld_latency_ms"); f != nil {
		for _, ss := range f.Series {
			snap.Latency[labelValue(ss, "algorithm")] = histogramJSON(ss)
		}
	}
	if f := osnap.Family("nobld_queue_wait_ms"); f != nil && len(f.Series) > 0 {
		snap.QueueWait = histogramJSON(f.Series[0])
	}
	if f := osnap.Family("nobld_run_ms"); f != nil {
		for _, ss := range f.Series {
			snap.Runs[labelValue(ss, "engine")] = histogramJSON(ss)
		}
	}
	if c := s.cluster; c != nil {
		cc := &ClusterCounters{
			Mode:         c.mode(),
			RingSize:     c.ring.Size(),
			PeersHealthy: c.tracker.Healthy(),
		}
		if f := osnap.Family("nobld_cluster_forwards_total"); f != nil {
			cc.Forwards = map[string]int64{}
			for _, ss := range f.Series {
				cc.Forwards[labelValue(ss, "peer")] = int64(ss.Value)
			}
		}
		if f := osnap.Family("nobld_cluster_forward_errors_total"); f != nil {
			cc.ForwardErrors = map[string]int64{}
			for _, ss := range f.Series {
				cc.ForwardErrors[labelValue(ss, "peer")] = int64(ss.Value)
			}
		}
		if f := osnap.Family("nobld_cluster_sheds_total"); f != nil {
			cc.Sheds = map[string]int64{}
			for _, ss := range f.Series {
				cc.Sheds[labelValue(ss, "reason")] = int64(ss.Value)
			}
		}
		if rs, ok := c.replicaStats(); ok {
			cc.Replicas = &rs
		}
		snap.Cluster = cc
	}
	return snap
}

// handleMetrics renders the counters: Prometheus-style text by default,
// the MetricsSnapshot JSON with ?format=json.  Both renderings derive
// from the same registry snapshot.
//
//nob:deterministic
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	osnap := s.metrics.reg.Snapshot()
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, http.StatusOK, s.metricsSnapshot(osnap))
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = obs.WritePrometheus(w, osnap)
}
