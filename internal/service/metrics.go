package service

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"netoblivious/internal/core"
	"netoblivious/internal/harness"
)

// latencyBuckets are the upper bounds (milliseconds) of the per-algorithm
// latency histograms: powers of four from 1 ms to ~4.4 min, plus +Inf.
// Analysis latencies span closed-form microseconds to multi-second
// simulation runs, so a geometric ladder keeps every regime resolvable
// with few buckets.
var latencyBuckets = []float64{1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144}

// histogram is a fixed-bucket latency histogram.
type histogram struct {
	mu      sync.Mutex
	buckets []int64 // count per latencyBuckets entry; overflow in count-sum
	count   int64
	sumMs   float64
}

func newHistogram() *histogram {
	return &histogram{buckets: make([]int64, len(latencyBuckets))}
}

func (h *histogram) observe(d time.Duration) {
	ms := float64(d.Microseconds()) / 1e3
	h.mu.Lock()
	h.count++
	h.sumMs += ms
	for i, ub := range latencyBuckets {
		if ms <= ub {
			h.buckets[i]++
			break
		}
	}
	h.mu.Unlock()
}

// HistogramSnapshot is the JSON form of one latency histogram:
// cumulative bucket counts keyed by upper bound, plus count and sum.
type HistogramSnapshot struct {
	// Buckets maps the bucket upper bound (ms, formatted) to the
	// cumulative count of observations at or below it.
	Buckets map[string]int64 `json:"buckets"`
	Count   int64            `json:"count"`
	SumMs   float64          `json:"sum_ms"`
}

func (h *histogram) snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	snap := HistogramSnapshot{Buckets: make(map[string]int64, len(latencyBuckets)), Count: h.count, SumMs: h.sumMs}
	var cum int64
	for i, ub := range latencyBuckets {
		cum += h.buckets[i]
		snap.Buckets[fmt.Sprintf("%g", ub)] = cum
	}
	return snap
}

// metrics aggregates the service's operational counters.  Request
// counters and job gauges are atomics; the cache counters are read
// straight from the two stores so they can never drift from the caches
// they describe.
type metrics struct {
	requests sync.Map // endpoint (string) -> *atomic.Int64

	jobsRunning   atomic.Int64 // gauge: jobs being executed by workers
	jobsDone      atomic.Int64
	jobsFailed    atomic.Int64
	jobsCancelled atomic.Int64
	jobsRejected  atomic.Int64 // queue-full rejections

	latency sync.Map // algorithm (string) -> *histogram
}

func (m *metrics) countRequest(endpoint string) {
	c, _ := m.requests.LoadOrStore(endpoint, new(atomic.Int64))
	c.(*atomic.Int64).Add(1)
}

func (m *metrics) observeLatency(algorithm string, d time.Duration) {
	if algorithm == "" {
		algorithm = "none"
	}
	h, ok := m.latency.Load(algorithm)
	if !ok {
		h, _ = m.latency.LoadOrStore(algorithm, newHistogram())
	}
	h.(*histogram).observe(d)
}

// CacheStats is the snapshot of one store's counters plus its hit rate.
type CacheStats struct {
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	Evictions int64   `json:"evictions"`
	HitRate   float64 `json:"hit_rate"`
	Entries   int     `json:"entries"`
	Capacity  int     `json:"capacity"`
}

func cacheStats[V any](s *core.Store[V]) CacheStats {
	st := s.Stats()
	return CacheStats{
		Hits:      st.Hits,
		Misses:    st.Misses,
		Evictions: st.Evictions,
		HitRate:   st.HitRate(),
		Entries:   s.Len(),
		Capacity:  s.Capacity(),
	}
}

// MetricsSnapshot is the machine-readable /metrics?format=json payload.
type MetricsSnapshot struct {
	Schema     string                       `json:"schema"`
	Requests   map[string]int64             `json:"requests"`
	Results    CacheStats                   `json:"result_cache"`
	Traces     CacheStats                   `json:"trace_cache"`
	Spill      *harness.SpillStats          `json:"trace_spill,omitempty"`
	QueueDepth int64                        `json:"queue_depth"`
	Jobs       JobCounters                  `json:"jobs"`
	Latency    map[string]HistogramSnapshot `json:"latency_ms"`
}

// JobCounters summarizes the job subsystem.
type JobCounters struct {
	Running   int64 `json:"running"`
	Done      int64 `json:"done"`
	Failed    int64 `json:"failed"`
	Cancelled int64 `json:"cancelled"`
	Rejected  int64 `json:"rejected"`
}

// MetricsSchema tags the JSON metrics snapshot.
const MetricsSchema = "nobld/metrics/v1"

func (s *Server) metricsSnapshot() MetricsSnapshot {
	snap := MetricsSnapshot{
		Schema:     MetricsSchema,
		Requests:   map[string]int64{},
		Results:    cacheStats(s.results),
		Traces:     cacheStats(s.traces.Store()),
		QueueDepth: int64(s.sched.depth()),
		Jobs: JobCounters{
			Running:   s.metrics.jobsRunning.Load(),
			Done:      s.metrics.jobsDone.Load(),
			Failed:    s.metrics.jobsFailed.Load(),
			Cancelled: s.metrics.jobsCancelled.Load(),
			Rejected:  s.metrics.jobsRejected.Load(),
		},
		Latency: map[string]HistogramSnapshot{},
	}
	if sp, ok := s.traces.SpillStats(); ok {
		snap.Spill = &sp
	}
	s.metrics.requests.Range(func(k, v any) bool {
		snap.Requests[k.(string)] = v.(*atomic.Int64).Load()
		return true
	})
	s.metrics.latency.Range(func(k, v any) bool {
		snap.Latency[k.(string)] = v.(*histogram).snapshot()
		return true
	})
	return snap
}

// handleMetrics renders the counters: Prometheus-style text by default,
// the MetricsSnapshot JSON with ?format=json.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.metricsSnapshot()
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, http.StatusOK, snap)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var sb strings.Builder
	writeGauge := func(name string, v int64) {
		fmt.Fprintf(&sb, "%s %d\n", name, v)
	}
	endpoints := make([]string, 0, len(snap.Requests))
	for ep := range snap.Requests {
		endpoints = append(endpoints, ep)
	}
	sort.Strings(endpoints)
	for _, ep := range endpoints {
		fmt.Fprintf(&sb, "nobld_requests_total{endpoint=%q} %d\n", ep, snap.Requests[ep])
	}
	writeCache := func(prefix string, cs CacheStats) {
		writeGauge(prefix+"_hits_total", cs.Hits)
		writeGauge(prefix+"_misses_total", cs.Misses)
		writeGauge(prefix+"_evictions_total", cs.Evictions)
		fmt.Fprintf(&sb, "%s_hit_rate %g\n", prefix, cs.HitRate)
		writeGauge(prefix+"_entries", int64(cs.Entries))
	}
	writeCache("nobld_cache", snap.Results)
	writeCache("nobld_trace_cache", snap.Traces)
	if snap.Spill != nil {
		writeGauge("nobld_trace_spill_resident", int64(snap.Spill.Resident))
		writeGauge("nobld_trace_spill_spilled", int64(snap.Spill.Spilled))
		writeGauge("nobld_trace_spill_used_bytes", snap.Spill.UsedBytes)
		writeGauge("nobld_trace_spill_budget_bytes", snap.Spill.BudgetBytes)
		writeGauge("nobld_trace_spill_spills_total", snap.Spill.Spills)
		writeGauge("nobld_trace_spill_reloads_total", snap.Spill.Reloads)
	}
	writeGauge("nobld_queue_depth", snap.QueueDepth)
	writeGauge("nobld_jobs_running", snap.Jobs.Running)
	writeGauge("nobld_jobs_done_total", snap.Jobs.Done)
	writeGauge("nobld_jobs_failed_total", snap.Jobs.Failed)
	writeGauge("nobld_jobs_cancelled_total", snap.Jobs.Cancelled)
	writeGauge("nobld_jobs_rejected_total", snap.Jobs.Rejected)
	algs := make([]string, 0, len(snap.Latency))
	for a := range snap.Latency {
		algs = append(algs, a)
	}
	sort.Strings(algs)
	for _, a := range algs {
		h := snap.Latency[a]
		bounds := make([]string, 0, len(h.Buckets))
		for b := range h.Buckets {
			bounds = append(bounds, b)
		}
		sort.Slice(bounds, func(i, j int) bool {
			var x, y float64
			fmt.Sscan(bounds[i], &x)
			fmt.Sscan(bounds[j], &y)
			return x < y
		})
		for _, b := range bounds {
			fmt.Fprintf(&sb, "nobld_latency_ms_bucket{algorithm=%q,le=%q} %d\n", a, b, h.Buckets[b])
		}
		fmt.Fprintf(&sb, "nobld_latency_ms_bucket{algorithm=%q,le=\"+Inf\"} %d\n", a, h.Count)
		fmt.Fprintf(&sb, "nobld_latency_ms_sum{algorithm=%q} %g\n", a, h.SumMs)
		fmt.Fprintf(&sb, "nobld_latency_ms_count{algorithm=%q} %d\n", a, h.Count)
	}
	_, _ = w.Write([]byte(sb.String()))
}
