package service

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a mutex-guarded log sink: the server's goroutines write
// while the test reads.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// waitForLog polls until pred(logs) holds (the access and job lines are
// written after the HTTP response, so the client can get ahead of them).
func waitForLog(t *testing.T, logs *syncBuffer, what string, pred func(string) bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !pred(logs.String()) {
		if time.Now().After(deadline) {
			t.Fatalf("logs never showed %s:\n%s", what, logs.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestHealthzFields asserts the enriched /healthz payload: status "ok"
// (the CI smoke's contract) plus the build/runtime identity fields.
func TestHealthzFields(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 2})
	resp, err := c.http().Get(c.BaseURL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Errorf("status = %q, want ok", h.Status)
	}
	if h.Engine == "" || h.Version == "" {
		t.Errorf("healthz missing identity: %+v", h)
	}
	if !strings.HasPrefix(h.GoVersion, "go") {
		t.Errorf("go_version = %q", h.GoVersion)
	}
	if h.UptimeSec < 0 {
		t.Errorf("uptime_sec = %v", h.UptimeSec)
	}
	if h.Gomaxprocs < 1 || h.Workers < 1 {
		t.Errorf("gomaxprocs = %d workers = %d", h.Gomaxprocs, h.Workers)
	}
}

// TestRequestIDPropagation follows one correlation ID end to end: the
// client-supplied X-Request-ID is echoed on the response, recorded on the
// job, carried by every job event, and present in the structured logs.
func TestRequestIDPropagation(t *testing.T) {
	logs := &syncBuffer{}
	srv, c := newTestServer(t, Config{
		Workers: 1,
		Logger:  slog.New(slog.NewJSONHandler(logs, nil)),
	})
	ctx := context.Background()

	body := `{"algorithm":"fft","n":256,"kind":"trace","wait":true}`
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/analyze", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	const rid = "test-rid-0001"
	req.Header.Set("X-Request-ID", rid)
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != rid {
		t.Errorf("response X-Request-ID = %q, want %q", got, rid)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze status %d", resp.StatusCode)
	}

	// The job the request created must carry the ID on the record and on
	// every event.
	j, ok := func() (*job, bool) {
		srv.sched.mu.Lock()
		defer srv.sched.mu.Unlock()
		for _, j := range srv.sched.jobs {
			return j, true
		}
		return nil, false
	}()
	if !ok {
		t.Fatal("no job recorded")
	}
	if j.requestID != rid {
		t.Errorf("job request ID = %q, want %q", j.requestID, rid)
	}
	_, events, _ := j.snapshot()
	if len(events) == 0 {
		t.Fatal("job has no events")
	}
	for _, ev := range events {
		if ev.RequestID != rid {
			t.Errorf("event %d (%s) request_id = %q, want %q", ev.Seq, ev.Stage, ev.RequestID, rid)
		}
	}

	// Every structured line about this request carries the ID; the job
	// lifecycle lines must be among them.  The "job finished" line and
	// the access line land after the HTTP response, so wait for them.
	for _, want := range []string{"job queued", "job started", "job finished", `"msg":"request"`} {
		waitForLog(t, logs, want, func(s string) bool { return strings.Contains(s, want) })
	}
	for _, line := range strings.Split(strings.TrimSpace(logs.String()), "\n") {
		if !strings.Contains(line, rid) {
			t.Errorf("log line missing request ID: %s", line)
		}
	}

	// A request without the header gets a generated ID.
	resp2, err := c.http().Get(c.BaseURL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if gen := resp2.Header.Get("X-Request-ID"); len(gen) != 16 {
		t.Errorf("generated request ID %q, want 16 hex chars", gen)
	}
}

// TestAccessLogSampling asserts -log-sample semantics: with LogSample=4,
// 8 requests produce exactly 2 access lines.
func TestAccessLogSampling(t *testing.T) {
	logs := &syncBuffer{}
	_, c := newTestServer(t, Config{
		Workers:   1,
		Logger:    slog.New(slog.NewJSONHandler(logs, nil)),
		LogSample: 4,
	})
	for i := 0; i < 8; i++ {
		resp, err := c.http().Get(c.BaseURL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	count := func(s string) int { return strings.Count(s, `"msg":"request"`) }
	waitForLog(t, logs, "2 sampled access lines", func(s string) bool { return count(s) >= 2 })
	time.Sleep(50 * time.Millisecond) // an over-sampled 3rd line would land here
	if n := count(logs.String()); n != 2 {
		t.Errorf("access lines = %d, want 2 of 8 at sample 4\n%s", n, logs.String())
	}
}

// metricLine matches one histogram bucket sample in Prometheus text.
var metricLine = regexp.MustCompile(`^(\w+)_bucket\{(.*)le="([^"]+)"\} (\d+)$`)

// TestMetricsEndpointConsistency runs real traffic, then cross-checks the
// two /metrics renderings: text buckets must be cumulative and
// monotonic, and counter/histogram values must agree with the JSON
// snapshot of the same families.
func TestMetricsEndpointConsistency(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 2})
	ctx := context.Background()
	for _, n := range []int{256, 512} {
		if _, err := c.Analyze(ctx, Request{Algorithm: "fft", N: n, Kind: KindTrace, Wait: true}); err != nil {
			t.Fatal(err)
		}
	}

	get := func(path string) string {
		t.Helper()
		resp, err := c.http().Get(c.BaseURL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		if _, err := copyBody(&sb, resp); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	text := get("/metrics")
	var snap MetricsSnapshot
	if err := json.Unmarshal([]byte(get("/metrics?format=json")), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Schema != MetricsSchema {
		t.Errorf("schema = %q", snap.Schema)
	}

	// The new histograms exist and saw the two jobs.
	if snap.QueueWait.Count < 2 {
		t.Errorf("queue_wait count = %d, want >= 2", snap.QueueWait.Count)
	}
	if len(snap.Runs) == 0 {
		t.Error("run_ms has no engine series")
	}
	for _, name := range []string{"nobld_queue_wait_ms_bucket", "nobld_run_ms_bucket"} {
		if !strings.Contains(text, name) {
			t.Errorf("text metrics missing %q", name)
		}
	}

	// Buckets in the text rendering are cumulative and monotonic per
	// series, ending at +Inf == _count.
	type series struct {
		last   int64
		inf    int64
		hasInf bool
	}
	perSeries := map[string]*series{}
	for _, line := range strings.Split(text, "\n") {
		m := metricLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		key := m[1] + "{" + m[2] + "}"
		v, err := strconv.ParseInt(m[4], 10, 64)
		if err != nil {
			t.Fatalf("bucket value %q: %v", m[4], err)
		}
		s := perSeries[key]
		if s == nil {
			s = &series{}
			perSeries[key] = s
		}
		if v < s.last {
			t.Errorf("%s: bucket le=%s value %d < previous %d (not cumulative)", key, m[3], v, s.last)
		}
		s.last = v
		if m[3] == "+Inf" {
			s.inf, s.hasInf = v, true
		}
	}
	if len(perSeries) == 0 {
		t.Fatal("no histogram buckets in text rendering")
	}
	for key, s := range perSeries {
		if !s.hasInf {
			t.Errorf("%s: no +Inf bucket", key)
		}
	}

	// Counter agreement between the renderings: every request count in
	// the JSON appears verbatim in the text (same snapshot per request,
	// and the second request added only the metrics endpoint's own hit,
	// which text/JSON both postdate).
	for endpoint, n := range snap.Requests {
		want := `nobld_requests_total{endpoint="` + endpoint + `"} ` + strconv.FormatInt(n, 10)
		if endpoint == "metrics" {
			continue // racing against our own scrapes
		}
		if !strings.Contains(text, want) {
			t.Errorf("text missing %q", want)
		}
	}
	// Histogram agreement: JSON latency counts equal the text _count.
	for algo, h := range snap.Latency {
		want := `nobld_latency_ms_count{algorithm="` + algo + `"} ` + strconv.FormatInt(h.Count, 10)
		if !strings.Contains(text, want) {
			t.Errorf("text missing %q", want)
		}
	}
}

// TestQueueWaitObserved asserts the queue-wait histogram measures real
// queue time: a job that waited behind a slot records a wait.
func TestQueueWaitObserved(t *testing.T) {
	srv, c := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()
	if _, err := c.Analyze(ctx, Request{Algorithm: "fft", N: 256, Kind: KindTrace, Wait: true}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		snap := srv.metricsSnapshot(srv.metrics.reg.Snapshot())
		if snap.QueueWait.Count >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("queue-wait histogram never observed a job")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
