// Package tracetest provides helpers for comparing communication traces
// in tests, shared by the cross-engine equivalence suites.
package tracetest

import (
	"bytes"
	"context"
	"sort"
	"testing"

	"netoblivious/alg"
	"netoblivious/internal/core"
)

// Canonical serializes a trace with per-step Pairs sorted so traces can
// be compared byte for byte.  Pairs carry no order guarantee (the
// GoroutineEngine appends them in cluster-completion order, which is
// scheduling dependent), so they are compared as multisets.
func Canonical(t testing.TB, tr *core.Trace) []byte {
	t.Helper()
	c := &core.Trace{V: tr.V, LogV: tr.LogV, Steps: make([]core.StepRec, len(tr.Steps))}
	copy(c.Steps, tr.Steps)
	for i := range c.Steps {
		if c.Steps[i].Pairs.Len() == 0 {
			c.Steps[i].Pairs = nil
			continue
		}
		p := c.Steps[i].Pairs.Pairs()
		sort.Slice(p, func(a, b int) bool {
			if p[a][0] != p[b][0] {
				return p[a][0] < p[b][0]
			}
			return p[a][1] < p[b][1]
		})
		c.Steps[i].Pairs = core.PairListOf(p)
	}
	var buf bytes.Buffer
	if err := c.EncodeJSON(&buf); err != nil {
		t.Fatalf("tracetest: encoding trace: %v", err)
	}
	return buf.Bytes()
}

// EngineEquivalence runs a registry algorithm on every execution engine
// at every given size and asserts byte-identical traces — the check the
// repository applies to its built-in algorithms and, because it takes any
// descriptor, to user-registered ones too.  The replay engine is
// exercised twice against one private schedule store, so each size also
// asserts the cold (record-and-compile) and warm (pure replay) paths
// agree with each other and with the reference.  The BlockEngine leg
// runs through a streaming sink (an accumulating Trace behind
// Options.Sink), so every size also asserts the streamed superstep
// emission equals the classic in-memory path.  It returns the number of
// sizes successfully compared.
func EngineEquivalence(t testing.TB, a alg.Algorithm, sizes []int) int {
	t.Helper()
	compared := 0
	for _, n := range sizes {
		ref, refErr := a.Run(context.Background(), alg.Spec{Engine: core.GoroutineEngine{}}, n)
		var streamed core.Trace
		_, gotErr := a.Run(context.Background(), alg.Spec{Engine: core.BlockEngine{}, Sink: &streamed}, n)
		replay := core.ReplayEngine{Store: core.NewScheduleStore()}
		cold, coldErr := a.Run(context.Background(), alg.Spec{Engine: replay}, n)
		warm, warmErr := a.Run(context.Background(), alg.Spec{Engine: replay}, n)
		if (refErr != nil) != (gotErr != nil) || (refErr != nil) != (coldErr != nil) || (refErr != nil) != (warmErr != nil) {
			t.Errorf("%s n=%d: engines disagree on validity: goroutine=%v block=%v replay-cold=%v replay-warm=%v",
				a.Name, n, refErr, gotErr, coldErr, warmErr)
			continue
		}
		if refErr != nil {
			continue // size invalid for this algorithm on every engine
		}
		want := Canonical(t, ref.Trace)
		ok := true
		for _, alt := range []struct {
			name string
			tr   *core.Trace
		}{
			{"BlockEngine (streaming sink)", &streamed},
			{"ReplayEngine (cold)", cold.Trace},
			{"ReplayEngine (warm)", warm.Trace},
		} {
			if !bytes.Equal(want, Canonical(t, alt.tr)) {
				t.Errorf("%s n=%d: %s trace differs from GoroutineEngine trace", a.Name, n, alt.name)
				ok = false
			}
		}
		if ok {
			compared++
		}
	}
	return compared
}
