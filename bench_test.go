// Benchmark harness: one testing.B target per experiment of the
// reproduction index (DESIGN.md) plus the design-choice ablations.  Each
// bench runs the corresponding workload end-to-end on the specification
// machine and reports the paper's metrics (communication complexity,
// optimality ratios, wiseness) through b.ReportMetric, so
// `go test -bench=. -benchmem` regenerates every table/figure-equivalent
// series.  Absolute wall-clock times measure the simulator, not a real
// network; the reported custom metrics are the reproduction targets.
package netoblivious_test

import (
	"fmt"
	"math/rand"
	"testing"

	nob "netoblivious"
	"netoblivious/internal/broadcast"
	"netoblivious/internal/colsort"
	"netoblivious/internal/core"
	"netoblivious/internal/dbsp"
	"netoblivious/internal/eval"
	"netoblivious/internal/fft"
	"netoblivious/internal/harness"
	"netoblivious/internal/matmul"
	"netoblivious/internal/prefix"
	"netoblivious/internal/stencil"
	"netoblivious/internal/theory"
)

func benchRng() *rand.Rand { return rand.New(rand.NewSource(63)) }

// BenchmarkE1MatMulH — Theorem 4.2: H_MM(n,p,σ) = Θ(n/p^{2/3} + σ·log p).
func BenchmarkE1MatMulH(b *testing.B) {
	rng := benchRng()
	for _, s := range []int{16, 32, 64} {
		a, m := benchMatrix(rng, s), benchMatrix(rng, s)
		b.Run(fmt.Sprintf("s=%d", s), func(b *testing.B) {
			var res *matmul.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = matmul.Multiply(s, a, m, matmul.Options{Wise: true})
				if err != nil {
					b.Fatal(err)
				}
			}
			n := float64(s * s)
			p := s * s / 8
			h := nob.H(res.Trace, p, 0)
			b.ReportMetric(h, "H(p=n/8,σ=0)")
			b.ReportMetric(h/theory.PredictedMM(n, p, 0), "H/predicted")
			b.ReportMetric(eval.BetaOptimality(theory.LowerBoundMM(n, p, 0), h), "beta")
		})
	}
}

func benchMatrix(rng *rand.Rand, s int) []int64 {
	m := make([]int64, s*s)
	for i := range m {
		m[i] = int64(rng.Intn(100))
	}
	return m
}

// BenchmarkE2MatMulSpaceH — §4.1.1: H = Θ(n/√p + σ·√p), O(1) memory.
func BenchmarkE2MatMulSpaceH(b *testing.B) {
	rng := benchRng()
	for _, s := range []int{16, 32, 64} {
		a, m := benchMatrix(rng, s), benchMatrix(rng, s)
		b.Run(fmt.Sprintf("s=%d", s), func(b *testing.B) {
			var res *matmul.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = matmul.MultiplySpaceEfficient(s, a, m, matmul.Options{Wise: true})
				if err != nil {
					b.Fatal(err)
				}
			}
			n := float64(s * s)
			p := s * s / 4
			h := nob.H(res.Trace, p, 0)
			b.ReportMetric(h, "H(p=n/4,σ=0)")
			b.ReportMetric(h/theory.PredictedMMSpace(n, p, 0), "H/predicted")
			b.ReportMetric(float64(res.PeakEntries), "peak-entries")
		})
	}
}

// BenchmarkE3FFTH — Theorem 4.5 plus the iterative-baseline comparison.
func BenchmarkE3FFTH(b *testing.B) {
	rng := benchRng()
	for _, n := range []int{1 << 8, 1 << 10, 1 << 12} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.Float64(), 0)
		}
		for _, variant := range []string{"recursive", "iterative"} {
			b.Run(fmt.Sprintf("n=%d/%s", n, variant), func(b *testing.B) {
				var res *fft.Result
				var err error
				for i := 0; i < b.N; i++ {
					if variant == "recursive" {
						res, err = fft.Transform(x, fft.Options{Wise: true})
					} else {
						res, err = fft.TransformIterative(x, fft.Options{Wise: true})
					}
					if err != nil {
						b.Fatal(err)
					}
				}
				p := 16
				sigma := float64(n / p)
				h := nob.H(res.Trace, p, sigma)
				b.ReportMetric(h, "H(p=16,σ=n/p)")
				b.ReportMetric(h/theory.PredictedFFT(float64(n), p, sigma), "H/predictedFFT")
			})
		}
	}
}

// BenchmarkE4SortH — Theorem 4.8.
func BenchmarkE4SortH(b *testing.B) {
	rng := benchRng()
	for _, n := range []int{1 << 8, 1 << 10, 1 << 12} {
		keys := make([]int64, n)
		for i := range keys {
			keys[i] = rng.Int63()
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var res *colsort.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = colsort.Sort(keys, colsort.Options{Wise: true})
				if err != nil {
					b.Fatal(err)
				}
			}
			p := 16
			h := nob.H(res.Trace, p, 0)
			b.ReportMetric(h, "H(p=16,σ=0)")
			b.ReportMetric(h/theory.PredictedSort(float64(n), p, 0), "H/predicted")
			b.ReportMetric(eval.BetaOptimality(theory.LowerBoundSort(float64(n), p, 0), h), "beta")
		})
	}
}

// BenchmarkE5Stencil1H — Theorem 4.11.
func BenchmarkE5Stencil1H(b *testing.B) {
	rng := benchRng()
	for _, n := range []int{32, 64, 128} {
		in := make([]int64, n)
		for i := range in {
			in[i] = int64(rng.Intn(1 << 20))
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var res *stencil.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = stencil.Run(n, 1, in, stencil.Options{Wise: true})
				if err != nil {
					b.Fatal(err)
				}
			}
			p := n / 4
			h := nob.H(res.Trace, p, 0)
			b.ReportMetric(h, "H(p=n/4,σ=0)")
			b.ReportMetric(h/theory.PredictedStencil1(float64(n), p, 0), "H/predicted")
		})
	}
}

// BenchmarkE6Stencil2H — Theorem 4.13.
func BenchmarkE6Stencil2H(b *testing.B) {
	rng := benchRng()
	for _, n := range []int{8, 16} {
		in := make([]int64, n*n)
		for i := range in {
			in[i] = int64(rng.Intn(1 << 20))
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var res *stencil.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = stencil.Run(n, 2, in, stencil.Options{Wise: true})
				if err != nil {
					b.Fatal(err)
				}
			}
			p := n * n / 4
			h := nob.H(res.Trace, p, 0)
			b.ReportMetric(h, "H(p=n²/4,σ=0)")
			b.ReportMetric(h/theory.PredictedStencil2(float64(n), p, 0), "H/predicted")
		})
	}
}

// BenchmarkE7BroadcastGap — Theorems 4.15–4.16.
func BenchmarkE7BroadcastGap(b *testing.B) {
	const p = 1 << 10
	for _, sigma := range []float64{0, 32, 1024} {
		b.Run(fmt.Sprintf("sigma=%g", sigma), func(b *testing.B) {
			var aw, tree *broadcast.Result
			var err error
			for i := 0; i < b.N; i++ {
				aw, err = broadcast.Aware(p, sigma, 1, broadcast.Options{})
				if err != nil {
					b.Fatal(err)
				}
				tree, err = broadcast.Oblivious(p, 1, broadcast.Options{})
				if err != nil {
					b.Fatal(err)
				}
			}
			lb := theory.LowerBoundBroadcast(p, sigma)
			b.ReportMetric(nob.H(aw.Trace, p, sigma)/lb, "aware/LB")
			b.ReportMetric(nob.H(tree.Trace, p, sigma)/lb, "oblivious/LB")
			b.ReportMetric(theory.GapLowerBound(0, sigma), "thm4.16-curve")
		})
	}
}

// BenchmarkE8DBSPTransfer — Theorem 3.4: communication time vs the D-BSP
// bandwidth lower bound across network families.
func BenchmarkE8DBSPTransfer(b *testing.B) {
	rng := benchRng()
	s := 32
	a, m := benchMatrix(rng, s), benchMatrix(rng, s)
	for _, mk := range []func(int) dbsp.Params{
		func(p int) dbsp.Params { return dbsp.Mesh(1, p) },
		func(p int) dbsp.Params { return dbsp.Mesh(2, p) },
		dbsp.Hypercube,
		dbsp.FatTree,
	} {
		pr := mk(64)
		b.Run(pr.Name, func(b *testing.B) {
			var res *matmul.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = matmul.Multiply(s, a, m, matmul.Options{Wise: true})
				if err != nil {
					b.Fatal(err)
				}
			}
			d := nob.CommTime(res.Trace, pr)
			b.ReportMetric(d, "D(n,64,g,l)")
			b.ReportMetric(nob.Wiseness(res.Trace, 64), "alpha")
		})
	}
}

// BenchmarkE9Wiseness — Definition 3.2, with and without dummy messages.
func BenchmarkE9Wiseness(b *testing.B) {
	rng := benchRng()
	n := 1 << 8
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.Float64(), 0)
	}
	for _, wise := range []bool{true, false} {
		b.Run(fmt.Sprintf("dummies=%v", wise), func(b *testing.B) {
			var res *fft.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = fft.Transform(x, fft.Options{Wise: wise})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(nob.Wiseness(res.Trace, 16), "alpha(p=16)")
			b.ReportMetric(nob.Wiseness(res.Trace, n), "alpha(p=n)")
		})
	}
}

// BenchmarkE10FoldingLemma — Lemma 3.1 checked across every fold of a
// full-size trace.
func BenchmarkE10FoldingLemma(b *testing.B) {
	rng := benchRng()
	n := 1 << 10
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = rng.Int63()
	}
	res, err := colsort.Sort(keys, colsort.Options{Wise: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for p := 2; p <= n; p *= 2 {
			if err := eval.CheckFoldingLemma(res.Trace, p); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(0, "violations")
}

// BenchmarkE11AscendDescend — Section 5: the protocol's improvement on the
// unbalanced-pair workload over direct execution.
func BenchmarkE11AscendDescend(b *testing.B) {
	const v = 64
	const msgs = 4096
	tr, err := core.RunOpt(v, func(vp *core.VP[int]) {
		if vp.ID() == 0 {
			for k := 0; k < msgs; k++ {
				vp.Send(v/2, k)
			}
		}
		vp.Sync(0)
		vp.Sync(0)
	}, core.Options{RecordMessages: true})
	if err != nil {
		b.Fatal(err)
	}
	pr := dbsp.Mesh(1, v)
	b.ResetTimer()
	var speedup float64
	for i := 0; i < b.N; i++ {
		pc, err := dbsp.AscendDescend(tr, v)
		if err != nil {
			b.Fatal(err)
		}
		speedup = dbsp.CommTime(tr, pr) / pc.CommTime(pr)
	}
	b.ReportMetric(speedup, "speedup-mesh1D")
	b.ReportMetric(nob.Fullness(tr, v), "gamma")
}

// BenchmarkE12CommTimeTables — Equation 2 on the full network suite.
func BenchmarkE12CommTimeTables(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := runExperiment("E12"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkF1DiamondDecomposition — Figure 1 structure.
func BenchmarkF1DiamondDecomposition(b *testing.B) {
	var tiles []stencil.Tile
	for i := 0; i < b.N; i++ {
		tiles = stencil.Decompose(256)
	}
	phases := map[int]bool{}
	for _, t := range tiles {
		phases[t.Phase] = true
	}
	b.ReportMetric(float64(len(tiles)), "diamonds")
	b.ReportMetric(float64(len(phases)), "stripes")
}

func runExperiment(id string) ([]*harness.Result, error) {
	e, ok := harness.ByID(id)
	if !ok {
		return nil, fmt.Errorf("unknown experiment %s", id)
	}
	return e.Run(harness.Config{Quick: true})
}

// BenchmarkHarnessSuite drives the declarative experiment pipeline end to
// end off its structured results: the full quick suite through the
// bounded worker pool, sequentially and at GOMAXPROCS, reporting the
// trace-store hit rate and the count of failed checks (must stay 0).
// This is the headline series for the shared-trace-store refactor: the
// hit rate measures how many specification-model executions the store
// eliminates across E1–F1.
func BenchmarkHarnessSuite(b *testing.B) {
	for _, parallel := range []int{1, 0} {
		name := "sequential"
		if parallel == 0 {
			name = "parallel"
		}
		b.Run(name, func(b *testing.B) {
			var stats core.StoreStats
			failures := 0
			for i := 0; i < b.N; i++ {
				store := harness.NewTraceStore()
				recs, err := harness.RunSuite(harness.Config{Quick: true, Parallel: parallel, Store: store}, nil)
				if err != nil {
					b.Fatal(err)
				}
				failures = 0 // per-suite, not accumulated across b.N
				for _, rec := range recs {
					if !rec.Passed() {
						failures++
					}
				}
				stats = store.Stats()
			}
			b.ReportMetric(float64(failures), "failed-experiments")
			b.ReportMetric(stats.HitRate(), "store-hit-rate")
			b.ReportMetric(float64(stats.Hits), "store-hits")
		})
	}
}

// --- Ablation benches (design choices called out in DESIGN.md) -----------

// BenchmarkAblationSortShape compares Columnsort matrix shapes: the
// library's r ≥ 2(s−1)² choice vs a taller, safer r = n/2 (s = 2).
func BenchmarkAblationSortShape(b *testing.B) {
	rng := benchRng()
	n := 1 << 10
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = rng.Int63()
	}
	// The shape is chosen internally; the ablation contrasts base sizes,
	// which steer how quickly recursion bottoms out.
	for _, base := range []int{8, 16, 64} {
		b.Run(fmt.Sprintf("base=%d", base), func(b *testing.B) {
			var res *colsort.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = colsort.SortBase(keys, base, colsort.Options{Wise: true})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(nob.H(res.Trace, 16, 0), "H(p=16)")
			b.ReportMetric(float64(res.Trace.NumSupersteps()), "supersteps")
		})
	}
}

// BenchmarkAblationStencilK varies the stencil recursion degree against
// the paper's k = 2^⌈√log n⌉.
func BenchmarkAblationStencilK(b *testing.B) {
	rng := benchRng()
	n := 64
	in := make([]int64, n)
	for i := range in {
		in[i] = int64(rng.Intn(1 << 20))
	}
	for _, k := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			var res *stencil.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = stencil.RunK(n, 1, k, in, stencil.Options{Wise: true})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(nob.H(res.Trace, 16, 0), "H(p=16)")
			b.ReportMetric(float64(res.Trace.NumSupersteps()), "supersteps")
		})
	}
}

// BenchmarkAblationPrefix contrasts the work-efficient tree scan with
// Hillis–Steele doubling.
func BenchmarkAblationPrefix(b *testing.B) {
	rng := benchRng()
	n := 1 << 10
	xs := make([]int64, n)
	for i := range xs {
		xs[i] = int64(rng.Intn(1000))
	}
	for _, variant := range []string{"tree", "doubling"} {
		b.Run(variant, func(b *testing.B) {
			var res *prefix.Result
			var err error
			for i := 0; i < b.N; i++ {
				if variant == "tree" {
					res, err = prefix.ScanTree(xs, prefix.Sum(), prefix.Options{})
				} else {
					res, err = prefix.Scan(xs, prefix.Sum(), prefix.Options{})
				}
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Trace.TotalMessages()), "messages")
			b.ReportMetric(nob.H(res.Trace, 16, 1), "H(p=16,σ=1)")
		})
	}
}

// benchEngineWorkload runs a fixed superstep mix — exchanges at a deep
// label, a mid label and the global label, as real algorithms do — on the
// given engine and machine size.
func benchEngineWorkload(b *testing.B, eng nob.Engine, v int) {
	logV := core.Log2(v)
	labels := []int{logV - 1, 2, 0}
	if v < 8 {
		labels = []int{0}
	}
	for i := 0; i < b.N; i++ {
		_, err := core.RunOpt(v, func(vp *core.VP[int64]) {
			var acc int64
			for _, lab := range labels {
				partner := vp.ID() ^ (v >> uint(lab+1))
				vp.Send(partner, int64(vp.ID())+acc)
				vp.Sync(lab)
				if m, ok := vp.Receive(); ok {
					acc += m
				}
			}
			vp.Sync(0)
		}, core.Options{Engine: eng})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(labels)+1), "supersteps")
}

// benchRunEngine resolves an engine for the BenchmarkRun series.  The
// replay engine gets an explicit per-size key so its schedule caches:
// the first iteration is the recording compile, every later one a warm
// replay, which b.N amortizes to the steady-state replay cost.
func benchRunEngine(b *testing.B, engName string, v int) nob.Engine {
	if engName == "replay" {
		return nob.ReplayEngine{Key: core.TraceKey{Algorithm: "bench-run-workload", N: v, Engine: "replay"}}
	}
	eng, err := nob.EngineByName(engName)
	if err != nil {
		b.Fatal(err)
	}
	return eng
}

// BenchmarkRun compares the execution engines on the superstep workload
// across machine sizes: the headline series for the block-scheduled
// runtime refactor and the trace-compiled replay engine.
// BenchmarkRunLarge extends it to v = 2^16 and 2^18.
func BenchmarkRun(b *testing.B) {
	for _, engName := range []string{"goroutine", "block", "replay"} {
		for _, lv := range []int{10, 12, 14} {
			v := 1 << uint(lv)
			b.Run(fmt.Sprintf("engine=%s/v=%d", engName, v), func(b *testing.B) {
				benchEngineWorkload(b, benchRunEngine(b, engName, v), v)
			})
		}
	}
}

// BenchmarkRunLarge is the large-machine tail of BenchmarkRun, split out
// so quick smoke runs can match '^BenchmarkRun$' and skip it.
func BenchmarkRunLarge(b *testing.B) {
	for _, engName := range []string{"goroutine", "block", "replay"} {
		for _, lv := range []int{16, 18} {
			v := 1 << uint(lv)
			b.Run(fmt.Sprintf("engine=%s/v=%d", engName, v), func(b *testing.B) {
				benchEngineWorkload(b, benchRunEngine(b, engName, v), v)
			})
		}
	}
}

// BenchmarkCoreBarrier measures the raw superstep engine: v VPs crossing
// one barrier per superstep.
func BenchmarkCoreBarrier(b *testing.B) {
	for _, v := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("v=%d", v), func(b *testing.B) {
			steps := 16
			for i := 0; i < b.N; i++ {
				_, err := core.Run(v, func(vp *core.VP[struct{}]) {
					for s := 0; s < steps; s++ {
						vp.Sync(0)
					}
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(steps), "supersteps")
		})
	}
}
