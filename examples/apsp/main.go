// apsp: all-pairs shortest paths by min-plus matrix powers — the semiring
// generality of the paper's matrix-multiplication class (§4.1 allows any
// semiring, which is exactly what Kerr's lower bound and the
// Scquizzato–Silvestri bound require) put to work on a graph problem.
//
// D^(2k) = D^(k) ⊗ D^(k) over (min, +), so ⌈log₂ s⌉ network-oblivious
// multiplications give all-pairs distances; the communication complexity
// of each is the Theorem 4.2 bound, unchanged by the semiring.
package main

import (
	"fmt"
	"log"
	"math/rand"

	nob "netoblivious"
	"netoblivious/internal/matmul"
)

const inf = int64(1) << 40

func main() {
	const s = 16 // vertices (power of two for the M(s²) machine)
	rng := rand.New(rand.NewSource(3))

	// Random sparse weighted digraph.
	d := make([]int64, s*s)
	for i := range d {
		d[i] = inf
	}
	for v := 0; v < s; v++ {
		d[v*s+v] = 0
		for _, w := range []int{(v + 1) % s, rng.Intn(s), rng.Intn(s)} {
			if w != v {
				d[v*s+w] = int64(1 + rng.Intn(20))
			}
		}
	}

	// Floyd–Warshall reference.
	want := append([]int64(nil), d...)
	for k := 0; k < s; k++ {
		for i := 0; i < s; i++ {
			for j := 0; j < s; j++ {
				if want[i*s+k]+want[k*s+j] < want[i*s+j] {
					want[i*s+j] = want[i*s+k] + want[k*s+j]
				}
			}
		}
	}

	// Min-plus matrix squaring on M(s²).
	tro := matmul.Tropical()
	cur := append([]int64(nil), d...)
	var lastTrace *nob.Trace
	rounds := 0
	for m := 1; m < s; m *= 2 {
		res, err := matmul.MultiplySemiring(s, cur, cur, tro, matmul.Options{Wise: true})
		if err != nil {
			log.Fatal(err)
		}
		cur = res.C
		lastTrace = res.Trace
		rounds++
	}
	for i := range want {
		if cur[i] != want[i] {
			log.Fatalf("APSP mismatch at (%d,%d): %d vs %d", i/s, i%s, cur[i], want[i])
		}
	}
	fmt.Printf("all-pairs shortest paths on %d vertices: %d min-plus squarings, verified against Floyd–Warshall\n\n", s, rounds)

	fmt.Println("per-squaring communication (Theorem 4.2 holds for any semiring):")
	fmt.Printf("%-8s %-12s %-12s\n", "p", "H(n,p,0)", "α")
	for p := 4; p <= s*s; p *= 4 {
		fmt.Printf("%-8d %-12.0f %-12.3f\n", p, nob.H(lastTrace, p, 0), nob.Wiseness(lastTrace, p))
	}
	fmt.Printf("\ntotal communication for APSP at p=16: %.0f messages across %d squarings\n",
		float64(rounds)*nob.H(lastTrace, 16, 0), rounds)
}
