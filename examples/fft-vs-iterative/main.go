// fft-vs-iterative: the quantitative case for recursion (Section 4.2).
// The recursive network-oblivious FFT pays Θ((n/p+σ)·log n/log(n/p))
// while the straightforward one-superstep-per-butterfly-level algorithm
// pays Θ((n/p+σ)·log p).  Both are network-oblivious; only one is
// Θ(1)-optimal.  This example locates the crossover empirically.
package main

import (
	"fmt"
	"log"
	"math/cmplx"
	"math/rand"

	nob "netoblivious"
	"netoblivious/internal/fft"
	"netoblivious/internal/theory"
)

func main() {
	const n = 1 << 10
	rng := rand.New(rand.NewSource(11))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}

	rec, err := fft.Transform(x, fft.Options{Wise: true})
	if err != nil {
		log.Fatal(err)
	}
	it, err := fft.TransformIterative(x, fft.Options{Wise: true})
	if err != nil {
		log.Fatal(err)
	}
	ref := fft.SeqFFT(x)
	var worst float64
	for i := range ref {
		if d := cmplx.Abs(rec.Out[i] - ref[i]); d > worst {
			worst = d
		}
		if d := cmplx.Abs(it.Out[i] - ref[i]); d > worst {
			worst = d
		}
	}
	fmt.Printf("%d-point transforms verified (max |err| = %.2e)\n\n", n, worst)

	fmt.Println("communication complexity, σ = n/p (latency comparable to per-processor load):")
	fmt.Printf("%-8s %-14s %-14s %-10s %-24s\n", "p", "H recursive", "H iterative", "iter/rec", "theory: log p·log(n/p)/log n")
	for p := 4; p <= n; p *= 4 {
		sigma := float64(n) / float64(p)
		hr := nob.H(rec.Trace, p, sigma)
		hi := nob.H(it.Trace, p, sigma)
		adv := theory.PredictedIterativeFFT(float64(n), p, sigma) / theory.PredictedFFT(float64(n), p, sigma)
		fmt.Printf("%-8d %-14.0f %-14.0f %-10.2f %-24.2f\n", p, hr, hi, hi/hr, adv)
	}

	fmt.Println("\nreading the table: the recursive algorithm wins where log p exceeds")
	fmt.Println("log n/log(n/p) (moderate p).  As p → n both bounds collapse to Θ((1+σ)·log n)")
	fmt.Println("and the iterative algorithm's smaller constants (one superstep per DAG level,")
	fmt.Println("no transpositions) take over — increase n to push the crossover right.")

	fmt.Println("\ncommunication time on a 2-D mesh (where locality matters most):")
	for _, p := range []int{16, 64, 256} {
		m := nob.Mesh(2, p)
		fmt.Printf("  p=%-5d recursive D = %9.0f   iterative D = %9.0f   (iterative pays %.2f×)\n",
			p, nob.CommTime(rec.Trace, m), nob.CommTime(it.Trace, m),
			nob.CommTime(it.Trace, m)/nob.CommTime(rec.Trace, m))
	}
}
