// broadcast-gap: the limits of obliviousness (Section 4.5).  The σ-aware
// κ-ary broadcast matches the Theorem 4.15 lower bound at every σ, while
// the network-oblivious binary tree — optimal at σ = O(1) — falls behind
// by a factor that grows like Theorem 4.16's GAP bound.  No oblivious
// algorithm can avoid this.
package main

import (
	"fmt"
	"log"

	nob "netoblivious"
	"netoblivious/internal/broadcast"
	"netoblivious/internal/theory"
)

func main() {
	const p = 1 << 10

	tree, err := broadcast.Oblivious(p, 42, broadcast.Options{})
	if err != nil {
		log.Fatal(err)
	}
	star, err := broadcast.ObliviousFlat(p, 42, broadcast.Options{})
	if err != nil {
		log.Fatal(err)
	}
	for i, v := range tree.Got {
		if v != 42 || star.Got[i] != 42 {
			log.Fatalf("broadcast failed at VP %d", i)
		}
	}
	fmt.Printf("broadcast to %d processors verified (tree and star)\n\n", p)

	fmt.Printf("%-8s %-6s %-12s %-10s %-11s %-12s %-12s %-16s\n",
		"σ", "κ(σ)", "H aware", "aware/LB", "H tree", "tree/LB", "H star", "Thm4.16 curve")
	for _, sigma := range []float64{0, 2, 8, 32, 128, 512, 2048, 8192} {
		aw, err := broadcast.Aware(p, sigma, 42, broadcast.Options{})
		if err != nil {
			log.Fatal(err)
		}
		lb := theory.LowerBoundBroadcast(p, sigma)
		hA := nob.H(aw.Trace, p, sigma)
		hT := nob.H(tree.Trace, p, sigma)
		hS := nob.H(star.Trace, p, sigma)
		fmt.Printf("%-8.0f %-6d %-12.0f %-10.2f %-11.0f %-12.2f %-12.0f %-16.2f\n",
			sigma, aw.Kappa, hA, hA/lb, hT, hT/lb, hS, theory.GapLowerBound(0, sigma))
	}

	fmt.Println("\nreading the table:")
	fmt.Println("  - the σ-aware algorithm re-tunes κ and stays within a constant of the lower bound;")
	fmt.Println("  - the oblivious tree is optimal at σ=O(1) but its gap grows ~log σ;")
	fmt.Println("  - the oblivious star only becomes competitive when σ ≳ p;")
	fmt.Println("  - Theorem 4.16 proves every oblivious algorithm must lose Ω(log σ₂/(log σ₁+log log σ₂))")
	fmt.Println("    somewhere in [σ₁, σ₂]: obliviousness has a price here, unlike MM/FFT/sorting.")
}
