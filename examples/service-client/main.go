// Command service-client demonstrates the nobld HTTP API through the Go
// client package: list the algorithm registry, run a synchronous
// closed-form analysis, submit an asynchronous trace analysis with SSE
// progress, re-request it to show the cache hit, and read the metrics.
//
// By default it spins up an in-process server (no daemon needed):
//
//	go run ./examples/service-client
//
// Point it at a running daemon instead with -addr:
//
//	nobld &
//	go run ./examples/service-client -addr http://127.0.0.1:7413
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http/httptest"
	"os"

	"netoblivious/internal/service"
)

func main() {
	addr := flag.String("addr", "", "nobld base URL (empty: start an in-process server)")
	flag.Parse()
	ctx := context.Background()

	base := *addr
	if base == "" {
		srv, err := service.New(service.Config{Workers: 2})
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		base = ts.URL
		fmt.Printf("started in-process nobld at %s\n\n", base)
	}
	client := service.NewClient(base)
	if err := client.Health(ctx); err != nil {
		log.Fatalf("service-client: %v", err)
	}

	// 1. The registry: what can be analyzed, and how.
	algs, err := client.Algorithms(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registry: %d algorithms, kinds %v, engine %s\n", len(algs.Algorithms), algs.Kinds, algs.Engine)

	// 2. Closed-form bounds: answered synchronously.
	resp, err := client.Analyze(ctx, service.Request{
		Algorithm: "fft", N: 4096, Kind: service.KindBounds,
		Machines: []service.MachineSpec{{P: 16, Sigma: 4}, {P: 64, Sigma: 4}},
	})
	if err != nil {
		log.Fatal(err)
	}
	printDocument("closed-form bounds", resp)

	// 3. A measured trace analysis: submitted as a job, progress over SSE.
	// Against a persistent daemon the key may already be cached, in which
	// case the document comes back inline with no job to follow.
	submit, err := client.Analyze(ctx, service.Request{Algorithm: "fft", N: 1024, Kind: service.KindTrace})
	if err != nil {
		log.Fatal(err)
	}
	traced := submit
	if submit.JobID != "" {
		fmt.Printf("submitted job %s (%s); streaming progress:\n", submit.JobID, submit.Status)
		info, err := client.WaitJob(ctx, submit.JobID, func(ev service.Event) {
			fmt.Printf("  [%d] %s %s\n", ev.Seq, ev.Stage, ev.Detail)
		})
		if err != nil {
			log.Fatal(err)
		}
		if info.Response == nil || info.Response.Document == nil {
			log.Fatalf("job %s finished %s: %+v", info.ID, info.Status, info.Response)
		}
		traced = *info.Response
	} else {
		fmt.Printf("trace analysis served inline (cached=%v)\n", submit.Cached)
	}
	printDocument("measured trace analysis", traced)

	// 4. The same request again: served from the LRU result cache.
	again, err := client.Analyze(ctx, service.Request{Algorithm: "fft", N: 1024, Kind: service.KindTrace})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repeat request: status=%s cached=%v\n\n", again.Status, again.Cached)

	// 5. Operational counters.
	snap, err := client.Metrics(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("metrics: result cache %d hits / %d misses (hit rate %.0f%%), queue depth %d, jobs done %d\n",
		snap.Results.Hits, snap.Results.Misses, 100*snap.Results.HitRate, snap.QueueDepth, snap.Jobs.Done)
}

// printDocument renders every result grid of a response as text.
func printDocument(label string, resp service.Response) {
	fmt.Printf("--- %s ---\n", label)
	if resp.Document == nil {
		fmt.Fprintf(os.Stderr, "no document (status %s, error %q)\n", resp.Status, resp.Error)
		return
	}
	for _, rec := range resp.Document.Records {
		for _, res := range rec.Results {
			fmt.Print(res.Text())
		}
	}
	fmt.Println()
}
