// Command custom-algorithm demonstrates the public algorithm API end to
// end: a user-defined algorithm (an oblivious matrix transpose) is
// registered through alg.Register only — no internal package knows its
// name — and then flows through every analysis surface of the framework:
//
//  1. the open registry listing (`nobl algorithms` / alg.All),
//  2. a specification-model run with its communication trace evaluated
//     on M(p, σ) via Fold / H / Wiseness,
//  3. the shared memoizing trace store,
//  4. typed early size validation (the *SizeError carrying the size doc),
//  5. an in-process nobld daemon: the /v1/algorithms metadata, a trace
//     analysis and an ideal-cache analysis via POST /v1/analyze, and the
//     HTTP 400 a size violation produces.
//
// Run it with:
//
//	go run ./examples/custom-algorithm
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http/httptest"

	nob "netoblivious"
	"netoblivious/alg"
	"netoblivious/internal/harness"
	"netoblivious/internal/service"
)

func main() {
	ctx := context.Background()

	// 1. The registry now holds the built-ins plus the transpose.
	fmt.Println("== registry (alg.All) ==")
	for _, a := range nob.Algorithms() {
		marker := "  "
		if a.Name == "transpose" {
			marker = "->"
		}
		fmt.Printf("%s %-16s %s\n", marker, a.Name, a.Doc)
	}

	// 2. Run it through the descriptor and evaluate the trace everywhere.
	a, ok := nob.AlgorithmByName("transpose")
	if !ok {
		log.Fatal("transpose missing from the registry")
	}
	const n = 1024
	run, err := a.Run(ctx, nob.Spec{}, n)
	if err != nil {
		log.Fatal(err)
	}
	tr := run.Trace
	fmt.Printf("\n== trace of transpose at n=%d ==\n", n)
	fmt.Printf("M(%d): %d supersteps, %d messages\n", tr.V, tr.NumSupersteps(), tr.TotalMessages())
	fmt.Println("p        sigma    H(n,p,sigma)   alpha")
	for _, p := range []int{4, 16, 64} {
		for _, sigma := range []float64{0, 16} {
			fmt.Printf("%-8d %-8g %-14.0f %.3f\n", p, sigma, nob.H(tr, p, sigma), nob.Wiseness(tr, p))
		}
	}

	// 3. The shared trace store memoizes it by (algorithm, n, engine).
	store := harness.NewTraceStore()
	if _, err := store.Get(ctx, nil, "transpose", n); err != nil {
		log.Fatal(err)
	}
	if _, err := store.Get(ctx, nil, "transpose", n); err != nil {
		log.Fatal(err)
	}
	st := store.Stats()
	fmt.Printf("\n== trace store ==\nhits %d, misses %d (second Get served from memory)\n", st.Hits, st.Misses)

	// 4. Size validation is typed and early.
	var se *nob.SizeError
	if err := a.ValidSize(6); errors.As(err, &se) {
		fmt.Printf("\n== size validation ==\n%v\n", se)
	}

	// 5. The nobld daemon serves it with full metadata — in process here,
	// but `nobld` on a shared host works identically.
	srv, err := service.New(service.Config{Workers: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := service.NewClient(ts.URL)

	algs, err := client.Algorithms(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== nobld /v1/algorithms ==\n")
	for _, info := range algs.Algorithms {
		if info.Name == "transpose" {
			fmt.Printf("%s: %s\n  sizes: %s (defaults %v)\n", info.Name, info.Doc, info.SizeDoc, info.DefaultSizes)
		}
	}

	for _, kind := range []service.Kind{service.KindTrace, service.KindCache} {
		resp, err := client.Analyze(ctx, service.Request{
			Algorithm: "transpose", N: n, Kind: kind, Wait: true,
			Machines: []service.MachineSpec{{P: 16, Sigma: 4}},
		})
		if err != nil {
			log.Fatal(err)
		}
		if resp.Error != "" {
			log.Fatalf("%s analysis: %s", kind, resp.Error)
		}
		res := resp.Document.Records[0].Results[0]
		pass := true
		for _, c := range res.Checks {
			pass = pass && c.Pass
		}
		fmt.Printf("\n== nobld %s analysis ==\n%s: %d row(s), checks pass=%v\n",
			kind, res.Title, len(res.Rows), pass)
	}

	// A bad size never reaches the job queue: HTTP 400 with the size doc.
	if _, err := client.Analyze(ctx, service.Request{Algorithm: "transpose", N: 6, Kind: service.KindTrace, Wait: true}); err != nil {
		fmt.Printf("\n== nobld size rejection ==\n%v\n", err)
	}
}

// The alg import is what an out-of-tree user would use directly; the
// root package re-exports it for convenience.
var _ = alg.Register
