package main

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	nob "netoblivious"
	"netoblivious/internal/harness"
	"netoblivious/internal/service"
	"netoblivious/internal/tracetest"
)

// TestTransposeRegisteredViaPublicAPI asserts the acceptance criterion
// that the algorithm is reachable purely through the open registry: it
// was registered by this package's init via nob.RegisterAlgorithm, and no
// internal package names it.
func TestTransposeRegisteredViaPublicAPI(t *testing.T) {
	a, ok := nob.AlgorithmByName("transpose")
	if !ok {
		t.Fatal("transpose missing from the registry")
	}
	if a.Doc == "" || a.SizeDoc == "" || len(a.DefaultSizes()) == 0 {
		t.Errorf("descriptor metadata incomplete: %+v", a)
	}
	// The harness view — what `nobl trace` and the trace store consult —
	// serves it without knowing it.
	if _, ok := harness.TraceAlgorithmByName("transpose"); !ok {
		t.Error("harness registry view does not serve the user-registered algorithm")
	}
}

// TestTransposeCrossEngineEquivalence runs the user-registered algorithm
// through the same engine-equivalence check the built-ins get: both
// engines must produce byte-identical traces on every default size.
func TestTransposeCrossEngineEquivalence(t *testing.T) {
	a, ok := nob.AlgorithmByName("transpose")
	if !ok {
		t.Fatal("transpose missing from the registry")
	}
	sizes := a.DefaultSizes()
	if compared := tracetest.EngineEquivalence(t, a, sizes); compared != len(sizes) {
		t.Errorf("compared %d/%d sizes", compared, len(sizes))
	}
}

// TestTransposeSelfChecks exercises the run's built-in correctness
// verification and the typed size error.
func TestTransposeSelfChecks(t *testing.T) {
	a, _ := nob.AlgorithmByName("transpose")
	for _, n := range a.DefaultSizes() {
		if _, err := a.Run(context.Background(), nob.Spec{}, n); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
	}
	var se *nob.SizeError
	if _, err := a.Run(context.Background(), nob.Spec{}, 6); !errors.As(err, &se) {
		t.Errorf("invalid size produced %v, want a *SizeError", err)
	} else if se.Algorithm != "transpose" || se.SizeDoc == "" {
		t.Errorf("SizeError fields incomplete: %+v", se)
	}
}

// TestTransposeThroughDaemon drives an in-process nobld over HTTP: the
// user-registered algorithm is listed with metadata, analyzable, cache-
// simulable, and early-rejected on bad sizes with the size doc in the
// 400 body — all without any internal code referencing it.
func TestTransposeThroughDaemon(t *testing.T) {
	srv, err := service.New(service.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := service.NewClient(ts.URL)
	ctx := context.Background()

	algs, err := client.Algorithms(ctx)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, info := range algs.Algorithms {
		if info.Name == "transpose" {
			found = true
			if info.SizeDoc == "" || len(info.DefaultSizes) == 0 {
				t.Errorf("/v1/algorithms metadata incomplete: %+v", info)
			}
		}
	}
	if !found {
		t.Fatal("/v1/algorithms does not list the user-registered algorithm")
	}

	for _, kind := range []service.Kind{service.KindTrace, service.KindDBSP, service.KindCache} {
		resp, err := client.Analyze(ctx, service.Request{
			Algorithm: "transpose", N: 64, Kind: kind, Wait: true,
			Machines: []service.MachineSpec{{P: 8, Sigma: 2}},
		})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if resp.Status != "done" || resp.Document == nil {
			t.Errorf("%s: status %s, error %q", kind, resp.Status, resp.Error)
		}
	}

	// Bad size: HTTP 400 carrying the size doc.
	httpResp, err := http.Post(ts.URL+"/v1/analyze", "application/json",
		strings.NewReader(`{"algorithm":"transpose","n":6,"kind":"trace","wait":true}`))
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad size: HTTP %d, want 400", httpResp.StatusCode)
	}
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := httpResp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	a, _ := nob.AlgorithmByName("transpose")
	if !strings.Contains(sb.String(), a.SizeDoc) {
		t.Errorf("400 body does not carry the size doc: %s", sb.String())
	}
}

// TestTransposeThroughTraceStore covers the memoization surface: two
// gets, one execution.
func TestTransposeThroughTraceStore(t *testing.T) {
	store := harness.NewTraceStore()
	ctx := context.Background()
	r1, err := store.Get(ctx, nil, "transpose", 64)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := store.Get(ctx, nil, "transpose", 64)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Trace != r2.Trace {
		t.Error("second Get re-executed instead of serving the memoized run")
	}
	if st := store.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Errorf("store stats %+v, want 1 hit / 1 miss", st)
	}
}
