package main

import (
	"context"
	"fmt"
	"sync/atomic"

	nob "netoblivious"
	"netoblivious/alg"
)

// transposeAlgorithm builds the descriptor of an oblivious matrix
// transpose on M(n), n = s² with s a power of two: VP id holds entry
// (id/s, id%s) of a deterministic s×s matrix and sends it to the VP
// holding the transposed position, in a single 0-labeled superstep.
// Off-diagonal VPs route one message each and the wiseness dummies cover
// the diagonal, so the algorithm is (Θ(1), n)-wise; folded on M(p, σ)
// its communication complexity is H(n, p, σ) = Θ(n/p + σ).
//
// The run self-checks: it verifies the received values really are the
// transpose before returning the trace, so every surface that executes
// the algorithm also re-verifies it.  The check is gated on the program
// body having run at all: under the replay engine a warm run replays
// the compiled communication schedule without executing VP code, so
// payload side effects like the output matrix exist only on the
// recording run — a replay-aware algorithm must not fail on their
// absence.
func transposeAlgorithm() nob.Algorithm {
	return nob.Algorithm{
		Name:    "transpose",
		Doc:     "user-defined oblivious matrix transpose; n = matrix entries (side² = n)",
		SizeDoc: "n = s² matrix entries with s a power of two: 4, 16, 64, 256, ...",
		Sizes:   []int{4, 16, 64, 1024},
		Valid:   alg.SquareOfPowerOfTwo(4),
		RunFn: func(ctx context.Context, spec nob.Spec, n int) (nob.AlgResult, error) {
			// Pin the wise form: a registry run must be a pure function of
			// (n, engine, record) for the shared trace store's keying.
			spec.Wise = true
			s := alg.SquareSide(n)
			rng := alg.SeededRand()
			in := make([]int64, n)
			for i := range in {
				in[i] = rng.Int63n(1 << 30)
			}
			out := make([]int64, n)
			var executed atomic.Bool
			prog := func(vp *nob.VP[int64]) {
				executed.Store(true)
				id := vp.ID()
				i, j := id/s, id%s
				dst := j*s + i
				if dst != id {
					vp.Send(dst, in[id])
				}
				if spec.Wise {
					nob.WisenessDummies(vp, 0, 1)
				}
				vp.Sync(0)
				if dst == id {
					out[id] = in[id]
				} else if m, ok := vp.Receive(); ok {
					out[id] = m
				}
			}
			tr, err := nob.RunOpt(n, prog, spec.RunOptions())
			if err != nil {
				return nob.AlgResult{}, err
			}
			if executed.Load() {
				for i := 0; i < s; i++ {
					for j := 0; j < s; j++ {
						if out[i*s+j] != in[j*s+i] {
							return nob.AlgResult{}, fmt.Errorf("transpose: entry (%d,%d) is wrong", i, j)
						}
					}
				}
			}
			return nob.AlgResult{Trace: tr}, nil
		},
	}
}

// The example registers its algorithm through the public API only — no
// package under internal/ knows the name "transpose", yet every surface
// below serves it.
func init() {
	if err := nob.RegisterAlgorithm(transposeAlgorithm()); err != nil {
		panic(err)
	}
}
