// Quickstart: write a network-oblivious algorithm against M(v(n)), run it
// once, and evaluate it on every machine of interest — the core loop of
// the framework.
//
// The algorithm below is the binary-doubling reduction: v VPs hold one
// value each; after log v labeled supersteps VP 0 holds the sum.  It is
// written with no machine parameter (only the input size), yet the single
// recorded trace yields its communication complexity H(n, p, σ) on every
// evaluation machine M(p, σ) and its communication time on every
// D-BSP(p, g, ℓ).
package main

import (
	"fmt"
	"log"

	nob "netoblivious"
)

func main() {
	const v = 256
	xs := make([]int64, v)
	var want int64
	for i := range xs {
		xs[i] = int64(i * i % 97)
		want += xs[i]
	}

	var got int64
	trace, err := nob.Run(v, func(vp *nob.VP[int64]) {
		val := xs[vp.ID()]
		// Reduction tree: at round r the machine is split into clusters
		// of 2^{logV-r} VPs; the upper half of each cluster sends to the
		// lower half.  The sync label r says exactly how far messages
		// travel — that is the only "network knowledge" in the program,
		// and it is topology-free.
		for r := vp.LogV() - 1; r >= 0; r-- {
			half := 1 << uint(r)
			if vp.ID()&half != 0 {
				vp.Send(vp.ID()&^half, val)
			}
			vp.Sync(vp.LogV() - 1 - r)
			if vp.ID()&half == 0 {
				if m, ok := vp.Receive(); ok {
					val += m
				}
			}
		}
		if vp.ID() == 0 {
			got = val
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reduction over %d VPs: got %d, want %d\n\n", v, got, want)

	fmt.Println("one trace, every machine:")
	fmt.Printf("%-10s %-8s %-14s %-14s\n", "p", "σ", "H(n,p,σ)", "α wiseness")
	for _, p := range []int{4, 16, 64, 256} {
		for _, sigma := range []float64{0, 10} {
			fmt.Printf("%-10d %-8.0f %-14.0f %-14.3f\n",
				p, sigma, nob.H(trace, p, sigma), nob.Wiseness(trace, p))
		}
	}

	fmt.Println("\ncommunication time D(n,p,g,ℓ) on concrete networks (p=64):")
	for _, m := range []nob.DBSP{nob.Mesh(1, 64), nob.Mesh(2, 64), nob.Hypercube(64), nob.FatTree(64)} {
		fmt.Printf("  %-18s D = %.0f\n", m.Name, nob.CommTime(trace, m))
	}
}
