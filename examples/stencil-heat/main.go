// stencil-heat: the (n,1)-stencil of Section 4.4.1 driving a
// heat-diffusion-style iteration — the class of workloads (iterative
// finite-difference methods) the paper's stencil section is motivated by.
// The space-time DAG is evaluated with the recursive diamond
// decomposition; the diamond structure itself (Figure 1) is printed.
package main

import (
	"fmt"
	"log"

	nob "netoblivious"
	"netoblivious/internal/stencil"
	"netoblivious/internal/theory"
)

func main() {
	const n = 64
	// A hot spot in the middle of a cold rod.
	in := make([]int64, n)
	in[n/2] = 1 << 30

	res, err := stencil.Run(n, 1, in, stencil.Options{Wise: true})
	if err != nil {
		log.Fatal(err)
	}
	want := stencil.SeqEvaluate(n, 1, in)
	for i := range want {
		if res.Grid[i] != want[i] {
			log.Fatalf("node %d mismatch", i)
		}
	}
	k := stencil.K(n)
	fmt.Printf("(%d,1)-stencil evaluated and verified: %d DAG nodes, k = %d, %d supersteps\n\n",
		n, n*n, k, res.Trace.NumSupersteps())

	fmt.Println("the diamond decomposition (Figure 1 of the paper), phases as glyphs:")
	fmt.Print(stencil.RenderDecomposition(32))

	fmt.Println("\ncommunication complexity (Theorem 4.11: O(n·4^{√log n}), independent of p):")
	fmt.Printf("%-8s %-12s %-18s %-8s %-26s\n", "p", "H(n,p,0)", "O(n·4^{√log n})", "ratio", "β vs Ω(n) (Lemma 4.10)")
	for p := 4; p <= n; p *= 4 {
		h := nob.H(res.Trace, p, 0)
		pred := theory.PredictedStencil1(float64(n), p, 0)
		lb := theory.LowerBoundStencil(float64(n), 1, p, 0)
		fmt.Printf("%-8d %-12.0f %-18.0f %-8.3f %-26.3f\n", p, h, pred, h/pred, lb/h)
	}
	fmt.Println("\nβ ≈ 1/4^{√log n}: efficient but not Θ(1)-optimal — the open problem of §4.4.")

	fmt.Println("\nrecursion-degree ablation (k is the paper's 2^⌈√log n⌉ by default):")
	fmt.Printf("%-6s %-14s %-14s\n", "k", "H(n,16,0)", "supersteps")
	for _, kk := range []int{2, 4, k, 16} {
		r, err := stencil.RunK(n, 1, kk, in, stencil.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6d %-14.0f %-14d\n", kk, nob.H(r.Trace, 16, 0), r.Trace.NumSupersteps())
	}
}
