// sorting: recursive Columnsort (Section 4.3) sorting real keys, with the
// measured communication complexity compared against Theorem 4.8 and the
// Lemma 4.7 lower bound, and the paper's caveat made visible: optimality
// degrades as p approaches n (Θ(1)-optimality needs p = O(n^{1-δ})).
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	nob "netoblivious"
	"netoblivious/internal/colsort"
	"netoblivious/internal/theory"
)

func main() {
	const n = 1 << 10
	rng := rand.New(rand.NewSource(5))
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = int64(rng.Intn(1 << 30))
	}

	res, err := colsort.Sort(keys, colsort.Options{Wise: true})
	if err != nil {
		log.Fatal(err)
	}
	if !sort.SliceIsSorted(res.Keys, func(i, j int) bool { return res.Keys[i] < res.Keys[j] }) {
		log.Fatal("output not sorted")
	}
	r, s := colsort.Shape(n)
	fmt.Printf("sorted %d keys on M(%d); top-level Columnsort shape r×s = %d×%d (r ≥ 2(s−1)²)\n\n", n, n, r, s)

	fmt.Println("communication complexity vs Theorem 4.8 and the sorting lower bound:")
	fmt.Printf("%-8s %-12s %-26s %-8s %-20s\n", "p", "H(n,p,0)", "Θ((n/p)(logn/log(n/p))^3.42)", "ratio", "β vs Lemma 4.7 LB")
	for p := 4; p <= n; p *= 4 {
		h := nob.H(res.Trace, p, 0)
		pred := theory.PredictedSort(float64(n), p, 0)
		lb := theory.LowerBoundSort(float64(n), p, 0)
		fmt.Printf("%-8d %-12.0f %-26.0f %-8.2f %-20.3f\n", p, h, pred, h/pred, lb/h)
	}
	fmt.Println("\nβ shrinks as p → n: the paper's Θ(1)-optimality claim is for p = O(n^{1-δ}) —")
	fmt.Println("exactly the degradation visible above (Corollary 4.9).")

	fmt.Println("\ncommunication time on networks (p = 64), Corollary 4.9:")
	for _, m := range []nob.DBSP{nob.Mesh(1, 64), nob.Mesh(2, 64), nob.Hypercube(64), nob.FatTree(64)} {
		fmt.Printf("  %-18s D = %9.0f\n", m.Name, nob.CommTime(res.Trace, m))
	}
}
