// matmul-scaling: the paper's flagship example (Section 4.1).  One
// network-oblivious matrix-multiplication run is folded onto machines with
// 4..n processors and varying latency σ; measured communication complexity
// is compared with Theorem 4.2's Θ(n/p^{2/3} + σ·log p) and with the
// Lemma 4.1 lower bound, and the memory/communication trade-off against
// the space-efficient variant (§4.1.1) is shown.
package main

import (
	"fmt"
	"log"
	"math/rand"

	nob "netoblivious"
	"netoblivious/internal/matmul"
	"netoblivious/internal/theory"
)

func main() {
	const s = 32 // matrix side; v(n) = n = s² = 1024 virtual processors
	n := float64(s * s)
	rng := rand.New(rand.NewSource(7))
	a := make([]int64, s*s)
	b := make([]int64, s*s)
	for i := range a {
		a[i], b[i] = int64(rng.Intn(100)), int64(rng.Intn(100))
	}

	r8, err := matmul.Multiply(s, a, b, matmul.Options{Wise: true})
	if err != nil {
		log.Fatal(err)
	}
	rsp, err := matmul.MultiplySpaceEfficient(s, a, b, matmul.Options{Wise: true})
	if err != nil {
		log.Fatal(err)
	}
	want := matmul.SeqMultiply(s, a, b, matmul.Plus())
	for i := range want {
		if r8.C[i] != want[i] || rsp.C[i] != want[i] {
			log.Fatalf("product mismatch at %d", i)
		}
	}
	fmt.Printf("%d×%d product verified for both variants (n = %d VPs)\n\n", s, s, s*s)

	fmt.Println("8-way recursive algorithm (Theorem 4.2):")
	fmt.Printf("%-6s %-6s %-12s %-22s %-8s %-10s\n", "p", "σ", "H(n,p,σ)", "Θ(n/p^{2/3}+σ·log p)", "ratio", "β vs LB")
	for p := 4; p <= s*s; p *= 4 {
		for _, sigma := range []float64{0, 16} {
			h := nob.H(r8.Trace, p, sigma)
			pred := theory.PredictedMM(n, p, sigma)
			lb := theory.LowerBoundMM(n, p, sigma)
			fmt.Printf("%-6d %-6.0f %-12.0f %-22.0f %-8.2f %-10.2f\n", p, sigma, h, pred, h/pred, lb/h)
		}
	}

	fmt.Println("\nmemory/communication trade-off at p = 64, σ = 0:")
	h8 := nob.H(r8.Trace, 64, 0)
	hsp := nob.H(rsp.Trace, 64, 0)
	fmt.Printf("  8-way:           H = %6.0f   peak entries/VP = %d (Θ(n^{1/3}))\n", h8, r8.PeakEntries)
	fmt.Printf("  space-efficient: H = %6.0f   peak entries/VP = %d (O(log n))\n", hsp, rsp.PeakEntries)
	fmt.Printf("  the constant-memory variant pays %.1f× the communication (Irony et al. trade-off)\n", hsp/h8)

	fmt.Println("\ncommunication time on concrete D-BSP machines (p = 64), Corollary 4.3:")
	for _, m := range []nob.DBSP{nob.Mesh(1, 64), nob.Mesh(2, 64), nob.Hypercube(64), nob.FatTree(64)} {
		fmt.Printf("  %-18s 8-way D = %8.0f   space-efficient D = %8.0f\n",
			m.Name, nob.CommTime(r8.Trace, m), nob.CommTime(rsp.Trace, m))
	}
}
