package alg

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"netoblivious/internal/core"
)

// Algorithm is a typed descriptor of one runnable network-oblivious
// algorithm: the metadata every analysis surface serves plus the
// executable entry point.  Descriptors are plain values; copies are
// cheap and safe to pass around.
type Algorithm struct {
	// Name is the registry key.  It appears in trace-store keys, CLI
	// arguments and service requests, so it must be non-empty and free
	// of '/', '@' and whitespace.
	Name string
	// Doc describes the algorithm and how n is interpreted (one line).
	Doc string
	// SizeDoc states the size constraint in prose, e.g. "a power of two
	// >= 2".  It is surfaced alongside size errors on every interface.
	SizeDoc string
	// Sizes lists the default input sizes, in ascending order: the
	// ladder the cross-engine equivalence tests walk and the sweep
	// analysis surfaces suggest.  Access through DefaultSizes.
	Sizes []int
	// Valid is the size predicate; nil accepts every n >= 1.  Access
	// through ValidSize, which wraps rejections into a *SizeError.
	Valid func(n int) error
	// RunFn executes the algorithm on a deterministic input of size n
	// under the given spec and returns its trace.  The engine reaches
	// the runtime through the spec — never a process-wide default — so
	// concurrent runs with different engines cannot race.  Call through
	// Run, which validates the size first.
	RunFn func(ctx context.Context, spec Spec, n int) (Result, error)
}

// ValidSize reports whether the algorithm accepts input size n, wrapping
// rejections into a *SizeError that carries the size doc.
func (a Algorithm) ValidSize(n int) error {
	if a.Valid == nil {
		if n < 1 {
			return &SizeError{Algorithm: a.Name, N: n, Reason: "not positive", SizeDoc: a.SizeDoc}
		}
		return nil
	}
	if err := a.Valid(n); err != nil {
		return &SizeError{Algorithm: a.Name, N: n, Reason: err.Error(), SizeDoc: a.SizeDoc}
	}
	return nil
}

// DefaultSizes returns a copy of the algorithm's default size ladder.
func (a Algorithm) DefaultSizes() []int {
	return append([]int(nil), a.Sizes...)
}

// Run validates n, resolves the effective context (the explicit ctx wins
// over spec.Ctx; nil means no cancellation) and executes the algorithm.
func (a Algorithm) Run(ctx context.Context, spec Spec, n int) (Result, error) {
	if err := a.ValidSize(n); err != nil {
		return Result{}, err
	}
	if a.RunFn == nil {
		return Result{}, fmt.Errorf("algorithm %q has no run function", a.Name)
	}
	if ctx != nil {
		spec.Ctx = ctx
	}
	// Key the replay engine (a no-op for every other engine) so any
	// registered algorithm gets schedule caching for free: the registry's
	// determinism contract — a run depends only on (n, spec) — is exactly
	// the staticness the compiled-schedule cache needs.  Wise runs execute
	// a different program, so they get their own key.
	name := a.Name
	if spec.Wise {
		name += "+wise"
	}
	spec.Engine = core.KeyedReplay(spec.Engine, name, n)
	return a.RunFn(spec.Ctx, spec, n)
}

// registry is the process-wide algorithm table.  Lookups are map-backed
// and the sorted listing is rebuilt once per Register (copy-on-write),
// never per call — both are allocation-free on the read path.
var registry = struct {
	sync.RWMutex
	byName map[string]Algorithm
	sorted []Algorithm // ascending by Name; shared read-only snapshot
}{byName: map[string]Algorithm{}}

// Register adds an algorithm to the registry.  It enforces the registry
// contract at the door: a well-formed unique name, non-empty docs, a run
// function, and at least one default size — each accepted by ValidSize —
// so every registered algorithm is immediately usable by every surface.
func Register(a Algorithm) error {
	if a.Name == "" {
		return fmt.Errorf("alg: cannot register an algorithm without a name")
	}
	if strings.ContainsAny(a.Name, "/@ \t\n") {
		return fmt.Errorf("alg: name %q must not contain '/', '@' or whitespace", a.Name)
	}
	if a.Doc == "" {
		return fmt.Errorf("alg: algorithm %q needs a Doc line", a.Name)
	}
	if a.RunFn == nil {
		return fmt.Errorf("alg: algorithm %q needs a RunFn", a.Name)
	}
	if len(a.Sizes) == 0 {
		return fmt.Errorf("alg: algorithm %q needs at least one default size", a.Name)
	}
	for _, n := range a.Sizes {
		if err := a.ValidSize(n); err != nil {
			return fmt.Errorf("alg: algorithm %q rejects its own default size: %w", a.Name, err)
		}
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.byName[a.Name]; dup {
		return fmt.Errorf("alg: algorithm %q is already registered", a.Name)
	}
	registry.byName[a.Name] = a
	next := make([]Algorithm, 0, len(registry.sorted)+1)
	next = append(next, registry.sorted...)
	next = append(next, a)
	sort.Slice(next, func(i, j int) bool { return next[i].Name < next[j].Name })
	registry.sorted = next
	return nil
}

// MustRegister is Register, panicking on error — the form package init
// functions use.
func MustRegister(a Algorithm) {
	if err := Register(a); err != nil {
		panic(err)
	}
}

// ByName looks up a registered algorithm.  The lookup is a map access —
// it never rebuilds or scans the listing.
func ByName(name string) (Algorithm, bool) {
	registry.RLock()
	a, ok := registry.byName[name]
	registry.RUnlock()
	return a, ok
}

// All returns every registered algorithm sorted by name.  The slice is a
// shared snapshot rebuilt only when Register runs: callers must treat it
// as read-only.
func All() []Algorithm {
	registry.RLock()
	s := registry.sorted
	registry.RUnlock()
	return s
}
