// Package alg is the public algorithm API of the network-oblivious
// framework: the interface through which an algorithm — a program written
// once against the specification model M(v), with no machine parameter
// beyond the input size — becomes a first-class citizen of every analysis
// surface in the repository.
//
// The package has three pieces:
//
//   - Spec, the single unified run configuration (execution engine,
//     message recording, wiseness dummies, cancellation context) shared
//     by every algorithm package in place of per-package option structs;
//   - Algorithm, a typed descriptor carrying the metadata an analysis
//     surface needs — documentation, the size constraint as both a
//     checkable predicate (ValidSize) and prose (SizeDoc), default sizes
//     for tests and sweeps — plus the executable Run entry point;
//   - an open, concurrency-safe registry (Register, ByName, All) that
//     the paper's built-in algorithms self-register into and that
//     user-defined algorithms join through the same door.
//
// An algorithm registered here is immediately traceable by `nobl trace`,
// analyzable by the nobld service (POST /v1/analyze), listed with its
// metadata by GET /v1/algorithms and `nobl algorithms`, memoizable by the
// shared trace store, and covered by the repository's cross-engine
// equivalence tests — none of which know its name.
//
// Registered algorithms must be deterministic: a run may depend only on
// (n, Spec.Engine, Spec.Record), never on ambient state.  Derive inputs
// from SeededRand (or any fixed seed) so the trace store's
// (algorithm, n, engine) keying stays sound.  See examples/custom-algorithm
// for a complete user-defined algorithm flowing through every surface.
package alg

import (
	"context"
	"fmt"
	"math/rand"

	"netoblivious/internal/core"
	"netoblivious/internal/obs"
)

// Spec is the unified run configuration every algorithm entry point
// accepts: the four knobs that were once copy-pasted across seven
// per-package Options structs.  The zero value is a valid default
// (default engine, no recording, no wiseness dummies, no cancellation).
type Spec struct {
	// Engine selects the core execution engine; nil uses the default.
	// Engines change scheduling cost only, never semantics: every engine
	// produces the identical trace for a valid program.
	Engine core.Engine
	// Record enables message-pair recording in the trace, which the
	// cache-simulation analyses require and everything else skips.
	Record bool
	// Wise adds the paper's dummy messages where the algorithm supports
	// them, making it (Θ(1), v)-wise (Definition 3.2).  Algorithms
	// without a wise variant ignore the flag.
	Wise bool
	// Ctx cancels the specification-model run at superstep granularity;
	// nil disables cancellation.
	Ctx context.Context
	// Sink streams the trace out of the run superstep by superstep
	// instead of accumulating it in memory, bounding peak memory by the
	// largest superstep rather than the whole trace (see
	// core.Options.Sink).  The Result then carries a metadata-only
	// Trace.  nil keeps the in-memory default.
	Sink core.TraceSink
	// Probe records per-superstep engine spans for timeline export (see
	// core.Options.Probe and `nobl prof`).  nil — the default — disables
	// instrumentation at provably negligible cost.
	Probe *obs.Probe
}

// RunOptions translates the spec into core run options, for algorithm
// implementations that call the M(v) runtime directly.
func (s Spec) RunOptions() core.Options {
	return core.Options{RecordMessages: s.Record, Engine: s.Engine, Context: s.Ctx, Sink: s.Sink, Probe: s.Probe}
}

// Result is what running a registered algorithm yields: the communication
// trace — sufficient to evaluate the algorithm on every folding, every σ,
// and every D-BSP machine — plus optional run metadata.
type Result struct {
	// Trace is the recorded communication of the M(v) execution.
	Trace *core.Trace
	// PeakEntries is the peak per-VP element count for algorithms that
	// report a memory-blow-up metric (the matmul family); 0 otherwise.
	PeakEntries int
}

// SizeError reports that an input size violates an algorithm's size
// constraint.  It is the typed error every surface renders: nobld turns
// it into an HTTP 400 carrying the size doc, nobl trace into a non-zero
// exit with a usage hint.
type SizeError struct {
	// Algorithm is the registry name of the rejecting algorithm.
	Algorithm string
	// N is the rejected input size.
	N int
	// Reason is the predicate's own message (e.g. "not a power of two").
	Reason string
	// SizeDoc is the algorithm's prose size constraint.
	SizeDoc string
}

func (e *SizeError) Error() string {
	msg := fmt.Sprintf("algorithm %q does not accept n=%d: %s", e.Algorithm, e.N, e.Reason)
	if e.SizeDoc != "" {
		msg += fmt.Sprintf(" (valid sizes: %s)", e.SizeDoc)
	}
	return msg
}

// IsPowerOfTwo reports whether n is a positive power of two.
func IsPowerOfTwo(n int) bool { return n > 0 && n&(n-1) == 0 }

// PowerOfTwo returns a size predicate accepting powers of two >= min.
func PowerOfTwo(min int) func(n int) error {
	return func(n int) error {
		if !IsPowerOfTwo(n) {
			return fmt.Errorf("not a power of two")
		}
		if n < min {
			return fmt.Errorf("below the minimum size %d", min)
		}
		return nil
	}
}

// SquareSide returns the smallest power of two s with s² >= n — for a
// size accepted by SquareOfPowerOfTwo, the matrix side s = √n.
func SquareSide(n int) int {
	s := 1
	for s*s < n {
		s *= 2
	}
	return s
}

// SquareOfPowerOfTwo returns a size predicate accepting n = s² with s a
// power of two and n >= min — the matmul family's constraint, where n
// counts matrix entries.
func SquareOfPowerOfTwo(min int) func(n int) error {
	return func(n int) error {
		if s := SquareSide(n); n < 1 || s*s != n {
			return fmt.Errorf("not the square of a power of two")
		}
		if n < min {
			return fmt.Errorf("below the minimum size %d", min)
		}
		return nil
	}
}

// SeededRandSeed is the canonical input seed of the built-in registry
// algorithms (the paper's IPDPS publication date).
const SeededRandSeed = 20070326

// SeededRand returns a deterministic RNG for registry-algorithm inputs.
// Using it (or any fixed seed) keeps a run a pure function of
// (n, engine, record) — the property the shared trace store's keying
// relies on.
func SeededRand() *rand.Rand { return rand.New(rand.NewSource(SeededRandSeed)) }
