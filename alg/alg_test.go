package alg

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"netoblivious/internal/core"
)

// testAlgorithm builds a registrable no-op algorithm (one empty
// superstep) under the given name.
func testAlgorithm(name string) Algorithm {
	return Algorithm{
		Name:    name,
		Doc:     "test fixture: one empty superstep",
		SizeDoc: "a power of two >= 2",
		Sizes:   []int{2, 4, 8},
		Valid:   PowerOfTwo(2),
		RunFn: func(ctx context.Context, spec Spec, n int) (Result, error) {
			tr, err := core.RunOpt(n, func(vp *core.VP[int]) { vp.Sync(0) }, spec.RunOptions())
			if err != nil {
				return Result{}, err
			}
			return Result{Trace: tr}, nil
		},
	}
}

func TestRegisterAndLookup(t *testing.T) {
	a := testAlgorithm("t-reg-lookup")
	if err := Register(a); err != nil {
		t.Fatalf("Register: %v", err)
	}
	got, ok := ByName("t-reg-lookup")
	if !ok || got.Doc != a.Doc {
		t.Fatalf("ByName lost the descriptor: ok=%v got=%+v", ok, got)
	}
	if _, ok := ByName("t-no-such"); ok {
		t.Error("ByName found an unregistered name")
	}
	found := false
	for _, e := range All() {
		if e.Name == "t-reg-lookup" {
			found = true
		}
	}
	if !found {
		t.Error("All() does not list the registered algorithm")
	}
	run, err := got.Run(context.Background(), Spec{}, 4)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if run.Trace == nil || run.Trace.V != 4 {
		t.Fatalf("Run returned trace %+v, want v=4", run.Trace)
	}
}

func TestRegisterRejectsMalformed(t *testing.T) {
	base := testAlgorithm("t-malformed")
	cases := []struct {
		label  string
		mutate func(*Algorithm)
	}{
		{"empty name", func(a *Algorithm) { a.Name = "" }},
		{"slash in name", func(a *Algorithm) { a.Name = "a/b" }},
		{"at-sign in name", func(a *Algorithm) { a.Name = "a@b" }},
		{"space in name", func(a *Algorithm) { a.Name = "a b" }},
		{"empty doc", func(a *Algorithm) { a.Doc = "" }},
		{"nil RunFn", func(a *Algorithm) { a.RunFn = nil }},
		{"no default sizes", func(a *Algorithm) { a.Sizes = nil }},
		{"invalid default size", func(a *Algorithm) { a.Sizes = []int{3} }},
	}
	for _, c := range cases {
		a := base
		c.mutate(&a)
		if err := Register(a); err == nil {
			t.Errorf("%s: Register accepted a malformed descriptor", c.label)
		}
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	if err := Register(testAlgorithm("t-dup")); err != nil {
		t.Fatalf("first Register: %v", err)
	}
	if err := Register(testAlgorithm("t-dup")); err == nil {
		t.Fatal("second Register of the same name succeeded")
	}
}

func TestAllSortedByName(t *testing.T) {
	MustRegister(testAlgorithm("t-sort-b"))
	MustRegister(testAlgorithm("t-sort-a"))
	all := All()
	for i := 1; i < len(all); i++ {
		if all[i-1].Name >= all[i].Name {
			t.Fatalf("All() not strictly sorted: %q before %q", all[i-1].Name, all[i].Name)
		}
	}
}

func TestValidSizeTypedError(t *testing.T) {
	a := testAlgorithm("t-sizeerr")
	err := a.ValidSize(6)
	if err == nil {
		t.Fatal("ValidSize accepted 6")
	}
	var se *SizeError
	if !errors.As(err, &se) {
		t.Fatalf("ValidSize error is %T, want *SizeError", err)
	}
	if se.Algorithm != "t-sizeerr" || se.N != 6 {
		t.Errorf("SizeError fields: %+v", se)
	}
	if !strings.Contains(err.Error(), "a power of two >= 2") {
		t.Errorf("SizeError does not surface the size doc: %q", err)
	}
	if err := a.ValidSize(8); err != nil {
		t.Errorf("ValidSize rejected a valid size: %v", err)
	}
	// Run validates before executing.
	if _, err := a.Run(context.Background(), Spec{}, 6); !errors.As(err, &se) {
		t.Errorf("Run did not surface the SizeError: %v", err)
	}
}

func TestValidators(t *testing.T) {
	p2 := PowerOfTwo(2)
	for _, n := range []int{2, 4, 1024} {
		if err := p2(n); err != nil {
			t.Errorf("PowerOfTwo(2)(%d): %v", n, err)
		}
	}
	for _, n := range []int{-4, 0, 1, 3, 6, 1000} {
		if err := p2(n); err == nil {
			t.Errorf("PowerOfTwo(2)(%d) accepted", n)
		}
	}
	sq := SquareOfPowerOfTwo(4)
	for _, n := range []int{4, 16, 64, 1024} {
		if err := sq(n); err != nil {
			t.Errorf("SquareOfPowerOfTwo(4)(%d): %v", n, err)
		}
	}
	for _, n := range []int{-1, 0, 1, 2, 8, 32, 100} {
		if err := sq(n); err == nil {
			t.Errorf("SquareOfPowerOfTwo(4)(%d) accepted", n)
		}
	}
}

func TestDefaultSizesIsACopy(t *testing.T) {
	MustRegister(testAlgorithm("t-copy"))
	a, _ := ByName("t-copy")
	s := a.DefaultSizes()
	s[0] = -999
	b, _ := ByName("t-copy")
	if b.DefaultSizes()[0] == -999 {
		t.Fatal("mutating DefaultSizes() leaked into the registry")
	}
}

// TestLookupAllocationFree is the benchmark-backed regression test for
// the registry-churn fix: the old harness registry rebuilt and re-sorted
// the whole descriptor slice on every lookup and every listing — both
// called per service request.  The new read path must not allocate.
func TestLookupAllocationFree(t *testing.T) {
	MustRegister(testAlgorithm("t-alloc"))
	if avg := testing.AllocsPerRun(200, func() {
		if _, ok := ByName("t-alloc"); !ok {
			t.Fatal("lookup failed")
		}
	}); avg != 0 {
		t.Errorf("ByName allocates %.1f objects per call, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() {
		if len(All()) == 0 {
			t.Fatal("empty listing")
		}
	}); avg != 0 {
		t.Errorf("All allocates %.1f objects per call, want 0", avg)
	}
}

func TestRegistryConcurrency(t *testing.T) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			MustRegister(testAlgorithm(fmt.Sprintf("t-conc-%02d", i)))
		}
	}()
	for {
		select {
		case <-done:
			return
		default:
			All()
			ByName("t-conc-25")
		}
	}
}

func BenchmarkByName(b *testing.B) {
	_ = Register(testAlgorithm("t-bench-byname"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := ByName("t-bench-byname"); !ok {
			b.Fatal("lookup failed")
		}
	}
}

func BenchmarkAll(b *testing.B) {
	_ = Register(testAlgorithm("t-bench-all"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(All()) == 0 {
			b.Fatal("empty listing")
		}
	}
}
