// Command dbspinfo prints the D-BSP(p, g, ℓ) parameter vectors of the
// built-in network models and checks their admissibility for the
// optimality theorem (non-increasing g_i and ℓ_i/g_i).
//
// Usage:
//
//	dbspinfo -p 64          aligned text tables
//	dbspinfo -p 64 -json    the nobl/results/v1 Document schema, for
//	                        scripting alongside `nobl -format json` and
//	                        the nobld API
package main

import (
	"flag"
	"fmt"
	"os"

	"netoblivious/internal/dbsp"
	"netoblivious/internal/harness"
)

func main() {
	p := flag.Int("p", 64, "number of processors (power of two)")
	asJSON := flag.Bool("json", false, "emit the preset vectors as a nobl/results/v1 JSON document")
	flag.Parse()
	if *p < 2 || *p&(*p-1) != 0 {
		fmt.Fprintf(os.Stderr, "dbspinfo: p must be a power of two >= 2\n")
		os.Exit(2)
	}
	if *asJSON {
		if err := harness.EncodeDocument(os.Stdout, presetDocument(*p)); err != nil {
			fmt.Fprintf(os.Stderr, "dbspinfo: %v\n", err)
			os.Exit(1)
		}
		return
	}
	for _, pr := range dbsp.Presets(*p) {
		fmt.Printf("%s\n", pr.Name)
		fmt.Printf("  level    cluster   g_i        l_i        l_i/g_i\n")
		for i := range pr.G {
			fmt.Printf("  %-8d %-9d %-10.3f %-10.3f %-10.3f\n",
				i, *p>>uint(i), pr.G[i], pr.L[i], pr.L[i]/pr.G[i])
		}
		if err := pr.Admissible(); err != nil {
			fmt.Printf("  admissible for Theorem 3.4: NO (%v)\n", err)
		} else {
			fmt.Printf("  admissible for Theorem 3.4: yes\n")
		}
		fmt.Println()
	}
}

// presetDocument wraps the shared preset grid in the Document schema.
func presetDocument(p int) harness.Document {
	return harness.Document{
		Schema: harness.DocumentSchema,
		Engine: "none",
		Records: []harness.Record{{
			ID:       "dbsp-presets",
			Title:    fmt.Sprintf("D-BSP preset parameter vectors at p=%d", p),
			PaperRef: "§2; Euro-Par 1999",
			Results:  []*harness.Result{harness.PresetsResult(p)},
		}},
	}
}
