// Command noblint runs the repository's custom static-analysis suite
// (internal/lint) over Go package patterns and exits non-zero on any
// diagnostic.  It is the lint gate CI runs over ./....
//
// Usage:
//
//	noblint [-c analyzer1,analyzer2] [-list] [patterns...]
//
// With no patterns it analyzes ./... relative to the current directory.
// -c restricts the run to a comma-separated subset of analyzers; -list
// prints the suite and exits.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"netoblivious/internal/lint"
)

func main() {
	var (
		only = flag.String("c", "", "comma-separated analyzer names to run (default: all)")
		list = flag.Bool("list", false, "list analyzers and exit")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.Analyzers()
	if *only != "" {
		analyzers = analyzers[:0:0]
		for _, name := range strings.Split(*only, ",") {
			a, err := lint.AnalyzerByName(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(os.Stderr, "noblint:", err)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, _, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "noblint:", err)
		os.Exit(2)
	}

	diags := lint.RunAnalyzers(pkgs, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "noblint: %d issue(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
